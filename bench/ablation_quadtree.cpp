// Ablation: quadtree RangeCount (Section 5.2) vs flat neighbor-cell scans.
//
// Two separable choices: (1) MarkCore's RangeCount (scan vs quadtree) and
// (2) cell-graph connectivity (plain BCP vs quadtree-BCP). The paper's
// Figure 6(f)/(j) spikes motivate both: on skewed data (GeoLife-like) or at
// unlucky epsilon values, flat scans blow up while the quadtree variants
// stay even. This harness crosses the two choices on a skewed and a uniform
// dataset over the epsilon sweep.
#include "common.h"

int main() {
  using namespace pdbscan;
  using namespace pdbscan::bench;

  const size_t n = ScaledN(20000);
  std::vector<BenchDataset> suite;
  suite.push_back(MakeDataset<3>("3D-GeoLife-like", data::GeoLifeLike(n), 20,
                                 100, {5, 10, 20, 40, 80}));
  suite.push_back(MakeDataset<5>("5D-UniformFill",
                                 data::UniformFill<5>(ScaledN(10000)), 0, 100,
                                 {}));
  {
    const double s = std::pow(double(ScaledN(10000)), 3.0 / 10.0);
    suite.back().eps_sweep = {2 * s, 3 * s, 4 * s, 6 * s};
  }

  std::printf("=== Ablation: quadtree range counting vs flat scans ===\n\n");

  for (const auto& ds : suite) {
    std::vector<std::string> header = {"markcore/cellgraph \\ eps"};
    for (const double eps : ds.eps_sweep) header.push_back(util::BenchTable::Num(eps));
    util::BenchTable table(std::move(header));

    struct Variant {
      std::string name;
      RangeCountMethod markcore;
      ConnectMethod connect;
    };
    const std::vector<Variant> variants = {
        {"scan/bcp        (our-exact)", RangeCountMethod::kScan, ConnectMethod::kBcp},
        {"quadtree/bcp", RangeCountMethod::kQuadtree, ConnectMethod::kBcp},
        {"scan/quadtree-bcp", RangeCountMethod::kScan, ConnectMethod::kQuadtreeBcp},
        {"quadtree/quadtree-bcp (our-exact-qt)", RangeCountMethod::kQuadtree,
         ConnectMethod::kQuadtreeBcp},
    };
    for (const auto& variant : variants) {
      Options options;
      options.range_count = variant.markcore;
      options.connect_method = variant.connect;
      std::vector<std::string> row = {variant.name};
      for (const double eps : ds.eps_sweep) {
        row.push_back(util::BenchTable::Num(
            RunOurs(ds, eps, ds.default_minpts, options)));
      }
      table.AddRow(std::move(row));
    }
    std::printf("(%s, n=%zu, minpts=%zu)\n", ds.name.c_str(), ds.size(),
                ds.default_minpts);
    table.Print();
    std::printf("\n");
  }
  return 0;
}
