// Figure 8 reproduction: speedup over the best serial baseline vs thread
// count, per dataset (at the "correct clustering" parameters).
//
// For every dataset the best serial time across our configurations is the
// reference (as in the paper's y-axis label "speedup over serial-<best>"),
// and each implementation's speedup is reported for 1, 2, 4, ... threads.
//
// NOTE on this reproduction's host: the container exposes a single hardware
// thread, so measured speedups are expected to be ~1x across the sweep; the
// harness still exercises the full scheduling machinery, and on a multicore
// host it reproduces the paper's scaling series directly.
#include "common.h"

int main() {
  using namespace pdbscan;
  using namespace pdbscan::bench;

  const std::vector<int> threads = ThreadSweep();

  std::printf("=== Figure 8: speedup over best serial configuration ===\n");
  std::printf("scale=%g, hardware threads=%u\n\n",
              util::GetEnvDouble("PDBSCAN_BENCH_SCALE", 1.0),
              std::thread::hardware_concurrency());

  // Keep a representative subset so the sweep stays tractable on one core.
  auto suite = HighDimSuite();
  std::vector<std::string> keep = {"3D-SS-simden", "3D-SS-varden",
                                   "5D-UniformFill", "7D-SS-simden",
                                   "3D-GeoLife-like", "7D-Household-like"};
  for (const auto& ds : suite) {
    bool selected = false;
    for (const auto& k : keep) selected = selected || ds.name == k;
    if (!selected) continue;

    // Best serial configuration.
    parallel::set_num_workers(1);
    std::string best_name;
    double best_serial = std::numeric_limits<double>::infinity();
    std::vector<std::pair<std::string, Options>> configs;
    for (const auto& [name, options] : PaperConfigsHighDim()) {
      configs.push_back({name, options});
    }
    for (const auto& [name, options] : configs) {
      const double t = RunOurs(ds, ds.default_eps, ds.default_minpts, options);
      if (t < best_serial) {
        best_serial = t;
        best_name = name;
      }
    }

    std::vector<std::string> header = {"impl \\ threads"};
    for (const int t : threads) header.push_back(std::to_string(t));
    util::BenchTable table(std::move(header));
    for (const auto& [name, options] : configs) {
      std::vector<std::string> row = {name};
      for (const int t : threads) {
        parallel::set_num_workers(t);
        const double secs =
            RunOurs(ds, ds.default_eps, ds.default_minpts, options);
        row.push_back(util::BenchTable::Num(best_serial / secs, 3));
      }
      table.AddRow(std::move(row));
    }
    for (const std::string baseline : {"hpdbscan", "pdsdbscan"}) {
      std::vector<std::string> row = {baseline};
      for (const int t : threads) {
        parallel::set_num_workers(t);
        const double secs =
            RunBaseline(baseline, ds, ds.default_eps, ds.default_minpts);
        row.push_back(util::BenchTable::Num(best_serial / secs, 3));
      }
      table.AddRow(std::move(row));
    }
    parallel::set_num_workers(0);  // Clamped to 1; reset below.
    parallel::set_num_workers(
        static_cast<int>(std::thread::hardware_concurrency()));

    std::printf("(%s, n=%zu, eps=%g, minpts=%zu; best serial: %s = %.4fs)\n",
                ds.name.c_str(), ds.size(), ds.default_eps, ds.default_minpts,
                best_name.c_str(), best_serial);
    table.Print();
    std::printf("\n");
  }
  return 0;
}
