// Distributed serving throughput: real pdbscan_server processes (1 writer +
// N snapshot-shipping replicas over a shared directory), hammered by client
// threads over TCP, reported as QPS and p50/p99 per (replicas, clients) arm
// (aligned table + #csv rows).
//
// Mid-arm, the writer keeps applying update batches, so responses land on a
// MOVING generation — replicas legitimately answer one or two generations
// behind the writer while they tail.
//
// Acceptance gate, enforced by exit code: EVERY response, from every
// replica in every arm, is bit-identical (labels, core flags, cluster
// count) to a fresh local EnginePool::Run on the point set of the
// generation the response reports. The local mirror applies the same
// batches the writer received, so the reference is computed entirely in
// this process — if a replica served anything but the exact dataset state
// its generation names, the gate trips.
//
// The server binary is found via PDBSCAN_SERVER_BIN (env) or the compiled
// PDBSCAN_SERVER_BINARY default.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "common.h"
#include "net/client.h"
#include "net/protocol.h"
#include "parallel/engine_pool.h"
#include "util/subprocess.h"

namespace {

using namespace pdbscan;

double Percentile(std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0;
  const size_t idx = std::min(
      sorted_ms.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted_ms.size() - 1)));
  return sorted_ms[idx];
}

std::string ServerBinary() {
  if (const char* env = std::getenv("PDBSCAN_SERVER_BIN")) return env;
#ifdef PDBSCAN_SERVER_BINARY
  return PDBSCAN_SERVER_BINARY;
#else
  return std::string();
#endif
}

// One response retained for the post-run audit.
struct Served {
  uint64_t generation;
  size_t min_pts;
  net::QueryResponse resp;
};

}  // namespace

int main() {
  using namespace pdbscan::bench;

  const std::string binary = ServerBinary();
  if (binary.empty() || !std::filesystem::exists(binary)) {
    std::fprintf(stderr,
                 "throughput_remote: pdbscan_server binary not found "
                 "(set PDBSCAN_SERVER_BIN)\n");
    return 1;
  }

  const double eps = 300;  // The 2D-SS-varden scale of the fig11 suite.
  const size_t counts_cap = 100;
  const size_t batch_points = ScaledN(2000);
  const size_t warm_batches = 4;
  const size_t requests_per_client = 16;
  const std::vector<size_t> minpts_rotation = {10, 20, 50};
  const std::vector<size_t> replica_counts = {1, 2, 4};
  const std::vector<size_t> client_counts = {2, 8};

  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("pdbscan_remote_bench_" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(dir);

  std::printf("=== Distributed serving: QPS/p50/p99 across processes ===\n");
  std::printf("dataset=2D-SS-varden batches of n=%zu eps=%g counts_cap=%zu "
              "requests/client=%zu\n\n",
              batch_points, eps, counts_cap, requests_per_client);

  // --- Writer process + the in-process mirror it is audited against.
  util::ChildProcess writer = util::SpawnProcess(
      {binary, "--mode", "writer", "--dir", dir, "--dim", "2", "--eps",
       std::to_string(eps), "--counts-cap", std::to_string(counts_cap),
       "--port", "0", "--port-file", dir + "/wport", "--checkpoint-every",
       "2", "--rotate-bytes", "262144", "--poll-ms", "5"});
  const uint16_t wport = util::ReadPortFile(dir + "/wport");

  StreamingClusterer<2> mirror(eps, counts_cap);
  std::map<uint64_t, std::vector<geometry::Point<2>>> points_by_gen;
  points_by_gen[mirror.generation()] = {};
  net::Client writer_client(wport);
  uint64_t batch_seed = 1;
  auto apply_batch = [&]() {
    net::UpdateRequest<2> req;
    req.inserts = data::SsVarden<2>(batch_points, /*seed=*/batch_seed++);
    const net::UpdateResponse up = writer_client.Update<2>(req);
    mirror.ApplyUpdates(std::span<const geometry::Point<2>>(req.inserts), {});
    if (up.generation != mirror.generation()) {
      std::fprintf(stderr, "writer generation %llu != mirror %llu\n",
                   static_cast<unsigned long long>(up.generation),
                   static_cast<unsigned long long>(mirror.generation()));
      std::exit(1);
    }
    points_by_gen[mirror.generation()] = mirror.LivePoints();
  };
  for (size_t b = 0; b < warm_batches; ++b) apply_batch();

  // Fresh local EnginePool::Run at (generation, min_pts) — the reference
  // every remote response must reproduce bit for bit. Cached per pair.
  std::map<std::pair<uint64_t, size_t>, Clustering> reference;
  std::mutex reference_mu;
  auto reference_for = [&](uint64_t gen, size_t min_pts) -> const Clustering& {
    std::lock_guard<std::mutex> lock(reference_mu);
    const auto key = std::make_pair(gen, min_pts);
    auto it = reference.find(key);
    if (it == reference.end()) {
      const auto& pts = points_by_gen.at(gen);
      EnginePool<2> pool(CellIndex<2>::Build(
          std::span<const geometry::Point<2>>(pts), eps, counts_cap));
      it = reference.emplace(key, pool.Run(min_pts)).first;
    }
    return it->second;
  };
  auto matches = [&](const Served& s) {
    const Clustering& expect = reference_for(s.generation, s.min_pts);
    return s.resp.num_clusters == expect.num_clusters &&
           s.resp.cluster == expect.cluster && s.resp.is_core == expect.is_core;
  };

  util::BenchTable table({"replicas", "clients", "requests", "ok", "p50_ms",
                          "p99_ms", "qps", "identical"});
  bool all_identical = true;

  for (const size_t replicas : replica_counts) {
    // Spawn the replica fleet for this block and wait for catch-up.
    std::vector<util::ChildProcess> fleet;
    std::vector<uint16_t> ports;
    for (size_t r = 0; r < replicas; ++r) {
      const std::string port_file =
          dir + "/rport_" + std::to_string(replicas) + "_" + std::to_string(r);
      fleet.push_back(util::SpawnProcess(
          {binary, "--mode", "replica", "--dir", dir, "--dim", "2", "--eps",
           std::to_string(eps), "--counts-cap", std::to_string(counts_cap),
           "--port", "0", "--port-file", port_file, "--poll-ms", "5"}));
      ports.push_back(util::ReadPortFile(port_file));
    }
    for (const uint16_t port : ports) {
      net::Client probe(port);
      while (probe.Info().generation < mirror.generation()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    }

    for (const size_t clients : client_counts) {
      std::atomic<size_t> ok{0};
      std::mutex results_mu;
      std::vector<double> latencies_ms;
      std::vector<Served> served;

      util::Timer timer;
      std::vector<std::thread> threads;
      for (size_t c = 0; c < clients; ++c) {
        threads.emplace_back([&, c]() {
          // Clients spread round-robin over the replica fleet.
          net::Client client(ports[c % ports.size()]);
          std::vector<double> my_lat;
          std::vector<Served> my_served;
          for (size_t q = 0; q < requests_per_client; ++q) {
            const size_t min_pts =
                minpts_rotation[(c + q) % minpts_rotation.size()];
            util::Timer lat;
            net::QueryResponse resp = client.Query(min_pts);
            my_lat.push_back(lat.Seconds() * 1000.0);
            ok.fetch_add(1, std::memory_order_relaxed);
            my_served.push_back(
                Served{resp.generation, min_pts, std::move(resp)});
          }
          std::lock_guard<std::mutex> lock(results_mu);
          latencies_ms.insert(latencies_ms.end(), my_lat.begin(),
                              my_lat.end());
          for (auto& s : my_served) served.push_back(std::move(s));
        });
      }
      // The writer keeps moving while the fleet serves: replicas answer
      // whatever generation they have tailed to.
      apply_batch();
      for (auto& t : threads) t.join();
      const double seconds = timer.Seconds();

      size_t mismatches = 0;
      for (const Served& s : served) {
        if (!matches(s)) ++mismatches;
      }
      if (mismatches != 0) all_identical = false;

      std::sort(latencies_ms.begin(), latencies_ms.end());
      const size_t total = clients * requests_per_client;
      table.AddRow(
          {std::to_string(replicas), std::to_string(clients),
           std::to_string(total), std::to_string(ok.load()),
           util::BenchTable::Num(Percentile(latencies_ms, 0.50), 3),
           util::BenchTable::Num(Percentile(latencies_ms, 0.99), 3),
           util::BenchTable::Num(static_cast<double>(ok.load()) / seconds, 4),
           mismatches == 0 ? "yes" : "NO"});
    }
    // Replicas hold no durable state: SIGKILL teardown is safe by design.
    for (auto& replica : fleet) replica.KillAndWait(SIGKILL);
  }

  table.Print();
  table.PrintCsv();

  // Clean writer shutdown through the protocol.
  writer_client.Shutdown();
  const int status = writer.Wait();
  const bool clean_exit = WIFEXITED(status) && WEXITSTATUS(status) == 0;
  std::filesystem::remove_all(dir);

  std::printf("\nidentical=%s (every replica response vs a fresh local "
              "EnginePool::Run at its reported generation) writer_exit=%s\n",
              all_identical ? "yes" : "NO", clean_exit ? "clean" : "DIRTY");
  return all_identical && clean_exit ? 0 : 1;
}
