// Concurrent query throughput: queries/sec vs client threads against ONE
// shared CellIndex served by an EnginePool, reported like the fig6-10
// harness (aligned table + #csv rows).
//
// This is the serving-side complement of Figure 8's thread-scaling sweep:
// instead of one query using P workers, P clients each run whole queries
// against the frozen index. The scheduler is pinned to 1 worker so every
// query executes serially on its client thread — the configuration that
// maximizes aggregate queries/sec — and scaling comes purely from client
// concurrency over the shared immutable index. Every answer is compared
// against a precomputed serial one-shot Dbscan result, so the numbers only
// count bit-identical clusterings.
//
// NOTE on this reproduction's host: the container exposes a single hardware
// thread, so measured speedups are expected to be ~1x across the sweep; the
// harness still exercises the full pool/lease machinery, and on a multicore
// host it shows near-linear queries/sec scaling (the >= 3x at 8 clients
// acceptance bar of the serving milestone).
#include <atomic>
#include <thread>

#include "common.h"
#include "parallel/engine_pool.h"

namespace {

using namespace pdbscan;

bool Identical(const Clustering& a, const Clustering& b) {
  return a.num_clusters == b.num_clusters && a.cluster == b.cluster &&
         a.is_core == b.is_core &&
         a.membership_offsets == b.membership_offsets &&
         a.membership_ids == b.membership_ids;
}

}  // namespace

int main() {
  using namespace pdbscan::bench;

  const size_t n = ScaledN(100000);
  const double eps = 300;  // The 2D-SS-varden defaults of the fig11 suite.
  const std::vector<size_t> minpts_rotation = {10, 20, 50, 100};
  const size_t counts_cap = 100;
  const size_t queries_per_client = 8;

  std::printf("=== Concurrent serving: queries/sec vs client threads ===\n");
  std::printf("dataset=2D-SS-varden n=%zu eps=%g counts_cap=%zu "
              "queries/client=%zu, hardware threads=%u\n\n",
              n, eps, counts_cap, queries_per_client,
              std::thread::hardware_concurrency());

  const auto pts = data::SsVarden<2>(n);

  // Build once; freeze; serve. Build time reported separately — it is the
  // amortized cost the whole point of the split is to pay once.
  util::Timer build_timer;
  auto index = CellIndex<2>::Build(pts, eps, counts_cap);
  const double build_seconds = build_timer.Seconds();
  std::printf("index build: %.3fs (%zu cells, %zu points)\n", build_seconds,
              index->num_cells(), index->num_points());

  // Expected answers, serial one-shot, before any concurrency.
  parallel::set_num_workers(1);
  std::vector<Clustering> expected;
  double oneshot_seconds = 0;
  for (const size_t m : minpts_rotation) {
    util::Timer t;
    expected.push_back(Dbscan<2>(pts, eps, m));
    oneshot_seconds += t.Seconds();
  }
  std::printf("serial one-shot reference: %.3fs for %zu settings "
              "(%.1f q/s)\n\n",
              oneshot_seconds, minpts_rotation.size(),
              double(minpts_rotation.size()) / oneshot_seconds);

  std::vector<int> client_counts = {1, 2, 4, 8};
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  for (int t = 16; t <= hw; t *= 2) client_counts.push_back(t);

  util::BenchTable table(
      {"clients", "queries", "seconds", "queries/sec", "speedup", "identical"});
  double qps_at_1 = 0;
  for (const int clients : client_counts) {
    EnginePool<2> pool(index);
    std::atomic<size_t> mismatches{0};
    util::Timer timer;
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c]() {
        for (size_t q = 0; q < queries_per_client; ++q) {
          const size_t which =
              (static_cast<size_t>(c) + q) % minpts_rotation.size();
          const Clustering got = pool.Run(minpts_rotation[which]);
          if (!Identical(expected[which], got)) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    const double seconds = timer.Seconds();
    const size_t total = static_cast<size_t>(clients) * queries_per_client;
    const double qps = double(total) / seconds;
    if (clients == 1) qps_at_1 = qps;
    table.AddRow({std::to_string(clients), std::to_string(total),
                  util::BenchTable::Num(seconds, 4),
                  util::BenchTable::Num(qps, 4),
                  util::BenchTable::Num(qps_at_1 > 0 ? qps / qps_at_1 : 0, 3),
                  mismatches.load() == 0 ? "yes" : "NO"});

    if (clients == client_counts.back()) {
      dbscan::PipelineStats agg;
      pool.AggregateStats(agg);
      std::printf("pool at %d clients: contexts=%zu counts_built=%zu "
                  "counts_reused=%zu (index adopted, built once above)\n",
                  clients, pool.contexts_created(), agg.counts_built.load(),
                  agg.counts_reused.load());
      std::printf("kernels: %s dispatch, %zu simd batches, %zu box-pruned / "
                  "%zu norm-pruned points\n",
                  kernels::LevelName(static_cast<kernels::Level>(
                      agg.kernel_dispatch_level.load())),
                  agg.kernel_batches.load(),
                  agg.kernel_points_pruned_box.load(),
                  agg.kernel_points_pruned_norm.load());
    }
  }
  std::printf("\n");
  table.Print();
  table.PrintCsv();
  parallel::set_num_workers(hw > 0 ? hw : 1);
  return 0;
}
