// Figure 7 reproduction: running time vs minPts for d >= 3.
//
// Epsilon fixed at the dataset default; minPts swept 10..10000. Expected
// shapes from the paper: our implementations degrade as minPts grows
// (MarkCore does O(n * minPts) work), while point-wise baselines are
// minPts-insensitive (their range queries dominate regardless); crossover
// can appear near minPts = 10000.
//
// The sweep additionally runs through a reusable DbscanEngine: the cell
// structure is built once and the saturated MarkCore counts answer every
// minPts setting, so the engine total should beat the sum of one-shot
// calls ("oneshot" vs "engine" columns).
#include "common.h"

int main() {
  using namespace pdbscan;
  using namespace pdbscan::bench;

  const std::vector<size_t> minpts_sweep = {10, 100, 1000, 10000};

  std::printf("=== Figure 7: running time (s) vs minPts, d >= 3 ===\n");
  std::printf("threads=%d  scale=%g\n\n", parallel::num_workers(),
              util::GetEnvDouble("PDBSCAN_BENCH_SCALE", 1.0));

  for (const auto& ds : HighDimSuite()) {
    std::vector<std::string> header = {"impl \\ minpts"};
    for (const size_t m : minpts_sweep) header.push_back(std::to_string(m));
    util::BenchTable table(std::move(header));

    for (const auto& [name, options] : PaperConfigsHighDim()) {
      std::vector<std::string> row = {name};
      for (const size_t m : minpts_sweep) {
        row.push_back(
            util::BenchTable::Num(RunOurs(ds, ds.default_eps, m, options)));
      }
      table.AddRow(std::move(row));
    }
    for (const std::string baseline : {"hpdbscan", "pdsdbscan"}) {
      std::vector<std::string> row = {baseline};
      for (const size_t m : minpts_sweep) {
        row.push_back(
            util::BenchTable::Num(RunBaseline(baseline, ds, ds.default_eps, m)));
      }
      table.AddRow(std::move(row));
    }

    std::printf("(%s, n=%zu, eps=%g)\n", ds.name.c_str(), ds.size(),
                ds.default_eps);
    table.Print();

    // Whole-sweep totals: K independent one-shot calls vs one warm engine.
    // Stats are reset between the phases so the stage/counter table below
    // reflects the engine runs alone (one cell build per config).
    std::vector<double> oneshot_totals;
    for (const auto& [name, options] : PaperConfigsHighDim()) {
      oneshot_totals.push_back(
          OneShotMinptsSweepSeconds(ds, ds.default_eps, minpts_sweep, options));
    }
    ResetStageStats();
    util::BenchTable sweep_table(
        {"sweep total", "oneshot", "engine", "speedup"});
    size_t config_idx = 0;
    for (const auto& [name, options] : PaperConfigsHighDim()) {
      const double oneshot = oneshot_totals[config_idx++];
      const double engine =
          EngineMinptsSweepSeconds(ds, ds.default_eps, minpts_sweep, options);
      sweep_table.AddRow({name, util::BenchTable::Num(oneshot),
                          util::BenchTable::Num(engine),
                          util::BenchTable::Num(oneshot /
                                                std::max(engine, 1e-12))});
    }
    sweep_table.Print();
    PrintStageStats(ds.name + " engine phase");
    std::printf("\n");
  }
  return 0;
}
