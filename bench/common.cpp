#include "common.h"

#include <cmath>
#include <stdexcept>

#include "baselines/hpdbscan.h"
#include "baselines/pointwise.h"
#include "baselines/rpdbscan.h"
#include "dbscan/stats.h"

namespace pdbscan::bench {

namespace {

// Mean point spacing of UniformFill in d dimensions: n points in volume
// n^(d/2) gives per-point volume n^(d/2-1), i.e. spacing n^((d-2)/(2d)).
double UniformSpacing(size_t n, int d) {
  return std::pow(static_cast<double>(n),
                  (static_cast<double>(d) - 2) / (2.0 * d));
}

std::vector<double> Sweep(double base, std::initializer_list<double> factors) {
  std::vector<double> out;
  for (const double f : factors) out.push_back(base * f);
  return out;
}

}  // namespace

std::vector<BenchDataset> HighDimSuite() {
  const size_t n = ScaledN(10000);
  const size_t n_real = ScaledN(20000);
  std::vector<BenchDataset> suite;

  // Seed-spreader datasets: vicinity 100 in a 1e5-wide domain; defaults
  // mirror the paper's "correct clustering" parameter choice.
  suite.push_back(MakeDataset<3>("3D-SS-simden", data::SsSimden<3>(n), 200, 10,
                                 Sweep(100, {1, 2, 4, 8})));
  suite.push_back(MakeDataset<3>("3D-SS-varden", data::SsVarden<3>(n), 400, 100,
                                 Sweep(100, {1, 2, 4, 8})));
  {
    const double s = UniformSpacing(n, 3);
    suite.push_back(MakeDataset<3>("3D-UniformFill", data::UniformFill<3>(n),
                                   3 * s, 10, Sweep(s, {2, 3, 4, 6})));
  }
  suite.push_back(MakeDataset<5>("5D-SS-simden", data::SsSimden<5>(n), 300, 100,
                                 Sweep(150, {1, 2, 4, 8})));
  suite.push_back(MakeDataset<5>("5D-SS-varden", data::SsVarden<5>(n), 600, 10,
                                 Sweep(150, {1, 2, 4, 8})));
  {
    const double s = UniformSpacing(n, 5);
    suite.push_back(MakeDataset<5>("5D-UniformFill", data::UniformFill<5>(n),
                                   3 * s, 100, Sweep(s, {2, 3, 4, 6})));
  }
  suite.push_back(MakeDataset<7>("7D-SS-simden", data::SsSimden<7>(n), 400, 10,
                                 Sweep(200, {1, 2, 4, 8})));
  suite.push_back(MakeDataset<7>("7D-SS-varden", data::SsVarden<7>(n), 800, 10,
                                 Sweep(200, {1, 2, 4, 8})));
  {
    const double s = UniformSpacing(n, 7);
    suite.push_back(MakeDataset<7>("7D-UniformFill", data::UniformFill<7>(n),
                                   3 * s, 10, Sweep(s, {2, 3, 4, 6})));
  }
  suite.push_back(MakeDataset<3>("3D-GeoLife-like", data::GeoLifeLike(n_real),
                                 20, 100, Sweep(10, {1, 2, 4, 8})));
  suite.push_back(MakeDataset<7>("7D-Household-like",
                                 data::HouseholdLike(ScaledN(10000)), 100, 100,
                                 Sweep(50, {1, 2, 4, 8})));
  return suite;
}

std::vector<BenchDataset> TwoDimSuite() {
  const size_t n = ScaledN(20000);
  std::vector<BenchDataset> suite;
  suite.push_back(MakeDataset<2>("2D-SS-simden", data::SsSimden<2>(n), 150, 100,
                                 Sweep(75, {1, 2, 4, 8})));
  suite.push_back(MakeDataset<2>("2D-SS-varden", data::SsVarden<2>(n), 300, 100,
                                 Sweep(100, {1, 2, 4, 8})));
  return suite;
}

namespace {

template <int D>
double RunBaselineTyped(const std::string& name, const BenchDataset& ds,
                        double eps, size_t minpts) {
  std::vector<geometry::Point<D>> pts(ds.size());
  for (size_t i = 0; i < pts.size(); ++i) {
    for (int k = 0; k < D; ++k) {
      pts[i][k] = ds.flat[i * D + static_cast<size_t>(k)];
    }
  }
  const std::span<const geometry::Point<D>> span(pts);
  if (name == "pdsdbscan") {
    return TimeSeconds([&]() { baselines::PdsDbscan<D>(span, eps, minpts); });
  }
  if (name == "hpdbscan") {
    return TimeSeconds([&]() { baselines::HpDbscan<D>(span, eps, minpts); });
  }
  if (name == "rpdbscan") {
    return TimeSeconds([&]() { baselines::RpDbscan<D>(span, eps, minpts); });
  }
  if (name == "original") {
    return TimeSeconds(
        [&]() { baselines::OriginalDbscan<D>(span, eps, minpts); });
  }
  throw std::invalid_argument("unknown baseline: " + name);
}

}  // namespace

double RunBaseline(const std::string& name, const BenchDataset& ds, double eps,
                   size_t minpts) {
  switch (ds.dim) {
    case 2:
      return RunBaselineTyped<2>(name, ds, eps, minpts);
    case 3:
      return RunBaselineTyped<3>(name, ds, eps, minpts);
    case 5:
      return RunBaselineTyped<5>(name, ds, eps, minpts);
    case 7:
      return RunBaselineTyped<7>(name, ds, eps, minpts);
    case 13:
      return RunBaselineTyped<13>(name, ds, eps, minpts);
    default:
      throw std::invalid_argument("unsupported dimension");
  }
}

double OneShotMinptsSweepSeconds(const BenchDataset& ds, double eps,
                                 const std::vector<size_t>& minpts,
                                 const Options& options) {
  double total = 0;
  for (const size_t m : minpts) total += RunOurs(ds, eps, m, options);
  return total;
}

double EngineMinptsSweepSeconds(const BenchDataset& ds, double eps,
                                const std::vector<size_t>& minpts,
                                const Options& options) {
  return DispatchDim(ds.dim, [&]<int D>() {
    util::Timer timer;
    DbscanEngine<D> engine(options);
    engine.SetPointsStrided(ds.flat.data(), ds.size(),
                            static_cast<size_t>(ds.dim));
    const auto results = engine.Sweep(eps, minpts);
    (void)results;
    return timer.Seconds();
  });
}

double OneShotEpsilonSweepSeconds(const BenchDataset& ds,
                                  const std::vector<double>& eps_sweep,
                                  size_t minpts, const Options& options) {
  double total = 0;
  for (const double eps : eps_sweep) total += RunOurs(ds, eps, minpts, options);
  return total;
}

double EngineEpsilonSweepSeconds(const BenchDataset& ds,
                                 const std::vector<double>& eps_sweep,
                                 size_t minpts, const Options& options) {
  return DispatchDim(ds.dim, [&]<int D>() {
    util::Timer timer;
    DbscanEngine<D> engine(options);
    engine.SetPointsStrided(ds.flat.data(), ds.size(),
                            static_cast<size_t>(ds.dim));
    for (const double eps : eps_sweep) {
      const auto result = engine.Run(eps, minpts);
      (void)result;
    }
    return timer.Seconds();
  });
}

void ResetStageStats() { dbscan::GlobalStats().Reset(); }

void PrintStageStats(const std::string& title) {
  const auto& stats = dbscan::GlobalStats();
  const auto load = [](const std::atomic<size_t>& v) {
    return std::to_string(v.load(std::memory_order_relaxed));
  };
  util::BenchTable table({"stage (" + title + ")", "seconds"});
  table.AddRow({"build_cells", util::BenchTable::Num(stats.build_cells_seconds.load(
                                   std::memory_order_relaxed))});
  table.AddRow({"mark_core", util::BenchTable::Num(stats.mark_core_seconds.load(
                                 std::memory_order_relaxed))});
  table.AddRow(
      {"cluster_core", util::BenchTable::Num(stats.cluster_core_seconds.load(
                           std::memory_order_relaxed))});
  table.AddRow({"cluster_border",
                util::BenchTable::Num(stats.cluster_border_seconds.load(
                    std::memory_order_relaxed))});
  table.AddRow({"finalize", util::BenchTable::Num(stats.finalize_seconds.load(
                                std::memory_order_relaxed))});
  table.Print();
  util::BenchTable counters({"cache counter", "count"});
  counters.AddRow({"cells_built", load(stats.cells_built)});
  counters.AddRow({"cells_reused", load(stats.cells_reused)});
  counters.AddRow({"counts_built", load(stats.counts_built)});
  counters.AddRow({"counts_reused", load(stats.counts_reused)});
  counters.Print();
}

}  // namespace pdbscan::bench
