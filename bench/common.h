// Shared infrastructure for the per-figure benchmark binaries.
//
// Every binary honors:
//   PDBSCAN_BENCH_SCALE   — float multiplier on dataset sizes (default 1.0;
//                           the paper used 10M-point datasets, our default
//                           base size is 100k so a full ctest+bench cycle
//                           stays minutes on one core — set 100 to approach
//                           paper scale).
//   PDBSCAN_NUM_THREADS   — worker count (thread-sweep benches override it).
#ifndef PDBSCAN_BENCH_COMMON_H_
#define PDBSCAN_BENCH_COMMON_H_

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "data/seed_spreader.h"
#include "data/synthetic_real.h"
#include "data/uniform.h"
#include "parallel/scheduler.h"
#include "pdbscan/pdbscan.h"
#include "util/bench_table.h"
#include "util/env.h"
#include "util/timer.h"

namespace pdbscan::bench {

inline size_t ScaledN(size_t base) {
  const double scale = util::GetEnvDouble("PDBSCAN_BENCH_SCALE", 1.0);
  const double n = static_cast<double>(base) * scale;
  return n < 16 ? 16 : static_cast<size_t>(n);
}

// Median-of-k timing of a callable (k small; DBSCAN runs are expensive).
inline double TimeSeconds(const std::function<void()>& fn, int repeats = 1) {
  std::vector<double> times;
  times.reserve(static_cast<size_t>(repeats));
  for (int r = 0; r < repeats; ++r) {
    util::Timer timer;
    fn();
    times.push_back(timer.Seconds());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

// A named DBSCAN configuration row, as in the paper's legends.
struct NamedConfig {
  std::string name;
  Options options;
};

inline std::vector<NamedConfig> PaperConfigsHighDim(double rho = 0.01) {
  return {
      {"our-exact", OurExact()},
      {"our-exact-bucketing", WithBucketing(OurExact())},
      {"our-exact-qt", OurExactQt()},
      {"our-exact-qt-bucketing", WithBucketing(OurExactQt())},
      {"our-approx", OurApprox(rho)},
      {"our-approx-bucketing", WithBucketing(OurApprox(rho))},
      {"our-approx-qt", OurApproxQt(rho)},
      {"our-approx-qt-bucketing", WithBucketing(OurApproxQt(rho))},
  };
}

inline std::vector<NamedConfig> PaperConfigs2d() {
  return {
      {"our-2d-grid-bcp", Our2dGridBcp()},
      {"our-2d-grid-usec", Our2dGridUsec()},
      {"our-2d-grid-delaunay", Our2dGridDelaunay()},
      {"our-2d-box-bcp", Our2dBoxBcp()},
      {"our-2d-box-usec", Our2dBoxUsec()},
      {"our-2d-box-delaunay", Our2dBoxDelaunay()},
  };
}

// Thread counts for scaling sweeps: 1, 2, 4, ... up to the host parallelism
// (always at least {1, 2, 4} so the sweep is meaningful on small hosts).
inline std::vector<int> ThreadSweep() {
  std::vector<int> threads = {1, 2, 4};
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  for (int t = 8; t <= hw; t *= 2) threads.push_back(t);
  return threads;
}

// A dataset with runtime dimension, its default parameters (the analogue of
// the paper's "parameters producing the correct clustering") and the epsilon
// sweep for Figure 6 / 11-style plots.
struct BenchDataset {
  std::string name;
  int dim = 0;
  std::vector<double> flat;  // Row-major coordinates.
  double default_eps = 0;
  size_t default_minpts = 10;
  std::vector<double> eps_sweep;

  size_t size() const {
    return dim == 0 ? 0 : flat.size() / static_cast<size_t>(dim);
  }
};

template <int D>
BenchDataset MakeDataset(std::string name, std::vector<geometry::Point<D>> pts,
                         double default_eps, size_t default_minpts,
                         std::vector<double> eps_sweep) {
  BenchDataset ds;
  ds.name = std::move(name);
  ds.dim = D;
  ds.flat.resize(pts.size() * D);
  for (size_t i = 0; i < pts.size(); ++i) {
    for (int k = 0; k < D; ++k) ds.flat[i * D + static_cast<size_t>(k)] = pts[i][k];
  }
  ds.default_eps = default_eps;
  ds.default_minpts = default_minpts;
  ds.eps_sweep = std::move(eps_sweep);
  return ds;
}

// The d >= 3 dataset suite of Figures 6-8 (SS-simden / SS-varden /
// UniformFill at d = 3, 5, 7 plus the GeoLife and Household surrogates),
// sized by PDBSCAN_BENCH_SCALE.
std::vector<BenchDataset> HighDimSuite();

// The 2D suite of Figure 11.
std::vector<BenchDataset> TwoDimSuite();

// Runs our pipeline on a runtime-dim dataset; returns seconds.
inline double RunOurs(const BenchDataset& ds, double eps, size_t minpts,
                      const Options& options) {
  return TimeSeconds([&]() {
    const auto result =
        Dbscan(ds.flat.data(), ds.size(), ds.dim, eps, minpts, options);
    (void)result;
  });
}

// One parameter sweep timed two ways — as independent one-shot Dbscan calls
// and through a single reusable DbscanEngine — exposed as separate phases
// so the benches can ResetStageStats() between them and report counters
// for the engine phase alone.

// min_pts sweep at fixed epsilon (the Figure 7 pattern; the engine builds
// the cell structure and MarkCore counts once).
double OneShotMinptsSweepSeconds(const BenchDataset& ds, double eps,
                                 const std::vector<size_t>& minpts,
                                 const Options& options);
double EngineMinptsSweepSeconds(const BenchDataset& ds, double eps,
                                const std::vector<size_t>& minpts,
                                const Options& options);

// epsilon sweep at fixed min_pts (the Figure 6 pattern; the engine reuses
// the point layout and workspace allocations across rebuilds).
double OneShotEpsilonSweepSeconds(const BenchDataset& ds,
                                  const std::vector<double>& eps_sweep,
                                  size_t minpts, const Options& options);
double EngineEpsilonSweepSeconds(const BenchDataset& ds,
                                 const std::vector<double>& eps_sweep,
                                 size_t minpts, const Options& options);

// Stage-timing / cache-counter reporting over dbscan::GlobalStats().
void ResetStageStats();
void PrintStageStats(const std::string& title);

// Baseline algorithms with runtime-dim dispatch. Names: "pdsdbscan",
// "hpdbscan", "rpdbscan", "original".
double RunBaseline(const std::string& name, const BenchDataset& ds, double eps,
                   size_t minpts);

}  // namespace pdbscan::bench

#endif  // PDBSCAN_BENCH_COMMON_H_
