// Sharded build throughput: per-shard build / interior count / boundary
// merge time vs shard count against a ShardedCellIndex, reported like the
// fig6-10 harness (aligned tables + #csv rows).
//
// Sharding is a build-time decomposition — queries against the merged
// index are ordinary CellIndex queries — so the interesting axes are:
//
//   * how build wall time moves as the shard count grows (per-shard
//     structures and interior counts run concurrently on the scheduler);
//   * how the merge stage scales: its touched-cell count must equal the
//     boundary-cell count of the plan (cells within one halo of a seam)
//     and therefore grow with the number of seams, NOT with the dataset.
//
// The exit code enforces the second property: for every shard count the
// merge-stage recounted cells must exactly match the independently counted
// seam-adjacent cells, the boundary fraction at 2 shards must be well
// under half the cells, and every published clustering must be
// bit-identical to the unsharded reference. Scaled by PDBSCAN_BENCH_SCALE
// as usual.
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common.h"
#include "sharding/sharded_cell_index.h"

int main() {
  using namespace pdbscan;
  using namespace pdbscan::bench;

  const size_t n = ScaledN(100000);
  const double eps = 300;  // The 2D-SS-varden defaults of the fig11 suite.
  const size_t counts_cap = 100;
  const size_t min_pts = 10;

  std::printf("=== Sharded builds: partition -> per-shard -> boundary merge "
              "===\n");
  std::printf("dataset=2D-SS-varden n=%zu eps=%g counts_cap=%zu minpts=%zu, "
              "hardware threads=%u\n\n",
              n, eps, counts_cap, min_pts,
              std::thread::hardware_concurrency());

  const auto pts = data::SsVarden<2>(n);

  // Unsharded references: build cost and the clustering every sharded run
  // must reproduce bit for bit.
  util::Timer build_timer;
  auto reference_index = CellIndex<2>::Build(pts, eps, counts_cap);
  const double unsharded_build_seconds = build_timer.Seconds();
  const size_t total_cells = reference_index->num_cells();
  const Clustering reference = Dbscan<2>(pts, eps, min_pts);
  std::printf("unsharded CellIndex build: %.3fs (%zu cells)\n\n",
              unsharded_build_seconds, total_cells);

  util::BenchTable table({"shards", "build_sec", "shard_sec", "count_sec",
                          "merge_sec", "boundary_cells", "interior_cells",
                          "boundary_frac", "seam_links", "query_sec",
                          "identical", "merge_exact"});
  bool all_identical = true;
  bool all_merge_exact = true;
  bool boundary_grows = true;
  size_t max_boundary = 0;
  size_t prev_boundary = 0;
  for (const size_t shards : {size_t{1}, size_t{2}, size_t{4}, size_t{8},
                              size_t{16}}) {
    dbscan::PipelineStats stats;
    util::Timer timer;
    ShardedCellIndex<2> sharded(pts, eps, counts_cap, shards, Options(),
                                &stats);
    const double build_seconds = timer.Seconds();
    const auto& info = sharded.build_info();

    // Independent accounting of the seam: cells the PLAN marks boundary.
    // The merge stage must have recounted exactly these and nothing else.
    size_t plan_boundary = 0;
    const auto& cells = sharded.index()->cells();
    for (size_t c = 0; c < cells.num_cells(); ++c) {
      if (sharded.plan().IsBoundary(cells.coords[c][sharded.plan().axis])) {
        ++plan_boundary;
      }
    }
    const bool merge_exact =
        info.boundary_cells == plan_boundary &&
        stats.shard_boundary_cells.load() == plan_boundary &&
        info.interior_cells + info.boundary_cells == total_cells;

    timer.Reset();
    dbscan::QueryContext<2> ctx;
    const Clustering got = ctx.Run(sharded.index(), min_pts);
    const double query_seconds = timer.Seconds();
    const bool identical =
        reference.num_clusters == got.num_clusters &&
        reference.cluster == got.cluster && reference.is_core == got.is_core &&
        reference.membership_offsets == got.membership_offsets &&
        reference.membership_ids == got.membership_ids;

    all_identical = all_identical && identical;
    all_merge_exact = all_merge_exact && merge_exact;
    if (info.boundary_cells > max_boundary) max_boundary = info.boundary_cells;
    if (shards > 1 && info.boundary_cells < prev_boundary) {
      boundary_grows = false;
    }
    prev_boundary = info.boundary_cells;

    const double frac = total_cells > 0
                            ? double(info.boundary_cells) / double(total_cells)
                            : 0.0;
    table.AddRow({std::to_string(sharded.num_shards()),
                  util::BenchTable::Num(build_seconds, 4),
                  util::BenchTable::Num(info.shard_build_seconds, 4),
                  util::BenchTable::Num(info.shard_count_seconds, 4),
                  util::BenchTable::Num(info.merge_seconds, 4),
                  std::to_string(info.boundary_cells),
                  std::to_string(info.interior_cells),
                  util::BenchTable::Num(frac, 4),
                  std::to_string(info.seam_links),
                  util::BenchTable::Num(query_seconds, 4),
                  identical ? "yes" : "NO", merge_exact ? "yes" : "NO"});
  }
  table.Print();
  table.PrintCsv();

  // The acceptance properties: merge work == seam size (exactly), the seam
  // stays a minority of the cells at EVERY tested shard count (checked on
  // the worst row, so the gate is non-vacuous as soon as any cut crosses
  // populated space), and more seams mean more (never fewer) boundary
  // cells.
  const bool seam_is_small = max_boundary * 2 < total_cells;
  const bool proportional =
      all_merge_exact && seam_is_small && boundary_grows;
  std::printf("\nproportional=%s (merge recounts exactly the seam cells: %s; "
              "worst seam %zu of %zu cells; boundary %s with shard "
              "count)\n",
              proportional ? "yes" : "NO", all_merge_exact ? "yes" : "NO",
              max_boundary, total_cells,
              boundary_grows ? "grows" : "DOES NOT GROW");
  std::printf("identical=%s (every sharded clustering vs the unsharded "
              "reference)\n",
              all_identical ? "yes" : "NO");
  return proportional && all_identical ? 0 : 1;
}
