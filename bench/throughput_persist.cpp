// Index persistence throughput: cold-start load vs rebuild (time and
// bytes), for both load modes, plus snapshot+journal recovery of the
// streaming path — reported like the fig6-10 harness (aligned tables +
// #csv rows).
//
// Three phases:
//
//   1. Snapshot round trip — builds a CellIndex over the 2D-SS-varden
//      dataset, saves it, and loads it back in kOwned and kMapped mode.
//      Reported per row: save/load seconds, file MB, the speedup of each
//      load over the from-scratch build (the cold-start win persistence
//      exists for; kMapped's load cost is validation only), and whether
//      the loaded index's labels are bit-identical to the live index's.
//   2. The same round trip at several min_pts settings (within and beyond
//      the saved counts cap, exercising the recount path over loaded —
//      including mapped — storage).
//   3. Journal recovery — a journaled streaming run with a mid-stream
//      checkpoint; recovery (load checkpoint + replay the delta) must be
//      bit-identical to the uninterrupted writer and cost replay ~ delta,
//      not dataset.
//
// EXIT CODE enforces the acceptance property: every bit-identity check
// must pass (and every load must be no slower than the rebuild it
// replaces at default scale — reported, not enforced, since tiny scaled
// runs are dominated by constant costs).
//
// Scaled by PDBSCAN_BENCH_SCALE as usual.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common.h"

namespace {

bool Identical(const pdbscan::Clustering& a, const pdbscan::Clustering& b) {
  return a.num_clusters == b.num_clusters && a.cluster == b.cluster &&
         a.is_core == b.is_core &&
         a.membership_offsets == b.membership_offsets &&
         a.membership_ids == b.membership_ids;
}

}  // namespace

int main() {
  using namespace pdbscan;
  using namespace pdbscan::bench;
  namespace fs = std::filesystem;

  const size_t n = ScaledN(100000);
  const double eps = 300;  // The 2D-SS-varden defaults of the fig11 suite.
  const size_t counts_cap = 100;
  const size_t min_pts = 10;
  bool all_identical = true;

  const fs::path dir =
      fs::temp_directory_path() / "pdbscan_bench_persist";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string snap_path = (dir / "index.pdbsnap").string();

  std::printf("=== Index persistence: cold-start load vs rebuild ===\n");
  std::printf("dataset=2D-SS-varden n=%zu eps=%g counts_cap=%zu minpts=%zu\n\n",
              n, eps, counts_cap, min_pts);

  const auto pts = data::SsVarden<2>(n);

  // --- Phase 1: build, save, load both ways. ------------------------------
  dbscan::PipelineStats persist_stats;
  util::Timer timer;
  auto live = CellIndex<2>::Build(pts, eps, counts_cap);
  const double build_seconds = timer.Seconds();

  timer.Reset();
  SaveIndex<2>(snap_path, *live, &persist_stats);
  const double save_seconds = timer.Seconds();
  const double file_mb =
      static_cast<double>(persist_stats.snapshot_bytes_written.load()) /
      (1024.0 * 1024.0);

  QueryContext<2> live_ctx;
  const Clustering reference = live_ctx.Run(*live, min_pts);

  util::BenchTable table({"path", "seconds", "file_mb", "vs_rebuild",
                          "identical"});
  table.AddRow({"build", util::BenchTable::Num(build_seconds), "-", "1x",
                "-"});
  table.AddRow({"save", util::BenchTable::Num(save_seconds),
                util::BenchTable::Num(file_mb, 5), "-", "-"});

  std::shared_ptr<const CellIndex<2>> loaded_owned, loaded_mapped;
  for (const LoadMode mode : {LoadMode::kOwned, LoadMode::kMapped}) {
    const char* name = mode == LoadMode::kMapped ? "load-mapped" : "load-owned";
    timer.Reset();
    auto loaded = LoadIndex<2>(snap_path, mode, &persist_stats);
    const double load_seconds = timer.Seconds();
    QueryContext<2> ctx;
    const bool identical =
        Identical(reference, ctx.Run(loaded, min_pts));
    all_identical = all_identical && identical;
    table.AddRow({name, util::BenchTable::Num(load_seconds),
                  util::BenchTable::Num(file_mb, 5),
                  util::BenchTable::Num(build_seconds / load_seconds, 3) + "x",
                  identical ? "yes" : "NO"});
    (mode == LoadMode::kMapped ? loaded_mapped : loaded_owned) = loaded;
  }
  table.Print();
  std::printf("#csv persist,build,%zu,%.6f,0,1x,-\n", n, build_seconds);
  std::printf("#csv persist,save,%zu,%.6f,%.3f,-,-\n", n, save_seconds,
              file_mb);

  // --- Phase 2: serving equivalence across min_pts (incl. over-cap). ------
  std::printf("\n--- serving equivalence across min_pts ---\n");
  util::BenchTable sweep_table({"minpts", "owned_identical",
                                "mapped_identical"});
  for (const size_t m : {size_t{2}, min_pts, counts_cap + 50}) {
    const Clustering want = live_ctx.Run(*live, m);
    QueryContext<2> co, cm;
    const bool owned_ok =
        Identical(want, co.Run(loaded_owned, m));
    const bool mapped_ok =
        Identical(want, cm.Run(loaded_mapped, m));
    all_identical = all_identical && owned_ok && mapped_ok;
    sweep_table.AddRow({std::to_string(m), owned_ok ? "yes" : "NO",
                        mapped_ok ? "yes" : "NO"});
    std::printf("#csv persist,minpts-%zu,%zu,0,0,%s,%s\n", m, n,
                owned_ok ? "yes" : "NO", mapped_ok ? "yes" : "NO");
  }
  sweep_table.Print();

  // --- Phase 3: snapshot + journal recovery of the streaming path. --------
  std::printf("\n--- streaming recovery: checkpoint + journal replay ---\n");
  const size_t batch = std::max<size_t>(n / 100, 1);
  const size_t batches_before = 4, batches_after = 4;
  const fs::path stream_dir = dir / "stream";
  fs::create_directories(stream_dir);
  {
    PersistentClusterer<2> writer(stream_dir.string(), eps, counts_cap);
    uint64_t cursor = 0;
    for (size_t b = 0; b < batches_before + batches_after; ++b) {
      if (b == batches_before) {
        timer.Reset();
        writer.Checkpoint();
        std::printf("checkpoint after %zu batches: %.3fs (%zu points)\n",
                    batches_before, timer.Seconds(), writer.num_points());
      }
      const auto inserts = data::SsVarden<2>(batch, /*seed=*/1000 + b);
      std::vector<uint64_t> erases;
      if (b > 0) {
        for (size_t k = 0; k < batch / 4; ++k) erases.push_back(cursor++);
      }
      writer.ApplyUpdates(std::span<const Point<2>>(inserts),
                          std::span<const uint64_t>(erases));
    }
    // Uninterrupted state to compare recovery against.
    const Clustering want = writer.Run(min_pts);
    timer.Reset();
    PersistOptions popts;
    popts.load_mode = LoadMode::kMapped;
    PersistentClusterer<2> recovered(stream_dir.string(), eps, counts_cap,
                                     Options(), popts);
    const double recover_seconds = timer.Seconds();
    const bool identical =
        Identical(want, recovered.Run(min_pts));
    all_identical = all_identical && identical;
    const size_t replayed = recovered.records_replayed();
    const bool delta_proportional = replayed == batches_after;
    all_identical = all_identical && delta_proportional;
    std::printf("recovery: %.3fs, %zu journal records replayed (expected "
                "%zu), %zu live points, identical=%s\n",
                recover_seconds, replayed, batches_after,
                recovered.num_points(), identical ? "yes" : "NO");
    std::printf("#csv persist,recover,%zu,%.6f,%zu,%s,%s\n",
                recovered.num_points(), recover_seconds, replayed,
                identical ? "yes" : "NO",
                delta_proportional ? "yes" : "NO");
  }

  fs::remove_all(dir);
  if (!all_identical) {
    std::printf("\nFAIL: a loaded or recovered index diverged from the live "
                "run\n");
    return 1;
  }
  std::printf("\nOK: every loaded and recovered index is bit-identical to "
              "the live run\n");
  return 0;
}
