// Section 7.2 serial comparison: one-thread times of our exact and
// approximate implementations against the sequential comparators.
//
// The paper reports that its serial runs beat Gan & Tao's reference binary
// by 5.18x (exact) / 1.52x (approx) on average. That binary is not
// redistributable; the honest stand-ins here are the classic sequential
// implementations we built from scratch: the original Ester et al. DBSCAN
// over a k-d tree, and the point-wise grid DBSCAN (hpdbscan with one
// thread), with our pipeline also run on a single worker so scheduling
// overhead is excluded from the "serial" label.
#include "common.h"

int main() {
  using namespace pdbscan;
  using namespace pdbscan::bench;

  parallel::set_num_workers(1);

  std::printf("=== Serial comparison (1 thread) ===\n");
  std::printf("scale=%g\n\n", util::GetEnvDouble("PDBSCAN_BENCH_SCALE", 1.0));

  util::BenchTable table({"dataset", "our-exact", "our-exact-qt", "our-approx",
                          "original(kd)", "grid-pointwise", "best-ratio"});
  for (const auto& ds : HighDimSuite()) {
    const double exact = RunOurs(ds, ds.default_eps, ds.default_minpts, OurExact());
    const double exact_qt =
        RunOurs(ds, ds.default_eps, ds.default_minpts, OurExactQt());
    const double approx =
        RunOurs(ds, ds.default_eps, ds.default_minpts, OurApprox(0.01));
    const double original =
        RunBaseline("original", ds, ds.default_eps, ds.default_minpts);
    const double grid_pw =
        RunBaseline("hpdbscan", ds, ds.default_eps, ds.default_minpts);
    const double best_ours = std::min({exact, exact_qt, approx});
    const double best_seq = std::min(original, grid_pw);
    table.AddRow({ds.name, util::BenchTable::Num(exact),
                  util::BenchTable::Num(exact_qt), util::BenchTable::Num(approx),
                  util::BenchTable::Num(original), util::BenchTable::Num(grid_pw),
                  util::BenchTable::Num(best_seq / best_ours, 3) + "x"});
  }
  table.Print();

  parallel::set_num_workers(
      static_cast<int>(std::thread::hardware_concurrency()));
  return 0;
}
