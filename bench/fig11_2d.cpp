// Figure 11 reproduction: the 2D study. Four panels per dataset family:
//   (a/e) running time vs epsilon,
//   (b/f) running time vs minPts,
//   (c/g) running time vs number of points,
//   (d/h) speedup over the best serial configuration vs thread count,
// for the six 2D variants (grid/box x bcp/usec/delaunay) plus HPDBSCAN and
// PDSDBSCAN.
//
// Expected shapes from the paper: grid beats box (cheaper cell
// construction), Delaunay is the slowest of our variants (triangulation
// dominates), our-2d-grid-bcp is fastest overall, and both baselines trail
// by orders of magnitude.
#include "common.h"

namespace {

using namespace pdbscan;
using namespace pdbscan::bench;

void EpsilonPanel(const BenchDataset& ds) {
  std::vector<std::string> header = {"impl \\ eps"};
  for (const double eps : ds.eps_sweep) header.push_back(util::BenchTable::Num(eps));
  util::BenchTable table(std::move(header));
  for (const auto& [name, options] : PaperConfigs2d()) {
    std::vector<std::string> row = {name};
    for (const double eps : ds.eps_sweep) {
      row.push_back(
          util::BenchTable::Num(RunOurs(ds, eps, ds.default_minpts, options)));
    }
    table.AddRow(std::move(row));
  }
  for (const std::string baseline : {"hpdbscan", "pdsdbscan"}) {
    std::vector<std::string> row = {baseline};
    for (const double eps : ds.eps_sweep) {
      row.push_back(
          util::BenchTable::Num(RunBaseline(baseline, ds, eps, ds.default_minpts)));
    }
    table.AddRow(std::move(row));
  }
  std::printf("[time vs eps] (%s, n=%zu, minpts=%zu)\n", ds.name.c_str(),
              ds.size(), ds.default_minpts);
  table.Print();
  std::printf("\n");
}

void MinptsPanel(const BenchDataset& ds) {
  const std::vector<size_t> sweep = {10, 100, 1000, 10000};
  std::vector<std::string> header = {"impl \\ minpts"};
  for (const size_t m : sweep) header.push_back(std::to_string(m));
  util::BenchTable table(std::move(header));
  for (const auto& [name, options] : PaperConfigs2d()) {
    std::vector<std::string> row = {name};
    for (const size_t m : sweep) {
      row.push_back(util::BenchTable::Num(RunOurs(ds, ds.default_eps, m, options)));
    }
    table.AddRow(std::move(row));
  }
  for (const std::string baseline : {"hpdbscan", "pdsdbscan"}) {
    std::vector<std::string> row = {baseline};
    for (const size_t m : sweep) {
      row.push_back(util::BenchTable::Num(RunBaseline(baseline, ds, ds.default_eps, m)));
    }
    table.AddRow(std::move(row));
  }
  std::printf("[time vs minpts] (%s, eps=%g)\n", ds.name.c_str(), ds.default_eps);
  table.Print();
  std::printf("\n");
}

void SizePanel(bool varden) {
  const std::vector<size_t> sizes = {ScaledN(5000), ScaledN(10000),
                                     ScaledN(20000), ScaledN(50000)};
  std::vector<std::string> header = {"impl \\ n"};
  for (const size_t n : sizes) header.push_back(std::to_string(n));
  util::BenchTable table(std::move(header));

  std::vector<BenchDataset> datasets;
  for (const size_t n : sizes) {
    auto pts = varden ? data::SsVarden<2>(n) : data::SsSimden<2>(n);
    datasets.push_back(MakeDataset<2>("tmp", std::move(pts),
                                      varden ? 300.0 : 150.0, 100, {}));
  }
  for (const auto& [name, options] : PaperConfigs2d()) {
    std::vector<std::string> row = {name};
    for (const auto& ds : datasets) {
      row.push_back(util::BenchTable::Num(
          RunOurs(ds, ds.default_eps, ds.default_minpts, options)));
    }
    table.AddRow(std::move(row));
  }
  for (const std::string baseline : {"hpdbscan", "pdsdbscan"}) {
    std::vector<std::string> row = {baseline};
    for (const auto& ds : datasets) {
      row.push_back(util::BenchTable::Num(
          RunBaseline(baseline, ds, ds.default_eps, ds.default_minpts)));
    }
    table.AddRow(std::move(row));
  }
  std::printf("[time vs num-points] (2D-SS-%s)\n", varden ? "varden" : "simden");
  table.Print();
  std::printf("\n");
}

void ThreadPanel(const BenchDataset& ds) {
  const std::vector<int> threads = ThreadSweep();
  parallel::set_num_workers(1);
  double best_serial = std::numeric_limits<double>::infinity();
  std::string best_name;
  for (const auto& [name, options] : PaperConfigs2d()) {
    const double t = RunOurs(ds, ds.default_eps, ds.default_minpts, options);
    if (t < best_serial) {
      best_serial = t;
      best_name = name;
    }
  }
  std::vector<std::string> header = {"impl \\ threads"};
  for (const int t : threads) header.push_back(std::to_string(t));
  util::BenchTable table(std::move(header));
  for (const auto& [name, options] : PaperConfigs2d()) {
    std::vector<std::string> row = {name};
    for (const int t : threads) {
      parallel::set_num_workers(t);
      row.push_back(util::BenchTable::Num(
          best_serial / RunOurs(ds, ds.default_eps, ds.default_minpts, options),
          3));
    }
    table.AddRow(std::move(row));
  }
  parallel::set_num_workers(
      static_cast<int>(std::thread::hardware_concurrency()));
  std::printf("[speedup vs threads] (%s; best serial %s = %.4fs)\n",
              ds.name.c_str(), best_name.c_str(), best_serial);
  table.Print();
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("=== Figure 11: 2D implementations ===\n");
  std::printf("threads=%d scale=%g\n\n", parallel::num_workers(),
              util::GetEnvDouble("PDBSCAN_BENCH_SCALE", 1.0));
  for (const auto& ds : TwoDimSuite()) {
    EpsilonPanel(ds);
    MinptsPanel(ds);
  }
  SizePanel(/*varden=*/false);
  SizePanel(/*varden=*/true);
  for (const auto& ds : TwoDimSuite()) ThreadPanel(ds);
  return 0;
}
