// Streaming update throughput: per-batch update latency and queries/sec
// under live updates, against a StreamingClusterer (incremental
// DynamicCellIndex snapshots served by an EnginePool), reported like the
// fig6-10 harness (aligned tables + #csv rows).
//
// Two phases:
//
//   1. Update cost vs batch size — applies insert+erase batches of
//      increasing size to a large dataset and reports apply latency,
//      cells_rebuilt / cells_retained, and the equivalent from-scratch
//      CellIndex build time. The acceptance property is printed per row:
//      cells_rebuilt must track the batch's dirty-cell footprint, NOT the
//      total cell count (`proportional=yes` when rebuilt cells stay under
//      half the cells at the smallest batch and grow with batch size).
//   2. Serving under updates — a writer thread applies batches continuously
//      while client threads query leased contexts; reports queries/sec and
//      updates/sec, showing readers don't block on the writer.
//
// Scaled by PDBSCAN_BENCH_SCALE as usual.
#include <atomic>
#include <cinttypes>
#include <random>
#include <thread>
#include <vector>

#include "common.h"
#include "streaming/streaming_clusterer.h"

int main() {
  using namespace pdbscan;
  using namespace pdbscan::bench;

  const size_t n = ScaledN(100000);
  const double eps = 300;  // The 2D-SS-varden defaults of the fig11 suite.
  const size_t counts_cap = 100;
  const size_t min_pts = 10;

  std::printf("=== Streaming updates: incremental snapshot maintenance ===\n");
  std::printf("dataset=2D-SS-varden n=%zu eps=%g counts_cap=%zu minpts=%zu, "
              "hardware threads=%u\n\n",
              n, eps, counts_cap, min_pts,
              std::thread::hardware_concurrency());

  const auto pts = data::SsVarden<2>(n);

  // Initial load: one big batch (everything is dirty — the incremental
  // path's worst case, equivalent to a full build).
  StreamingClusterer<2> stream(eps, counts_cap);
  util::Timer load_timer;
  stream.Insert(pts);
  const double load_seconds = load_timer.Seconds();
  const size_t total_cells = stream.num_cells();
  std::printf("initial load: %.3fs (%zu points, %zu cells, all rebuilt)\n",
              load_seconds, stream.num_points(), total_cells);

  // From-scratch reference: what every update batch would cost without
  // incremental maintenance.
  util::Timer rebuild_timer;
  auto full_index = CellIndex<2>::Build(pts, eps, counts_cap);
  const double full_rebuild_seconds = rebuild_timer.Seconds();
  std::printf("from-scratch CellIndex build: %.3fs (the per-update cost "
              "this bench exists to beat)\n\n",
              full_rebuild_seconds);

  // --- Phase 1: update latency and rebuilt-cell footprint vs batch size ---
  std::printf("--- update cost vs batch size (insert B fresh + erase B "
              "oldest) ---\n");
  util::BenchTable table({"batch", "apply_sec", "cells_rebuilt",
                          "cells_retained", "rebuilt_frac", "vs_full_rebuild",
                          "query_sec", "identical"});
  uint64_t erase_cursor = 0;  // Ids are erased oldest-first.
  std::mt19937_64 rng(7);
  size_t smallest_batch_rebuilt = 0;
  bool rebuilt_grows = true;
  size_t prev_rebuilt = 0;
  const std::vector<size_t> batch_sizes = {
      std::max<size_t>(n / 1000, 1), std::max<size_t>(n / 100, 1),
      std::max<size_t>(n / 10, 1)};
  for (const size_t batch : batch_sizes) {
    // Fresh inserts drawn from the same distribution (jittered copies of
    // existing points keeps density realistic).
    std::vector<Point2> ins(batch);
    for (size_t i = 0; i < batch; ++i) {
      const auto& base = pts[rng() % n];
      ins[i] = {{base[0] + double(rng() % 1000) / 100.0,
                 base[1] + double(rng() % 1000) / 100.0}};
    }
    std::vector<uint64_t> del(batch);
    for (size_t i = 0; i < batch; ++i) del[i] = erase_cursor++;

    util::Timer apply_timer;
    stream.ApplyUpdates(ins, del);
    const double apply_seconds = apply_timer.Seconds();
    const auto& u = stream.last_update();

    // The published snapshot must cluster exactly like a from-scratch run.
    const auto live = stream.LivePoints();
    util::Timer query_timer;
    const Clustering got = stream.Run(min_pts);
    const double query_seconds = query_timer.Seconds();
    const Clustering want = Dbscan<2>(live, eps, min_pts);
    const bool identical =
        want.num_clusters == got.num_clusters && want.cluster == got.cluster &&
        want.is_core == got.is_core &&
        want.membership_offsets == got.membership_offsets &&
        want.membership_ids == got.membership_ids;

    const double frac =
        double(u.cells_rebuilt) / double(u.cells_rebuilt + u.cells_retained);
    if (batch == batch_sizes.front()) smallest_batch_rebuilt = u.cells_rebuilt;
    if (u.cells_rebuilt < prev_rebuilt) rebuilt_grows = false;
    prev_rebuilt = u.cells_rebuilt;
    table.AddRow({std::to_string(batch),
                  util::BenchTable::Num(apply_seconds, 4),
                  std::to_string(u.cells_rebuilt),
                  std::to_string(u.cells_retained),
                  util::BenchTable::Num(frac, 3),
                  util::BenchTable::Num(apply_seconds / full_rebuild_seconds,
                                        3),
                  util::BenchTable::Num(query_seconds, 4),
                  identical ? "yes" : "NO"});
  }
  table.Print();
  table.PrintCsv();

  // The acceptance property: rebuilt cells track the batch footprint, not
  // the total cell count.
  const bool proportional =
      smallest_batch_rebuilt * 2 < total_cells && rebuilt_grows;
  std::printf("\nproportional=%s (smallest batch rebuilt %zu of %zu cells; "
              "rebuilt count %s with batch size)\n\n",
              proportional ? "yes" : "NO", smallest_batch_rebuilt, total_cells,
              rebuilt_grows ? "grows" : "DOES NOT GROW");

  // --- Phase 2: queries/sec while a writer streams batches ---------------
  std::printf("--- serving under updates: %zu-point batches, readers never "
              "block ---\n",
              std::max<size_t>(n / 100, 1));
  parallel::set_num_workers(1);  // Max aggregate q/s: queries run serially.
  util::BenchTable serve({"clients", "queries", "seconds", "queries/sec",
                          "updates_applied", "updates/sec"});
  const size_t queries_per_client = 8;
  for (const int clients : {1, 2, 4, 8}) {
    std::atomic<bool> stop{false};
    std::atomic<size_t> updates{0};
    std::thread writer([&]() {
      const size_t batch = std::max<size_t>(n / 100, 1);
      while (!stop.load(std::memory_order_relaxed)) {
        std::vector<Point2> ins(batch);
        for (size_t i = 0; i < batch; ++i) {
          const auto& base = pts[rng() % n];
          ins[i] = {{base[0] + double(rng() % 1000) / 100.0,
                     base[1] + double(rng() % 1000) / 100.0}};
        }
        std::vector<uint64_t> del(batch);
        for (size_t i = 0; i < batch; ++i) del[i] = erase_cursor++;
        stream.ApplyUpdates(ins, del);
        updates.fetch_add(1, std::memory_order_relaxed);
      }
    });
    util::Timer timer;
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&]() {
        for (size_t q = 0; q < queries_per_client; ++q) {
          (void)stream.Run(min_pts);
        }
      });
    }
    for (auto& th : threads) th.join();
    const double seconds = timer.Seconds();
    stop.store(true, std::memory_order_relaxed);
    writer.join();
    const size_t total = size_t(clients) * queries_per_client;
    serve.AddRow({std::to_string(clients), std::to_string(total),
                  util::BenchTable::Num(seconds, 4),
                  util::BenchTable::Num(double(total) / seconds, 4),
                  std::to_string(updates.load()),
                  util::BenchTable::Num(double(updates.load()) / seconds, 3)});
  }
  serve.Print();
  serve.PrintCsv();

  dbscan::PipelineStats agg;
  stream.AggregateStats(agg);
  std::printf("\ncumulative: snapshots=%zu cells_rebuilt=%zu "
              "cells_retained=%zu (retained/rebuilt=%.1f)\n",
              agg.snapshots_published.load(), agg.cells_rebuilt.load(),
              agg.cells_retained.load(),
              agg.cells_rebuilt.load() > 0
                  ? double(agg.cells_retained.load()) /
                        double(agg.cells_rebuilt.load())
                  : 0.0);
  std::printf("kernels: %s dispatch, %zu simd batches, %zu box-pruned / "
              "%zu norm-pruned points\n",
              kernels::LevelName(static_cast<kernels::Level>(
                  agg.kernel_dispatch_level.load())),
              agg.kernel_batches.load(), agg.kernel_points_pruned_box.load(),
              agg.kernel_points_pruned_norm.load());
  return proportional ? 0 : 1;
}
