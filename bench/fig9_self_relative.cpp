// Figure 9 reproduction: self-relative speedup vs thread count on
// 3D-SS-varden — each implementation normalized by its own 1-thread time.
//
// Single-core host note: speedups here will read ~1x; the series still
// verifies that adding (oversubscribed) workers does not degrade the
// implementations, and reproduces the paper's figure on real multicore.
#include "common.h"

int main() {
  using namespace pdbscan;
  using namespace pdbscan::bench;

  const std::vector<int> threads = ThreadSweep();
  const size_t n = ScaledN(10000);
  auto ds = MakeDataset<3>("3D-SS-varden", data::SsVarden<3>(n), 400, 100, {});

  std::printf("=== Figure 9: self-relative speedup, 3D-SS-varden ===\n");
  std::printf("n=%zu eps=%g minpts=%zu\n\n", ds.size(), ds.default_eps,
              ds.default_minpts);

  std::vector<std::string> header = {"impl \\ threads"};
  for (const int t : threads) header.push_back(std::to_string(t));
  util::BenchTable table(std::move(header));

  for (const auto& [name, options] : PaperConfigsHighDim()) {
    parallel::set_num_workers(1);
    const double serial = RunOurs(ds, ds.default_eps, ds.default_minpts, options);
    std::vector<std::string> row = {name};
    for (const int t : threads) {
      parallel::set_num_workers(t);
      const double secs = RunOurs(ds, ds.default_eps, ds.default_minpts, options);
      row.push_back(util::BenchTable::Num(serial / secs, 3));
    }
    table.AddRow(std::move(row));
  }
  for (const std::string baseline : {"hpdbscan", "pdsdbscan"}) {
    parallel::set_num_workers(1);
    const double serial =
        RunBaseline(baseline, ds, ds.default_eps, ds.default_minpts);
    std::vector<std::string> row = {baseline};
    for (const int t : threads) {
      parallel::set_num_workers(t);
      const double secs =
          RunBaseline(baseline, ds, ds.default_eps, ds.default_minpts);
      row.push_back(util::BenchTable::Num(serial / secs, 3));
    }
    table.AddRow(std::move(row));
  }
  parallel::set_num_workers(
      static_cast<int>(std::thread::hardware_concurrency()));
  table.Print();
  return 0;
}
