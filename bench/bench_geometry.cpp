// Microbenchmarks for the geometric substrates: k-d tree, quadtree range
// counting, Delaunay triangulation, and USEC wavefront construction/queries.
// These are the per-cell/per-query costs behind the Figure 6/11 differences
// between our variants.
#include <numeric>
#include <random>

#include <benchmark/benchmark.h>

#include "geometry/delaunay.h"
#include "geometry/kd_tree.h"
#include "geometry/point.h"
#include "geometry/quadtree.h"
#include "geometry/wavefront.h"

namespace {

using namespace pdbscan;
using geometry::Point;

template <int D>
std::vector<Point<D>> RandomPoints(size_t n, double side, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coord(0.0, side);
  std::vector<Point<D>> pts(n);
  for (auto& p : pts) {
    for (int k = 0; k < D; ++k) p[k] = coord(rng);
  }
  return pts;
}

void BM_KdTreeBuild3d(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto pts = RandomPoints<3>(n, 100.0, 1);
  for (auto _ : state) {
    geometry::KdTree<3> tree{std::span<const Point<3>>(pts)};
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_KdTreeBuild3d)->Arg(1 << 14)->Arg(1 << 17);

void BM_KdTreeBallQuery3d(benchmark::State& state) {
  const size_t n = 1 << 16;
  auto pts = RandomPoints<3>(n, 100.0, 2);
  geometry::KdTree<3> tree{std::span<const Point<3>>(pts)};
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.CountInBall(pts[i++ % n], static_cast<double>(state.range(0))));
  }
}
BENCHMARK(BM_KdTreeBallQuery3d)->Arg(2)->Arg(8);

void BM_QuadtreeBuild(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto pts = RandomPoints<3>(n, 10.0, 3);
  geometry::BBox<3> box{{{0, 0, 0}}, {{10, 10, 10}}};
  for (auto _ : state) {
    std::vector<uint32_t> idx(n);
    std::iota(idx.begin(), idx.end(), 0u);
    geometry::CellQuadtree<3> tree(std::span<const Point<3>>(pts),
                                   std::move(idx), box);
    benchmark::DoNotOptimize(tree.num_nodes());
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_QuadtreeBuild)->Arg(1 << 12)->Arg(1 << 15);

void BM_QuadtreeCountVsScan(benchmark::State& state) {
  // The MarkCore tradeoff: quadtree count vs scanning all cell points.
  const size_t n = 1 << 14;
  auto pts = RandomPoints<3>(n, 10.0, 4);
  geometry::BBox<3> box{{{0, 0, 0}}, {{10, 10, 10}}};
  std::vector<uint32_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0u);
  geometry::CellQuadtree<3> tree(std::span<const Point<3>>(pts),
                                 std::move(idx), box);
  const bool use_tree = state.range(0) == 1;
  size_t q = 0;
  for (auto _ : state) {
    const Point<3>& center = pts[q++ % n];
    size_t count = 0;
    if (use_tree) {
      count = tree.CountInBall(center, 0.5, 100);
    } else {
      for (const auto& p : pts) {
        if (p.SquaredDistance(center) <= 0.25 && ++count >= 100) break;
      }
    }
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_QuadtreeCountVsScan)->Arg(0)->Arg(1);

void BM_DelaunayBuild(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto pts = RandomPoints<2>(n, 1000.0, 5);
  for (auto _ : state) {
    geometry::Delaunay dt{std::span<const Point<2>>(pts)};
    benchmark::DoNotOptimize(dt.num_triangles());
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_DelaunayBuild)->Arg(1 << 12)->Arg(1 << 15);

void BM_EnvelopeBuild(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::mt19937_64 rng(6);
  std::uniform_real_distribution<double> x(0.0, 50.0), y(-3.0, 0.0);
  std::vector<Point<2>> centers(n);
  for (auto& c : centers) c = {{x(rng), y(rng)}};
  for (auto _ : state) {
    geometry::Envelope env(centers, 3.0);
    benchmark::DoNotOptimize(env.arcs().size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_EnvelopeBuild)->Arg(64)->Arg(1024);

void BM_EnvelopeQuery(benchmark::State& state) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> x(0.0, 50.0), y(-3.0, 0.0);
  std::vector<Point<2>> centers(1024);
  for (auto& c : centers) c = {{x(rng), y(rng)}};
  geometry::Envelope env(centers, 3.0);
  std::uniform_real_distribution<double> qy(0.0, 3.0);
  std::vector<Point<2>> queries(4096);
  for (auto& q : queries) q = {{x(rng), qy(rng)}};
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.Contains(queries[i++ % queries.size()]));
  }
}
BENCHMARK(BM_EnvelopeQuery);

}  // namespace

BENCHMARK_MAIN();
