// Microbenchmarks for the Table 1 parallel primitives, via google-benchmark.
// These are the building blocks whose practical constants decide whether the
// work-efficient design pays off.
#include <numeric>
#include <random>

#include <benchmark/benchmark.h>

#include "containers/hash_table.h"
#include "containers/union_find.h"
#include "parallel/scheduler.h"
#include "primitives/filter.h"
#include "primitives/integer_sort.h"
#include "primitives/merge.h"
#include "primitives/random.h"
#include "primitives/scan.h"
#include "primitives/semisort.h"
#include "primitives/sort.h"

namespace {

using namespace pdbscan;

void BM_ScanExclusive(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<long> base(n, 1);
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<long> a = base;
    state.ResumeTiming();
    benchmark::DoNotOptimize(primitives::ScanExclusive(a));
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_ScanExclusive)->Arg(1 << 16)->Arg(1 << 20);

void BM_Filter(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<int> a(n);
  std::iota(a.begin(), a.end(), 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        primitives::Filter(a, [](int x) { return (x & 7) == 0; }));
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_Filter)->Arg(1 << 16)->Arg(1 << 20);

void BM_ParallelSort(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::mt19937_64 rng(1);
  std::vector<uint64_t> base(n);
  for (auto& x : base) x = rng();
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<uint64_t> a = base;
    state.ResumeTiming();
    primitives::ParallelSort(a);
    benchmark::DoNotOptimize(a.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_ParallelSort)->Arg(1 << 16)->Arg(1 << 20);

void BM_IntegerSort(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::mt19937_64 rng(2);
  std::vector<uint32_t> base(n);
  for (auto& x : base) x = rng() % 128;
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<uint32_t> a = base;
    state.ResumeTiming();
    primitives::IntegerSort(a, 128, [](uint32_t x) { return x; });
    benchmark::DoNotOptimize(a.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_IntegerSort)->Arg(1 << 16)->Arg(1 << 20);

void BM_Semisort(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::mt19937_64 rng(3);
  std::vector<std::pair<uint64_t, uint32_t>> pairs(n);
  for (size_t i = 0; i < n; ++i) {
    pairs[i] = {rng() % (n / 16 + 1), static_cast<uint32_t>(i)};
  }
  for (auto _ : state) {
    auto result = primitives::Semisort<uint64_t, uint32_t>(
        std::span<const std::pair<uint64_t, uint32_t>>(pairs),
        [](uint64_t k) { return primitives::Hash64(k); },
        [](uint64_t a, uint64_t b) { return a == b; });
    benchmark::DoNotOptimize(result.items.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_Semisort)->Arg(1 << 16)->Arg(1 << 20);

void BM_SemisortVsComparisonSort(benchmark::State& state) {
  // The grid-construction tradeoff the paper highlights: grouping by cell
  // with semisort vs fully sorting by cell id.
  const size_t n = static_cast<size_t>(state.range(0));
  std::mt19937_64 rng(4);
  std::vector<std::pair<uint64_t, uint32_t>> base(n);
  for (size_t i = 0; i < n; ++i) {
    base[i] = {rng() % (n / 16 + 1), static_cast<uint32_t>(i)};
  }
  for (auto _ : state) {
    state.PauseTiming();
    auto a = base;
    state.ResumeTiming();
    primitives::ParallelSort(a, [](const auto& x, const auto& y) {
      return x.first < y.first;
    });
    benchmark::DoNotOptimize(a.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_SemisortVsComparisonSort)->Arg(1 << 20);

void BM_ParallelMerge(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<int> a(n), b(n);
  std::mt19937 rng(5);
  for (auto& x : a) x = static_cast<int>(rng());
  for (auto& x : b) x = static_cast<int>(rng());
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  std::vector<int> out(2 * n);
  for (auto _ : state) {
    primitives::ParallelMerge(std::span<const int>(a), std::span<const int>(b),
                              std::span<int>(out));
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(2 * n) * state.iterations());
}
BENCHMARK(BM_ParallelMerge)->Arg(1 << 16)->Arg(1 << 20);

void BM_HashTableInsert(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  struct Hash {
    uint64_t operator()(uint64_t k) const { return primitives::Hash64(k); }
  };
  struct Eq {
    bool operator()(uint64_t a, uint64_t b) const { return a == b; }
  };
  for (auto _ : state) {
    containers::ConcurrentMap<uint64_t, uint64_t, Hash, Eq> map(n);
    parallel::parallel_for(0, n, [&](size_t i) {
      map.Insert(static_cast<uint64_t>(i), static_cast<uint64_t>(i));
    });
    benchmark::DoNotOptimize(map.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_HashTableInsert)->Arg(1 << 16)->Arg(1 << 20);

void BM_UnionFind(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    containers::UnionFind uf(n);
    parallel::parallel_for(0, n - 1, [&](size_t i) { uf.Link(i, i + 1); });
    benchmark::DoNotOptimize(uf.Find(n - 1));
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_UnionFind)->Arg(1 << 16)->Arg(1 << 20);

}  // namespace

BENCHMARK_MAIN();
