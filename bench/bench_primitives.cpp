// Microbenchmarks for the Table 1 parallel primitives, via google-benchmark.
// These are the building blocks whose practical constants decide whether the
// work-efficient design pays off.
//
// Also hosts the distance-kernel microbench (BM_DistanceKernelCount),
// registered at runtime once per supported dispatch level so one run
// reports scalar vs AVX2 vs AVX-512 side by side. Machine-readable output:
//   bench_bench_primitives --benchmark_filter=DistanceKernel \
//                          --benchmark_format=json
#include <cmath>
#include <numeric>
#include <random>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "containers/flat_array.h"
#include "containers/hash_table.h"
#include "containers/union_find.h"
#include "kernels/kernel_api.h"
#include "parallel/scheduler.h"
#include "primitives/filter.h"
#include "primitives/integer_sort.h"
#include "primitives/merge.h"
#include "primitives/random.h"
#include "primitives/scan.h"
#include "primitives/semisort.h"
#include "primitives/sort.h"

namespace {

using namespace pdbscan;

void BM_ScanExclusive(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<long> base(n, 1);
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<long> a = base;
    state.ResumeTiming();
    benchmark::DoNotOptimize(primitives::ScanExclusive(a));
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_ScanExclusive)->Arg(1 << 16)->Arg(1 << 20);

void BM_Filter(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<int> a(n);
  std::iota(a.begin(), a.end(), 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        primitives::Filter(a, [](int x) { return (x & 7) == 0; }));
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_Filter)->Arg(1 << 16)->Arg(1 << 20);

void BM_ParallelSort(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::mt19937_64 rng(1);
  std::vector<uint64_t> base(n);
  for (auto& x : base) x = rng();
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<uint64_t> a = base;
    state.ResumeTiming();
    primitives::ParallelSort(a);
    benchmark::DoNotOptimize(a.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_ParallelSort)->Arg(1 << 16)->Arg(1 << 20);

void BM_IntegerSort(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::mt19937_64 rng(2);
  std::vector<uint32_t> base(n);
  for (auto& x : base) x = rng() % 128;
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<uint32_t> a = base;
    state.ResumeTiming();
    primitives::IntegerSort(a, 128, [](uint32_t x) { return x; });
    benchmark::DoNotOptimize(a.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_IntegerSort)->Arg(1 << 16)->Arg(1 << 20);

void BM_Semisort(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::mt19937_64 rng(3);
  std::vector<std::pair<uint64_t, uint32_t>> pairs(n);
  for (size_t i = 0; i < n; ++i) {
    pairs[i] = {rng() % (n / 16 + 1), static_cast<uint32_t>(i)};
  }
  for (auto _ : state) {
    auto result = primitives::Semisort<uint64_t, uint32_t>(
        std::span<const std::pair<uint64_t, uint32_t>>(pairs),
        [](uint64_t k) { return primitives::Hash64(k); },
        [](uint64_t a, uint64_t b) { return a == b; });
    benchmark::DoNotOptimize(result.items.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_Semisort)->Arg(1 << 16)->Arg(1 << 20);

void BM_SemisortVsComparisonSort(benchmark::State& state) {
  // The grid-construction tradeoff the paper highlights: grouping by cell
  // with semisort vs fully sorting by cell id.
  const size_t n = static_cast<size_t>(state.range(0));
  std::mt19937_64 rng(4);
  std::vector<std::pair<uint64_t, uint32_t>> base(n);
  for (size_t i = 0; i < n; ++i) {
    base[i] = {rng() % (n / 16 + 1), static_cast<uint32_t>(i)};
  }
  for (auto _ : state) {
    state.PauseTiming();
    auto a = base;
    state.ResumeTiming();
    primitives::ParallelSort(a, [](const auto& x, const auto& y) {
      return x.first < y.first;
    });
    benchmark::DoNotOptimize(a.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_SemisortVsComparisonSort)->Arg(1 << 20);

void BM_ParallelMerge(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<int> a(n), b(n);
  std::mt19937 rng(5);
  for (auto& x : a) x = static_cast<int>(rng());
  for (auto& x : b) x = static_cast<int>(rng());
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  std::vector<int> out(2 * n);
  for (auto _ : state) {
    primitives::ParallelMerge(std::span<const int>(a), std::span<const int>(b),
                              std::span<int>(out));
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(2 * n) * state.iterations());
}
BENCHMARK(BM_ParallelMerge)->Arg(1 << 16)->Arg(1 << 20);

void BM_HashTableInsert(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  struct Hash {
    uint64_t operator()(uint64_t k) const { return primitives::Hash64(k); }
  };
  struct Eq {
    bool operator()(uint64_t a, uint64_t b) const { return a == b; }
  };
  for (auto _ : state) {
    containers::ConcurrentMap<uint64_t, uint64_t, Hash, Eq> map(n);
    parallel::parallel_for(0, n, [&](size_t i) {
      map.Insert(static_cast<uint64_t>(i), static_cast<uint64_t>(i));
    });
    benchmark::DoNotOptimize(map.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_HashTableInsert)->Arg(1 << 16)->Arg(1 << 20);

void BM_UnionFind(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    containers::UnionFind uf(n);
    parallel::parallel_for(0, n - 1, [&](size_t i) { uf.Link(i, i + 1); });
    benchmark::DoNotOptimize(uf.Find(n - 1));
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_UnionFind)->Arg(1 << 16)->Arg(1 << 20);

// --- Distance kernels (src/kernels/) ---------------------------------------

// One saturating count_within sweep per iteration: 64 queries against the
// same n-point SoA lane set, uncapped, eps tuned so roughly a third of the
// points match (partial hits: the partial-norm prune fires without
// short-circuiting whole scans). items_processed counts point-visits, so
// the per-level rates compare directly — the acceptance bar for this PR is
// AVX2 >= 2x scalar on AVX2 hardware.
void BM_DistanceKernelCount(benchmark::State& state, pdbscan::kernels::Level level,
                            int dim) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t kQueries = 64;
  std::mt19937_64 rng(42 + static_cast<uint64_t>(dim));
  std::uniform_real_distribution<double> coord(0.0, 1.0);
  std::vector<containers::FlatArray<double>> lanes_storage(
      static_cast<size_t>(dim));
  std::vector<const double*> lanes(static_cast<size_t>(dim));
  for (int d = 0; d < dim; ++d) {
    double* dst = lanes_storage[static_cast<size_t>(d)].AllocateAligned(n);
    for (size_t i = 0; i < n; ++i) dst[i] = coord(rng);
    lanes[static_cast<size_t>(d)] = dst;
  }
  std::vector<double> queries(kQueries * static_cast<size_t>(dim));
  for (double& v : queries) v = coord(rng);
  // Unit-cube expected nearest-ish scale: r ~ 0.3 of the cube diagonal per
  // sqrt(dim) keeps the match fraction in the tens of percent across dims.
  const double r = 0.3 * std::sqrt(static_cast<double>(dim)) * 0.5;
  const double eps2 = r * r;
  const auto& ops = pdbscan::kernels::OpsFor(level);
  size_t sink = 0;
  for (auto _ : state) {
    for (size_t qi = 0; qi < kQueries; ++qi) {
      sink += ops.count_within(lanes.data(), 1, dim, n,
                               queries.data() + qi * static_cast<size_t>(dim),
                               eps2, SIZE_MAX, nullptr);
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<int64_t>(n * kQueries) *
                          state.iterations());
  state.counters["dim"] = static_cast<double>(dim);
}

// Supported levels are a runtime property (cpuid), so these registrations
// can't be static BENCHMARK() macros — RegisterBenchmark in main().
void RegisterDistanceKernelBenches() {
  for (const pdbscan::kernels::Level level :
       pdbscan::kernels::SupportedLevels()) {
    for (const int dim : {2, 3, 5, 7}) {
      const std::string name = std::string("BM_DistanceKernelCount/") +
                               pdbscan::kernels::LevelName(level) + "/dim:" +
                               std::to_string(dim);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [level, dim](benchmark::State& state) {
            BM_DistanceKernelCount(state, level, dim);
          })
          ->Arg(1 << 12)
          ->Arg(1 << 16);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterDistanceKernelBenches();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
