// Serving-scheduler throughput and tail latency: 8 clients hammering one
// frozen index through a ServingScheduler, reported as p50/p99 latency and
// queries/sec per configuration (aligned table + #csv rows).
//
// Three steady-state arms isolate what each mechanism buys:
//   solo        — coalescing off, cache off: every request pays its own
//                 full pipeline pass (the EnginePool baseline, via the
//                 scheduler's queue).
//   coalesced   — coalescing on, cache off: concurrent requests share one
//                 batched Sweep per claim window.
//   coal+cache  — coalescing on, cache on: repeated (generation, eps,
//                 min_pts) hits skip execution entirely.
// A fourth arm (overload) shrinks the queue and attaches real deadlines, so
// rejections and timeouts actually fire; its p50/p99 cover the requests
// that were served.
//
// Acceptance gate, enforced by exit code: EVERY kOk response in EVERY arm —
// coalesced, cached, overloaded — is bit-identical to the solo
// EnginePool::Run reference for the same min_pts (single generation here,
// so "same generation" == "same reference"). The scheduler is pinned to 1
// inner worker: scaling must come from admission/coalescing/caching, not
// from hiding inner parallelism.
#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "common.h"
#include "parallel/engine_pool.h"
#include "parallel/serving_scheduler.h"

namespace {

using namespace pdbscan;

bool Identical(const Clustering& a, const Clustering& b) {
  return a.num_clusters == b.num_clusters && a.cluster == b.cluster &&
         a.is_core == b.is_core &&
         a.membership_offsets == b.membership_offsets &&
         a.membership_ids == b.membership_ids;
}

double Percentile(std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0;
  const size_t idx = std::min(
      sorted_ms.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted_ms.size() - 1)));
  return sorted_ms[idx];
}

struct ArmConfig {
  std::string name;
  bool coalescing;
  size_t cache_capacity;
  size_t queue_limit;
  uint64_t timeout_nanos;
};

}  // namespace

int main() {
  using namespace pdbscan::bench;

  const size_t n = ScaledN(60000);
  const double eps = 300;  // The 2D-SS-varden defaults of the fig11 suite.
  const std::vector<size_t> minpts_rotation = {10, 20, 50, 100};
  const size_t counts_cap = 100;
  const size_t clients = 8;
  const size_t requests_per_client = 24;

  std::printf("=== Serving scheduler: p50/p99 under 8 clients ===\n");
  std::printf("dataset=2D-SS-varden n=%zu eps=%g counts_cap=%zu "
              "requests/client=%zu\n\n",
              n, eps, counts_cap, requests_per_client);

  const auto pts = data::SsVarden<2>(n);
  auto index = CellIndex<2>::Build(pts, eps, counts_cap);

  // Serving configuration: 1 inner worker, throughput from concurrency.
  parallel::set_num_workers(1);

  // The solo reference every arm is audited against.
  std::vector<Clustering> expected;
  {
    EnginePool<2> ref_pool(index);
    for (const size_t m : minpts_rotation) expected.push_back(ref_pool.Run(m));
  }

  const std::vector<ArmConfig> arms = {
      {"solo", false, 0, 100000, parallel::kNeverNanos},
      {"coalesced", true, 0, 100000, parallel::kNeverNanos},
      {"coal+cache", true, 64, 100000, parallel::kNeverNanos},
      {"overload", true, 0, /*queue_limit=*/4,
       parallel::MillisToNanos(200)},
  };

  util::BenchTable table({"arm", "requests", "ok", "rejected", "timed_out",
                          "coalesced", "cache_hits", "p50_ms", "p99_ms",
                          "qps", "identical"});
  bool all_identical = true;
  for (const ArmConfig& arm : arms) {
    EnginePool<2> pool(index);
    parallel::ServingOptions opts;
    opts.queue_limit = arm.queue_limit;
    opts.default_timeout_nanos = arm.timeout_nanos;
    opts.cache_capacity = arm.cache_capacity;
    opts.coalescing = arm.coalescing;
    opts.num_executors = 1;
    parallel::ServingScheduler<2> scheduler(pool, opts);

    std::atomic<size_t> ok{0};
    std::atomic<size_t> mismatches{0};
    std::mutex latencies_mu;
    std::vector<double> latencies_ms;

    util::Timer timer;
    std::vector<std::thread> threads;
    for (size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c]() {
        std::vector<double> mine;
        mine.reserve(requests_per_client);
        for (size_t q = 0; q < requests_per_client; ++q) {
          const size_t which = (c + q) % minpts_rotation.size();
          util::Timer lat;
          const ServeResult r = scheduler.Submit(minpts_rotation[which]);
          if (r.status != ServeStatus::kOk) continue;
          mine.push_back(lat.Seconds() * 1000.0);
          ok.fetch_add(1, std::memory_order_relaxed);
          if (!Identical(expected[which], r.clustering)) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
        std::lock_guard<std::mutex> lock(latencies_mu);
        latencies_ms.insert(latencies_ms.end(), mine.begin(), mine.end());
      });
    }
    for (auto& t : threads) t.join();
    const double seconds = timer.Seconds();
    scheduler.Shutdown();

    std::sort(latencies_ms.begin(), latencies_ms.end());
    const auto& s = scheduler.serving_stats();
    const size_t total = clients * requests_per_client;
    if (mismatches.load() != 0) all_identical = false;
    table.AddRow(
        {arm.name, std::to_string(total), std::to_string(ok.load()),
         std::to_string(s.requests_rejected.load()),
         std::to_string(s.requests_timed_out.load()),
         std::to_string(s.requests_coalesced.load()),
         std::to_string(s.cache_hits.load()),
         util::BenchTable::Num(Percentile(latencies_ms, 0.50), 3),
         util::BenchTable::Num(Percentile(latencies_ms, 0.99), 3),
         util::BenchTable::Num(static_cast<double>(ok.load()) / seconds, 4),
         mismatches.load() == 0 ? "yes" : "NO"});
  }
  table.Print();
  table.PrintCsv();

  std::printf("\nidentical=%s (every kOk response — coalesced, cached and "
              "overloaded arms included — vs the solo EnginePool::Run "
              "reference)\n",
              all_identical ? "yes" : "NO");
  const unsigned hw = std::thread::hardware_concurrency();
  parallel::set_num_workers(hw > 0 ? static_cast<int>(hw) : 1);
  return all_identical ? 0 : 1;
}
