// Figure 6 reproduction: running time vs epsilon for d >= 3.
//
// The paper's series: our-exact[-qt][-bucketing], our-approx[-qt][-bucketing]
// plus HPDBSCAN and PDSDBSCAN, on SS-simden / SS-varden / UniformFill
// (d = 3, 5, 7), GeoLife and Household, with minPts fixed at the dataset's
// default and epsilon swept around it.
//
// The paper's headline shapes this harness reproduces:
//   * the point-wise baselines slow down as epsilon grows (range queries
//     return more points), while our methods stay flat or improve (fewer
//     cells => smaller cell graph);
//   * our methods beat the baselines by orders of magnitude at the default
//     parameters;
//   * quadtree variants behave more evenly on the skewed GeoLife-like data.
//
// The epsilon sweep additionally runs through a reusable DbscanEngine:
// cells must be rebuilt when epsilon changes, but the engine keeps the
// epsilon-independent layout (dataset bounds) and every workspace
// allocation warm, so the engine total should still beat the sum of
// one-shot calls.
#include "common.h"

int main() {
  using namespace pdbscan;
  using namespace pdbscan::bench;

  std::printf("=== Figure 6: running time (s) vs epsilon, d >= 3 ===\n");
  std::printf("threads=%d  scale=%g\n\n", parallel::num_workers(),
              util::GetEnvDouble("PDBSCAN_BENCH_SCALE", 1.0));

  for (const auto& ds : HighDimSuite()) {
    std::vector<std::string> header = {"impl \\ eps"};
    for (const double eps : ds.eps_sweep) {
      header.push_back(util::BenchTable::Num(eps, 4));
    }
    util::BenchTable table(std::move(header));

    for (const auto& [name, options] : PaperConfigsHighDim()) {
      std::vector<std::string> row = {name};
      for (const double eps : ds.eps_sweep) {
        row.push_back(util::BenchTable::Num(
            RunOurs(ds, eps, ds.default_minpts, options)));
      }
      table.AddRow(std::move(row));
    }
    for (const std::string baseline : {"hpdbscan", "pdsdbscan"}) {
      std::vector<std::string> row = {baseline};
      for (const double eps : ds.eps_sweep) {
        row.push_back(
            util::BenchTable::Num(RunBaseline(baseline, ds, eps, ds.default_minpts)));
      }
      table.AddRow(std::move(row));
    }

    std::printf("(%s, n=%zu, minpts=%zu)\n", ds.name.c_str(), ds.size(),
                ds.default_minpts);
    table.Print();

    // Whole-sweep totals: independent one-shot calls vs one warm engine.
    // Stats are reset between the phases so the stage/counter table below
    // reflects the engine runs alone.
    std::vector<double> oneshot_totals;
    for (const auto& [name, options] : PaperConfigsHighDim()) {
      oneshot_totals.push_back(OneShotEpsilonSweepSeconds(
          ds, ds.eps_sweep, ds.default_minpts, options));
    }
    ResetStageStats();
    util::BenchTable sweep_table(
        {"sweep total", "oneshot", "engine", "speedup"});
    size_t config_idx = 0;
    for (const auto& [name, options] : PaperConfigsHighDim()) {
      const double oneshot = oneshot_totals[config_idx++];
      const double engine = EngineEpsilonSweepSeconds(
          ds, ds.eps_sweep, ds.default_minpts, options);
      sweep_table.AddRow({name, util::BenchTable::Num(oneshot),
                          util::BenchTable::Num(engine),
                          util::BenchTable::Num(oneshot /
                                                std::max(engine, 1e-12))});
    }
    sweep_table.Print();
    PrintStageStats(ds.name + " engine phase");
    std::printf("\n");
  }
  return 0;
}
