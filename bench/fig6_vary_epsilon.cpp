// Figure 6 reproduction: running time vs epsilon for d >= 3.
//
// The paper's series: our-exact[-qt][-bucketing], our-approx[-qt][-bucketing]
// plus HPDBSCAN and PDSDBSCAN, on SS-simden / SS-varden / UniformFill
// (d = 3, 5, 7), GeoLife and Household, with minPts fixed at the dataset's
// default and epsilon swept around it.
//
// The paper's headline shapes this harness reproduces:
//   * the point-wise baselines slow down as epsilon grows (range queries
//     return more points), while our methods stay flat or improve (fewer
//     cells => smaller cell graph);
//   * our methods beat the baselines by orders of magnitude at the default
//     parameters;
//   * quadtree variants behave more evenly on the skewed GeoLife-like data.
#include "common.h"

int main() {
  using namespace pdbscan;
  using namespace pdbscan::bench;

  std::printf("=== Figure 6: running time (s) vs epsilon, d >= 3 ===\n");
  std::printf("threads=%d  scale=%g\n\n", parallel::num_workers(),
              util::GetEnvDouble("PDBSCAN_BENCH_SCALE", 1.0));

  for (const auto& ds : HighDimSuite()) {
    std::vector<std::string> header = {"impl \\ eps"};
    for (const double eps : ds.eps_sweep) {
      header.push_back(util::BenchTable::Num(eps, 4));
    }
    util::BenchTable table(std::move(header));

    for (const auto& [name, options] : PaperConfigsHighDim()) {
      std::vector<std::string> row = {name};
      for (const double eps : ds.eps_sweep) {
        row.push_back(util::BenchTable::Num(
            RunOurs(ds, eps, ds.default_minpts, options)));
      }
      table.AddRow(std::move(row));
    }
    for (const std::string baseline : {"hpdbscan", "pdsdbscan"}) {
      std::vector<std::string> row = {baseline};
      for (const double eps : ds.eps_sweep) {
        row.push_back(
            util::BenchTable::Num(RunBaseline(baseline, ds, eps, ds.default_minpts)));
      }
      table.AddRow(std::move(row));
    }

    std::printf("(%s, n=%zu, minpts=%zu)\n", ds.name.c_str(), ds.size(),
                ds.default_minpts);
    table.Print();
    std::printf("\n");
  }
  return 0;
}
