// Table 2 reproduction: our-exact vs the RP-DBSCAN stand-in on the
// large-dataset suite (GeoLife, Cosmo50, OpenStreetMap, TeraClickLog), four
// epsilon values each, minPts = 100.
//
// The original datasets (up to 4.4 billion points) are unavailable offline;
// distribution-matched surrogates at PDBSCAN_BENCH_SCALE-scaled sizes stand
// in (see DESIGN.md). The paper's shape to reproduce: our-exact wins by a
// large factor everywhere, and TeraClickLog is nearly flat in epsilon
// because all points fall into a single grid cell (everything is core, one
// cluster, no cell-graph work).
#include "common.h"

int main() {
  using namespace pdbscan;
  using namespace pdbscan::bench;

  std::vector<BenchDataset> suite;
  suite.push_back(MakeDataset<3>("GeoLife-like", data::GeoLifeLike(ScaledN(20000)),
                                 0, 100, {10, 20, 40, 80}));
  suite.push_back(MakeDataset<3>("Cosmo50-like", data::Cosmo50Like(ScaledN(20000)),
                                 0, 100, {10, 20, 40, 80}));
  suite.push_back(MakeDataset<2>("OpenStreetMap-like",
                                 data::OpenStreetMapLike(ScaledN(20000)), 0,
                                 100, {10, 20, 40, 80}));
  suite.push_back(MakeDataset<13>("TeraClickLog-like",
                                  data::TeraClickLogLike(ScaledN(20000)), 0,
                                  100, {1500, 3000, 6000, 12000}));

  std::printf("=== Table 2: our-exact vs rpdbscan (stand-in), minPts=100 ===\n");
  std::printf("threads=%d scale=%g\n\n", parallel::num_workers(),
              util::GetEnvDouble("PDBSCAN_BENCH_SCALE", 1.0));

  for (const auto& ds : suite) {
    std::vector<std::string> header = {"impl \\ eps"};
    for (const double eps : ds.eps_sweep) {
      header.push_back(util::BenchTable::Num(eps));
    }
    util::BenchTable table(std::move(header));

    std::vector<double> ours, theirs;
    {
      std::vector<std::string> row = {"our-exact"};
      for (const double eps : ds.eps_sweep) {
        const double t = RunOurs(ds, eps, 100, OurExact());
        ours.push_back(t);
        row.push_back(util::BenchTable::Num(t));
      }
      table.AddRow(std::move(row));
    }
    {
      std::vector<std::string> row = {"rpdbscan-sim"};
      for (const double eps : ds.eps_sweep) {
        const double t = RunBaseline("rpdbscan", ds, eps, 100);
        theirs.push_back(t);
        row.push_back(util::BenchTable::Num(t));
      }
      table.AddRow(std::move(row));
    }
    {
      std::vector<std::string> row = {"speedup"};
      for (size_t i = 0; i < ours.size(); ++i) {
        row.push_back(util::BenchTable::Num(theirs[i] / ours[i], 3) + "x");
      }
      table.AddRow(std::move(row));
    }

    std::printf("(%s, n=%zu, d=%d)\n", ds.name.c_str(), ds.size(), ds.dim);
    table.Print();
    std::printf("\n");
  }
  return 0;
}
