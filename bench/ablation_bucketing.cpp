// Ablation: the bucketing heuristic of Section 4.4.
//
// Bucketing processes size-sorted core cells in batches so that queries by
// large cells prune connectivity work for the rest. This harness reports,
// with bucketing off/on: wall time, the number of connectivity queries
// actually executed, and the number pruned by the union-find check — on the
// datasets where the paper found bucketing to matter most (the skewed
// GeoLife-like data and the denser synthetic sets).
#include "common.h"

#include "dbscan/stats.h"

int main() {
  using namespace pdbscan;
  using namespace pdbscan::bench;

  std::printf("=== Ablation: bucketing (Section 4.4) ===\n");
  std::printf("threads=%d scale=%g\n\n", parallel::num_workers(),
              util::GetEnvDouble("PDBSCAN_BENCH_SCALE", 1.0));

  auto suite = HighDimSuite();
  const std::vector<std::string> keep = {"3D-SS-simden", "3D-SS-varden",
                                         "5D-SS-simden", "3D-GeoLife-like"};

  util::BenchTable table({"dataset", "config", "bucketing", "time(s)",
                          "queries", "pruned", "connected"});
  for (const auto& ds : suite) {
    bool selected = false;
    for (const auto& k : keep) selected = selected || ds.name == k;
    if (!selected) continue;
    for (const auto& base :
         {NamedConfig{"our-exact", OurExact()},
          NamedConfig{"our-exact-qt", OurExactQt()}}) {
      for (const bool bucketing : {false, true}) {
        Options options = base.options;
        options.bucketing = bucketing;
        auto& stats = dbscan::GlobalStats();
        stats.Reset();
        const double secs =
            RunOurs(ds, ds.default_eps, ds.default_minpts, options);
        table.AddRow(
            {ds.name, base.name, bucketing ? "on" : "off",
             util::BenchTable::Num(secs),
             std::to_string(stats.connectivity_queries.load()),
             std::to_string(stats.pruned_queries.load()),
             std::to_string(stats.successful_queries.load())});
      }
    }
  }
  table.Print();
  return 0;
}
