// Figure 10 reproduction: running time vs rho for approximate DBSCAN on
// 5D-SS-simden and 5D-SS-varden, with the best exact method as baseline.
//
// Expected shape (paper Section 7.2): a mild decrease in time as rho grows,
// with the best exact method remaining competitive or faster at the default
// parameters — the basis for the paper's (and Schubert et al.'s) observation
// that exact DBSCAN is usually preferable under well-chosen parameters.
#include "common.h"

int main() {
  using namespace pdbscan;
  using namespace pdbscan::bench;

  const std::vector<double> rhos = {0.001, 0.003, 0.01, 0.03, 0.1};
  const size_t n = ScaledN(10000);

  struct Entry {
    BenchDataset ds;
  };
  std::vector<BenchDataset> suite;
  suite.push_back(MakeDataset<5>("5D-SS-simden", data::SsSimden<5>(n), 300, 100, {}));
  suite.push_back(MakeDataset<5>("5D-SS-varden", data::SsVarden<5>(n), 600, 10, {}));

  std::printf("=== Figure 10: running time (s) vs rho (approximate) ===\n");
  std::printf("threads=%d scale=%g\n\n", parallel::num_workers(),
              util::GetEnvDouble("PDBSCAN_BENCH_SCALE", 1.0));

  for (const auto& ds : suite) {
    std::vector<std::string> header = {"impl \\ rho"};
    for (const double rho : rhos) header.push_back(util::BenchTable::Num(rho));
    header.push_back("(exact)");
    util::BenchTable table(std::move(header));

    {
      std::vector<std::string> row = {"our-approx-qt"};
      for (const double rho : rhos) {
        row.push_back(util::BenchTable::Num(
            RunOurs(ds, ds.default_eps, ds.default_minpts, OurApproxQt(rho))));
      }
      row.push_back("-");
      table.AddRow(std::move(row));
    }
    {
      std::vector<std::string> row = {"our-approx"};
      for (const double rho : rhos) {
        row.push_back(util::BenchTable::Num(
            RunOurs(ds, ds.default_eps, ds.default_minpts, OurApprox(rho))));
      }
      row.push_back("-");
      table.AddRow(std::move(row));
    }
    {
      // Best exact method as the flat reference line.
      double best = std::numeric_limits<double>::infinity();
      for (const auto& [name, options] : PaperConfigsHighDim()) {
        if (options.connect_method == ConnectMethod::kApproxQuadtree) continue;
        best = std::min(best,
                        RunOurs(ds, ds.default_eps, ds.default_minpts, options));
      }
      std::vector<std::string> row = {"our-best-exact"};
      for (size_t i = 0; i < rhos.size(); ++i) row.push_back("-");
      row.push_back(util::BenchTable::Num(best));
      table.AddRow(std::move(row));
    }

    std::printf("(%s, n=%zu, eps=%g, minpts=%zu)\n", ds.name.c_str(), ds.size(),
                ds.default_eps, ds.default_minpts);
    table.Print();
    std::printf("\n");
  }
  return 0;
}
