// Quality-metric unit tests (ARI / NMI / noise ratio / histogram /
// checksum against hand-computed references) and the golden-label corpus:
// every execution surface (engine, pool, sharded, streaming, serving,
// persisted round-trip) x every metric (L2, L1, Linf) must reproduce the
// pinned ground-truth labels of tests/data/ *verbatim* — same partition,
// same first-appearance ids, same FNV-1a label checksum.
//
// The corpus geometry makes one .labels file the truth under all three
// metrics (see tests/data/README.md), so a label flip anywhere in the
// metric-specific grid math, kernels, or any serving surface fails here
// with a dataset name attached.
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/io.h"
#include "dbscan/verify.h"
#include "pdbscan/pdbscan.h"
#include "testing_util.h"

namespace pdbscan {
namespace {

using dbscan::BruteForceDbscan;
using dbscan::SameClustering;
using pdbscan::testing::ExpectIdentical;

// --- Hand-computed references ----------------------------------------------
//
// a = {0,0,1,1,1}, b = {0,0,0,1,1}. Contingency: n00=2, n10=1, n11=2.
// Pair sums: cells C(2,2)+C(1,2)+C(2,2) = 2; rows C(2,2)+C(3,2) = 4;
// cols C(3,2)+C(2,2) = 4; C(5,2) = 10.
// ARI = (2 - 4*4/10) / (4 - 4*4/10) = 0.4 / 2.4 = 1/6.
// H(a) = H(b) = -(2/5)ln(2/5) - (3/5)ln(3/5).
// MI = (2/5)ln(5*2/(2*3)) + (1/5)ln(5*1/(3*3)) + (2/5)ln(5*2/(3*2)).
// NMI = MI / ((H(a)+H(b))/2) = MI / H.

TEST(QualityMetrics, AdjustedRandIndexHandComputed) {
  const std::vector<int64_t> a = {0, 0, 1, 1, 1};
  const std::vector<int64_t> b = {0, 0, 0, 1, 1};
  EXPECT_NEAR(quality::AdjustedRandIndex(a, b), 1.0 / 6.0, 1e-12);
  EXPECT_NEAR(quality::AdjustedRandIndex(b, a), 1.0 / 6.0, 1e-12);

  // Identical partitions under different label values: exactly 1.
  const std::vector<int64_t> relabeled = {5, 5, 7, 7, 7};
  EXPECT_EQ(quality::AdjustedRandIndex(a, relabeled), 1.0);

  // One cluster vs all-singletons: expected index == index == 0.
  const std::vector<int64_t> one(4, 0);
  const std::vector<int64_t> singletons = {0, 1, 2, 3};
  EXPECT_NEAR(quality::AdjustedRandIndex(one, singletons), 0.0, 1e-12);

  // Both partitions trivial (degenerate denominator): 1 by convention.
  EXPECT_EQ(quality::AdjustedRandIndex(one, one), 1.0);
  EXPECT_EQ(quality::AdjustedRandIndex(singletons, singletons), 1.0);
}

TEST(QualityMetrics, NoiseIsARegularLabel) {
  // Noise (-1) counts as one ordinary cluster for agreement purposes:
  // partitions {{0,1},{2,3}} under both labelings, hence ARI/NMI == 1.
  const std::vector<int64_t> a = {-1, -1, 0, 0};
  const std::vector<int64_t> b = {1, 1, 0, 0};
  EXPECT_EQ(quality::AdjustedRandIndex(a, b), 1.0);
  EXPECT_NEAR(quality::NormalizedMutualInfo(a, b), 1.0, 1e-12);
}

TEST(QualityMetrics, NormalizedMutualInfoHandComputed) {
  const std::vector<int64_t> a = {0, 0, 1, 1, 1};
  const std::vector<int64_t> b = {0, 0, 0, 1, 1};
  const double h = -(0.4 * std::log(0.4) + 0.6 * std::log(0.6));
  const double mi = 0.4 * std::log(10.0 / 6.0) +
                    0.2 * std::log(5.0 / 9.0) +
                    0.4 * std::log(10.0 / 6.0);
  EXPECT_NEAR(quality::MutualInfo(a, b), mi, 1e-12);
  EXPECT_NEAR(quality::LabelEntropy(a), h, 1e-12);
  EXPECT_NEAR(quality::NormalizedMutualInfo(a, b), mi / h, 1e-12);

  // Zero-information side: NMI is 0, not NaN.
  const std::vector<int64_t> one(5, 3);
  EXPECT_EQ(quality::NormalizedMutualInfo(one, b), 0.0);
  // Both sides trivial: 1 by convention.
  EXPECT_EQ(quality::NormalizedMutualInfo(one, one), 1.0);
}

TEST(QualityMetrics, NoiseRatioAndHistogram) {
  const std::vector<int64_t> labels = {0, 0, 0, 1, 1, 2, -1};
  EXPECT_NEAR(quality::NoiseRatio(labels), 1.0 / 7.0, 1e-15);
  EXPECT_EQ(quality::NoiseRatio(std::vector<int64_t>{}), 0.0);
  // Sizes 3, 2, 1 -> bucket 0 ([1,2)): one cluster; bucket 1 ([2,4)): two.
  const std::vector<size_t> expected = {1, 2};
  EXPECT_EQ(quality::ClusterSizeHistogram(labels), expected);
  EXPECT_TRUE(quality::ClusterSizeHistogram(std::vector<int64_t>(3, -1))
                  .empty());
}

TEST(QualityMetrics, LabelChecksumPinsContent) {
  // Empty input: the FNV-1a offset basis, pinned.
  EXPECT_EQ(quality::LabelChecksum(std::vector<int64_t>{}),
            1469598103934665603ull);
  const std::vector<int64_t> a = {0, 1, -1};
  std::vector<int64_t> flipped = a;
  flipped[1] = 2;
  EXPECT_NE(quality::LabelChecksum(a), quality::LabelChecksum(flipped));
  // Order matters (it is a label VECTOR checksum, not a set hash).
  const std::vector<int64_t> swapped = {1, 0, -1};
  EXPECT_NE(quality::LabelChecksum(a), quality::LabelChecksum(swapped));
}

TEST(QualityMetrics, MismatchedLengthsThrow) {
  const std::vector<int64_t> a = {0, 0};
  const std::vector<int64_t> b = {0, 0, 0};
  EXPECT_THROW(quality::AdjustedRandIndex(a, b), std::invalid_argument);
  EXPECT_THROW(quality::EvaluateQuality(a, b), std::invalid_argument);
}

TEST(QualityMetrics, EvaluateQualityReport) {
  const std::vector<int64_t> predicted = {0, 0, 1, 1, -1};
  const std::vector<int64_t> truth = {0, 0, 1, 1, -1};
  const QualityReport q = quality::EvaluateQuality(predicted, truth);
  EXPECT_EQ(q.n, 5u);
  EXPECT_EQ(q.predicted_clusters, 2u);
  EXPECT_EQ(q.truth_clusters, 2u);
  EXPECT_EQ(q.ari, 1.0);
  EXPECT_NEAR(q.nmi, 1.0, 1e-12);
  EXPECT_NEAR(q.predicted_noise_ratio, 0.2, 1e-15);
  EXPECT_EQ(q.label_checksum, quality::LabelChecksum(predicted));
}

// --- Golden corpus: every mode x metric pins the ground-truth labels. ------

constexpr double kEps = 1.0;
constexpr size_t kMinPts = 3;
constexpr size_t kCap = 64;

std::string DataPath(const std::string& name, const std::string& ext) {
  return std::string(PDBSCAN_TEST_DATA_DIR) + "/" + name + ext;
}

template <int D>
void CheckGoldenDataset(const std::string& name) {
  const data::FlatDataset dataset = data::ReadCsv(DataPath(name, ".csv"));
  ASSERT_EQ(dataset.dim, D) << name;
  const std::vector<Point<D>> pts = data::FromFlat<D>(dataset);
  const std::vector<int64_t> truth = ReadLabelsFile(DataPath(name, ".labels"));
  ASSERT_EQ(truth.size(), pts.size()) << name;

  for (const Metric metric : {Metric::kL2, Metric::kL1, Metric::kLinf}) {
    Options options = OurExact();
    options.metric = metric;
    const std::string context =
        name + " metric=" + MetricName(metric);

    // Engine (reference surface): labels must equal the pinned truth
    // verbatim — same partition AND same first-appearance ids.
    const Clustering reference = Dbscan<D>(pts, kEps, kMinPts, options);
    EXPECT_EQ(reference.cluster, truth) << context;
    const uint64_t checksum = quality::LabelChecksum(reference.cluster);
    EXPECT_EQ(checksum, quality::LabelChecksum(truth)) << context;

    // Against the O(n^2) oracle under the same metric.
    const Clustering oracle =
        BruteForceDbscan<D>(std::span<const Point<D>>(pts), kEps, kMinPts,
                            metric);
    EXPECT_TRUE(SameClustering(oracle, reference)) << context;

    // The in-library metrics grade the exact run as perfect.
    const QualityReport q = EvaluateQuality(
        reference, std::span<const int64_t>(truth));
    EXPECT_EQ(q.ari, 1.0) << context;
    EXPECT_NEAR(q.nmi, 1.0, 1e-12) << context;
    EXPECT_EQ(q.label_checksum, checksum) << context;

    // Pool: frozen CellIndex served through an EnginePool.
    {
      auto index = CellIndex<D>::Build(pts, kEps, kCap, options);
      EnginePool<D> pool(index);
      const Clustering got = pool.Run(kMinPts);
      ExpectIdentical(reference, got, context + " mode=pool");
      EXPECT_EQ(quality::LabelChecksum(got.cluster), checksum)
          << context << " mode=pool";
    }

    // Sharded build (3 slabs, boundary merge).
    {
      ShardedClusterer<D> sharded(pts, kEps, kCap, /*num_shards=*/3,
                                  options);
      const Clustering got = sharded.Run(kMinPts);
      ExpectIdentical(reference, got, context + " mode=sharded");
      EXPECT_EQ(quality::LabelChecksum(got.cluster), checksum)
          << context << " mode=sharded";
    }

    // Streaming: the dataset arrives as two insert batches.
    {
      StreamingClusterer<D> stream(kEps, kCap, options);
      const size_t half = pts.size() / 2;
      stream.Insert(std::span<const Point<D>>(pts.data(), half));
      stream.Insert(
          std::span<const Point<D>>(pts.data() + half, pts.size() - half));
      const Clustering got = stream.Run(kMinPts);
      ExpectIdentical(reference, got, context + " mode=streaming");
      EXPECT_EQ(quality::LabelChecksum(got.cluster), checksum)
          << context << " mode=streaming";
    }

    // Serving: a ServingScheduler in front of a pool.
    {
      auto index = CellIndex<D>::Build(pts, kEps, kCap, options);
      EnginePool<D> pool(index);
      ServingScheduler<D> server(pool);
      ServeResult r = server.Submit(kMinPts);
      ASSERT_TRUE(r.ok()) << context << " mode=serving";
      ExpectIdentical(reference, r.clustering, context + " mode=serving");
      EXPECT_EQ(quality::LabelChecksum(r.clustering.cluster), checksum)
          << context << " mode=serving";
    }

    // Persisted round-trip: save the frozen index, load, query.
    {
      const std::string path = ::testing::TempDir() + "golden_" + name +
                               "_" + MetricName(metric) + ".pdbsnap";
      auto index = CellIndex<D>::Build(pts, kEps, kCap, options);
      SaveIndex<D>(path, *index);
      auto loaded = LoadIndex<D>(path);
      EXPECT_EQ(loaded->options().metric, metric) << context;
      QueryContext<D> ctx;
      const Clustering got = ctx.Run(loaded, kMinPts);
      ExpectIdentical(reference, got, context + " mode=persist");
      EXPECT_EQ(quality::LabelChecksum(got.cluster), checksum)
          << context << " mode=persist";
      std::filesystem::remove(path);
    }
  }
}

TEST(GoldenCorpus, TwoBlobs2d) { CheckGoldenDataset<2>("two_blobs_2d"); }
TEST(GoldenCorpus, Chain2d) { CheckGoldenDataset<2>("chain_2d"); }
TEST(GoldenCorpus, GridNoise2d) { CheckGoldenDataset<2>("grid_noise_2d"); }
TEST(GoldenCorpus, ThreeLines2d) { CheckGoldenDataset<2>("three_lines_2d"); }
TEST(GoldenCorpus, TwoBlobs3d) { CheckGoldenDataset<3>("two_blobs_3d"); }

TEST(GoldenCorpus, LabelsFileParserSkipsCommentsAndBlanks) {
  const std::string path = ::testing::TempDir() + "labels_parse_test.labels";
  {
    std::ofstream out(path);
    out << "# comment\n\n  3\n-1\n # indented comment\n7\n";
  }
  const std::vector<int64_t> labels = ReadLabelsFile(path);
  const std::vector<int64_t> expected = {3, -1, 7};
  EXPECT_EQ(labels, expected);
  std::filesystem::remove(path);

  EXPECT_THROW(ReadLabelsFile(path + ".missing"), std::runtime_error);
}

}  // namespace
}  // namespace pdbscan
