// Tests for the dataset generators and IO.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <vector>

#include <gtest/gtest.h>

#include "data/io.h"
#include "data/seed_spreader.h"
#include "data/synthetic_real.h"
#include "data/uniform.h"

namespace pdbscan {
namespace {

using geometry::Point;

TEST(SeedSpreader, SizeSeedAndDomain) {
  data::SeedSpreaderParams params;
  params.n = 5000;
  params.domain = 1000;
  params.seed = 3;
  data::SeedSpreaderResult meta;
  auto pts = data::SeedSpreader<3>(params, &meta);
  ASSERT_EQ(pts.size(), 5000u);
  EXPECT_GE(meta.num_restarts, 1u);
  for (const auto& p : pts) {
    for (int k = 0; k < 3; ++k) {
      ASSERT_GE(p[k], 0.0);
      ASSERT_LE(p[k], 1000.0);
    }
  }
  // Deterministic in the seed.
  auto again = data::SeedSpreader<3>(params);
  EXPECT_TRUE(std::equal(pts.begin(), pts.end(), again.begin()));
  params.seed = 4;
  auto different = data::SeedSpreader<3>(params);
  EXPECT_FALSE(std::equal(pts.begin(), pts.end(), different.begin()));
}

TEST(SeedSpreader, ClusteredNotUniform) {
  // Points from the spreader are locally dense: the mean nearest-neighbor
  // distance must be far below that of a uniform sample of the same size.
  auto clustered = data::SsSimden<2>(2000, 5);
  auto uniform = data::UniformFill<2>(2000, 5);
  // Rescale uniform to the spreader's domain for a fair comparison.
  for (auto& p : uniform) {
    p[0] *= 1e5 / std::sqrt(2000.0);
    p[1] *= 1e5 / std::sqrt(2000.0);
  }
  auto mean_nn = [](const std::vector<Point<2>>& pts) {
    double total = 0;
    for (size_t i = 0; i < pts.size(); i += 10) {
      double best = std::numeric_limits<double>::infinity();
      for (size_t j = 0; j < pts.size(); ++j) {
        if (j == i) continue;
        best = std::min(best, pts[i].SquaredDistance(pts[j]));
      }
      total += std::sqrt(best);
    }
    return total / (pts.size() / 10);
  };
  EXPECT_LT(mean_nn(clustered) * 5, mean_nn(uniform));
}

TEST(SeedSpreader, VardenHasWiderDensitySpread) {
  auto simden = data::SsSimden<2>(4000, 7);
  auto varden = data::SsVarden<2>(4000, 7);
  auto nn_spread = [](const std::vector<Point<2>>& pts) {
    std::vector<double> nn;
    for (size_t i = 0; i < pts.size(); i += 20) {
      double best = std::numeric_limits<double>::infinity();
      for (size_t j = 0; j < pts.size(); ++j) {
        if (j != i) best = std::min(best, pts[i].SquaredDistance(pts[j]));
      }
      nn.push_back(std::sqrt(best));
    }
    std::sort(nn.begin(), nn.end());
    const double lo = nn[nn.size() / 10];
    const double hi = nn[nn.size() * 9 / 10];
    return hi / std::max(lo, 1e-12);
  };
  EXPECT_GT(nn_spread(varden), nn_spread(simden));
}

TEST(UniformFill, BoundsAndDeterminism) {
  auto pts = data::UniformFill<3>(1000, 9);
  ASSERT_EQ(pts.size(), 1000u);
  const double side = std::sqrt(1000.0);
  for (const auto& p : pts) {
    for (int k = 0; k < 3; ++k) {
      ASSERT_GE(p[k], 0.0);
      ASSERT_LT(p[k], side);
    }
  }
  auto again = data::UniformFill<3>(1000, 9);
  EXPECT_TRUE(std::equal(pts.begin(), pts.end(), again.begin()));
}

TEST(SyntheticReal, GeneratorsProduceRequestedSizes) {
  EXPECT_EQ(data::GeoLifeLike(1000).size(), 1000u);
  EXPECT_EQ(data::Cosmo50Like(1000).size(), 1000u);
  EXPECT_EQ(data::OpenStreetMapLike(1000).size(), 1000u);
  EXPECT_EQ(data::HouseholdLike(1000).size(), 1000u);
  EXPECT_EQ(data::TeraClickLogLike(1000).size(), 1000u);
}

TEST(SyntheticReal, GeoLifeIsHeavilySkewed) {
  // The skew property the paper's Figure 6(j) depends on: a large share of
  // points concentrated in a tiny fraction of space.
  auto pts = data::GeoLifeLike(20000);
  // Count points within radius 30 of the densest sampled point.
  size_t best = 0;
  for (size_t c = 0; c < pts.size(); c += 500) {
    size_t count = 0;
    for (const auto& p : pts) {
      if (p.SquaredDistance(pts[c]) <= 30.0 * 30.0) ++count;
    }
    best = std::max(best, count);
  }
  EXPECT_GT(best, pts.size() / 10);  // >10% of mass in one small ball.
}

TEST(SyntheticReal, TeraClickConcentratesInOneCellAtLargeEpsilon) {
  auto pts = data::TeraClickLogLike(5000);
  // With the Table 2 epsilon (1500), cell side is 1500/sqrt(13) ≈ 416;
  // nearly all points (exp(1) * 20 scale) land in the cell at the origin.
  size_t in_first_cell = 0;
  for (const auto& p : pts) {
    bool inside = true;
    for (int k = 0; k < 13; ++k) inside = inside && p[k] < 416.0;
    in_first_cell += inside;
  }
  EXPECT_GT(in_first_cell, pts.size() * 95 / 100);
}

TEST(Io, CsvRoundTrip) {
  auto pts = data::SsSimden<3>(500, 21);
  auto flat = data::ToFlat<3>(pts);
  const std::string path = std::filesystem::temp_directory_path() /
                           "pdbscan_test_roundtrip.csv";
  data::WriteCsv(path, flat);
  auto loaded = data::ReadCsv(path);
  ASSERT_EQ(loaded.dim, 3);
  ASSERT_EQ(loaded.size(), 500u);
  auto pts2 = data::FromFlat<3>(loaded);
  for (size_t i = 0; i < pts.size(); ++i) {
    for (int k = 0; k < 3; ++k) {
      ASSERT_DOUBLE_EQ(pts[i][k], pts2[i][k]);
    }
  }
  std::remove(path.c_str());
}

TEST(Io, BinaryRoundTrip) {
  auto pts = data::UniformFill<7>(300, 22);
  auto flat = data::ToFlat<7>(pts);
  const std::string path = std::filesystem::temp_directory_path() /
                           "pdbscan_test_roundtrip.bin";
  data::WriteBinary(path, flat);
  auto loaded = data::ReadBinary(path);
  ASSERT_EQ(loaded.dim, 7);
  ASSERT_EQ(loaded.coords, flat.coords);
  std::remove(path.c_str());
}

TEST(Io, ErrorsOnMissingAndMalformedFiles) {
  EXPECT_THROW(data::ReadCsv("/nonexistent/file.csv"), std::runtime_error);
  EXPECT_THROW(data::ReadBinary("/nonexistent/file.bin"), std::runtime_error);
  const std::string path =
      std::filesystem::temp_directory_path() / "pdbscan_bad.csv";
  {
    std::ofstream out(path);
    out << "1.0,2.0\n3.0\n";  // Inconsistent dimension.
  }
  EXPECT_THROW(data::ReadCsv(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Io, DimensionMismatchThrows) {
  data::FlatDataset flat;
  flat.dim = 3;
  flat.coords = {1, 2, 3};
  EXPECT_THROW(data::FromFlat<2>(flat), std::runtime_error);
}

TEST(Io, BinaryRejectsForeignAndTruncatedFiles) {
  const std::string path =
      std::filesystem::temp_directory_path() / "pdbscan_bad.bin";

  // A right-sized file of arbitrary bytes must NOT parse: the magic guard
  // rejects it.
  {
    std::ofstream out(path, std::ios::binary);
    const std::vector<char> garbage(32 + 6 * sizeof(double), 'x');
    out.write(garbage.data(), static_cast<std::streamsize>(garbage.size()));
  }
  EXPECT_THROW(data::ReadBinary(path), std::runtime_error);

  // A valid file truncated mid-payload (and mid-header) must be rejected.
  auto flat = data::ToFlat<3>(data::UniformFill<3>(100, 5));
  data::WriteBinary(path, flat);
  const auto full = [&] {
    std::ifstream in(path, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    return bytes;
  }();
  for (const size_t keep : {full.size() - 8, size_t{20}, size_t{3}}) {
    std::ofstream out(path, std::ios::binary);
    out.write(full.data(), static_cast<std::streamsize>(keep));
    out.close();
    EXPECT_THROW(data::ReadBinary(path), std::runtime_error)
        << "kept " << keep << " of " << full.size() << " bytes";
  }

  // A version bump must be rejected, not misparsed. The version field sits
  // after the 8-byte magic.
  {
    std::vector<char> skewed = full;
    skewed[8] = 9;
    std::ofstream out(path, std::ios::binary);
    out.write(skewed.data(), static_cast<std::streamsize>(skewed.size()));
  }
  EXPECT_THROW(data::ReadBinary(path), std::runtime_error);

  // And an extended file (trailing junk) is a size mismatch, not data.
  {
    std::ofstream out(path, std::ios::binary);
    out.write(full.data(), static_cast<std::streamsize>(full.size()));
    out << "tail";
  }
  EXPECT_THROW(data::ReadBinary(path), std::runtime_error);

  std::remove(path.c_str());
}

}  // namespace
}  // namespace pdbscan
