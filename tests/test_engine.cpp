// DbscanEngine reuse contract: warm-engine runs after parameter changes
// produce labels bit-identical to fresh one-shot Dbscan calls, across
// worker counts and across the grid/box/quadtree variants, and a min_pts
// sweep builds the cell structure exactly once.
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "dbscan/engine.h"
#include "dbscan/stats.h"
#include "parallel/scheduler.h"
#include "pdbscan/pdbscan.h"

namespace pdbscan {
namespace {

using geometry::Point;

template <int D>
std::vector<Point<D>> BlobPoints(size_t n, size_t blobs, double side,
                                 double sigma, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coord(0.0, side);
  std::normal_distribution<double> gauss(0.0, sigma);
  std::vector<Point<D>> centers(blobs);
  for (auto& c : centers) {
    for (int k = 0; k < D; ++k) c[k] = coord(rng);
  }
  std::vector<Point<D>> pts(n);
  for (size_t i = 0; i < n; ++i) {
    if (i % 10 == 9) {  // 10% noise.
      for (int k = 0; k < D; ++k) pts[i][k] = coord(rng);
    } else {
      const auto& c = centers[i % blobs];
      for (int k = 0; k < D; ++k) pts[i][k] = c[k] + gauss(rng);
    }
  }
  return pts;
}

// Bit-identical comparison of the full result contract (not just the
// partition): cluster ids, core flags, and membership lists.
void ExpectIdentical(const Clustering& expected, const Clustering& got,
                     const std::string& context) {
  EXPECT_EQ(expected.num_clusters, got.num_clusters) << context;
  EXPECT_EQ(expected.cluster, got.cluster) << context;
  EXPECT_EQ(expected.is_core, got.is_core) << context;
  EXPECT_EQ(expected.membership_offsets, got.membership_offsets) << context;
  EXPECT_EQ(expected.membership_ids, got.membership_ids) << context;
}

// The variants exercising each cell source / range-count path: grid cells,
// box cells, and the quadtree range-count + connector path.
std::vector<Options> ReuseVariants() {
  return {Our2dGridBcp(), Our2dBoxBcp(), OurExactQt(),
          WithBucketing(Our2dGridUsec())};
}

// --- Sweep: cells built once, labels identical to one-shot ----------------

TEST(EngineSweep, BuildsCellsOnceAndMatchesOneShot) {
  const auto pts = BlobPoints<2>(2000, 5, 40.0, 1.0, 7);
  const double eps = 1.2;
  const std::vector<size_t> minpts_list = {3, 5, 10, 25, 60};
  for (const auto& options : ReuseVariants()) {
    DbscanEngine<2> engine(options);
    engine.SetPoints(pts);
    auto& stats = dbscan::GlobalStats();
    stats.Reset();
    const auto sweep = engine.Sweep(eps, minpts_list);
    EXPECT_EQ(stats.cells_built.load(), 1u) << options.Name();
    EXPECT_EQ(stats.counts_built.load(), 1u) << options.Name();
    ASSERT_EQ(sweep.size(), minpts_list.size());
    for (size_t i = 0; i < minpts_list.size(); ++i) {
      const auto oneshot = Dbscan<2>(pts, eps, minpts_list[i], options);
      ExpectIdentical(oneshot, sweep[i],
                      options.Name() + " minpts=" +
                          std::to_string(minpts_list[i]));
    }
  }
}

TEST(EngineSweep, HighDimSweepMatchesOneShot) {
  const auto pts = BlobPoints<3>(800, 4, 20.0, 1.0, 11);
  const double eps = 1.5;
  const std::vector<size_t> minpts_list = {4, 8, 16};
  for (const auto& options : {OurExact(), OurExactQt()}) {
    DbscanEngine<3> engine(options);
    engine.SetPoints(pts);
    dbscan::GlobalStats().Reset();
    const auto sweep = engine.Sweep(eps, minpts_list);
    EXPECT_EQ(dbscan::GlobalStats().cells_built.load(), 1u) << options.Name();
    for (size_t i = 0; i < minpts_list.size(); ++i) {
      ExpectIdentical(Dbscan<3>(pts, eps, minpts_list[i], options), sweep[i],
                      options.Name());
    }
  }
}

// --- Warm engine after parameter changes ----------------------------------

TEST(EngineReuse, WarmRunsMatchFreshOneShotAcrossThreadsAndVariants) {
  const auto pts = BlobPoints<2>(1500, 6, 30.0, 1.0, 13);
  struct Step {
    double eps;
    size_t min_pts;
  };
  // Epsilon changes, min_pts changes (down and up), and a revisit.
  const std::vector<Step> steps = {{1.0, 8}, {1.0, 4},  {2.0, 4},
                                   {2.0, 30}, {0.7, 8}, {1.0, 8}};
  for (const int workers : {1, 2, 4}) {
    parallel::ScopedNumWorkers scoped(workers);
    for (const auto& options : ReuseVariants()) {
      DbscanEngine<2> engine(options);
      engine.SetPoints(pts);
      for (const auto& step : steps) {
        const auto warm = engine.Run(step.eps, step.min_pts);
        const auto fresh = Dbscan<2>(pts, step.eps, step.min_pts, options);
        ExpectIdentical(fresh, warm,
                        options.Name() + " workers=" + std::to_string(workers) +
                            " eps=" + std::to_string(step.eps) +
                            " minpts=" + std::to_string(step.min_pts));
      }
    }
  }
}

TEST(EngineReuse, CellCacheKeyedOnEpsilon) {
  const auto pts = BlobPoints<2>(1000, 4, 25.0, 1.0, 17);
  DbscanEngine<2> engine;
  engine.SetPoints(pts);
  auto& stats = dbscan::GlobalStats();
  stats.Reset();
  (void)engine.Run(1.0, 5);
  EXPECT_EQ(stats.cells_built.load(), 1u);
  EXPECT_TRUE(engine.has_cells_for(1.0));
  (void)engine.Run(1.0, 10);  // Same epsilon: reuse cells and counts? No —
  // counts cap was 5; cells reused, counts recomputed at the higher cap.
  EXPECT_EQ(stats.cells_built.load(), 1u);
  EXPECT_GE(stats.cells_reused.load(), 1u);
  (void)engine.Run(1.0, 7);  // Under the cap: cells and counts both reused.
  EXPECT_EQ(stats.counts_reused.load(), 1u);
  (void)engine.Run(2.0, 5);  // New epsilon: rebuild.
  EXPECT_EQ(stats.cells_built.load(), 2u);
  EXPECT_FALSE(engine.has_cells_for(1.0));
}

TEST(EngineReuse, SetPointsInvalidatesCaches) {
  const auto pts_a = BlobPoints<2>(800, 3, 20.0, 1.0, 19);
  const auto pts_b = BlobPoints<2>(900, 5, 20.0, 1.0, 23);
  DbscanEngine<2> engine;
  engine.SetPoints(pts_a);
  (void)engine.Run(1.0, 5);
  engine.SetPoints(pts_b);
  const auto warm = engine.Run(1.0, 5);
  ExpectIdentical(Dbscan<2>(pts_b, 1.0, 5), warm, "after SetPoints");
}

// --- Runtime-dimension entry points ---------------------------------------

TEST(EngineRuntimeDim, StridedMatchesTypedAndValidatesDimFirst) {
  const auto pts = BlobPoints<3>(400, 3, 15.0, 1.0, 29);
  std::vector<double> flat;
  for (const auto& p : pts) {
    flat.push_back(p[0]);
    flat.push_back(p[1]);
    flat.push_back(p[2]);
  }
  DbscanEngine<3> engine;
  engine.SetPointsStrided(flat.data(), pts.size(), 3);
  ExpectIdentical(Dbscan<3>(pts, 1.5, 5), engine.Run(1.5, 5), "strided");
  // Unsupported dimensions are rejected up front (no data is read: nullptr
  // would crash otherwise).
  EXPECT_THROW(Dbscan(nullptr, 100, 6, 1.0, 3), std::invalid_argument);
  EXPECT_THROW(Dbscan(nullptr, 100, 0, 1.0, 3), std::invalid_argument);
  EXPECT_THROW(Dbscan(nullptr, 100, -1, 1.0, 3), std::invalid_argument);
}

// --- Validation ------------------------------------------------------------

TEST(EngineValidation, InvalidArgumentsThrow) {
  const auto pts = BlobPoints<2>(100, 2, 10.0, 1.0, 31);
  DbscanEngine<2> engine;
  engine.SetPoints(pts);
  EXPECT_THROW(engine.Run(-1.0, 3), std::invalid_argument);
  EXPECT_THROW(engine.Run(0.0, 3), std::invalid_argument);
  EXPECT_THROW(engine.Run(1.0, 0), std::invalid_argument);
  EXPECT_THROW(engine.Sweep(1.0, {3, 0, 5}), std::invalid_argument);
  Options box_in_3d;
  box_in_3d.cell_method = CellMethod::kBox;
  DbscanEngine<3> engine3(box_in_3d);
  std::vector<Point<3>> pts3 = {Point<3>{{0, 0, 0}}};
  engine3.SetPoints(pts3);
  EXPECT_THROW(engine3.Run(1.0, 3), std::invalid_argument);
}

TEST(EngineEdge, EmptyAndSweepOfOne) {
  DbscanEngine<2> engine;
  engine.SetPoints(std::vector<Point<2>>{});
  const auto empty = engine.Run(1.0, 3);
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_EQ(empty.num_clusters, 0u);
  const auto pts = BlobPoints<2>(200, 2, 10.0, 1.0, 37);
  engine.SetPoints(pts);
  const auto sweep = engine.Sweep(1.0, {4});
  ASSERT_EQ(sweep.size(), 1u);
  ExpectIdentical(Dbscan<2>(pts, 1.0, 4), sweep[0], "sweep of one");
  EXPECT_TRUE(engine.Sweep(1.0, std::vector<size_t>{}).empty());
}

}  // namespace
}  // namespace pdbscan
