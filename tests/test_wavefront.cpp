// Tests for the USEC wavefront (upper envelope of equal-radius circles).
#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "geometry/point.h"
#include "geometry/wavefront.h"

namespace pdbscan {
namespace {

using geometry::Envelope;
using geometry::Point;

// Brute-force containment: q within r of some center.
bool BruteContains(const std::vector<Point<2>>& centers, double r,
                   const Point<2>& q) {
  for (const auto& c : centers) {
    if (q.SquaredDistance(c) <= r * r) return true;
  }
  return false;
}

TEST(Envelope, SingleCircle) {
  Envelope env({Point<2>{{0, -1}}}, 2.0);
  ASSERT_EQ(env.arcs().size(), 1u);
  EXPECT_TRUE(env.Contains(Point<2>{{0, 0}}));
  EXPECT_TRUE(env.Contains(Point<2>{{0, 0.99}}));
  EXPECT_FALSE(env.Contains(Point<2>{{0, 1.01}}));
  EXPECT_FALSE(env.Contains(Point<2>{{2.1, 0}}));
}

TEST(Envelope, EmptyCenters) {
  Envelope env({}, 1.0);
  EXPECT_TRUE(env.empty());
  EXPECT_FALSE(env.Contains(Point<2>{{0, 0}}));
}

TEST(Envelope, ArcsAreSortedAndDisjoint) {
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> x(0.0, 20.0), y(-3.0, 0.0);
  std::vector<Point<2>> centers(200);
  for (auto& c : centers) c = {{x(rng), y(rng)}};
  Envelope env(centers, 2.5);
  const auto& arcs = env.arcs();
  ASSERT_FALSE(arcs.empty());
  for (size_t i = 0; i < arcs.size(); ++i) {
    ASSERT_LE(arcs[i].lo, arcs[i].hi);
    if (i > 0) ASSERT_LE(arcs[i - 1].hi, arcs[i].lo + 1e-9);
  }
}

class EnvelopeRandomTest : public ::testing::TestWithParam<uint64_t> {};

// The core contract: for query points on the far side of the line (here
// y >= 0, centers at y <= 0), Contains matches brute force.
TEST_P(EnvelopeRandomTest, ContainsMatchesBruteForce) {
  const uint64_t seed = GetParam();
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> cx(0.0, 30.0), cy(-4.0, 0.0);
  const size_t n = 1 + static_cast<size_t>(rng() % 300);
  std::vector<Point<2>> centers(n);
  for (auto& c : centers) c = {{cx(rng), cy(rng)}};
  const double r = 3.0;
  Envelope env(centers, r);

  std::uniform_real_distribution<double> qx(-5.0, 35.0), qy(0.0, 4.0);
  size_t inside = 0;
  for (int q = 0; q < 2000; ++q) {
    const Point<2> query{{qx(rng), qy(rng)}};
    const bool expected = BruteContains(centers, r, query);
    ASSERT_EQ(env.Contains(query), expected)
        << "seed " << seed << " q=(" << query[0] << "," << query[1] << ")";
    inside += expected;
  }
  // Sanity: the test actually exercises both outcomes.
  EXPECT_GT(inside, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnvelopeRandomTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Envelope, DisconnectedUnionHasGaps) {
  // Two circles far apart in x: queries between them must be outside.
  Envelope env({Point<2>{{0, -0.5}}, Point<2>{{20, -0.5}}}, 1.0);
  EXPECT_TRUE(env.Contains(Point<2>{{0, 0.2}}));
  EXPECT_TRUE(env.Contains(Point<2>{{20, 0.2}}));
  EXPECT_FALSE(env.Contains(Point<2>{{10, 0.0}}));
}

TEST(Envelope, LowerCircleHiddenThenEmerges) {
  // Circle b is mostly below a but extends further right: the envelope must
  // expose b's arc on the right.
  std::vector<Point<2>> centers = {Point<2>{{0, 0}}, Point<2>{{2.5, -2.0}}};
  const double r = 3.0;
  Envelope env(centers, r);
  // q near x=4.5 is only inside b.
  const Point<2> q{{4.5, 0.05}};
  ASSERT_TRUE(BruteContains(centers, r, q));
  EXPECT_TRUE(env.Contains(q));
}

TEST(Envelope, DuplicateCentersHandled) {
  std::vector<Point<2>> centers(50, Point<2>{{1.0, -1.0}});
  Envelope env(centers, 2.0);
  EXPECT_TRUE(env.Contains(Point<2>{{1.0, 0.5}}));
  EXPECT_FALSE(env.Contains(Point<2>{{1.0, 1.5}}));
}

TEST(LeftFrame, RotationPreservesDistances) {
  std::mt19937_64 rng(9);
  std::uniform_real_distribution<double> coord(-10.0, 10.0);
  for (int i = 0; i < 100; ++i) {
    const Point<2> a{{coord(rng), coord(rng)}};
    const Point<2> b{{coord(rng), coord(rng)}};
    EXPECT_NEAR(a.SquaredDistance(b),
                geometry::LeftFrame(a).SquaredDistance(geometry::LeftFrame(b)),
                1e-12);
  }
}

TEST(LeftFrame, MapsLeftwardToUpward) {
  // A point left of another gets a larger v (the envelope direction).
  const Point<2> right{{5, 0}};
  const Point<2> left{{1, 0}};
  EXPECT_GT(geometry::LeftFrame(left)[1], geometry::LeftFrame(right)[1]);
}

}  // namespace
}  // namespace pdbscan
