// Sharded clustering: the ShardPlanner's grid-aligned partition, the
// ShardedCellIndex boundary merge, and the ShardedClusterer serving facade.
// The central contract — sharded builds produce labels bit-identical to
// unsharded runs — is exercised here on adversarial seam geometries
// (clusters spanning 3+ shards, empty shards, all-noise shards, slabs
// thinner than the halo) and across the property-shape generators; the
// broad randomized sweep lives in tests/test_property_sweep.cpp. This
// suite also runs under ThreadSanitizer in CI (concurrent serving against
// a sharded index).
#include <atomic>
#include <cstddef>
#include <random>
#include <span>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dbscan/verify.h"
#include "pdbscan/pdbscan.h"
#include "testing_util.h"

namespace pdbscan {
namespace {

using dbscan::BruteForceDbscan;
using dbscan::SameClustering;
using geometry::Point;
using pdbscan::testing::BlobPoints;
using pdbscan::testing::ExpectIdentical;
using pdbscan::testing::GenerateShape;
using pdbscan::testing::Identical;
using pdbscan::testing::Shape;
using sharding::ShardBuildInfo;
using sharding::ShardedCellIndex;
using sharding::ShardPlanner;

// --- ShardPlanner ----------------------------------------------------------

TEST(ShardPlanner, CutsAreLatticeAlignedAndCoverTheDomain) {
  const auto pts = BlobPoints<2>(500, 4, 40.0, 1.0, 7);
  const auto plan = ShardPlanner::Plan<2>(
      std::span<const Point<2>>(pts), /*epsilon=*/1.0, /*shards=*/4);
  ASSERT_EQ(plan.num_shards(), 4u);
  EXPECT_EQ(plan.cuts.front(), 0);
  for (size_t s = 0; s + 1 < plan.cuts.size(); ++s) {
    EXPECT_LT(plan.cuts[s], plan.cuts[s + 1]);  // Every slab >= 1 column.
  }
  // Every point's column falls into the planned range and its shard.
  for (const auto& p : pts) {
    const int64_t col = plan.ColumnOf(p);
    EXPECT_GE(col, plan.cuts.front());
    EXPECT_LT(col, plan.cuts.back());
    const size_t s = plan.ShardOf(col);
    EXPECT_GE(col, plan.cuts[s]);
    EXPECT_LT(col, plan.cuts[s + 1]);
  }
  EXPECT_EQ(plan.halo, 2);  // 1 + floor(sqrt(2)).
}

TEST(ShardPlanner, ClampsShardCountToLatticeColumns) {
  // All points inside a couple of columns: a request for 64 shards must
  // clamp rather than produce empty slab ranges.
  std::vector<Point<2>> pts;
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> u(0.0, 2.0);
  for (int i = 0; i < 100; ++i) pts.push_back({{u(rng), u(rng)}});
  const auto plan = ShardPlanner::Plan<2>(
      std::span<const Point<2>>(pts), /*epsilon=*/1.0, /*shards=*/64);
  EXPECT_GE(plan.num_shards(), 1u);
  EXPECT_LE(plan.num_shards(), 64u);
  for (size_t s = 0; s + 1 < plan.cuts.size(); ++s) {
    EXPECT_LT(plan.cuts[s], plan.cuts[s + 1]);
  }
}

TEST(ShardPlanner, SplitsTheWidestAxis) {
  // 100x wider in y than x: the plan must split along axis 1.
  std::vector<Point<2>> pts;
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> narrow(0.0, 1.0), wide(0.0, 100.0);
  for (int i = 0; i < 200; ++i) pts.push_back({{narrow(rng), wide(rng)}});
  const auto plan = ShardPlanner::Plan<2>(
      std::span<const Point<2>>(pts), /*epsilon=*/1.0, /*shards=*/4);
  EXPECT_EQ(plan.axis, 1);
}

TEST(ShardPlanner, RejectsInvalidArguments) {
  const std::vector<Point<2>> pts = {{{0, 0}}, {{1, 1}}};
  EXPECT_THROW(ShardPlanner::Plan<2>(std::span<const Point<2>>(pts), 0.0, 2),
               std::invalid_argument);
  EXPECT_THROW(ShardPlanner::Plan<2>(std::span<const Point<2>>(pts), 1.0, 0),
               std::invalid_argument);
}

// --- ShardedCellIndex: construction contracts ------------------------------

TEST(ShardedCellIndex, RejectsUnsupportedConfigurations) {
  const auto pts = BlobPoints<2>(100, 2, 10.0, 1.0, 5);
  EXPECT_THROW(ShardedCellIndex<2>(pts, 1.0, 10, 2, Our2dBoxBcp()),
               std::invalid_argument);
  EXPECT_THROW(ShardedCellIndex<2>(pts, 1.0, 10, 2, OurExactQt()),
               std::invalid_argument);
  EXPECT_THROW(ShardedCellIndex<2>(pts, 0.0, 10, 2), std::invalid_argument);
  EXPECT_THROW(ShardedCellIndex<2>(pts, 1.0, 0, 2), std::invalid_argument);
  EXPECT_THROW(ShardedCellIndex<2>(pts, 1.0, 10, 0), std::invalid_argument);
}

TEST(ShardedCellIndex, EmptyAndTinyInputs) {
  const std::vector<Point<2>> empty;
  ShardedCellIndex<2> none(empty, 1.0, 10, 4);
  EXPECT_EQ(none.num_points(), 0u);
  EXPECT_EQ(none.num_cells(), 0u);
  dbscan::QueryContext<2> ctx;
  EXPECT_EQ(ctx.Run(none.index(), 3).size(), 0u);

  const std::vector<Point<2>> one = {{{2.5, 3.5}}};
  ShardedCellIndex<2> single(one, 1.0, 10, 4);
  EXPECT_EQ(single.num_points(), 1u);
  const Clustering c = ctx.Run(single.index(), 1);
  EXPECT_EQ(c.num_clusters, 1u);  // min_pts = 1: everything is core.
}

TEST(ShardedCellIndex, EveryCellIsInteriorOrBoundaryExactlyOnce) {
  const auto pts = BlobPoints<2>(2000, 6, 60.0, 1.2, 17);
  dbscan::PipelineStats stats;
  ShardedCellIndex<2> sharded(pts, 1.0, 20, 5, Options(), &stats);
  const ShardBuildInfo& info = sharded.build_info();
  EXPECT_EQ(info.interior_cells + info.boundary_cells, sharded.num_cells());
  EXPECT_EQ(stats.shard_interior_cells.load(), info.interior_cells);
  EXPECT_EQ(stats.shard_boundary_cells.load(), info.boundary_cells);
  EXPECT_EQ(stats.shards_built.load(), sharded.num_shards());
  EXPECT_EQ(stats.shard_seam_links.load(), info.seam_links);
  // The boundary set is exactly the cells the plan marks seam-adjacent.
  size_t expected_boundary = 0;
  const auto& cells = sharded.index()->cells();
  for (size_t c = 0; c < cells.num_cells(); ++c) {
    if (sharded.plan().IsBoundary(cells.coords[c][sharded.plan().axis])) {
      ++expected_boundary;
    }
  }
  EXPECT_EQ(info.boundary_cells, expected_boundary);
  // Per-shard sizes sum to the totals.
  size_t sum_points = 0, sum_cells = 0;
  for (size_t s = 0; s < sharded.num_shards(); ++s) {
    sum_points += info.shard_points[s];
    sum_cells += info.shard_cells[s];
  }
  EXPECT_EQ(sum_points, sharded.num_points());
  EXPECT_EQ(sum_cells, sharded.num_cells());
}

// --- Bit-identity on seam-adversarial geometries ---------------------------

// Builds sharded at `num_shards`, queries at `min_pts`, and expects the
// full result contract to match a one-shot Dbscan run bit for bit.
template <int D>
void ExpectShardedIdentical(const std::vector<Point<D>>& pts, double epsilon,
                            size_t counts_cap, size_t num_shards,
                            size_t min_pts, const std::string& context) {
  const Clustering expected = Dbscan<D>(pts, epsilon, min_pts);
  ShardedCellIndex<D> sharded(pts, epsilon, counts_cap, num_shards);
  dbscan::QueryContext<D> ctx;
  ExpectIdentical(expected, ctx.Run(sharded.index(), min_pts), context);
}

TEST(ShardedDbscan, ClusterSpanningManyShards) {
  // One dense polyline along x crossing every seam: the cluster must be
  // stitched back together across 6 shards by the boundary merge alone.
  std::vector<Point<2>> pts;
  std::mt19937_64 rng(23);
  std::normal_distribution<double> jitter(0.0, 0.05);
  for (int i = 0; i < 600; ++i) {
    pts.push_back({{i * 0.1, 5.0 + jitter(rng)}});
  }
  // Plus background noise so not everything is one cell row.
  std::uniform_real_distribution<double> u(0.0, 60.0);
  for (int i = 0; i < 200; ++i) pts.push_back({{u(rng), u(rng) / 6}});
  const Clustering expected = Dbscan<2>(pts, 0.5, 4);
  ShardedCellIndex<2> sharded(pts, 0.5, 16, 6);
  ASSERT_GE(sharded.num_shards(), 3u);
  EXPECT_GT(sharded.build_info().seam_links, 0u);
  dbscan::QueryContext<2> ctx;
  const Clustering got = ctx.Run(sharded.index(), 4);
  ExpectIdentical(expected, got, "spanning cluster");
  // The polyline really is one cluster (sanity of the construction).
  EXPECT_EQ(got.cluster[0], got.cluster[599]);
}

TEST(ShardedDbscan, EmptyShardSlab) {
  // Two far-apart blobs: middle slabs own zero points. The merge must cope
  // with zero-cell shard structures.
  std::vector<Point<2>> pts;
  std::mt19937_64 rng(29);
  std::normal_distribution<double> g(0.0, 0.8);
  for (int i = 0; i < 300; ++i) pts.push_back({{2.0 + g(rng), 2.0 + g(rng)}});
  for (int i = 0; i < 300; ++i) {
    pts.push_back({{58.0 + g(rng), 2.0 + g(rng)}});
  }
  ShardedCellIndex<2> probe(pts, 1.0, 16, 8);
  bool some_shard_empty = false;
  for (const size_t sp : probe.build_info().shard_points) {
    some_shard_empty = some_shard_empty || sp == 0;
  }
  EXPECT_TRUE(some_shard_empty);
  ExpectShardedIdentical<2>(pts, 1.0, 16, 8, 5, "empty shard");
}

TEST(ShardedDbscan, AllNoiseShard) {
  // A dense blob in the first slab, pure sparse noise in the rest: shards
  // whose every point is noise must not perturb the labels.
  std::vector<Point<2>> pts;
  std::mt19937_64 rng(31);
  std::normal_distribution<double> g(0.0, 0.5);
  std::uniform_real_distribution<double> u(20.0, 80.0);
  for (int i = 0; i < 400; ++i) pts.push_back({{3.0 + g(rng), 3.0 + g(rng)}});
  for (int i = 0; i < 60; ++i) pts.push_back({{u(rng), u(rng)}});
  ExpectShardedIdentical<2>(pts, 1.0, 16, 6, 8, "all-noise shard");
}

TEST(ShardedDbscan, SlabsThinnerThanTheHalo) {
  // Many shards over few columns: every cell is a boundary cell and some
  // neighbors live two shards away. Exactness must come entirely from the
  // merged recount.
  const auto pts = BlobPoints<2>(800, 3, 12.0, 0.8, 37);
  ShardedCellIndex<2> probe(pts, 2.0, 16, 6);
  // The halo swallows (nearly) every slab: boundary dominates interior.
  EXPECT_GT(probe.build_info().boundary_cells,
            probe.build_info().interior_cells);
  ExpectShardedIdentical<2>(pts, 2.0, 16, 6, 6, "thin slabs");
}

TEST(ShardedDbscan, OneShardEqualsPlainBuild) {
  const auto pts = BlobPoints<2>(600, 4, 30.0, 1.0, 41);
  const Clustering expected = Dbscan<2>(pts, 1.0, 10);
  ShardedCellIndex<2> sharded(pts, 1.0, 16, 1);
  EXPECT_EQ(sharded.num_shards(), 1u);
  EXPECT_EQ(sharded.build_info().boundary_cells, 0u);
  EXPECT_EQ(sharded.build_info().seam_links, 0u);
  dbscan::QueryContext<2> ctx;
  ExpectIdentical(expected, ctx.Run(sharded.index(), 10), "one shard");
}

TEST(ShardedDbscan, MinPtsAboveCountsCapRecountsExactly) {
  const auto pts = BlobPoints<2>(700, 3, 25.0, 1.0, 43);
  // counts_cap 4 but min_pts 20: the context's private recount runs over
  // the merged structure (cross-seam adjacency included).
  ExpectShardedIdentical<2>(pts, 1.0, 4, 5, 20, "over-cap recount");
}

TEST(ShardedDbscan, HigherDimensions) {
  {
    const auto pts = BlobPoints<3>(500, 3, 15.0, 0.9, 47);
    ExpectShardedIdentical<3>(pts, 2.0, 16, 4, 6, "3d");
  }
  {
    // d = 5 exercises the k-d-tree cross-seam discovery path (d > 3).
    const auto pts = BlobPoints<5>(400, 3, 12.0, 0.9, 53);
    ExpectShardedIdentical<5>(pts, 4.0, 16, 3, 5, "5d");
  }
}

TEST(ShardedDbscan, AllShapesAtRandomShardCounts) {
  std::mt19937_64 rng(59);
  for (const Shape shape : pdbscan::testing::kAllShapes) {
    const auto pts = GenerateShape<2>(shape, 300, rng());
    const size_t shards = 2 + rng() % 6;
    const size_t min_pts = 1 + rng() % 12;
    ExpectShardedIdentical<2>(pts, 1.1, 16, shards, min_pts,
                              "shape=" + std::to_string(int(shape)) +
                                  " shards=" + std::to_string(shards));
  }
}

TEST(ShardedDbscan, MatchesBruteForceOracle) {
  const auto pts = BlobPoints<2>(300, 3, 15.0, 0.8, 61);
  const auto oracle =
      BruteForceDbscan<2>(std::span<const Point<2>>(pts), 1.0, 6);
  ShardedCellIndex<2> sharded(pts, 1.0, 16, 4);
  dbscan::QueryContext<2> ctx;
  EXPECT_TRUE(SameClustering(oracle, ctx.Run(sharded.index(), 6)));
}

// --- Serving: EnginePool lease + ShardedClusterer facade -------------------

TEST(ShardedServing, EnginePoolLeasesAgainstShardedIndex) {
  const auto pts = BlobPoints<2>(800, 4, 30.0, 1.0, 67);
  const Clustering expected = Dbscan<2>(pts, 1.0, 10);
  ShardedCellIndex<2> sharded(pts, 1.0, 100, 4);
  parallel::EnginePool<2> pool(sharded);  // The sharded-lease constructor.
  ExpectIdentical(expected, pool.Run(10), "pool over sharded index");
  const auto sweep = pool.Sweep({5, 10, 50});
  ASSERT_EQ(sweep.size(), 3u);
  ExpectIdentical(Dbscan<2>(pts, 1.0, 5), sweep[0], "sweep[0]");
  ExpectIdentical(expected, sweep[1], "sweep[1]");
  ExpectIdentical(Dbscan<2>(pts, 1.0, 50), sweep[2], "sweep[2]");
}

TEST(ShardedServing, FacadeRunAndSweepMatchEngine) {
  const auto pts = BlobPoints<2>(700, 4, 25.0, 1.0, 71);
  ShardedClusterer<2> sharded(pts, 1.0, 100, 5);
  dbscan::DbscanEngine<2> engine;
  engine.SetPoints(pts);
  const auto want = engine.Sweep(1.0, {4, 12, 40});
  const auto got = sharded.Sweep({4, 12, 40});
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ExpectIdentical(want[i], got[i], "facade sweep " + std::to_string(i));
  }
  dbscan::PipelineStats agg;
  sharded.AggregateStats(agg);
  EXPECT_EQ(agg.shards_built.load(), sharded.num_shards());
  EXPECT_EQ(agg.cells_built.load(), 1u);  // One merged build, ever.
}

TEST(ShardedServing, ConcurrentClientsBitIdentical) {
  const auto pts = BlobPoints<2>(1200, 5, 40.0, 1.0, 73);
  ShardedClusterer<2> sharded(pts, 1.0, 50, 4);
  const Clustering expected = Dbscan<2>(pts, 1.0, 10);
  constexpr int kClients = 4;
  constexpr int kQueriesPerClient = 3;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&]() {
      for (int q = 0; q < kQueriesPerClient; ++q) {
        if (!Identical(expected, sharded.Run(10))) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace pdbscan
