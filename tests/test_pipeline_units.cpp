// Unit tests for the pipeline stages in isolation: MarkCore (Algorithm 2),
// CoreIndex, the connectivity strategies of ClusterCore (Algorithm 3), the
// border pass (Algorithm 4), pipeline statistics, option naming, and the
// DBSCAN* extension.
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "containers/union_find.h"
#include "dbscan/cluster_border.h"
#include "dbscan/cluster_core.h"
#include "dbscan/grid.h"
#include "dbscan/mark_core.h"
#include "dbscan/stats.h"
#include "dbscan/verify.h"
#include "data/seed_spreader.h"
#include "pdbscan/pdbscan.h"

namespace pdbscan {
namespace {

using dbscan::BuildCoreIndex;
using dbscan::BuildGrid;
using dbscan::CellStructure;
using dbscan::CoreIndex;
using dbscan::MarkCore;
using geometry::Point;

template <int D>
std::vector<Point<D>> RandomPoints(size_t n, double side, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coord(0.0, side);
  std::vector<Point<D>> pts(n);
  for (auto& p : pts) {
    for (int k = 0; k < D; ++k) p[k] = coord(rng);
  }
  return pts;
}

// Brute-force core flags in the *reordered* frame of a cell structure.
template <int D>
std::vector<uint8_t> BruteCoreFlags(const CellStructure<D>& cells,
                                    size_t min_pts) {
  const double eps2 = cells.epsilon * cells.epsilon;
  std::vector<uint8_t> flags(cells.num_points(), 0);
  for (size_t i = 0; i < cells.num_points(); ++i) {
    size_t count = 0;
    for (size_t j = 0; j < cells.num_points(); ++j) {
      if (cells.points[i].SquaredDistance(cells.points[j]) <= eps2) ++count;
    }
    flags[i] = count >= min_pts ? 1 : 0;
  }
  return flags;
}

TEST(MarkCore, ScanAndQuadtreeMatchBruteForce) {
  for (uint64_t seed : {1, 2, 3}) {
    auto pts = RandomPoints<2>(400, 15.0, seed);
    for (double eps : {0.8, 2.0}) {
      for (size_t min_pts : {3u, 8u, 25u}) {
        auto cells = BuildGrid<2>(pts, eps);
        const auto expected = BruteCoreFlags(cells, min_pts);
        EXPECT_EQ(MarkCore(cells, min_pts, RangeCountMethod::kScan), expected)
            << "scan eps=" << eps << " minpts=" << min_pts;
        EXPECT_EQ(MarkCore(cells, min_pts, RangeCountMethod::kQuadtree),
                  expected)
            << "qt eps=" << eps << " minpts=" << min_pts;
      }
    }
  }
}

TEST(MarkCore, DenseCellShortcut) {
  // All points in one tight cluster: the dense-cell path marks everything
  // core without any range queries.
  std::vector<Point<3>> pts(200, Point<3>{{1, 1, 1}});
  auto cells = BuildGrid<3>(pts, 5.0);
  ASSERT_EQ(cells.num_cells(), 1u);
  const auto flags = MarkCore(cells, 100, RangeCountMethod::kScan);
  for (const uint8_t f : flags) EXPECT_EQ(f, 1);
}

TEST(MarkCore, CountsCrossCellNeighbors) {
  // Two points in different cells, each alone; with minPts=2 they are core
  // only because the neighboring cell contributes.
  std::vector<Point<2>> pts = {Point<2>{{0, 0}}, Point<2>{{0.9, 0}}};
  auto cells = BuildGrid<2>(pts, 1.0);  // side ~0.707: different cells.
  ASSERT_EQ(cells.num_cells(), 2u);
  const auto flags = MarkCore(cells, 2, RangeCountMethod::kScan);
  EXPECT_EQ(flags[0], 1);
  EXPECT_EQ(flags[1], 1);
  const auto flags3 = MarkCore(cells, 3, RangeCountMethod::kScan);
  EXPECT_EQ(flags3[0], 0);
  EXPECT_EQ(flags3[1], 0);
}

TEST(CoreIndex, OffsetsAndPositionsConsistent) {
  auto pts = RandomPoints<2>(600, 20.0, 4);
  auto cells = BuildGrid<2>(pts, 1.2);
  const auto flags = MarkCore(cells, 5, RangeCountMethod::kScan);
  const CoreIndex core = BuildCoreIndex(cells, flags);
  size_t total = 0;
  for (size_t c = 0; c < cells.num_cells(); ++c) {
    EXPECT_EQ(core.cell_is_core[c] != 0, core.core_count(c) > 0);
    for (const uint32_t pos : core.core_of(c)) {
      EXPECT_EQ(flags[pos], 1);
      EXPECT_GE(pos, cells.offsets[c]);
      EXPECT_LT(pos, cells.offsets[c + 1]);
    }
    total += core.core_count(c);
  }
  size_t expected_total = 0;
  for (const uint8_t f : flags) expected_total += f;
  EXPECT_EQ(total, expected_total);
  EXPECT_EQ(core.core_positions.size(), expected_total);
}

// All connectivity strategies must agree with the brute-force BCP predicate
// on every neighboring core-cell pair.
TEST(Connectors, AgreeWithBruteForceBcp) {
  for (uint64_t seed : {5, 6}) {
    auto pts = RandomPoints<2>(500, 12.0, seed);
    const double eps = 1.0;
    auto cells = BuildGrid<2>(pts, eps);
    const auto flags = MarkCore(cells, 4, RangeCountMethod::kScan);
    const CoreIndex core = BuildCoreIndex(cells, flags);

    dbscan::BcpConnector<2> bcp(cells, core);
    dbscan::QuadtreeBcpConnector<2> qt(cells, core);
    dbscan::UsecConnector usec(cells, core);

    const double eps2 = eps * eps;
    for (size_t g = 0; g < cells.num_cells(); ++g) {
      if (!core.cell_is_core[g]) continue;
      for (const uint32_t h : cells.neighbors(g)) {
        if (!core.cell_is_core[h] || h <= g) continue;
        bool expected = false;
        for (const uint32_t a : core.core_of(g)) {
          for (const uint32_t b : core.core_of(h)) {
            expected = expected ||
                       cells.points[a].SquaredDistance(cells.points[b]) <= eps2;
          }
        }
        EXPECT_EQ(bcp.Connected(g, h), expected) << "bcp " << g << "," << h;
        EXPECT_EQ(qt.Connected(g, h), expected) << "qt " << g << "," << h;
        EXPECT_EQ(usec.Connected(g, h), expected) << "usec " << g << "," << h;
      }
    }
  }
}

TEST(Connectors, ApproxIsSandwiched) {
  auto pts = RandomPoints<2>(500, 12.0, 7);
  const double eps = 1.0;
  const double rho = 0.3;
  auto cells = BuildGrid<2>(pts, eps);
  const auto flags = MarkCore(cells, 4, RangeCountMethod::kScan);
  const CoreIndex core = BuildCoreIndex(cells, flags);
  dbscan::ApproxConnector<2> approx(cells, core, rho);
  const double inner2 = eps * eps;
  const double outer = eps * (1 + rho);
  const double outer2 = outer * outer;
  for (size_t g = 0; g < cells.num_cells(); ++g) {
    if (!core.cell_is_core[g]) continue;
    for (const uint32_t h : cells.neighbors(g)) {
      if (!core.cell_is_core[h] || h <= g) continue;
      double best = std::numeric_limits<double>::infinity();
      for (const uint32_t a : core.core_of(g)) {
        for (const uint32_t b : core.core_of(h)) {
          best = std::min(best,
                          cells.points[a].SquaredDistance(cells.points[b]));
        }
      }
      const bool got = approx.Connected(g, h);
      if (best <= inner2) EXPECT_TRUE(got) << g << "," << h;
      if (best > outer2) EXPECT_FALSE(got) << g << "," << h;
    }
  }
}

TEST(ClusterBorder, MultiMembershipAndNoise) {
  auto pts = RandomPoints<2>(400, 15.0, 8);
  const double eps = 1.0;
  const size_t min_pts = 6;
  auto cells = BuildGrid<2>(pts, eps);
  const auto flags = MarkCore(cells, min_pts, RangeCountMethod::kScan);
  const CoreIndex core = BuildCoreIndex(cells, flags);
  containers::UnionFind uf(cells.num_cells());
  dbscan::BcpConnector<2> bcp(cells, core);
  dbscan::ClusterCoreWithConnector(cells, core, Options{}, bcp, uf);
  const auto memberships =
      dbscan::ClusterBorder(cells, flags, core, min_pts, uf);
  const double eps2 = eps * eps;
  for (size_t i = 0; i < cells.num_points(); ++i) {
    if (flags[i]) {
      EXPECT_TRUE(memberships[i].empty());  // Filled separately for core.
      continue;
    }
    // Expected roots: clusters of core points within eps.
    std::vector<uint32_t> expected;
    for (size_t j = 0; j < cells.num_points(); ++j) {
      if (!flags[j]) continue;
      if (cells.points[i].SquaredDistance(cells.points[j]) <= eps2) {
        // Cell of j:
        const auto it = std::upper_bound(cells.offsets.begin(),
                                         cells.offsets.end(), j);
        const size_t cj = static_cast<size_t>(it - cells.offsets.begin()) - 1;
        expected.push_back(static_cast<uint32_t>(uf.Find(cj)));
      }
    }
    std::sort(expected.begin(), expected.end());
    expected.erase(std::unique(expected.begin(), expected.end()),
                   expected.end());
    EXPECT_EQ(memberships[i], expected) << "point " << i;
  }
}

TEST(Stats, BucketingReducesExecutedQueries) {
  // On clustered data the pruning should leave far fewer executed queries
  // than candidate pairs, and bucketing should not increase them.
  auto pts = data::SsSimden<2>(20000, 9);
  auto& stats = dbscan::GlobalStats();

  stats.Reset();
  Dbscan<2>(pts, 150.0, 10, OurExact());
  const size_t queries_plain = stats.connectivity_queries.load();
  const size_t pruned_plain = stats.pruned_queries.load();

  stats.Reset();
  Dbscan<2>(pts, 150.0, 10, WithBucketing(OurExact()));
  const size_t queries_bucketing = stats.connectivity_queries.load();

  EXPECT_GT(pruned_plain, 0u);
  EXPECT_GT(queries_plain, 0u);
  EXPECT_LE(queries_bucketing, queries_plain + queries_plain / 4);
}

TEST(OptionsNaming, MatchesPaperLabels) {
  EXPECT_EQ(OurExact().Name(), "our-exact");
  EXPECT_EQ(OurExactQt().Name(), "our-exact-qt");
  EXPECT_EQ(OurApprox().Name(), "our-approx");
  EXPECT_EQ(OurApproxQt().Name(), "our-approx-qt");
  EXPECT_EQ(WithBucketing(OurExact()).Name(), "our-exact-bucketing");
  EXPECT_EQ(Our2dGridUsec().Name(), "our-2d-grid-usec");
  EXPECT_EQ(Our2dBoxDelaunay().Name(), "our-2d-box-delaunay");
  EXPECT_EQ(WithBucketing(Our2dBoxBcp()).Name(), "our-exact-box-bucketing");
}

TEST(DbscanStar, CoreOnlyClustersMatchExactCores) {
  auto pts = RandomPoints<2>(800, 20.0, 10);
  const auto exact = Dbscan<2>(pts, 1.0, 5);
  Options star = OurExact();
  star.core_only = true;
  const auto got = Dbscan<2>(pts, 1.0, 5, star);
  EXPECT_EQ(exact.is_core, got.is_core);
  for (size_t i = 0; i < pts.size(); ++i) {
    if (got.is_core[i]) {
      // Core labels agree with the exact run (same first-appearance rule
      // restricted to core points need not give identical ids, so compare
      // through partitions):
      EXPECT_GE(got.cluster[i], 0);
      EXPECT_EQ(got.memberships(i).size(), 1u);
    } else {
      EXPECT_EQ(got.cluster[i], Clustering::kNoise);
      EXPECT_TRUE(got.memberships(i).empty());
    }
  }
  // Two core points share a cluster in DBSCAN* iff they do in DBSCAN.
  for (size_t i = 0; i < pts.size(); i += 7) {
    for (size_t j = 0; j < pts.size(); j += 11) {
      if (!exact.is_core[i] || !exact.is_core[j]) continue;
      EXPECT_EQ(exact.cluster[i] == exact.cluster[j],
                got.cluster[i] == got.cluster[j]);
    }
  }
  EXPECT_EQ(star.Name(), "our-exact-star");
}

TEST(Pipeline, ReusableAcrossCallsAndConfigs) {
  // Back-to-back runs with different configurations must not interfere
  // (no global state besides the scheduler and stats).
  auto pts = RandomPoints<3>(500, 12.0, 11);
  const auto a1 = Dbscan<3>(pts, 1.5, 5, OurExact());
  const auto b = Dbscan<3>(pts, 3.0, 10, OurExactQt());
  const auto a2 = Dbscan<3>(pts, 1.5, 5, OurExact());
  EXPECT_EQ(a1.cluster, a2.cluster);
  EXPECT_EQ(a1.membership_ids, a2.membership_ids);
  (void)b;
}

}  // namespace
}  // namespace pdbscan
