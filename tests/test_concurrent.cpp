// Concurrent serving contract: N client threads hammering one frozen
// CellIndex through an EnginePool produce clusterings bit-identical to
// serial one-shot Dbscan calls, per-context stats aggregate to exact sums,
// and a streaming writer swapping snapshots under live readers never tears
// a result. Runs under -DPDBSCAN_SANITIZE=thread in CI (the tsan job),
// which is what actually enforces "immutable index + private workspaces =
// no races".
#include <atomic>
#include <map>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dbscan/cell_index.h"
#include "dbscan/stats.h"
#include "parallel/engine_pool.h"
#include "parallel/scheduler.h"
#include "pdbscan/pdbscan.h"
#include "testing_util.h"

namespace pdbscan {
namespace {

using geometry::Point;
using pdbscan::testing::BlobPoints;
using pdbscan::testing::ExpectIdentical;
using pdbscan::testing::Identical;

constexpr size_t kClients = 8;
constexpr size_t kRoundsPerClient = 3;

// --- Bit-identical results under concurrent clients ------------------------

TEST(ConcurrentPool, ClientsMatchSerialDbscanBitForBit) {
  const auto pts = BlobPoints<2>(2500, 5, 40.0, 1.0, 7);
  const double eps = 1.2;
  const std::vector<size_t> minpts_list = {3, 5, 10, 25, 60};
  const size_t cap = 60;
  // Cover the scan and quadtree range-count paths plus the box cell source.
  for (const auto& options :
       {Our2dGridBcp(), Our2dBoxBcp(), OurExactQt(),
        WithBucketing(Our2dGridUsec())}) {
    // Expected results, computed serially before any concurrency.
    std::vector<Clustering> expected;
    for (const size_t m : minpts_list) {
      expected.push_back(Dbscan<2>(pts, eps, m, options));
    }

    auto index = CellIndex<2>::Build(pts, eps, cap, options);
    EnginePool<2> pool(index);
    std::vector<std::thread> clients;
    for (size_t t = 0; t < kClients; ++t) {
      clients.emplace_back([&, t]() {
        for (size_t r = 0; r < kRoundsPerClient; ++r) {
          const size_t which = (t + r) % minpts_list.size();
          const Clustering got = pool.Run(minpts_list[which]);
          ExpectIdentical(expected[which], got,
                          options.Name() + " client=" + std::to_string(t) +
                              " minpts=" +
                              std::to_string(minpts_list[which]));
        }
      });
    }
    for (auto& c : clients) c.join();
  }
}

TEST(ConcurrentPool, InnerParallelismComposesWithClientConcurrency) {
  // 2 scheduler workers + concurrent clients: queries submit parallel work
  // to the shared scheduler from many threads at once.
  parallel::ScopedNumWorkers scoped(2);
  const auto pts = BlobPoints<2>(2000, 4, 30.0, 1.0, 13);
  const double eps = 1.0;
  const std::vector<size_t> minpts_list = {4, 8, 20};
  std::vector<Clustering> expected;
  for (const size_t m : minpts_list) {
    expected.push_back(Dbscan<2>(pts, eps, m));
  }
  EnginePool<2> pool(std::span<const Point2>(pts), eps, /*counts_cap=*/20);
  std::vector<std::thread> clients;
  for (size_t t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t]() {
      for (size_t r = 0; r < kRoundsPerClient; ++r) {
        const size_t which = (t * kRoundsPerClient + r) % minpts_list.size();
        ExpectIdentical(expected[which], pool.Run(minpts_list[which]),
                        "workers=2 client=" + std::to_string(t));
      }
    });
  }
  for (auto& c : clients) c.join();
}

TEST(ConcurrentPool, ConcurrentSweepsMatchSerial) {
  const auto pts = BlobPoints<2>(1500, 4, 25.0, 1.0, 17);
  const double eps = 1.1;
  const std::vector<size_t> minpts_list = {3, 6, 12};
  std::vector<Clustering> expected;
  for (const size_t m : minpts_list) {
    expected.push_back(Dbscan<2>(pts, eps, m));
  }
  EnginePool<2> pool(std::span<const Point2>(pts), eps, /*counts_cap=*/12);
  std::vector<std::thread> clients;
  for (size_t t = 0; t < kClients; ++t) {
    clients.emplace_back([&]() {
      const auto sweep = pool.Sweep(minpts_list);
      ASSERT_EQ(sweep.size(), minpts_list.size());
      for (size_t i = 0; i < sweep.size(); ++i) {
        ExpectIdentical(expected[i], sweep[i], "concurrent sweep");
      }
    });
  }
  for (auto& c : clients) c.join();
}

// --- Stats aggregation ------------------------------------------------------

TEST(ConcurrentPool, StatsSumExactlyAcrossContexts) {
  const auto pts = BlobPoints<2>(1200, 3, 20.0, 1.0, 19);
  EnginePool<2> pool(std::span<const Point2>(pts), /*epsilon=*/1.0,
                     /*counts_cap=*/30);
  std::vector<std::thread> clients;
  for (size_t t = 0; t < kClients; ++t) {
    clients.emplace_back([&]() {
      for (size_t r = 0; r < kRoundsPerClient; ++r) {
        (void)pool.Run(5 + r);
      }
    });
  }
  for (auto& c : clients) c.join();

  dbscan::PipelineStats agg;
  pool.AggregateStats(agg);
  // The pool built its index exactly once, no matter how many clients ran.
  EXPECT_EQ(agg.cells_built.load(), 1u);
  EXPECT_EQ(agg.counts_built.load(), 1u);  // The index build's MarkCore pass.
  // Every query was answered from the shared saturated counts.
  EXPECT_EQ(agg.counts_reused.load(), kClients * kRoundsPerClient);
  EXPECT_EQ(agg.cells_reused.load(), 0u);
  // Contexts only multiply up to observed concurrency, never per query.
  EXPECT_GE(pool.contexts_created(), 1u);
  EXPECT_LE(pool.contexts_created(), kClients);
  // Aggregation is a sum, not a snapshot of one context: re-aggregating
  // doubles the counters in the caller's sink.
  pool.AggregateStats(agg);
  EXPECT_EQ(agg.counts_reused.load(), 2 * kClients * kRoundsPerClient);
}

// The serving scheduler's admission counters obey their stated invariants
// EXACTLY once traffic quiesces — not approximately, not "eventually":
// admitted + rejected == submits, cache lookups cover every admission
// decision, and every admitted request resolved kOk here (no deadlines, no
// overload). Runs under TSan in CI like the rest of this suite.
TEST(ConcurrentPool, ServingStatsSumExactly) {
  const auto pts = BlobPoints<2>(1200, 3, 20.0, 1.0, 19);
  EnginePool<2> pool(std::span<const Point2>(pts), /*epsilon=*/1.0,
                     /*counts_cap=*/30);
  parallel::ServingOptions opts;
  opts.queue_limit = 10000;
  opts.default_timeout_nanos = parallel::kNeverNanos;
  opts.cache_capacity = 16;
  opts.num_executors = 2;
  ServingScheduler<2> scheduler(pool, opts);

  std::atomic<size_t> ok{0};
  std::vector<std::thread> clients;
  for (size_t t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t]() {
      for (size_t r = 0; r < kRoundsPerClient; ++r) {
        if (scheduler.Submit(5 + (t + r) % 3).status == ServeStatus::kOk) {
          ok.fetch_add(1);
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  scheduler.Shutdown();

  const auto& s = scheduler.serving_stats();
  const size_t submits = kClients * kRoundsPerClient;
  EXPECT_EQ(ok.load(), submits);
  EXPECT_EQ(s.requests_admitted.load() + s.requests_rejected.load(), submits);
  EXPECT_EQ(s.requests_rejected.load(), 0u);
  EXPECT_EQ(s.requests_timed_out.load(), 0u);
  EXPECT_EQ(s.cache_hits.load() + s.cache_misses.load(), submits);
  EXPECT_LE(s.requests_coalesced.load(), submits);
  EXPECT_LE(s.queue_depth_peak.load(), kClients);

  // AggregateStats stacks the scheduler's counters on the pool's (build +
  // per-context): the serving sums survive aggregation unchanged.
  dbscan::PipelineStats agg;
  scheduler.AggregateStats(agg);
  EXPECT_EQ(agg.requests_admitted.load(), s.requests_admitted.load());
  EXPECT_EQ(agg.cells_built.load(), 1u);
  // Executions = cache misses that reached a sweep; with coalescing each
  // batch pays exactly one counts load, so the pool-side counter can never
  // exceed the miss count.
  EXPECT_LE(agg.counts_reused.load(), s.cache_misses.load());
}

TEST(ConcurrentPool, OverCapQueriesRecountPrivatelyAndStayIdentical) {
  const auto pts = BlobPoints<2>(1000, 3, 18.0, 1.0, 23);
  const double eps = 1.0;
  const size_t cap = 8;
  const size_t over_cap_minpts = 25;  // > cap: forces a per-context recount.
  const Clustering expected = Dbscan<2>(pts, eps, over_cap_minpts);
  const Clustering expected_under = Dbscan<2>(pts, eps, 4);

  EnginePool<2> pool(std::span<const Point2>(pts), eps, cap);
  std::vector<std::thread> clients;
  for (size_t t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t]() {
      if (t % 2 == 0) {
        ExpectIdentical(expected, pool.Run(over_cap_minpts), "over cap");
      } else {
        ExpectIdentical(expected_under, pool.Run(4), "under cap");
      }
    });
  }
  for (auto& c : clients) c.join();

  dbscan::PipelineStats agg;
  pool.AggregateStats(agg);
  // Every query either recounted (over-cap, first time in its context) or
  // reused (under-cap from the shared index, or a context's cached
  // recount); plus the 1 count pass of the index build itself.
  EXPECT_EQ(agg.counts_built.load() - 1 + agg.counts_reused.load(), kClients);
  // At least one over-cap recount happened; at most one per over-cap
  // client (the per-context cache never recounts twice in one context).
  EXPECT_GE(agg.counts_built.load(), 2u);
  EXPECT_LE(agg.counts_built.load(), 1u + kClients / 2);
}

TEST(ConcurrentPool, OverCapRecountIsCachedPerContext) {
  const auto pts = BlobPoints<2>(800, 3, 16.0, 1.0, 37);
  const double eps = 1.0;
  auto index = CellIndex<2>::Build(pts, eps, /*counts_cap=*/5);
  const Clustering expected = Dbscan<2>(pts, eps, 20);
  dbscan::PipelineStats stats;
  QueryContext<2> ctx(&stats);
  // Same over-cap setting twice through the shared_ptr overload: the
  // second query reuses the context's cached recount.
  ExpectIdentical(expected, ctx.Run(index, 20), "first over-cap");
  ExpectIdentical(expected, ctx.Run(index, 20), "second over-cap");
  EXPECT_EQ(stats.counts_built.load(), 1u);
  EXPECT_EQ(stats.counts_reused.load(), 1u);
  // A lower over-cap setting still fits the cached cap-20 recount.
  (void)ctx.Run(index, 10);
  EXPECT_EQ(stats.counts_built.load(), 1u);
  // A different index at the same address cannot alias the cache: the
  // cache pins `index` alive, so replacing it yields a fresh address.
  auto other = CellIndex<2>::Build(pts, eps * 2, /*counts_cap=*/5);
  const Clustering expected_other = Dbscan<2>(pts, eps * 2, 20);
  ExpectIdentical(expected_other, ctx.Run(other, 20), "other index");
  EXPECT_EQ(stats.counts_built.load(), 2u);
}

// --- QueryContext against shared indexes, without a pool -------------------

TEST(ConcurrentPool, BareQueryContextsShareIndexes) {
  const auto pts = BlobPoints<2>(1200, 4, 22.0, 1.0, 29);
  const Clustering expected_a = Dbscan<2>(pts, 0.8, 6);
  const Clustering expected_b = Dbscan<2>(pts, 1.6, 6);
  auto index_a = CellIndex<2>::Build(pts, 0.8, /*counts_cap=*/6);
  auto index_b = CellIndex<2>::Build(pts, 1.6, /*counts_cap=*/6);
  std::vector<std::thread> clients;
  for (size_t t = 0; t < 4; ++t) {
    clients.emplace_back([&, t]() {
      // One private context per thread; both epsilon indexes served from it.
      dbscan::PipelineStats stats;
      QueryContext<2> ctx(&stats);
      ExpectIdentical(expected_a, ctx.Run(*index_a, 6),
                      "index_a t=" + std::to_string(t));
      ExpectIdentical(expected_b, ctx.Run(*index_b, 6),
                      "index_b t=" + std::to_string(t));
      EXPECT_EQ(stats.counts_reused.load(), 2u);
    });
  }
  for (auto& c : clients) c.join();
}

// --- Streaming writer under concurrent readers ------------------------------

// One writer thread applies a deterministic sequence of insert/erase
// batches to a StreamingClusterer while kClients reader threads hammer
// leased contexts. Every reader result must be bit-identical to the
// expected clustering of SOME published version (snapshots are atomic:
// batch boundaries only, never a torn state), and the per-context stats
// must sum exactly afterwards. TSan enforces the no-races half.
TEST(ConcurrentPool, StreamingWriterWithConcurrentReaders) {
  const double eps = 1.1;
  const size_t cap = 30;
  const std::vector<size_t> minpts_rotation = {4, 9, 16};
  const size_t kBatches = 6;

  // The batch at step b inserts a fresh 400-point blob chunk and erases the
  // oldest quarter of the live ids (always a prefix, so live ids stay
  // contiguous and the replay below needs no bookkeeping).
  const auto batch_inserts = [&](size_t b) {
    return BlobPoints<2>(400, 3, 20.0, 0.9, 100 + b);
  };

  // Precompute every version's expected answers, serially, via from-scratch
  // one-shot runs on the version's live points.
  std::vector<std::vector<Point<2>>> version_pts;
  {
    StreamingClusterer<2> scratch(eps, cap);
    version_pts.push_back(scratch.LivePoints());
    uint64_t erase_from = 0;
    for (size_t b = 0; b < kBatches; ++b) {
      std::vector<uint64_t> del;
      for (uint64_t id = erase_from;
           id < erase_from + scratch.num_points() / 4; ++id) {
        del.push_back(id);
      }
      erase_from += scratch.num_points() / 4;
      scratch.ApplyUpdates(batch_inserts(b), del);
      version_pts.push_back(scratch.LivePoints());
    }
  }
  std::vector<std::vector<Clustering>> expected(version_pts.size());
  for (size_t v = 0; v < version_pts.size(); ++v) {
    for (const size_t m : minpts_rotation) {
      expected[v].push_back(Dbscan<2>(version_pts[v], eps, m));
    }
  }

  StreamingClusterer<2> stream(eps, cap);
  std::thread writer([&]() {
    uint64_t erase_from = 0;
    for (size_t b = 0; b < kBatches; ++b) {
      std::vector<uint64_t> del;
      for (uint64_t id = erase_from;
           id < erase_from + stream.num_points() / 4; ++id) {
        del.push_back(id);
      }
      erase_from += stream.num_points() / 4;
      stream.ApplyUpdates(batch_inserts(b), del);
    }
  });

  constexpr size_t kReaderRounds = 6;
  std::vector<std::thread> clients;
  for (size_t t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t]() {
      for (size_t r = 0; r < kReaderRounds; ++r) {
        const size_t which = (t + r) % minpts_rotation.size();
        const Clustering got = stream.Run(minpts_rotation[which]);
        bool matched = false;
        for (size_t v = 0; v < expected.size() && !matched; ++v) {
          matched = Identical(expected[v][which], got);
        }
        EXPECT_TRUE(matched)
            << "reader " << t << " round " << r << " minpts="
            << minpts_rotation[which] << " matched no published version (n="
            << got.size() << ")";
      }
    });
  }
  writer.join();
  for (auto& c : clients) c.join();

  // Final state serves the last version, and the stats sum exactly: every
  // reader query was answered from some snapshot's shared counts.
  ExpectIdentical(expected.back()[0], stream.Run(minpts_rotation[0]),
                  "final version");
  dbscan::PipelineStats agg;
  stream.AggregateStats(agg);
  EXPECT_EQ(agg.counts_reused.load(), kClients * kReaderRounds + 1);
  EXPECT_EQ(agg.counts_built.load(), 0u);  // No over-cap queries.
  EXPECT_EQ(agg.snapshots_published.load(), 1 + kBatches);
  EXPECT_GT(agg.cells_retained.load(), 0u);
}

// --- Validation -------------------------------------------------------------

TEST(ConcurrentPool, InvalidArgumentsThrow) {
  const auto pts = BlobPoints<2>(200, 2, 10.0, 1.0, 31);
  EXPECT_THROW(CellIndex<2>::Build(pts, -1.0, 10), std::invalid_argument);
  EXPECT_THROW(CellIndex<2>::Build(pts, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(EnginePool<2>(nullptr), std::invalid_argument);
  EnginePool<2> pool(std::span<const Point2>(pts), 1.0, 10);
  EXPECT_THROW(pool.Run(0), std::invalid_argument);
  EXPECT_THROW(pool.Sweep({3, 0}), std::invalid_argument);
}

}  // namespace
}  // namespace pdbscan
