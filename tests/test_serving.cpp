// Serving-scheduler contract, driven deterministically: every test that
// exercises a timing behavior (deadline expiry, queue overflow windows,
// coalescing batches, lease starvation) runs on a FakeClock in manual pump
// mode — the test IS the executor, time moves only when the test says so,
// and there is not a single real sleep in an assertion path. The threaded
// tests at the bottom (the TSan hammer) use the real clock with no
// deadlines, so they assert ordering-independent invariants only.
//
// The load-bearing property throughout: every kOk ServeResult is
// bit-identical to a solo EnginePool::Run / one-shot Dbscan at the
// generation the result reports — coalesced, cached, and raced responses
// included.
#include <atomic>
#include <future>
#include <map>
#include <optional>
#include <random>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dbscan/cell_index.h"
#include "dbscan/stats.h"
#include "parallel/engine_pool.h"
#include "parallel/scheduler.h"
#include "parallel/serving_clock.h"
#include "parallel/serving_scheduler.h"
#include "pdbscan/pdbscan.h"
#include "testing_util.h"

namespace pdbscan {
namespace {

using parallel::FakeClock;
using parallel::MillisToNanos;
using parallel::kNeverNanos;
using pdbscan::testing::BlobPoints;
using pdbscan::testing::ExpectIdentical;

// The shared workload: small enough that a sweep is instant, structured
// enough that distinct min_pts give distinct clusterings.
std::vector<Point2> ServingPoints(uint64_t seed = 11) {
  return BlobPoints<2>(600, 4, 30.0, 1.0, seed);
}

constexpr double kEps = 1.3;
constexpr size_t kCap = 64;

// A manual-pump scheduler over a fresh pool, everything on one FakeClock.
struct Harness {
  explicit Harness(parallel::ServingOptions opts = {},
                   uint64_t points_seed = 11)
      : pts(ServingPoints(points_seed)),
        index(dbscan::CellIndex<2>::Build(pts, kEps, kCap)),
        pool(index) {
    opts.num_executors = 0;  // The test pumps.
    opts.clock = &clock;
    pool.SetClock(&clock);
    scheduler.emplace(pool, opts);
  }

  Clustering Expected(size_t min_pts) const {
    dbscan::PipelineStats sink;
    dbscan::QueryContext<2> ctx(&sink);
    return ctx.Run(*index, min_pts);
  }

  const dbscan::PipelineStats& stats() const {
    return scheduler->serving_stats();
  }

  std::vector<Point2> pts;
  std::shared_ptr<const dbscan::CellIndex<2>> index;
  FakeClock clock;
  EnginePool<2> pool;
  std::optional<ServingScheduler<2>> scheduler;
};

// --- Admission and overload -------------------------------------------------

TEST(ServingAdmission, RejectsNewWhenQueueFull) {
  parallel::ServingOptions opts;
  opts.queue_limit = 2;
  opts.cache_capacity = 0;
  Harness h(opts);

  auto f1 = h.scheduler->SubmitAsync(3);
  auto f2 = h.scheduler->SubmitAsync(5);
  auto f3 = h.scheduler->SubmitAsync(10);  // Queue full: refused on the spot.

  ASSERT_EQ(f3.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  const ServeResult rejected = f3.get();
  EXPECT_EQ(rejected.status, ServeStatus::kRejected);
  EXPECT_EQ(rejected.min_pts, 10u);
  EXPECT_EQ(h.stats().requests_admitted.load(), 2u);
  EXPECT_EQ(h.stats().requests_rejected.load(), 1u);
  EXPECT_EQ(h.stats().queue_depth_peak.load(), 2u);

  EXPECT_EQ(h.scheduler->Pump(), 2u);
  const ServeResult r1 = f1.get();
  const ServeResult r2 = f2.get();
  ASSERT_EQ(r1.status, ServeStatus::kOk);
  ASSERT_EQ(r2.status, ServeStatus::kOk);
  ExpectIdentical(h.Expected(3), r1.clustering, "admitted min_pts=3");
  ExpectIdentical(h.Expected(5), r2.clustering, "admitted min_pts=5");
}

TEST(ServingAdmission, DropOldestEvictsTheLongestWaiter) {
  parallel::ServingOptions opts;
  opts.queue_limit = 2;
  opts.cache_capacity = 0;
  opts.overload_policy = OverloadPolicy::kDropOldest;
  Harness h(opts);

  auto f1 = h.scheduler->SubmitAsync(3);
  auto f2 = h.scheduler->SubmitAsync(5);
  auto f3 = h.scheduler->SubmitAsync(10);  // Evicts f1, takes its place.

  ASSERT_EQ(f1.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  const ServeResult evicted = f1.get();
  EXPECT_EQ(evicted.status, ServeStatus::kRejected);
  EXPECT_EQ(evicted.min_pts, 3u);
  EXPECT_EQ(h.stats().requests_admitted.load(), 3u);
  EXPECT_EQ(h.stats().requests_rejected.load(), 1u);

  EXPECT_EQ(h.scheduler->Pump(), 2u);
  ASSERT_EQ(f2.get().status, ServeStatus::kOk);
  const ServeResult r3 = f3.get();
  ASSERT_EQ(r3.status, ServeStatus::kOk);
  ExpectIdentical(h.Expected(10), r3.clustering, "survivor min_pts=10");
}

TEST(ServingAdmission, InvalidMinPtsThrowsInsteadOfQueueing) {
  Harness h;
  EXPECT_THROW(h.scheduler->SubmitAsync(0), std::invalid_argument);
  EXPECT_EQ(h.stats().requests_admitted.load(), 0u);
  EXPECT_EQ(h.stats().requests_rejected.load(), 0u);
}

// --- Deadlines (all fake-clock; zero real waits) ----------------------------

TEST(ServingDeadlines, ExpiresWhileQueuedWithoutExecuting) {
  parallel::ServingOptions opts;
  opts.cache_capacity = 0;
  Harness h(opts);

  auto f = h.scheduler->SubmitAsync(5, MillisToNanos(10));
  h.clock.AdvanceMillis(20);  // Deadline passes while the request queues.
  EXPECT_EQ(h.scheduler->Pump(), 1u);

  EXPECT_EQ(f.get().status, ServeStatus::kTimedOut);
  EXPECT_EQ(h.stats().requests_timed_out.load(), 1u);
  // The expiry happened at claim time: no query context was ever touched.
  EXPECT_EQ(h.pool.contexts_created(), 0u);
}

TEST(ServingDeadlines, ExpiresMidExecutionAfterTheWorkRan) {
  parallel::ServingOptions opts;
  opts.cache_capacity = 0;
  // The seam: once the batch is claimed (deadline still ahead), time jumps
  // past it before delivery — the "slow execution" schedule, made exact.
  FakeClock* clock_ptr = nullptr;
  Harness h(opts);
  clock_ptr = &h.clock;
  // Rebuild the scheduler with the hook installed (options are captured at
  // construction).
  parallel::ServingOptions hooked = opts;
  hooked.num_executors = 0;
  hooked.clock = clock_ptr;
  hooked.on_batch_claimed = [clock_ptr](size_t) {
    clock_ptr->AdvanceMillis(50);
  };
  h.scheduler.emplace(h.pool, hooked);

  auto f = h.scheduler->SubmitAsync(5, MillisToNanos(10));
  EXPECT_EQ(h.scheduler->Pump(), 1u);

  EXPECT_EQ(f.get().status, ServeStatus::kTimedOut);
  EXPECT_EQ(h.stats().requests_timed_out.load(), 1u);
  // Unlike queued expiry, the sweep DID run — the deadline was only missed
  // at delivery time.
  EXPECT_EQ(h.pool.contexts_created(), 1u);
}

TEST(ServingDeadlines, TimesOutWhenThePoolStaysExhausted) {
  parallel::ServingOptions opts;
  opts.cache_capacity = 0;
  Harness h(opts);
  h.pool.SetMaxContexts(1);

  // Hold the only context so the scheduler's lease wait must block.
  auto hog = h.pool.AcquireLease();
  auto f = h.scheduler->SubmitAsync(5, MillisToNanos(10));

  std::thread pumper([&]() { h.scheduler->Pump(); });
  h.clock.BlockUntilWaiters(1);  // The pump is parked in the lease wait.
  h.clock.AdvanceMillis(20);     // Push it past the request deadline.
  pumper.join();

  EXPECT_EQ(f.get().status, ServeStatus::kTimedOut);
  EXPECT_EQ(h.stats().requests_timed_out.load(), 1u);

  // With the context back, the same request shape succeeds.
  hog = EnginePool<2>::Lease();
  auto f2 = h.scheduler->SubmitAsync(5, MillisToNanos(10));
  EXPECT_EQ(h.scheduler->Pump(), 1u);
  EXPECT_EQ(f2.get().status, ServeStatus::kOk);
}

// Lease-starvation regression: the LEGACY pool surfaces must honor the
// default lease deadline rather than wait forever on a bounded pool — one
// stalled client used to starve every later Run/Sweep indefinitely.
TEST(ServingDeadlines, LegacyPoolRunThrowsLeaseTimeoutInsteadOfStarving) {
  auto pts = ServingPoints();
  auto index = dbscan::CellIndex<2>::Build(pts, kEps, kCap);
  EnginePool<2> pool(index);
  FakeClock clock;
  pool.SetClock(&clock);
  pool.SetMaxContexts(1);
  pool.SetDefaultLeaseDeadline(MillisToNanos(50));

  auto hog = pool.AcquireLease();  // The stalled client.
  std::atomic<bool> timed_out{false};
  std::thread blocked([&]() {
    try {
      pool.Run(5);
    } catch (const LeaseTimeout&) {
      timed_out = true;
    }
  });
  clock.BlockUntilWaiters(1);
  clock.AdvanceMillis(100);
  blocked.join();

  EXPECT_TRUE(timed_out.load());
  EXPECT_EQ(pool.pool_stats().requests_timed_out.load(), 1u);

  // Releasing the hog un-wedges the pool: the same call now succeeds.
  hog = EnginePool<2>::Lease();
  EXPECT_NO_THROW(pool.Run(5));

  // The non-throwing surface reports the same condition as an empty lease.
  auto hog2 = pool.AcquireLease();
  std::atomic<bool> empty{false};
  std::thread blocked2([&]() {
    auto lease = pool.TryAcquireLeaseUntil(clock.NowNanos() + MillisToNanos(5));
    empty = !lease;
  });
  clock.BlockUntilWaiters(1);
  clock.AdvanceMillis(10);
  blocked2.join();
  EXPECT_TRUE(empty.load());
}

// --- Coalescing -------------------------------------------------------------

TEST(ServingCoalescing, OneBatchedSweepAnswersEveryWaiterBitIdentically) {
  parallel::ServingOptions opts;
  opts.cache_capacity = 0;
  Harness h(opts);

  const std::vector<size_t> minpts = {3, 5, 5, 10, 3, 25};
  std::vector<std::future<ServeResult>> futures;
  for (const size_t m : minpts) futures.push_back(h.scheduler->SubmitAsync(m));

  // One pump, one lease, one Sweep over the 4 distinct settings.
  EXPECT_EQ(h.scheduler->Pump(), minpts.size());

  for (size_t i = 0; i < minpts.size(); ++i) {
    ServeResult r = futures[i].get();
    ASSERT_EQ(r.status, ServeStatus::kOk) << "request " << i;
    EXPECT_TRUE(r.coalesced);
    EXPECT_FALSE(r.from_cache);
    EXPECT_EQ(r.generation, 1u);
    EXPECT_EQ(r.min_pts, minpts[i]);
    ExpectIdentical(h.Expected(minpts[i]), r.clustering,
                    "coalesced min_pts=" + std::to_string(minpts[i]));
  }
  EXPECT_EQ(h.stats().requests_admitted.load(), minpts.size());
  EXPECT_EQ(h.stats().requests_coalesced.load(), minpts.size() - 1);
  // The whole batch consumed exactly one sweep through one context: the
  // shared saturated counts were loaded once, not once per client.
  dbscan::PipelineStats agg;
  h.pool.AggregateStats(agg);
  EXPECT_EQ(agg.counts_reused.load(), 1u);
  EXPECT_EQ(h.pool.contexts_created(), 1u);
}

TEST(ServingCoalescing, DisabledExecutesOneRequestPerPump) {
  parallel::ServingOptions opts;
  opts.cache_capacity = 0;
  opts.coalescing = false;
  Harness h(opts);

  auto f1 = h.scheduler->SubmitAsync(3);
  auto f2 = h.scheduler->SubmitAsync(10);
  EXPECT_EQ(h.scheduler->Pump(), 1u);  // Only the front request.
  EXPECT_EQ(h.scheduler->Pump(), 1u);
  EXPECT_EQ(h.scheduler->Pump(), 0u);  // Queue drained.

  for (auto* f : {&f1, &f2}) {
    const ServeResult r = f->get();
    ASSERT_EQ(r.status, ServeStatus::kOk);
    EXPECT_FALSE(r.coalesced);
  }
  EXPECT_EQ(h.stats().requests_coalesced.load(), 0u);
  // Two separate executions paid two sweeps.
  dbscan::PipelineStats agg;
  h.pool.AggregateStats(agg);
  EXPECT_EQ(agg.counts_reused.load(), 2u);
}

// --- Result cache -----------------------------------------------------------

TEST(ServingCache, HitsAreImmediateAndInvalidatedByReplaceIndex) {
  parallel::ServingOptions opts;
  opts.cache_capacity = 8;
  Harness h(opts);

  auto f1 = h.scheduler->SubmitAsync(5);
  EXPECT_EQ(h.stats().cache_misses.load(), 1u);
  EXPECT_EQ(h.scheduler->Pump(), 1u);
  const ServeResult first = f1.get();
  ASSERT_EQ(first.status, ServeStatus::kOk);
  EXPECT_FALSE(first.from_cache);
  EXPECT_EQ(first.generation, 1u);

  // Same (generation, eps, min_pts): answered at admission, no pump needed.
  auto f2 = h.scheduler->SubmitAsync(5);
  ASSERT_EQ(f2.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  const ServeResult hit = f2.get();
  ASSERT_EQ(hit.status, ServeStatus::kOk);
  EXPECT_TRUE(hit.from_cache);
  EXPECT_EQ(hit.generation, 1u);
  ExpectIdentical(first.clustering, hit.clustering, "cache hit");
  EXPECT_EQ(h.stats().cache_hits.load(), 1u);

  // A new snapshot bumps the generation: the old entry can never answer
  // again, even though it still sits in the LRU.
  const auto pts2 = ServingPoints(/*points_seed=*/99);
  auto index2 = dbscan::CellIndex<2>::Build(pts2, kEps, kCap);
  h.pool.ReplaceIndex(index2);
  EXPECT_EQ(h.pool.generation(), 2u);

  auto f3 = h.scheduler->SubmitAsync(5);
  ASSERT_NE(f3.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(h.stats().cache_misses.load(), 2u);
  EXPECT_EQ(h.scheduler->Pump(), 1u);
  const ServeResult fresh = f3.get();
  ASSERT_EQ(fresh.status, ServeStatus::kOk);
  EXPECT_FALSE(fresh.from_cache);
  EXPECT_EQ(fresh.generation, 2u);
  dbscan::PipelineStats sink;
  dbscan::QueryContext<2> ctx(&sink);
  ExpectIdentical(ctx.Run(*index2, 5), fresh.clustering,
                  "post-replace result answers from the new snapshot");
}

TEST(ServingCache, LruEvictsBeyondCapacity) {
  parallel::ServingOptions opts;
  opts.cache_capacity = 1;
  Harness h(opts);

  auto f1 = h.scheduler->SubmitAsync(3);
  h.scheduler->Pump();
  f1.get();
  auto f2 = h.scheduler->SubmitAsync(5);  // Evicts the min_pts=3 entry.
  h.scheduler->Pump();
  f2.get();

  auto f3 = h.scheduler->SubmitAsync(3);  // Miss again: it was evicted.
  ASSERT_NE(f3.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(h.stats().cache_hits.load(), 0u);
  EXPECT_EQ(h.stats().cache_misses.load(), 3u);
  h.scheduler->Pump();
  EXPECT_EQ(f3.get().status, ServeStatus::kOk);
}

// --- Async surfaces and shutdown --------------------------------------------

TEST(ServingAsync, CallbackRunsExactlyOnceWithTheResult) {
  parallel::ServingOptions opts;
  opts.cache_capacity = 8;
  Harness h(opts);

  std::vector<ServeResult> delivered;
  h.scheduler->SubmitCallback(
      5, [&](ServeResult r) { delivered.push_back(std::move(r)); });
  EXPECT_TRUE(delivered.empty());  // Queued, not yet executed.
  h.scheduler->Pump();
  ASSERT_EQ(delivered.size(), 1u);
  ASSERT_EQ(delivered[0].status, ServeStatus::kOk);
  ExpectIdentical(h.Expected(5), delivered[0].clustering, "callback result");

  // A cache hit invokes the callback on the submitting thread, before
  // SubmitCallback returns.
  h.scheduler->SubmitCallback(
      5, [&](ServeResult r) { delivered.push_back(std::move(r)); });
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_TRUE(delivered[1].from_cache);
  ExpectIdentical(delivered[0].clustering, delivered[1].clustering,
                  "cached callback result");
}

TEST(ServingShutdown, FailsPendingAndRefusesNewRequests) {
  parallel::ServingOptions opts;
  opts.cache_capacity = 0;
  Harness h(opts);

  auto f1 = h.scheduler->SubmitAsync(3);
  auto f2 = h.scheduler->SubmitAsync(5);
  h.scheduler->Shutdown();

  EXPECT_EQ(f1.get().status, ServeStatus::kShutdown);
  EXPECT_EQ(f2.get().status, ServeStatus::kShutdown);

  auto f3 = h.scheduler->SubmitAsync(10);
  ASSERT_EQ(f3.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(f3.get().status, ServeStatus::kShutdown);
  EXPECT_EQ(h.scheduler->Pump(), 0u);  // Nothing left, nothing claimed.
}

// --- Threaded hammer (real clock, no deadlines, TSan-checked) ---------------

// 8 clients mixing sync and async submits, a writer swapping snapshots
// underneath, executors coalescing across all of them: every kOk response
// must be bit-identical to a solo run against the generation it reports,
// and the admission counters must sum exactly. Runs under TSan in CI.
TEST(ServingHammer, MixedClientsWithConcurrentWriterStayBitIdentical) {
  constexpr size_t kClients = 8;
  constexpr size_t kRounds = 6;
  constexpr size_t kGenerations = 4;
  const std::vector<size_t> minpts_list = {3, 5, 10, 25};

  // Precompute every (generation, min_pts) truth serially.
  std::vector<std::shared_ptr<const dbscan::CellIndex<2>>> indexes;
  std::map<uint64_t, std::map<size_t, Clustering>> truth;
  for (size_t g = 0; g < kGenerations; ++g) {
    const auto pts = ServingPoints(/*points_seed=*/100 + g);
    indexes.push_back(dbscan::CellIndex<2>::Build(pts, kEps, kCap));
    dbscan::PipelineStats sink;
    dbscan::QueryContext<2> ctx(&sink);
    for (const size_t m : minpts_list) {
      truth[g + 1][m] = ctx.Run(*indexes[g], m);
    }
  }

  EnginePool<2> pool(indexes[0]);
  parallel::ServingOptions opts;
  opts.queue_limit = 10000;                  // Never overloads.
  opts.default_timeout_nanos = kNeverNanos;  // Never expires.
  opts.cache_capacity = 32;
  opts.num_executors = 2;
  ServingScheduler<2> scheduler(pool, opts);

  std::atomic<size_t> ok_count{0};
  std::vector<std::thread> clients;
  for (size_t t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t]() {
      std::mt19937_64 rng(t);
      for (size_t r = 0; r < kRounds; ++r) {
        const size_t m = minpts_list[rng() % minpts_list.size()];
        ServeResult result = (t + r) % 2 == 0
                                 ? scheduler.Submit(m)
                                 : scheduler.SubmitAsync(m).get();
        ASSERT_EQ(result.status, ServeStatus::kOk);
        ASSERT_GE(result.generation, 1u);
        ASSERT_LE(result.generation, kGenerations);
        ExpectIdentical(truth.at(result.generation).at(m), result.clustering,
                        "client " + std::to_string(t) + " gen " +
                            std::to_string(result.generation) + " min_pts " +
                            std::to_string(m));
        ok_count.fetch_add(1);
      }
    });
  }
  std::thread writer([&]() {
    for (size_t g = 1; g < kGenerations; ++g) {
      pool.ReplaceIndex(indexes[g]);
      std::this_thread::yield();  // Pacing only; no assertion depends on it.
    }
  });
  for (auto& c : clients) c.join();
  writer.join();
  scheduler.Shutdown();

  // Exact sums: every submit was admitted and served; cache lookups cover
  // every admission decision.
  const auto& s = scheduler.serving_stats();
  EXPECT_EQ(ok_count.load(), kClients * kRounds);
  EXPECT_EQ(s.requests_admitted.load(), kClients * kRounds);
  EXPECT_EQ(s.requests_rejected.load(), 0u);
  EXPECT_EQ(s.requests_timed_out.load(), 0u);
  EXPECT_EQ(s.cache_hits.load() + s.cache_misses.load(), kClients * kRounds);
  EXPECT_LE(s.requests_coalesced.load(), kClients * kRounds);
  EXPECT_LE(s.queue_depth_peak.load(), kClients);
}

}  // namespace
}  // namespace pdbscan
