// Cross-thread determinism: equal inputs must produce bit-identical
// Clusterings (labels, core flags, membership lists) regardless of the
// scheduler's worker count or execution schedule. Runs the same fixed-seed
// workloads at 1 worker and at N workers and compares full results — the
// programmatic equivalent of diffing PDBSCAN_NUM_THREADS=1 vs =N runs.
// Wired into the CI TSan matrix alongside test_concurrent, so schedule
// nondeterminism shows up both as label diffs here and as races there.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "parallel/scheduler.h"
#include "pdbscan/pdbscan.h"
#include "testing_util.h"

namespace pdbscan {
namespace {

using pdbscan::testing::ExpectIdentical;
using pdbscan::testing::GenerateShape;
using pdbscan::testing::MakeCases;
using pdbscan::testing::Shape;

constexpr int kManyWorkers = 4;

// Every exact 2D variant plus the approximate ones: one-shot runs at 1
// worker vs kManyWorkers must match bit for bit.
TEST(Determinism, OneShotVariantsAcrossWorkerCounts) {
  const std::vector<Options> configs = {
      Our2dGridBcp(),    Our2dGridUsec(),          Our2dGridDelaunay(),
      Our2dBoxBcp(),     Our2dBoxUsec(),           OurExactQt(),
      OurApprox(0.05),   WithBucketing(Our2dGridBcp())};
  for (const auto& c : MakeCases(/*base_seed=*/4242, 5)) {
    const auto pts = GenerateShape<2>(c.shape, c.n, c.seed);
    for (const auto& options : configs) {
      std::vector<Clustering> results;
      for (const int workers : {1, kManyWorkers}) {
        parallel::ScopedNumWorkers scoped(workers);
        results.push_back(Dbscan<2>(pts, c.epsilon, c.min_pts, options));
      }
      ExpectIdentical(results[0], results[1],
                      options.Name() + " seed=" + std::to_string(c.seed));
    }
  }
}

TEST(Determinism, HigherDimensionsAcrossWorkerCounts) {
  const auto pts3 = GenerateShape<3>(Shape::kBlobs, 400, 77);
  const auto pts5 = GenerateShape<5>(Shape::kMixed, 250, 78);
  std::vector<Clustering> r3, r5;
  for (const int workers : {1, kManyWorkers}) {
    parallel::ScopedNumWorkers scoped(workers);
    r3.push_back(Dbscan<3>(pts3, 1.4, 8));
    r5.push_back(Dbscan<5>(pts5, 3.0, 6));
  }
  ExpectIdentical(r3[0], r3[1], "3d");
  ExpectIdentical(r5[0], r5[1], "5d");
}

// The engine sweep surface: batched sweeps must be schedule-independent
// too (they share counts across settings, a different code path than
// repeated one-shot runs).
TEST(Determinism, EngineSweepAcrossWorkerCounts) {
  const auto pts = GenerateShape<2>(Shape::kGridish, 700, 123);
  const std::vector<size_t> settings = {2, 5, 11, 29};
  std::vector<std::vector<Clustering>> sweeps;
  for (const int workers : {1, kManyWorkers}) {
    parallel::ScopedNumWorkers scoped(workers);
    DbscanEngine<2> engine;
    engine.SetPoints(pts);
    sweeps.push_back(engine.Sweep(0.9, settings));
  }
  ASSERT_EQ(sweeps[0].size(), sweeps[1].size());
  for (size_t i = 0; i < sweeps[0].size(); ++i) {
    ExpectIdentical(sweeps[0][i], sweeps[1][i],
                    "sweep minpts=" + std::to_string(settings[i]));
  }
}

// The streaming surface: the same update sequence must publish snapshots
// with bit-identical labels at every worker count (incremental recounts,
// adjacency rebuilds and recomposition all run on the scheduler).
TEST(Determinism, StreamingUpdatesAcrossWorkerCounts) {
  const double eps = 1.0;
  std::vector<std::vector<Clustering>> per_worker_results;
  for (const int workers : {1, kManyWorkers}) {
    parallel::ScopedNumWorkers scoped(workers);
    StreamingClusterer<2> stream(eps, 18);
    std::vector<Clustering> results;
    uint64_t first = 0;
    for (size_t round = 0; round < 4; ++round) {
      const auto ins =
          GenerateShape<2>(pdbscan::testing::kAllShapes[round % 5],
                           150 + 40 * round, 1000 + round);
      std::vector<uint64_t> del;
      for (uint64_t id = first / 2; id < first / 2 + 20 * round; ++id) {
        del.push_back(id);
      }
      first = stream.ApplyUpdates(ins, del) + ins.size();
      results.push_back(stream.Run(6));
      results.push_back(stream.Run(25));  // Over-cap recount path.
    }
    per_worker_results.push_back(std::move(results));
  }
  ASSERT_EQ(per_worker_results[0].size(), per_worker_results[1].size());
  for (size_t i = 0; i < per_worker_results[0].size(); ++i) {
    ExpectIdentical(per_worker_results[0][i], per_worker_results[1][i],
                    "streaming step " + std::to_string(i));
  }
}

}  // namespace
}  // namespace pdbscan
