// Tests for the utility helpers: environment parsing, the stopwatch, and
// the benchmark table formatter.
#include <cstdlib>
#include <sstream>
#include <thread>

#include <gtest/gtest.h>

#include "util/bench_table.h"
#include "util/env.h"
#include "util/timer.h"

namespace pdbscan {
namespace {

TEST(Env, IntParsingAndDefaults) {
  ::setenv("PDBSCAN_TEST_INT", "42", 1);
  EXPECT_EQ(util::GetEnvInt("PDBSCAN_TEST_INT", 7), 42);
  ::setenv("PDBSCAN_TEST_INT", "-3", 1);
  EXPECT_EQ(util::GetEnvInt("PDBSCAN_TEST_INT", 7), -3);
  ::setenv("PDBSCAN_TEST_INT", "junk", 1);
  EXPECT_EQ(util::GetEnvInt("PDBSCAN_TEST_INT", 7), 7);
  ::setenv("PDBSCAN_TEST_INT", "", 1);
  EXPECT_EQ(util::GetEnvInt("PDBSCAN_TEST_INT", 7), 7);
  ::unsetenv("PDBSCAN_TEST_INT");
  EXPECT_EQ(util::GetEnvInt("PDBSCAN_TEST_INT", 7), 7);
}

TEST(Env, DoubleParsingAndDefaults) {
  ::setenv("PDBSCAN_TEST_DBL", "2.5", 1);
  EXPECT_DOUBLE_EQ(util::GetEnvDouble("PDBSCAN_TEST_DBL", 1.0), 2.5);
  ::setenv("PDBSCAN_TEST_DBL", "1e-3", 1);
  EXPECT_DOUBLE_EQ(util::GetEnvDouble("PDBSCAN_TEST_DBL", 1.0), 1e-3);
  ::setenv("PDBSCAN_TEST_DBL", "x", 1);
  EXPECT_DOUBLE_EQ(util::GetEnvDouble("PDBSCAN_TEST_DBL", 1.0), 1.0);
  ::unsetenv("PDBSCAN_TEST_DBL");
}

TEST(Env, StringDefaults) {
  ::setenv("PDBSCAN_TEST_STR", "hello", 1);
  EXPECT_EQ(util::GetEnvString("PDBSCAN_TEST_STR", "d"), "hello");
  ::unsetenv("PDBSCAN_TEST_STR");
  EXPECT_EQ(util::GetEnvString("PDBSCAN_TEST_STR", "d"), "d");
}

TEST(Timer, MeasuresElapsedTimeMonotonically) {
  util::Timer timer;
  const double t0 = timer.Seconds();
  EXPECT_GE(t0, 0.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const double t1 = timer.Seconds();
  EXPECT_GT(t1, t0);
  EXPECT_GE(t1, 0.009);
  EXPECT_NEAR(timer.Millis(), timer.Seconds() * 1000, 50);
  timer.Reset();
  EXPECT_LT(timer.Seconds(), t1);
}

TEST(BenchTable, AlignsColumnsAndPrintsAllRows) {
  util::BenchTable table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22222"});
  std::ostringstream out;
  table.Print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("22222"), std::string::npos);
  // Header + separator + 2 rows = 4 lines.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
}

TEST(BenchTable, CsvOutput) {
  util::BenchTable table({"a", "b"});
  table.AddRow({"1", "2"});
  std::ostringstream out;
  table.PrintCsv(out);
  EXPECT_EQ(out.str(), "#csv a,b\n#csv 1,2\n");
}

TEST(BenchTable, NumFormatsPrecision) {
  EXPECT_EQ(util::BenchTable::Num(1.0), "1");
  EXPECT_EQ(util::BenchTable::Num(0.123456, 3), "0.123");
  EXPECT_EQ(util::BenchTable::Num(1234.5678, 6), "1234.57");
}

}  // namespace
}  // namespace pdbscan
