// Validation of the 2D Delaunay triangulation: structural invariants and
// the empty-circumcircle property against brute force.
#include <algorithm>
#include <cmath>
#include <random>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "geometry/delaunay.h"
#include "geometry/point.h"

namespace pdbscan {
namespace {

using geometry::Delaunay;
using geometry::Point;

std::vector<Point<2>> RandomPoints(size_t n, uint64_t seed, double side = 100) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coord(0.0, side);
  std::vector<Point<2>> pts(n);
  for (auto& p : pts) p = {{coord(rng), coord(rng)}};
  return pts;
}

long double Cross(const Point<2>& a, const Point<2>& b, const Point<2>& c) {
  return (static_cast<long double>(b[0]) - a[0]) * (static_cast<long double>(c[1]) - a[1]) -
         (static_cast<long double>(b[1]) - a[1]) * (static_cast<long double>(c[0]) - a[0]);
}

long double InCircle(const Point<2>& a, const Point<2>& b, const Point<2>& c,
                     const Point<2>& p) {
  const long double adx = a[0] - p[0], ady = a[1] - p[1];
  const long double bdx = b[0] - p[0], bdy = b[1] - p[1];
  const long double cdx = c[0] - p[0], cdy = c[1] - p[1];
  const long double ad2 = adx * adx + ady * ady;
  const long double bd2 = bdx * bdx + bdy * bdy;
  const long double cd2 = cdx * cdx + cdy * cdy;
  return adx * (bdy * cd2 - bd2 * cdy) - ady * (bdx * cd2 - bd2 * cdx) +
         ad2 * (bdx * cdy - bdy * cdx);
}

// Structural + Delaunay-property validation.
void ValidateTriangulation(const std::vector<Point<2>>& pts,
                           const Delaunay& dt, bool check_circumcircles,
                           bool jittered = false) {
  const auto& tris = dt.triangles();
  const auto& he = dt.halfedges();
  ASSERT_EQ(tris.size(), he.size());
  ASSERT_EQ(tris.size() % 3, 0u);

  // Halfedge involution and twin vertex consistency.
  for (size_t e = 0; e < he.size(); ++e) {
    const int32_t t = he[e];
    if (t < 0) continue;
    ASSERT_EQ(he[static_cast<size_t>(t)], static_cast<int32_t>(e));
    // Twins traverse the same segment in opposite directions.
    const size_t e_base = e - e % 3;
    const size_t t_base = static_cast<size_t>(t) - static_cast<size_t>(t) % 3;
    const uint32_t e_from = tris[e];
    const uint32_t e_to = tris[e_base + (e + 1) % 3];
    const uint32_t t_from = tris[static_cast<size_t>(t)];
    const uint32_t t_to = tris[t_base + (static_cast<size_t>(t) + 1) % 3];
    ASSERT_EQ(e_from, t_to);
    ASSERT_EQ(e_to, t_from);
  }

  // Counterclockwise orientation. Under jitter the topology comes from the
  // perturbed coordinates, so exactly-degenerate original triples may have
  // zero cross product.
  for (size_t t = 0; t < tris.size(); t += 3) {
    const long double c = Cross(pts[tris[t]], pts[tris[t + 1]], pts[tris[t + 2]]);
    if (jittered) {
      ASSERT_GE(c, -1e-3L) << "triangle " << t / 3;
    } else {
      ASSERT_GT(c, 0.0L) << "triangle " << t / 3;
    }
  }

  if (!check_circumcircles) return;
  // Empty circumcircle: no point strictly inside (tolerance for roundoff).
  for (size_t t = 0; t < tris.size(); t += 3) {
    const Point<2>& a = pts[tris[t]];
    const Point<2>& b = pts[tris[t + 1]];
    const Point<2>& c = pts[tris[t + 2]];
    for (size_t p = 0; p < pts.size(); ++p) {
      if (p == tris[t] || p == tris[t + 1] || p == tris[t + 2]) continue;
      const long double v = InCircle(a, b, c, pts[p]);
      ASSERT_LE(v, 1e-3L) << "point " << p << " inside circumcircle of "
                          << t / 3;
    }
  }
}

class DelaunayRandomTest
    : public ::testing::TestWithParam<std::pair<size_t, uint64_t>> {};

TEST_P(DelaunayRandomTest, EmptyCircumcircleProperty) {
  const auto [n, seed] = GetParam();
  auto pts = RandomPoints(n, seed);
  Delaunay dt{std::span<const Point<2>>(pts)};
  EXPECT_FALSE(dt.degenerate());
  ValidateTriangulation(pts, dt, /*check_circumcircles=*/true);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, DelaunayRandomTest,
    ::testing::Values(std::pair<size_t, uint64_t>{3, 1},
                      std::pair<size_t, uint64_t>{4, 2},
                      std::pair<size_t, uint64_t>{5, 3},
                      std::pair<size_t, uint64_t>{10, 4},
                      std::pair<size_t, uint64_t>{25, 5},
                      std::pair<size_t, uint64_t>{50, 6},
                      std::pair<size_t, uint64_t>{100, 7},
                      std::pair<size_t, uint64_t>{250, 8},
                      std::pair<size_t, uint64_t>{250, 9},
                      std::pair<size_t, uint64_t>{500, 10}));

TEST(Delaunay, LargeRandomSetStructure) {
  auto pts = RandomPoints(20000, 42);
  Delaunay dt{std::span<const Point<2>>(pts)};
  ValidateTriangulation(pts, dt, /*check_circumcircles=*/false);
  // Euler: for n points with h hull vertices, triangles = 2n - 2 - h.
  // h >= 3, so triangle count is between n-ish and 2n - 5.
  EXPECT_GE(dt.num_triangles(), pts.size());
  EXPECT_LE(dt.num_triangles(), 2 * pts.size() - 5);
}

TEST(Delaunay, EdgesAreUniqueAndCoverTriangles) {
  auto pts = RandomPoints(300, 77);
  Delaunay dt{std::span<const Point<2>>(pts)};
  auto edges = dt.Edges();
  std::set<std::pair<uint32_t, uint32_t>> unique_edges(edges.begin(),
                                                       edges.end());
  EXPECT_EQ(unique_edges.size(), edges.size());
  for (auto [u, v] : edges) {
    EXPECT_LT(u, v);
    EXPECT_LT(v, pts.size());
  }
  // Euler for planar triangulation: E = 3T/2 + h/2... sanity: E >= 3n/2 - 3.
  EXPECT_GE(edges.size(), pts.size());
}

TEST(Delaunay, CollinearPointsDegenerateChain) {
  std::vector<Point<2>> pts;
  for (int i = 0; i < 10; ++i) pts.push_back({{double(i), 2.0 * i}});
  Delaunay dt{std::span<const Point<2>>(pts)};
  EXPECT_TRUE(dt.degenerate());
  auto edges = dt.Edges();
  ASSERT_EQ(edges.size(), 9u);
  // Chain connects consecutive points in x order.
  for (size_t i = 0; i < edges.size(); ++i) {
    EXPECT_EQ(edges[i].first, i);
    EXPECT_EQ(edges[i].second, i + 1);
  }
}

TEST(Delaunay, CollinearWithJitterTriangulates) {
  std::vector<Point<2>> pts;
  for (int i = 0; i < 50; ++i) pts.push_back({{double(i), 0.0}});
  Delaunay dt{std::span<const Point<2>>(pts), /*jitter_seed=*/12345};
  EXPECT_FALSE(dt.degenerate());
  // Every consecutive pair must still be a Delaunay edge (their jittered
  // positions remain nearest neighbors).
  auto edges = dt.Edges();
  std::set<std::pair<uint32_t, uint32_t>> edge_set(edges.begin(), edges.end());
  for (uint32_t i = 0; i + 1 < 50; ++i) {
    EXPECT_TRUE(edge_set.count({i, i + 1})) << i;
  }
}

TEST(Delaunay, CocircularGridWithJitter) {
  // A regular grid is maximally degenerate (all 4-point cocircular cells).
  std::vector<Point<2>> pts;
  for (int x = 0; x < 12; ++x) {
    for (int y = 0; y < 12; ++y) pts.push_back({{double(x), double(y)}});
  }
  Delaunay dt{std::span<const Point<2>>(pts), /*jitter_seed=*/9};
  EXPECT_FALSE(dt.degenerate());
  ValidateTriangulation(pts, dt, /*check_circumcircles=*/false,
                        /*jittered=*/true);
  // Grid neighbors (distance 1) must be Delaunay edges.
  auto edges = dt.Edges();
  size_t unit_edges = 0;
  for (auto [u, v] : edges) {
    if (std::abs(pts[u].SquaredDistance(pts[v]) - 1.0) < 1e-6) ++unit_edges;
  }
  EXPECT_EQ(unit_edges, 2u * 12u * 11u);
}

TEST(Delaunay, DuplicatePointsAreSkippedSafely) {
  auto pts = RandomPoints(100, 3);
  pts.insert(pts.end(), pts.begin(), pts.begin() + 20);  // 20 duplicates.
  Delaunay dt{std::span<const Point<2>>(pts)};
  ValidateTriangulation(pts, dt, /*check_circumcircles=*/false);
}

TEST(Delaunay, TinyInputs) {
  std::vector<Point<2>> empty;
  EXPECT_TRUE(Delaunay{std::span<const Point<2>>(empty)}.degenerate());
  std::vector<Point<2>> one = {{{1, 1}}};
  EXPECT_TRUE(Delaunay{std::span<const Point<2>>(one)}.degenerate());
  std::vector<Point<2>> two = {{{0, 0}}, {{1, 1}}};
  Delaunay dt2{std::span<const Point<2>>(two)};
  EXPECT_TRUE(dt2.degenerate());
  EXPECT_EQ(dt2.Edges().size(), 1u);
}

TEST(Delaunay, NearestNeighborEdgeAlwaysPresent) {
  // The nearest-neighbor graph is a subgraph of the Delaunay triangulation.
  for (uint64_t seed : {101, 102, 103}) {
    auto pts = RandomPoints(150, seed);
    Delaunay dt{std::span<const Point<2>>(pts)};
    auto edges = dt.Edges();
    std::set<std::pair<uint32_t, uint32_t>> edge_set(edges.begin(),
                                                     edges.end());
    for (uint32_t i = 0; i < pts.size(); ++i) {
      uint32_t nn = i;
      double best = std::numeric_limits<double>::infinity();
      for (uint32_t j = 0; j < pts.size(); ++j) {
        if (j == i) continue;
        const double d = pts[i].SquaredDistance(pts[j]);
        if (d < best) {
          best = d;
          nn = j;
        }
      }
      const auto key = std::minmax(i, nn);
      EXPECT_TRUE(edge_set.count({key.first, key.second}))
          << "seed " << seed << " point " << i;
    }
  }
}

}  // namespace
}  // namespace pdbscan
