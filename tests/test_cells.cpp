// Tests for cell construction: grid (Section 4.1) and 2D boxes (Section 4.2).
#include <algorithm>
#include <cmath>
#include <numeric>
#include <random>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "dbscan/box_cells.h"
#include "dbscan/grid.h"
#include "geometry/point.h"
#include "parallel/scheduler.h"

namespace pdbscan {
namespace {

using dbscan::CellStructure;
using geometry::Point;

template <int D>
std::vector<Point<D>> RandomPoints(size_t n, double side, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coord(0.0, side);
  std::vector<Point<D>> pts(n);
  for (auto& p : pts) {
    for (int k = 0; k < D; ++k) p[k] = coord(rng);
  }
  return pts;
}

// Invariants every cell structure must satisfy.
template <int D>
void CheckCellInvariants(const CellStructure<D>& cells,
                         const std::vector<Point<D>>& input, double epsilon) {
  const size_t n = input.size();
  ASSERT_EQ(cells.num_points(), n);
  ASSERT_EQ(cells.offsets.front(), 0u);
  ASSERT_EQ(cells.offsets.back(), n);

  // orig_index is a permutation and points are consistent with it.
  std::vector<uint8_t> seen(n, 0);
  for (size_t i = 0; i < n; ++i) {
    const uint32_t orig = cells.orig_index[i];
    ASSERT_LT(orig, n);
    ASSERT_EQ(seen[orig], 0);
    seen[orig] = 1;
    ASSERT_TRUE(cells.points[i] == input[orig]);
  }

  const double eps2 = epsilon * epsilon;
  for (size_t c = 0; c < cells.num_cells(); ++c) {
    ASSERT_GT(cells.cell_size(c), 0u) << "empty cell " << c;
    // Cell diameter at most epsilon: all pairs within the cell are close.
    const auto pts = cells.cell_points(c);
    for (size_t i = 0; i < pts.size(); ++i) {
      for (size_t j = i + 1; j < pts.size(); ++j) {
        ASSERT_LE(pts[i].SquaredDistance(pts[j]), eps2 * (1 + 1e-9))
            << "cell " << c;
      }
      // Points lie inside the cell's box.
      ASSERT_LE(cells.cell_boxes[c].MinSquaredDistance(pts[i]), 1e-18);
    }
  }

  // Neighbor adjacency is symmetric, excludes self, and is *complete*: any
  // two cells with points within epsilon must be neighbors.
  std::set<std::pair<uint32_t, uint32_t>> nbr_set;
  for (size_t c = 0; c < cells.num_cells(); ++c) {
    for (const uint32_t h : cells.neighbors(c)) {
      ASSERT_NE(h, c);
      nbr_set.insert({static_cast<uint32_t>(c), h});
    }
  }
  for (const auto& [a, b] : nbr_set) {
    ASSERT_TRUE(nbr_set.count({b, a})) << a << " " << b;
  }
  for (size_t a = 0; a < cells.num_cells(); ++a) {
    for (size_t b = a + 1; b < cells.num_cells(); ++b) {
      double best = std::numeric_limits<double>::infinity();
      for (const auto& p : cells.cell_points(a)) {
        for (const auto& q : cells.cell_points(b)) {
          best = std::min(best, p.SquaredDistance(q));
        }
      }
      if (best <= eps2) {
        ASSERT_TRUE(nbr_set.count({static_cast<uint32_t>(a),
                                   static_cast<uint32_t>(b)}))
            << "cells " << a << " and " << b << " have points within epsilon "
            << "but are not neighbors";
      }
    }
  }
}

TEST(Grid, Invariants2d) {
  auto pts = RandomPoints<2>(800, 20.0, 1);
  auto cells = dbscan::BuildGrid<2>(pts, 1.5);
  CheckCellInvariants(cells, pts, 1.5);
}

TEST(Grid, Invariants3d) {
  auto pts = RandomPoints<3>(600, 10.0, 2);
  auto cells = dbscan::BuildGrid<3>(pts, 2.0);
  CheckCellInvariants(cells, pts, 2.0);
}

TEST(Grid, Invariants5dUsesKdTreeNeighbors) {
  auto pts = RandomPoints<5>(400, 6.0, 3);
  auto cells = dbscan::BuildGrid<5>(pts, 2.5);
  CheckCellInvariants(cells, pts, 2.5);
}

TEST(Grid, Invariants7d) {
  auto pts = RandomPoints<7>(300, 5.0, 4);
  auto cells = dbscan::BuildGrid<7>(pts, 3.0);
  CheckCellInvariants(cells, pts, 3.0);
}

TEST(Grid, SideLengthIsEpsilonOverSqrtD) {
  auto pts = RandomPoints<3>(100, 10.0, 5);
  auto cells = dbscan::BuildGrid<3>(pts, 3.0);
  for (size_t c = 0; c < cells.num_cells(); ++c) {
    const auto& box = cells.cell_boxes[c];
    for (int k = 0; k < 3; ++k) {
      EXPECT_NEAR(box.max[k] - box.min[k], 3.0 / std::sqrt(3.0), 1e-12);
    }
  }
}

TEST(Grid, EmptyInput) {
  std::vector<Point<2>> pts;
  auto cells = dbscan::BuildGrid<2>(pts, 1.0);
  EXPECT_EQ(cells.num_cells(), 0u);
  EXPECT_EQ(cells.num_points(), 0u);
}

TEST(Grid, SinglePointSingleCell) {
  std::vector<Point<2>> pts = {Point<2>{{3, 4}}};
  auto cells = dbscan::BuildGrid<2>(pts, 1.0);
  EXPECT_EQ(cells.num_cells(), 1u);
  EXPECT_EQ(cells.cell_size(0), 1u);
  EXPECT_TRUE(cells.neighbors(0).empty());
}

TEST(Grid, CoincidentPointsShareOneCell) {
  std::vector<Point<3>> pts(500, Point<3>{{1, 2, 3}});
  auto cells = dbscan::BuildGrid<3>(pts, 1.0);
  EXPECT_EQ(cells.num_cells(), 1u);
  EXPECT_EQ(cells.cell_size(0), 500u);
}

TEST(Grid, NegativeCoordinatesWork) {
  auto pts = RandomPoints<2>(300, 10.0, 7);
  for (auto& p : pts) {
    p[0] -= 20.0;
    p[1] -= 5.0;
  }
  auto cells = dbscan::BuildGrid<2>(pts, 1.0);
  CheckCellInvariants(cells, pts, 1.0);
}

TEST(Grid, DeterministicAcrossWorkerCounts) {
  auto pts = RandomPoints<3>(2000, 15.0, 8);
  parallel::set_num_workers(1);
  auto serial = dbscan::BuildGrid<3>(pts, 1.2);
  parallel::set_num_workers(8);
  auto parallel_cells = dbscan::BuildGrid<3>(pts, 1.2);
  EXPECT_EQ(serial.offsets, parallel_cells.offsets);
  EXPECT_EQ(serial.orig_index, parallel_cells.orig_index);
  EXPECT_EQ(serial.nbr_offsets, parallel_cells.nbr_offsets);
  EXPECT_EQ(serial.nbrs, parallel_cells.nbrs);
}

// --- Box method ---------------------------------------------------------------

TEST(BoxCells, Invariants) {
  for (uint64_t seed : {11, 12, 13}) {
    auto pts = RandomPoints<2>(700, 25.0, seed);
    auto cells = dbscan::BuildBoxCells(pts, 2.0);
    CheckCellInvariants(cells, pts, 2.0);
  }
}

TEST(BoxCells, StripWidthRespected) {
  auto pts = RandomPoints<2>(1000, 30.0, 14);
  const double epsilon = 2.0;
  auto cells = dbscan::BuildBoxCells(pts, epsilon);
  const double width = epsilon / std::sqrt(2.0);
  for (size_t c = 0; c < cells.num_cells(); ++c) {
    const auto& box = cells.cell_boxes[c];
    EXPECT_LE(box.max[0] - box.min[0], width * (1 + 1e-12));
    EXPECT_LE(box.max[1] - box.min[1], width * (1 + 1e-12));
  }
}

TEST(BoxCells, CellBoxesAreSeparatedAlongAnAxis) {
  auto pts = RandomPoints<2>(500, 20.0, 15);
  auto cells = dbscan::BuildBoxCells(pts, 1.7);
  for (size_t a = 0; a < cells.num_cells(); ++a) {
    for (size_t b = a + 1; b < cells.num_cells(); ++b) {
      const auto& ba = cells.cell_boxes[a];
      const auto& bb = cells.cell_boxes[b];
      const bool x_sep = ba.max[0] <= bb.min[0] || bb.max[0] <= ba.min[0];
      const bool y_sep = ba.max[1] <= bb.min[1] || bb.max[1] <= ba.min[1];
      ASSERT_TRUE(x_sep || y_sep) << "cells " << a << "," << b;
    }
  }
}

TEST(BoxCells, MatchesSequentialStripConstruction) {
  // Reference: the sequential strip rule of de Berg et al. / Gunawan.
  auto pts = RandomPoints<2>(400, 15.0, 16);
  const double epsilon = 1.3;
  const double width = epsilon / std::sqrt(2.0);
  auto cells = dbscan::BuildBoxCells(pts, epsilon);

  std::vector<uint32_t> order(pts.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (pts[a][0] != pts[b][0]) return pts[a][0] < pts[b][0];
    if (pts[a][1] != pts[b][1]) return pts[a][1] < pts[b][1];
    return a < b;
  });
  std::vector<size_t> strip_of(pts.size());
  size_t strips = 0;
  double strip_start = 0;
  for (size_t i = 0; i < order.size(); ++i) {
    const double x = pts[order[i]][0];
    if (i == 0 || x > strip_start + width) {
      ++strips;
      strip_start = x;
    }
    strip_of[order[i]] = strips - 1;
  }
  // Count strips in the parallel construction through cell box extents:
  // group cells by x-interval.
  std::set<long long> strip_keys;
  for (size_t i = 0; i < pts.size(); ++i) {
    // Recover each point's strip from the reference; compare total counts.
    strip_keys.insert(static_cast<long long>(strip_of[i]));
  }
  EXPECT_EQ(strip_keys.size(), strips);
  // And the parallel cells must never straddle a reference strip boundary:
  for (size_t c = 0; c < cells.num_cells(); ++c) {
    const size_t begin = cells.offsets[c];
    const size_t strip0 = strip_of[cells.orig_index[begin]];
    for (size_t i = begin; i < cells.offsets[c + 1]; ++i) {
      ASSERT_EQ(strip_of[cells.orig_index[i]], strip0) << "cell " << c;
    }
  }
}

TEST(BoxCells, EmptyAndSinglePoint) {
  std::vector<Point<2>> pts;
  auto cells = dbscan::BuildBoxCells(pts, 1.0);
  EXPECT_EQ(cells.num_cells(), 0u);
  pts.push_back(Point<2>{{1, 1}});
  cells = dbscan::BuildBoxCells(pts, 1.0);
  EXPECT_EQ(cells.num_cells(), 1u);
  EXPECT_EQ(cells.cell_size(0), 1u);
}

TEST(BoxCells, DeterministicAcrossWorkerCounts) {
  auto pts = RandomPoints<2>(3000, 40.0, 17);
  parallel::set_num_workers(1);
  auto serial = dbscan::BuildBoxCells(pts, 1.1);
  parallel::set_num_workers(8);
  auto par = dbscan::BuildBoxCells(pts, 1.1);
  EXPECT_EQ(serial.offsets, par.offsets);
  EXPECT_EQ(serial.orig_index, par.orig_index);
  EXPECT_EQ(serial.nbrs, par.nbrs);
}

}  // namespace
}  // namespace pdbscan
