// The baseline algorithms must agree with the brute-force reference — they
// double as independent oracles for the main implementation.
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/hpdbscan.h"
#include "baselines/pointwise.h"
#include "baselines/rpdbscan.h"
#include "dbscan/verify.h"
#include "parallel/scheduler.h"
#include "pdbscan/pdbscan.h"

namespace pdbscan {
namespace {

using dbscan::BruteForceDbscan;
using dbscan::SameClustering;
using geometry::Point;

template <int D>
std::vector<Point<D>> BlobPoints(size_t n, size_t blobs, double side,
                                 double sigma, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coord(0.0, side);
  std::normal_distribution<double> gauss(0.0, sigma);
  std::vector<Point<D>> centers(blobs);
  for (auto& c : centers) {
    for (int k = 0; k < D; ++k) c[k] = coord(rng);
  }
  std::vector<Point<D>> pts(n);
  for (size_t i = 0; i < n; ++i) {
    if (i % 10 == 9) {
      for (int k = 0; k < D; ++k) pts[i][k] = coord(rng);
    } else {
      const auto& c = centers[i % blobs];
      for (int k = 0; k < D; ++k) pts[i][k] = c[k] + gauss(rng);
    }
  }
  return pts;
}

struct BaselineParams {
  size_t n;
  double epsilon;
  size_t min_pts;
  uint64_t seed;
};

class BaselineTest : public ::testing::TestWithParam<BaselineParams> {};

TEST_P(BaselineTest, OriginalDbscanMatchesBruteForce2d) {
  const auto p = GetParam();
  auto pts = BlobPoints<2>(p.n, 4, 25.0, 1.0, p.seed);
  const auto expected = BruteForceDbscan<2>(pts, p.epsilon, p.min_pts);
  const auto got = baselines::OriginalDbscan<2>(pts, p.epsilon, p.min_pts);
  EXPECT_TRUE(SameClustering(expected, got));
}

TEST_P(BaselineTest, PdsDbscanMatchesBruteForce2d) {
  const auto p = GetParam();
  auto pts = BlobPoints<2>(p.n, 4, 25.0, 1.0, p.seed);
  const auto expected = BruteForceDbscan<2>(pts, p.epsilon, p.min_pts);
  const auto got = baselines::PdsDbscan<2>(pts, p.epsilon, p.min_pts);
  EXPECT_TRUE(SameClustering(expected, got));
}

TEST_P(BaselineTest, HpDbscanMatchesBruteForce2d) {
  const auto p = GetParam();
  auto pts = BlobPoints<2>(p.n, 4, 25.0, 1.0, p.seed);
  const auto expected = BruteForceDbscan<2>(pts, p.epsilon, p.min_pts);
  const auto got = baselines::HpDbscan<2>(pts, p.epsilon, p.min_pts);
  EXPECT_TRUE(SameClustering(expected, got));
}

TEST_P(BaselineTest, RpDbscanMatchesBruteForce2d) {
  const auto p = GetParam();
  auto pts = BlobPoints<2>(p.n, 4, 25.0, 1.0, p.seed);
  const auto expected = BruteForceDbscan<2>(pts, p.epsilon, p.min_pts);
  const auto got = baselines::RpDbscan<2>(pts, p.epsilon, p.min_pts);
  EXPECT_TRUE(SameClustering(expected, got));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BaselineTest,
    ::testing::Values(BaselineParams{200, 1.0, 4, 1},
                      BaselineParams{400, 1.5, 6, 2},
                      BaselineParams{600, 2.5, 10, 3},
                      BaselineParams{300, 0.5, 2, 4}));

TEST(Baselines, AgreeInThreeAndFiveDimensions) {
  {
    auto pts = BlobPoints<3>(400, 3, 15.0, 1.0, 11);
    const auto expected = BruteForceDbscan<3>(pts, 1.5, 5);
    EXPECT_TRUE(SameClustering(expected, baselines::PdsDbscan<3>(pts, 1.5, 5)));
    EXPECT_TRUE(SameClustering(expected, baselines::HpDbscan<3>(pts, 1.5, 5)));
    EXPECT_TRUE(SameClustering(expected, baselines::RpDbscan<3>(pts, 1.5, 5)));
    EXPECT_TRUE(
        SameClustering(expected, baselines::OriginalDbscan<3>(pts, 1.5, 5)));
  }
  {
    auto pts = BlobPoints<5>(300, 3, 12.0, 1.0, 12);
    const auto expected = BruteForceDbscan<5>(pts, 2.5, 5);
    EXPECT_TRUE(SameClustering(expected, baselines::PdsDbscan<5>(pts, 2.5, 5)));
    EXPECT_TRUE(SameClustering(expected, baselines::HpDbscan<5>(pts, 2.5, 5)));
  }
}

TEST(Baselines, AgreeWithMainImplementationAtScale) {
  // Cross-check two independent implementations on a larger input where
  // brute force would be slow: our pipeline vs the pointwise baseline.
  auto pts = BlobPoints<3>(20000, 8, 60.0, 1.0, 13);
  const auto ours = Dbscan<3>(pts, 1.2, 10, OurExact());
  const auto baseline = baselines::PdsDbscan<3>(pts, 1.2, 10);
  EXPECT_TRUE(SameClustering(ours, baseline));
  const auto ours_qt = Dbscan<3>(pts, 1.2, 10, OurExactQt());
  EXPECT_TRUE(SameClustering(ours_qt, baseline));
}

TEST(Baselines, RpDbscanPartitionCountDoesNotChangeResult) {
  auto pts = BlobPoints<2>(500, 4, 25.0, 1.0, 14);
  const auto p1 = baselines::RpDbscan<2>(pts, 1.5, 6, 1);
  const auto p4 = baselines::RpDbscan<2>(pts, 1.5, 6, 4);
  const auto p16 = baselines::RpDbscan<2>(pts, 1.5, 6, 16);
  EXPECT_TRUE(SameClustering(p1, p4));
  EXPECT_TRUE(SameClustering(p1, p16));
}

TEST(Baselines, EmptyInputs) {
  std::vector<Point<2>> pts;
  EXPECT_EQ(baselines::PdsDbscan<2>(pts, 1.0, 3).num_clusters, 0u);
  EXPECT_EQ(baselines::HpDbscan<2>(pts, 1.0, 3).num_clusters, 0u);
  EXPECT_EQ(baselines::RpDbscan<2>(pts, 1.0, 3).num_clusters, 0u);
  EXPECT_EQ(baselines::OriginalDbscan<2>(pts, 1.0, 3).num_clusters, 0u);
}

}  // namespace
}  // namespace pdbscan
