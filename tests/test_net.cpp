// Tests for the distributed serving layer (src/net/): frame codec round
// trips, protocol fuzzing against the decoder and against a live TCP
// server (truncated / oversized / garbage-magic / bit-flipped frames plus
// a randomized mutation loop), writer→replica snapshot-shipping
// convergence, the stale-generation window, and — in the *MultiProcess*
// cases (ctest label slow-net, separate entry) — kill -9 fault injection
// against real pdbscan_server child processes.
//
// The invariant every serving test enforces is the cross-replica identity
// contract: labels for the same (generation, eps, min_pts) are
// bit-identical no matter which node (or process) answered.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <random>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "pdbscan/pdbscan.h"
#include "testing_util.h"
#include "util/subprocess.h"

namespace pdbscan {
namespace {

namespace fs = std::filesystem;
using geometry::Point;
using pdbscan::testing::BlobPoints;

constexpr double kEps = 2.0;
constexpr size_t kCountsCap = 50;

class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_(fs::temp_directory_path() /
              ("pdbscan_net_" + tag + "_" + std::to_string(::getpid()))) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  std::string str() const { return path_.string(); }
  std::string File(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  fs::path path_;
};

// The response carries labels + core flags (not memberships) — compare
// what traveled.
void ExpectResponseMatches(const net::QueryResponse& resp,
                           const Clustering& expected,
                           const std::string& tag) {
  EXPECT_EQ(resp.num_clusters, expected.num_clusters) << tag;
  EXPECT_EQ(resp.cluster, expected.cluster) << tag;
  EXPECT_EQ(resp.is_core, expected.is_core) << tag;
}

std::vector<Point<2>> Batch(uint64_t seed, size_t n = 60) {
  return BlobPoints<2>(n, /*blobs=*/3, /*side=*/30.0, /*sigma=*/1.0, seed);
}

// --- Frame codec ------------------------------------------------------------

TEST(FrameCodec, QueryRoundTrip) {
  net::QueryRequest req;
  req.min_pts = 17;
  const auto frame = net::EncodeFrame(net::MessageType::kQueryRequest, 99,
                                      net::EncodeQueryRequest(req));
  net::FrameDecoder dec;
  dec.Feed(frame);
  const auto got = dec.Next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->type, net::MessageType::kQueryRequest);
  EXPECT_EQ(got->request_id, 99u);
  net::QueryRequest back;
  ASSERT_TRUE(net::DecodeQueryRequest(got->payload, &back));
  EXPECT_EQ(back.min_pts, 17u);
  EXPECT_FALSE(dec.Next().has_value());
  EXPECT_EQ(dec.error(), net::ErrorCode::kNone);
}

TEST(FrameCodec, QueryResponseRoundTrip) {
  net::QueryResponse resp;
  resp.generation = 7;
  resp.num_points = 4;
  resp.num_clusters = 2;
  resp.cluster = {0, 1, -1, 0};
  resp.is_core = {1, 1, 0, 0};
  net::QueryResponse back;
  ASSERT_TRUE(net::DecodeQueryResponse(net::EncodeQueryResponse(resp), &back));
  EXPECT_EQ(back.generation, 7u);
  EXPECT_EQ(back.cluster, resp.cluster);
  EXPECT_EQ(back.is_core, resp.is_core);
  EXPECT_EQ(back.num_clusters, 2u);
}

TEST(FrameCodec, UpdateRoundTrip) {
  net::UpdateRequest<3> req;
  req.inserts.resize(2);
  req.inserts[0].x = {1.0, 2.0, 3.0};
  req.inserts[1].x = {-4.5, 0.0, 9.25};
  req.erases = {11, 42};
  net::UpdateRequest<3> back;
  ASSERT_TRUE(
      net::DecodeUpdateRequest<3>(net::EncodeUpdateRequest<3>(req), &back));
  EXPECT_EQ(back.inserts.size(), 2u);
  EXPECT_EQ(back.inserts[1].x, req.inserts[1].x);
  EXPECT_EQ(back.erases, req.erases);
  // A 2D decoder must refuse the 3D payload (dim is part of the wire
  // format), not misread it.
  net::UpdateRequest<2> wrong;
  EXPECT_FALSE(
      net::DecodeUpdateRequest<2>(net::EncodeUpdateRequest<3>(req), &wrong));
}

TEST(FrameCodec, IncrementalByteAtATimeFeed) {
  net::QueryRequest req;
  req.min_pts = 5;
  const auto frame = net::EncodeFrame(net::MessageType::kQueryRequest, 3,
                                      net::EncodeQueryRequest(req));
  net::FrameDecoder dec;
  for (size_t i = 0; i + 1 < frame.size(); ++i) {
    dec.Feed(std::span<const uint8_t>(&frame[i], 1));
    ASSERT_FALSE(dec.Next().has_value()) << "frame complete early at " << i;
    ASSERT_EQ(dec.error(), net::ErrorCode::kNone);
  }
  dec.Feed(std::span<const uint8_t>(&frame.back(), 1));
  ASSERT_TRUE(dec.Next().has_value());
}

TEST(FrameCodec, TwoFramesInOneFeed) {
  net::QueryRequest req;
  req.min_pts = 5;
  auto bytes = net::EncodeFrame(net::MessageType::kQueryRequest, 1,
                                net::EncodeQueryRequest(req));
  const auto second = net::EncodeFrame(net::MessageType::kInfoRequest, 2, {});
  bytes.insert(bytes.end(), second.begin(), second.end());
  net::FrameDecoder dec;
  dec.Feed(bytes);
  const auto a = dec.Next();
  const auto b = dec.Next();
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->request_id, 1u);
  EXPECT_EQ(b->request_id, 2u);
  EXPECT_EQ(b->type, net::MessageType::kInfoRequest);
}

// --- Decoder fuzz -----------------------------------------------------------

TEST(DecoderFuzz, GarbageMagicPoisons) {
  std::vector<uint8_t> junk(64, 0xAB);
  net::FrameDecoder dec;
  dec.Feed(junk);
  EXPECT_FALSE(dec.Next().has_value());
  EXPECT_EQ(dec.error(), net::ErrorCode::kBadMagic);
  // Poisoned: further feeds are refused.
  net::QueryRequest req;
  req.min_pts = 5;
  dec.Feed(net::EncodeFrame(net::MessageType::kQueryRequest, 1,
                            net::EncodeQueryRequest(req)));
  EXPECT_FALSE(dec.Next().has_value());
}

TEST(DecoderFuzz, OversizedLengthRejectedBeforeAllocation) {
  net::FrameHeader h;
  h.type = static_cast<uint8_t>(net::MessageType::kQueryRequest);
  h.request_id = 4;
  h.payload_bytes = ~0ull;  // A hostile length prefix.
  std::vector<uint8_t> bytes(sizeof(h));
  std::memcpy(bytes.data(), &h, sizeof(h));
  net::FrameDecoder dec;
  dec.Feed(bytes);
  EXPECT_FALSE(dec.Next().has_value());
  EXPECT_EQ(dec.error(), net::ErrorCode::kOversized);
  EXPECT_EQ(dec.error_request_id(), 4u);
}

TEST(DecoderFuzz, TruncatedFrameNeedsMoreWithoutError) {
  net::QueryRequest req;
  req.min_pts = 5;
  const auto frame = net::EncodeFrame(net::MessageType::kQueryRequest, 1,
                                      net::EncodeQueryRequest(req));
  net::FrameDecoder dec;
  dec.Feed(std::span<const uint8_t>(frame.data(), frame.size() - 3));
  EXPECT_FALSE(dec.Next().has_value());
  EXPECT_EQ(dec.error(), net::ErrorCode::kNone);
  EXPECT_GT(dec.buffered_bytes(), 0u);
}

TEST(DecoderFuzz, EverySingleBitFlipIsRejected) {
  net::QueryRequest req;
  req.min_pts = 10;
  const auto frame = net::EncodeFrame(net::MessageType::kQueryRequest, 12345,
                                      net::EncodeQueryRequest(req));
  for (size_t byte = 0; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto mutated = frame;
      mutated[byte] ^= static_cast<uint8_t>(1 << bit);
      net::FrameDecoder dec;
      dec.Feed(mutated);
      const auto got = dec.Next();
      // Either an immediate framing error, or the decoder is still
      // waiting for bytes a corrupted length promised — never a valid
      // frame.
      EXPECT_FALSE(got.has_value())
          << "bit flip at byte " << byte << " bit " << bit
          << " produced a valid frame";
    }
  }
}

// Counts whose product wraps mod 2^64 must be rejected by the size
// checks, not survive into a resize() that throws (and used to take the
// whole server down — the catch in ServeConnection only expected
// NetError at the time).
TEST(DecoderFuzz, UpdateCountOverflowRejectedWithoutAllocation) {
  std::vector<uint8_t> payload(4 + 8 + 8, 0);
  const uint32_t dim = 2;
  // 2^60 inserts * 2 dims * 8 bytes == 2^64 == 0 mod 2^64: the naive
  // exact-size check sees remaining() == 0 and passes.
  uint64_t num_inserts = 1ull << 60;
  uint64_t num_erases = 0;
  std::memcpy(payload.data(), &dim, 4);
  std::memcpy(payload.data() + 4, &num_inserts, 8);
  std::memcpy(payload.data() + 12, &num_erases, 8);
  net::UpdateRequest<2> out;
  EXPECT_FALSE(net::DecodeUpdateRequest<2>(payload, &out));
  // Same trick through the erase count: 2^61 * 8 == 0 mod 2^64.
  num_inserts = 0;
  num_erases = 1ull << 61;
  std::memcpy(payload.data() + 4, &num_inserts, 8);
  std::memcpy(payload.data() + 12, &num_erases, 8);
  EXPECT_FALSE(net::DecodeUpdateRequest<2>(payload, &out));
}

TEST(DecoderFuzz, QueryResponseCountOverflowRejectedWithoutAllocation) {
  // The per-point stride is 9 (int64 label + core byte). 9 is invertible
  // mod 2^64, so for ONE trailing byte there is exactly one num_points
  // whose product wraps to 1: 9^-1 mod 2^64. The naive exact-size check
  // accepts it; the client must reject before resizing.
  std::vector<uint8_t> payload(8 * 3 + 1, 0);
  const uint64_t generation = 1, num_clusters = 0;
  const uint64_t num_points = 0x8e38e38e38e38e39ull;  // 9^-1 mod 2^64.
  std::memcpy(payload.data(), &generation, 8);
  std::memcpy(payload.data() + 8, &num_points, 8);
  std::memcpy(payload.data() + 16, &num_clusters, 8);
  net::QueryResponse out;
  EXPECT_FALSE(net::DecodeQueryResponse(payload, &out));
}

TEST(DecoderFuzz, RandomMutationLoopNeverYieldsAFrame) {
  std::mt19937_64 rng(7);
  net::QueryRequest req;
  for (int round = 0; round < 500; ++round) {
    req.min_pts = 1 + rng() % 100;
    auto frame = net::EncodeFrame(net::MessageType::kQueryRequest, rng(),
                                  net::EncodeQueryRequest(req));
    // One of: flip a random bit, truncate, or splice random garbage.
    switch (rng() % 3) {
      case 0:
        frame[rng() % frame.size()] ^= static_cast<uint8_t>(1 + rng() % 255);
        break;
      case 1:
        frame.resize(rng() % frame.size());
        break;
      case 2: {
        const size_t at = rng() % frame.size();
        frame.insert(frame.begin() + static_cast<ptrdiff_t>(at),
                     static_cast<uint8_t>(rng()));
        break;
      }
    }
    net::FrameDecoder dec;
    dec.Feed(frame);
    size_t decoded = 0;
    while (dec.Next().has_value()) ++decoded;
    EXPECT_EQ(decoded, 0u) << "mutated frame decoded on round " << round;
  }
}

// --- In-process server + client over real TCP -------------------------------

// One writer node serving over TCP; tears down in the documented order.
class NetServingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>("serving");
    net::WriterOptions wopts;
    wopts.rotate_bytes = 4096;
    wopts.checkpoint_every = 0;  // Manual.
    writer_ = std::make_unique<net::WriterNode<2>>(dir_->str(), kEps,
                                                   kCountsCap, Options(),
                                                   wopts);
    scheduler_ = std::make_unique<parallel::ServingScheduler<2>>(
        writer_->pool(), parallel::ServingOptions());
    server_ = std::make_unique<net::NetServer<2>>(
        *scheduler_, writer_->pool(), kEps, kCountsCap, net::ServerOptions(),
        [this](std::span<const Point<2>> ins, std::span<const uint64_t> er) {
          net::UpdateResponse resp;
          resp.first_id = writer_->ApplyUpdates(ins, er);
          resp.generation = writer_->generation();
          return resp;
        });
    server_->Start();
  }

  void TearDown() override {
    scheduler_->Shutdown();
    server_->Stop();
  }

  std::unique_ptr<TempDir> dir_;
  std::unique_ptr<net::WriterNode<2>> writer_;
  std::unique_ptr<parallel::ServingScheduler<2>> scheduler_;
  std::unique_ptr<net::NetServer<2>> server_;
};

TEST_F(NetServingTest, QueryMatchesLocalRunBitIdentically) {
  writer_->ApplyUpdates(Batch(1), {});
  writer_->ApplyUpdates(Batch(2), {});
  net::Client client(server_->port());
  for (const size_t min_pts : {2u, 4u, 8u}) {
    const net::QueryResponse resp = client.Query(min_pts);
    EXPECT_EQ(resp.generation, writer_->generation());
    ExpectResponseMatches(resp, writer_->pool().Run(min_pts),
                          "min_pts=" + std::to_string(min_pts));
  }
}

TEST_F(NetServingTest, InfoReportsNodeState) {
  writer_->ApplyUpdates(Batch(3), {});
  net::Client client(server_->port());
  const net::InfoResponse info = client.Info();
  EXPECT_EQ(info.generation, writer_->generation());
  EXPECT_EQ(info.num_points, 60u);
  EXPECT_EQ(info.epsilon, kEps);
  EXPECT_EQ(info.counts_cap, kCountsCap);
  EXPECT_EQ(info.dim, 2u);
  EXPECT_EQ(info.is_writer, 1);
}

TEST_F(NetServingTest, UpdateOverTheWireAdvancesGeneration) {
  net::Client client(server_->port());
  net::UpdateRequest<2> req;
  req.inserts = Batch(4);
  const net::UpdateResponse up = client.Update<2>(req);
  EXPECT_EQ(up.generation, 2u);
  EXPECT_EQ(up.first_id, 0u);
  const net::QueryResponse resp = client.Query(3);
  EXPECT_EQ(resp.generation, 2u);
  EXPECT_EQ(resp.num_points, req.inserts.size());
  ExpectResponseMatches(resp, writer_->pool().Run(3), "after wire update");
}

TEST_F(NetServingTest, PipelinedRequestsAnswerInOrder) {
  writer_->ApplyUpdates(Batch(5), {});
  net::Client client(server_->port());
  std::vector<uint64_t> ids;
  for (const size_t m : {2u, 3u, 4u, 5u, 6u}) ids.push_back(client.SendQuery(m));
  for (const uint64_t id : ids) {
    const net::ClientResponse resp = client.Receive();
    ASSERT_EQ(resp.type, net::MessageType::kQueryResponse);
    EXPECT_EQ(resp.request_id, id);
  }
}

TEST_F(NetServingTest, ConcurrentClientsAllBitIdentical) {
  writer_->ApplyUpdates(Batch(6, 120), {});
  const Clustering expected = writer_->pool().Run(4);
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int c = 0; c < 4; ++c) {
    threads.emplace_back([&]() {
      net::Client client(server_->port());
      for (int q = 0; q < 8; ++q) {
        const net::QueryResponse resp = client.Query(4);
        if (resp.cluster != expected.cluster ||
            resp.is_core != expected.is_core) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// --- Server-level protocol fuzz ---------------------------------------------

using ServerFuzzTest = NetServingTest;

TEST_F(ServerFuzzTest, GarbageMagicAnsweredAndClosed) {
  writer_->ApplyUpdates(Batch(7), {});
  {
    net::Client client(server_->port());
    std::vector<uint8_t> junk(128);
    std::mt19937_64 rng(11);
    for (auto& b : junk) b = static_cast<uint8_t>(rng());
    junk[0] = 0x00;  // Guarantee the magic is wrong.
    client.SendRaw(junk);
    client.ShutdownWrite();
    const net::ClientResponse resp = client.Receive();
    ASSERT_EQ(resp.type, net::MessageType::kErrorResponse);
    EXPECT_TRUE(net::IsFramingError(resp.error.code));
    EXPECT_THROW(client.Receive(), net::NetError);  // Connection closed.
  }
  // The server keeps serving fresh connections.
  net::Client client(server_->port());
  EXPECT_EQ(client.Query(4).generation, writer_->generation());
}

TEST_F(ServerFuzzTest, BitFlippedFrameAnsweredAndClosed) {
  writer_->ApplyUpdates(Batch(8), {});
  {
    net::Client client(server_->port());
    net::QueryRequest req;
    req.min_pts = 4;
    auto frame = net::EncodeFrame(net::MessageType::kQueryRequest, 9,
                                  net::EncodeQueryRequest(req));
    frame[sizeof(net::FrameHeader)] ^= 0x10;  // Payload bit; checksum catches.
    client.SendRaw(frame);
    client.ShutdownWrite();
    const net::ClientResponse resp = client.Receive();
    ASSERT_EQ(resp.type, net::MessageType::kErrorResponse);
    EXPECT_EQ(resp.error.code, net::ErrorCode::kBadChecksum);
    EXPECT_THROW(client.Receive(), net::NetError);
  }
  net::Client client(server_->port());
  EXPECT_EQ(client.Query(4).generation, writer_->generation());
}

TEST_F(ServerFuzzTest, TruncatedFrameAnsweredAtEof) {
  writer_->ApplyUpdates(Batch(9), {});
  {
    net::Client client(server_->port());
    net::QueryRequest req;
    req.min_pts = 4;
    const auto frame = net::EncodeFrame(net::MessageType::kQueryRequest, 5,
                                        net::EncodeQueryRequest(req));
    client.SendRaw(std::span<const uint8_t>(frame.data(), frame.size() - 4));
    client.ShutdownWrite();  // "That was all" — server must answer the cut.
    const net::ClientResponse resp = client.Receive();
    ASSERT_EQ(resp.type, net::MessageType::kErrorResponse);
    EXPECT_EQ(resp.error.code, net::ErrorCode::kTruncated);
  }
  net::Client client(server_->port());
  EXPECT_EQ(client.Query(4).generation, writer_->generation());
}

TEST_F(ServerFuzzTest, OversizedFrameAnsweredAndClosed) {
  writer_->ApplyUpdates(Batch(10), {});
  {
    net::Client client(server_->port());
    net::FrameHeader h;
    h.type = static_cast<uint8_t>(net::MessageType::kQueryRequest);
    h.request_id = 77;
    h.payload_bytes = (512ull << 20);  // Past the server's cap.
    std::vector<uint8_t> bytes(sizeof(h));
    std::memcpy(bytes.data(), &h, sizeof(h));
    client.SendRaw(bytes);
    client.ShutdownWrite();
    const net::ClientResponse resp = client.Receive();
    ASSERT_EQ(resp.type, net::MessageType::kErrorResponse);
    EXPECT_EQ(resp.error.code, net::ErrorCode::kOversized);
    EXPECT_EQ(resp.request_id, 77u);  // Echoed from the bad frame.
  }
  net::Client client(server_->port());
  EXPECT_EQ(client.Query(4).generation, writer_->generation());
}

TEST_F(ServerFuzzTest, SemanticErrorsKeepTheConnection) {
  writer_->ApplyUpdates(Batch(11), {});
  net::Client client(server_->port());
  // Unknown message type: intact framing, unknown type byte.
  client.SendRaw(net::EncodeFrame(static_cast<net::MessageType>(200), 1, {}));
  net::ClientResponse resp = client.Receive();
  ASSERT_EQ(resp.type, net::MessageType::kErrorResponse);
  EXPECT_EQ(resp.error.code, net::ErrorCode::kUnknownType);
  // Malformed payload: a query with a short payload.
  const std::vector<uint8_t> short_payload = {1, 2, 3};
  client.SendRaw(net::EncodeFrame(net::MessageType::kQueryRequest, 2,
                                  short_payload));
  resp = client.Receive();
  ASSERT_EQ(resp.type, net::MessageType::kErrorResponse);
  EXPECT_EQ(resp.error.code, net::ErrorCode::kBadPayload);
  // min_pts = 0 is semantically invalid.
  net::QueryRequest zero;
  zero.min_pts = 0;
  client.SendRaw(net::EncodeFrame(net::MessageType::kQueryRequest, 3,
                                  net::EncodeQueryRequest(zero)));
  resp = client.Receive();
  ASSERT_EQ(resp.type, net::MessageType::kErrorResponse);
  EXPECT_EQ(resp.error.code, net::ErrorCode::kBadPayload);
  // SAME connection still serves valid requests — that is the contract.
  const net::QueryResponse ok = client.Query(4);
  EXPECT_EQ(ok.generation, writer_->generation());
  ExpectResponseMatches(ok, writer_->pool().Run(4), "after semantic errors");
}

TEST_F(ServerFuzzTest, OverflowingUpdateCountsAnsweredAsBadPayload) {
  writer_->ApplyUpdates(Batch(13), {});
  net::Client client(server_->port());
  // A checksum-valid frame whose update payload claims 2^60 inserts (the
  // byte count wraps mod 2^64 to match the 0 bytes present). The server
  // must answer kBadPayload on a live connection — this exact frame used
  // to throw out of resize() and kill the process.
  std::vector<uint8_t> payload(4 + 8 + 8, 0);
  const uint32_t dim = 2;
  const uint64_t num_inserts = 1ull << 60;
  std::memcpy(payload.data(), &dim, 4);
  std::memcpy(payload.data() + 4, &num_inserts, 8);
  client.SendRaw(net::EncodeFrame(net::MessageType::kUpdateRequest, 6,
                                  payload));
  const net::ClientResponse resp = client.Receive();
  ASSERT_EQ(resp.type, net::MessageType::kErrorResponse);
  EXPECT_EQ(resp.error.code, net::ErrorCode::kBadPayload);
  // Semantic error: the SAME connection keeps serving.
  const net::QueryResponse ok = client.Query(4);
  EXPECT_EQ(ok.generation, writer_->generation());
}

// An update handler that throws (e.g. persist IO failure mid-checkpoint)
// must cost only that connection, never the process.
TEST(NetServerInternalError, ThrowingHandlerAnsweredAndServerSurvives) {
  TempDir dir("internal");
  net::WriterOptions wopts;
  wopts.checkpoint_every = 0;
  net::WriterNode<2> writer(dir.str(), kEps, kCountsCap, Options(), wopts);
  writer.ApplyUpdates(Batch(14), {});
  parallel::ServingScheduler<2> scheduler(writer.pool(),
                                          parallel::ServingOptions());
  net::NetServer<2> server(
      scheduler, writer.pool(), kEps, kCountsCap, net::ServerOptions(),
      [](std::span<const Point<2>>,
         std::span<const uint64_t>) -> net::UpdateResponse {
        throw std::runtime_error("journal disk failure");
      });
  server.Start();
  {
    net::Client client(server.port());
    net::UpdateRequest<2> req;
    req.inserts = Batch(15);
    const uint64_t id = client.SendUpdate<2>(req);
    const net::ClientResponse resp = client.Receive();
    ASSERT_EQ(resp.type, net::MessageType::kErrorResponse);
    EXPECT_EQ(resp.request_id, id);
    EXPECT_EQ(resp.error.code, net::ErrorCode::kInternal);
    EXPECT_THROW(client.Receive(), net::NetError);  // Connection closed.
  }
  // Fresh connections still serve queries.
  net::Client probe(server.port());
  EXPECT_EQ(probe.Query(4).generation, writer.generation());
  scheduler.Shutdown();
  server.Stop();
}

TEST_F(ServerFuzzTest, RandomMutationLoopServerStaysHealthy) {
  writer_->ApplyUpdates(Batch(12), {});
  const Clustering expected = writer_->pool().Run(4);
  std::mt19937_64 rng(23);
  for (int round = 0; round < 40; ++round) {
    net::Client fuzz(server_->port());
    net::QueryRequest req;
    req.min_pts = 4;
    auto frame = net::EncodeFrame(net::MessageType::kQueryRequest, rng(),
                                  net::EncodeQueryRequest(req));
    switch (rng() % 3) {
      case 0:
        frame[rng() % frame.size()] ^= static_cast<uint8_t>(1 + rng() % 255);
        break;
      case 1:
        frame.resize(rng() % frame.size());
        break;
      case 2:
        for (auto& b : frame) b = static_cast<uint8_t>(rng());
        break;
    }
    try {
      fuzz.SendRaw(frame);
      fuzz.ShutdownWrite();
      // Drain whatever the server answers until it closes; it must never
      // send a successful QueryResponse for a mutated frame unless the
      // mutation happened to leave the frame checksum-valid (flipping and
      // unflipping is impossible with a single mutation here).
      for (;;) {
        const net::ClientResponse resp = fuzz.Receive();
        if (resp.type == net::MessageType::kQueryResponse) {
          ExpectResponseMatches(resp.query, expected,
                                "mutated-but-valid frame");
        }
      }
    } catch (const net::NetError&) {
      // Connection over — expected for framing violations and EOF.
    }
    // Health probe every few rounds: valid queries still serve.
    if (round % 8 == 0) {
      net::Client probe(server_->port());
      const net::QueryResponse resp = probe.Query(4);
      ExpectResponseMatches(resp, expected, "health probe");
    }
  }
  net::Client probe(server_->port());
  ExpectResponseMatches(probe.Query(4), expected, "final health probe");
}

// --- Replication: writer → replica convergence ------------------------------

void PumpUntilCaughtUp(net::ReplicaNode<2>& replica, uint64_t writer_seq) {
  for (int spins = 0; replica.applied_seq() < writer_seq && spins < 10000;
       ++spins) {
    replica.TailOnce();
  }
  ASSERT_EQ(replica.applied_seq(), writer_seq);
}

TEST(Replication, ReplicaConvergesBitIdentically) {
  TempDir dir("converge");
  net::WriterOptions wopts;
  wopts.rotate_bytes = 2048;  // Several rotations over the run.
  wopts.checkpoint_every = 3;
  net::WriterNode<2> writer(dir.str(), kEps, kCountsCap, Options(), wopts);
  std::vector<uint64_t> live;
  std::mt19937_64 rng(31);
  for (int b = 0; b < 8; ++b) {
    const auto ins = Batch(100 + b);
    std::vector<uint64_t> del;
    if (!live.empty()) del.push_back(live[rng() % live.size()]);
    for (const uint64_t d : del) {
      live.erase(std::find(live.begin(), live.end(), d));
    }
    const uint64_t first = writer.ApplyUpdates(ins, del);
    for (size_t i = 0; i < ins.size(); ++i) live.push_back(first + i);
  }

  net::ReplicaNode<2> replica(dir.str(), kEps, kCountsCap);
  PumpUntilCaughtUp(replica, writer.seq());
  EXPECT_EQ(replica.generation(), writer.generation());
  for (const size_t min_pts : {2u, 4u, 8u, 16u}) {
    pdbscan::testing::ExpectIdentical(
        writer.pool().Run(min_pts), replica.pool().Run(min_pts),
        "replica vs writer, min_pts=" + std::to_string(min_pts));
  }
}

TEST(Replication, LateJoinColdStartsFromCheckpointNotFullLog) {
  TempDir dir("latejoin");
  net::WriterOptions wopts;
  wopts.rotate_bytes = 512;  // Guarantees a rotation after every batch.
  wopts.checkpoint_every = 4;
  wopts.keep_checkpoints = 1;
  net::WriterNode<2> writer(dir.str(), kEps, kCountsCap, Options(), wopts);
  for (int b = 0; b < 10; ++b) writer.ApplyUpdates(Batch(200 + b), {});
  // Segments before the last checkpoint (seq 8) were pruned: a late
  // replica must come up through the checkpoint, not the full history.
  const auto segments = persist::ListJournalSegments(dir.str());
  ASSERT_FALSE(segments.empty());
  EXPECT_GE(segments.front().start_seq, 8u);

  net::ReplicaNode<2> replica(dir.str(), kEps, kCountsCap);
  PumpUntilCaughtUp(replica, writer.seq());
  pdbscan::testing::ExpectIdentical(writer.pool().Run(4),
                                    replica.pool().Run(4), "late join");
}

TEST(Replication, WriterRecoversItsOwnStateAfterRestart) {
  TempDir dir("wrecover");
  std::vector<Clustering> before;
  uint64_t seq_before = 0;
  {
    net::WriterOptions wopts;
    wopts.rotate_bytes = 1024;
    wopts.checkpoint_every = 3;
    net::WriterNode<2> writer(dir.str(), kEps, kCountsCap, Options(), wopts);
    for (int b = 0; b < 7; ++b) writer.ApplyUpdates(Batch(300 + b), {});
    seq_before = writer.seq();
    before.push_back(writer.pool().Run(4));
    before.push_back(writer.pool().Run(9));
  }
  net::WriterNode<2> writer(dir.str(), kEps, kCountsCap);
  EXPECT_EQ(writer.seq(), seq_before);
  pdbscan::testing::ExpectIdentical(before[0], writer.pool().Run(4),
                                    "writer restart minpts=4");
  pdbscan::testing::ExpectIdentical(before[1], writer.pool().Run(9),
                                    "writer restart minpts=9");
  // And it keeps accepting updates on the recovered log.
  writer.ApplyUpdates(Batch(399), {});
  EXPECT_EQ(writer.seq(), seq_before + 1);
}

TEST(Replication, StaleGenerationWindowForcesReColdStart) {
  TempDir dir("stale");
  net::WriterOptions wopts;
  wopts.rotate_bytes = 256;  // Rotate every batch.
  wopts.checkpoint_every = 0;
  wopts.keep_checkpoints = 1;
  net::WriterNode<2> writer(dir.str(), kEps, kCountsCap, Options(), wopts);
  for (int b = 0; b < 4; ++b) writer.ApplyUpdates(Batch(400 + b), {});
  writer.Checkpoint();  // checkpoint-4; earlier segments pruned.

  // The hook runs INSIDE the replica's cold start, after it committed to
  // checkpoint-4 but before it lists segments: the writer advances and
  // re-checkpoints in that window, pruning the records the replica was
  // about to tail.
  int fires = 0;
  net::ReplicaOptions ropts;
  ropts.on_cold_start_loaded = [&](uint64_t seq) {
    if (fires++ != 0) return;
    EXPECT_EQ(seq, 4u);
    for (int b = 0; b < 4; ++b) writer.ApplyUpdates(Batch(500 + b), {});
    writer.Checkpoint();  // checkpoint-8 replaces checkpoint-4, prunes.
  };
  net::ReplicaNode<2> replica(dir.str(), kEps, kCountsCap, Options(), ropts);
  PumpUntilCaughtUp(replica, writer.seq());
  EXPECT_GE(replica.gap_restarts(), 1u);
  EXPECT_EQ(replica.generation(), writer.generation());
  pdbscan::testing::ExpectIdentical(writer.pool().Run(4),
                                    replica.pool().Run(4),
                                    "after stale-generation restart");
}

TEST(Replication, BackgroundTailingConverges) {
  TempDir dir("bgtail");
  net::WriterOptions wopts;
  wopts.checkpoint_every = 5;
  net::WriterNode<2> writer(dir.str(), kEps, kCountsCap, Options(), wopts);
  writer.ApplyUpdates(Batch(600), {});

  net::ReplicaOptions ropts;
  ropts.poll_millis = 2;
  net::ReplicaNode<2> replica(dir.str(), kEps, kCountsCap, Options(), ropts);
  replica.StartTailing();
  for (int b = 1; b < 6; ++b) writer.ApplyUpdates(Batch(600 + b), {});
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (replica.applied_seq() < writer.seq() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  replica.StopTailing();
  ASSERT_EQ(replica.applied_seq(), writer.seq());
  pdbscan::testing::ExpectIdentical(writer.pool().Run(3),
                                    replica.pool().Run(3),
                                    "background tailing");
}

// --- Multi-process fault injection (ctest entry test_net_multiprocess, ------
// --- label slow-net) --------------------------------------------------------

std::string ServerBinary() {
  if (const char* env = std::getenv("PDBSCAN_SERVER_BIN")) return env;
#ifdef PDBSCAN_SERVER_BINARY
  return PDBSCAN_SERVER_BINARY;
#else
  return std::string();
#endif
}

util::ChildProcess SpawnServer(const std::string& mode, const TempDir& dir,
                               const std::string& port_file,
                               const std::string& extra_flag = "",
                               const std::string& extra_value = "") {
  std::vector<std::string> argv = {
      ServerBinary(), "--mode", mode, "--dir", dir.str(),
      "--dim", "2", "--eps", std::to_string(kEps),
      "--counts-cap", std::to_string(kCountsCap),
      "--port", "0", "--port-file", dir.File(port_file),
      "--poll-ms", "5", "--checkpoint-every", "4",
      "--rotate-bytes", "2048"};
  if (!extra_flag.empty()) {
    argv.push_back(extra_flag);
    argv.push_back(extra_value);
  }
  return util::SpawnProcess(argv);
}

class MultiProcessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (ServerBinary().empty()) {
      GTEST_SKIP() << "pdbscan_server binary not configured";
    }
  }
};

TEST_F(MultiProcessTest, CleanProtocolShutdown) {
  TempDir dir("mp_shutdown");
  util::ChildProcess server = SpawnServer("writer", dir, "port");
  const uint16_t port = util::ReadPortFile(dir.File("port"));
  {
    net::Client client(port);
    client.Shutdown();
  }
  const int status = server.Wait();
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST_F(MultiProcessTest, KillReplicaMidTailRestartReconverges) {
  TempDir dir("mp_kill");
  util::ChildProcess writer = SpawnServer("writer", dir, "wport");
  const uint16_t wport = util::ReadPortFile(dir.File("wport"));

  // The local mirror applies the SAME batches — the independent reference
  // the acceptance criterion demands (fresh local run at the reported
  // generation).
  StreamingClusterer<2> mirror(kEps, kCountsCap);
  net::Client wclient(wport);
  auto apply = [&](uint64_t seed) {
    net::UpdateRequest<2> req;
    req.inserts = Batch(seed);
    const net::UpdateResponse resp = wclient.Update<2>(req);
    const uint64_t first = mirror.ApplyUpdates(
        std::span<const Point<2>>(req.inserts), {});
    ASSERT_EQ(resp.first_id, first);
    ASSERT_EQ(resp.generation, mirror.generation());
  };
  for (uint64_t s = 700; s < 703; ++s) apply(s);

  util::ChildProcess replica = SpawnServer("replica", dir, "rport");
  const uint16_t rport = util::ReadPortFile(dir.File("rport"));

  // More batches while the replica tails, then kill -9 mid-tail.
  for (uint64_t s = 703; s < 705; ++s) apply(s);
  replica.KillAndWait(SIGKILL);

  // The writer advances past the kill; crosses a checkpoint boundary.
  for (uint64_t s = 705; s < 709; ++s) apply(s);

  // Restart from the same shared directory; it must reconverge to the
  // writer's generation.
  util::ChildProcess replica2 = SpawnServer("replica", dir, "rport2");
  const uint16_t rport2 = util::ReadPortFile(dir.File("rport2"));
  net::Client rclient(rport2);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (rclient.Info().generation < mirror.generation()) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "restarted replica never reconverged";
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  // Bit-identical answers: restarted replica vs writer vs fresh local run.
  for (const size_t min_pts : {3u, 6u}) {
    const net::QueryResponse from_replica = rclient.Query(min_pts);
    const net::QueryResponse from_writer = wclient.Query(min_pts);
    ASSERT_EQ(from_replica.generation, mirror.generation());
    ASSERT_EQ(from_writer.generation, mirror.generation());
    const Clustering local = mirror.Run(min_pts);
    ExpectResponseMatches(from_replica, local, "replica vs local mirror");
    ExpectResponseMatches(from_writer, local, "writer vs local mirror");
  }

  net::Client(wport).Shutdown();
  const int status = writer.Wait();
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  // replica2 is reaped by its destructor (SIGKILL) — replicas hold no
  // state that needs a clean exit.
}

TEST_F(MultiProcessTest, KillAndRestartWriterContinuesTheLog) {
  TempDir dir("mp_wkill");
  StreamingClusterer<2> mirror(kEps, kCountsCap);
  uint64_t expect_first = 0;
  {
    util::ChildProcess writer = SpawnServer("writer", dir, "wport");
    const uint16_t wport = util::ReadPortFile(dir.File("wport"));
    net::Client wclient(wport);
    for (uint64_t s = 800; s < 805; ++s) {
      net::UpdateRequest<2> req;
      req.inserts = Batch(s);
      wclient.Update<2>(req);
      expect_first = mirror.ApplyUpdates(
          std::span<const Point<2>>(req.inserts), {}) + req.inserts.size();
    }
    writer.KillAndWait(SIGKILL);  // Power-loss-shaped writer death.
  }
  util::ChildProcess writer = SpawnServer("writer", dir, "wport2");
  const uint16_t wport = util::ReadPortFile(dir.File("wport2"));
  net::Client wclient(wport);
  const net::InfoResponse info = wclient.Info();
  EXPECT_EQ(info.generation, mirror.generation());
  net::UpdateRequest<2> req;
  req.inserts = Batch(805);
  const net::UpdateResponse up = wclient.Update<2>(req);
  EXPECT_EQ(up.first_id, expect_first);  // Id sequence continued, no reuse.
  mirror.ApplyUpdates(std::span<const Point<2>>(req.inserts), {});
  const net::QueryResponse resp = wclient.Query(4);
  ExpectResponseMatches(resp, mirror.Run(4), "writer restart over wire");
  net::Client(wport).Shutdown();
  writer.Wait();
}

}  // namespace
}  // namespace pdbscan
