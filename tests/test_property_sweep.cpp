// Randomized property sweep: for a wide range of generated configurations
// (data shape, n, epsilon, minPts, dimension), every exact variant must
// reproduce the brute-force clustering exactly, every approximate variant
// must satisfy the Gan–Tao definition, and the streaming surface must stay
// equivalent to from-scratch runs across randomized insert/erase batches.
// This is the broadest correctness net in the suite; each case is small
// enough for the O(n^2) oracle.
//
// PDBSCAN_SWEEP_BUDGET multiplies the case counts (default 1); the
// slow-sweep ctest label runs this binary at a larger budget.
#include <unistd.h>

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <filesystem>
#include <future>
#include <map>
#include <memory>
#include <random>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "dbscan/verify.h"
#include "kernels/kernel_api.h"
#include "pdbscan/pdbscan.h"
#include "testing_util.h"

namespace pdbscan {
namespace {

using dbscan::BruteForceDbscan;
using dbscan::IsValidApproxClustering;
using dbscan::SameClustering;
using geometry::Point;
using pdbscan::testing::GenerateShape;
using pdbscan::testing::MakeCases;
using pdbscan::testing::Shape;
using pdbscan::testing::SweepBudget;

class PropertySweep2d : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PropertySweep2d, AllExactVariantsMatchOracle) {
  for (const auto& c : MakeCases(GetParam(), 6 * SweepBudget())) {
    auto pts = GenerateShape<2>(c.shape, c.n, c.seed);
    const auto expected = BruteForceDbscan<2>(pts, c.epsilon, c.min_pts);
    const std::vector<Options> configs = {
        Our2dGridBcp(),          OurExactQt(),      Our2dGridUsec(),
        Our2dGridDelaunay(),     Our2dBoxBcp(),     Our2dBoxUsec(),
        Our2dBoxDelaunay(),      WithBucketing(Our2dGridBcp()),
        WithBucketing(Our2dBoxUsec())};
    for (const auto& options : configs) {
      const auto got = Dbscan<2>(pts, c.epsilon, c.min_pts, options);
      ASSERT_TRUE(SameClustering(expected, got))
          << options.Name() << " shape=" << static_cast<int>(c.shape)
          << " n=" << c.n << " eps=" << c.epsilon << " minpts=" << c.min_pts
          << " seed=" << c.seed << pdbscan::testing::SeedNote();
    }
  }
}

TEST_P(PropertySweep2d, ApproxVariantsSatisfyDefinition) {
  std::mt19937_64 rng(GetParam() * 77 + 1);
  for (const auto& c : MakeCases(GetParam() + 1000, 4 * SweepBudget())) {
    auto pts = GenerateShape<2>(c.shape, c.n, c.seed);
    const double rho_choices[] = {0.01, 0.1, 0.6};
    const double rho = rho_choices[rng() % 3];
    for (const auto& options : {OurApprox(rho), OurApproxQt(rho)}) {
      const auto got = Dbscan<2>(pts, c.epsilon, c.min_pts, options);
      ASSERT_TRUE(
          IsValidApproxClustering<2>(pts, c.epsilon, c.min_pts, rho, got))
          << options.Name() << " rho=" << rho << " n=" << c.n
          << " eps=" << c.epsilon << " seed=" << c.seed << pdbscan::testing::SeedNote();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySweep2d,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

class PropertySweep3d : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PropertySweep3d, ExactAndApproxAgainstOracle) {
  for (const auto& c : MakeCases(GetParam() + 5000, 4 * SweepBudget())) {
    auto pts = GenerateShape<3>(c.shape, c.n, c.seed);
    const auto expected = BruteForceDbscan<3>(pts, c.epsilon, c.min_pts);
    for (const auto& options :
         {OurExact(), OurExactQt(), WithBucketing(OurExactQt())}) {
      const auto got = Dbscan<3>(pts, c.epsilon, c.min_pts, options);
      ASSERT_TRUE(SameClustering(expected, got))
          << options.Name() << " n=" << c.n << " eps=" << c.epsilon
          << " seed=" << c.seed << pdbscan::testing::SeedNote();
    }
    const auto approx = Dbscan<3>(pts, c.epsilon, c.min_pts, OurApproxQt(0.05));
    ASSERT_TRUE(
        IsValidApproxClustering<3>(pts, c.epsilon, c.min_pts, 0.05, approx));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySweep3d,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

class PropertySweepHighDim : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PropertySweepHighDim, FiveAndSevenDimensions) {
  {
    auto c = MakeCases(GetParam() + 9000, 1)[0];
    auto pts = GenerateShape<5>(c.shape, std::min<size_t>(c.n, 250), c.seed);
    const auto expected = BruteForceDbscan<5>(pts, c.epsilon * 2, c.min_pts);
    for (const auto& options : {OurExact(), OurExactQt()}) {
      ASSERT_TRUE(SameClustering(
          expected, Dbscan<5>(pts, c.epsilon * 2, c.min_pts, options)))
          << options.Name() << " seed=" << c.seed << pdbscan::testing::SeedNote();
    }
  }
  {
    auto c = MakeCases(GetParam() + 11000, 1)[0];
    auto pts = GenerateShape<7>(c.shape, std::min<size_t>(c.n, 200), c.seed);
    const auto expected = BruteForceDbscan<7>(pts, c.epsilon * 3, c.min_pts);
    for (const auto& options : {OurExact(), OurExactQt()}) {
      ASSERT_TRUE(SameClustering(
          expected, Dbscan<7>(pts, c.epsilon * 3, c.min_pts, options)))
          << options.Name() << " seed=" << c.seed << pdbscan::testing::SeedNote();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySweepHighDim,
                         ::testing::Values(1, 2, 3, 4));

// --- Streaming: incremental maintenance vs. from-scratch rebuild ------------

// Applies `rounds` randomized insert/erase batches over every shape to a
// StreamingClusterer and, after each batch, checks the published snapshot
// against a from-scratch Dbscan on the mutated dataset (SameClustering) and
// — as final arbiter — the brute-force oracle.
template <int D>
void StreamingMatchesRebuild(Shape shape, double epsilon, size_t rounds,
                             uint64_t seed) {
  std::mt19937_64 rng(seed);
  StreamingClusterer<D> stream(epsilon, /*counts_cap=*/25);
  std::vector<uint64_t> live;
  for (size_t round = 0; round < rounds; ++round) {
    // Fresh points drawn from the shape family; erases of a random subset.
    const auto ins = GenerateShape<D>(shape, 30 + rng() % 60, rng());
    std::shuffle(live.begin(), live.end(), rng);
    const size_t erase_n = live.empty() ? 0 : rng() % (live.size() / 2 + 1);
    std::vector<uint64_t> del(live.begin(),
                              live.begin() + static_cast<ptrdiff_t>(erase_n));
    live.erase(live.begin(), live.begin() + static_cast<ptrdiff_t>(erase_n));
    const uint64_t first = stream.ApplyUpdates(ins, del);
    for (size_t i = 0; i < ins.size(); ++i) live.push_back(first + i);

    const auto pts = stream.LivePoints();
    ASSERT_EQ(pts.size(), live.size());
    const size_t min_pts = 1 + rng() % 12;
    const auto got = stream.Run(min_pts);
    const auto rebuilt = Dbscan<D>(pts, epsilon, min_pts);
    ASSERT_TRUE(SameClustering(rebuilt, got))
        << "streaming vs rebuild: shape=" << static_cast<int>(shape)
        << " D=" << D << " round=" << round << " n=" << pts.size()
        << " minpts=" << min_pts << " seed=" << seed << pdbscan::testing::SeedNote();
    const auto oracle = BruteForceDbscan<D>(
        std::span<const Point<D>>(pts), epsilon, min_pts);
    ASSERT_TRUE(SameClustering(oracle, got))
        << "streaming vs oracle: shape=" << static_cast<int>(shape)
        << " D=" << D << " round=" << round << " n=" << pts.size()
        << " minpts=" << min_pts << " seed=" << seed << pdbscan::testing::SeedNote();
  }
}

class StreamingPropertySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StreamingPropertySweep, BatchesMatchRebuildAllShapes2d) {
  for (const Shape shape : pdbscan::testing::kAllShapes) {
    StreamingMatchesRebuild<2>(shape, 1.1, 3 * SweepBudget(),
                               GetParam() * 131 + static_cast<int>(shape));
  }
}

TEST_P(StreamingPropertySweep, BatchesMatchRebuild3d) {
  for (const Shape shape :
       {Shape::kUniform, Shape::kBlobs, Shape::kGridish}) {
    StreamingMatchesRebuild<3>(shape, 2.0, 2 * SweepBudget(),
                               GetParam() * 733 + static_cast<int>(shape));
  }
}

TEST_P(StreamingPropertySweep, BatchesMatchRebuild5d) {
  StreamingMatchesRebuild<5>(Shape::kBlobs, 4.0, 2, GetParam() * 977);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamingPropertySweep,
                         ::testing::Values(1, 2, 3));

// --- Sharded builds: bit-identity with the single-index run -----------------

// For randomized (shape, n, epsilon, min_pts) cases and randomized shard
// counts, a sharded build must reproduce the one-shot Dbscan result bit for
// bit — full contract (labels, core flags, memberships) — at 1 worker and
// at the ambient worker count. Exact grid+kScan configurations only (the
// sharded path's scope; see sharding/sharded_cell_index.h).
template <int D>
void ShardedMatchesUnsharded(uint64_t base_seed, size_t cases,
                             double eps_scale) {
  std::mt19937_64 rng(base_seed * 389 + 17);
  for (const auto& c : MakeCases(base_seed + 21000, cases)) {
    auto pts = GenerateShape<D>(c.shape, c.n, c.seed);
    const double epsilon = c.epsilon * eps_scale;
    const auto expected = Dbscan<D>(pts, epsilon, c.min_pts);
    const size_t shards = 1 + rng() % 7;
    const size_t cap = 1 + rng() % 24;  // Sometimes below min_pts: recount.
    for (const int workers : {1, parallel::num_workers()}) {
      parallel::ScopedNumWorkers scoped(workers);
      sharding::ShardedCellIndex<D> sharded(
          std::span<const Point<D>>(pts), epsilon, cap, shards);
      dbscan::QueryContext<D> ctx;
      const auto got = ctx.Run(sharded.index(), c.min_pts);
      ASSERT_TRUE(pdbscan::testing::Identical(expected, got))
          << "sharded vs unsharded: D=" << D
          << " shape=" << static_cast<int>(c.shape) << " n=" << c.n
          << " eps=" << epsilon << " minpts=" << c.min_pts
          << " shards=" << shards << " cap=" << cap
          << " workers=" << workers << " seed=" << c.seed << pdbscan::testing::SeedNote();
    }
  }
}

class ShardedPropertySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ShardedPropertySweep, BitIdentical2d) {
  ShardedMatchesUnsharded<2>(GetParam(), 4 * SweepBudget(), 1.0);
}

TEST_P(ShardedPropertySweep, BitIdentical3d) {
  ShardedMatchesUnsharded<3>(GetParam() + 100, 2 * SweepBudget(), 2.0);
}

TEST_P(ShardedPropertySweep, BitIdentical5d) {
  ShardedMatchesUnsharded<5>(GetParam() + 200, SweepBudget(), 3.0);
}

// The 2D-only exact connectors (USEC wavefronts, Delaunay edge filtering)
// and bucketing run against a merged sharded structure exactly as against a
// built one: same labels, every configuration.
TEST_P(ShardedPropertySweep, ExactConnectorsOverShardedIndex2d) {
  std::mt19937_64 rng(GetParam() * 613 + 5);
  for (const auto& c : MakeCases(GetParam() + 27000, 2 * SweepBudget())) {
    auto pts = GenerateShape<2>(c.shape, c.n, c.seed);
    const size_t shards = 2 + rng() % 5;
    for (const auto& options :
         {Our2dGridUsec(), Our2dGridDelaunay(), WithBucketing(Our2dGridBcp())}) {
      const auto expected = Dbscan<2>(pts, c.epsilon, c.min_pts, options);
      sharding::ShardedCellIndex<2> sharded(
          std::span<const Point<2>>(pts), c.epsilon, 24, shards, options);
      dbscan::QueryContext<2> ctx;
      ASSERT_TRUE(pdbscan::testing::Identical(
          expected, ctx.Run(sharded.index(), c.min_pts)))
          << options.Name() << " shape=" << static_cast<int>(c.shape)
          << " n=" << c.n << " eps=" << c.epsilon << " minpts=" << c.min_pts
          << " shards=" << shards << " seed=" << c.seed << pdbscan::testing::SeedNote();
    }
  }
}

// Persistence: for randomized configurations, save -> load (both modes)
// -> Run + Sweep must be bit-identical to the live-built index. Exact and
// approximate variants alike — a loaded approximate index reproduces the
// SAME approximate clustering it was saved with (determinism of the frozen
// artifact), which is a stronger property than re-satisfying the Gan–Tao
// definition.
template <int D>
void PersistCase(uint64_t base_seed, size_t cases,
                 const std::vector<Options>& configs) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("pdbscan_prop_persist_" + std::to_string(::getpid()) + "_" +
        std::to_string(D) + "d.pdbsnap"))
          .string();
  std::mt19937_64 rng(base_seed * 131 + D);
  for (const auto& c : MakeCases(base_seed, cases)) {
    auto pts = GenerateShape<D>(c.shape, c.n, c.seed);
    const size_t cap = 1 + rng() % 24;
    for (const auto& options : configs) {
      auto live = CellIndex<D>::Build(pts, c.epsilon, cap, options);
      SaveIndex<D>(path, *live);
      QueryContext<D> live_ctx, ctx;
      const std::vector<size_t> sweep = {c.min_pts, c.min_pts + cap, 1};
      const auto expected =
          live_ctx.Sweep(*live, std::span<const size_t>(sweep));
      for (const LoadMode mode : {LoadMode::kOwned, LoadMode::kMapped}) {
        auto loaded = LoadIndex<D>(path, mode);
        const auto got = ctx.Sweep(loaded, std::span<const size_t>(sweep));
        ASSERT_EQ(expected.size(), got.size());
        for (size_t i = 0; i < sweep.size(); ++i) {
          ASSERT_TRUE(pdbscan::testing::Identical(expected[i], got[i]))
              << options.Name() << " d=" << D
              << (mode == LoadMode::kMapped ? " mapped" : " owned")
              << " shape=" << static_cast<int>(c.shape) << " n=" << c.n
              << " eps=" << c.epsilon << " cap=" << cap
              << " minpts=" << sweep[i] << " seed=" << c.seed << pdbscan::testing::SeedNote();
        }
      }
    }
  }
  std::remove(path.c_str());
}

class PersistPropertySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PersistPropertySweep, LoadedIndexesBitIdentical2d) {
  PersistCase<2>(GetParam(), 2 * SweepBudget(),
                 {Our2dGridBcp(), Our2dBoxUsec(), OurExactQt(),
                  OurApprox(0.1)});
}

TEST_P(PersistPropertySweep, LoadedIndexesBitIdentical3d) {
  PersistCase<3>(GetParam() + 4000, 2 * SweepBudget(),
                 {OurExact(), OurApprox(0.1), OurApproxQt(0.01)});
}

TEST_P(PersistPropertySweep, LoadedIndexesBitIdentical5d) {
  PersistCase<5>(GetParam() + 5000, SweepBudget(),
                 {OurExact(), OurApprox(0.1)});
}

INSTANTIATE_TEST_SUITE_P(Seeds, PersistPropertySweep,
                         ::testing::Values(1, 2, 3));

INSTANTIATE_TEST_SUITE_P(Seeds, ShardedPropertySweep,
                         ::testing::Values(1, 2, 3, 4));

// --- Kernel dispatch levels: SIMD vs scalar bit-identity --------------------

// Restores the ambient dispatch level (which may itself be forced via
// PDBSCAN_FORCE_KERNEL, e.g. the CI matrix) when a forced-level test exits.
struct ScopedKernelLevel {
  kernels::Level original = kernels::ActiveLevel();
  ~ScopedKernelLevel() { kernels::ForceLevel(original); }
};

// For randomized cases, every supported dispatch level must reproduce the
// scalar kernel's result bit for bit: the full clustering contract (labels,
// core flags, memberships) through both range-count methods, AND the raw
// saturated MarkCore neighbor counts of a built index. Runs at 1 worker and
// the ambient worker count — kernels are dispatched per call, so neither
// scheduling nor partitioning may leak into the answer.
template <int D>
void KernelLevelsBitIdentical(uint64_t base_seed, size_t cases,
                              double eps_scale) {
  ScopedKernelLevel restore;
  const std::vector<kernels::Level> levels = kernels::SupportedLevels();
  std::mt19937_64 rng(base_seed * 517 + D);
  for (const auto& c : MakeCases(base_seed + 41000, cases)) {
    auto pts = GenerateShape<D>(c.shape, c.n, c.seed);
    const double epsilon = c.epsilon * eps_scale;
    const size_t cap = 1 + rng() % 24;
    for (const auto& options : {OurExact(), OurExactQt()}) {
      for (const int workers : {1, parallel::num_workers()}) {
        parallel::ScopedNumWorkers scoped(workers);
        kernels::ForceLevel(kernels::Level::kScalar);
        const auto expected = Dbscan<D>(pts, epsilon, c.min_pts, options);
        const auto ref_index = CellIndex<D>::Build(pts, epsilon, cap, options);
        for (const kernels::Level level : levels) {
          if (level == kernels::Level::kScalar) continue;
          kernels::ForceLevel(level);
          const auto got = Dbscan<D>(pts, epsilon, c.min_pts, options);
          ASSERT_TRUE(pdbscan::testing::Identical(expected, got))
              << kernels::LevelName(level) << " vs scalar: " << options.Name()
              << " D=" << D << " shape=" << static_cast<int>(c.shape)
              << " n=" << c.n << " eps=" << epsilon
              << " minpts=" << c.min_pts << " workers=" << workers
              << " seed=" << c.seed << pdbscan::testing::SeedNote();
          const auto index = CellIndex<D>::Build(pts, epsilon, cap, options);
          ASSERT_TRUE(ref_index->neighbor_counts() == index->neighbor_counts())
              << kernels::LevelName(level)
              << " MarkCore counts diverge: " << options.Name() << " D=" << D
              << " n=" << c.n << " eps=" << epsilon << " cap=" << cap
              << " workers=" << workers << " seed=" << c.seed << pdbscan::testing::SeedNote();
        }
      }
    }
  }
}

class KernelPropertySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KernelPropertySweep, AllLevelsBitIdentical2d) {
  KernelLevelsBitIdentical<2>(GetParam(), 4 * SweepBudget(), 1.0);
}

TEST_P(KernelPropertySweep, AllLevelsBitIdentical3d) {
  KernelLevelsBitIdentical<3>(GetParam() + 300, 2 * SweepBudget(), 2.0);
}

TEST_P(KernelPropertySweep, AllLevelsBitIdentical5d) {
  KernelLevelsBitIdentical<5>(GetParam() + 600, SweepBudget(), 3.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelPropertySweep,
                         ::testing::Values(1, 2, 3));

// --- Serving scheduler: every response vs a fresh run at its generation -----

// Randomized request streams through a manual-pump ServingScheduler with
// randomized toggles (cache on/off, coalescing on/off), interleaved with
// snapshot swaps that change both the dataset and epsilon. The property:
// every response is bit-identical to a fresh query against the snapshot of
// the GENERATION it reports having been served from — regardless of how
// requests were batched, cached, or raced with ReplaceIndex. Runs at 1
// worker and the ambient worker count (inner parallelism must not leak
// into served results any more than into direct runs).
template <int D>
void ServingMatchesGenerationFreshRuns(uint64_t seed, size_t rounds) {
  std::mt19937_64 rng(seed);
  const double eps_choices[] = {0.9, 1.4, 2.2, 3.6};
  auto build = [&](uint64_t point_seed, double epsilon) {
    const auto pts = GenerateShape<D>(
        pdbscan::testing::kAllShapes[rng() % 5], 60 + rng() % 140, point_seed);
    const size_t cap = 1 + rng() % 24;
    return CellIndex<D>::Build(pts, epsilon, cap);
  };

  for (const int workers : {1, parallel::num_workers()}) {
    parallel::ScopedNumWorkers scoped(workers);
    auto index = build(rng(), eps_choices[rng() % 4]);
    EnginePool<D> pool(index);
    parallel::FakeClock clock;
    pool.SetClock(&clock);

    parallel::ServingOptions opts;
    opts.num_executors = 0;  // The sweep pumps deterministically.
    opts.clock = &clock;
    opts.queue_limit = 1024;  // Never overloads: every response must be kOk.
    opts.default_timeout_nanos = parallel::kNeverNanos;
    opts.cache_capacity = rng() % 2 == 0 ? 16 : 0;
    opts.coalescing = rng() % 2 == 0;
    ServingScheduler<D> scheduler(pool, opts);

    // The generation -> snapshot history the responses are audited against.
    std::map<uint64_t, std::shared_ptr<const CellIndex<D>>> by_gen;
    by_gen[pool.generation()] = index;

    std::vector<std::pair<size_t, std::future<ServeResult>>> pending;
    for (size_t round = 0; round < rounds; ++round) {
      switch (rng() % 4) {
        case 0:
        case 1: {  // Submit (more often than the other actions).
          const size_t m = 1 + rng() % 12;
          pending.emplace_back(m, scheduler.SubmitAsync(m));
          break;
        }
        case 2:  // Execute whatever queued.
          scheduler.Pump();
          break;
        case 3: {  // Swap the snapshot mid-stream.
          auto next = build(rng(), eps_choices[rng() % 4]);
          pool.ReplaceIndex(next);
          by_gen[pool.generation()] = next;
          break;
        }
      }
    }
    while (scheduler.Pump() > 0) {
    }

    for (auto& [m, future] : pending) {
      ServeResult r = future.get();
      ASSERT_EQ(r.status, ServeStatus::kOk)
          << "D=" << D << " seed=" << seed << " minpts=" << m;
      ASSERT_TRUE(by_gen.count(r.generation) > 0);
      dbscan::PipelineStats sink;
      QueryContext<D> fresh(&sink);
      ASSERT_TRUE(pdbscan::testing::Identical(
          fresh.Run(by_gen.at(r.generation), m), r.clustering))
          << "served response diverges from a fresh run: D=" << D
          << " seed=" << seed << " gen=" << r.generation << " minpts=" << m
          << " workers=" << workers << " cache=" << opts.cache_capacity
          << " coalescing=" << opts.coalescing
          << " from_cache=" << r.from_cache << " coalesced=" << r.coalesced;
    }
  }
}

class ServingPropertySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ServingPropertySweep, ResponsesMatchFreshRuns2d) {
  ServingMatchesGenerationFreshRuns<2>(GetParam() * 211 + 7,
                                       24 * SweepBudget());
}

TEST_P(ServingPropertySweep, ResponsesMatchFreshRuns3d) {
  ServingMatchesGenerationFreshRuns<3>(GetParam() * 431 + 11,
                                       16 * SweepBudget());
}

TEST_P(ServingPropertySweep, ResponsesMatchFreshRuns5d) {
  ServingMatchesGenerationFreshRuns<5>(GetParam() * 877 + 13,
                                       10 * SweepBudget());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ServingPropertySweep,
                         ::testing::Values(1, 2, 3));

// --- Cross-replica determinism: writer + N replicas over a shared dir -------

// One writer and two snapshot-shipping replicas (net/replication.h) in a
// temp directory, randomized interleaving of update batches, replica tail
// passes, and queries against randomly chosen nodes. Replicas tail lazily,
// so queries legitimately serve OLDER generations than the writer's — the
// audited property is the distributed identity contract: every response,
// from ANY node, is bit-identical to a fresh from-scratch run on the point
// set of the generation it reports. The generation -> points history is
// maintained independently from the writer's own bookkeeping.
template <int D>
void CrossReplicaResponsesMatchFreshRuns(uint64_t seed, size_t rounds) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("pdbscan_prop_replica_" + std::to_string(::getpid()) + "_" +
        std::to_string(seed) + "_" + std::to_string(D) + "d"))
          .string();
  std::filesystem::remove_all(dir);
  std::mt19937_64 rng(seed);
  const double epsilon = 1.3;
  const size_t counts_cap = 1 + rng() % 24;

  net::WriterOptions wopts;
  wopts.rotate_bytes = 1 + rng() % 4096;  // Exercise many rotation cadences.
  wopts.checkpoint_every = 1 + rng() % 4;
  wopts.keep_checkpoints = 1 + rng() % 2;
  net::WriterNode<D> writer(dir, epsilon, counts_cap, Options(), wopts);
  net::ReplicaNode<D> replica_a(dir, epsilon, counts_cap);
  net::ReplicaNode<D> replica_b(dir, epsilon, counts_cap);

  // gen -> live points at that generation (gen 1 = empty dataset).
  std::map<uint64_t, std::vector<Point<D>>> by_gen;
  by_gen[1] = {};
  std::vector<uint64_t> live;

  auto audit = [&](parallel::EnginePool<D>& pool, const char* node) {
    const auto [snapshot, generation] = pool.SnapshotAndGeneration();
    const size_t min_pts = 1 + rng() % 12;
    dbscan::PipelineStats sink;
    QueryContext<D> served(&sink), fresh(&sink);
    const Clustering got = served.Run(snapshot, min_pts);
    ASSERT_TRUE(by_gen.count(generation) > 0) << node << " gen=" << generation;
    const auto& pts = by_gen.at(generation);
    auto reference = CellIndex<D>::Build(
        std::span<const Point<D>>(pts), epsilon, counts_cap);
    ASSERT_TRUE(pdbscan::testing::Identical(fresh.Run(*reference, min_pts),
                                            got))
        << "response diverges from fresh run at its generation: " << node
        << " D=" << D << " gen=" << generation << " n=" << pts.size()
        << " minpts=" << min_pts << " cap=" << counts_cap << " seed=" << seed << pdbscan::testing::SeedNote();
  };

  for (size_t round = 0; round < rounds; ++round) {
    switch (rng() % 6) {
      case 0:
      case 1: {  // Writer applies a randomized batch.
        const auto ins = GenerateShape<D>(
            pdbscan::testing::kAllShapes[rng() % 5], 20 + rng() % 50, rng());
        std::shuffle(live.begin(), live.end(), rng);
        const size_t erase_n =
            live.empty() ? 0 : rng() % (live.size() / 2 + 1);
        std::vector<uint64_t> del(
            live.begin(), live.begin() + static_cast<ptrdiff_t>(erase_n));
        live.erase(live.begin(),
                   live.begin() + static_cast<ptrdiff_t>(erase_n));
        const uint64_t first = writer.ApplyUpdates(ins, del);
        for (size_t i = 0; i < ins.size(); ++i) live.push_back(first + i);
        by_gen[writer.generation()] = writer.index().LivePoints();
        break;
      }
      case 2:  // A replica makes tailing progress.
        (rng() % 2 == 0 ? replica_a : replica_b).TailOnce();
        break;
      case 3:  // Query the writer.
        audit(writer.pool(), "writer");
        break;
      case 4:  // Query replica A (possibly behind the writer).
        audit(replica_a.pool(), "replica_a");
        break;
      case 5:
        audit(replica_b.pool(), "replica_b");
        break;
    }
  }

  // Drain both replicas to the writer's generation and audit once more:
  // caught-up replicas must agree with the writer bit for bit.
  for (int spins = 0;
       (replica_a.applied_seq() < writer.seq() ||
        replica_b.applied_seq() < writer.seq()) &&
       spins < 10000;
       ++spins) {
    replica_a.TailOnce();
    replica_b.TailOnce();
  }
  ASSERT_EQ(replica_a.generation(), writer.generation());
  ASSERT_EQ(replica_b.generation(), writer.generation());
  const size_t min_pts = 1 + rng() % 12;
  const Clustering from_writer = writer.pool().Run(min_pts);
  ASSERT_TRUE(pdbscan::testing::Identical(from_writer,
                                          replica_a.pool().Run(min_pts)));
  ASSERT_TRUE(pdbscan::testing::Identical(from_writer,
                                          replica_b.pool().Run(min_pts)));
  std::filesystem::remove_all(dir);
}

// --- Metric axis: L1 / Linf correctness and bit-identity --------------------

// The non-Euclidean metrics run the same pipeline with metric-derived cell
// geometry (side, offset criterion, halo) and metric kernels. The sweep
// checks each against the brute-force oracle under the SAME metric, and the
// 1-vs-N-worker determinism contract on top.
template <int D>
void MetricMatchesOracle(uint64_t base_seed, size_t cases, double eps_scale) {
  for (const auto& c : MakeCases(base_seed + 61000, cases)) {
    auto pts = GenerateShape<D>(c.shape, c.n, c.seed);
    const double epsilon = c.epsilon * eps_scale;
    for (const Metric metric : {Metric::kL1, Metric::kLinf}) {
      Options options = OurExact();
      options.metric = metric;
      const auto expected = BruteForceDbscan<D>(
          std::span<const Point<D>>(pts), epsilon, c.min_pts, metric);
      Clustering solo;
      for (const int workers : {1, parallel::num_workers()}) {
        parallel::ScopedNumWorkers scoped(workers);
        const auto got = Dbscan<D>(pts, epsilon, c.min_pts, options);
        ASSERT_TRUE(SameClustering(expected, got))
            << MetricName(metric) << " vs oracle: D=" << D
            << " shape=" << static_cast<int>(c.shape) << " n=" << c.n
            << " eps=" << epsilon << " minpts=" << c.min_pts
            << " workers=" << workers << " seed=" << c.seed
            << pdbscan::testing::SeedNote();
        if (workers == 1) {
          solo = got;
        } else {
          ASSERT_TRUE(pdbscan::testing::Identical(solo, got))
              << MetricName(metric) << " 1-vs-N workers: D=" << D
              << " n=" << c.n << " eps=" << epsilon
              << " minpts=" << c.min_pts << " seed=" << c.seed
              << pdbscan::testing::SeedNote();
        }
      }
    }
  }
}

class MetricPropertySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MetricPropertySweep, OracleMatch2d) {
  MetricMatchesOracle<2>(GetParam(), 4 * SweepBudget(), 1.0);
}

TEST_P(MetricPropertySweep, OracleMatch3d) {
  MetricMatchesOracle<3>(GetParam() + 70, 2 * SweepBudget(), 2.0);
}

TEST_P(MetricPropertySweep, OracleMatch5d) {
  MetricMatchesOracle<5>(GetParam() + 140, SweepBudget(), 3.0);
}

// Sharded-vs-unsharded bit-identity under L1/Linf: the metric-derived halo
// (D+1 columns for L1, 2 for Linf) must make seam merges exact.
template <int D>
void MetricShardedMatchesUnsharded(uint64_t base_seed, size_t cases,
                                   double eps_scale) {
  std::mt19937_64 rng(base_seed * 409 + D);
  for (const auto& c : MakeCases(base_seed + 63000, cases)) {
    auto pts = GenerateShape<D>(c.shape, c.n, c.seed);
    const double epsilon = c.epsilon * eps_scale;
    const size_t shards = 1 + rng() % 7;
    const size_t cap = 1 + rng() % 24;
    for (const Metric metric : {Metric::kL1, Metric::kLinf}) {
      Options options = OurExact();
      options.metric = metric;
      const auto expected = Dbscan<D>(pts, epsilon, c.min_pts, options);
      for (const int workers : {1, parallel::num_workers()}) {
        parallel::ScopedNumWorkers scoped(workers);
        sharding::ShardedCellIndex<D> sharded(
            std::span<const Point<D>>(pts), epsilon, cap, shards, options);
        dbscan::QueryContext<D> ctx;
        ASSERT_TRUE(pdbscan::testing::Identical(
            expected, ctx.Run(sharded.index(), c.min_pts)))
            << MetricName(metric) << " sharded vs unsharded: D=" << D
            << " shape=" << static_cast<int>(c.shape) << " n=" << c.n
            << " eps=" << epsilon << " minpts=" << c.min_pts
            << " shards=" << shards << " cap=" << cap
            << " workers=" << workers << " seed=" << c.seed
            << pdbscan::testing::SeedNote();
      }
    }
  }
}

TEST_P(MetricPropertySweep, ShardedBitIdentical2d) {
  MetricShardedMatchesUnsharded<2>(GetParam(), 3 * SweepBudget(), 1.0);
}

TEST_P(MetricPropertySweep, ShardedBitIdentical3d) {
  MetricShardedMatchesUnsharded<3>(GetParam() + 210, 2 * SweepBudget(), 2.0);
}

// Forced-scalar vs every SIMD dispatch level under L1/Linf: same clustering
// contract AND the same raw saturated MarkCore counts.
template <int D>
void MetricKernelLevelsBitIdentical(uint64_t base_seed, size_t cases,
                                    double eps_scale) {
  ScopedKernelLevel restore;
  const std::vector<kernels::Level> levels = kernels::SupportedLevels();
  std::mt19937_64 rng(base_seed * 919 + D);
  for (const auto& c : MakeCases(base_seed + 65000, cases)) {
    auto pts = GenerateShape<D>(c.shape, c.n, c.seed);
    const double epsilon = c.epsilon * eps_scale;
    const size_t cap = 1 + rng() % 24;
    for (const Metric metric : {Metric::kL1, Metric::kLinf}) {
      Options options = OurExact();
      options.metric = metric;
      kernels::ForceLevel(kernels::Level::kScalar);
      const auto expected = Dbscan<D>(pts, epsilon, c.min_pts, options);
      const auto ref_index = CellIndex<D>::Build(pts, epsilon, cap, options);
      for (const kernels::Level level : levels) {
        if (level == kernels::Level::kScalar) continue;
        kernels::ForceLevel(level);
        const auto got = Dbscan<D>(pts, epsilon, c.min_pts, options);
        ASSERT_TRUE(pdbscan::testing::Identical(expected, got))
            << kernels::LevelName(level) << " vs scalar under "
            << MetricName(metric) << ": D=" << D << " n=" << c.n
            << " eps=" << epsilon << " minpts=" << c.min_pts
            << " seed=" << c.seed << pdbscan::testing::SeedNote();
        const auto index = CellIndex<D>::Build(pts, epsilon, cap, options);
        ASSERT_TRUE(ref_index->neighbor_counts() == index->neighbor_counts())
            << kernels::LevelName(level) << " MarkCore counts diverge under "
            << MetricName(metric) << ": D=" << D << " n=" << c.n
            << " eps=" << epsilon << " cap=" << cap << " seed=" << c.seed
            << pdbscan::testing::SeedNote();
      }
    }
  }
}

TEST_P(MetricPropertySweep, KernelLevelsBitIdentical2d) {
  MetricKernelLevelsBitIdentical<2>(GetParam(), 3 * SweepBudget(), 1.0);
}

TEST_P(MetricPropertySweep, KernelLevelsBitIdentical3d) {
  MetricKernelLevelsBitIdentical<3>(GetParam() + 350, 2 * SweepBudget(), 2.0);
}

// The packed-cell-key 2D L1 adjacency fast path vs the generic hash-grid
// dispatch: bit-identical clustering AND identical MarkCore counts (the
// fast path probes the same deterministic offset enumeration, so the CSR —
// and everything derived from it — must not change).
TEST_P(MetricPropertySweep, L1Grid2dFastPathMatchesGeneric) {
  std::mt19937_64 rng(GetParam() * 757 + 29);
  for (const auto& c : MakeCases(GetParam() + 67000, 4 * SweepBudget())) {
    auto pts = GenerateShape<2>(c.shape, c.n, c.seed);
    const size_t cap = 1 + rng() % 24;
    Options options = OurExact();
    options.metric = Metric::kL1;

    dbscan::ForceGenericAdjacencyFlag().store(true,
                                              std::memory_order_relaxed);
    const auto expected = Dbscan<2>(pts, c.epsilon, c.min_pts, options);
    const auto generic_index =
        CellIndex<2>::Build(pts, c.epsilon, cap, options);
    dbscan::ForceGenericAdjacencyFlag().store(false,
                                              std::memory_order_relaxed);
    const auto got = Dbscan<2>(pts, c.epsilon, c.min_pts, options);
    const auto fast_index = CellIndex<2>::Build(pts, c.epsilon, cap, options);

    ASSERT_TRUE(pdbscan::testing::Identical(expected, got))
        << "L1 2d fast path vs generic adjacency: shape="
        << static_cast<int>(c.shape) << " n=" << c.n << " eps=" << c.epsilon
        << " minpts=" << c.min_pts << " seed=" << c.seed
        << pdbscan::testing::SeedNote();
    ASSERT_TRUE(generic_index->neighbor_counts() ==
                fast_index->neighbor_counts())
        << "L1 2d fast path MarkCore counts diverge: n=" << c.n
        << " eps=" << c.epsilon << " cap=" << cap << " seed=" << c.seed
        << pdbscan::testing::SeedNote();
  }
}

// Served-vs-solo under the new metrics: a ServingScheduler response is
// bit-identical to a direct run with the same metric options.
TEST_P(MetricPropertySweep, ServedMatchesSolo2d) {
  for (const auto& c : MakeCases(GetParam() + 69000, 2 * SweepBudget())) {
    auto pts = GenerateShape<2>(c.shape, c.n, c.seed);
    for (const Metric metric : {Metric::kL1, Metric::kLinf}) {
      Options options = OurExact();
      options.metric = metric;
      const auto solo = Dbscan<2>(pts, c.epsilon, c.min_pts, options);
      auto index = CellIndex<2>::Build(pts, c.epsilon, 24, options);
      EnginePool<2> pool(index);
      ServingScheduler<2> scheduler(pool);
      ServeResult r = scheduler.Submit(c.min_pts);
      ASSERT_EQ(r.status, ServeStatus::kOk);
      ASSERT_TRUE(pdbscan::testing::Identical(solo, r.clustering))
          << MetricName(metric) << " served vs solo: n=" << c.n
          << " eps=" << c.epsilon << " minpts=" << c.min_pts
          << " seed=" << c.seed << pdbscan::testing::SeedNote();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricPropertySweep,
                         ::testing::Values(1, 2, 3));

class ReplicaPropertySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReplicaPropertySweep, ResponsesMatchFreshRuns2d) {
  CrossReplicaResponsesMatchFreshRuns<2>(GetParam() * 307 + 3,
                                         30 * SweepBudget());
}

TEST_P(ReplicaPropertySweep, ResponsesMatchFreshRuns3d) {
  CrossReplicaResponsesMatchFreshRuns<3>(GetParam() * 509 + 5,
                                         18 * SweepBudget());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplicaPropertySweep,
                         ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace pdbscan
