// Randomized property sweep: for a wide range of generated configurations
// (data shape, n, epsilon, minPts, dimension), every exact variant must
// reproduce the brute-force clustering exactly, and every approximate
// variant must satisfy the Gan–Tao definition. This is the broadest
// correctness net in the suite; each case is small enough for the O(n^2)
// oracle.
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "dbscan/verify.h"
#include "pdbscan/pdbscan.h"

namespace pdbscan {
namespace {

using dbscan::BruteForceDbscan;
using dbscan::IsValidApproxClustering;
using dbscan::SameClustering;
using geometry::Point;

enum class Shape { kUniform, kBlobs, kLines, kGridish, kMixed };

template <int D>
std::vector<Point<D>> GenerateShape(Shape shape, size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coord(0.0, 20.0);
  std::normal_distribution<double> gauss(0.0, 0.7);
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  std::vector<Point<D>> pts(n);
  switch (shape) {
    case Shape::kUniform:
      for (auto& p : pts) {
        for (int k = 0; k < D; ++k) p[k] = coord(rng);
      }
      break;
    case Shape::kBlobs: {
      std::vector<Point<D>> centers(4);
      for (auto& c : centers) {
        for (int k = 0; k < D; ++k) c[k] = coord(rng);
      }
      for (size_t i = 0; i < n; ++i) {
        const auto& c = centers[i % centers.size()];
        for (int k = 0; k < D; ++k) pts[i][k] = c[k] + gauss(rng);
      }
      break;
    }
    case Shape::kLines: {
      // Points along axis-parallel segments: stresses degenerate geometry
      // (collinear Delaunay inputs, single-row grids).
      for (size_t i = 0; i < n; ++i) {
        const int axis = static_cast<int>(rng() % D);
        const double offset = coord(rng);
        for (int k = 0; k < D; ++k) pts[i][k] = std::floor(coord(rng) / 5) * 5;
        pts[i][axis] = offset;
      }
      break;
    }
    case Shape::kGridish: {
      // Near-lattice points: exact ties in distances and cell boundaries.
      for (size_t i = 0; i < n; ++i) {
        for (int k = 0; k < D; ++k) {
          pts[i][k] = std::floor(coord(rng)) + (u01(rng) < 0.3 ? 0.5 : 0.0);
        }
      }
      break;
    }
    case Shape::kMixed: {
      for (size_t i = 0; i < n; ++i) {
        if (u01(rng) < 0.5) {
          for (int k = 0; k < D; ++k) pts[i][k] = coord(rng);
        } else {
          for (int k = 0; k < D; ++k) pts[i][k] = 10 + gauss(rng);
        }
      }
      break;
    }
  }
  return pts;
}

struct SweepCase {
  Shape shape;
  size_t n;
  double epsilon;
  size_t min_pts;
  uint64_t seed;
};

std::vector<SweepCase> MakeCases(uint64_t base_seed, size_t count) {
  std::mt19937_64 rng(base_seed);
  std::vector<SweepCase> cases;
  const Shape shapes[] = {Shape::kUniform, Shape::kBlobs, Shape::kLines,
                          Shape::kGridish, Shape::kMixed};
  for (size_t i = 0; i < count; ++i) {
    SweepCase c;
    c.shape = shapes[rng() % 5];
    c.n = 50 + rng() % 350;
    const double eps_choices[] = {0.3, 0.7, 1.1, 2.0, 4.5};
    c.epsilon = eps_choices[rng() % 5];
    const size_t minpts_choices[] = {1, 2, 4, 8, 20};
    c.min_pts = minpts_choices[rng() % 5];
    c.seed = rng();
    cases.push_back(c);
  }
  return cases;
}

class PropertySweep2d : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PropertySweep2d, AllExactVariantsMatchOracle) {
  for (const auto& c : MakeCases(GetParam(), 6)) {
    auto pts = GenerateShape<2>(c.shape, c.n, c.seed);
    const auto expected = BruteForceDbscan<2>(pts, c.epsilon, c.min_pts);
    const std::vector<Options> configs = {
        Our2dGridBcp(),          OurExactQt(),      Our2dGridUsec(),
        Our2dGridDelaunay(),     Our2dBoxBcp(),     Our2dBoxUsec(),
        Our2dBoxDelaunay(),      WithBucketing(Our2dGridBcp()),
        WithBucketing(Our2dBoxUsec())};
    for (const auto& options : configs) {
      const auto got = Dbscan<2>(pts, c.epsilon, c.min_pts, options);
      ASSERT_TRUE(SameClustering(expected, got))
          << options.Name() << " shape=" << static_cast<int>(c.shape)
          << " n=" << c.n << " eps=" << c.epsilon << " minpts=" << c.min_pts
          << " seed=" << c.seed;
    }
  }
}

TEST_P(PropertySweep2d, ApproxVariantsSatisfyDefinition) {
  std::mt19937_64 rng(GetParam() * 77 + 1);
  for (const auto& c : MakeCases(GetParam() + 1000, 4)) {
    auto pts = GenerateShape<2>(c.shape, c.n, c.seed);
    const double rho_choices[] = {0.01, 0.1, 0.6};
    const double rho = rho_choices[rng() % 3];
    for (const auto& options : {OurApprox(rho), OurApproxQt(rho)}) {
      const auto got = Dbscan<2>(pts, c.epsilon, c.min_pts, options);
      ASSERT_TRUE(
          IsValidApproxClustering<2>(pts, c.epsilon, c.min_pts, rho, got))
          << options.Name() << " rho=" << rho << " n=" << c.n
          << " eps=" << c.epsilon << " seed=" << c.seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySweep2d,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

class PropertySweep3d : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PropertySweep3d, ExactAndApproxAgainstOracle) {
  for (const auto& c : MakeCases(GetParam() + 5000, 4)) {
    auto pts = GenerateShape<3>(c.shape, c.n, c.seed);
    const auto expected = BruteForceDbscan<3>(pts, c.epsilon, c.min_pts);
    for (const auto& options :
         {OurExact(), OurExactQt(), WithBucketing(OurExactQt())}) {
      const auto got = Dbscan<3>(pts, c.epsilon, c.min_pts, options);
      ASSERT_TRUE(SameClustering(expected, got))
          << options.Name() << " n=" << c.n << " eps=" << c.epsilon
          << " seed=" << c.seed;
    }
    const auto approx = Dbscan<3>(pts, c.epsilon, c.min_pts, OurApproxQt(0.05));
    ASSERT_TRUE(
        IsValidApproxClustering<3>(pts, c.epsilon, c.min_pts, 0.05, approx));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySweep3d,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

class PropertySweepHighDim : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PropertySweepHighDim, FiveAndSevenDimensions) {
  {
    auto c = MakeCases(GetParam() + 9000, 1)[0];
    auto pts = GenerateShape<5>(c.shape, std::min<size_t>(c.n, 250), c.seed);
    const auto expected = BruteForceDbscan<5>(pts, c.epsilon * 2, c.min_pts);
    for (const auto& options : {OurExact(), OurExactQt()}) {
      ASSERT_TRUE(SameClustering(
          expected, Dbscan<5>(pts, c.epsilon * 2, c.min_pts, options)))
          << options.Name() << " seed=" << c.seed;
    }
  }
  {
    auto c = MakeCases(GetParam() + 11000, 1)[0];
    auto pts = GenerateShape<7>(c.shape, std::min<size_t>(c.n, 200), c.seed);
    const auto expected = BruteForceDbscan<7>(pts, c.epsilon * 3, c.min_pts);
    for (const auto& options : {OurExact(), OurExactQt()}) {
      ASSERT_TRUE(SameClustering(
          expected, Dbscan<7>(pts, c.epsilon * 3, c.min_pts, options)))
          << options.Name() << " seed=" << c.seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySweepHighDim,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace pdbscan
