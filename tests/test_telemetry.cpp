// Telemetry contract tests: the histogram math against a scalar reference,
// the shared max-merge, span-stack nesting under real threads (the TSan
// target for the lock-free ring), wire-protocol version tolerance for the
// trace_id / span-section extensions, the serving scheduler's latency
// histograms on a FakeClock, slow-query logging, the registry render
// surface, and the end-to-end traced TCP query whose server-side span
// self-times must account for the client-measured wall clock.
//
// The load-bearing disabled-mode property: a serving sweep produces
// bit-identical labels with tracing off and on — telemetry observes, it
// never perturbs.
#include <algorithm>
#include <cstdint>
#include <optional>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dbscan/cell_index.h"
#include "dbscan/stats.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "parallel/engine_pool.h"
#include "parallel/serving_clock.h"
#include "parallel/serving_scheduler.h"
#include "pdbscan/pdbscan.h"
#include "telemetry/metrics.h"
#include "telemetry/stats_export.h"
#include "telemetry/trace.h"
#include "testing_util.h"

namespace pdbscan {
namespace {

using parallel::FakeClock;
using parallel::MillisToNanos;
using pdbscan::testing::BlobPoints;
using pdbscan::testing::ExpectIdentical;
using telemetry::HistogramSnapshot;
using telemetry::LatencyHistogram;
using telemetry::SpanRecord;

// Restores the global trace-enabled flag on scope exit so tests cannot
// leak tracing into each other.
class TraceGuard {
 public:
  explicit TraceGuard(bool on) : prev_(telemetry::TraceEnabled()) {
    telemetry::SetTraceEnabled(on);
  }
  ~TraceGuard() { telemetry::SetTraceEnabled(prev_); }

 private:
  bool prev_;
};

// --- Histogram math against a scalar reference ------------------------------

// The reference percentile: sort the raw values, take the ceil(q*count)-th
// smallest, and report its bucket's inclusive upper bound. Bucket order is
// value order (bit_width is monotone), so this must match the histogram.
uint64_t ReferencePercentile(std::vector<uint64_t> values, double q) {
  std::sort(values.begin(), values.end());
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(values.size())));
  if (rank < 1) rank = 1;
  if (rank > values.size()) rank = values.size();
  return HistogramSnapshot::BucketUpperNanos(
      LatencyHistogram::BucketIndex(values[rank - 1]));
}

TEST(TelemetryHistogram, MatchesScalarReferenceOnRandomValues) {
  std::mt19937_64 rng(7);
  // A mix of magnitudes so many buckets populate: uniform exponents.
  std::vector<uint64_t> values;
  LatencyHistogram hist;
  for (int i = 0; i < 5000; ++i) {
    const int shift = static_cast<int>(rng() % 40);
    const uint64_t v = rng() >> (63 - shift > 0 ? 63 - shift : 0);
    values.push_back(v);
    hist.Record(v);
  }
  const HistogramSnapshot snap = hist.Snapshot();
  ASSERT_EQ(snap.count, values.size());
  uint64_t sum = 0;
  for (const uint64_t v : values) sum += v;
  EXPECT_EQ(snap.sum_nanos, sum);
  for (const double q : {0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(snap.PercentileNanos(q), ReferencePercentile(values, q))
        << "q=" << q;
  }
}

TEST(TelemetryHistogram, BucketBoundariesArePowersOfTwo) {
  LatencyHistogram hist;
  hist.Record(0);     // Bucket 0: exactly {0}.
  hist.Record(1);     // Bucket 1: [1, 1].
  hist.Record(2);     // Bucket 2: [2, 3].
  hist.Record(3);     // Bucket 2.
  hist.Record(1024);  // Bucket 11: [1024, 2047].
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[1], 1u);
  EXPECT_EQ(snap.buckets[2], 2u);
  EXPECT_EQ(snap.buckets[11], 1u);
  EXPECT_EQ(HistogramSnapshot::BucketUpperNanos(0), 0u);
  EXPECT_EQ(HistogramSnapshot::BucketUpperNanos(2), 3u);
  EXPECT_EQ(HistogramSnapshot::BucketUpperNanos(11), 2047u);
}

TEST(TelemetryHistogram, MergeEqualsRecordingEverythingInOne) {
  std::mt19937_64 rng(13);
  LatencyHistogram a, b, combined;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng() % 1000000;
    (i % 2 == 0 ? a : b).Record(v);
    combined.Record(v);
  }
  a.MergeFrom(b);
  const HistogramSnapshot merged = a.Snapshot();
  const HistogramSnapshot expect = combined.Snapshot();
  EXPECT_EQ(merged.count, expect.count);
  EXPECT_EQ(merged.sum_nanos, expect.sum_nanos);
  EXPECT_EQ(merged.buckets, expect.buckets);
  for (const double q : {0.5, 0.9, 0.99}) {
    EXPECT_EQ(merged.PercentileNanos(q), expect.PercentileNanos(q));
  }
}

// --- The shared max-merge ---------------------------------------------------

TEST(TelemetryMaxGauge, AtomicMaxOnlyRaises) {
  std::atomic<uint64_t> slot{5};
  telemetry::AtomicMax(slot, uint64_t{3});
  EXPECT_EQ(slot.load(), 5u);
  telemetry::AtomicMax(slot, uint64_t{9});
  EXPECT_EQ(slot.load(), 9u);

  telemetry::MaxGauge g1, g2;
  g1.Update(4);
  g2.Update(7);
  g1.MergeFrom(g2);
  EXPECT_EQ(g1.value(), 7u);
  g1.MergeFrom(g2);  // Idempotent.
  EXPECT_EQ(g1.value(), 7u);
}

TEST(TelemetryMaxGauge, PipelineStatsMergeTakesGaugeMax) {
  dbscan::PipelineStats a, b;
  a.queue_depth_peak.store(3);
  b.queue_depth_peak.store(8);
  a.kernel_dispatch_level.store(2);
  b.kernel_dispatch_level.store(1);
  a.MergeFrom(b);
  EXPECT_EQ(a.queue_depth_peak.load(), 8u);
  EXPECT_EQ(a.kernel_dispatch_level.load(), 2u);
}

// --- Span stacks under threads (the TSan target) ----------------------------

TEST(TelemetryTrace, NestedSpansLinkParentsPerThread) {
  TraceGuard trace(true);
  constexpr int kThreads = 8;
  std::vector<uint64_t> trace_ids(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    trace_ids[t] = telemetry::NewTraceId() + static_cast<uint64_t>(t);
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      telemetry::ScopedTraceContext ctx(trace_ids[t]);
      for (int rep = 0; rep < 50; ++rep) {
        telemetry::TraceSpan outer("outer");
        telemetry::TraceSpan middle("middle");
        telemetry::TraceSpan inner("inner");
      }
    });
  }
  for (auto& th : threads) th.join();

  for (int t = 0; t < kThreads; ++t) {
    const std::vector<SpanRecord> spans =
        telemetry::GlobalTraceRing().CollectTrace(trace_ids[t]);
    // The default ring holds 4096 slots for 8 * 150 = 1200 spans, but
    // concurrent writers may drop a few on slot collisions — require most
    // of them and verify structure on what survived.
    EXPECT_GE(spans.size(), 100u) << "thread " << t;
    std::vector<SpanRecord> by_id = spans;
    for (const SpanRecord& s : spans) {
      ASSERT_NE(s.name, nullptr);
      const std::string name = s.name;
      if (name == "outer") {
        EXPECT_EQ(s.parent_id, 0u);
      } else {
        // middle parents to an outer, inner to a middle — find it.
        const char* want = name == "middle" ? "outer" : "middle";
        bool found = false;
        for (const SpanRecord& p : by_id) {
          if (p.span_id == s.parent_id) {
            EXPECT_STREQ(p.name, want);
            found = true;
            break;
          }
        }
        // The parent span may have been dropped on a ring collision;
        // only check linkage when it survived.
        (void)found;
      }
      EXPECT_LE(s.start_nanos, s.end_nanos);
    }
  }
}

TEST(TelemetryTrace, DisabledSpansRecordNothing) {
  TraceGuard trace(false);
  const uint64_t before = telemetry::GlobalTraceRing().appended();
  {
    telemetry::TraceSpan span("should_not_record");
    EXPECT_FALSE(span.active());
  }
  EXPECT_EQ(telemetry::GlobalTraceRing().appended(), before);
}

TEST(TelemetryTrace, SpanTreeSelfTimesTelescope) {
  // root [0, 100], child a [10, 40], child b [50, 90], grandchild [55, 60].
  std::vector<SpanRecord> spans;
  spans.push_back({"root", 1, 100, 0, 0, 100});
  spans.push_back({"a", 1, 101, 100, 10, 40});
  spans.push_back({"b", 1, 102, 100, 50, 90});
  spans.push_back({"g", 1, 103, 102, 55, 60});
  const std::vector<telemetry::SpanNode> tree =
      telemetry::BuildSpanTree(spans);
  ASSERT_EQ(tree.size(), 4u);
  EXPECT_TRUE(tree[0].is_root);
  EXPECT_EQ(tree[0].self_nanos, 100u - 30u - 40u);
  EXPECT_EQ(tree[1].self_nanos, 30u);
  EXPECT_EQ(tree[2].self_nanos, 40u - 5u);
  EXPECT_EQ(tree[3].self_nanos, 5u);
  // Telescoping: self times sum to the root's duration.
  EXPECT_EQ(telemetry::TotalSelfNanos(tree), 100u);
  const std::string rendered = telemetry::FormatSpanTree(spans);
  EXPECT_NE(rendered.find("root"), std::string::npos);
  EXPECT_NE(rendered.find("  a"), std::string::npos);
}

// --- Wire-protocol version tolerance ----------------------------------------

TEST(TelemetryProtocol, TraceIdRoundTripsAndOldFramesStillDecode) {
  net::QueryRequest req;
  req.min_pts = 42;
  req.trace_id = 0xdeadbeefcafe;
  net::QueryRequest out;
  ASSERT_TRUE(net::DecodeQueryRequest(net::EncodeQueryRequest(req), &out));
  EXPECT_EQ(out.min_pts, 42u);
  EXPECT_EQ(out.trace_id, 0xdeadbeefcafeu);

  // An untraced request encodes exactly the old payload (min_pts only), so
  // old servers that require AtEnd still accept it...
  net::QueryRequest untraced;
  untraced.min_pts = 7;
  const std::vector<uint8_t> old_wire = net::EncodeQueryRequest(untraced);
  EXPECT_EQ(old_wire.size(), sizeof(uint64_t));
  // ...and an old client's frame (min_pts only) decodes with trace_id 0.
  ASSERT_TRUE(net::DecodeQueryRequest(old_wire, &out));
  EXPECT_EQ(out.min_pts, 7u);
  EXPECT_EQ(out.trace_id, 0u);
}

TEST(TelemetryProtocol, SpanSectionRoundTripsAndIsOptional) {
  net::QueryResponse resp;
  resp.generation = 3;
  resp.num_points = 2;
  resp.num_clusters = 1;
  resp.cluster = {0, 0};
  resp.is_core = {1, 0};
  net::QueryResponse out;
  ASSERT_TRUE(net::DecodeQueryResponse(net::EncodeQueryResponse(resp), &out));
  EXPECT_TRUE(out.spans.empty());

  resp.spans.push_back({"serve_request", -1, 100, 900});
  resp.spans.push_back({"mark_core", 0, 150, 200});
  ASSERT_TRUE(net::DecodeQueryResponse(net::EncodeQueryResponse(resp), &out));
  ASSERT_EQ(out.spans.size(), 2u);
  EXPECT_EQ(out.spans[0].name, "serve_request");
  EXPECT_EQ(out.spans[0].parent, -1);
  EXPECT_EQ(out.spans[1].name, "mark_core");
  EXPECT_EQ(out.spans[1].parent, 0);
  EXPECT_EQ(out.spans[1].start_nanos, 150u);
  EXPECT_EQ(out.spans[1].duration_nanos, 200u);
}

TEST(TelemetryProtocol, StatsMessagesRoundTrip) {
  net::StatsRequest req;
  req.format = 1;
  net::StatsRequest req_out;
  ASSERT_TRUE(net::DecodeStatsRequest(net::EncodeStatsRequest(req), &req_out));
  EXPECT_EQ(req_out.format, 1);

  net::StatsResponse resp;
  resp.format = 0;
  resp.text = "{\"schema\":\"pdbscan-telemetry-v1\"}";
  net::StatsResponse resp_out;
  ASSERT_TRUE(
      net::DecodeStatsResponse(net::EncodeStatsResponse(resp), &resp_out));
  EXPECT_EQ(resp_out.format, 0);
  EXPECT_EQ(resp_out.text, resp.text);
}

// --- Registry and render surface --------------------------------------------

TEST(TelemetryRegistry, RendersPrometheusAndJson) {
  telemetry::MetricsRegistry registry;
  registry.GetCounter("requests_total").Add(3);
  registry.GetGauge("queue_peak").Update(5);
  registry.GetHistogram("latency").Record(1000);
  registry.GetHistogram("latency").Record(3000);
  registry.AddSource([](std::vector<telemetry::MetricValue>& out) {
    telemetry::AppendCounter(out, "source_counter", 11);
  });

  const std::string prom = telemetry::RenderPrometheus(registry.Collect());
  EXPECT_NE(prom.find("# TYPE pdbscan_requests_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("pdbscan_requests_total 3"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE pdbscan_queue_peak gauge"), std::string::npos);
  EXPECT_NE(prom.find("pdbscan_latency_count 2"), std::string::npos);
  EXPECT_NE(prom.find("le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(prom.find("pdbscan_source_counter 11"), std::string::npos);

  const std::string json = telemetry::RenderJson(registry.Collect());
  EXPECT_NE(json.find("\"schema\":\"pdbscan-telemetry-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"requests_total\":3"), std::string::npos);
  EXPECT_NE(json.find("\"latency\":{\"count\":2"), std::string::npos);
  EXPECT_NE(json.find("\"p50_nanos\":"), std::string::npos);
}

TEST(TelemetryRegistry, PipelineStatsExportCoversCountersAndGauges) {
  dbscan::PipelineStats stats;
  stats.successful_queries.store(9);
  stats.cache_hits.store(4);
  stats.queue_depth_peak.store(6);
  std::vector<telemetry::MetricValue> values;
  telemetry::AppendPipelineStats(stats, values);
  auto find = [&](const std::string& name) -> const telemetry::MetricValue* {
    for (const auto& v : values) {
      if (v.name == name) return &v;
    }
    return nullptr;
  };
  const auto* ok = find("successful_queries");
  ASSERT_NE(ok, nullptr);
  EXPECT_EQ(ok->value, 9.0);
  EXPECT_EQ(ok->kind, telemetry::MetricValue::Kind::kCounter);
  const auto* peak = find("queue_depth_peak");
  ASSERT_NE(peak, nullptr);
  EXPECT_EQ(peak->value, 6.0);
  EXPECT_EQ(peak->kind, telemetry::MetricValue::Kind::kGauge);
  ASSERT_NE(find("cache_hits"), nullptr);
}

// --- Serving scheduler: histograms, slow-query log, bit-identity ------------

std::vector<Point2> ServingPoints(uint64_t seed = 11) {
  return BlobPoints<2>(600, 4, 30.0, 1.0, seed);
}

constexpr double kEps = 1.3;
constexpr size_t kCap = 64;

struct Harness {
  explicit Harness(parallel::ServingOptions opts = {})
      : pts(ServingPoints()),
        index(dbscan::CellIndex<2>::Build(pts, kEps, kCap)),
        pool(index) {
    opts.num_executors = 0;  // The test pumps.
    opts.clock = &clock;
    pool.SetClock(&clock);
    scheduler.emplace(pool, opts);
  }

  std::vector<Point2> pts;
  std::shared_ptr<const dbscan::CellIndex<2>> index;
  FakeClock clock;
  EnginePool<2> pool;
  std::optional<ServingScheduler<2>> scheduler;
};

TEST(TelemetryServing, HistogramsRecordQueueWaitAndRequestLatency) {
  parallel::ServingOptions opts;
  opts.cache_capacity = 0;
  Harness h(opts);
  auto f1 = h.scheduler->SubmitAsync(3);
  h.clock.Advance(MillisToNanos(4));  // 4 ms in the queue.
  EXPECT_EQ(h.scheduler->Pump(), 1u);
  ASSERT_EQ(f1.get().status, ServeStatus::kOk);

  const auto& hist = h.scheduler->histograms();
  const HistogramSnapshot wait = hist.queue_wait_nanos.Snapshot();
  ASSERT_EQ(wait.count, 1u);
  EXPECT_EQ(wait.sum_nanos, MillisToNanos(4));
  const HistogramSnapshot request = hist.request_nanos.Snapshot();
  ASSERT_EQ(request.count, 1u);
  EXPECT_GE(request.sum_nanos, MillisToNanos(4));
  EXPECT_EQ(hist.execute_nanos.Snapshot().count, 1u);
}

TEST(TelemetryServing, SlowQueryLogFiresAboveThresholdOnly) {
  parallel::ServingOptions opts;
  opts.cache_capacity = 0;
  opts.slow_query_nanos = MillisToNanos(10);
  std::vector<std::string> logged;
  opts.slow_query_sink = [&](const std::string& msg) {
    logged.push_back(msg);
  };
  Harness h(opts);

  auto fast = h.scheduler->SubmitAsync(3);
  h.clock.Advance(MillisToNanos(2));
  EXPECT_EQ(h.scheduler->Pump(), 1u);
  ASSERT_EQ(fast.get().status, ServeStatus::kOk);
  EXPECT_TRUE(logged.empty());

  auto slow = h.scheduler->SubmitAsync(5);
  h.clock.Advance(MillisToNanos(50));
  EXPECT_EQ(h.scheduler->Pump(), 1u);
  ASSERT_EQ(slow.get().status, ServeStatus::kOk);
  ASSERT_EQ(logged.size(), 1u);
  EXPECT_NE(logged[0].find("slow query"), std::string::npos);
  EXPECT_NE(logged[0].find("min_pts=5"), std::string::npos);
}

TEST(TelemetryServing, SweepBitIdenticalWithTracingOnAndOff) {
  const std::vector<size_t> kMinPts = {2, 3, 5, 8, 13};
  std::vector<Clustering> baseline;
  {
    TraceGuard trace(false);
    Harness h;
    for (const size_t mp : kMinPts) {
      auto f = h.scheduler->SubmitAsync(mp);
      h.scheduler->Pump();
      ServeResult r = f.get();
      ASSERT_EQ(r.status, ServeStatus::kOk);
      baseline.push_back(std::move(r.clustering));
    }
  }
  {
    TraceGuard trace(true);
    const uint64_t trace_id = telemetry::NewTraceId();
    telemetry::ScopedTraceContext ctx(trace_id);
    Harness h;
    for (size_t i = 0; i < kMinPts.size(); ++i) {
      auto f = h.scheduler->SubmitAsync(kMinPts[i]);
      h.scheduler->Pump();
      ServeResult r = f.get();
      ASSERT_EQ(r.status, ServeStatus::kOk);
      ExpectIdentical(baseline[i], r.clustering,
                      "traced sweep min_pts=" + std::to_string(kMinPts[i]));
    }
    // The traced run actually recorded spans (queue_wait at minimum).
    EXPECT_FALSE(
        telemetry::GlobalTraceRing().CollectTrace(trace_id).empty());
  }
}

// --- End-to-end: traced TCP query and the stats scrape ----------------------

class TelemetryNetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    pts_ = BlobPoints<2>(4000, 6, 60.0, 1.0, 29);
    index_ = dbscan::CellIndex<2>::Build(pts_, kEps, kCap);
    pool_ = std::make_unique<EnginePool<2>>(index_);
    parallel::ServingOptions opts;
    opts.cache_capacity = 0;  // Every query executes (so spans exist).
    scheduler_ =
        std::make_unique<parallel::ServingScheduler<2>>(*pool_, opts);
    net::ServerOptions sopts;
    sopts.registry = &registry_;
    server_ = std::make_unique<net::NetServer<2>>(*scheduler_, *pool_, kEps,
                                                  kCap, sopts, nullptr);
    server_->Start();
  }

  void TearDown() override {
    scheduler_->Shutdown();
    server_->Stop();
  }

  std::vector<Point2> pts_;
  std::shared_ptr<const dbscan::CellIndex<2>> index_;
  std::unique_ptr<EnginePool<2>> pool_;
  std::unique_ptr<parallel::ServingScheduler<2>> scheduler_;
  telemetry::MetricsRegistry registry_;
  std::unique_ptr<net::NetServer<2>> server_;
};

TEST_F(TelemetryNetTest, TracedQueryReturnsSpansAccountingForWallClock) {
  TraceGuard trace(true);
  net::Client client(server_->port());
  const uint64_t trace_id = telemetry::NewTraceId();
  const uint64_t wall_start = telemetry::NowNanos();
  const net::QueryResponse resp = client.Query(5, trace_id);
  const uint64_t wall_nanos = telemetry::NowNanos() - wall_start;
  EXPECT_EQ(resp.num_points, pts_.size());
  ASSERT_FALSE(resp.spans.empty());

  // The span names the instrumentation contract promises.
  auto has = [&](const std::string& name) {
    for (const auto& s : resp.spans) {
      if (s.name == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("serve_request"));
  EXPECT_TRUE(has("queue_wait"));
  EXPECT_TRUE(has("coalesced_sweep"));
  EXPECT_TRUE(has("mark_core"));
  EXPECT_TRUE(has("cluster_core"));

  // Self times telescope: the sum over the serve_request subtree equals
  // the root durations, and the whole breakdown fits inside (and accounts
  // for most of) the client-measured wall clock. The 5%-or-2ms floor
  // absorbs client-side encode + TCP + scheduler handoff jitter on small
  // runs.
  uint64_t root_nanos = 0;
  for (const auto& s : resp.spans) {
    if (s.parent < 0) root_nanos += s.duration_nanos;
  }
  ASSERT_GT(root_nanos, 0u);
  const uint64_t slack = std::max(wall_nanos / 20, MillisToNanos(2));
  EXPECT_LE(root_nanos, wall_nanos + slack);
  EXPECT_GE(root_nanos + slack, wall_nanos / 2);
}

TEST_F(TelemetryNetTest, UntracedQueryCarriesNoSpans) {
  TraceGuard trace(true);
  net::Client client(server_->port());
  const net::QueryResponse resp = client.Query(5);  // trace_id 0.
  EXPECT_TRUE(resp.spans.empty());
}

TEST_F(TelemetryNetTest, StatsScrapeRendersBothFormatsAndCountsAreMonotone) {
  net::Client client(server_->port());
  (void)client.Query(5);

  const net::StatsResponse json1 = client.Stats(0);
  EXPECT_NE(json1.text.find("\"schema\":\"pdbscan-telemetry-v1\""),
            std::string::npos);
  EXPECT_NE(json1.text.find("request_latency"), std::string::npos);
  EXPECT_NE(json1.text.find("successful_queries"), std::string::npos);

  const net::StatsResponse prom = client.Stats(1);
  EXPECT_NE(prom.text.find("# TYPE pdbscan_request_latency histogram"),
            std::string::npos);
  EXPECT_NE(prom.text.find("pdbscan_requests_served"), std::string::npos);

  // A second scrape after another query: served-request and query counters
  // only move up (monotonicity is what fleet dashboards rate() over).
  auto scrape_counter = [&](const std::string& text,
                            const std::string& name) -> long {
    const std::string needle = "\"" + name + "\":";
    const size_t pos = text.find(needle);
    if (pos == std::string::npos) return -1;
    return std::atol(text.c_str() + pos + needle.size());
  };
  const long served1 = scrape_counter(json1.text, "requests_served");
  (void)client.Query(7);
  const net::StatsResponse json2 = client.Stats(0);
  const long served2 = scrape_counter(json2.text, "requests_served");
  ASSERT_GE(served1, 0);
  ASSERT_GE(served2, 0);
  EXPECT_GT(served2, served1);
}

}  // namespace
}  // namespace pdbscan
