// Tests for the persistence layer (src/persist/): snapshot round trips in
// both load modes with bit-identical serving, corruption/truncation/version
// rejection, journal replay equivalence, crash-shaped recovery through
// PersistentClusterer, and the sharded spill/save path.
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <iterator>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "pdbscan/pdbscan.h"
#include "persist/format.h"
#include "testing_util.h"

namespace pdbscan {
namespace {

namespace fs = std::filesystem;
using testing::BlobPoints;
using testing::ExpectIdentical;

// A per-test scratch directory under the system temp dir, removed on exit.
class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_(fs::temp_directory_path() /
              ("pdbscan_persist_" + tag + "_" +
               std::to_string(::getpid()))) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  std::string File(const std::string& name) const {
    return (path_ / name).string();
  }
  std::string str() const { return path_.string(); }
  const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

std::vector<uint8_t> Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
}

void Dump(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

// Save -> load (both modes) -> Run + Sweep must be bit-identical to the
// live index, including min_pts beyond the shared-counts cap (which forces
// the per-context recount path — and, for kQuadtree configs, the rebuilt
// trees).
template <int D>
void CheckRoundTrip(const Options& options, const std::string& tag) {
  TempDir dir("roundtrip_" + tag + std::to_string(D));
  const auto pts = BlobPoints<D>(600, 4, 18.0, 0.8, /*seed=*/D * 31 + 7);
  const double epsilon = 1.0;
  const size_t cap = 16;
  auto live = CellIndex<D>::Build(pts, epsilon, cap, options);
  const std::string path = dir.File("index.pdbsnap");
  SaveIndex<D>(path, *live);

  QueryContext<D> live_ctx;
  for (const LoadMode mode : {LoadMode::kOwned, LoadMode::kMapped}) {
    const std::string mode_tag =
        tag + (mode == LoadMode::kMapped ? "/mapped" : "/owned");
    auto loaded = LoadIndex<D>(path, mode);
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(loaded->epsilon(), live->epsilon());
    EXPECT_EQ(loaded->counts_cap(), live->counts_cap());
    EXPECT_EQ(loaded->num_points(), live->num_points());
    EXPECT_EQ(loaded->num_cells(), live->num_cells());
    QueryContext<D> ctx;
    for (const size_t min_pts : {size_t{2}, size_t{8}, size_t{40}}) {
      ExpectIdentical(live_ctx.Run(live, min_pts), ctx.Run(loaded, min_pts),
                      mode_tag + " min_pts=" + std::to_string(min_pts));
    }
    const std::vector<size_t> sweep = {2, 5, 12, 33};
    const auto expect = live_ctx.Sweep(live, std::span<const size_t>(sweep));
    const auto got = ctx.Sweep(loaded, std::span<const size_t>(sweep));
    ASSERT_EQ(expect.size(), got.size());
    for (size_t i = 0; i < sweep.size(); ++i) {
      ExpectIdentical(expect[i], got[i],
                      mode_tag + " sweep@" + std::to_string(sweep[i]));
    }
    // EnginePool serves a loaded index like any other.
    EnginePool<D> pool(loaded);
    ExpectIdentical(live_ctx.Run(live, 8), pool.Run(8), mode_tag + " pool");
  }
}

TEST(SnapshotRoundTrip, Exact2d) { CheckRoundTrip<2>(OurExact(), "exact"); }
TEST(SnapshotRoundTrip, Exact3d) { CheckRoundTrip<3>(OurExact(), "exact"); }
TEST(SnapshotRoundTrip, Exact5d) { CheckRoundTrip<5>(OurExact(), "exact"); }
TEST(SnapshotRoundTrip, Approx2d) {
  CheckRoundTrip<2>(OurApprox(0.05), "approx");
}
TEST(SnapshotRoundTrip, Approx3d) {
  CheckRoundTrip<3>(OurApprox(0.05), "approx");
}
TEST(SnapshotRoundTrip, Approx5d) {
  CheckRoundTrip<5>(OurApprox(0.05), "approx");
}
TEST(SnapshotRoundTrip, ExactQuadtree2d) {
  // kQuadtree range counting: trees are rebuilt at load.
  CheckRoundTrip<2>(OurExactQt(), "exact-qt");
}
TEST(SnapshotRoundTrip, ApproxQuadtree3d) {
  CheckRoundTrip<3>(OurApproxQt(0.05), "approx-qt");
}
TEST(SnapshotRoundTrip, Box2d) { CheckRoundTrip<2>(Our2dBoxBcp(), "box"); }
TEST(SnapshotRoundTrip, Usec2d) { CheckRoundTrip<2>(Our2dGridUsec(), "usec"); }

TEST(SnapshotRoundTrip, EmptyIndex) {
  TempDir dir("empty");
  const std::vector<Point<2>> none;
  auto live = CellIndex<2>::Build(none, 1.0, 8);
  const std::string path = dir.File("empty.pdbsnap");
  SaveIndex<2>(path, *live);
  for (const LoadMode mode : {LoadMode::kOwned, LoadMode::kMapped}) {
    auto loaded = LoadIndex<2>(path, mode);
    EXPECT_EQ(loaded->num_points(), 0u);
    QueryContext<2> ctx;
    EXPECT_EQ(ctx.Run(loaded, 3).size(), 0u);
  }
}

TEST(SnapshotRoundTrip, MappedIndexSurvivesFileUnlink) {
  // The index pins the mapping: POSIX keeps mapped pages valid after the
  // directory entry is gone, so serving continues.
  TempDir dir("unlink");
  const auto pts = BlobPoints<2>(400, 3, 15.0, 0.7, 99);
  auto live = CellIndex<2>::Build(pts, 1.0, 16);
  const std::string path = dir.File("index.pdbsnap");
  SaveIndex<2>(path, *live);
  auto loaded = LoadIndex<2>(path, LoadMode::kMapped);
  fs::remove(path);
  QueryContext<2> ctx, live_ctx;
  ExpectIdentical(live_ctx.Run(live, 6), ctx.Run(loaded, 6),
                  "post-unlink mapped serve");
}

TEST(SnapshotRoundTrip, PeekReportsHeader) {
  TempDir dir("peek");
  const auto pts = BlobPoints<3>(300, 3, 12.0, 0.6, 5);
  auto live = CellIndex<3>::Build(pts, 1.5, 32, OurApprox(0.02));
  const std::string path = dir.File("index.pdbsnap");
  SaveIndex<3>(path, *live);
  const SnapshotInfo info = PeekSnapshot(path);
  EXPECT_EQ(info.dim, 3);
  EXPECT_EQ(info.num_points, 300u);
  EXPECT_EQ(info.epsilon, 1.5);
  EXPECT_EQ(info.counts_cap, 32u);
  EXPECT_FALSE(info.has_stream_state);
  EXPECT_EQ(info.options.connect_method, ConnectMethod::kApproxQuadtree);
  EXPECT_EQ(info.options.rho, 0.02);
  EXPECT_EQ(info.file_bytes, persist::FileBytes(path));
}

class SnapshotRejection : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>("reject");
    const auto pts = BlobPoints<2>(500, 4, 16.0, 0.7, 11);
    auto live = CellIndex<2>::Build(pts, 1.0, 16);
    path_ = dir_->File("index.pdbsnap");
    SaveIndex<2>(path_, *live);
    bytes_ = Slurp(path_);
    ASSERT_GT(bytes_.size(), sizeof(persist::SnapshotHeader));
  }

  void ExpectRejected(const std::string& why) {
    for (const LoadMode mode : {LoadMode::kOwned, LoadMode::kMapped}) {
      EXPECT_THROW((void)LoadIndex<2>(path_, mode), PersistError) << why;
    }
  }

  std::unique_ptr<TempDir> dir_;
  std::string path_;
  std::vector<uint8_t> bytes_;
};

TEST_F(SnapshotRejection, CorruptedPayloadByte) {
  auto corrupt = bytes_;
  corrupt[sizeof(persist::SnapshotHeader) + 192] ^= 0x40;
  Dump(path_, corrupt);
  ExpectRejected("flipped payload byte");
}

TEST_F(SnapshotRejection, CorruptedHeaderByte) {
  auto corrupt = bytes_;
  corrupt[offsetof(persist::SnapshotHeader, num_points)] ^= 0x01;
  Dump(path_, corrupt);
  ExpectRejected("flipped header byte");
}

TEST_F(SnapshotRejection, TruncatedFile) {
  for (const size_t keep :
       {bytes_.size() - 1, bytes_.size() / 2, sizeof(persist::SnapshotHeader),
        size_t{17}, size_t{0}}) {
    Dump(path_, std::vector<uint8_t>(bytes_.begin(),
                                     bytes_.begin() +
                                         static_cast<ptrdiff_t>(keep)));
    ExpectRejected("truncated to " + std::to_string(keep));
  }
}

TEST_F(SnapshotRejection, TrailingJunk) {
  auto extended = bytes_;
  extended.insert(extended.end(), {1, 2, 3, 4});
  Dump(path_, extended);
  ExpectRejected("trailing junk");
}

TEST_F(SnapshotRejection, VersionMismatch) {
  // A genuinely future version (header checksum recomputed so the version
  // check itself is what fires).
  auto skewed = bytes_;
  persist::SnapshotHeader h;
  std::memcpy(&h, skewed.data(), sizeof(h));
  h.version = persist::kSnapshotVersion + 1;
  h.header_checksum = 0;
  h.header_checksum = persist::Checksum64(&h, sizeof(h));
  std::memcpy(skewed.data(), &h, sizeof(h));
  Dump(path_, skewed);
  try {
    (void)LoadIndex<2>(path_);
    FAIL() << "future version accepted";
  } catch (const PersistError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST_F(SnapshotRejection, DimensionMismatch) {
  EXPECT_THROW((void)LoadIndex<3>(path_), PersistError);
  EXPECT_EQ(PeekSnapshot(path_).dim, 2);  // Peek + dispatch is the remedy.
}

TEST_F(SnapshotRejection, ForeignFile) {
  Dump(path_, std::vector<uint8_t>(4096, 0x5a));
  ExpectRejected("foreign bytes");
  EXPECT_THROW((void)PeekSnapshot(path_), PersistError);
}

// --- Streaming checkpoints and the journal. --------------------------------

template <int D>
std::vector<Point<D>> Batch(size_t n, uint64_t seed) {
  return BlobPoints<D>(n, 3, 14.0, 0.9, seed);
}

TEST(StreamCheckpoint, RestoreContinuesBitIdentically) {
  TempDir dir("restore");
  dbscan::PipelineStats stats;
  DynamicCellIndex<3> live(1.0, 16, Options(), &stats);
  live.ApplyUpdates(Batch<3>(300, 1), {});
  const std::vector<uint64_t> erase = {3, 77, 150};
  live.ApplyUpdates(Batch<3>(100, 2), erase);

  const std::string path = dir.File("ckpt.pdbsnap");
  SnapshotWriter<3>::Write(path, *live.snapshot(), live.LiveIds(),
                           live.next_id(), /*journal_generation=*/5);

  for (const LoadMode mode : {LoadMode::kOwned, LoadMode::kMapped}) {
    auto loaded = SnapshotReader<3>::Load(path, mode);
    ASSERT_TRUE(loaded.has_stream_state);
    EXPECT_EQ(loaded.next_id, live.next_id());
    EXPECT_EQ(loaded.journal_generation, 5u);
    EXPECT_EQ(loaded.live_ids, live.LiveIds());
    DynamicCellIndex<3> restored(loaded.index,
                                 std::span<const uint64_t>(loaded.live_ids),
                                 loaded.next_id);
    QueryContext<3> ca, cb;
    ExpectIdentical(ca.Run(live.snapshot(), 6), cb.Run(restored.snapshot(), 6),
                    "restored snapshot");
    // The restored writer must evolve exactly like the uninterrupted one.
    DynamicCellIndex<3> reference(1.0, 16);
    reference.ApplyUpdates(Batch<3>(300, 1), {});
    reference.ApplyUpdates(Batch<3>(100, 2), erase);
    const std::vector<uint64_t> erase2 = {200, 201, 399};
    reference.ApplyUpdates(Batch<3>(80, 9), erase2);
    restored.ApplyUpdates(Batch<3>(80, 9), erase2);
    EXPECT_EQ(restored.LiveIds(), reference.LiveIds());
    ExpectIdentical(ca.Run(reference.snapshot(), 6),
                    cb.Run(restored.snapshot(), 6),
                    "restored writer after further updates");
  }
}

TEST(StreamCheckpoint, RestoreRejectsNonStreamingSnapshots) {
  // A CellIndex::Build snapshot is anchored at the dataset bounds, not the
  // origin — restoring streaming state from it must fail loudly.
  TempDir dir("restore_reject");
  const auto pts = BlobPoints<2>(200, 3, 9.0, 0.5, 3);
  auto built = CellIndex<2>::Build(pts, 1.0, 16);
  std::vector<uint64_t> fake_ids(pts.size());
  for (size_t i = 0; i < fake_ids.size(); ++i) fake_ids[i] = i;
  EXPECT_THROW(DynamicCellIndex<2>(built,
                                   std::span<const uint64_t>(fake_ids),
                                   fake_ids.size()),
               std::invalid_argument);
}

TEST(Journal, ReplayEqualsUninterruptedRun) {
  TempDir dir("replay");
  const std::string jpath = dir.File("updates.pdbjnl");
  Options options;  // Grid + kScan.
  dbscan::PipelineStats stats;
  UpdateJournal<2> journal(jpath, 0.8, 16, options, /*generation=*/0,
                           FsyncPolicy::kEveryBatch, &stats);
  DynamicCellIndex<2> live(0.8, 16, options);
  live.set_journal(&journal);
  std::mt19937_64 rng(42);
  std::vector<uint64_t> alive;
  for (int b = 0; b < 6; ++b) {
    const auto inserts = Batch<2>(60 + 10 * b, 100 + b);
    std::vector<uint64_t> erases;
    for (const uint64_t id : alive) {
      if (rng() % 5 == 0) erases.push_back(id);
    }
    const uint64_t first = live.ApplyUpdates(inserts, erases);
    for (const uint64_t id : erases) {
      alive.erase(std::find(alive.begin(), alive.end(), id));
    }
    for (size_t k = 0; k < inserts.size(); ++k) alive.push_back(first + k);
  }

  // Recovery: an empty writer + full journal replay.
  const auto scan = UpdateJournal<2>::Scan(jpath, &stats);
  EXPECT_FALSE(scan.truncated_tail);
  ASSERT_EQ(scan.records.size(), 6u);
  UpdateJournal<2>::RequireMatch(jpath, scan, 0.8, 16, options);
  DynamicCellIndex<2> recovered(0.8, 16, options);
  for (const auto& rec : scan.records) {
    const uint64_t first = recovered.ApplyUpdates(
        std::span<const Point<2>>(rec.inserts),
        std::span<const uint64_t>(rec.erases));
    EXPECT_EQ(first, rec.first_id);
  }
  EXPECT_EQ(recovered.LiveIds(), live.LiveIds());
  QueryContext<2> ca, cb;
  for (const size_t min_pts : {size_t{2}, size_t{6}, size_t{25}}) {
    ExpectIdentical(ca.Run(live.snapshot(), min_pts),
                    cb.Run(recovered.snapshot(), min_pts),
                    "journal replay min_pts=" + std::to_string(min_pts));
  }
}

TEST(Journal, TornTailToleratedMidCorruptionRejected) {
  TempDir dir("torn");
  const std::string jpath = dir.File("updates.pdbjnl");
  Options options;
  {
    UpdateJournal<2> journal(jpath, 1.0, 8, options);
    DynamicCellIndex<2> live(1.0, 8, options);
    live.set_journal(&journal);
    for (int b = 0; b < 3; ++b) live.ApplyUpdates(Batch<2>(50, b), {});
  }
  const auto full = Slurp(jpath);

  // Torn tail: drop the last 11 bytes — the final record is incomplete,
  // the first two replay.
  Dump(jpath, std::vector<uint8_t>(full.begin(), full.end() - 11));
  auto scan = UpdateJournal<2>::Scan(jpath);
  EXPECT_TRUE(scan.truncated_tail);
  EXPECT_EQ(scan.records.size(), 2u);

  // Re-opening for append truncates the torn tail and keeps going.
  {
    UpdateJournal<2> journal(jpath, 1.0, 8, options);
    DynamicCellIndex<2> live(1.0, 8, options);
    live.set_journal(&journal);
    live.ApplyUpdates(Batch<2>(20, 77), {});
  }
  scan = UpdateJournal<2>::Scan(jpath);
  EXPECT_FALSE(scan.truncated_tail);
  EXPECT_EQ(scan.records.size(), 3u);

  // Mid-file corruption (a byte inside the FIRST record, with records
  // after it) must throw, not silently truncate.
  auto corrupt = full;
  corrupt[sizeof(persist::JournalHeader) + sizeof(persist::JournalRecordHeader) +
          5] ^= 0x80;
  Dump(jpath, corrupt);
  EXPECT_THROW((void)UpdateJournal<2>::Scan(jpath), PersistError);
}

TEST(Journal, ConfigMismatchRejected) {
  TempDir dir("mismatch");
  const std::string jpath = dir.File("updates.pdbjnl");
  Options options;
  UpdateJournal<2> journal(jpath, 1.0, 8, options);
  const auto scan = UpdateJournal<2>::Scan(jpath);
  EXPECT_THROW(UpdateJournal<2>::RequireMatch(jpath, scan, 2.0, 8, options),
               PersistError);
  EXPECT_THROW(UpdateJournal<2>::RequireMatch(jpath, scan, 1.0, 9, options),
               PersistError);
  Options core = options;
  core.core_only = true;
  EXPECT_THROW(UpdateJournal<2>::RequireMatch(jpath, scan, 1.0, 8, core),
               PersistError);
  // And a dimension-skewed reader never gets that far.
  EXPECT_THROW((void)UpdateJournal<3>::Scan(jpath), PersistError);
}

// --- PersistentClusterer: end-to-end recovery. ------------------------------

TEST(PersistentClusterer, RecoveryMatchesUninterruptedRun) {
  TempDir dir("pc");
  const double eps = 0.9;
  const size_t cap = 16;
  // The uninterrupted reference.
  StreamingClusterer<2> reference(eps, cap);
  auto feed = [](auto& target, int b) {
    const auto inserts = Batch<2>(70 + 5 * b, 1000 + b);
    std::vector<uint64_t> erases;
    if (b >= 2) erases = {static_cast<uint64_t>(3 * b),
                          static_cast<uint64_t>(3 * b + 1)};
    target.ApplyUpdates(std::span<const Point<2>>(inserts),
                        std::span<const uint64_t>(erases));
  };

  size_t replay_expected = 0;
  {
    PersistentClusterer<2> live(dir.path().string(), eps, cap);
    EXPECT_FALSE(live.recovered_from_snapshot());
    for (int b = 0; b < 3; ++b) {
      feed(live, b);
      feed(reference, b);
    }
    live.Checkpoint();
    for (int b = 3; b < 6; ++b) {
      feed(live, b);
      feed(reference, b);
      ++replay_expected;
    }
    // `live` dies here without another checkpoint — the "crash".
  }

  for (const LoadMode mode : {LoadMode::kOwned, LoadMode::kMapped}) {
    PersistOptions popts;
    popts.load_mode = mode;
    PersistentClusterer<2> recovered(dir.path().string(), eps, cap, Options(),
                                     popts);
    EXPECT_TRUE(recovered.recovered_from_snapshot());
    EXPECT_EQ(recovered.records_replayed(), replay_expected);
    EXPECT_EQ(recovered.LiveIds(), reference.LiveIds());
    for (const size_t min_pts : {size_t{3}, size_t{8}, size_t{30}}) {
      ExpectIdentical(reference.Run(min_pts), recovered.Run(min_pts),
                      "recovered run min_pts=" + std::to_string(min_pts));
    }
  }

  // Recovery is repeatable AND the recovered instance keeps evolving
  // bit-identically (checkpoint, more updates, recover again).
  {
    PersistentClusterer<2> recovered(dir.path().string(), eps, cap);
    recovered.Checkpoint();
    feed(recovered, 6);
    feed(reference, 6);
    ExpectIdentical(reference.Run(5), recovered.Run(5), "post-checkpoint");
  }
  {
    PersistentClusterer<2> again(dir.path().string(), eps, cap);
    EXPECT_EQ(again.records_replayed(), 1u);
    EXPECT_EQ(again.LiveIds(), reference.LiveIds());
    ExpectIdentical(reference.Run(5), again.Run(5), "second recovery");
  }
}

TEST(PersistentClusterer, StaleJournalAfterCheckpointCrashIsDropped) {
  // Simulate a crash BETWEEN the two checkpoint steps: snapshot written at
  // generation G+1, journal still holding generation G's records. Recovery
  // must not double-apply them.
  TempDir dir("pc_stale");
  StreamingClusterer<2> reference(1.0, 8);
  {
    PersistentClusterer<2> live(dir.path().string(), 1.0, 8);
    const auto batch = Batch<2>(120, 5);
    live.Insert(batch);
    reference.Insert(batch);
    // Snapshot at generation 1 WITHOUT resetting the journal (the crash):
    SnapshotWriter<2>::Write(dir.File("index.pdbsnap"), *live.snapshot(),
                             live.LiveIds(), live.next_id(),
                             /*journal_generation=*/1);
  }
  PersistentClusterer<2> recovered(dir.path().string(), 1.0, 8);
  EXPECT_TRUE(recovered.recovered_from_snapshot());
  EXPECT_EQ(recovered.records_replayed(), 0u);  // Not double-applied.
  EXPECT_EQ(recovered.LiveIds(), reference.LiveIds());
  ExpectIdentical(reference.Run(4), recovered.Run(4), "stale journal");
  // And the journal was advanced to the snapshot's epoch.
  EXPECT_EQ(recovered.generation(), 1u);
}

TEST(PersistentClusterer, TornJournalHeaderIsReinitialized) {
  // Crash during the checkpoint's journal reset can leave a sub-header
  // file; such a file can hold no records, so recovery reinitializes it at
  // the snapshot's epoch instead of failing forever.
  TempDir dir("pc_torn_header");
  {
    PersistentClusterer<2> live(dir.path().string(), 1.0, 8);
    live.Insert(Batch<2>(60, 2));
    live.Checkpoint();  // Generation 1.
  }
  Dump(dir.File("updates.pdbjnl"), {0x50, 0x44, 0x42, 0x53});
  PersistentClusterer<2> recovered(dir.path().string(), 1.0, 8);
  EXPECT_TRUE(recovered.recovered_from_snapshot());
  EXPECT_EQ(recovered.records_replayed(), 0u);
  EXPECT_EQ(recovered.generation(), 1u);
  EXPECT_EQ(recovered.num_points(), 60u);
  recovered.Insert(Batch<2>(10, 3));  // The journal is usable again.
  PersistentClusterer<2> again(dir.path().string(), 1.0, 8);
  EXPECT_EQ(again.records_replayed(), 1u);
  EXPECT_EQ(again.num_points(), 70u);
}

TEST(PersistentClusterer, ConfigMismatchRejected) {
  TempDir dir("pc_config");
  {
    PersistentClusterer<2> live(dir.path().string(), 1.0, 8);
    live.Insert(Batch<2>(50, 1));
    live.Checkpoint();
  }
  EXPECT_THROW(PersistentClusterer<2>(dir.path().string(), 2.0, 8),
               PersistError);
  EXPECT_THROW(PersistentClusterer<2>(dir.path().string(), 1.0, 16),
               PersistError);
}

// --- Sharded spill + merged save. ------------------------------------------

TEST(ShardedPersist, SpillsShardsAndSavesMergedOnce) {
  TempDir dir("sharded");
  const auto pts = BlobPoints<2>(900, 5, 24.0, 0.8, 77);
  const double eps = 0.9;
  const size_t cap = 16;
  ShardedCellIndex<2> sharded(std::span<const Point<2>>(pts), eps, cap,
                              /*num_shards=*/4, dir.path().string());
  const auto& info = sharded.build_info();
  ASSERT_EQ(info.spill_paths.size(), sharded.num_shards());
  size_t spilled_points = 0;
  for (const std::string& spill : info.spill_paths) {
    const SnapshotInfo peek = PeekSnapshot(spill);  // Parses + validates.
    EXPECT_EQ(peek.dim, 2);
    EXPECT_EQ(peek.epsilon, eps);
    spilled_points += peek.num_points;
    // Spill files are complete, loadable snapshots of their shard.
    auto shard = LoadIndex<2>(spill, LoadMode::kMapped);
    EXPECT_EQ(shard->epsilon(), eps);
  }
  EXPECT_EQ(spilled_points, pts.size());

  // The merged index saves once and serves identically after a reload.
  const std::string merged_path = dir.File("merged.pdbsnap");
  sharded.Save(merged_path);
  QueryContext<2> ctx, ref_ctx;
  const auto expected = ref_ctx.Run(sharded.index(), 7);
  for (const LoadMode mode : {LoadMode::kOwned, LoadMode::kMapped}) {
    auto loaded = LoadIndex<2>(merged_path, mode);
    ExpectIdentical(expected, ctx.Run(loaded, 7), "merged reload");
  }
  // And the unsharded oracle agrees (exact config).
  ExpectIdentical(Dbscan<2>(pts, eps, 7), expected, "sharded oracle");
}

// --- Stats plumbing. --------------------------------------------------------

TEST(PersistStats, BytesAndLoadSecondsAreCounted) {
  TempDir dir("stats");
  const auto pts = BlobPoints<2>(300, 3, 12.0, 0.6, 8);
  auto live = CellIndex<2>::Build(pts, 1.0, 8);
  const std::string path = dir.File("index.pdbsnap");
  dbscan::PipelineStats stats;
  SaveIndex<2>(path, *live, &stats);
  const uint64_t file_bytes = persist::FileBytes(path);
  EXPECT_EQ(stats.snapshot_bytes_written.load(), file_bytes);
  (void)LoadIndex<2>(path, LoadMode::kMapped, &stats);
  EXPECT_EQ(stats.snapshot_bytes_read.load(), file_bytes);
  EXPECT_GT(stats.snapshot_load_seconds.load(), 0.0);
}

// --- Journal segments (the replication log of net/replication.h). -----------

TEST(JournalSegments, ListingFiltersForeignFilesAndSorts) {
  TempDir dir("seglist");
  for (const char* name :
       {"journal-10.pdbjnl", "journal-2.pdbjnl", "journal-0.pdbjnl"}) {
    Dump(dir.File(name), {});
  }
  // Foreign and malformed names must be ignored.
  for (const char* name :
       {"checkpoint-3.pdbsnap", "journal-.pdbjnl", "journal-x7.pdbjnl",
        "journal-5.pdbjnl.tmp", "notes.txt"}) {
    Dump(dir.File(name), {});
  }
  const auto segments = persist::ListJournalSegments(dir.str());
  ASSERT_EQ(segments.size(), 3u);
  EXPECT_EQ(segments[0].start_seq, 0u);
  EXPECT_EQ(segments[1].start_seq, 2u);
  EXPECT_EQ(segments[2].start_seq, 10u);
  EXPECT_TRUE(persist::ListJournalSegments(dir.File("missing")).empty());
}

TEST(JournalSegments, ListSegmentsSinceKeepsTheCoveringSegment) {
  TempDir dir("segsince");
  for (const char* name :
       {"journal-0.pdbjnl", "journal-5.pdbjnl", "journal-9.pdbjnl"}) {
    Dump(dir.File(name), {});
  }
  auto starts = [&](uint64_t seq) {
    std::vector<uint64_t> out;
    for (const auto& s : persist::ListSegmentsSince(dir.str(), seq)) {
      out.push_back(s.start_seq);
    }
    return out;
  };
  // A reader at seq 4 still needs journal-0 (it holds records 1..5).
  EXPECT_EQ(starts(4), (std::vector<uint64_t>{0, 5, 9}));
  // At seq 5 the covering segment is journal-5.
  EXPECT_EQ(starts(5), (std::vector<uint64_t>{5, 9}));
  EXPECT_EQ(starts(7), (std::vector<uint64_t>{5, 9}));
  // Far ahead: only the newest segment remains relevant.
  EXPECT_EQ(starts(100), (std::vector<uint64_t>{9}));
}

TEST(JournalSegments, PruneCoversOldSegmentsNeverTheNewest) {
  TempDir dir("segprune");
  for (const char* name :
       {"journal-0.pdbjnl", "journal-3.pdbjnl", "journal-6.pdbjnl"}) {
    Dump(dir.File(name), {});
  }
  // A checkpoint at seq 3 fully covers journal-0 (records 1..3) only.
  EXPECT_EQ(persist::PruneSegmentsBefore(dir.str(), 3), 1u);
  auto segments = persist::ListJournalSegments(dir.str());
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_EQ(segments.front().start_seq, 3u);
  // Even a checkpoint past everything keeps the active tail.
  EXPECT_EQ(persist::PruneSegmentsBefore(dir.str(), 100), 1u);
  segments = persist::ListJournalSegments(dir.str());
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments.front().start_seq, 6u);
}

TEST(JournalSegments, RotationProducesAReplayableChain) {
  TempDir dir("segrotate");
  Options options;
  persist::SegmentedJournal<2> journal(dir.str(), 0.8, 16, options,
                                       /*seq=*/0, /*active_start=*/0,
                                       /*rotate_bytes=*/512);
  DynamicCellIndex<2> live(0.8, 16, options);
  live.set_journal(journal.current());
  for (int b = 0; b < 6; ++b) {
    live.ApplyUpdates(Batch<2>(60, 700 + b), {});
    if (journal.OnBatchApplied()) live.set_journal(journal.current());
  }
  EXPECT_EQ(journal.seq(), 6u);

  // Several segments, each whose header generation matches its file name.
  const auto segments = persist::ListJournalSegments(dir.str());
  ASSERT_GT(segments.size(), 1u);
  size_t total_records = 0;
  for (const auto& seg : segments) {
    const auto scan = UpdateJournal<2>::Scan(seg.path);
    EXPECT_EQ(scan.generation, seg.start_seq) << seg.path;
    EXPECT_FALSE(scan.truncated_tail) << seg.path;
    total_records += scan.records.size();
  }
  EXPECT_EQ(total_records, 6u);

  // Replaying the chain in order reproduces the writer's state exactly.
  DynamicCellIndex<2> recovered(0.8, 16, options);
  for (const auto& seg : segments) {
    const auto scan = UpdateJournal<2>::Scan(seg.path);
    UpdateJournal<2>::RequireMatch(seg.path, scan, 0.8, 16, options);
    for (const auto& rec : scan.records) {
      EXPECT_EQ(recovered.ApplyUpdates(
                    std::span<const Point<2>>(rec.inserts),
                    std::span<const uint64_t>(rec.erases)),
                rec.first_id);
    }
  }
  EXPECT_EQ(recovered.LiveIds(), live.LiveIds());
  QueryContext<2> ca, cb;
  ExpectIdentical(ca.Run(live.snapshot(), 4), cb.Run(recovered.snapshot(), 4),
                  "segment chain replay");
}

TEST(JournalSegments, ReopenResumesTheActiveSegment) {
  TempDir dir("segreopen");
  Options options;
  std::vector<uint64_t> live_ids;
  {
    persist::SegmentedJournal<2> journal(dir.str(), 0.8, 16, options, 0, 0,
                                         /*rotate_bytes=*/512);
    DynamicCellIndex<2> live(0.8, 16, options);
    live.set_journal(journal.current());
    for (int b = 0; b < 3; ++b) {
      live.ApplyUpdates(Batch<2>(60, 800 + b), {});
      if (journal.OnBatchApplied()) live.set_journal(journal.current());
    }
    live_ids = live.LiveIds();
  }
  // A new process resumes: seq from its recovery, active segment = last on
  // disk. Appends continue the same chain.
  const auto before = persist::ListJournalSegments(dir.str());
  ASSERT_FALSE(before.empty());
  persist::SegmentedJournal<2> journal(dir.str(), 0.8, 16, options,
                                       /*seq=*/3,
                                       before.back().start_seq,
                                       /*rotate_bytes=*/512);
  DynamicCellIndex<2> live(0.8, 16, options);
  // Rebuild the writer state by replay, then keep appending.
  for (const auto& seg : persist::ListJournalSegments(dir.str())) {
    const auto scan = UpdateJournal<2>::Scan(seg.path);
    for (const auto& rec : scan.records) {
      live.ApplyUpdates(std::span<const Point<2>>(rec.inserts),
                        std::span<const uint64_t>(rec.erases));
    }
  }
  ASSERT_EQ(live.LiveIds(), live_ids);
  live.set_journal(journal.current());
  live.ApplyUpdates(Batch<2>(60, 803), {});
  journal.OnBatchApplied();
  EXPECT_EQ(journal.seq(), 4u);
  size_t total_records = 0;
  for (const auto& seg : persist::ListJournalSegments(dir.str())) {
    total_records += UpdateJournal<2>::Scan(seg.path).records.size();
  }
  EXPECT_EQ(total_records, 4u);
}

// SegmentedJournal refuses an active segment ahead of the sequence — that
// would fabricate history.
TEST(JournalSegments, ActiveStartAheadOfSequenceRejected) {
  TempDir dir("segbad");
  Options options;
  EXPECT_THROW(persist::SegmentedJournal<2>(dir.str(), 0.8, 16, options,
                                            /*seq=*/2, /*active_start=*/5,
                                            512),
               persist::PersistError);
}

}  // namespace
}  // namespace pdbscan
