// Tests for the concurrent containers: phase-concurrent hash table and
// lock-free union-find.
#include <algorithm>
#include <atomic>
#include <numeric>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "containers/hash_table.h"
#include "containers/union_find.h"
#include "parallel/scheduler.h"
#include "primitives/random.h"

namespace pdbscan {
namespace {

using parallel::ScopedNumWorkers;

struct U64Hash {
  uint64_t operator()(uint64_t k) const { return primitives::Hash64(k); }
};
struct U64Eq {
  bool operator()(uint64_t a, uint64_t b) const { return a == b; }
};
using Map = containers::ConcurrentMap<uint64_t, uint64_t, U64Hash, U64Eq>;

TEST(HashTable, InsertThenFind) {
  Map map(100);
  for (uint64_t k = 0; k < 100; ++k) {
    EXPECT_TRUE(map.Insert(k, k * 10));
  }
  EXPECT_EQ(map.size(), 100u);
  for (uint64_t k = 0; k < 100; ++k) {
    const uint64_t* v = map.Find(k);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, k * 10);
  }
  EXPECT_EQ(map.Find(1000), nullptr);
}

TEST(HashTable, DuplicateInsertKeepsFirstValue) {
  Map map(10);
  EXPECT_TRUE(map.Insert(7, 1));
  EXPECT_FALSE(map.Insert(7, 2));
  EXPECT_EQ(*map.Find(7), 1u);
  EXPECT_EQ(map.size(), 1u);
}

TEST(HashTable, ParallelInsertsAllLand) {
  ScopedNumWorkers scope(8);
  const size_t n = 100000;
  Map map(n);
  parallel::parallel_for(0, n, [&](size_t i) {
    map.Insert(static_cast<uint64_t>(i), static_cast<uint64_t>(i) + 1);
  });
  EXPECT_EQ(map.size(), n);
  std::atomic<size_t> bad(0);
  parallel::parallel_for(0, n, [&](size_t i) {
    const uint64_t* v = map.Find(static_cast<uint64_t>(i));
    if (v == nullptr || *v != i + 1) bad.fetch_add(1);
  });
  EXPECT_EQ(bad.load(), 0u);
}

TEST(HashTable, ParallelDuplicateInsertsKeepOneWinner) {
  ScopedNumWorkers scope(8);
  Map map(64);
  // 10000 concurrent inserts on 64 keys: exactly 64 must win.
  std::atomic<size_t> winners(0);
  parallel::parallel_for(0, 10000, [&](size_t i) {
    if (map.Insert(static_cast<uint64_t>(i % 64), static_cast<uint64_t>(i))) {
      winners.fetch_add(1);
    }
  });
  EXPECT_EQ(winners.load(), 64u);
  EXPECT_EQ(map.size(), 64u);
}

TEST(HashTable, ForEachVisitsEveryEntryOnce) {
  Map map(1000);
  for (uint64_t k = 0; k < 1000; ++k) map.Insert(k * 3, k);
  std::vector<uint64_t> keys;
  map.ForEach([&](uint64_t k, uint64_t) { keys.push_back(k); });
  std::sort(keys.begin(), keys.end());
  ASSERT_EQ(keys.size(), 1000u);
  for (uint64_t k = 0; k < 1000; ++k) EXPECT_EQ(keys[k], k * 3);
}

TEST(UnionFind, BasicLinkAndFind) {
  containers::UnionFind uf(10);
  EXPECT_NE(uf.Find(1), uf.Find(2));
  EXPECT_TRUE(uf.Link(1, 2));
  EXPECT_EQ(uf.Find(1), uf.Find(2));
  EXPECT_FALSE(uf.Link(2, 1));  // Already joined.
  EXPECT_TRUE(uf.SameSet(1, 2));
  EXPECT_FALSE(uf.SameSet(1, 3));
}

TEST(UnionFind, RootIsMinimumOfComponent) {
  containers::UnionFind uf(100);
  uf.Link(50, 10);
  uf.Link(10, 70);
  uf.Link(99, 70);
  EXPECT_EQ(uf.Find(50), 10u);
  EXPECT_EQ(uf.Find(99), 10u);
  EXPECT_EQ(uf.Find(70), 10u);
}

TEST(UnionFind, ChainMatchesSerialReference) {
  const size_t n = 5000;
  containers::UnionFind uf(n);
  std::mt19937 rng(5);
  std::vector<std::pair<size_t, size_t>> links;
  for (size_t i = 0; i < n; ++i) {
    links.push_back({rng() % n, rng() % n});
  }
  // Serial reference with simple DSU.
  std::vector<size_t> parent(n);
  std::iota(parent.begin(), parent.end(), 0u);
  std::function<size_t(size_t)> find = [&](size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (auto [a, b] : links) {
    uf.Link(a, b);
    const size_t ra = find(a), rb = find(b);
    if (ra != rb) parent[std::max(ra, rb)] = std::min(ra, rb);
  }
  for (size_t i = 0; i < n; ++i) {
    for (size_t j : {(i * 7) % n, (i + 13) % n}) {
      EXPECT_EQ(uf.SameSet(i, j), find(i) == find(j));
    }
  }
}

TEST(UnionFind, ConcurrentLinksFormExpectedComponents) {
  ScopedNumWorkers scope(8);
  const size_t n = 100000;
  containers::UnionFind uf(n);
  // Link i with i+2: two components (evens, odds).
  parallel::parallel_for(0, n - 2, [&](size_t i) { uf.Link(i, i + 2); });
  const size_t even_root = uf.Find(0);
  const size_t odd_root = uf.Find(1);
  EXPECT_NE(even_root, odd_root);
  std::atomic<size_t> bad(0);
  parallel::parallel_for(0, n, [&](size_t i) {
    if (uf.Find(i) != (i % 2 == 0 ? even_root : odd_root)) bad.fetch_add(1);
  });
  EXPECT_EQ(bad.load(), 0u);
}

TEST(UnionFind, ConcurrentRandomLinksMatchSerialPartition) {
  ScopedNumWorkers scope(8);
  const size_t n = 20000;
  std::mt19937 rng(17);
  std::vector<std::pair<size_t, size_t>> links(n);
  for (auto& l : links) l = {rng() % n, rng() % n};

  containers::UnionFind concurrent(n);
  parallel::parallel_for(0, links.size(), [&](size_t i) {
    concurrent.Link(links[i].first, links[i].second);
  });
  containers::UnionFind serial(n);
  for (auto [a, b] : links) serial.Link(a, b);

  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(concurrent.Find(i), serial.Find(i)) << i;
  }
}

}  // namespace
}  // namespace pdbscan
