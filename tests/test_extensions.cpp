// Tests for the extension modules: OPTICS (hierarchical DBSCAN, the paper's
// stated future work) and k-distance parameter selection.
#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "dbscan/verify.h"
#include "extensions/kdist.h"
#include "extensions/optics.h"
#include "pdbscan/pdbscan.h"

namespace pdbscan {
namespace {

using extensions::ExtractDbscanClustering;
using extensions::KDistances;
using extensions::Optics;
using extensions::OpticsResult;
using geometry::Point;

template <int D>
std::vector<Point<D>> BlobPoints(size_t n, size_t blobs, double side,
                                 double sigma, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coord(0.0, side);
  std::normal_distribution<double> gauss(0.0, sigma);
  std::vector<Point<D>> centers(blobs);
  for (auto& c : centers) {
    for (int k = 0; k < D; ++k) c[k] = coord(rng);
  }
  std::vector<Point<D>> pts(n);
  for (size_t i = 0; i < n; ++i) {
    if (i % 10 == 9) {
      for (int k = 0; k < D; ++k) pts[i][k] = coord(rng);
    } else {
      const auto& c = centers[i % blobs];
      for (int k = 0; k < D; ++k) pts[i][k] = c[k] + gauss(rng);
    }
  }
  return pts;
}

TEST(Optics, OrderIsAPermutation) {
  auto pts = BlobPoints<2>(500, 3, 20.0, 0.8, 1);
  const auto result = Optics<2>(pts, 2.0, 5);
  ASSERT_EQ(result.order.size(), pts.size());
  std::vector<uint8_t> seen(pts.size(), 0);
  for (const uint32_t p : result.order) {
    ASSERT_LT(p, pts.size());
    ASSERT_EQ(seen[p], 0);
    seen[p] = 1;
  }
}

TEST(Optics, CoreDistancesMatchBruteForce) {
  auto pts = BlobPoints<2>(300, 3, 15.0, 0.8, 2);
  const double eps = 1.5;
  const size_t min_pts = 6;
  const auto result = Optics<2>(pts, eps, min_pts);
  for (size_t i = 0; i < pts.size(); ++i) {
    std::vector<double> dists;
    for (size_t j = 0; j < pts.size(); ++j) {
      const double d = pts[i].Distance(pts[j]);
      if (d <= eps) dists.push_back(d);
    }
    std::sort(dists.begin(), dists.end());
    if (dists.size() >= min_pts) {
      ASSERT_NEAR(result.core_distance[i], dists[min_pts - 1], 1e-12) << i;
    } else {
      ASSERT_EQ(result.core_distance[i], OpticsResult::kUndefined) << i;
    }
  }
}

TEST(Optics, ReachabilityLowerBoundedByCoreDistanceOfPredecessors) {
  auto pts = BlobPoints<2>(400, 4, 20.0, 0.7, 3);
  const auto result = Optics<2>(pts, 2.0, 5);
  // Every defined reachability is at least the minimum pairwise distance
  // and at most epsilon (reachability beyond eps is never assigned).
  for (size_t i = 0; i < pts.size(); ++i) {
    const double r = result.reachability[i];
    if (r == OpticsResult::kUndefined) continue;
    ASSERT_GE(r, 0.0);
    ASSERT_LE(r, 2.0 + 1e-12);
  }
}

// The headline OPTICS property: one run at epsilon answers DBSCAN at every
// smaller epsilon'. The extracted clustering must match the DBSCAN core
// partition computed independently by the main pipeline.
TEST(Optics, ExtractionMatchesDbscanCorePartition) {
  auto pts = BlobPoints<2>(600, 4, 25.0, 0.8, 4);
  const double eps = 2.5;
  const size_t min_pts = 6;
  const auto optics = Optics<2>(pts, eps, min_pts);
  for (const double eps_prime : {2.5, 1.5, 0.9}) {
    const auto labels = ExtractDbscanClustering(optics, eps_prime);
    const auto dbscan = Dbscan<2>(pts, eps_prime, min_pts, OurExact());
    for (size_t i = 0; i < pts.size(); ++i) {
      // Core flags must agree (core <=> core distance <= eps').
      const bool optics_core = optics.core_distance[i] <= eps_prime;
      ASSERT_EQ(optics_core, dbscan.is_core[i] != 0)
          << "eps'=" << eps_prime << " i=" << i;
    }
    // Core points: same partition.
    for (size_t i = 0; i < pts.size(); i += 3) {
      if (!dbscan.is_core[i]) continue;
      for (size_t j = i + 1; j < pts.size(); j += 5) {
        if (!dbscan.is_core[j]) continue;
        ASSERT_EQ(labels[i] == labels[j], dbscan.cluster[i] == dbscan.cluster[j])
            << "eps'=" << eps_prime << " pair " << i << "," << j;
      }
    }
  }
}

TEST(Optics, EmptyAndTinyInputs) {
  std::vector<Point<2>> empty;
  const auto r0 = Optics<2>(empty, 1.0, 3);
  EXPECT_TRUE(r0.order.empty());
  std::vector<Point<2>> one = {Point<2>{{0, 0}}};
  const auto r1 = Optics<2>(one, 1.0, 1);
  EXPECT_EQ(r1.order.size(), 1u);
  EXPECT_EQ(r1.core_distance[0], 0.0);
}

TEST(KDistances, MatchBruteForce) {
  auto pts = BlobPoints<3>(300, 3, 12.0, 0.8, 5);
  for (const size_t k : {1u, 4u, 10u}) {
    const auto kdist = KDistances<3>(pts, k);
    for (size_t i = 0; i < pts.size(); ++i) {
      std::vector<double> dists(pts.size());
      for (size_t j = 0; j < pts.size(); ++j) {
        dists[j] = pts[i].Distance(pts[j]);
      }
      std::nth_element(dists.begin(), dists.begin() + (k - 1), dists.end());
      ASSERT_NEAR(kdist[i], dists[k - 1], 1e-12) << "k=" << k << " i=" << i;
    }
  }
}

TEST(KDistances, FirstNeighborIsSelf) {
  auto pts = BlobPoints<2>(100, 2, 10.0, 0.5, 6);
  const auto kdist = KDistances<2>(pts, 1);
  for (const double d : kdist) EXPECT_EQ(d, 0.0);
}

TEST(KDistances, SortedCurveIsMonotone) {
  auto pts = BlobPoints<2>(500, 3, 20.0, 0.8, 7);
  const auto curve = extensions::SortedKDistanceCurve<2>(pts, 5);
  ASSERT_EQ(curve.size(), pts.size());
  for (size_t i = 1; i < curve.size(); ++i) {
    ASSERT_LE(curve[i], curve[i - 1]);
  }
}

// --- Edge cases: degenerate inputs ------------------------------------------

TEST(KDistances, EmptyInputAndZeroK) {
  std::vector<Point<2>> empty;
  EXPECT_TRUE(KDistances<2>(empty, 3).empty());
  EXPECT_TRUE(extensions::SortedKDistanceCurve<2>(empty, 3).empty());
  // k = 0 is a no-op query: defined as all-zero, not a crash.
  auto pts = BlobPoints<2>(50, 2, 10.0, 0.5, 9);
  for (const double d : KDistances<2>(pts, 0)) EXPECT_EQ(d, 0.0);
}

TEST(KDistances, KLargerThanNCapsAtFarthestPoint) {
  // With fewer than k points in total, the k-dist of each point degrades to
  // the distance to its farthest neighbor (the radius search saturates).
  std::vector<Point<2>> pts = {Point<2>{{0, 0}}, Point<2>{{3, 4}},
                               Point<2>{{0, 1}}};
  const auto kdist = KDistances<2>(pts, 10);
  ASSERT_EQ(kdist.size(), 3u);
  EXPECT_NEAR(kdist[0], 5.0, 1e-12);   // (0,0) -> (3,4).
  EXPECT_NEAR(kdist[1], 5.0, 1e-12);   // (3,4) -> (0,0).
  EXPECT_NEAR(kdist[2], std::sqrt(18.0), 1e-12);  // (0,1) -> (3,4).
}

TEST(KDistances, AllDuplicatePoints) {
  std::vector<Point<3>> pts(64, Point<3>{{1.5, -2.5, 3.5}});
  for (const size_t k : {1u, 8u, 64u}) {
    for (const double d : KDistances<3>(pts, k)) EXPECT_EQ(d, 0.0);
  }
  const double eps = extensions::SuggestEpsilon<3>(pts, 4);
  EXPECT_GE(eps, 0.0);  // Degenerate curve: defined, not a crash.
}

TEST(Optics, AllDuplicatePoints) {
  // Every point sees every other at distance 0: all core (for any
  // min_pts <= n), one cluster at every extraction epsilon.
  std::vector<Point<2>> pts(32, Point<2>{{7.0, 7.0}});
  const auto optics = Optics<2>(pts, 1.0, 5);
  ASSERT_EQ(optics.order.size(), pts.size());
  for (size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(optics.core_distance[i], 0.0) << i;
  }
  const auto labels = ExtractDbscanClustering(optics, 0.5);
  for (size_t i = 0; i < pts.size(); ++i) EXPECT_EQ(labels[i], 0) << i;
}

TEST(Optics, MinPtsLargerThanNIsAllNoise) {
  auto pts = BlobPoints<2>(20, 1, 5.0, 0.5, 10);
  const auto optics = Optics<2>(pts, 100.0, pts.size() + 1);
  for (size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(optics.core_distance[i], OpticsResult::kUndefined) << i;
  }
  const auto labels = ExtractDbscanClustering(optics, 100.0);
  for (size_t i = 0; i < pts.size(); ++i) EXPECT_EQ(labels[i], -1) << i;
  // The main pipeline agrees: no core points, everything noise.
  const auto dbscan = Dbscan<2>(pts, 100.0, pts.size() + 1, OurExact());
  EXPECT_EQ(dbscan.num_clusters, 0u);
  for (size_t i = 0; i < pts.size(); ++i) EXPECT_EQ(dbscan.cluster[i], -1);
}

TEST(KDistances, CandidateEpsilonsDegenerateCurves) {
  EXPECT_TRUE(extensions::CandidateEpsilons({}, 5).empty());
  EXPECT_TRUE(extensions::CandidateEpsilons({1.0, 0.5}, 0).empty());
  // All-zero curve (duplicate points): nothing positive survives.
  EXPECT_TRUE(extensions::CandidateEpsilons({0.0, 0.0, 0.0, 0.0}, 3).empty());
  // A constant positive curve dedups to a single candidate.
  const auto one = extensions::CandidateEpsilons({2.0, 2.0, 2.0, 2.0}, 4);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 2.0);
}

// The auto-eps round trip: SuggestEpsilon feeds a CellIndex/EnginePool build
// whose result is bit-identical to a solo run at the same epsilon.
TEST(KDistances, AutoEpsilonRoundTripThroughEnginePool) {
  auto pts = BlobPoints<2>(800, 3, 40.0, 0.5, 11);
  const size_t min_pts = 5;
  const double eps = extensions::SuggestEpsilon<2>(pts, min_pts);
  ASSERT_GT(eps, 0.0);
  const auto solo = Dbscan<2>(pts, eps, min_pts, OurExact());
  auto index = CellIndex<2>::Build(pts, eps, 64, OurExact());
  parallel::EnginePool<2> pool(index);
  const auto served = pool.Run(min_pts);
  EXPECT_EQ(solo.num_clusters, served.num_clusters);
  EXPECT_EQ(solo.cluster, served.cluster);
  EXPECT_EQ(solo.is_core, served.is_core);
  EXPECT_GE(solo.num_clusters, 2u);  // The suggestion recovers the blobs.
}

TEST(KDistances, SuggestedEpsilonRecoversPlantedScale) {
  // Dense blobs (sigma 0.5) in a sparse field: the elbow should land between
  // the intra-blob scale and the background spacing.
  auto pts = BlobPoints<2>(2000, 4, 100.0, 0.5, 8);
  const double eps = extensions::SuggestEpsilon<2>(pts, 5);
  EXPECT_GT(eps, 0.01);
  EXPECT_LT(eps, 50.0);
  // Clustering at the suggested epsilon should recover roughly the blobs.
  const auto result = Dbscan<2>(pts, eps, 5);
  EXPECT_GE(result.num_clusters, 3u);
  EXPECT_LE(result.num_clusters, 40u);
}

}  // namespace
}  // namespace pdbscan
