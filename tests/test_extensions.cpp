// Tests for the extension modules: OPTICS (hierarchical DBSCAN, the paper's
// stated future work) and k-distance parameter selection.
#include <algorithm>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "dbscan/verify.h"
#include "extensions/kdist.h"
#include "extensions/optics.h"
#include "pdbscan/pdbscan.h"

namespace pdbscan {
namespace {

using extensions::ExtractDbscanClustering;
using extensions::KDistances;
using extensions::Optics;
using extensions::OpticsResult;
using geometry::Point;

template <int D>
std::vector<Point<D>> BlobPoints(size_t n, size_t blobs, double side,
                                 double sigma, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coord(0.0, side);
  std::normal_distribution<double> gauss(0.0, sigma);
  std::vector<Point<D>> centers(blobs);
  for (auto& c : centers) {
    for (int k = 0; k < D; ++k) c[k] = coord(rng);
  }
  std::vector<Point<D>> pts(n);
  for (size_t i = 0; i < n; ++i) {
    if (i % 10 == 9) {
      for (int k = 0; k < D; ++k) pts[i][k] = coord(rng);
    } else {
      const auto& c = centers[i % blobs];
      for (int k = 0; k < D; ++k) pts[i][k] = c[k] + gauss(rng);
    }
  }
  return pts;
}

TEST(Optics, OrderIsAPermutation) {
  auto pts = BlobPoints<2>(500, 3, 20.0, 0.8, 1);
  const auto result = Optics<2>(pts, 2.0, 5);
  ASSERT_EQ(result.order.size(), pts.size());
  std::vector<uint8_t> seen(pts.size(), 0);
  for (const uint32_t p : result.order) {
    ASSERT_LT(p, pts.size());
    ASSERT_EQ(seen[p], 0);
    seen[p] = 1;
  }
}

TEST(Optics, CoreDistancesMatchBruteForce) {
  auto pts = BlobPoints<2>(300, 3, 15.0, 0.8, 2);
  const double eps = 1.5;
  const size_t min_pts = 6;
  const auto result = Optics<2>(pts, eps, min_pts);
  for (size_t i = 0; i < pts.size(); ++i) {
    std::vector<double> dists;
    for (size_t j = 0; j < pts.size(); ++j) {
      const double d = pts[i].Distance(pts[j]);
      if (d <= eps) dists.push_back(d);
    }
    std::sort(dists.begin(), dists.end());
    if (dists.size() >= min_pts) {
      ASSERT_NEAR(result.core_distance[i], dists[min_pts - 1], 1e-12) << i;
    } else {
      ASSERT_EQ(result.core_distance[i], OpticsResult::kUndefined) << i;
    }
  }
}

TEST(Optics, ReachabilityLowerBoundedByCoreDistanceOfPredecessors) {
  auto pts = BlobPoints<2>(400, 4, 20.0, 0.7, 3);
  const auto result = Optics<2>(pts, 2.0, 5);
  // Every defined reachability is at least the minimum pairwise distance
  // and at most epsilon (reachability beyond eps is never assigned).
  for (size_t i = 0; i < pts.size(); ++i) {
    const double r = result.reachability[i];
    if (r == OpticsResult::kUndefined) continue;
    ASSERT_GE(r, 0.0);
    ASSERT_LE(r, 2.0 + 1e-12);
  }
}

// The headline OPTICS property: one run at epsilon answers DBSCAN at every
// smaller epsilon'. The extracted clustering must match the DBSCAN core
// partition computed independently by the main pipeline.
TEST(Optics, ExtractionMatchesDbscanCorePartition) {
  auto pts = BlobPoints<2>(600, 4, 25.0, 0.8, 4);
  const double eps = 2.5;
  const size_t min_pts = 6;
  const auto optics = Optics<2>(pts, eps, min_pts);
  for (const double eps_prime : {2.5, 1.5, 0.9}) {
    const auto labels = ExtractDbscanClustering(optics, eps_prime);
    const auto dbscan = Dbscan<2>(pts, eps_prime, min_pts, OurExact());
    for (size_t i = 0; i < pts.size(); ++i) {
      // Core flags must agree (core <=> core distance <= eps').
      const bool optics_core = optics.core_distance[i] <= eps_prime;
      ASSERT_EQ(optics_core, dbscan.is_core[i] != 0)
          << "eps'=" << eps_prime << " i=" << i;
    }
    // Core points: same partition.
    for (size_t i = 0; i < pts.size(); i += 3) {
      if (!dbscan.is_core[i]) continue;
      for (size_t j = i + 1; j < pts.size(); j += 5) {
        if (!dbscan.is_core[j]) continue;
        ASSERT_EQ(labels[i] == labels[j], dbscan.cluster[i] == dbscan.cluster[j])
            << "eps'=" << eps_prime << " pair " << i << "," << j;
      }
    }
  }
}

TEST(Optics, EmptyAndTinyInputs) {
  std::vector<Point<2>> empty;
  const auto r0 = Optics<2>(empty, 1.0, 3);
  EXPECT_TRUE(r0.order.empty());
  std::vector<Point<2>> one = {Point<2>{{0, 0}}};
  const auto r1 = Optics<2>(one, 1.0, 1);
  EXPECT_EQ(r1.order.size(), 1u);
  EXPECT_EQ(r1.core_distance[0], 0.0);
}

TEST(KDistances, MatchBruteForce) {
  auto pts = BlobPoints<3>(300, 3, 12.0, 0.8, 5);
  for (const size_t k : {1u, 4u, 10u}) {
    const auto kdist = KDistances<3>(pts, k);
    for (size_t i = 0; i < pts.size(); ++i) {
      std::vector<double> dists(pts.size());
      for (size_t j = 0; j < pts.size(); ++j) {
        dists[j] = pts[i].Distance(pts[j]);
      }
      std::nth_element(dists.begin(), dists.begin() + (k - 1), dists.end());
      ASSERT_NEAR(kdist[i], dists[k - 1], 1e-12) << "k=" << k << " i=" << i;
    }
  }
}

TEST(KDistances, FirstNeighborIsSelf) {
  auto pts = BlobPoints<2>(100, 2, 10.0, 0.5, 6);
  const auto kdist = KDistances<2>(pts, 1);
  for (const double d : kdist) EXPECT_EQ(d, 0.0);
}

TEST(KDistances, SortedCurveIsMonotone) {
  auto pts = BlobPoints<2>(500, 3, 20.0, 0.8, 7);
  const auto curve = extensions::SortedKDistanceCurve<2>(pts, 5);
  ASSERT_EQ(curve.size(), pts.size());
  for (size_t i = 1; i < curve.size(); ++i) {
    ASSERT_LE(curve[i], curve[i - 1]);
  }
}

TEST(KDistances, SuggestedEpsilonRecoversPlantedScale) {
  // Dense blobs (sigma 0.5) in a sparse field: the elbow should land between
  // the intra-blob scale and the background spacing.
  auto pts = BlobPoints<2>(2000, 4, 100.0, 0.5, 8);
  const double eps = extensions::SuggestEpsilon<2>(pts, 5);
  EXPECT_GT(eps, 0.01);
  EXPECT_LT(eps, 50.0);
  // Clustering at the suggested epsilon should recover roughly the blobs.
  const auto result = Dbscan<2>(pts, eps, 5);
  EXPECT_GE(result.num_clusters, 3u);
  EXPECT_LE(result.num_clusters, 40u);
}

}  // namespace
}  // namespace pdbscan
