// End-to-end correctness of every exact DBSCAN configuration against the
// O(n^2) brute-force reference, across dimensions, parameters and worker
// counts — the core property suite of the library.
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "data/seed_spreader.h"
#include "data/uniform.h"
#include "dbscan/verify.h"
#include "parallel/scheduler.h"
#include "pdbscan/pdbscan.h"

namespace pdbscan {
namespace {

using dbscan::BruteForceDbscan;
using dbscan::SameClustering;
using geometry::Point;

template <int D>
std::vector<Point<D>> RandomPoints(size_t n, double side, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coord(0.0, side);
  std::vector<Point<D>> pts(n);
  for (auto& p : pts) {
    for (int k = 0; k < D; ++k) p[k] = coord(rng);
  }
  return pts;
}

// Clustered data: Gaussian blobs plus uniform noise — representative of
// real DBSCAN inputs with clear cluster structure.
template <int D>
std::vector<Point<D>> BlobPoints(size_t n, size_t blobs, double side,
                                 double sigma, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coord(0.0, side);
  std::normal_distribution<double> gauss(0.0, sigma);
  std::vector<Point<D>> centers(blobs);
  for (auto& c : centers) {
    for (int k = 0; k < D; ++k) c[k] = coord(rng);
  }
  std::vector<Point<D>> pts(n);
  for (size_t i = 0; i < n; ++i) {
    if (i % 10 == 9) {  // 10% noise.
      for (int k = 0; k < D; ++k) pts[i][k] = coord(rng);
    } else {
      const auto& c = centers[i % blobs];
      for (int k = 0; k < D; ++k) pts[i][k] = c[k] + gauss(rng);
    }
  }
  return pts;
}

std::vector<Options> ExactConfigs2d() {
  return {Our2dGridBcp(),
          OurExactQt(),
          Our2dGridUsec(),
          Our2dGridDelaunay(),
          Our2dBoxBcp(),
          Our2dBoxUsec(),
          Our2dBoxDelaunay(),
          WithBucketing(Our2dGridBcp()),
          WithBucketing(Our2dGridUsec()),
          WithBucketing(Our2dBoxBcp())};
}

template <int D>
std::vector<Options> ExactConfigsHighDim() {
  return {OurExact(), OurExactQt(), WithBucketing(OurExact()),
          WithBucketing(OurExactQt())};
}

// --- 2D: every configuration matches brute force --------------------------

struct Params2d {
  size_t n;
  double epsilon;
  size_t min_pts;
  uint64_t seed;
  bool blobs;
};

class Dbscan2dTest : public ::testing::TestWithParam<Params2d> {};

TEST_P(Dbscan2dTest, AllConfigsMatchBruteForce) {
  const auto p = GetParam();
  std::vector<Point<2>> pts =
      p.blobs ? BlobPoints<2>(p.n, 5, 30.0, 1.0, p.seed)
              : RandomPoints<2>(p.n, 30.0, p.seed);
  const auto expected = BruteForceDbscan<2>(pts, p.epsilon, p.min_pts);
  for (const auto& options : ExactConfigs2d()) {
    const auto got = Dbscan<2>(pts, p.epsilon, p.min_pts, options);
    EXPECT_TRUE(SameClustering(expected, got))
        << options.Name() << " n=" << p.n << " eps=" << p.epsilon
        << " minpts=" << p.min_pts << " seed=" << p.seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Dbscan2dTest,
    ::testing::Values(Params2d{60, 1.0, 3, 1, false},
                      Params2d{200, 1.5, 5, 2, false},
                      Params2d{200, 3.0, 10, 3, false},
                      Params2d{500, 1.0, 4, 4, true},
                      Params2d{500, 2.0, 8, 5, true},
                      Params2d{800, 0.7, 3, 6, true},
                      Params2d{800, 5.0, 20, 7, false},
                      Params2d{1200, 1.2, 6, 8, true},
                      Params2d{300, 0.2, 2, 9, false},
                      Params2d{300, 30.0, 2, 10, false}));

// --- Higher dimensions ------------------------------------------------------

template <int D>
void CheckHighDim(size_t n, double epsilon, size_t min_pts, uint64_t seed) {
  auto pts = BlobPoints<D>(n, 4, 15.0, 1.0, seed);
  const auto expected = BruteForceDbscan<D>(pts, epsilon, min_pts);
  for (const auto& options : ExactConfigsHighDim<D>()) {
    const auto got = Dbscan<D>(pts, epsilon, min_pts, options);
    EXPECT_TRUE(SameClustering(expected, got))
        << options.Name() << " D=" << D << " eps=" << epsilon;
  }
}

TEST(DbscanHighDim, Exact3d) {
  CheckHighDim<3>(500, 1.5, 5, 21);
  CheckHighDim<3>(500, 3.0, 12, 22);
}
TEST(DbscanHighDim, Exact4d) { CheckHighDim<4>(400, 2.0, 5, 23); }
TEST(DbscanHighDim, Exact5d) {
  CheckHighDim<5>(400, 2.5, 5, 24);
  CheckHighDim<5>(400, 4.0, 10, 25);
}
TEST(DbscanHighDim, Exact7d) { CheckHighDim<7>(300, 3.5, 5, 26); }

// --- Edge cases ----------------------------------------------------------------

TEST(DbscanEdge, EmptyInput) {
  std::vector<Point<2>> pts;
  const auto result = Dbscan<2>(pts, 1.0, 3);
  EXPECT_EQ(result.size(), 0u);
  EXPECT_EQ(result.num_clusters, 0u);
}

TEST(DbscanEdge, SinglePoint) {
  std::vector<Point<2>> pts = {Point<2>{{0, 0}}};
  const auto noise = Dbscan<2>(pts, 1.0, 2);
  EXPECT_EQ(noise.num_clusters, 0u);
  EXPECT_EQ(noise.cluster[0], Clustering::kNoise);
  const auto core = Dbscan<2>(pts, 1.0, 1);
  EXPECT_EQ(core.num_clusters, 1u);
  EXPECT_EQ(core.cluster[0], 0);
  EXPECT_TRUE(core.is_core[0]);
}

TEST(DbscanEdge, AllCoincidentPoints) {
  std::vector<Point<3>> pts(100, Point<3>{{5, 5, 5}});
  const auto result = Dbscan<3>(pts, 1.0, 10);
  EXPECT_EQ(result.num_clusters, 1u);
  for (size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(result.cluster[i], 0);
    EXPECT_TRUE(result.is_core[i]);
  }
}

TEST(DbscanEdge, MinPtsOneEveryPointIsItsOwnCore) {
  auto pts = RandomPoints<2>(50, 100.0, 31);  // Sparse: all isolated.
  const auto result = Dbscan<2>(pts, 0.001, 1);
  EXPECT_EQ(result.num_clusters, 50u);
  for (size_t i = 0; i < pts.size(); ++i) EXPECT_TRUE(result.is_core[i]);
}

TEST(DbscanEdge, HugeEpsilonOneCluster) {
  auto pts = RandomPoints<3>(200, 10.0, 32);
  const auto result = Dbscan<3>(pts, 1000.0, 5);
  EXPECT_EQ(result.num_clusters, 1u);
  for (size_t i = 0; i < pts.size(); ++i) {
    EXPECT_TRUE(result.is_core[i]);
    EXPECT_EQ(result.cluster[i], 0);
  }
}

TEST(DbscanEdge, TinyEpsilonAllNoise) {
  auto pts = RandomPoints<2>(200, 100.0, 33);
  const auto result = Dbscan<2>(pts, 1e-9, 2);
  EXPECT_EQ(result.num_clusters, 0u);
  for (size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(result.cluster[i], Clustering::kNoise);
  }
}

TEST(DbscanEdge, InvalidArgumentsThrow) {
  std::vector<Point<2>> pts = {Point<2>{{0, 0}}};
  EXPECT_THROW(Dbscan<2>(pts, -1.0, 3), std::invalid_argument);
  EXPECT_THROW(Dbscan<2>(pts, 0.0, 3), std::invalid_argument);
  EXPECT_THROW(Dbscan<2>(pts, 1.0, 0), std::invalid_argument);
  Options box_in_3d;
  box_in_3d.cell_method = CellMethod::kBox;
  std::vector<Point<3>> pts3 = {Point<3>{{0, 0, 0}}};
  EXPECT_THROW(Dbscan<3>(pts3, 1.0, 3, box_in_3d), std::invalid_argument);
  Options usec_in_3d;
  usec_in_3d.connect_method = ConnectMethod::kUsec;
  EXPECT_THROW(Dbscan<3>(pts3, 1.0, 3, usec_in_3d), std::invalid_argument);
}

TEST(DbscanEdge, BorderPointWithTwoClusters) {
  // Two dense blobs whose nearest members are exactly epsilon away from a
  // lone middle point: the middle point reaches only one point per blob
  // (3 < minPts including itself), so it is a border point of both clusters.
  std::vector<Point<2>> pts;
  for (int i = 0; i < 5; ++i) {
    pts.push_back(Point<2>{{-2.0, 0.1 * i}});  // Cluster A.
    pts.push_back(Point<2>{{2.0, 0.1 * i}});   // Cluster B.
  }
  pts.push_back(Point<2>{{0.0, 0.0}});  // Border of both (eps = 2.0).
  const auto expected = BruteForceDbscan<2>(pts, 2.0, 4);
  ASSERT_EQ(expected.num_clusters, 2u);
  ASSERT_EQ(expected.memberships(10).size(), 2u);
  ASSERT_FALSE(expected.is_core[10]);
  for (const auto& options : ExactConfigs2d()) {
    const auto got = Dbscan<2>(pts, 2.0, 4, options);
    EXPECT_TRUE(SameClustering(expected, got)) << options.Name();
    EXPECT_EQ(got.memberships(10).size(), 2u) << options.Name();
  }
}

// --- Determinism and thread-count independence --------------------------------

TEST(DbscanDeterminism, SameLabelsForAllWorkerCountsAndRuns) {
  auto pts = BlobPoints<2>(2000, 6, 40.0, 1.0, 41);
  parallel::set_num_workers(1);
  const auto reference = Dbscan<2>(pts, 1.0, 8);
  for (int workers : {2, 4, 8}) {
    parallel::set_num_workers(workers);
    for (int run = 0; run < 2; ++run) {
      const auto got = Dbscan<2>(pts, 1.0, 8);
      ASSERT_EQ(reference.cluster, got.cluster) << "workers " << workers;
      ASSERT_EQ(reference.is_core, got.is_core);
      ASSERT_EQ(reference.membership_ids, got.membership_ids);
      ASSERT_EQ(reference.membership_offsets, got.membership_offsets);
    }
  }
  parallel::set_num_workers(4);
}

TEST(DbscanDeterminism, LabelsAreConsecutiveFirstAppearance) {
  auto pts = BlobPoints<2>(1500, 5, 30.0, 1.0, 42);
  const auto result = Dbscan<2>(pts, 1.0, 8);
  ASSERT_GT(result.num_clusters, 1u);
  // First-appearance labeling: scanning points in order, the first time a
  // cluster id appears it must be exactly one more than the largest id seen.
  int64_t max_seen = -1;
  for (size_t i = 0; i < result.size(); ++i) {
    for (const int64_t id : result.memberships(i)) {
      ASSERT_LE(id, max_seen + 1);
      max_seen = std::max(max_seen, id);
    }
  }
  EXPECT_EQ(static_cast<size_t>(max_seen + 1), result.num_clusters);
}

// --- Output structure invariants -----------------------------------------------

TEST(DbscanOutput, CoreAndMembershipConsistency) {
  auto pts = BlobPoints<3>(800, 4, 20.0, 1.0, 43);
  const auto result = Dbscan<3>(pts, 1.5, 6);
  for (size_t i = 0; i < result.size(); ++i) {
    const auto m = result.memberships(i);
    if (result.is_core[i]) {
      ASSERT_EQ(m.size(), 1u);
      ASSERT_EQ(result.cluster[i], m[0]);
    }
    if (m.empty()) {
      ASSERT_EQ(result.cluster[i], Clustering::kNoise);
    } else {
      ASSERT_EQ(result.cluster[i], m[0]);
      for (size_t k = 1; k < m.size(); ++k) ASSERT_LT(m[k - 1], m[k]);
      for (const int64_t id : m) {
        ASSERT_GE(id, 0);
        ASSERT_LT(id, static_cast<int64_t>(result.num_clusters));
      }
    }
  }
}

// --- Runtime-dimension dispatch -------------------------------------------------

TEST(DbscanRuntimeDim, FlatDispatchMatchesTyped) {
  auto pts = BlobPoints<3>(300, 3, 15.0, 1.0, 44);
  std::vector<double> flat;
  for (const auto& p : pts) {
    flat.push_back(p[0]);
    flat.push_back(p[1]);
    flat.push_back(p[2]);
  }
  const auto typed = Dbscan<3>(pts, 1.5, 5);
  const auto dispatched = Dbscan(flat.data(), pts.size(), 3, 1.5, 5);
  EXPECT_EQ(typed.cluster, dispatched.cluster);
  EXPECT_EQ(typed.is_core, dispatched.is_core);
  EXPECT_THROW(Dbscan(flat.data(), 100, 6, 1.0, 3), std::invalid_argument);
}

// --- Dataset-level sanity on the paper's generators ----------------------------

TEST(DbscanDatasets, SeedSpreaderFindsPlantedClusters) {
  data::SeedSpreaderResult meta;
  data::SeedSpreaderParams params;
  params.n = 4000;
  params.domain = 1e4;
  params.restart_expected = 6;
  params.seed = 45;
  auto pts = data::SeedSpreader<2>(params, &meta);
  const auto result = Dbscan<2>(pts, /*epsilon=*/200.0, /*min_pts=*/10);
  // Clusters found should be on the order of the number of restarts (some
  // walks can overlap or die early, so allow slack).
  EXPECT_GE(result.num_clusters, 2u);
  EXPECT_LE(result.num_clusters, meta.num_restarts + 4);
  // Most points should be clustered (noise fraction is tiny).
  size_t noise = 0;
  for (size_t i = 0; i < result.size(); ++i) {
    noise += result.cluster[i] == Clustering::kNoise;
  }
  EXPECT_LT(noise, result.size() / 5);
}

TEST(DbscanDatasets, GridAndBoxAgreeOnSeedSpreader) {
  auto pts = data::SsVarden<2>(3000, 46);
  const auto grid = Dbscan<2>(pts, 150.0, 10, Our2dGridBcp());
  const auto box = Dbscan<2>(pts, 150.0, 10, Our2dBoxBcp());
  EXPECT_TRUE(SameClustering(grid, box));
  const auto usec = Dbscan<2>(pts, 150.0, 10, Our2dGridUsec());
  EXPECT_TRUE(SameClustering(grid, usec));
}

}  // namespace
}  // namespace pdbscan
