// Meta-tests: the verification oracles themselves (BruteForceDbscan,
// SameClustering, IsValidApproxClustering) checked on hand-computed examples
// and on deliberately corrupted clusterings. A silent oracle bug would make
// the whole suite vacuous, so the oracles get their own tests.
#include <vector>

#include <gtest/gtest.h>

#include "dbscan/verify.h"
#include "geometry/point.h"

namespace pdbscan {
namespace {

using dbscan::BruteForceDbscan;
using dbscan::IsValidApproxClustering;
using dbscan::SameClustering;
using geometry::Point;

// A hand-checkable configuration:
//   indices 0,1,2: tight triple at x = 0 (pairwise distance 0.1).
//   indices 3,4,5: tight triple at x = 10.
//   index 6: at x = 1.05, within eps=1 of point 1 (0.1, 0) only -> border.
//   index 7: at x = 5, isolated (noise).
std::vector<Point<2>> HandExample() {
  return {
      Point<2>{{0.0, 0.0}}, Point<2>{{0.1, 0.0}}, Point<2>{{0.05, 0.1}},
      Point<2>{{10.0, 0.0}}, Point<2>{{10.1, 0.0}}, Point<2>{{10.05, 0.1}},
      Point<2>{{1.05, 0.0}}, Point<2>{{5.0, 0.0}},
  };
}

TEST(BruteForce, HandComputedExample) {
  auto pts = HandExample();
  const auto c = BruteForceDbscan<2>(pts, 1.0, 3);
  EXPECT_EQ(c.num_clusters, 2u);
  // Triples are core.
  for (size_t i : {0u, 1u, 2u, 3u, 4u, 5u}) EXPECT_TRUE(c.is_core[i]) << i;
  EXPECT_FALSE(c.is_core[6]);
  EXPECT_FALSE(c.is_core[7]);
  // First-appearance labels: cluster of 0/1/2 is 0; cluster of 3/4/5 is 1.
  EXPECT_EQ(c.cluster[0], 0);
  EXPECT_EQ(c.cluster[1], 0);
  EXPECT_EQ(c.cluster[2], 0);
  EXPECT_EQ(c.cluster[3], 1);
  EXPECT_EQ(c.cluster[4], 1);
  EXPECT_EQ(c.cluster[5], 1);
  // Border point 6 belongs to cluster 0 only.
  EXPECT_EQ(c.cluster[6], 0);
  EXPECT_EQ(c.memberships(6).size(), 1u);
  // Noise.
  EXPECT_EQ(c.cluster[7], Clustering::kNoise);
  EXPECT_TRUE(c.memberships(7).empty());
}

TEST(SameClusteringCheck, AcceptsRelabeledClustering) {
  auto pts = HandExample();
  const auto a = BruteForceDbscan<2>(pts, 1.0, 3);
  // Relabel: swap cluster ids 0 and 1 everywhere.
  Clustering b = a;
  for (auto& id : b.cluster) {
    if (id >= 0) id = 1 - id;
  }
  for (auto& id : b.membership_ids) id = 1 - id;
  EXPECT_TRUE(SameClustering(a, b));
  EXPECT_TRUE(SameClustering(b, a));
}

TEST(SameClusteringCheck, RejectsCorruptions) {
  auto pts = HandExample();
  const auto a = BruteForceDbscan<2>(pts, 1.0, 3);
  {
    // Flip a core flag.
    Clustering b = a;
    b.is_core[0] = 0;
    EXPECT_FALSE(SameClustering(a, b));
  }
  {
    // Move a point to the other cluster.
    Clustering b = a;
    b.cluster[5] = 0;
    b.membership_ids[b.membership_offsets[5]] = 0;
    EXPECT_FALSE(SameClustering(a, b));
  }
  {
    // Merge the two clusters.
    Clustering b = a;
    for (auto& id : b.cluster) {
      if (id > 0) id = 0;
    }
    for (auto& id : b.membership_ids) {
      if (id > 0) id = 0;
    }
    b.num_clusters = 1;
    EXPECT_FALSE(SameClustering(a, b));
  }
  {
    // Drop the border membership.
    Clustering b = a;
    b.cluster[6] = Clustering::kNoise;
    b.membership_ids.erase(b.membership_ids.begin() +
                           static_cast<long>(b.membership_offsets[6]));
    for (size_t i = 7; i < b.membership_offsets.size(); ++i) {
      --b.membership_offsets[i];
    }
    EXPECT_FALSE(SameClustering(a, b));
  }
}

TEST(ApproxValidator, AcceptsExactClustering) {
  auto pts = HandExample();
  const auto exact = BruteForceDbscan<2>(pts, 1.0, 3);
  // The exact clustering is always a valid rho-approximate clustering.
  EXPECT_TRUE(IsValidApproxClustering<2>(pts, 1.0, 3, 0.5, exact));
  EXPECT_TRUE(IsValidApproxClustering<2>(pts, 1.0, 3, 0.0, exact));
}

TEST(ApproxValidator, AcceptsMergeWithinBand) {
  // Two pairs of core points at distance 1.2: with eps=1, rho=0.5 they may
  // or may not be merged; both answers must validate.
  std::vector<Point<2>> pts = {
      Point<2>{{0.0, 0.0}}, Point<2>{{0.1, 0.0}},  // Pair A (core, minPts=2).
      Point<2>{{1.3, 0.0}}, Point<2>{{1.4, 0.0}},  // Pair B, 1.2 from A.
  };
  const auto split = BruteForceDbscan<2>(pts, 1.0, 2);
  ASSERT_EQ(split.num_clusters, 2u);
  EXPECT_TRUE(IsValidApproxClustering<2>(pts, 1.0, 2, 0.5, split));
  // Construct the merged clustering by hand.
  Clustering merged = split;
  for (auto& id : merged.cluster) id = 0;
  for (auto& id : merged.membership_ids) id = 0;
  merged.num_clusters = 1;
  EXPECT_TRUE(IsValidApproxClustering<2>(pts, 1.0, 2, 0.5, merged));
  // But merging is invalid when the band does not reach (rho = 0.1).
  EXPECT_FALSE(IsValidApproxClustering<2>(pts, 1.0, 2, 0.1, merged));
}

TEST(ApproxValidator, RejectsWrongCoreFlags) {
  auto pts = HandExample();
  auto c = BruteForceDbscan<2>(pts, 1.0, 3);
  c.is_core[7] = 1;  // The isolated point can never be core.
  EXPECT_FALSE(IsValidApproxClustering<2>(pts, 1.0, 3, 0.5, c));
}

TEST(ApproxValidator, RejectsSplitOfTrueCluster) {
  // Two core points within eps must share a cluster even approximately.
  std::vector<Point<2>> pts = {
      Point<2>{{0.0, 0.0}}, Point<2>{{0.1, 0.0}}, Point<2>{{0.2, 0.0}},
  };
  auto c = BruteForceDbscan<2>(pts, 1.0, 2);
  ASSERT_EQ(c.num_clusters, 1u);
  Clustering split = c;
  split.num_clusters = 2;
  split.cluster = {0, 0, 1};
  split.membership_ids = {0, 0, 1};
  EXPECT_FALSE(IsValidApproxClustering<2>(pts, 1.0, 2, 0.5, split));
}

TEST(BruteForce, MinPtsOneMakesEverythingCore) {
  auto pts = HandExample();
  const auto c = BruteForceDbscan<2>(pts, 0.01, 1);
  for (size_t i = 0; i < pts.size(); ++i) EXPECT_TRUE(c.is_core[i]);
  EXPECT_EQ(c.num_clusters, pts.size());  // All isolated at eps=0.01.
}

TEST(BruteForce, ChainsConnectThroughCorePointsOnly) {
  // A chain a-b-c where b is NOT core must not connect a and c.
  // a cluster: two points at x=0; c cluster: two points at x=2;
  // b alone at x=1 within eps of both sides but with only 3 neighbors
  // (minPts=4 counting itself -> not core... choose counts carefully).
  std::vector<Point<2>> pts = {
      Point<2>{{0.0, 0.0}}, Point<2>{{0.0, 0.1}}, Point<2>{{0.0, 0.2}},
      Point<2>{{0.0, 0.3}}, Point<2>{{2.0, 0.0}}, Point<2>{{2.0, 0.1}},
      Point<2>{{2.0, 0.2}}, Point<2>{{2.0, 0.3}},
      Point<2>{{1.0, 0.0}},  // b: neighbors are 0, 4 and itself = 3 < 4.
  };
  const auto c = BruteForceDbscan<2>(pts, 1.0, 4);
  ASSERT_TRUE(c.is_core[0] && c.is_core[4]);
  ASSERT_FALSE(c.is_core[8]);
  EXPECT_EQ(c.num_clusters, 2u);
  EXPECT_NE(c.cluster[0], c.cluster[4]);
  // b is border of both clusters.
  EXPECT_EQ(c.memberships(8).size(), 2u);
}

}  // namespace
}  // namespace pdbscan
