// Correctness of approximate DBSCAN ("our-approx", "our-approx-qt") against
// Gan & Tao's rho-approximate definition, plus its relationship to exact
// DBSCAN at the extremes of rho.
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "dbscan/verify.h"
#include "parallel/scheduler.h"
#include "pdbscan/pdbscan.h"

namespace pdbscan {
namespace {

using dbscan::BruteForceDbscan;
using dbscan::IsValidApproxClustering;
using dbscan::SameClustering;
using geometry::Point;

template <int D>
std::vector<Point<D>> BlobPoints(size_t n, size_t blobs, double side,
                                 double sigma, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coord(0.0, side);
  std::normal_distribution<double> gauss(0.0, sigma);
  std::vector<Point<D>> centers(blobs);
  for (auto& c : centers) {
    for (int k = 0; k < D; ++k) c[k] = coord(rng);
  }
  std::vector<Point<D>> pts(n);
  for (size_t i = 0; i < n; ++i) {
    if (i % 10 == 9) {
      for (int k = 0; k < D; ++k) pts[i][k] = coord(rng);
    } else {
      const auto& c = centers[i % blobs];
      for (int k = 0; k < D; ++k) pts[i][k] = c[k] + gauss(rng);
    }
  }
  return pts;
}

struct ApproxParams {
  size_t n;
  double epsilon;
  size_t min_pts;
  double rho;
  uint64_t seed;
};

class ApproxTest : public ::testing::TestWithParam<ApproxParams> {};

TEST_P(ApproxTest, SatisfiesGanTaoDefinition2d) {
  const auto p = GetParam();
  auto pts = BlobPoints<2>(p.n, 4, 25.0, 1.0, p.seed);
  for (const Options& options : {OurApprox(p.rho), OurApproxQt(p.rho),
                                 WithBucketing(OurApprox(p.rho))}) {
    const auto got = Dbscan<2>(pts, p.epsilon, p.min_pts, options);
    EXPECT_TRUE(IsValidApproxClustering<2>(pts, p.epsilon, p.min_pts, p.rho, got))
        << options.Name() << " rho=" << p.rho << " eps=" << p.epsilon;
  }
}

TEST_P(ApproxTest, SatisfiesGanTaoDefinition3d) {
  const auto p = GetParam();
  auto pts = BlobPoints<3>(p.n, 4, 15.0, 1.0, p.seed + 100);
  for (const Options& options : {OurApprox(p.rho), OurApproxQt(p.rho)}) {
    const auto got = Dbscan<3>(pts, p.epsilon, p.min_pts, options);
    EXPECT_TRUE(IsValidApproxClustering<3>(pts, p.epsilon, p.min_pts, p.rho, got))
        << options.Name() << " rho=" << p.rho;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ApproxTest,
    ::testing::Values(ApproxParams{300, 1.0, 4, 0.01, 1},
                      ApproxParams{300, 1.5, 6, 0.1, 2},
                      ApproxParams{500, 2.0, 8, 0.5, 3},
                      ApproxParams{500, 1.0, 4, 1.0, 4},
                      ApproxParams{400, 0.8, 3, 0.001, 5},
                      ApproxParams{600, 3.0, 12, 0.05, 6}));

TEST(Approx, FiveDimensional) {
  auto pts = BlobPoints<5>(400, 3, 12.0, 1.0, 7);
  for (double rho : {0.01, 0.2}) {
    const auto got = Dbscan<5>(pts, 2.5, 5, OurApproxQt(rho));
    EXPECT_TRUE(IsValidApproxClustering<5>(pts, 2.5, 5, rho, got)) << rho;
  }
}

TEST(Approx, SevenDimensional) {
  auto pts = BlobPoints<7>(250, 3, 10.0, 1.0, 8);
  const auto got = Dbscan<7>(pts, 3.0, 5, OurApprox(0.1));
  EXPECT_TRUE(IsValidApproxClustering<7>(pts, 3.0, 5, 0.1, got));
}

TEST(Approx, WellSeparatedClustersMatchExactExactly) {
  // When no inter-point distance falls in (eps, eps(1+rho)], the approximate
  // answer is forced to equal the exact one. Deterministic construction:
  // points spaced 0.05 apart on line segments, so every intra-cluster
  // distance is a multiple of 0.05 and none lands in (0.52, 0.5252].
  std::vector<Point<2>> pts;
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 30; ++i) {
      pts.push_back(Point<2>{{c * 100.0 + 0.05 * i, 0.0}});
    }
  }
  const double epsilon = 0.52;
  const double rho = 0.01;
  const auto exact = BruteForceDbscan<2>(pts, epsilon, 5);
  // Premise: no distances in the (eps, eps(1+rho)] band.
  for (size_t i = 0; i < pts.size(); ++i) {
    for (size_t j = i + 1; j < pts.size(); ++j) {
      const double d = std::sqrt(pts[i].SquaredDistance(pts[j]));
      ASSERT_FALSE(d > epsilon && d <= epsilon * (1 + rho));
    }
  }
  const auto approx = Dbscan<2>(pts, epsilon, 5, OurApprox(rho));
  EXPECT_TRUE(SameClustering(exact, approx));
  EXPECT_EQ(approx.num_clusters, 3u);
}

TEST(Approx, CoreFlagsAlwaysMatchExact) {
  // The approximation only affects connectivity, never core status.
  auto pts = BlobPoints<3>(500, 4, 15.0, 1.0, 10);
  const auto exact = BruteForceDbscan<3>(pts, 1.5, 6);
  for (double rho : {0.01, 0.5, 2.0}) {
    const auto approx = Dbscan<3>(pts, 1.5, 6, OurApprox(rho));
    EXPECT_EQ(exact.is_core, approx.is_core) << rho;
  }
}

TEST(Approx, DeterministicAcrossWorkerCounts) {
  auto pts = BlobPoints<3>(1000, 5, 20.0, 1.0, 11);
  parallel::set_num_workers(1);
  const auto reference = Dbscan<3>(pts, 1.5, 6, OurApproxQt(0.1));
  for (int workers : {2, 8}) {
    parallel::set_num_workers(workers);
    const auto got = Dbscan<3>(pts, 1.5, 6, OurApproxQt(0.1));
    ASSERT_EQ(reference.cluster, got.cluster) << workers;
    ASSERT_EQ(reference.membership_ids, got.membership_ids);
  }
  parallel::set_num_workers(4);
}

TEST(Approx, LargeRhoStillValid) {
  // rho > 1 is legal: connectivity may reach out to eps * (1 + rho).
  auto pts = BlobPoints<2>(300, 3, 20.0, 1.0, 12);
  const auto got = Dbscan<2>(pts, 1.0, 4, OurApprox(4.0));
  EXPECT_TRUE(IsValidApproxClustering<2>(pts, 1.0, 4, 4.0, got));
}

}  // namespace
}  // namespace pdbscan
