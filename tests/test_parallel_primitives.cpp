// Tests for the scheduler and the PBBS-style parallel primitives (Table 1).
#include <algorithm>
#include <atomic>
#include <numeric>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "parallel/scheduler.h"
#include "primitives/filter.h"
#include "primitives/integer_sort.h"
#include "primitives/merge.h"
#include "primitives/pointer_jump.h"
#include "primitives/random.h"
#include "primitives/reduce.h"
#include "primitives/scan.h"
#include "primitives/semisort.h"
#include "primitives/sort.h"

namespace pdbscan {
namespace {

using parallel::ScopedNumWorkers;

// --- Scheduler -------------------------------------------------------------

TEST(Scheduler, ParallelForCoversEveryIndexExactlyOnce) {
  for (int workers : {1, 2, 4, 8}) {
    ScopedNumWorkers scope(workers);
    std::vector<std::atomic<int>> hits(10000);
    parallel::parallel_for(0, hits.size(), [&](size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " workers " << workers;
    }
  }
}

TEST(Scheduler, ParallelForEmptyAndSingletonRanges) {
  std::atomic<int> count(0);
  parallel::parallel_for(5, 5, [&](size_t) { count++; });
  EXPECT_EQ(count.load(), 0);
  parallel::parallel_for(7, 8, [&](size_t i) {
    EXPECT_EQ(i, 7u);
    count++;
  });
  EXPECT_EQ(count.load(), 1);
}

TEST(Scheduler, NestedParallelForDoesNotDeadlock) {
  ScopedNumWorkers scope(4);
  std::atomic<size_t> total(0);
  parallel::parallel_for(
      0, 64,
      [&](size_t) {
        parallel::parallel_for(
            0, 64, [&](size_t) { total.fetch_add(1, std::memory_order_relaxed); },
            1);
      },
      1);
  EXPECT_EQ(total.load(), 64u * 64u);
}

TEST(Scheduler, ForkJoinRunsBothBranches) {
  ScopedNumWorkers scope(4);
  std::atomic<int> a(0), b(0);
  parallel::fork_join([&]() { a = 1; }, [&]() { b = 1; });
  EXPECT_EQ(a.load(), 1);
  EXPECT_EQ(b.load(), 1);
}

TEST(Scheduler, RecursiveForkJoinComputesFibonacci) {
  ScopedNumWorkers scope(4);
  // Deep nested forks exercise help-while-waiting.
  std::function<long(int)> fib = [&](int k) -> long {
    if (k < 2) return k;
    long x = 0, y = 0;
    parallel::fork_join([&]() { x = fib(k - 1); }, [&]() { y = fib(k - 2); });
    return x + y;
  };
  EXPECT_EQ(fib(18), 2584);
}

TEST(Scheduler, SetNumWorkersChangesParallelism) {
  parallel::set_num_workers(3);
  EXPECT_EQ(parallel::num_workers(), 3);
  parallel::set_num_workers(1);
  EXPECT_EQ(parallel::num_workers(), 1);
  parallel::set_num_workers(2);
  EXPECT_EQ(parallel::num_workers(), 2);
}

// --- Scan -------------------------------------------------------------------

class ScanTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ScanTest, ExclusiveMatchesSerial) {
  const size_t n = GetParam();
  std::mt19937_64 rng(n);
  std::vector<long> a(n), expected(n);
  for (auto& x : a) x = static_cast<long>(rng() % 1000) - 500;
  long sum = 0;
  for (size_t i = 0; i < n; ++i) {
    expected[i] = sum;
    sum += a[i];
  }
  ScopedNumWorkers scope(4);
  const long total = primitives::ScanExclusive(a);
  EXPECT_EQ(total, sum);
  EXPECT_EQ(a, expected);
}

TEST_P(ScanTest, InclusiveMatchesSerial) {
  const size_t n = GetParam();
  std::mt19937_64 rng(n + 1);
  std::vector<long> a(n), expected(n);
  for (auto& x : a) x = static_cast<long>(rng() % 1000) - 500;
  long sum = 0;
  for (size_t i = 0; i < n; ++i) {
    sum += a[i];
    expected[i] = sum;
  }
  ScopedNumWorkers scope(4);
  const long total = primitives::ScanInclusive(a);
  EXPECT_EQ(total, sum);
  EXPECT_EQ(a, expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ScanTest,
                         ::testing::Values(0, 1, 2, 100, 2048, 2049, 100000));

// --- Filter / Reduce ---------------------------------------------------------

TEST(Filter, KeepsMatchingElementsInOrder) {
  ScopedNumWorkers scope(4);
  std::vector<int> a(50000);
  std::iota(a.begin(), a.end(), 0);
  auto evens = primitives::Filter(a, [](int x) { return x % 2 == 0; });
  ASSERT_EQ(evens.size(), 25000u);
  for (size_t i = 0; i < evens.size(); ++i) {
    ASSERT_EQ(evens[i], static_cast<int>(2 * i));
  }
}

TEST(Filter, EmptyAndAllCases) {
  std::vector<int> a = {1, 3, 5};
  EXPECT_TRUE(primitives::Filter(a, [](int) { return false; }).empty());
  EXPECT_EQ(primitives::Filter(a, [](int) { return true; }), a);
  std::vector<int> empty;
  EXPECT_TRUE(primitives::Filter(empty, [](int) { return true; }).empty());
}

TEST(FilterIndex, ReturnsSortedMatchingIndices) {
  ScopedNumWorkers scope(4);
  auto idx = primitives::FilterIndex(10000, [](size_t i) { return i % 7 == 0; });
  ASSERT_EQ(idx.size(), (10000 + 6) / 7);
  for (size_t k = 0; k < idx.size(); ++k) ASSERT_EQ(idx[k], 7 * k);
}

TEST(Reduce, SumMaxMinCount) {
  ScopedNumWorkers scope(4);
  const size_t n = 100000;
  std::vector<long> a(n);
  for (size_t i = 0; i < n; ++i) a[i] = static_cast<long>(i);
  EXPECT_EQ(primitives::ReduceSum(std::span<const long>(a)),
            static_cast<long>(n * (n - 1) / 2));
  EXPECT_EQ(primitives::ReduceMax(size_t{0}, n, long{-1},
                                  [&](size_t i) { return a[i]; }),
            static_cast<long>(n - 1));
  EXPECT_EQ(primitives::ReduceMin(size_t{0}, n, long{1 << 30},
                                  [&](size_t i) { return a[i]; }),
            0);
  EXPECT_EQ(primitives::CountIf(0, n, [&](size_t i) { return i % 3 == 0; }),
            (n + 2) / 3);
}

TEST(Reduce, EmptyRangeReturnsIdentity) {
  EXPECT_EQ(primitives::ReduceMax(size_t{5}, size_t{5}, -42,
                                  [](size_t) { return 7; }),
            -42);
}

// --- Comparison sort ---------------------------------------------------------

class SortTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SortTest, MatchesStdSort) {
  const size_t n = GetParam();
  std::mt19937_64 rng(n * 31 + 7);
  std::vector<uint64_t> a(n);
  for (auto& x : a) x = rng() % (n / 2 + 3);  // Plenty of duplicates.
  std::vector<uint64_t> expected = a;
  std::sort(expected.begin(), expected.end());
  ScopedNumWorkers scope(4);
  primitives::ParallelSort(a);
  EXPECT_EQ(a, expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SortTest,
                         ::testing::Values(0, 1, 2, 10, 8192, 8193, 200000));

TEST(Sort, CustomComparatorDescending) {
  ScopedNumWorkers scope(4);
  std::vector<int> a(50000);
  std::mt19937 rng(3);
  for (auto& x : a) x = static_cast<int>(rng() % 1000);
  primitives::ParallelSort(a, std::greater<int>());
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end(), std::greater<int>()));
}

TEST(Sort, AlreadySortedAndReversedInputs) {
  ScopedNumWorkers scope(4);
  std::vector<int> a(100000);
  std::iota(a.begin(), a.end(), 0);
  std::vector<int> expected = a;
  primitives::ParallelSort(a);
  EXPECT_EQ(a, expected);
  std::reverse(a.begin(), a.end());
  primitives::ParallelSort(a);
  EXPECT_EQ(a, expected);
}

TEST(Sort, AllEqualKeys) {
  ScopedNumWorkers scope(4);
  std::vector<int> a(100000, 42);
  primitives::ParallelSort(a);
  EXPECT_TRUE(std::all_of(a.begin(), a.end(), [](int x) { return x == 42; }));
}

// --- Integer sort -------------------------------------------------------------

TEST(IntegerSort, StableAndCorrect) {
  ScopedNumWorkers scope(4);
  const size_t n = 150000;
  std::mt19937 rng(9);
  std::vector<std::pair<uint32_t, uint32_t>> a(n);  // (key, original index)
  for (size_t i = 0; i < n; ++i) {
    a[i] = {rng() % 64, static_cast<uint32_t>(i)};
  }
  auto expected = a;
  std::stable_sort(expected.begin(), expected.end(),
                   [](const auto& x, const auto& y) { return x.first < y.first; });
  primitives::IntegerSort(a, 64, [](const auto& p) { return p.first; });
  EXPECT_EQ(a, expected);
}

TEST(IntegerSort, SingleBucketIsNoOp) {
  std::vector<int> a = {3, 1, 2};
  primitives::IntegerSort(a, 1, [](int) { return 0u; });
  EXPECT_EQ(a, (std::vector<int>{3, 1, 2}));
}

TEST(IntegerSort, SerialPathMatches) {
  ScopedNumWorkers scope(1);
  std::vector<uint32_t> a(5000);
  std::mt19937 rng(4);
  for (auto& x : a) x = rng() % 16;
  auto expected = a;
  std::stable_sort(expected.begin(), expected.end());
  primitives::IntegerSort(a, 16, [](uint32_t x) { return x; });
  EXPECT_EQ(a, expected);
}

// --- Semisort ------------------------------------------------------------------

TEST(Semisort, GroupsEqualKeysContiguously) {
  ScopedNumWorkers scope(4);
  const size_t n = 200000;
  const size_t num_keys = 500;
  std::mt19937_64 rng(11);
  std::vector<std::pair<uint64_t, uint32_t>> pairs(n);
  std::vector<size_t> expected_count(num_keys, 0);
  for (size_t i = 0; i < n; ++i) {
    const uint64_t k = rng() % num_keys;
    pairs[i] = {k, static_cast<uint32_t>(i)};
    ++expected_count[k];
  }
  auto result = primitives::Semisort<uint64_t, uint32_t>(
      std::span<const std::pair<uint64_t, uint32_t>>(pairs),
      [](uint64_t k) { return primitives::Hash64(k); },
      [](uint64_t a, uint64_t b) { return a == b; });
  ASSERT_EQ(result.items.size(), n);
  ASSERT_EQ(result.num_groups(), num_keys);
  std::vector<size_t> seen_count(num_keys, 0);
  for (size_t g = 0; g < result.num_groups(); ++g) {
    const size_t lo = result.group_offsets[g];
    const size_t hi = result.group_offsets[g + 1];
    ASSERT_LT(lo, hi);
    const uint64_t key = result.items[lo].first;
    for (size_t i = lo; i < hi; ++i) {
      ASSERT_EQ(result.items[i].first, key);
    }
    ASSERT_EQ(seen_count[key], 0u) << "key split across groups";
    seen_count[key] = hi - lo;
  }
  EXPECT_EQ(seen_count, expected_count);
}

TEST(Semisort, PreservesEveryValue) {
  ScopedNumWorkers scope(4);
  const size_t n = 50000;
  std::vector<std::pair<uint64_t, uint32_t>> pairs(n);
  for (size_t i = 0; i < n; ++i) {
    pairs[i] = {i % 97, static_cast<uint32_t>(i)};
  }
  auto result = primitives::Semisort<uint64_t, uint32_t>(
      std::span<const std::pair<uint64_t, uint32_t>>(pairs),
      [](uint64_t k) { return primitives::Hash64(k); },
      [](uint64_t a, uint64_t b) { return a == b; });
  std::vector<uint32_t> values;
  values.reserve(n);
  for (const auto& [k, v] : result.items) values.push_back(v);
  std::sort(values.begin(), values.end());
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(values[i], i);
}

TEST(Semisort, AdversarialHashCollisionsStillGroupExactly) {
  // A constant hash forces every pair into one bucket and one hash-run;
  // grouping must fall back to key equality.
  std::vector<std::pair<uint64_t, uint32_t>> pairs;
  for (uint32_t i = 0; i < 300; ++i) pairs.push_back({i % 3, i});
  auto result = primitives::Semisort<uint64_t, uint32_t>(
      std::span<const std::pair<uint64_t, uint32_t>>(pairs),
      [](uint64_t) { return 42u; }, [](uint64_t a, uint64_t b) { return a == b; });
  EXPECT_EQ(result.num_groups(), 3u);
  for (size_t g = 0; g < 3; ++g) {
    EXPECT_EQ(result.group_offsets[g + 1] - result.group_offsets[g], 100u);
  }
}

TEST(Semisort, EmptyInput) {
  std::vector<std::pair<uint64_t, uint32_t>> pairs;
  auto result = primitives::Semisort<uint64_t, uint32_t>(
      std::span<const std::pair<uint64_t, uint32_t>>(pairs),
      [](uint64_t k) { return k; }, [](uint64_t a, uint64_t b) { return a == b; });
  EXPECT_EQ(result.num_groups(), 0u);
}

// --- Merge ---------------------------------------------------------------------

class MergeTest : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(MergeTest, MatchesStdMerge) {
  const auto [na, nb] = GetParam();
  std::mt19937 rng(static_cast<unsigned>(na * 131 + nb));
  std::vector<int> a(na), b(nb);
  for (auto& x : a) x = static_cast<int>(rng() % 10000);
  for (auto& x : b) x = static_cast<int>(rng() % 10000);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  std::vector<int> expected(na + nb), got(na + nb);
  std::merge(a.begin(), a.end(), b.begin(), b.end(), expected.begin());
  ScopedNumWorkers scope(4);
  primitives::ParallelMerge(std::span<const int>(a), std::span<const int>(b),
                            std::span<int>(got));
  EXPECT_EQ(got, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, MergeTest,
    ::testing::Values(std::pair<size_t, size_t>{0, 0},
                      std::pair<size_t, size_t>{0, 10},
                      std::pair<size_t, size_t>{10, 0},
                      std::pair<size_t, size_t>{1000, 1},
                      std::pair<size_t, size_t>{50000, 50000},
                      std::pair<size_t, size_t>{100000, 3000}));

// --- Pointer jumping --------------------------------------------------------------

TEST(PointerJump, PropagatesAlongChain) {
  // Chain 0 -> 1 -> 2 -> ... -> n-1; flag starts at 0 only.
  const size_t n = 10000;
  std::vector<size_t> next(n);
  for (size_t i = 0; i < n; ++i) next[i] = i + 1 < n ? i + 1 : i;
  std::vector<uint8_t> flags(n, 0);
  flags[0] = 1;
  ScopedNumWorkers scope(4);
  primitives::PointerJumpPropagate(next, flags);
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(flags[i], 1) << i;
}

TEST(PointerJump, SkipChainMarksOnlyReachableNodes) {
  // 0 -> 2 -> 4 -> ... even nodes only.
  const size_t n = 1001;
  std::vector<size_t> next(n);
  for (size_t i = 0; i < n; ++i) next[i] = i + 2 < n ? i + 2 : i;
  std::vector<uint8_t> flags(n, 0);
  flags[0] = 1;
  primitives::PointerJumpPropagate(next, flags);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(flags[i], i % 2 == 0 ? 1 : 0) << i;
  }
}

TEST(PointerJump, NoInitialFlagsStaysEmpty) {
  std::vector<size_t> next = {1, 2, 3, 3};
  std::vector<uint8_t> flags(4, 0);
  primitives::PointerJumpPropagate(next, flags);
  EXPECT_EQ(flags, (std::vector<uint8_t>{0, 0, 0, 0}));
}

// --- Hash-based randomness ----------------------------------------------------------

TEST(Random, DeterministicAndWellDistributed) {
  primitives::Random rng(123);
  EXPECT_EQ(rng.IthRand(5), primitives::Random(123).IthRand(5));
  EXPECT_NE(rng.IthRand(5), rng.IthRand(6));
  // Doubles must land in [0, 1) and look uniform-ish.
  double sum = 0;
  for (uint64_t i = 0; i < 10000; ++i) {
    const double x = rng.IthDouble(i);
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Random, ForkProducesIndependentStreams) {
  primitives::Random rng(7);
  auto a = rng.Fork(1);
  auto b = rng.Fork(2);
  EXPECT_NE(a.IthRand(0), b.IthRand(0));
}

}  // namespace
}  // namespace pdbscan
