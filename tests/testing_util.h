// Shared test infrastructure: the randomized dataset generators and result
// comparators that the property-sweep, concurrency, determinism and
// streaming suites all use. One copy here instead of one per suite, so a
// generator tweak (or a new degenerate shape) hardens every suite at once.
//
// Budget knob: PDBSCAN_SWEEP_BUDGET (int, default 1) multiplies the number
// of randomized cases the property-style suites run. The PR-blocking CI
// jobs run at the default; the non-blocking slow-sweep job (ctest label
// `slow-sweep`) runs the same binaries at a larger budget.
#ifndef PDBSCAN_TESTS_TESTING_UTIL_H_
#define PDBSCAN_TESTS_TESTING_UTIL_H_

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dbscan/types.h"
#include "geometry/point.h"
#include "util/env.h"

namespace pdbscan::testing {

// Multiplier on randomized-case counts (see header comment).
inline size_t SweepBudget() {
  const int budget = util::GetEnvInt("PDBSCAN_SWEEP_BUDGET", 1);
  return budget < 1 ? 1 : static_cast<size_t>(budget);
}

// Seed override for every randomized generator: PDBSCAN_TEST_SEED (uint64,
// default 0 = the historical fixed sequences) is mixed into MakeCases'
// base seed, so repeated CI runs can explore different case sets while any
// single failure stays reproducible — re-export the printed value. Parsed
// as a string to keep the full 64-bit range.
inline uint64_t TestSeed() {
  static const uint64_t seed = [] {
    const std::string raw = util::GetEnvString("PDBSCAN_TEST_SEED", "0");
    return std::strtoull(raw.c_str(), nullptr, 10);
  }();
  return seed;
}

// Appended to property-sweep failure messages: names the environment seed
// a failing run was generated under (empty for the default sequences, so
// existing messages are unchanged).
inline std::string SeedNote() {
  return TestSeed() == 0
             ? std::string()
             : " PDBSCAN_TEST_SEED=" + std::to_string(TestSeed());
}

// Data shapes that stress different pipeline paths: uniform noise, Gaussian
// blobs, axis-parallel lines (degenerate geometry: collinear Delaunay
// inputs, single-row grids), near-lattice points (exact distance and cell
// boundary ties), and a mixture.
enum class Shape { kUniform, kBlobs, kLines, kGridish, kMixed };

inline constexpr Shape kAllShapes[] = {Shape::kUniform, Shape::kBlobs,
                                       Shape::kLines, Shape::kGridish,
                                       Shape::kMixed};

template <int D>
std::vector<geometry::Point<D>> GenerateShape(Shape shape, size_t n,
                                              uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coord(0.0, 20.0);
  std::normal_distribution<double> gauss(0.0, 0.7);
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  std::vector<geometry::Point<D>> pts(n);
  switch (shape) {
    case Shape::kUniform:
      for (auto& p : pts) {
        for (int k = 0; k < D; ++k) p[k] = coord(rng);
      }
      break;
    case Shape::kBlobs: {
      std::vector<geometry::Point<D>> centers(4);
      for (auto& c : centers) {
        for (int k = 0; k < D; ++k) c[k] = coord(rng);
      }
      for (size_t i = 0; i < n; ++i) {
        const auto& c = centers[i % centers.size()];
        for (int k = 0; k < D; ++k) pts[i][k] = c[k] + gauss(rng);
      }
      break;
    }
    case Shape::kLines: {
      // Points along axis-parallel segments: stresses degenerate geometry
      // (collinear Delaunay inputs, single-row grids).
      for (size_t i = 0; i < n; ++i) {
        const int axis = static_cast<int>(rng() % D);
        const double offset = coord(rng);
        for (int k = 0; k < D; ++k) pts[i][k] = std::floor(coord(rng) / 5) * 5;
        pts[i][axis] = offset;
      }
      break;
    }
    case Shape::kGridish: {
      // Near-lattice points: exact ties in distances and cell boundaries.
      for (size_t i = 0; i < n; ++i) {
        for (int k = 0; k < D; ++k) {
          pts[i][k] = std::floor(coord(rng)) + (u01(rng) < 0.3 ? 0.5 : 0.0);
        }
      }
      break;
    }
    case Shape::kMixed: {
      for (size_t i = 0; i < n; ++i) {
        if (u01(rng) < 0.5) {
          for (int k = 0; k < D; ++k) pts[i][k] = coord(rng);
        } else {
          for (int k = 0; k < D; ++k) pts[i][k] = 10 + gauss(rng);
        }
      }
      break;
    }
  }
  return pts;
}

// One randomized configuration for a property-style case.
struct SweepCase {
  Shape shape;
  size_t n;
  double epsilon;
  size_t min_pts;
  uint64_t seed;
};

inline std::vector<SweepCase> MakeCases(uint64_t base_seed, size_t count) {
  // TestSeed() == 0 leaves the historical sequences untouched (x * k == 0).
  std::mt19937_64 rng(base_seed ^ (TestSeed() * 0x9e3779b97f4a7c15ull));
  std::vector<SweepCase> cases;
  for (size_t i = 0; i < count; ++i) {
    SweepCase c;
    c.shape = kAllShapes[rng() % 5];
    c.n = 50 + rng() % 350;
    const double eps_choices[] = {0.3, 0.7, 1.1, 2.0, 4.5};
    c.epsilon = eps_choices[rng() % 5];
    const size_t minpts_choices[] = {1, 2, 4, 8, 20};
    c.min_pts = minpts_choices[rng() % 5];
    c.seed = rng();
    cases.push_back(c);
  }
  return cases;
}

// Gaussian blobs plus 10% uniform noise — the serving-suite workload.
template <int D>
std::vector<geometry::Point<D>> BlobPoints(size_t n, size_t blobs, double side,
                                           double sigma, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coord(0.0, side);
  std::normal_distribution<double> gauss(0.0, sigma);
  std::vector<geometry::Point<D>> centers(blobs);
  for (auto& c : centers) {
    for (int k = 0; k < D; ++k) c[k] = coord(rng);
  }
  std::vector<geometry::Point<D>> pts(n);
  for (size_t i = 0; i < n; ++i) {
    if (i % 10 == 9) {  // 10% noise.
      for (int k = 0; k < D; ++k) pts[i][k] = coord(rng);
    } else {
      const auto& c = centers[i % blobs];
      for (int k = 0; k < D; ++k) pts[i][k] = c[k] + gauss(rng);
    }
  }
  return pts;
}

// Bit-identical comparison of the full result contract (not just the
// partition): cluster ids, core flags, and membership lists.
inline void ExpectIdentical(const Clustering& expected, const Clustering& got,
                            const std::string& context) {
  EXPECT_EQ(expected.num_clusters, got.num_clusters) << context;
  EXPECT_EQ(expected.cluster, got.cluster) << context;
  EXPECT_EQ(expected.is_core, got.is_core) << context;
  EXPECT_EQ(expected.membership_offsets, got.membership_offsets) << context;
  EXPECT_EQ(expected.membership_ids, got.membership_ids) << context;
}

inline bool Identical(const Clustering& a, const Clustering& b) {
  return a.num_clusters == b.num_clusters && a.cluster == b.cluster &&
         a.is_core == b.is_core &&
         a.membership_offsets == b.membership_offsets &&
         a.membership_ids == b.membership_ids;
}

}  // namespace pdbscan::testing

#endif  // PDBSCAN_TESTS_TESTING_UTIL_H_
