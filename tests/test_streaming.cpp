// Streaming contract: a DynamicCellIndex maintained through insert/erase
// batches publishes snapshots whose clusterings are SameClustering-equal to
// from-scratch runs on the mutated dataset (with the brute-force oracle as
// final arbiter), rebuilds only the dirty eps-neighborhood of each batch,
// and hands snapshots over to the serving layer without disturbing readers.
#include <algorithm>
#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "dbscan/verify.h"
#include "pdbscan/pdbscan.h"
#include "streaming/dynamic_cell_index.h"
#include "testing_util.h"

namespace pdbscan {
namespace {

using dbscan::BruteForceDbscan;
using dbscan::SameClustering;
using geometry::Point;
using pdbscan::testing::BlobPoints;
using pdbscan::testing::ExpectIdentical;
using pdbscan::testing::GenerateShape;
using pdbscan::testing::Shape;

// --- Basic lifecycle --------------------------------------------------------

TEST(Streaming, EmptyIndexServesEmptyClustering) {
  StreamingClusterer<2> stream(1.0, 10);
  const Clustering c = stream.Run(3);
  EXPECT_EQ(c.size(), 0u);
  EXPECT_EQ(c.num_clusters, 0u);
  EXPECT_EQ(stream.num_points(), 0u);
  // Erase-to-empty round-trips back to the empty snapshot.
  const auto pts = GenerateShape<2>(Shape::kBlobs, 120, 7);
  const uint64_t first = stream.Insert(pts);
  EXPECT_EQ(first, 0u);
  EXPECT_EQ(stream.num_points(), 120u);
  std::vector<uint64_t> all(pts.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = first + i;
  stream.Erase(all);
  EXPECT_EQ(stream.num_points(), 0u);
  EXPECT_EQ(stream.Run(3).size(), 0u);
}

TEST(Streaming, IdsAreConsecutiveAndStable) {
  StreamingClusterer<2> stream(1.0, 10);
  const auto a = GenerateShape<2>(Shape::kUniform, 40, 1);
  const auto b = GenerateShape<2>(Shape::kUniform, 25, 2);
  const uint64_t first_a = stream.Insert(a);
  const uint64_t first_b = stream.Insert(b);
  EXPECT_EQ(first_a, 0u);
  EXPECT_EQ(first_b, 40u);
  // Erasing from the middle keeps the remaining ids and dataset order.
  stream.Erase(std::vector<uint64_t>{3, 10, 41});
  const auto& ids = stream.LiveIds();
  EXPECT_EQ(ids.size(), 62u);
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
  EXPECT_EQ(std::count(ids.begin(), ids.end(), 3u), 0);
  EXPECT_EQ(std::count(ids.begin(), ids.end(), 41u), 0);
  // LivePoints follows id order: position of id 4 is 3 (0,1,2,4,...).
  const auto pts = stream.LivePoints();
  EXPECT_EQ(pts[3].x, a[4].x);
}

// --- Incremental vs. from-scratch equivalence -------------------------------

// Randomized batches; every published snapshot must cluster exactly like a
// from-scratch run on the live dataset, with the oracle arbitrating.
TEST(Streaming, RandomizedBatchesMatchRebuildAndOracle) {
  const double eps = 0.9;
  std::mt19937_64 rng(99);
  StreamingClusterer<2> stream(eps, /*counts_cap=*/20);
  std::vector<uint64_t> live;
  const size_t rounds = 8 * pdbscan::testing::SweepBudget();
  for (size_t round = 0; round < rounds; ++round) {
    const auto ins = GenerateShape<2>(
        pdbscan::testing::kAllShapes[round % 5], 40 + rng() % 80, rng());
    std::shuffle(live.begin(), live.end(), rng);
    const size_t erase_n = live.empty() ? 0 : rng() % (2 * live.size() / 3 + 1);
    std::vector<uint64_t> del(live.begin(),
                              live.begin() + static_cast<ptrdiff_t>(erase_n));
    live.erase(live.begin(), live.begin() + static_cast<ptrdiff_t>(erase_n));
    const uint64_t first = stream.ApplyUpdates(ins, del);
    for (size_t i = 0; i < ins.size(); ++i) live.push_back(first + i);

    const auto pts = stream.LivePoints();
    for (const size_t min_pts : {1u, 5u, 12u, 30u}) {  // 30 is over-cap.
      const auto got = stream.Run(min_pts);
      ASSERT_TRUE(SameClustering(Dbscan<2>(pts, eps, min_pts), got))
          << "round=" << round << " minpts=" << min_pts << " n=" << pts.size();
      const auto oracle = BruteForceDbscan<2>(
          std::span<const Point<2>>(pts), eps, min_pts);
      ASSERT_TRUE(SameClustering(oracle, got))
          << "oracle round=" << round << " minpts=" << min_pts;
    }
  }
}

// Pure insert growth and pure erase shrinkage, no mixing.
TEST(Streaming, InsertOnlyAndEraseOnlyPhases) {
  const double eps = 1.2;
  StreamingClusterer<2> stream(eps, 15);
  const auto pts = BlobPoints<2>(600, 4, 25.0, 1.0, 11);
  for (size_t chunk = 0; chunk < 6; ++chunk) {
    stream.Insert(std::span<const Point<2>>(pts.data() + chunk * 100, 100));
    const auto live = stream.LivePoints();
    ASSERT_TRUE(SameClustering(Dbscan<2>(live, eps, 8), stream.Run(8)))
        << "insert chunk=" << chunk;
  }
  for (size_t chunk = 0; chunk < 5; ++chunk) {
    std::vector<uint64_t> del(100);
    for (size_t i = 0; i < 100; ++i) del[i] = chunk * 100 + i;
    stream.Erase(del);
    const auto live = stream.LivePoints();
    ASSERT_TRUE(SameClustering(Dbscan<2>(live, eps, 8), stream.Run(8)))
        << "erase chunk=" << chunk;
  }
  EXPECT_EQ(stream.num_points(), 100u);
}

// A min_pts sweep against a streamed snapshot equals engine sweeps on the
// same data, setting by setting.
TEST(Streaming, SweepMatchesRebuildSweep) {
  const double eps = 1.0;
  StreamingClusterer<2> stream(eps, 40);
  stream.Insert(BlobPoints<2>(900, 5, 22.0, 0.9, 17));
  stream.Erase(std::vector<uint64_t>{5, 50, 500, 899});
  const auto live = stream.LivePoints();
  const std::vector<size_t> settings = {2, 6, 18, 40};
  const auto sweep = stream.Sweep(std::span<const size_t>(settings));
  ASSERT_EQ(sweep.size(), settings.size());
  for (size_t i = 0; i < settings.size(); ++i) {
    ASSERT_TRUE(SameClustering(Dbscan<2>(live, eps, settings[i]), sweep[i]))
        << "sweep minpts=" << settings[i];
  }
}

// --- The dirty-cell invariant ----------------------------------------------

// A small batch into a large dataset must rebuild only the batch's
// eps-neighborhood, retaining (and positionally copying) everything else.
TEST(Streaming, SmallBatchRebuildsOnlyDirtyNeighborhood) {
  const double eps = 0.8;
  StreamingClusterer<2> stream(eps, 20);
  stream.Insert(BlobPoints<2>(4000, 6, 60.0, 1.2, 23));
  const size_t total_cells = stream.num_cells();
  ASSERT_GT(total_cells, 200u);

  // One new point: its cell + eps-neighbors rebuild; in 2D (side =
  // eps/sqrt(2)) the neighborhood is at most the 5x5 block minus the
  // center — 24 cells, corner offsets sit exactly at distance eps — so a
  // one-point batch rebuilds at most 25 cells regardless of dataset size.
  std::vector<Point<2>> one = {{{30.0, 30.0}}};
  stream.Insert(one);
  const auto& after_insert = stream.last_update();
  EXPECT_LE(after_insert.cells_rebuilt, 25u);
  EXPECT_GE(after_insert.cells_retained, total_cells - 25u);
  ASSERT_TRUE(SameClustering(Dbscan<2>(stream.LivePoints(), eps, 10),
                             stream.Run(10)));

  // One erase likewise.
  stream.Erase(std::vector<uint64_t>{0});
  const auto& after_erase = stream.last_update();
  EXPECT_LE(after_erase.cells_rebuilt, 25u);
  ASSERT_TRUE(SameClustering(Dbscan<2>(stream.LivePoints(), eps, 10),
                             stream.Run(10)));

  // Cumulative counters land in the writer's stats sink.
  EXPECT_EQ(stream.update_stats().snapshots_published.load(), 4u);
  EXPECT_GT(stream.update_stats().cells_retained.load(), 0u);
}

// Emptying a cell entirely must recount the cells that used to neighbor it
// (their eps-neighborhood lost points) — the vanished-cell edge of the
// dirty invariant.
TEST(Streaming, VanishedCellRecountsItsOldNeighbors) {
  const double eps = 1.0;
  // Two adjacent dense columns; erasing one whole column must demote core
  // points in the surviving column.
  std::vector<Point<2>> left, right;
  for (int i = 0; i < 12; ++i) {
    left.push_back({{0.05, 0.05 + i * 0.01}});
    right.push_back({{0.75, 0.05 + i * 0.01}});
  }
  StreamingClusterer<2> stream(eps, 30);
  const uint64_t first_left = stream.Insert(left);
  const uint64_t first_right = stream.Insert(right);
  ASSERT_TRUE(SameClustering(Dbscan<2>(stream.LivePoints(), eps, 20),
                             stream.Run(20)));
  // Erase the whole right-hand cell.
  std::vector<uint64_t> del(right.size());
  for (size_t i = 0; i < del.size(); ++i) del[i] = first_right + i;
  stream.Erase(del);
  (void)first_left;
  const auto live = stream.LivePoints();
  ASSERT_EQ(live.size(), left.size());
  // From-scratch agreement is exactly what fails if the vanished cell's old
  // neighbors kept their stale counts (12 + 12 >= 20 but 12 < 20).
  ASSERT_TRUE(SameClustering(Dbscan<2>(live, eps, 20), stream.Run(20)));
  EXPECT_EQ(stream.Run(20).num_clusters, 0u);
}

// --- Snapshot hand-over ----------------------------------------------------

// Old snapshots stay valid and immutable after further updates: a reader
// holding a pinned snapshot sees its version forever.
TEST(Streaming, PinnedSnapshotsSurviveLaterUpdates) {
  const double eps = 1.0;
  StreamingClusterer<2> stream(eps, 15);
  stream.Insert(BlobPoints<2>(500, 3, 18.0, 0.8, 31));
  const auto snap_v1 = stream.snapshot();
  const auto pts_v1 = stream.LivePoints();
  dbscan::PipelineStats stats;
  dbscan::QueryContext<2> ctx(&stats);
  const Clustering before = ctx.Run(snap_v1, 6);

  stream.Insert(BlobPoints<2>(300, 2, 18.0, 0.8, 37));
  stream.Erase(std::vector<uint64_t>{1, 2, 3});
  // The pinned snapshot still answers identically…
  ExpectIdentical(before, ctx.Run(snap_v1, 6), "pinned snapshot");
  ASSERT_TRUE(SameClustering(Dbscan<2>(pts_v1, eps, 6), before));
  // …while the stream serves the new state.
  ASSERT_TRUE(SameClustering(Dbscan<2>(stream.LivePoints(), eps, 6),
                             stream.Run(6)));
}

// DynamicCellIndex snapshots plug into a standalone EnginePool via
// ReplaceIndex, and queries via the pool match queries via the stream.
TEST(Streaming, EnginePoolHandOver) {
  const double eps = 1.1;
  streaming::DynamicCellIndex<2> index(eps, 12);
  parallel::EnginePool<2> pool(index.snapshot());
  EXPECT_EQ(pool.Run(3).size(), 0u);

  const auto pts = BlobPoints<2>(800, 4, 20.0, 0.9, 41);
  index.ApplyUpdates(pts, {});
  pool.ReplaceIndex(index.snapshot());
  ExpectIdentical(pool.Run(7), Dbscan<2>(index.LivePoints(), eps, 7),
                  "pool after hand-over (same grid anchoring)");
}

// --- Validation -------------------------------------------------------------

TEST(Streaming, InvalidArgumentsThrow) {
  EXPECT_THROW(StreamingClusterer<2>(-1.0, 10), std::invalid_argument);
  EXPECT_THROW(StreamingClusterer<2>(1.0, 0), std::invalid_argument);
  // Box cells and quadtree range counting are inherently non-incremental.
  EXPECT_THROW(StreamingClusterer<2>(1.0, 10, Our2dBoxBcp()),
               std::invalid_argument);
  EXPECT_THROW(StreamingClusterer<2>(1.0, 10, OurExactQt()),
               std::invalid_argument);

  StreamingClusterer<2> stream(1.0, 10);
  const auto pts = GenerateShape<2>(Shape::kUniform, 20, 3);
  stream.Insert(pts);
  // Unknown and duplicate erase ids reject the whole batch atomically.
  EXPECT_THROW(stream.Erase(std::vector<uint64_t>{99}),
               std::invalid_argument);
  EXPECT_THROW(stream.Erase(std::vector<uint64_t>{1, 1}),
               std::invalid_argument);
  EXPECT_EQ(stream.num_points(), 20u);
  ASSERT_TRUE(SameClustering(Dbscan<2>(stream.LivePoints(), 1.0, 3),
                             stream.Run(3)));
  EXPECT_THROW(stream.Run(0), std::invalid_argument);
}

// The adopted-snapshot constructor rejects mismatched artifacts.
TEST(Streaming, AdoptionConstructorValidates) {
  const auto pts = GenerateShape<2>(Shape::kUniform, 50, 5);
  dbscan::CellSource<2> source;
  source.Reset(std::span<const Point<2>>(pts), CellMethod::kGrid);
  dbscan::CellStructure<2> cells = source.Acquire(1.0);  // Copy out.
  std::vector<uint32_t> short_counts(cells.num_points() - 1, 1);
  EXPECT_THROW(dbscan::CellIndex<2>(std::move(cells), std::move(short_counts),
                                    5),
               std::invalid_argument);
}

}  // namespace
}  // namespace pdbscan
