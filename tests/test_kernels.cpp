// Unit tests for the SIMD distance-kernel layer (src/kernels/) and the
// FlatArray storage extensions that feed it (aligned owned buffers and
// strided views). The end-to-end bit-identity of the dispatched kernels
// through the full pipeline lives in test_property_sweep.cpp
// (KernelPropertySweep); this file exercises the primitives directly.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <random>
#include <vector>

#include "containers/flat_array.h"
#include "dbscan/grid.h"
#include "geometry/quadtree.h"
#include "kernels/kernel_api.h"

namespace pdbscan {
namespace {

using containers::FlatArray;
using geometry::BBox;
using geometry::Point;

// --- FlatArray: aligned owned storage --------------------------------------

TEST(FlatArrayAligned, AllocateAlignedIs64ByteAligned) {
  FlatArray<double> a;
  for (size_t n : {1ul, 3ul, 8ul, 9ul, 1000ul}) {
    double* p = a.AllocateAligned(n);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % FlatArray<double>::kAlignment,
              0u)
        << "n=" << n;
    EXPECT_EQ(a.size(), n);
    EXPECT_TRUE(a.is_aligned());
    EXPECT_TRUE(a.contiguous());
    for (size_t i = 0; i < n; ++i) p[i] = static_cast<double>(i);
    // Read through const: the non-const accessors are copy-on-write and
    // would degrade aligned storage to a plain vector.
    const FlatArray<double>& ca = a;
    for (size_t i = 0; i < n; ++i) EXPECT_EQ(ca[i], static_cast<double>(i));
  }
}

TEST(FlatArrayAligned, AllocateAlignedZeroIsEmpty) {
  FlatArray<double> a;
  EXPECT_EQ(a.AllocateAligned(0), nullptr);
  EXPECT_TRUE(a.empty());
  EXPECT_FALSE(a.is_aligned());
}

TEST(FlatArrayAligned, CopyDeepCopiesAndStaysAligned) {
  FlatArray<double> a;
  double* p = a.AllocateAligned(5);
  for (size_t i = 0; i < 5; ++i) p[i] = static_cast<double>(10 + i);
  const FlatArray<double> b = a;
  EXPECT_TRUE(b.is_aligned());
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b.data()) %
                FlatArray<double>::kAlignment,
            0u);
  EXPECT_TRUE(a == b);
  // Deep copy: mutating the source through its base pointer does not
  // affect the copy.
  p[0] = -1.0;
  EXPECT_EQ(b[0], 10.0);
}

TEST(FlatArrayAligned, MoveTransfersStorage) {
  FlatArray<double> a;
  double* p = a.AllocateAligned(4);
  for (size_t i = 0; i < 4; ++i) p[i] = static_cast<double>(i);
  const FlatArray<double> b = std::move(a);
  EXPECT_TRUE(b.is_aligned());
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(b.size(), 4u);
}

TEST(FlatArrayAligned, VectorMutationDegradesToOwnedVector) {
  FlatArray<double> a;
  double* p = a.AllocateAligned(3);
  p[0] = 1.0;
  p[1] = 2.0;
  p[2] = 3.0;
  a.push_back(4.0);
  EXPECT_FALSE(a.is_aligned());
  EXPECT_EQ(a.size(), 4u);
  EXPECT_EQ(a[0], 1.0);
  EXPECT_EQ(a[3], 4.0);
}

// --- FlatArray: strided views ----------------------------------------------

TEST(FlatArrayStrided, StridedViewReadsEveryStrideThElement) {
  // AoS buffer of 6 "points" in 3 dimensions; lane d views offset d with
  // stride 3 — exactly how mapped snapshots serve SoA lanes.
  std::vector<double> aos;
  for (int i = 0; i < 6; ++i) {
    for (int d = 0; d < 3; ++d) aos.push_back(i * 10.0 + d);
  }
  for (int d = 0; d < 3; ++d) {
    const auto lane = FlatArray<double>::StridedView(aos.data() + d, 6, 3);
    EXPECT_TRUE(lane.is_view());
    EXPECT_EQ(lane.stride(), 3u);
    EXPECT_FALSE(lane.contiguous());
    ASSERT_EQ(lane.size(), 6u);
    for (size_t i = 0; i < 6; ++i) EXPECT_EQ(lane[i], i * 10.0 + d);
  }
}

TEST(FlatArrayStrided, EqualityComparesElementsAcrossStorageKinds) {
  std::vector<double> aos = {0, 100, 1, 101, 2, 102};
  auto strided = FlatArray<double>::StridedView(aos.data(), 3, 2);
  FlatArray<double> owned(std::vector<double>{0, 1, 2});
  FlatArray<double> aligned;
  double* p = aligned.AllocateAligned(3);
  p[0] = 0;
  p[1] = 1;
  p[2] = 2;
  EXPECT_TRUE(strided == owned);
  EXPECT_TRUE(strided == aligned);
  EXPECT_TRUE(owned == aligned);
  FlatArray<double> different(std::vector<double>{0, 1, 3});
  EXPECT_FALSE(strided == different);
}

TEST(FlatArrayStrided, EnsureOwnedGathersStridedElements) {
  std::vector<double> aos = {0, 100, 1, 101, 2, 102};
  auto lane = FlatArray<double>::StridedView(aos.data(), 3, 2);
  lane.push_back(3.0);  // first mutation gathers the view
  EXPECT_FALSE(lane.is_view());
  EXPECT_EQ(lane.stride(), 1u);
  ASSERT_EQ(lane.size(), 4u);
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(lane[i], static_cast<double>(i));
}

// --- Dispatch --------------------------------------------------------------

// Restores the ambient dispatch level on scope exit so a failing test can't
// leak a forced level into the rest of the binary.
struct ScopedKernelLevel {
  kernels::Level original = kernels::ActiveLevel();
  ~ScopedKernelLevel() { kernels::ForceLevel(original); }
};

TEST(KernelDispatch, SupportedLevelsStartAtScalarAndAscend) {
  const auto levels = kernels::SupportedLevels();
  ASSERT_FALSE(levels.empty());
  EXPECT_EQ(levels.front(), kernels::Level::kScalar);
  for (size_t i = 1; i < levels.size(); ++i) {
    EXPECT_LT(static_cast<int>(levels[i - 1]), static_cast<int>(levels[i]));
  }
  EXPECT_EQ(levels.back(), kernels::BestSupportedLevel());
  for (const auto level : levels) {
    EXPECT_TRUE(kernels::LevelSupported(level));
  }
}

TEST(KernelDispatch, ForceLevelClampsToBestSupported) {
  ScopedKernelLevel restore;
  kernels::ForceLevel(kernels::Level::kScalar);
  EXPECT_EQ(kernels::ActiveLevel(), kernels::Level::kScalar);
  // Asking for the top level clamps to the best this binary+CPU supports.
  kernels::ForceLevel(kernels::Level::kAvx512);
  EXPECT_EQ(kernels::ActiveLevel(), kernels::BestSupportedLevel());
}

TEST(KernelDispatch, ParseLevelRoundTripsNames) {
  for (const auto level :
       {kernels::Level::kScalar, kernels::Level::kAvx2,
        kernels::Level::kAvx512}) {
    kernels::Level parsed;
    ASSERT_TRUE(kernels::ParseLevel(kernels::LevelName(level), &parsed));
    EXPECT_EQ(parsed, level);
  }
  kernels::Level parsed = kernels::Level::kAvx2;
  EXPECT_FALSE(kernels::ParseLevel("sse9", &parsed));
  EXPECT_EQ(parsed, kernels::Level::kAvx2);  // untouched on failure
}

// --- count_within vs a naive reference -------------------------------------

// The reference performs the accumulation exactly as the contract specifies
// (dimension order, fl(sum + fl(diff*diff))), so agreement must be exact.
size_t ReferenceCountWithin(const std::vector<double>& aos, int dim,
                            const double* q, double eps2, size_t cap) {
  const size_t n = dim > 0 ? aos.size() / static_cast<size_t>(dim) : 0;
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    double d2 = 0;
    for (int d = 0; d < dim; ++d) {
      const double diff = aos[i * static_cast<size_t>(dim) +
                              static_cast<size_t>(d)] -
                          q[d];
      d2 += diff * diff;
    }
    if (d2 <= eps2) ++count;
  }
  return count < cap ? count : cap;
}

TEST(CountWithin, AllLevelsMatchReferenceExactly) {
  std::mt19937_64 rng(20260808);
  std::uniform_real_distribution<double> coord(-1.0, 1.0);
  const auto levels = kernels::SupportedLevels();
  const size_t caps[] = {0, 1, 2, 5, 7, 13, SIZE_MAX};
  for (int trial = 0; trial < 400; ++trial) {
    const int dim = 1 + static_cast<int>(rng() % 8);
    const size_t n = rng() % 71;
    std::vector<double> aos(n * static_cast<size_t>(dim));
    for (double& v : aos) v = coord(rng);
    std::array<double, 8> q;
    for (int d = 0; d < dim; ++d) q[static_cast<size_t>(d)] = coord(rng);
    // Half the trials aim eps2 at an exact point distance so the d2 == eps2
    // boundary (<= vs <) is routinely on the line; the rest use a random
    // radius, including tiny ones that exercise the partial-norm prune.
    double eps2;
    if (n > 0 && trial % 2 == 0) {
      const size_t pick = rng() % n;
      eps2 = 0;
      for (int d = 0; d < dim; ++d) {
        const double diff =
            aos[pick * static_cast<size_t>(dim) + static_cast<size_t>(d)] -
            q[static_cast<size_t>(d)];
        eps2 += diff * diff;
      }
    } else {
      std::uniform_real_distribution<double> radius(0.0, 0.5);
      const double r = radius(rng);
      eps2 = r * r;
    }
    // Packed aligned lanes (stride 1) and strided AoS views (stride dim):
    // both must agree with the reference at every level.
    std::array<FlatArray<double>, 8> packed;
    std::array<const double*, 8> packed_lanes;
    std::array<const double*, 8> strided_lanes;
    for (int d = 0; d < dim; ++d) {
      double* dst = packed[static_cast<size_t>(d)].AllocateAligned(n);
      for (size_t i = 0; i < n; ++i) {
        dst[i] = aos[i * static_cast<size_t>(dim) + static_cast<size_t>(d)];
      }
      packed_lanes[static_cast<size_t>(d)] = dst;
      strided_lanes[static_cast<size_t>(d)] =
          n == 0 ? nullptr : aos.data() + d;
    }
    for (const size_t cap : caps) {
      const size_t expected =
          ReferenceCountWithin(aos, dim, q.data(), eps2, cap);
      for (const auto level : levels) {
        kernels::Counters kc;
        const size_t got_packed = kernels::OpsFor(level).count_within(
            packed_lanes.data(), 1, dim, n, q.data(), eps2, cap, &kc);
        EXPECT_EQ(got_packed, expected)
            << kernels::LevelName(level) << " packed trial=" << trial
            << " dim=" << dim << " n=" << n << " cap=" << cap
            << " eps2=" << eps2;
        EXPECT_LE(kc.points_pruned_norm, n);
        const size_t got_strided = kernels::OpsFor(level).count_within(
            strided_lanes.data(), static_cast<size_t>(dim), dim, n, q.data(),
            eps2, cap, nullptr);
        EXPECT_EQ(got_strided, expected)
            << kernels::LevelName(level) << " strided trial=" << trial
            << " dim=" << dim << " n=" << n << " cap=" << cap
            << " eps2=" << eps2;
      }
    }
  }
}

TEST(CountWithin, SimdLevelsRecordBatches) {
  // Not part of the result contract, but the observability counters should
  // actually move: a big unsaturated scan at a SIMD level executes batches.
  for (const auto level : kernels::SupportedLevels()) {
    if (level == kernels::Level::kScalar) continue;
    const size_t n = 64;
    FlatArray<double> lane_x, lane_y;
    double* xs = lane_x.AllocateAligned(n);
    double* ys = lane_y.AllocateAligned(n);
    for (size_t i = 0; i < n; ++i) {
      xs[i] = static_cast<double>(i);
      ys[i] = 0.0;
    }
    const double q[2] = {0.0, 0.0};
    const double* lanes[2] = {xs, ys};
    kernels::Counters kc;
    const size_t got = kernels::OpsFor(level).count_within(
        lanes, 1, 2, n, q, 4.1 * 4.1, SIZE_MAX, &kc);
    EXPECT_EQ(got, 5u) << kernels::LevelName(level);  // x in {0..4}
    EXPECT_GT(kc.batches, 0u) << kernels::LevelName(level);
    // Far batches (first coordinate alone beyond eps) are norm-pruned.
    EXPECT_GT(kc.points_pruned_norm, 0u) << kernels::LevelName(level);
  }
}

// --- SoA lanes on built structures -----------------------------------------

template <int D>
std::vector<Point<D>> RandomPoints(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coord(0.0, 1.0);
  std::vector<Point<D>> pts(n);
  for (auto& p : pts) {
    for (int d = 0; d < D; ++d) p[d] = coord(rng);
  }
  return pts;
}

TEST(SoALanes, BuildGridPopulatesAlignedLanesMatchingPoints) {
  const auto pts = RandomPoints<3>(257, 99);
  const auto cells = dbscan::BuildGrid<3>(pts, 0.15);
  ASSERT_TRUE(cells.has_soa());
  EXPECT_EQ(cells.soa_stride(), 1u);
  for (int d = 0; d < 3; ++d) {
    const auto& lane = cells.soa[static_cast<size_t>(d)];
    EXPECT_TRUE(lane.is_aligned());
    EXPECT_EQ(reinterpret_cast<uintptr_t>(lane.data()) %
                  FlatArray<double>::kAlignment,
              0u);
    ASSERT_EQ(lane.size(), cells.points.size());
    for (size_t i = 0; i < lane.size(); ++i) {
      EXPECT_EQ(lane[i], cells.points[i][d]);
    }
  }
}

TEST(SoALanes, ViewLanesServePointsWithStrideD) {
  dbscan::CellStructure<2> cells;
  cells.points = {Point<2>{{0.0, 1.0}}, Point<2>{{2.0, 3.0}},
                  Point<2>{{4.0, 5.0}}};
  cells.ViewSoALanesFromPoints();
  ASSERT_TRUE(cells.has_soa());
  EXPECT_EQ(cells.soa_stride(), 2u);
  for (int d = 0; d < 2; ++d) {
    const auto& lane = cells.soa[static_cast<size_t>(d)];
    EXPECT_TRUE(lane.is_view());
    ASSERT_EQ(lane.size(), 3u);
    for (size_t i = 0; i < 3; ++i) {
      EXPECT_EQ(lane[i], cells.points[i][d]);
    }
  }
}

// --- Quadtree leaf scans across levels -------------------------------------

TEST(QuadtreeKernels, CountInBallIdenticalAcrossLevels) {
  ScopedKernelLevel restore;
  const auto pts = RandomPoints<2>(300, 7);
  std::vector<uint32_t> indices(pts.size());
  for (uint32_t i = 0; i < indices.size(); ++i) indices[i] = i;
  auto box = BBox<2>::Empty();
  for (const auto& p : pts) box.Extend(p);
  const geometry::CellQuadtree<2> tree(pts, indices, box);
  std::mt19937_64 rng(13);
  std::uniform_real_distribution<double> coord(-0.1, 1.1);
  std::uniform_real_distribution<double> radius(0.0, 0.4);
  for (int trial = 0; trial < 50; ++trial) {
    Point<2> center{{coord(rng), coord(rng)}};
    const double r = radius(rng);
    const size_t cap = trial % 3 == 0 ? 1 + rng() % 10 : SIZE_MAX;
    kernels::ForceLevel(kernels::Level::kScalar);
    const size_t expected = tree.CountInBall(center, r, cap);
    for (const auto level : kernels::SupportedLevels()) {
      kernels::ForceLevel(level);
      EXPECT_EQ(tree.CountInBall(center, r, cap), expected)
          << kernels::LevelName(level) << " trial=" << trial << " r=" << r
          << " cap=" << cap;
    }
  }
}

}  // namespace
}  // namespace pdbscan
