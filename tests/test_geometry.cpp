// Tests for points/boxes, k-d tree and quadtree range counting.
#include <algorithm>
#include <cmath>
#include <numeric>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "geometry/kd_tree.h"
#include "geometry/point.h"
#include "geometry/quadtree.h"
#include "parallel/scheduler.h"

namespace pdbscan {
namespace {

using geometry::BBox;
using geometry::CellQuadtree;
using geometry::KdTree;
using geometry::Point;

template <int D>
std::vector<Point<D>> RandomPoints(size_t n, double side, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coord(0.0, side);
  std::vector<Point<D>> pts(n);
  for (auto& p : pts) {
    for (int k = 0; k < D; ++k) p[k] = coord(rng);
  }
  return pts;
}

TEST(Point, DistanceAndEquality) {
  Point<3> a{{0, 0, 0}};
  Point<3> b{{1, 2, 2}};
  EXPECT_DOUBLE_EQ(a.SquaredDistance(b), 9.0);
  EXPECT_DOUBLE_EQ(a.Distance(b), 3.0);
  EXPECT_TRUE(a == a);
  EXPECT_FALSE(a == b);
}

TEST(BBox, ExtendContainsDistances) {
  auto box = BBox<2>::Empty();
  box.Extend(Point<2>{{0, 0}});
  box.Extend(Point<2>{{2, 4}});
  EXPECT_TRUE(box.Contains(Point<2>{{1, 2}}));
  EXPECT_TRUE(box.Contains(Point<2>{{0, 0}}));
  EXPECT_FALSE(box.Contains(Point<2>{{3, 2}}));
  EXPECT_DOUBLE_EQ(box.MinSquaredDistance(Point<2>{{1, 2}}), 0.0);
  EXPECT_DOUBLE_EQ(box.MinSquaredDistance(Point<2>{{5, 4}}), 9.0);
  EXPECT_DOUBLE_EQ(box.MaxSquaredDistance(Point<2>{{0, 0}}), 4 + 16);
  BBox<2> other{{{3, 5}}, {{4, 6}}};
  EXPECT_DOUBLE_EQ(box.MinSquaredDistance(other), 1 + 1);
  BBox<2> overlapping{{{1, 1}}, {{5, 5}}};
  EXPECT_DOUBLE_EQ(box.MinSquaredDistance(overlapping), 0.0);
}

TEST(CellCoords, CellOfAndBBoxRoundTrip) {
  Point<2> origin{{0, 0}};
  const double side = 0.5;
  const auto c = geometry::CellOf<2>(Point<2>{{1.2, 0.9}}, origin, side);
  EXPECT_EQ(c[0], 2);
  EXPECT_EQ(c[1], 1);
  const auto box = geometry::CellBBox<2>(c, origin, side);
  EXPECT_DOUBLE_EQ(box.min[0], 1.0);
  EXPECT_DOUBLE_EQ(box.max[0], 1.5);
  // Negative coordinates floor correctly.
  const auto neg = geometry::CellOf<2>(Point<2>{{-0.1, -0.6}}, origin, side);
  EXPECT_EQ(neg[0], -1);
  EXPECT_EQ(neg[1], -2);
}

TEST(HashCellCoords, DistinctCoordsRarelyCollide) {
  std::vector<uint64_t> hashes;
  for (int32_t x = -20; x <= 20; ++x) {
    for (int32_t y = -20; y <= 20; ++y) {
      hashes.push_back(geometry::HashCellCoords<2>({x, y}));
    }
  }
  std::sort(hashes.begin(), hashes.end());
  EXPECT_EQ(std::unique(hashes.begin(), hashes.end()) - hashes.begin(),
            static_cast<long>(hashes.size()));
}

// --- KdTree -----------------------------------------------------------------

template <int D>
void CheckBallQueriesAgainstBruteForce(size_t n, double radius, uint64_t seed) {
  auto pts = RandomPoints<D>(n, 10.0, seed);
  KdTree<D> tree{std::span<const Point<D>>(pts)};
  std::mt19937_64 rng(seed + 99);
  std::uniform_real_distribution<double> coord(-1.0, 11.0);
  for (int q = 0; q < 50; ++q) {
    Point<D> center;
    for (int k = 0; k < D; ++k) center[k] = coord(rng);
    std::vector<uint32_t> expected;
    for (size_t i = 0; i < n; ++i) {
      if (pts[i].SquaredDistance(center) <= radius * radius) {
        expected.push_back(static_cast<uint32_t>(i));
      }
    }
    std::vector<uint32_t> got;
    tree.ForEachInBall(center, radius, [&](uint32_t i) {
      got.push_back(i);
      return true;
    });
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, expected) << "query " << q;
    ASSERT_EQ(tree.CountInBall(center, radius), expected.size());
  }
}

TEST(KdTree, BallQueries2d) { CheckBallQueriesAgainstBruteForce<2>(2000, 1.0, 1); }
TEST(KdTree, BallQueries3d) { CheckBallQueriesAgainstBruteForce<3>(2000, 2.0, 2); }
TEST(KdTree, BallQueries5d) { CheckBallQueriesAgainstBruteForce<5>(1000, 4.0, 3); }

TEST(KdTree, BoxQueriesMatchBruteForce) {
  auto pts = RandomPoints<3>(3000, 10.0, 5);
  KdTree<3> tree{std::span<const Point<3>>(pts)};
  std::mt19937_64 rng(55);
  std::uniform_real_distribution<double> coord(0.0, 10.0);
  for (int q = 0; q < 30; ++q) {
    BBox<3> box;
    for (int k = 0; k < 3; ++k) {
      double a = coord(rng), b = coord(rng);
      box.min[k] = std::min(a, b);
      box.max[k] = std::max(a, b);
    }
    std::vector<uint32_t> expected;
    for (size_t i = 0; i < pts.size(); ++i) {
      if (box.Contains(pts[i])) expected.push_back(static_cast<uint32_t>(i));
    }
    std::vector<uint32_t> got;
    tree.ForEachInBox(box, [&](uint32_t i) {
      got.push_back(i);
      return true;
    });
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, expected);
  }
}

TEST(KdTree, EarlyTerminationStopsTraversal) {
  auto pts = RandomPoints<2>(10000, 1.0, 8);  // Dense: everything close.
  KdTree<2> tree{std::span<const Point<2>>(pts)};
  size_t visits = 0;
  tree.ForEachInBall(pts[0], 2.0, [&](uint32_t) {
    ++visits;
    return visits < 5;
  });
  EXPECT_EQ(visits, 5u);
  EXPECT_EQ(tree.CountInBall(pts[0], 2.0, 7), 7u);
}

TEST(KdTree, EmptyAndSinglePoint) {
  std::vector<Point<2>> empty;
  KdTree<2> tree{std::span<const Point<2>>(empty)};
  EXPECT_EQ(tree.CountInBall(Point<2>{{0, 0}}, 10.0), 0u);
  std::vector<Point<2>> one = {Point<2>{{1, 1}}};
  KdTree<2> tree1{std::span<const Point<2>>(one)};
  EXPECT_EQ(tree1.CountInBall(Point<2>{{1, 1}}, 0.1), 1u);
  EXPECT_EQ(tree1.CountInBall(Point<2>{{5, 5}}, 0.1), 0u);
}

TEST(KdTree, ParallelBuildMatchesSerialQueries) {
  parallel::ScopedNumWorkers scope(8);
  auto pts = RandomPoints<3>(50000, 20.0, 13);
  KdTree<3> tree{std::span<const Point<3>>(pts)};
  size_t count = 0;
  for (size_t i = 0; i < pts.size(); ++i) {
    if (pts[i].SquaredDistance(pts[0]) <= 4.0) ++count;
  }
  EXPECT_EQ(tree.CountInBall(pts[0], 2.0), count);
}

// --- Quadtree -----------------------------------------------------------------

template <int D>
void CheckQuadtreeExactCounts(size_t n, uint64_t seed) {
  auto pts = RandomPoints<D>(n, 4.0, seed);
  BBox<D> box;
  for (int k = 0; k < D; ++k) {
    box.min[k] = 0;
    box.max[k] = 4.0;
  }
  std::vector<uint32_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0u);
  CellQuadtree<D> tree(std::span<const Point<D>>(pts), std::move(idx), box);
  std::mt19937_64 rng(seed * 3 + 1);
  std::uniform_real_distribution<double> coord(-1.0, 5.0);
  std::uniform_real_distribution<double> rad(0.1, 3.0);
  for (int q = 0; q < 60; ++q) {
    Point<D> center;
    for (int k = 0; k < D; ++k) center[k] = coord(rng);
    const double r = rad(rng);
    size_t expected = 0;
    for (const auto& p : pts) {
      if (p.SquaredDistance(center) <= r * r) ++expected;
    }
    ASSERT_EQ(tree.CountInBall(center, r), expected) << "query " << q;
    ASSERT_EQ(tree.ContainsInBall(center, r), expected > 0);
    // Capped count clamps.
    ASSERT_EQ(tree.CountInBall(center, r, 3),
              std::min<size_t>(expected, 3));
  }
}

TEST(Quadtree, ExactCounts2d) { CheckQuadtreeExactCounts<2>(3000, 21); }
TEST(Quadtree, ExactCounts3d) { CheckQuadtreeExactCounts<3>(2000, 22); }
TEST(Quadtree, ExactCounts5d) { CheckQuadtreeExactCounts<5>(1000, 23); }
TEST(Quadtree, ExactCounts7d) { CheckQuadtreeExactCounts<7>(500, 24); }

TEST(Quadtree, ApproxCountSandwichedBetweenInnerAndOuter) {
  const int kD = 3;
  const size_t n = 3000;
  auto pts = RandomPoints<kD>(n, 4.0, 31);
  BBox<kD> box;
  for (int k = 0; k < kD; ++k) {
    box.min[k] = 0;
    box.max[k] = 4.0;
  }
  const double diameter = std::sqrt(box.min.SquaredDistance(box.max));
  for (double rho : {0.5, 0.1, 0.01}) {
    std::vector<uint32_t> idx(n);
    std::iota(idx.begin(), idx.end(), 0u);
    CellQuadtree<kD> tree(std::span<const Point<kD>>(pts), std::move(idx), box,
                          CellQuadtree<kD>::ApproxMaxLevelFor(diameter, 0.4, rho));
    std::mt19937_64 rng(32);
    std::uniform_real_distribution<double> coord(0.0, 4.0);
    for (int q = 0; q < 40; ++q) {
      Point<kD> center;
      for (int k = 0; k < kD; ++k) center[k] = coord(rng);
      const double r = 0.4;
      size_t inner = 0, outer = 0;
      for (const auto& p : pts) {
        const double d2 = p.SquaredDistance(center);
        if (d2 <= r * r) ++inner;
        if (d2 <= r * (1 + rho) * r * (1 + rho)) ++outer;
      }
      const size_t approx = tree.ApproxCountInBall(center, r, rho);
      ASSERT_GE(approx, inner) << "rho " << rho;
      ASSERT_LE(approx, outer) << "rho " << rho;
      // The boolean query agrees with the sandwich.
      const bool contains = tree.ApproxContainsInBall(center, r, rho);
      if (inner > 0) ASSERT_TRUE(contains);
      if (outer == 0) ASSERT_FALSE(contains);
    }
  }
}

TEST(Quadtree, DuplicatePointsDoNotRecurseForever) {
  std::vector<Point<2>> pts(100, Point<2>{{1.0, 1.0}});
  pts.push_back(Point<2>{{2.0, 2.0}});
  BBox<2> box{{{0, 0}}, {{4, 4}}};
  std::vector<uint32_t> idx(pts.size());
  std::iota(idx.begin(), idx.end(), 0u);
  CellQuadtree<2> tree(std::span<const Point<2>>(pts), std::move(idx), box);
  EXPECT_EQ(tree.CountInBall(Point<2>{{1, 1}}, 0.5), 100u);
  EXPECT_EQ(tree.CountInBall(Point<2>{{2, 2}}, 0.5), 1u);
}

TEST(Quadtree, EmptyTree) {
  std::vector<Point<2>> pts;
  BBox<2> box{{{0, 0}}, {{1, 1}}};
  CellQuadtree<2> tree(std::span<const Point<2>>(pts), {}, box);
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.CountInBall(Point<2>{{0, 0}}, 5.0), 0u);
}

TEST(Quadtree, ApproxMaxLevelFormula) {
  EXPECT_EQ(CellQuadtree<2>::ApproxMaxLevel(1.0), 0);
  EXPECT_EQ(CellQuadtree<2>::ApproxMaxLevel(0.5), 1);
  EXPECT_EQ(CellQuadtree<2>::ApproxMaxLevel(0.25), 2);
  EXPECT_EQ(CellQuadtree<2>::ApproxMaxLevel(0.01), 7);
  // The general form reduces to the grid form when diameter == eps.
  EXPECT_EQ(CellQuadtree<2>::ApproxMaxLevelFor(1.0, 1.0, 0.01), 7);
  EXPECT_EQ(CellQuadtree<2>::ApproxMaxLevelFor(0.005, 1.0, 0.01), 0);
}

}  // namespace
}  // namespace pdbscan
