// Wire protocol for the distributed serving front-end: length-prefixed
// binary frames over TCP, decoded incrementally by FrameDecoder.
//
// Frame layout (all integers little-endian, as everywhere in persist/):
//
//   FrameHeader {
//     uint32 magic        "pDBn"
//     uint8  version      kProtocolVersion
//     uint8  type         MessageType
//     uint8  pad[2]       zero
//     uint64 request_id   echoed verbatim in the response (pipelining key)
//     uint64 payload_bytes
//   }
//   payload[payload_bytes]
//   uint64 checksum       Checksum64 over header + payload
//
// The checksum covers the HEADER too, so a bit-flip anywhere in the frame —
// magic, type, request_id, length, payload — is caught, not just payload
// damage. Payload sizes are capped (ProtocolLimits::max_payload_bytes)
// before any allocation, so a hostile length prefix cannot balloon memory.
//
// Error contract (enforced by the server, fuzz-tested in tests/test_net.cpp):
//   - SEMANTIC errors — unknown message type, malformed payload, overload
//     rejection, update sent to a replica — get an ErrorResponse frame and
//     the connection stays open: framing was intact, so the stream is still
//     synchronized and subsequent valid requests are served.
//   - FRAMING errors — bad magic, bad version, checksum mismatch, oversized
//     length — poison the stream (there is no way to find the next frame
//     boundary reliably). The server sends a best-effort ErrorResponse and
//     closes the connection.
//
// Requests: Query (min_pts), Info, Update (writer only), Shutdown.
// Responses carry the GENERATION the answer was computed at; the
// cross-replica identity contract (docs/ARCHITECTURE.md) is that labels for
// the same (generation, eps, min_pts) are bit-identical from any node.
#ifndef PDBSCAN_NET_PROTOCOL_H_
#define PDBSCAN_NET_PROTOCOL_H_

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "geometry/point.h"
#include "persist/format.h"

namespace pdbscan::net {

inline constexpr uint32_t kNetMagic = 0x6e424470u;  // "pDBn"
inline constexpr uint8_t kProtocolVersion = 1;

enum class MessageType : uint8_t {
  kQueryRequest = 1,
  kQueryResponse = 2,
  kInfoRequest = 3,
  kInfoResponse = 4,
  kUpdateRequest = 5,
  kUpdateResponse = 6,
  kShutdownRequest = 7,
  kShutdownResponse = 8,
  kErrorResponse = 9,
  kStatsRequest = 10,
  kStatsResponse = 11,
};

enum class ErrorCode : uint16_t {
  kNone = 0,
  kBadMagic = 1,
  kBadVersion = 2,
  kBadChecksum = 3,
  kOversized = 4,
  kBadPayload = 5,
  kUnknownType = 6,
  kRejected = 7,   // Admission queue full (ServeStatus::kRejected).
  kTimedOut = 8,   // Deadline expired in the queue (ServeStatus::kTimedOut).
  kShutdown = 9,   // Server is draining.
  kNotWriter = 10, // Update sent to a replica.
  kInternal = 11,
  kTruncated = 12, // Connection ended mid-frame.
};

// Whether an error leaves the byte stream synchronized (connection can keep
// serving) or poisoned (server closes after the error frame).
inline bool IsFramingError(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadMagic:
    case ErrorCode::kBadVersion:
    case ErrorCode::kBadChecksum:
    case ErrorCode::kOversized:
    case ErrorCode::kTruncated:
      return true;
    default:
      return false;
  }
}

struct FrameHeader {
  uint32_t magic = kNetMagic;
  uint8_t version = kProtocolVersion;
  uint8_t type = 0;
  uint8_t pad[2] = {0, 0};
  uint64_t request_id = 0;
  uint64_t payload_bytes = 0;
};
static_assert(std::is_trivially_copyable_v<FrameHeader>);
static_assert(sizeof(FrameHeader) == 24);

struct ProtocolLimits {
  // Caps payloads BEFORE allocation. Large enough for a QueryResponse over
  // a few hundred million points is not the goal here — serving nodes that
  // big would stream; this cap bounds a fuzzer's (or attacker's) ability
  // to make the peer allocate.
  uint64_t max_payload_bytes = 256ull << 20;
};

// --- Frame encoding ---------------------------------------------------------

inline std::vector<uint8_t> EncodeFrame(MessageType type, uint64_t request_id,
                                        std::span<const uint8_t> payload) {
  FrameHeader h;
  h.type = static_cast<uint8_t>(type);
  h.request_id = request_id;
  h.payload_bytes = payload.size();
  std::vector<uint8_t> frame;
  frame.reserve(sizeof(FrameHeader) + payload.size() + sizeof(uint64_t));
  const auto* hp = reinterpret_cast<const uint8_t*>(&h);
  frame.insert(frame.end(), hp, hp + sizeof(h));
  frame.insert(frame.end(), payload.begin(), payload.end());
  const uint64_t checksum = persist::Checksum64(frame.data(), frame.size());
  const auto* cp = reinterpret_cast<const uint8_t*>(&checksum);
  frame.insert(frame.end(), cp, cp + sizeof(checksum));
  return frame;
}

// --- Incremental frame decoder ----------------------------------------------

// One decoded frame, payload copied out of the stream buffer.
struct Frame {
  MessageType type = MessageType::kErrorResponse;
  uint64_t request_id = 0;
  std::vector<uint8_t> payload;
};

// Feed bytes as they arrive; Next() yields complete frames. The first
// framing violation (bad magic/version/checksum, oversized length) sets a
// permanent error — after that the decoder refuses further input, because
// a desynchronized length-prefixed stream has no recoverable frame
// boundary. The request_id of the frame being decoded when the error hit
// is retained (best-effort) so the peer's error frame can echo it.
class FrameDecoder {
 public:
  explicit FrameDecoder(ProtocolLimits limits = ProtocolLimits())
      : limits_(limits) {}

  void Feed(std::span<const uint8_t> bytes) {
    if (error_ != ErrorCode::kNone) return;
    buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  }

  // Returns the next complete frame, or nullopt when more bytes are needed
  // or the stream is poisoned (check error()).
  std::optional<Frame> Next() {
    if (error_ != ErrorCode::kNone) return std::nullopt;
    if (buffer_.size() < sizeof(FrameHeader)) return std::nullopt;
    FrameHeader h;
    std::memcpy(&h, buffer_.data(), sizeof(h));
    if (h.magic != kNetMagic) return Poison(ErrorCode::kBadMagic, 0);
    if (h.version != kProtocolVersion) {
      return Poison(ErrorCode::kBadVersion, h.request_id);
    }
    if (h.payload_bytes > limits_.max_payload_bytes) {
      return Poison(ErrorCode::kOversized, h.request_id);
    }
    const size_t frame_bytes =
        sizeof(FrameHeader) + static_cast<size_t>(h.payload_bytes) +
        sizeof(uint64_t);
    if (buffer_.size() < frame_bytes) return std::nullopt;
    uint64_t stored;
    std::memcpy(&stored, buffer_.data() + frame_bytes - sizeof(uint64_t),
                sizeof(stored));
    const uint64_t computed = persist::Checksum64(
        buffer_.data(), frame_bytes - sizeof(uint64_t));
    if (stored != computed) {
      return Poison(ErrorCode::kBadChecksum, h.request_id);
    }
    Frame frame;
    frame.type = static_cast<MessageType>(h.type);
    frame.request_id = h.request_id;
    frame.payload.assign(buffer_.begin() + sizeof(FrameHeader),
                         buffer_.begin() + (frame_bytes - sizeof(uint64_t)));
    buffer_.erase(buffer_.begin(), buffer_.begin() + frame_bytes);
    return frame;
  }

  ErrorCode error() const { return error_; }
  // request_id of the frame whose framing failed (0 when the header itself
  // was unreadable) — echoed in the best-effort error frame.
  uint64_t error_request_id() const { return error_request_id_; }
  size_t buffered_bytes() const { return buffer_.size(); }

 private:
  std::optional<Frame> Poison(ErrorCode code, uint64_t request_id) {
    error_ = code;
    error_request_id_ = request_id;
    buffer_.clear();
    return std::nullopt;
  }

  ProtocolLimits limits_;
  std::vector<uint8_t> buffer_;
  ErrorCode error_ = ErrorCode::kNone;
  uint64_t error_request_id_ = 0;
};

// --- Payload codecs ---------------------------------------------------------
//
// Payloads are flat little-endian structs (static_asserted trivially
// copyable) followed by their arrays, mirroring the persist/ format idiom.
// Every decoder validates lengths against the actual payload size before
// reading and reports failure by returning false — a malformed payload is
// a SEMANTIC error (the frame itself was intact).

struct QueryRequest {
  uint64_t min_pts = 0;
  // Nonzero asks the server to trace this request and return its span
  // breakdown. Encoded only when nonzero, and tolerated as absent on
  // decode, so traced clients interoperate with pre-telemetry peers in
  // both directions.
  uint64_t trace_id = 0;
};

// One server-side span shipped back in a traced QueryResponse. `parent` is
// the index of the parent span within the same vector (-1 = root), so the
// client can rebuild the tree without global span ids.
struct WireSpan {
  std::string name;
  int32_t parent = -1;
  uint64_t start_nanos = 0;     // Server steady-clock; relative use only.
  uint64_t duration_nanos = 0;
};

struct QueryResponse {
  uint64_t generation = 0;
  uint64_t num_points = 0;
  uint64_t num_clusters = 0;
  std::vector<int64_t> cluster;   // Label per point, kNoise = -1.
  std::vector<uint8_t> is_core;   // 1 per core point.
  // Span breakdown; present only when the request carried a trace_id.
  // Encoded as an optional trailing section old clients never receive
  // (servers omit it for untraced requests).
  std::vector<WireSpan> spans;
};

// Stats scrape: format 0 = JSON, 1 = Prometheus text.
struct StatsRequest {
  uint8_t format = 0;
};

struct StatsResponse {
  uint8_t format = 0;
  std::string text;
};

struct InfoResponse {
  uint64_t generation = 0;
  uint64_t num_points = 0;
  double epsilon = 0;
  uint64_t counts_cap = 0;
  uint32_t dim = 0;
  uint8_t is_writer = 0;
};

template <int D>
struct UpdateRequest {
  std::vector<geometry::Point<D>> inserts;
  std::vector<uint64_t> erases;
};

struct UpdateResponse {
  uint64_t generation = 0;  // Generation the batch PRODUCED.
  uint64_t first_id = 0;    // Id assigned to inserts[0].
};

struct ErrorResponse {
  ErrorCode code = ErrorCode::kNone;
  std::string message;
};

namespace detail {

class PayloadWriter {
 public:
  void Raw(const void* data, size_t n) {
    const auto* p = static_cast<const uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + n);
  }
  template <typename T>
  void Pod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    Raw(&value, sizeof(T));
  }
  std::vector<uint8_t> Take() { return std::move(bytes_); }

 private:
  std::vector<uint8_t> bytes_;
};

class PayloadReader {
 public:
  explicit PayloadReader(std::span<const uint8_t> bytes) : bytes_(bytes) {}
  bool Raw(void* out, size_t n) {
    if (bytes_.size() - pos_ < n) return false;
    std::memcpy(out, bytes_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  template <typename T>
  bool Pod(T* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    return Raw(out, sizeof(T));
  }
  bool AtEnd() const { return pos_ == bytes_.size(); }
  size_t remaining() const { return bytes_.size() - pos_; }

 private:
  std::span<const uint8_t> bytes_;
  size_t pos_ = 0;
};

}  // namespace detail

inline std::vector<uint8_t> EncodeQueryRequest(const QueryRequest& req) {
  detail::PayloadWriter w;
  w.Pod(req.min_pts);
  // trace_id travels as an optional trailing field: omitted when zero so
  // untraced queries stay byte-identical with the pre-telemetry wire form
  // (and decodable by old servers, which require AtEnd after min_pts).
  if (req.trace_id != 0) w.Pod(req.trace_id);
  return w.Take();
}

inline bool DecodeQueryRequest(std::span<const uint8_t> payload,
                               QueryRequest* out) {
  detail::PayloadReader r(payload);
  if (!r.Pod(&out->min_pts)) return false;
  out->trace_id = 0;
  if (r.AtEnd()) return true;  // Old-version frame: no trace_id.
  return r.Pod(&out->trace_id) && r.AtEnd();
}

inline std::vector<uint8_t> EncodeQueryResponse(const QueryResponse& resp) {
  detail::PayloadWriter w;
  w.Pod(resp.generation);
  w.Pod(resp.num_points);
  w.Pod(resp.num_clusters);
  w.Raw(resp.cluster.data(), resp.cluster.size() * sizeof(int64_t));
  w.Raw(resp.is_core.data(), resp.is_core.size());
  // Optional trailing span section (traced requests only). Old decoders
  // required the payload to end exactly after is_core, so servers only
  // append this when the client asked for a trace — i.e. when the client
  // is new enough to parse it.
  if (!resp.spans.empty()) {
    w.Pod(static_cast<uint32_t>(resp.spans.size()));
    for (const WireSpan& s : resp.spans) {
      w.Pod(static_cast<uint16_t>(
          s.name.size() < 0xffff ? s.name.size() : 0xffff));
      w.Raw(s.name.data(),
            s.name.size() < 0xffff ? s.name.size() : 0xffff);
      w.Pod(s.parent);
      w.Pod(s.start_nanos);
      w.Pod(s.duration_nanos);
    }
  }
  return w.Take();
}

inline bool DecodeQueryResponse(std::span<const uint8_t> payload,
                                QueryResponse* out) {
  detail::PayloadReader r(payload);
  if (!r.Pod(&out->generation) || !r.Pod(&out->num_points) ||
      !r.Pod(&out->num_clusters)) {
    return false;
  }
  const uint64_t n = out->num_points;
  // Bound the count BEFORE multiplying: a hostile num_points can make
  // n * stride wrap mod 2^64 and match remaining(), then blow up resize.
  constexpr uint64_t kStride = sizeof(int64_t) + 1;
  if (n > r.remaining() / kStride) return false;
  if (r.remaining() < n * kStride) return false;
  out->cluster.resize(n);
  out->is_core.resize(n);
  if (!r.Raw(out->cluster.data(), n * sizeof(int64_t)) ||
      !r.Raw(out->is_core.data(), n)) {
    return false;
  }
  out->spans.clear();
  if (r.AtEnd()) return true;  // Untraced (or old-version) response.
  uint32_t num_spans;
  if (!r.Pod(&num_spans)) return false;
  // Minimum wire size per span: empty name (2) + parent (4) + start (8) +
  // duration (8). Bound before reserving, same discipline as above.
  constexpr uint64_t kMinSpanBytes = 2 + 4 + 8 + 8;
  if (num_spans > r.remaining() / kMinSpanBytes) return false;
  out->spans.resize(num_spans);
  for (uint32_t i = 0; i < num_spans; ++i) {
    WireSpan& s = out->spans[i];
    uint16_t name_len;
    if (!r.Pod(&name_len)) return false;
    if (name_len > r.remaining()) return false;
    s.name.resize(name_len);
    if (!r.Raw(s.name.data(), name_len) || !r.Pod(&s.parent) ||
        !r.Pod(&s.start_nanos) || !r.Pod(&s.duration_nanos)) {
      return false;
    }
  }
  return r.AtEnd();
}

inline std::vector<uint8_t> EncodeStatsRequest(const StatsRequest& req) {
  detail::PayloadWriter w;
  w.Pod(req.format);
  return w.Take();
}

inline bool DecodeStatsRequest(std::span<const uint8_t> payload,
                               StatsRequest* out) {
  detail::PayloadReader r(payload);
  return r.Pod(&out->format) && r.AtEnd();
}

inline std::vector<uint8_t> EncodeStatsResponse(const StatsResponse& resp) {
  detail::PayloadWriter w;
  w.Pod(resp.format);
  w.Pod(static_cast<uint32_t>(resp.text.size()));
  w.Raw(resp.text.data(), resp.text.size());
  return w.Take();
}

inline bool DecodeStatsResponse(std::span<const uint8_t> payload,
                                StatsResponse* out) {
  detail::PayloadReader r(payload);
  uint32_t text_len;
  if (!r.Pod(&out->format) || !r.Pod(&text_len)) return false;
  if (r.remaining() != text_len) return false;
  out->text.resize(text_len);
  return r.Raw(out->text.data(), text_len) && r.AtEnd();
}

inline std::vector<uint8_t> EncodeInfoResponse(const InfoResponse& resp) {
  detail::PayloadWriter w;
  w.Pod(resp.generation);
  w.Pod(resp.num_points);
  w.Pod(resp.epsilon);
  w.Pod(resp.counts_cap);
  w.Pod(resp.dim);
  w.Pod(resp.is_writer);
  return w.Take();
}

inline bool DecodeInfoResponse(std::span<const uint8_t> payload,
                               InfoResponse* out) {
  detail::PayloadReader r(payload);
  return r.Pod(&out->generation) && r.Pod(&out->num_points) &&
         r.Pod(&out->epsilon) && r.Pod(&out->counts_cap) && r.Pod(&out->dim) &&
         r.Pod(&out->is_writer) && r.AtEnd();
}

template <int D>
std::vector<uint8_t> EncodeUpdateRequest(const UpdateRequest<D>& req) {
  detail::PayloadWriter w;
  w.Pod(static_cast<uint32_t>(D));
  w.Pod(static_cast<uint64_t>(req.inserts.size()));
  w.Pod(static_cast<uint64_t>(req.erases.size()));
  for (const geometry::Point<D>& p : req.inserts) {
    w.Raw(p.x.data(), D * sizeof(double));
  }
  w.Raw(req.erases.data(), req.erases.size() * sizeof(uint64_t));
  return w.Take();
}

template <int D>
bool DecodeUpdateRequest(std::span<const uint8_t> payload,
                         UpdateRequest<D>* out) {
  detail::PayloadReader r(payload);
  uint32_t dim;
  uint64_t num_inserts, num_erases;
  if (!r.Pod(&dim) || !r.Pod(&num_inserts) || !r.Pod(&num_erases)) {
    return false;
  }
  if (dim != static_cast<uint32_t>(D)) return false;
  // Counts are attacker-controlled: bound each against the bytes actually
  // present BEFORE multiplying, so the exact-size check below cannot wrap
  // mod 2^64 and admit a resize() that throws past the payload cap.
  constexpr uint64_t kInsertStride = static_cast<uint64_t>(D) * sizeof(double);
  if (num_inserts > r.remaining() / kInsertStride) return false;
  if (num_erases > r.remaining() / sizeof(uint64_t)) return false;
  if (r.remaining() !=
      num_inserts * kInsertStride + num_erases * sizeof(uint64_t)) {
    return false;
  }
  out->inserts.resize(num_inserts);
  for (uint64_t i = 0; i < num_inserts; ++i) {
    if (!r.Raw(out->inserts[i].x.data(), D * sizeof(double))) {
      return false;
    }
  }
  out->erases.resize(num_erases);
  return r.Raw(out->erases.data(), num_erases * sizeof(uint64_t)) && r.AtEnd();
}

inline std::vector<uint8_t> EncodeUpdateResponse(const UpdateResponse& resp) {
  detail::PayloadWriter w;
  w.Pod(resp.generation);
  w.Pod(resp.first_id);
  return w.Take();
}

inline bool DecodeUpdateResponse(std::span<const uint8_t> payload,
                                 UpdateResponse* out) {
  detail::PayloadReader r(payload);
  return r.Pod(&out->generation) && r.Pod(&out->first_id) && r.AtEnd();
}

inline std::vector<uint8_t> EncodeErrorResponse(const ErrorResponse& resp) {
  detail::PayloadWriter w;
  w.Pod(static_cast<uint16_t>(resp.code));
  w.Pod(static_cast<uint16_t>(resp.message.size()));
  w.Raw(resp.message.data(), resp.message.size());
  return w.Take();
}

inline bool DecodeErrorResponse(std::span<const uint8_t> payload,
                                ErrorResponse* out) {
  detail::PayloadReader r(payload);
  uint16_t code, msg_len;
  if (!r.Pod(&code) || !r.Pod(&msg_len)) return false;
  if (r.remaining() != msg_len) return false;
  out->code = static_cast<ErrorCode>(code);
  out->message.resize(msg_len);
  return r.Raw(out->message.data(), msg_len) && r.AtEnd();
}

inline std::vector<uint8_t> EncodeErrorFrame(uint64_t request_id,
                                             ErrorCode code,
                                             const std::string& message) {
  ErrorResponse resp;
  resp.code = code;
  resp.message = message;
  const std::vector<uint8_t> payload = EncodeErrorResponse(resp);
  return EncodeFrame(MessageType::kErrorResponse, request_id, payload);
}

}  // namespace pdbscan::net

#endif  // PDBSCAN_NET_PROTOCOL_H_
