// Client for the pdbscan serving protocol: a sync convenience surface
// (Query/Info/Update/Shutdown) over an explicitly pipelined core
// (SendX → request_id, Receive → next response). Pipelining is just
// writing several frames before reading: the server answers in order per
// connection, and request_ids let the caller re-associate. One Client per
// thread — the object is not internally synchronized.
//
// Server-reported errors surface as RemoteError (carrying the wire
// ErrorCode); transport failures as NetError. SendRaw/ShutdownWrite are
// the fuzzing escape hatches: inject arbitrary bytes, half-close, and
// still read the server's verdict.
#ifndef PDBSCAN_NET_CLIENT_H_
#define PDBSCAN_NET_CLIENT_H_

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "net/protocol.h"
#include "net/socket.h"
#include "telemetry/trace.h"

namespace pdbscan::net {

// The server answered with an ErrorResponse.
class RemoteError : public std::runtime_error {
 public:
  RemoteError(ErrorCode code, const std::string& message)
      : std::runtime_error("remote error " +
                           std::to_string(static_cast<int>(code)) + ": " +
                           message),
        code_(code) {}
  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

// One decoded response of any type; `type` says which member is valid.
struct ClientResponse {
  uint64_t request_id = 0;
  MessageType type = MessageType::kErrorResponse;
  QueryResponse query;
  InfoResponse info;
  UpdateResponse update;
  StatsResponse stats;
  ErrorResponse error;
};

class Client {
 public:
  explicit Client(uint16_t port, uint64_t connect_timeout_millis = 5000,
                  ProtocolLimits limits = ProtocolLimits())
      : conn_(ConnectLoopback(port, connect_timeout_millis)),
        decoder_(limits) {}

  // --- Pipelined core -------------------------------------------------------

  // A nonzero trace_id asks the server to trace the request and ship its
  // span breakdown back in the QueryResponse (see telemetry::NewTraceId).
  uint64_t SendQuery(uint64_t min_pts, uint64_t trace_id = 0) {
    QueryRequest req;
    req.min_pts = min_pts;
    req.trace_id = trace_id;
    return Send(MessageType::kQueryRequest, EncodeQueryRequest(req));
  }

  uint64_t SendInfo() { return Send(MessageType::kInfoRequest, {}); }

  // format: 0 = JSON, 1 = Prometheus text.
  uint64_t SendStats(uint8_t format) {
    StatsRequest req;
    req.format = format;
    return Send(MessageType::kStatsRequest, EncodeStatsRequest(req));
  }

  template <int D>
  uint64_t SendUpdate(const UpdateRequest<D>& req) {
    return Send(MessageType::kUpdateRequest, EncodeUpdateRequest<D>(req));
  }

  uint64_t SendShutdown() { return Send(MessageType::kShutdownRequest, {}); }

  // Blocks for the next response frame. Throws NetError when the
  // connection closes first (e.g. after a framing error the server could
  // not even answer, or a mid-response kill).
  ClientResponse Receive() {
    for (;;) {
      if (auto frame = decoder_.Next()) {
        telemetry::TraceSpan decode_span("net_decode");
        ClientResponse resp;
        resp.request_id = frame->request_id;
        resp.type = frame->type;
        bool ok = true;
        switch (frame->type) {
          case MessageType::kQueryResponse:
            ok = DecodeQueryResponse(frame->payload, &resp.query);
            break;
          case MessageType::kInfoResponse:
            ok = DecodeInfoResponse(frame->payload, &resp.info);
            break;
          case MessageType::kUpdateResponse:
            ok = DecodeUpdateResponse(frame->payload, &resp.update);
            break;
          case MessageType::kStatsResponse:
            ok = DecodeStatsResponse(frame->payload, &resp.stats);
            break;
          case MessageType::kShutdownResponse:
            break;
          case MessageType::kErrorResponse:
            ok = DecodeErrorResponse(frame->payload, &resp.error);
            break;
          default:
            ok = false;
        }
        if (!ok) throw NetError("malformed response payload from server");
        return resp;
      }
      if (decoder_.error() != ErrorCode::kNone) {
        throw NetError("response stream framing error");
      }
      const size_t n = conn_.RecvSome(buf_);
      if (n == 0) throw NetError("connection closed by server");
      decoder_.Feed(std::span<const uint8_t>(buf_.data(), n));
    }
  }

  // --- Sync conveniences ----------------------------------------------------

  QueryResponse Query(uint64_t min_pts, uint64_t trace_id = 0) {
    const uint64_t id = SendQuery(min_pts, trace_id);
    ClientResponse resp = ReceiveFor(id);
    if (resp.type == MessageType::kErrorResponse) {
      throw RemoteError(resp.error.code, resp.error.message);
    }
    if (resp.type != MessageType::kQueryResponse) {
      throw NetError("unexpected response type to query");
    }
    return std::move(resp.query);
  }

  // One stats scrape (0 = JSON, 1 = Prometheus); returns the rendered text.
  StatsResponse Stats(uint8_t format = 0) {
    const uint64_t id = SendStats(format);
    ClientResponse resp = ReceiveFor(id);
    if (resp.type == MessageType::kErrorResponse) {
      throw RemoteError(resp.error.code, resp.error.message);
    }
    if (resp.type != MessageType::kStatsResponse) {
      throw NetError("unexpected response type to stats");
    }
    return std::move(resp.stats);
  }

  InfoResponse Info() {
    const uint64_t id = SendInfo();
    ClientResponse resp = ReceiveFor(id);
    if (resp.type == MessageType::kErrorResponse) {
      throw RemoteError(resp.error.code, resp.error.message);
    }
    if (resp.type != MessageType::kInfoResponse) {
      throw NetError("unexpected response type to info");
    }
    return resp.info;
  }

  template <int D>
  UpdateResponse Update(const UpdateRequest<D>& req) {
    const uint64_t id = SendUpdate<D>(req);
    ClientResponse resp = ReceiveFor(id);
    if (resp.type == MessageType::kErrorResponse) {
      throw RemoteError(resp.error.code, resp.error.message);
    }
    if (resp.type != MessageType::kUpdateResponse) {
      throw NetError("unexpected response type to update");
    }
    return resp.update;
  }

  // Clean remote shutdown (the server finishes in-flight work and exits).
  void Shutdown() {
    const uint64_t id = SendShutdown();
    ClientResponse resp = ReceiveFor(id);
    if (resp.type == MessageType::kErrorResponse) {
      throw RemoteError(resp.error.code, resp.error.message);
    }
  }

  // --- Fuzzing escape hatches -----------------------------------------------

  // Writes arbitrary bytes as-is (no framing added).
  void SendRaw(std::span<const uint8_t> bytes) { conn_.SendAll(bytes); }

  // Half-close: tells the server "no more bytes are coming" while keeping
  // the read side open — how a truncated-frame test still reads the
  // server's reaction.
  void ShutdownWrite() { conn_.ShutdownWrite(); }

  TcpConn& conn() { return conn_; }

 private:
  uint64_t Send(MessageType type, std::span<const uint8_t> payload) {
    const uint64_t id = next_request_id_++;
    telemetry::TraceSpan encode_span("net_encode");
    conn_.SendAll(EncodeFrame(type, id, payload));
    return id;
  }

  // Receives until the response for `id` arrives (responses are in order
  // per connection, so for sync use this is the very next frame).
  ClientResponse ReceiveFor(uint64_t id) {
    for (;;) {
      ClientResponse resp = Receive();
      if (resp.request_id == id) return resp;
    }
  }

  TcpConn conn_;
  FrameDecoder decoder_;
  std::vector<uint8_t> buf_ = std::vector<uint8_t>(64 * 1024);
  uint64_t next_request_id_ = 1;
};

}  // namespace pdbscan::net

#endif  // PDBSCAN_NET_CLIENT_H_
