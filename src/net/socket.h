// Thin RAII wrappers over POSIX TCP sockets — just enough transport for
// the pdbscan serving protocol (net/protocol.h): a listener with an
// interruptible Accept, a connection with full-write/partial-read
// semantics, and a blocking loopback connect with retry (servers that are
// still binding). No external dependencies; implementation in socket.cpp.
#ifndef PDBSCAN_NET_SOCKET_H_
#define PDBSCAN_NET_SOCKET_H_

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace pdbscan::net {

// Transport-level failure (bind/listen/connect/send errors). Protocol
// errors never throw this — they travel as ErrorResponse frames.
class NetError : public std::runtime_error {
 public:
  explicit NetError(const std::string& what) : std::runtime_error(what) {}
};

// One connected TCP stream. Movable, closes on destruction.
class TcpConn {
 public:
  TcpConn() = default;
  explicit TcpConn(int fd);
  TcpConn(TcpConn&& other) noexcept;
  TcpConn& operator=(TcpConn&& other) noexcept;
  TcpConn(const TcpConn&) = delete;
  TcpConn& operator=(const TcpConn&) = delete;
  ~TcpConn();

  explicit operator bool() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  // Writes all of `bytes` (loops over partial sends). Throws NetError on
  // failure (including EPIPE — the peer hung up).
  void SendAll(std::span<const uint8_t> bytes);

  // Reads up to out.size() bytes; returns the count, 0 on orderly EOF.
  // Throws NetError on failure.
  size_t RecvSome(std::span<uint8_t> out);

  // Half-close the write side (the peer sees EOF but can still respond) —
  // how a fuzzing client says "that truncated frame was all I had" while
  // keeping the read side open for the server's error frame.
  void ShutdownWrite();

  void Close();

 private:
  int fd_ = -1;
};

// Listening socket bound to 127.0.0.1. Port 0 binds an ephemeral port;
// port() reports the actual one. Accept blocks until a connection arrives
// or Interrupt() is called from another thread (returns an empty TcpConn).
class TcpListener {
 public:
  explicit TcpListener(uint16_t port);
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  uint16_t port() const { return port_; }

  // Blocks for the next connection; empty TcpConn after Interrupt().
  TcpConn Accept();

  // Wakes a Accept() blocked in another thread (idempotent, one-shot per
  // wakeup needed — subsequent Accepts return empty immediately once
  // interrupted).
  void Interrupt();

 private:
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  uint16_t port_ = 0;
};

// Connects to 127.0.0.1:port, retrying ECONNREFUSED until
// `timeout_millis` elapses (a just-spawned server may not be listening
// yet). Throws NetError on timeout or other failure.
TcpConn ConnectLoopback(uint16_t port, uint64_t timeout_millis = 5000);

}  // namespace pdbscan::net

#endif  // PDBSCAN_NET_SOCKET_H_
