// The TCP front-end: speaks net/protocol.h on a loopback listener and
// serves queries from a ServingScheduler — one acceptor thread, one thread
// per connection, blocking Submit per request. Blocking per-connection
// Submits are not a throughput bug: they are what feeds the scheduler
// concurrent requests to COALESCE across connections (one batched Sweep
// per claim window serves many sockets).
//
// The server owns no engine state. It borrows a scheduler (queries), an
// EnginePool (Info snapshots) and an optional update handler (writer
// nodes); replicas pass no handler and answer kNotWriter. Stop order on
// teardown: scheduler.Shutdown() first — pending Submits drain with
// kShutdown — then NetServer::Stop(), which unblocks reads and joins the
// connection threads.
//
// Error handling follows the protocol contract (see protocol.h): semantic
// errors answer and keep the connection; framing errors answer
// best-effort and close, because a desynchronized length-prefixed stream
// cannot be re-synchronized.
#ifndef PDBSCAN_NET_SERVER_H_
#define PDBSCAN_NET_SERVER_H_

#include <sys/socket.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/protocol.h"
#include "net/socket.h"
#include "parallel/engine_pool.h"
#include "parallel/serving_scheduler.h"
#include "telemetry/metrics.h"
#include "telemetry/stats_export.h"
#include "telemetry/trace.h"

namespace pdbscan::net {

struct ServerOptions {
  uint16_t port = 0;  // 0 = ephemeral; port() reports the bound one.
  ProtocolLimits limits;
  // Extra metrics joined into kStatsRequest responses (e.g. the replication
  // counters pdbscan_server registers). Must outlive the server; nullptr =
  // scheduler + server counters only.
  telemetry::MetricsRegistry* registry = nullptr;
};

// Aggregate counters, all monotonically increasing. Reads are racy-fresh
// (relaxed), like the engine stats they sit beside.
struct ServerStats {
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> requests_served{0};
  std::atomic<uint64_t> semantic_errors{0};
  std::atomic<uint64_t> framing_errors{0};
};

template <int D>
class NetServer {
 public:
  // Applies one update batch (writer nodes only); returns the response to
  // send. Calls are serialized by the server.
  using UpdateHandler = std::function<UpdateResponse(
      std::span<const geometry::Point<D>>, std::span<const uint64_t>)>;

  NetServer(parallel::ServingScheduler<D>& scheduler,
            parallel::EnginePool<D>& pool, double epsilon, size_t counts_cap,
            ServerOptions options = ServerOptions(),
            UpdateHandler on_update = nullptr)
      : scheduler_(scheduler),
        pool_(pool),
        epsilon_(epsilon),
        counts_cap_(counts_cap),
        options_(options),
        on_update_(std::move(on_update)),
        listener_(options.port) {}

  ~NetServer() { Stop(); }
  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  uint16_t port() const { return listener_.port(); }

  void Start() {
    if (acceptor_.joinable()) return;
    acceptor_ = std::thread([this]() { AcceptLoop(); });
  }

  // Idempotent. Unblocks the acceptor and every connection read, then
  // joins all threads. In-flight scheduler Submits finish first (shut the
  // scheduler down beforehand to drain them as kShutdown).
  void Stop() {
    listener_.Interrupt();
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      stopping_ = true;
      for (const auto& [id, fd] : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    }
    if (acceptor_.joinable()) acceptor_.join();
    std::unordered_map<uint64_t, std::thread> workers;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      workers.swap(conn_threads_);
      finished_.clear();
    }
    for (auto& [id, t] : workers) t.join();
  }

  // Blocks until a client sent kShutdownRequest (the clean remote
  // shutdown path used by the CI smoke job) or Stop() was called.
  void WaitForShutdownRequest() {
    std::unique_lock<std::mutex> lock(shutdown_mu_);
    shutdown_cv_.wait(lock, [this]() { return shutdown_requested_; });
  }

  bool shutdown_requested() const {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    return shutdown_requested_;
  }

  const ServerStats& stats() const { return stats_; }

 private:
  void AcceptLoop() {
    for (;;) {
      TcpConn conn = listener_.Accept();
      if (!conn) return;  // Interrupted — shutting down.
      stats_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
      std::vector<std::thread> done;
      {
        std::lock_guard<std::mutex> lock(conns_mu_);
        if (stopping_) return;
        ReapFinishedLocked(&done);
        const uint64_t id = next_conn_id_++;
        conn_fds_.emplace(id, conn.fd());
        conn_threads_.emplace(
            id, std::thread(
                    [this, id](TcpConn c) {
                      ServeConnection(c);
                      // Unregister the fd BEFORE c's destructor closes it,
                      // so Stop() can never shutdown() a recycled
                      // descriptor, then queue this thread for reaping.
                      std::lock_guard<std::mutex> l(conns_mu_);
                      conn_fds_.erase(id);
                      finished_.push_back(id);
                    },
                    std::move(conn)));
      }
      // Joined OUTSIDE conns_mu_: an exiting worker's last act takes that
      // lock, so joining under it would deadlock.
      for (std::thread& t : done) t.join();
    }
  }

  // Moves threads whose connections have finished out of conn_threads_ so
  // a long-running server does not accumulate joinable handles forever.
  // Caller joins them after releasing conns_mu_.
  void ReapFinishedLocked(std::vector<std::thread>* done) {
    for (const uint64_t id : finished_) {
      auto it = conn_threads_.find(id);
      if (it != conn_threads_.end()) {
        done->push_back(std::move(it->second));
        conn_threads_.erase(it);
      }
    }
    finished_.clear();
  }

  void ServeConnection(TcpConn& conn) {
    FrameDecoder decoder(options_.limits);
    std::vector<uint8_t> buf(64 * 1024);
    uint64_t last_request_id = 0;
    try {
      for (;;) {
        while (auto frame = decoder.Next()) {
          last_request_id = frame->request_id;
          if (!HandleFrame(conn, *frame)) return;  // Semantic close paths.
        }
        if (decoder.error() != ErrorCode::kNone) {
          // Framing violation: best-effort error frame, then close.
          stats_.framing_errors.fetch_add(1, std::memory_order_relaxed);
          conn.SendAll(EncodeErrorFrame(decoder.error_request_id(),
                                        decoder.error(),
                                        "framing error; closing"));
          return;
        }
        const size_t n = conn.RecvSome(buf);
        if (n == 0) {
          // Orderly EOF. Leftover bytes mean the peer hung up mid-frame —
          // answer the truncation (it half-closed, so it can still read).
          if (decoder.buffered_bytes() > 0) {
            stats_.framing_errors.fetch_add(1, std::memory_order_relaxed);
            conn.SendAll(EncodeErrorFrame(0, ErrorCode::kTruncated,
                                          "connection ended mid-frame"));
          }
          return;
        }
        decoder.Feed(std::span<const uint8_t>(buf.data(), n));
      }
    } catch (const NetError&) {
      // Peer went away (or Stop() shut the socket down) — nothing to do.
    } catch (const std::exception& e) {
      // A handler failure — persist IO in an update, an allocation, a
      // scheduler fault — must not escape the thread body and terminate
      // the whole server. Answer best-effort and drop this connection.
      SendInternalError(conn, last_request_id, e.what());
    } catch (...) {
      SendInternalError(conn, last_request_id, "internal error");
    }
  }

  // Best-effort kInternal error frame; swallows transport failures (the
  // peer may already be gone).
  void SendInternalError(TcpConn& conn, uint64_t request_id,
                         const char* what) noexcept {
    stats_.semantic_errors.fetch_add(1, std::memory_order_relaxed);
    try {
      conn.SendAll(EncodeErrorFrame(request_id, ErrorCode::kInternal, what));
    } catch (...) {
    }
  }

  // Serves one intact frame. Returns false to close the connection.
  bool HandleFrame(TcpConn& conn, const Frame& frame) {
    switch (frame.type) {
      case MessageType::kQueryRequest: {
        const uint64_t decode_start =
            telemetry::TraceEnabled() ? telemetry::NowNanos() : 0;
        QueryRequest req;
        if (!DecodeQueryRequest(frame.payload, &req)) {
          return SendSemanticError(conn, frame.request_id,
                                   ErrorCode::kBadPayload,
                                   "malformed query payload");
        }
        if (req.min_pts == 0) {
          return SendSemanticError(conn, frame.request_id,
                                   ErrorCode::kBadPayload,
                                   "min_pts must be >= 1");
        }
        // A nonzero trace_id asks for this request's span breakdown. The
        // root "serve_request" span is recorded manually (its id is
        // preallocated so queue/executor spans can parent under it before
        // it lands in the ring), then the trace is collected into wire
        // spans appended to the response.
        const bool traced = req.trace_id != 0 && telemetry::TraceEnabled();
        parallel::ServeResult result;
        std::vector<WireSpan> wire_spans;
        if (traced) {
          const uint64_t root_span = telemetry::NextSpanId();
          telemetry::RecordSpan("frame_decode", req.trace_id, root_span,
                                decode_start, telemetry::NowNanos());
          const uint64_t root_start = decode_start;
          {
            telemetry::ScopedTraceContext ctx(req.trace_id, root_span);
            result = scheduler_.Submit(static_cast<size_t>(req.min_pts));
          }
          telemetry::RecordSpan("serve_request", req.trace_id, 0, root_start,
                                telemetry::NowNanos(), root_span);
          wire_spans = CollectWireSpans(req.trace_id);
        } else {
          result = scheduler_.Submit(static_cast<size_t>(req.min_pts));
        }
        switch (result.status) {
          case parallel::ServeStatus::kOk:
            break;
          case parallel::ServeStatus::kRejected:
            return SendSemanticError(conn, frame.request_id,
                                     ErrorCode::kRejected, "queue full");
          case parallel::ServeStatus::kTimedOut:
            return SendSemanticError(conn, frame.request_id,
                                     ErrorCode::kTimedOut,
                                     "deadline expired in queue");
          case parallel::ServeStatus::kShutdown:
            SendSemanticError(conn, frame.request_id, ErrorCode::kShutdown,
                              "server draining");
            return false;
        }
        QueryResponse resp;
        resp.generation = result.generation;
        resp.num_points = result.clustering.cluster.size();
        resp.num_clusters = result.clustering.num_clusters;
        resp.cluster = std::move(result.clustering.cluster);
        resp.is_core = std::move(result.clustering.is_core);
        resp.spans = std::move(wire_spans);
        conn.SendAll(EncodeFrame(MessageType::kQueryResponse,
                                 frame.request_id,
                                 EncodeQueryResponse(resp)));
        stats_.requests_served.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      case MessageType::kStatsRequest: {
        StatsRequest req;
        if (!DecodeStatsRequest(frame.payload, &req)) {
          return SendSemanticError(conn, frame.request_id,
                                   ErrorCode::kBadPayload,
                                   "malformed stats payload");
        }
        std::vector<telemetry::MetricValue> values;
        dbscan::PipelineStats agg;
        scheduler_.AggregateStats(agg);
        telemetry::AppendPipelineStats(agg, values);
        telemetry::AppendCounter(
            values, "connections_accepted",
            static_cast<double>(stats_.connections_accepted.load(
                std::memory_order_relaxed)));
        telemetry::AppendCounter(
            values, "requests_served",
            static_cast<double>(
                stats_.requests_served.load(std::memory_order_relaxed)));
        telemetry::AppendCounter(
            values, "semantic_errors",
            static_cast<double>(
                stats_.semantic_errors.load(std::memory_order_relaxed)));
        telemetry::AppendCounter(
            values, "framing_errors",
            static_cast<double>(
                stats_.framing_errors.load(std::memory_order_relaxed)));
        const parallel::ServingHistograms& h = scheduler_.histograms();
        telemetry::AppendHistogram(values, "request_latency",
                                   h.request_nanos.Snapshot());
        telemetry::AppendHistogram(values, "queue_wait_latency",
                                   h.queue_wait_nanos.Snapshot());
        telemetry::AppendHistogram(values, "execute_latency",
                                   h.execute_nanos.Snapshot());
        if (options_.registry != nullptr) {
          options_.registry->CollectInto(values);
        }
        StatsResponse resp;
        resp.format = req.format;
        resp.text = req.format == 1 ? telemetry::RenderPrometheus(values)
                                    : telemetry::RenderJson(values);
        conn.SendAll(EncodeFrame(MessageType::kStatsResponse,
                                 frame.request_id,
                                 EncodeStatsResponse(resp)));
        stats_.requests_served.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      case MessageType::kInfoRequest: {
        const auto [index, generation] = pool_.SnapshotAndGeneration();
        InfoResponse resp;
        resp.generation = generation;
        resp.num_points = index->cells().num_points();
        resp.epsilon = epsilon_;
        resp.counts_cap = counts_cap_;
        resp.dim = static_cast<uint32_t>(D);
        resp.is_writer = on_update_ ? 1 : 0;
        conn.SendAll(EncodeFrame(MessageType::kInfoResponse, frame.request_id,
                                 EncodeInfoResponse(resp)));
        stats_.requests_served.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      case MessageType::kUpdateRequest: {
        if (!on_update_) {
          return SendSemanticError(conn, frame.request_id,
                                   ErrorCode::kNotWriter,
                                   "this node is a replica");
        }
        UpdateRequest<D> req;
        if (!DecodeUpdateRequest<D>(frame.payload, &req)) {
          return SendSemanticError(conn, frame.request_id,
                                   ErrorCode::kBadPayload,
                                   "malformed update payload");
        }
        UpdateResponse resp;
        {
          std::lock_guard<std::mutex> lock(update_mu_);
          resp = on_update_(
              std::span<const geometry::Point<D>>(req.inserts),
              std::span<const uint64_t>(req.erases));
        }
        conn.SendAll(EncodeFrame(MessageType::kUpdateResponse,
                                 frame.request_id,
                                 EncodeUpdateResponse(resp)));
        stats_.requests_served.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      case MessageType::kShutdownRequest: {
        conn.SendAll(EncodeFrame(MessageType::kShutdownResponse,
                                 frame.request_id, {}));
        {
          std::lock_guard<std::mutex> lock(shutdown_mu_);
          shutdown_requested_ = true;
        }
        shutdown_cv_.notify_all();
        return false;
      }
      default:
        return SendSemanticError(conn, frame.request_id,
                                 ErrorCode::kUnknownType,
                                 "unknown message type");
    }
  }

  // Turns one trace's ring records into wire spans: chronological order
  // (CollectTrace sorts by start), parent expressed as an index into the
  // same vector so the client needs no span-id namespace.
  static std::vector<WireSpan> CollectWireSpans(uint64_t trace_id) {
    const std::vector<telemetry::SpanRecord> spans =
        telemetry::GlobalTraceRing().CollectTrace(trace_id);
    std::unordered_map<uint64_t, int32_t> index_of;
    index_of.reserve(spans.size());
    for (size_t i = 0; i < spans.size(); ++i) {
      index_of.emplace(spans[i].span_id, static_cast<int32_t>(i));
    }
    std::vector<WireSpan> out(spans.size());
    for (size_t i = 0; i < spans.size(); ++i) {
      out[i].name = spans[i].name != nullptr ? spans[i].name : "?";
      const auto it = index_of.find(spans[i].parent_id);
      out[i].parent = it != index_of.end() && spans[i].parent_id != 0
                          ? it->second
                          : -1;
      out[i].start_nanos = spans[i].start_nanos;
      out[i].duration_nanos = spans[i].duration_nanos();
    }
    return out;
  }

  // Semantic errors keep the connection open (framing was intact).
  bool SendSemanticError(TcpConn& conn, uint64_t request_id, ErrorCode code,
                         const std::string& message) {
    stats_.semantic_errors.fetch_add(1, std::memory_order_relaxed);
    conn.SendAll(EncodeErrorFrame(request_id, code, message));
    return true;
  }

  parallel::ServingScheduler<D>& scheduler_;
  parallel::EnginePool<D>& pool_;
  double epsilon_;
  size_t counts_cap_;
  ServerOptions options_;
  UpdateHandler on_update_;
  TcpListener listener_;
  std::thread acceptor_;
  std::mutex update_mu_;

  // Connections are tracked by a unique id, not by fd: an fd is erased
  // from conn_fds_ before the worker closes it, so Stop() never touches a
  // recycled descriptor, and duplicate fd values across a connection's
  // lifetime cannot alias.
  std::mutex conns_mu_;
  bool stopping_ = false;
  uint64_t next_conn_id_ = 0;
  std::unordered_map<uint64_t, int> conn_fds_;
  std::unordered_map<uint64_t, std::thread> conn_threads_;
  std::vector<uint64_t> finished_;

  mutable std::mutex shutdown_mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;

  ServerStats stats_;
};

}  // namespace pdbscan::net

#endif  // PDBSCAN_NET_SERVER_H_
