// Snapshot-shipping replication: one writer, N replicas, a shared
// directory as the transport.
//
//   writer                                shared dir                 replica
//   ──────                                ──────────                 ───────
//   ApplyUpdates ──WAL──► journal-<s>.pdbjnl  ──────── tail ───────► replay
//        │                journal-<s'>.pdbjnl (rotated)                │
//        └─ every checkpoint_every batches:                            │
//           checkpoint-<k>.pdbsnap  ◄──────── cold start (mmap) ───────┘
//           (+ prune: old checkpoints, fully-covered segments)
//
// SEQUENCE NUMBERS are the shared clock: seq = number of update batches
// applied since the dataset was born. Checkpoint files are named by the
// seq they capture; journal segments by the seq before their first record.
// A node at sequence s serves pool generation s + 1 — the same numbering a
// local StreamingClusterer would report (empty = generation 1) — via
// EnginePool's explicit-generation surface. That is what makes the
// cross-replica identity contract meaningful: "generation G" names one
// specific point set on EVERY node, so labels for (G, eps, min_pts) are
// bit-identical wherever they were computed (per-process bit-identity is
// already guaranteed by the engine).
//
// Replica catch-up path:
//   1. Cold start: newest loadable checkpoint-<k>.pdbsnap (mmap by
//      default), DynamicCellIndex restored from its stream state.
//   2. Tail: ListSegmentsSince(k) → replay records k+1, k+2, ... Each
//      applied batch republishes the snapshot at its generation.
//   3. Stale-generation window: if the writer checkpointed and PRUNED
//      between the replica choosing checkpoint k and listing segments,
//      the list starts past k — the records in between are gone. The
//      replica detects the gap and re-cold-starts from the (newer)
//      checkpoint. ReplicaOptions::on_cold_start_loaded widens this
//      window deterministically for tests.
//
// Crash safety: checkpoints are temp+rename (SnapshotWriter), segment
// appends are WAL-before-mutate with torn tails truncated on scan — both
// inherited from persist/. A replica killed at ANY instant holds no locks
// and wrote nothing; restart is just cold start + tail (fault-injection
// tests in tests/test_net.cpp kill -9 mid-tail and assert reconvergence).
//
// Threading contract: WriterNode::ApplyUpdates from one thread at a time;
// ReplicaNode tails on its own thread (StartTailing) or the caller's
// (TailOnce). pool() on either node is fully thread-safe — that is the
// serving surface.
#ifndef PDBSCAN_NET_REPLICATION_H_
#define PDBSCAN_NET_REPLICATION_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "dbscan/stats.h"
#include "dbscan/types.h"
#include "parallel/engine_pool.h"
#include "persist/format.h"
#include "persist/io.h"
#include "persist/journal.h"
#include "persist/snapshot.h"
#include "streaming/dynamic_cell_index.h"
#include "telemetry/trace.h"

namespace pdbscan::net {

// One checkpoint file in the shared directory. `seq` is the number of
// batches the snapshot captures (its journal_generation field).
struct CheckpointFile {
  std::string path;
  uint64_t seq = 0;
};

inline std::string CheckpointName(uint64_t seq) {
  return "checkpoint-" + std::to_string(seq) + ".pdbsnap";
}

// All checkpoints in `dir`, sorted by seq ascending. Temp files (the
// AtomicFileWriter suffix) and foreign names are ignored.
inline std::vector<CheckpointFile> ListCheckpoints(const std::string& dir) {
  std::vector<CheckpointFile> out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() <= 19 || name.compare(0, 11, "checkpoint-") != 0 ||
        name.compare(name.size() - 8, 8, ".pdbsnap") != 0) {
      continue;
    }
    const std::string digits = name.substr(11, name.size() - 19);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    out.push_back(CheckpointFile{entry.path().string(), std::stoull(digits)});
  }
  std::sort(out.begin(), out.end(),
            [](const CheckpointFile& a, const CheckpointFile& b) {
              return a.seq < b.seq;
            });
  return out;
}

struct WriterOptions {
  // Rotate the active journal segment once it exceeds this size.
  uint64_t rotate_bytes = 1ull << 20;
  // Checkpoint (and prune) every N applied batches; 0 = manual only.
  uint64_t checkpoint_every = 64;
  // Checkpoints retained after a prune. Must be >= 1. Keeping 2 means a
  // replica that already CHOSE the previous checkpoint usually still finds
  // it; the stale window only opens when a replica falls a full prune
  // cycle behind.
  size_t keep_checkpoints = 2;
  persist::FsyncPolicy journal_fsync = persist::FsyncPolicy::kNone;
  // Invoked after every completed checkpoint (auto-cadence and manual) with
  // the sequence it captured and the writer's running checkpoint count —
  // the fleet-logging hook pdbscan_server wires to stderr. Runs on the
  // ApplyUpdates/Checkpoint caller thread; keep it cheap.
  std::function<void(uint64_t seq, uint64_t checkpoints_taken)> on_checkpoint;
};

// The single writer: owns the dataset, the journal segments, and the
// checkpoint cadence. Recovers its own state from the shared directory on
// construction (latest checkpoint + segment replay), so a writer crash is
// survivable with the same machinery replicas use.
template <int D>
class WriterNode {
 public:
  WriterNode(const std::string& dir, double epsilon, size_t counts_cap,
             Options options = Options(),
             WriterOptions writer_options = WriterOptions(),
             dbscan::PipelineStats* stats = nullptr)
      : dir_(dir),
        epsilon_(epsilon),
        counts_cap_(counts_cap),
        options_(std::move(options)),
        writer_options_(writer_options),
        stats_(stats != nullptr ? stats : &dbscan::GlobalStats()) {
    if (writer_options_.keep_checkpoints == 0) {
      throw persist::PersistError("keep_checkpoints must be >= 1");
    }
    std::filesystem::create_directories(dir_);

    // Base state: newest checkpoint, or an empty dataset.
    uint64_t seq = 0;
    const std::vector<CheckpointFile> checkpoints = ListCheckpoints(dir_);
    if (!checkpoints.empty()) {
      const CheckpointFile& cp = checkpoints.back();
      persist::LoadedSnapshot<D> loaded = persist::SnapshotReader<D>::Load(
          cp.path, persist::LoadMode::kOwned, stats_);
      RequireStreamState(cp.path, loaded);
      seq = loaded.journal_generation;
      index_ = std::make_unique<streaming::DynamicCellIndex<D>>(
          std::move(loaded.index), std::span<const uint64_t>(loaded.live_ids),
          loaded.next_id, stats_);
    } else {
      index_ = std::make_unique<streaming::DynamicCellIndex<D>>(
          epsilon_, counts_cap_, options_, stats_);
    }

    // Replay the segments past the checkpoint. A writer must find its
    // whole suffix — a gap here is data loss, not a stale window.
    uint64_t active_start = seq;
    const auto segments = persist::ListSegmentsSince(dir_, seq);
    if (!segments.empty()) {
      if (segments.front().start_seq > seq) {
        throw persist::PersistError(
            dir_ + ": journal gap — records after sequence " +
            std::to_string(seq) + " start at " +
            std::to_string(segments.front().start_seq));
      }
      telemetry::TraceSpan replay_span("journal_replay");
      for (const persist::JournalSegment& seg : segments) {
        const auto scan = persist::UpdateJournal<D>::Scan(seg.path, stats_);
        persist::UpdateJournal<D>::RequireMatch(seg.path, scan, epsilon_,
                                                counts_cap_, options_);
        uint64_t record_seq = seg.start_seq;
        for (const persist::JournalRecord<D>& rec : scan.records) {
          ++record_seq;
          if (record_seq <= seq) continue;  // Covered by the checkpoint.
          ReplayRecord(seg.path, rec, *index_);
          seq = record_seq;
        }
      }
      active_start = segments.back().start_seq;
    }

    journal_ = std::make_unique<persist::SegmentedJournal<D>>(
        dir_, epsilon_, counts_cap_, options_, seq, active_start,
        writer_options_.rotate_bytes, writer_options_.journal_fsync, stats_);
    index_->set_journal(journal_->current());
    pool_ = std::make_unique<parallel::EnginePool<D>>(index_->snapshot(),
                                                      seq + 1);
  }

  WriterNode(const WriterNode&) = delete;
  WriterNode& operator=(const WriterNode&) = delete;

  // Journals, applies and publishes one batch; returns the id of
  // inserts[0]. Checkpoints (and prunes) on the configured cadence.
  uint64_t ApplyUpdates(std::span<const geometry::Point<D>> inserts,
                        std::span<const uint64_t> erases) {
    const uint64_t first_id = index_->ApplyUpdates(inserts, erases);
    if (journal_->OnBatchApplied()) {
      index_->set_journal(journal_->current());
    }
    pool_->ReplaceIndex(index_->snapshot(), journal_->seq() + 1);
    if (writer_options_.checkpoint_every != 0 &&
        journal_->seq() % writer_options_.checkpoint_every == 0) {
      Checkpoint();
    }
    return first_id;
  }

  // Ships a checkpoint of the current state and prunes: checkpoints beyond
  // keep_checkpoints, then every segment fully covered by the OLDEST
  // retained checkpoint (replicas older than that must re-cold-start —
  // the stale-generation window the tests exercise).
  void Checkpoint() {
    const uint64_t seq = journal_->seq();
    persist::SnapshotWriter<D>::Write(dir_ + "/" + CheckpointName(seq),
                                      *index_->snapshot(), index_->LiveIds(),
                                      index_->next_id(),
                                      /*journal_generation=*/seq, stats_);
    std::vector<CheckpointFile> checkpoints = ListCheckpoints(dir_);
    while (checkpoints.size() > writer_options_.keep_checkpoints) {
      std::error_code ec;
      std::filesystem::remove(checkpoints.front().path, ec);
      checkpoints.erase(checkpoints.begin());
    }
    if (!checkpoints.empty()) {
      persist::PruneSegmentsBefore(dir_, checkpoints.front().seq);
    }
    const uint64_t taken =
        checkpoints_taken_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (writer_options_.on_checkpoint) {
      writer_options_.on_checkpoint(seq, taken);
    }
  }

  parallel::EnginePool<D>& pool() { return *pool_; }
  streaming::DynamicCellIndex<D>& index() { return *index_; }
  // Checkpoints this writer has shipped since construction. Thread-safe.
  uint64_t checkpoints_taken() const {
    return checkpoints_taken_.load(std::memory_order_relaxed);
  }
  uint64_t seq() const { return journal_->seq(); }
  uint64_t generation() const { return journal_->seq() + 1; }
  const std::string& dir() const { return dir_; }

 private:
  static void RequireStreamState(const std::string& path,
                                 const persist::LoadedSnapshot<D>& loaded) {
    if (!loaded.has_stream_state) {
      throw persist::PersistError(
          path + ": not a streaming checkpoint (no live-id state)");
    }
  }

  static void ReplayRecord(const std::string& path,
                           const persist::JournalRecord<D>& rec,
                           streaming::DynamicCellIndex<D>& index) {
    const uint64_t first_id = index.ApplyUpdates(
        std::span<const geometry::Point<D>>(rec.inserts),
        std::span<const uint64_t>(rec.erases));
    if (first_id != rec.first_id) {
      throw persist::PersistError(
          path + ": journal ids do not align with the checkpoint");
    }
  }

  std::string dir_;
  double epsilon_;
  size_t counts_cap_;
  Options options_;
  WriterOptions writer_options_;
  dbscan::PipelineStats* stats_;
  std::unique_ptr<streaming::DynamicCellIndex<D>> index_;
  std::unique_ptr<persist::SegmentedJournal<D>> journal_;
  std::unique_ptr<parallel::EnginePool<D>> pool_;
  std::atomic<uint64_t> checkpoints_taken_{0};

  template <int>
  friend class ReplicaNode;
};

struct ReplicaOptions {
  // How often StartTailing polls the shared directory.
  uint64_t poll_millis = 20;
  // Checkpoint load mode for cold starts. kMapped: O(validation) start,
  // pages fault in on demand (the checkpoint file must stay present while
  // mapped — the writer only ever unlinks PRUNED checkpoints, and an
  // unlinked-but-mapped file stays readable on POSIX).
  persist::LoadMode load_mode = persist::LoadMode::kMapped;
  // Consecutive failed tail passes before the replica gives up on the
  // current base and re-cold-starts from the newest checkpoint.
  size_t max_transient_failures = 50;
  // Test hook: runs after a cold start CHOSE and LOADED its checkpoint but
  // before it lists segments — exactly the stale-generation window (a
  // writer checkpoint + prune in this window forces the gap path).
  std::function<void(uint64_t seq)> on_cold_start_loaded;
  // Invoked after every gap-induced re-cold-start with the sequence the
  // replica re-based to and the running gap_restarts count — the
  // fleet-logging hook pdbscan_server wires to stderr. Runs on the tailing
  // thread; keep it cheap.
  std::function<void(uint64_t seq, size_t gap_restarts)> on_gap_restart;
};

// A read-only follower: cold-starts from the newest shipped checkpoint and
// tails journal segments, republishing every applied batch through its own
// EnginePool at the dataset generation. Never writes to the shared
// directory, so killing a replica at any instant cannot corrupt anything.
template <int D>
class ReplicaNode {
 public:
  ReplicaNode(const std::string& dir, double epsilon, size_t counts_cap,
              Options options = Options(),
              ReplicaOptions replica_options = ReplicaOptions(),
              dbscan::PipelineStats* stats = nullptr)
      : dir_(dir),
        epsilon_(epsilon),
        counts_cap_(counts_cap),
        options_(std::move(options)),
        replica_options_(std::move(replica_options)),
        stats_(stats != nullptr ? stats : &dbscan::GlobalStats()) {
    ColdStart();
    pool_ = std::make_unique<parallel::EnginePool<D>>(index_->snapshot(),
                                                      seq_.load() + 1);
    TailOnce();
  }

  ~ReplicaNode() { StopTailing(); }
  ReplicaNode(const ReplicaNode&) = delete;
  ReplicaNode& operator=(const ReplicaNode&) = delete;

  // One tail pass: apply every intact record now visible past seq(). Safe
  // to call from the tailing thread or (with tailing stopped) the caller.
  // Returns the number of batches applied. Transient read failures — the
  // writer mid-create, mid-append or mid-prune — count toward
  // max_transient_failures and then force a re-cold-start.
  size_t TailOnce() {
    size_t applied = 0;
    try {
      applied = TailPass();
      failures_ = 0;
    } catch (const std::exception&) {
      // PersistError (torn/missing files under the writer's feet) plus
      // anything else the filesystem can surface — the tailing thread
      // must survive every failure and just try again.
      if (++failures_ >= replica_options_.max_transient_failures) {
        failures_ = 0;
        try {
          Restart();
        } catch (const std::exception&) {
          // The newest checkpoint was itself unreadable (writer mid-ship,
          // persistent disk fault). Keep serving the current snapshot and
          // retry on the next poll.
        }
      }
    }
    return applied;
  }

  // Poll the directory on a background thread until StopTailing().
  void StartTailing() {
    if (tail_thread_.joinable()) return;
    stop_.store(false, std::memory_order_relaxed);
    tail_thread_ = std::thread([this]() {
      while (!stop_.load(std::memory_order_relaxed)) {
        TailOnce();
        std::unique_lock<std::mutex> lock(stop_mu_);
        stop_cv_.wait_for(
            lock, std::chrono::milliseconds(replica_options_.poll_millis),
            [this]() { return stop_.load(std::memory_order_relaxed); });
      }
    });
  }

  void StopTailing() {
    if (!tail_thread_.joinable()) return;
    {
      std::lock_guard<std::mutex> lock(stop_mu_);
      stop_.store(true, std::memory_order_relaxed);
    }
    stop_cv_.notify_all();
    tail_thread_.join();
  }

  parallel::EnginePool<D>& pool() { return *pool_; }
  // The last applied sequence / the generation being served. Thread-safe.
  uint64_t applied_seq() const { return seq_.load(std::memory_order_acquire); }
  uint64_t generation() const { return applied_seq() + 1; }
  // How many cold starts hit the stale-generation gap (diagnostics/tests).
  size_t gap_restarts() const { return gap_restarts_.load(); }

 private:
  // Loads the newest checkpoint into index_/seq_ (empty dataset when the
  // directory has none). Does not touch pool_ — callers publish.
  void ColdStart() {
    const std::vector<CheckpointFile> checkpoints = ListCheckpoints(dir_);
    if (checkpoints.empty()) {
      index_ = std::make_unique<streaming::DynamicCellIndex<D>>(
          epsilon_, counts_cap_, options_, stats_);
      seq_.store(0, std::memory_order_release);
    } else {
      const CheckpointFile& cp = checkpoints.back();
      persist::LoadedSnapshot<D> loaded = persist::SnapshotReader<D>::Load(
          cp.path, replica_options_.load_mode, stats_);
      if (!loaded.has_stream_state) {
        throw persist::PersistError(
            cp.path + ": not a streaming checkpoint (no live-id state)");
      }
      if (loaded.index->epsilon() != epsilon_ ||
          loaded.index->counts_cap() != counts_cap_) {
        throw persist::PersistError(
            cp.path + ": checkpoint configuration does not match replica");
      }
      index_ = std::make_unique<streaming::DynamicCellIndex<D>>(
          std::move(loaded.index), std::span<const uint64_t>(loaded.live_ids),
          loaded.next_id, stats_);
      seq_.store(cp.seq, std::memory_order_release);
    }
    if (replica_options_.on_cold_start_loaded) {
      replica_options_.on_cold_start_loaded(seq_.load());
    }
  }

  // Re-base on the newest checkpoint and republish. Reached past a gap or
  // repeated failures; the counter only ticks once the cold start
  // actually succeeded.
  void Restart() {
    ColdStart();
    const size_t restarts =
        gap_restarts_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (replica_options_.on_gap_restart) {
      replica_options_.on_gap_restart(seq_.load(std::memory_order_relaxed),
                                      restarts);
    }
    PublishIfNewer();
  }

  // Publishes the current index at seq_+1 unless the pool already serves
  // at least that generation: a re-cold-start is NOT guaranteed to move
  // forward (repeated transient failures can force a re-base onto a
  // checkpoint at or before the generation already served), and
  // ReplaceIndex rejects non-advancing generations. All publishes happen
  // on the tailing thread, so the check-then-swap cannot race.
  void PublishIfNewer() {
    const uint64_t generation = seq_.load(std::memory_order_relaxed) + 1;
    if (generation > pool_->generation()) {
      pool_->ReplaceIndex(index_->snapshot(), generation);
    }
  }

  size_t TailPass() {
    uint64_t seq = seq_.load(std::memory_order_relaxed);
    const auto segments = persist::ListSegmentsSince(dir_, seq);
    if (!segments.empty() && segments.front().start_seq > seq) {
      // Stale-generation gap: the records right after our position were
      // pruned under a newer checkpoint. Re-base.
      Restart();
      return 0;
    }
    size_t applied = 0;
    for (const persist::JournalSegment& seg : segments) {
      // A file shorter than one header is the writer mid-create; later
      // segments cannot have records we need yet (records are ordered).
      if (!persist::FileExists(seg.path) ||
          persist::FileBytes(seg.path) < sizeof(persist::JournalHeader)) {
        break;
      }
      const auto scan = persist::UpdateJournal<D>::Scan(seg.path, stats_);
      persist::UpdateJournal<D>::RequireMatch(seg.path, scan, epsilon_,
                                              counts_cap_, options_);
      if (scan.generation != seg.start_seq) {
        throw persist::PersistError(seg.path + ": segment generation " +
                                    std::to_string(scan.generation) +
                                    " does not match its file name");
      }
      telemetry::TraceSpan replay_span("journal_replay");
      uint64_t record_seq = seg.start_seq;
      for (const persist::JournalRecord<D>& rec : scan.records) {
        ++record_seq;
        if (record_seq <= seq) continue;  // Already applied.
        const uint64_t first_id = index_->ApplyUpdates(
            std::span<const geometry::Point<D>>(rec.inserts),
            std::span<const uint64_t>(rec.erases));
        if (first_id != rec.first_id) {
          throw persist::PersistError(
              seg.path + ": journal ids do not align with the base");
        }
        seq = record_seq;
        seq_.store(seq, std::memory_order_release);
        PublishIfNewer();
        ++applied;
      }
    }
    return applied;
  }

  std::string dir_;
  double epsilon_;
  size_t counts_cap_;
  Options options_;
  ReplicaOptions replica_options_;
  dbscan::PipelineStats* stats_;
  std::unique_ptr<streaming::DynamicCellIndex<D>> index_;
  std::unique_ptr<parallel::EnginePool<D>> pool_;
  std::atomic<uint64_t> seq_{0};
  std::atomic<size_t> gap_restarts_{0};
  size_t failures_ = 0;

  std::thread tail_thread_;
  std::atomic<bool> stop_{false};
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
};

}  // namespace pdbscan::net

#endif  // PDBSCAN_NET_REPLICATION_H_
