#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <thread>

namespace pdbscan::net {

namespace {

[[noreturn]] void ThrowErrno(const std::string& what) {
  throw NetError(what + ": " + strerror(errno));
}

}  // namespace

// --- TcpConn ----------------------------------------------------------------

TcpConn::TcpConn(int fd) : fd_(fd) {
  if (fd_ >= 0) {
    // The protocol is request/response with small frames; Nagle only adds
    // latency here.
    int one = 1;
    setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
}

TcpConn::TcpConn(TcpConn&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

TcpConn& TcpConn::operator=(TcpConn&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

TcpConn::~TcpConn() { Close(); }

void TcpConn::SendAll(std::span<const uint8_t> bytes) {
  if (fd_ < 0) throw NetError("SendAll on closed connection");
  size_t sent = 0;
  while (sent < bytes.size()) {
    // MSG_NOSIGNAL: a hung-up peer must surface as EPIPE, not SIGPIPE —
    // the server's connection threads handle the error and move on.
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      ThrowErrno("send");
    }
    sent += static_cast<size_t>(n);
  }
}

size_t TcpConn::RecvSome(std::span<uint8_t> out) {
  if (fd_ < 0) throw NetError("RecvSome on closed connection");
  for (;;) {
    const ssize_t n = ::recv(fd_, out.data(), out.size(), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      ThrowErrno("recv");
    }
    return static_cast<size_t>(n);
  }
}

void TcpConn::ShutdownWrite() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void TcpConn::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

// --- TcpListener ------------------------------------------------------------

TcpListener::TcpListener(uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) ThrowErrno("socket");
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int saved = errno;
    ::close(listen_fd_);
    errno = saved;
    ThrowErrno("bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(listen_fd_, 64) < 0) {
    const int saved = errno;
    ::close(listen_fd_);
    errno = saved;
    ThrowErrno("listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    ThrowErrno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  if (::pipe(wake_pipe_) < 0) ThrowErrno("pipe");
}

TcpListener::~TcpListener() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
}

TcpConn TcpListener::Accept() {
  for (;;) {
    pollfd fds[2];
    fds[0].fd = listen_fd_;
    fds[0].events = POLLIN;
    fds[1].fd = wake_pipe_[0];
    fds[1].events = POLLIN;
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      ThrowErrno("poll");
    }
    // Wake bytes stay in the pipe: once interrupted, every later Accept
    // (from any thread) also returns empty — the shutdown latch.
    if (fds[1].revents != 0) return TcpConn();
    if (fds[0].revents != 0) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR || errno == ECONNABORTED) continue;
        ThrowErrno("accept");
      }
      return TcpConn(fd);
    }
  }
}

void TcpListener::Interrupt() {
  const uint8_t byte = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &byte, 1);
}

// --- ConnectLoopback --------------------------------------------------------

TcpConn ConnectLoopback(uint16_t port, uint64_t timeout_millis) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_millis);
  for (;;) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) ThrowErrno("socket");
    sockaddr_in addr;
    memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
        0) {
      return TcpConn(fd);
    }
    const int saved = errno;
    ::close(fd);
    if (saved != ECONNREFUSED ||
        std::chrono::steady_clock::now() >= deadline) {
      errno = saved;
      ThrowErrno("connect 127.0.0.1:" + std::to_string(port));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

}  // namespace pdbscan::net
