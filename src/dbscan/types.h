// Public option and result types for the DBSCAN implementations.
#ifndef PDBSCAN_DBSCAN_TYPES_H_
#define PDBSCAN_DBSCAN_TYPES_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace pdbscan {

// How points are partitioned into cells (Section 4.1 / 4.2). kBox is
// implemented for 2D only.
enum class CellMethod { kGrid, kBox };

// How cell-graph connectivity between core cells is decided (Section 4.4 /
// 5.2). kUsec and kDelaunay are 2D only; kApproxQuadtree yields approximate
// DBSCAN in the Gan–Tao sense.
enum class ConnectMethod {
  kBcp,            // Blocked early-termination bichromatic closest pair.
  kQuadtreeBcp,    // BCP decided by quadtree range queries ("our-exact-qt").
  kUsec,           // Unit-spherical emptiness checking with wavefronts.
  kDelaunay,       // Delaunay triangulation edge filtering.
  kApproxQuadtree  // Approximate quadtree counting ("our-approx*").
};

// How RangeCount queries in MarkCore are answered (Section 4.3 / 5.2).
enum class RangeCountMethod {
  kScan,     // Compare against all points of the neighboring cell.
  kQuadtree  // Traverse a per-cell quadtree.
};

// The distance metric the epsilon-neighborhood is measured in. The paper's
// algorithms are metric-generic as long as the grid cell diameter is at most
// epsilon under the metric; only the L2 machinery (quadtrees, USEC, Delaunay,
// box cells, the approximate counting) is metric-specific, so non-L2 metrics
// are restricted to the grid + BCP + scan configuration (see
// ValidateMetricOptions).
enum class Metric : uint8_t {
  kL2,   // Euclidean. Compared as squared distance vs epsilon^2.
  kL1,   // Manhattan. Compared as |dx| + |dy| + ... vs epsilon.
  kLinf  // Chebyshev. Compared as max_i |dx_i| vs epsilon.
};

inline const char* MetricName(Metric m) {
  switch (m) {
    case Metric::kL2: return "l2";
    case Metric::kL1: return "l1";
    case Metric::kLinf: return "linf";
  }
  return "?";
}

// Parses "l2" / "l1" / "linf" into a Metric; returns false on anything else.
inline bool ParseMetric(const std::string& s, Metric* out) {
  if (s == "l2") { *out = Metric::kL2; return true; }
  if (s == "l1") { *out = Metric::kL1; return true; }
  if (s == "linf" || s == "loo" || s == "chebyshev") {
    *out = Metric::kLinf;
    return true;
  }
  return false;
}

struct Options {
  CellMethod cell_method = CellMethod::kGrid;
  ConnectMethod connect_method = ConnectMethod::kBcp;
  RangeCountMethod range_count = RangeCountMethod::kScan;

  // Process cells in size-sorted batches during cell-graph construction
  // (the "bucketing" heuristic of Section 4.4).
  bool bucketing = false;

  // Number of size-sorted batches when bucketing is enabled.
  size_t num_buckets = 32;

  // Approximation parameter for kApproxQuadtree (paper default 0.01).
  double rho = 0.01;

  // DBSCAN* (Campello et al. [20], discussed in the paper's related work):
  // clusters contain core points only; non-core points are all noise and
  // the border-assignment phase is skipped entirely.
  bool core_only = false;

  // Deterministic jitter seed for Delaunay degeneracy-breaking (0 disables;
  // see geometry/delaunay.h).
  uint64_t delaunay_jitter_seed = 0x9e3779b9u;

  // Distance metric for the epsilon-neighborhood. Non-L2 metrics require the
  // grid + BCP + scan configuration (ValidateMetricOptions enforces this).
  Metric metric = Metric::kL2;

  // Human-readable configuration name, mirroring the paper's labels.
  std::string Name() const;
};

// Throws std::invalid_argument if `options` combines a non-L2 metric with
// machinery that is inherently Euclidean (box cells, quadtree counting, USEC,
// Delaunay, approximate quadtrees). Called by every build surface.
inline void ValidateMetricOptions(const Options& options) {
  if (options.metric == Metric::kL2) return;
  if (options.cell_method != CellMethod::kGrid ||
      options.connect_method != ConnectMethod::kBcp ||
      options.range_count != RangeCountMethod::kScan) {
    throw std::invalid_argument(
        std::string(MetricName(options.metric)) +
        " metric requires the grid + BCP + scan configuration "
        "(quadtrees, USEC, Delaunay, box cells and approximate counting "
        "are Euclidean-only)");
  }
}

// Named configurations used throughout the paper's evaluation (Section 7.1).
Options OurExact();
Options OurExactQt();
Options OurApprox(double rho = 0.01);
Options OurApproxQt(double rho = 0.01);
Options Our2dGridBcp();
Options Our2dGridUsec();
Options Our2dGridDelaunay();
Options Our2dBoxBcp();
Options Our2dBoxUsec();
Options Our2dBoxDelaunay();
// Adds the -bucketing suffix behavior to any configuration.
Options WithBucketing(Options options);

// The clustering produced by DBSCAN. Cluster ids are consecutive integers
// 0..num_clusters-1, assigned deterministically (by first appearance in
// input order), so equal inputs produce identical outputs regardless of the
// execution schedule.
struct Clustering {
  // Primary cluster per point (the lowest cluster id the point belongs to),
  // or kNoise for points in no cluster.
  std::vector<int64_t> cluster;

  // 1 iff the point is a core point.
  std::vector<uint8_t> is_core;

  // Border points may belong to several clusters (Section 2). All
  // memberships of point i, sorted ascending:
  //   membership_ids[membership_offsets[i] .. membership_offsets[i+1]).
  std::vector<size_t> membership_offsets;
  std::vector<int64_t> membership_ids;

  size_t num_clusters = 0;

  static constexpr int64_t kNoise = -1;

  size_t size() const { return cluster.size(); }

  std::span<const int64_t> memberships(size_t i) const {
    return std::span<const int64_t>(
        membership_ids.data() + membership_offsets[i],
        membership_offsets[i + 1] - membership_offsets[i]);
  }
};

inline std::string Options::Name() const {
  std::string name = "our";
  switch (connect_method) {
    case ConnectMethod::kBcp:
    case ConnectMethod::kQuadtreeBcp:
      name += "-exact";
      break;
    case ConnectMethod::kUsec:
    case ConnectMethod::kDelaunay:
      name += "-2d";
      name += cell_method == CellMethod::kBox ? "-box" : "-grid";
      name += connect_method == ConnectMethod::kUsec ? "-usec" : "-delaunay";
      if (bucketing) name += "-bucketing";
      return name;
    case ConnectMethod::kApproxQuadtree:
      name += "-approx";
      break;
  }
  if (range_count == RangeCountMethod::kQuadtree) name += "-qt";
  if (cell_method == CellMethod::kBox) name += "-box";
  if (bucketing) name += "-bucketing";
  if (core_only) name += "-star";
  if (metric != Metric::kL2) {
    name += "-";
    name += MetricName(metric);
  }
  return name;
}

inline Options OurExact() { return Options{}; }

inline Options OurExactQt() {
  Options o;
  o.connect_method = ConnectMethod::kQuadtreeBcp;
  o.range_count = RangeCountMethod::kQuadtree;
  return o;
}

inline Options OurApprox(double rho) {
  Options o;
  o.connect_method = ConnectMethod::kApproxQuadtree;
  o.range_count = RangeCountMethod::kScan;
  o.rho = rho;
  return o;
}

inline Options OurApproxQt(double rho) {
  Options o = OurApprox(rho);
  o.range_count = RangeCountMethod::kQuadtree;
  return o;
}

inline Options Our2dGridBcp() { return Options{}; }

inline Options Our2dGridUsec() {
  Options o;
  o.connect_method = ConnectMethod::kUsec;
  return o;
}

inline Options Our2dGridDelaunay() {
  Options o;
  o.connect_method = ConnectMethod::kDelaunay;
  return o;
}

inline Options Our2dBoxBcp() {
  Options o;
  o.cell_method = CellMethod::kBox;
  return o;
}

inline Options Our2dBoxUsec() {
  Options o = Our2dGridUsec();
  o.cell_method = CellMethod::kBox;
  return o;
}

inline Options Our2dBoxDelaunay() {
  Options o = Our2dGridDelaunay();
  o.cell_method = CellMethod::kBox;
  return o;
}

inline Options WithBucketing(Options options) {
  options.bucketing = true;
  return options;
}

}  // namespace pdbscan

#endif  // PDBSCAN_DBSCAN_TYPES_H_
