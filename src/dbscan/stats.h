// Lightweight execution counters for the DBSCAN pipeline.
//
// The bucketing heuristic of Section 4.4 exists to *reduce the number of
// cell connectivity queries*; these counters make that effect measurable
// (see bench/ablation_bucketing). Counters are process-wide atomics with
// relaxed ordering — negligible overhead, reset explicitly by callers that
// want a per-run reading.
#ifndef PDBSCAN_DBSCAN_STATS_H_
#define PDBSCAN_DBSCAN_STATS_H_

#include <atomic>
#include <cstddef>

namespace pdbscan::dbscan {

struct PipelineStats {
  // Connectivity queries actually executed (Connected() calls).
  std::atomic<size_t> connectivity_queries{0};
  // Candidate cell pairs skipped because union-find already had them in the
  // same component.
  std::atomic<size_t> pruned_queries{0};
  // Connectivity queries that returned "connected".
  std::atomic<size_t> successful_queries{0};

  void Reset() {
    connectivity_queries.store(0, std::memory_order_relaxed);
    pruned_queries.store(0, std::memory_order_relaxed);
    successful_queries.store(0, std::memory_order_relaxed);
  }
};

// Global pipeline counters.
inline PipelineStats& GlobalStats() {
  static PipelineStats* stats = new PipelineStats();
  return *stats;
}

}  // namespace pdbscan::dbscan

#endif  // PDBSCAN_DBSCAN_STATS_H_
