// Lightweight execution counters and per-stage timings for the DBSCAN
// pipeline.
//
// The bucketing heuristic of Section 4.4 exists to *reduce the number of
// cell connectivity queries*; these counters make that effect measurable
// (see bench/ablation_bucketing). The build/reuse counters and stage
// timings make the DbscanEngine's caching observable: a min_pts sweep must
// report cells_built == 1 no matter how many settings it answers.
// Counters are process-wide atomics with relaxed ordering — negligible
// overhead, reset explicitly by callers that want a per-run reading.
#ifndef PDBSCAN_DBSCAN_STATS_H_
#define PDBSCAN_DBSCAN_STATS_H_

#include <atomic>
#include <cstddef>

namespace pdbscan::dbscan {

// Accumulates seconds into a relaxed atomic double (CAS loop: fetch_add on
// atomic<double> needs C++20 library support that not all toolchains ship).
inline void AddSeconds(std::atomic<double>& slot, double seconds) {
  double cur = slot.load(std::memory_order_relaxed);
  while (!slot.compare_exchange_weak(cur, cur + seconds,
                                     std::memory_order_relaxed)) {
  }
}

struct PipelineStats {
  // Connectivity queries actually executed (Connected() calls).
  std::atomic<size_t> connectivity_queries{0};
  // Candidate cell pairs skipped because union-find already had them in the
  // same component.
  std::atomic<size_t> pruned_queries{0};
  // Connectivity queries that returned "connected".
  std::atomic<size_t> successful_queries{0};

  // Engine cache behavior: cell structures built from scratch vs. served
  // from the engine's cache, and MarkCore neighbor-count passes likewise.
  std::atomic<size_t> cells_built{0};
  std::atomic<size_t> cells_reused{0};
  std::atomic<size_t> counts_built{0};
  std::atomic<size_t> counts_reused{0};

  // Per-stage wall-clock seconds, accumulated across runs.
  std::atomic<double> build_cells_seconds{0};
  std::atomic<double> mark_core_seconds{0};
  std::atomic<double> cluster_core_seconds{0};
  std::atomic<double> cluster_border_seconds{0};
  std::atomic<double> finalize_seconds{0};

  void Reset() {
    connectivity_queries.store(0, std::memory_order_relaxed);
    pruned_queries.store(0, std::memory_order_relaxed);
    successful_queries.store(0, std::memory_order_relaxed);
    cells_built.store(0, std::memory_order_relaxed);
    cells_reused.store(0, std::memory_order_relaxed);
    counts_built.store(0, std::memory_order_relaxed);
    counts_reused.store(0, std::memory_order_relaxed);
    build_cells_seconds.store(0, std::memory_order_relaxed);
    mark_core_seconds.store(0, std::memory_order_relaxed);
    cluster_core_seconds.store(0, std::memory_order_relaxed);
    cluster_border_seconds.store(0, std::memory_order_relaxed);
    finalize_seconds.store(0, std::memory_order_relaxed);
  }
};

// Global pipeline counters.
inline PipelineStats& GlobalStats() {
  static PipelineStats* stats = new PipelineStats();
  return *stats;
}

}  // namespace pdbscan::dbscan

#endif  // PDBSCAN_DBSCAN_STATS_H_
