// Lightweight execution counters and per-stage timings for the DBSCAN
// pipeline.
//
// The bucketing heuristic of Section 4.4 exists to *reduce the number of
// cell connectivity queries*; these counters make that effect measurable
// (see bench/ablation_bucketing). The build/reuse counters and stage
// timings make the caching of DbscanEngine and CellIndex observable: a
// min_pts sweep must report cells_built == 1 no matter how many settings it
// answers.
//
// Ownership model: every stage accumulates into a PipelineStats sink chosen
// by its caller. Single-threaded callers (one-shot Dbscan, a lone
// DbscanEngine) default to the process-wide GlobalStats(). Concurrent
// serving gives each QueryContext its own PipelineStats so per-client
// counters never interleave; EnginePool::AggregateStats() merges them on
// demand (see parallel/engine_pool.h). Counters are atomics with relaxed
// ordering — negligible overhead, safe to accumulate from any thread — but
// Reset() and read-out are only meaningful when the sink's owner is
// quiescent, which is exactly what per-context sinks guarantee and the
// shared global one cannot.
#ifndef PDBSCAN_DBSCAN_STATS_H_
#define PDBSCAN_DBSCAN_STATS_H_

#include <atomic>
#include <cstddef>

#include "kernels/kernel_api.h"
#include "telemetry/metrics.h"

namespace pdbscan::dbscan {

// Accumulates seconds into a relaxed atomic double (CAS loop: fetch_add on
// atomic<double> needs C++20 library support that not all toolchains ship).
inline void AddSeconds(std::atomic<double>& slot, double seconds) {
  double cur = slot.load(std::memory_order_relaxed);
  while (!slot.compare_exchange_weak(cur, cur + seconds,
                                     std::memory_order_relaxed)) {
  }
}

struct PipelineStats {
  // Connectivity queries actually executed (Connected() calls).
  std::atomic<size_t> connectivity_queries{0};
  // Candidate cell pairs skipped because union-find already had them in the
  // same component.
  std::atomic<size_t> pruned_queries{0};
  // Connectivity queries that returned "connected".
  std::atomic<size_t> successful_queries{0};

  // Engine cache behavior: cell structures built from scratch vs. served
  // from the engine's cache, and MarkCore neighbor-count passes likewise.
  std::atomic<size_t> cells_built{0};
  std::atomic<size_t> cells_reused{0};
  std::atomic<size_t> counts_built{0};
  std::atomic<size_t> counts_reused{0};

  // Streaming (DynamicCellIndex) incremental maintenance: per snapshot,
  // cells whose contents or eps-neighborhood changed get their points
  // re-grouped and their MarkCore counts recomputed (cells_rebuilt); every
  // other cell's counts are copied from the previous snapshot
  // (cells_retained). "Update cost scales with the dirty footprint" is
  // exactly cells_rebuilt << cells_rebuilt + cells_retained.
  std::atomic<size_t> cells_rebuilt{0};
  std::atomic<size_t> cells_retained{0};
  std::atomic<size_t> snapshots_published{0};

  // Sharded builds (sharding/sharded_cell_index.h): per-shard structures
  // built, and the boundary-merge accounting. A merged build counts every
  // cell exactly once — interior cells inside their shard
  // (shard_interior_cells), seam-adjacent cells in the merge stage
  // (shard_boundary_cells) — and records every cross-seam adjacency edge it
  // adds (shard_seam_links). "Merge work scales with the seam, not the
  // dataset" is exactly shard_boundary_cells << shard_interior_cells +
  // shard_boundary_cells.
  std::atomic<size_t> shards_built{0};
  std::atomic<size_t> shard_interior_cells{0};
  std::atomic<size_t> shard_boundary_cells{0};
  std::atomic<size_t> shard_seam_links{0};

  // Persistence (persist/): bytes written by snapshot/journal producers,
  // bytes read back by loaders and journal scans, and journal records
  // replayed into a restored DynamicCellIndex during recovery. "Recovery
  // cost is proportional to the delta, not the dataset" is measurable as
  // journal_records_replayed (and the journal's share of
  // snapshot_bytes_read) staying small relative to the snapshot size;
  // bench/throughput_persist.cpp reports all of them.
  std::atomic<size_t> snapshot_bytes_written{0};
  std::atomic<size_t> snapshot_bytes_read{0};
  std::atomic<size_t> journal_records_replayed{0};

  // Serving scheduler (parallel/serving_scheduler.h) admission accounting.
  // requests_admitted counts submits that entered the queue (or were
  // cache-served at admission); requests_rejected counts requests resolved
  // kRejected under overload — the refused newcomer under kRejectNew
  // (never admitted), or the evicted oldest under kDropOldest (admitted
  // earlier, so that policy ticks BOTH counters for the victim). Under a
  // quiescent scheduler with kRejectNew
  //   requests_admitted + requests_rejected == total submits,
  // and under either policy every submit resolves exactly once
  // (kOk + kRejected + kTimedOut + kShutdown == total submits).
  // requests_timed_out counts deadline expiries (queued or mid-execution)
  // plus lease-deadline expiries of the legacy EnginePool Run/Sweep
  // surfaces; requests_coalesced counts requests that shared a batched
  // execution with an earlier one (batch of k -> k-1 coalesced);
  // cache_hits / cache_misses count admission-time result-cache lookups
  // (zero while the cache is disabled), so with the cache on
  //   cache_hits + cache_misses == total submits reaching admission
  // (every submit except those refused after shutdown; under kRejectNew
  // that sum equals requests_admitted + requests_rejected).
  std::atomic<size_t> requests_admitted{0};
  std::atomic<size_t> requests_rejected{0};
  std::atomic<size_t> requests_timed_out{0};
  std::atomic<size_t> requests_coalesced{0};
  std::atomic<size_t> cache_hits{0};
  std::atomic<size_t> cache_misses{0};
  // Deepest the admission queue ever got. A gauge like
  // kernel_dispatch_level: MergeFrom takes the max, not the sum.
  std::atomic<size_t> queue_depth_peak{0};

  // Distance-kernel layer (src/kernels/): SIMD batches executed, and points
  // whose exact distance was never computed because a whole cell was pruned
  // by its bounding box (kernel_points_pruned_box) or a whole batch by its
  // first-coordinate partial norm (kernel_points_pruned_norm). The kernels
  // accumulate into a stack-local kernels::Counters; call sites flush it
  // here via FlushKernelCounters so the inner loops stay atomics-free.
  std::atomic<size_t> kernel_batches{0};
  std::atomic<size_t> kernel_points_pruned_box{0};
  std::atomic<size_t> kernel_points_pruned_norm{0};
  // Dispatch level the last kernel-using pass ran at (kernels::Level as
  // int). A gauge, not an accumulator: MergeFrom takes the max so an
  // aggregate over per-context sinks reports the highest level used.
  std::atomic<size_t> kernel_dispatch_level{0};

  // Per-stage wall-clock seconds, accumulated across runs.
  // Wall-clock seconds spent inside SnapshotReader::Load (validation plus
  // owned-mode copies; the mmap path makes this the headline "cold start
  // in milliseconds" number).
  std::atomic<double> snapshot_load_seconds{0};

  std::atomic<double> build_cells_seconds{0};
  std::atomic<double> mark_core_seconds{0};
  std::atomic<double> cluster_core_seconds{0};
  std::atomic<double> cluster_border_seconds{0};
  std::atomic<double> finalize_seconds{0};
  // Sharded builds: the boundary-merge stage alone (cross-seam adjacency
  // discovery + boundary-cell recount). This is an overlay, not a new
  // stage: the same span is also attributed to build_cells_seconds
  // (adjacency/CSR) and mark_core_seconds (recount) so stage totals stay
  // comparable with unsharded builds — don't add it into a sum of the
  // per-stage timers.
  std::atomic<double> shard_merge_seconds{0};

  // Adds every counter and timing of `other` into this sink (relaxed reads
  // and adds). Used by EnginePool to aggregate per-context stats; `other`
  // should be quiescent for the sums to be a consistent snapshot.
  void MergeFrom(const PipelineStats& other) {
    auto add = [](std::atomic<size_t>& dst, const std::atomic<size_t>& src) {
      dst.fetch_add(src.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    };
    add(connectivity_queries, other.connectivity_queries);
    add(pruned_queries, other.pruned_queries);
    add(successful_queries, other.successful_queries);
    add(cells_built, other.cells_built);
    add(cells_reused, other.cells_reused);
    add(counts_built, other.counts_built);
    add(counts_reused, other.counts_reused);
    add(cells_rebuilt, other.cells_rebuilt);
    add(cells_retained, other.cells_retained);
    add(snapshots_published, other.snapshots_published);
    add(shards_built, other.shards_built);
    add(shard_interior_cells, other.shard_interior_cells);
    add(shard_boundary_cells, other.shard_boundary_cells);
    add(shard_seam_links, other.shard_seam_links);
    add(snapshot_bytes_written, other.snapshot_bytes_written);
    add(snapshot_bytes_read, other.snapshot_bytes_read);
    add(journal_records_replayed, other.journal_records_replayed);
    add(requests_admitted, other.requests_admitted);
    add(requests_rejected, other.requests_rejected);
    add(requests_timed_out, other.requests_timed_out);
    add(requests_coalesced, other.requests_coalesced);
    add(cache_hits, other.cache_hits);
    add(cache_misses, other.cache_misses);
    telemetry::AtomicMax(
        queue_depth_peak,
        other.queue_depth_peak.load(std::memory_order_relaxed));
    add(kernel_batches, other.kernel_batches);
    add(kernel_points_pruned_box, other.kernel_points_pruned_box);
    add(kernel_points_pruned_norm, other.kernel_points_pruned_norm);
    telemetry::AtomicMax(
        kernel_dispatch_level,
        other.kernel_dispatch_level.load(std::memory_order_relaxed));
    AddSeconds(snapshot_load_seconds,
               other.snapshot_load_seconds.load(std::memory_order_relaxed));
    AddSeconds(build_cells_seconds,
               other.build_cells_seconds.load(std::memory_order_relaxed));
    AddSeconds(mark_core_seconds,
               other.mark_core_seconds.load(std::memory_order_relaxed));
    AddSeconds(cluster_core_seconds,
               other.cluster_core_seconds.load(std::memory_order_relaxed));
    AddSeconds(cluster_border_seconds,
               other.cluster_border_seconds.load(std::memory_order_relaxed));
    AddSeconds(finalize_seconds,
               other.finalize_seconds.load(std::memory_order_relaxed));
    AddSeconds(shard_merge_seconds,
               other.shard_merge_seconds.load(std::memory_order_relaxed));
  }

  void Reset() {
    connectivity_queries.store(0, std::memory_order_relaxed);
    pruned_queries.store(0, std::memory_order_relaxed);
    successful_queries.store(0, std::memory_order_relaxed);
    cells_built.store(0, std::memory_order_relaxed);
    cells_reused.store(0, std::memory_order_relaxed);
    counts_built.store(0, std::memory_order_relaxed);
    counts_reused.store(0, std::memory_order_relaxed);
    cells_rebuilt.store(0, std::memory_order_relaxed);
    cells_retained.store(0, std::memory_order_relaxed);
    snapshots_published.store(0, std::memory_order_relaxed);
    shards_built.store(0, std::memory_order_relaxed);
    shard_interior_cells.store(0, std::memory_order_relaxed);
    shard_boundary_cells.store(0, std::memory_order_relaxed);
    shard_seam_links.store(0, std::memory_order_relaxed);
    snapshot_bytes_written.store(0, std::memory_order_relaxed);
    snapshot_bytes_read.store(0, std::memory_order_relaxed);
    journal_records_replayed.store(0, std::memory_order_relaxed);
    requests_admitted.store(0, std::memory_order_relaxed);
    requests_rejected.store(0, std::memory_order_relaxed);
    requests_timed_out.store(0, std::memory_order_relaxed);
    requests_coalesced.store(0, std::memory_order_relaxed);
    cache_hits.store(0, std::memory_order_relaxed);
    cache_misses.store(0, std::memory_order_relaxed);
    queue_depth_peak.store(0, std::memory_order_relaxed);
    kernel_batches.store(0, std::memory_order_relaxed);
    kernel_points_pruned_box.store(0, std::memory_order_relaxed);
    kernel_points_pruned_norm.store(0, std::memory_order_relaxed);
    kernel_dispatch_level.store(0, std::memory_order_relaxed);
    snapshot_load_seconds.store(0, std::memory_order_relaxed);
    build_cells_seconds.store(0, std::memory_order_relaxed);
    mark_core_seconds.store(0, std::memory_order_relaxed);
    cluster_core_seconds.store(0, std::memory_order_relaxed);
    cluster_border_seconds.store(0, std::memory_order_relaxed);
    finalize_seconds.store(0, std::memory_order_relaxed);
    shard_merge_seconds.store(0, std::memory_order_relaxed);
  }
};

// Global pipeline counters.
inline PipelineStats& GlobalStats() {
  static PipelineStats* stats = new PipelineStats();
  return *stats;
}

// Flushes a kernel-layer counter block (accumulated atomics-free inside a
// distance-kernel call site) into a stats sink, and records the dispatch
// level the pass ran at.
inline void FlushKernelCounters(PipelineStats& stats,
                                const kernels::Counters& kc) {
  if (kc.batches != 0) {
    stats.kernel_batches.fetch_add(kc.batches, std::memory_order_relaxed);
  }
  if (kc.points_pruned_box != 0) {
    stats.kernel_points_pruned_box.fetch_add(kc.points_pruned_box,
                                             std::memory_order_relaxed);
  }
  if (kc.points_pruned_norm != 0) {
    stats.kernel_points_pruned_norm.fetch_add(kc.points_pruned_norm,
                                              std::memory_order_relaxed);
  }
  stats.kernel_dispatch_level.store(
      static_cast<size_t>(kernels::ActiveLevel()), std::memory_order_relaxed);
}

}  // namespace pdbscan::dbscan

#endif  // PDBSCAN_DBSCAN_STATS_H_
