// ClusterCore — Algorithm 3 of the paper (Section 4.4, Section 5.2).
//
// Builds the cell graph over core cells and computes its connected
// components with a lock-free union-find, merging graph construction and
// connectivity: a pair of cells is queried only if not yet in the same
// component, cells are processed in non-increasing order of core-point
// count, and the optional *bucketing* heuristic processes the sorted cells
// in batches so that large cells prune queries before small ones run.
//
// Connectivity between two core cells can be decided by:
//   * BcpConnector          — filtered, vectorized, early-terminating
//                             bichromatic closest pair ("our-exact");
//   * QuadtreeBcpConnector  — quadtree range query over the neighbor's core
//                             points ("our-exact-qt");
//   * ApproxConnector       — Gan–Tao approximate quadtree counting
//                             ("our-approx", "our-approx-qt");
//   * UsecConnector (2D)    — wavefront-based unit-spherical emptiness
//                             checking;
//   * ClusterCoreDelaunay (2D) — one global Delaunay triangulation of the
//                             core points with parallel edge filtering.
//
// Every connector is a deterministic function of the cell pair, so the
// final partition is schedule-independent even though pruning makes the set
// of *executed* queries nondeterministic.
#ifndef PDBSCAN_DBSCAN_CLUSTER_CORE_H_
#define PDBSCAN_DBSCAN_CLUSTER_CORE_H_

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "containers/union_find.h"
#include "dbscan/cell_structure.h"
#include "dbscan/metric.h"
#include "dbscan/stats.h"
#include "dbscan/types.h"
#include "geometry/delaunay.h"
#include "geometry/quadtree.h"
#include "geometry/wavefront.h"
#include "kernels/kernel_api.h"
#include "parallel/scheduler.h"
#include "primitives/scan.h"
#include "primitives/sort.h"

namespace pdbscan::dbscan {

// Per-cell index of core points (positions into cells.points).
struct CoreIndex {
  std::vector<uint8_t> cell_is_core;     // 1 iff the cell has a core point.
  std::vector<size_t> core_offsets;      // num_cells + 1.
  std::vector<uint32_t> core_positions;  // Cell-contiguous core positions.

  size_t core_count(size_t c) const {
    return core_offsets[c + 1] - core_offsets[c];
  }
  std::span<const uint32_t> core_of(size_t c) const {
    return std::span<const uint32_t>(core_positions.data() + core_offsets[c],
                                     core_count(c));
  }
};

template <int D>
CoreIndex BuildCoreIndex(const CellStructure<D>& cells,
                         const std::vector<uint8_t>& core_flags) {
  const size_t num_cells = cells.num_cells();
  CoreIndex index;
  index.cell_is_core.assign(num_cells, 0);
  std::vector<size_t> counts(num_cells + 1, 0);
  parallel::parallel_for(
      0, num_cells,
      [&](size_t c) {
        size_t count = 0;
        for (size_t i = cells.offsets[c]; i < cells.offsets[c + 1]; ++i) {
          count += core_flags[i];
        }
        counts[c] = count;
        index.cell_is_core[c] = count > 0 ? 1 : 0;
      },
      1);
  const size_t total = primitives::ScanExclusive(std::span<size_t>(counts));
  counts[num_cells] = total;
  index.core_offsets = counts;
  index.core_positions.resize(total);
  parallel::parallel_for(
      0, num_cells,
      [&](size_t c) {
        size_t w = index.core_offsets[c];
        for (size_t i = cells.offsets[c]; i < cells.offsets[c + 1]; ++i) {
          if (core_flags[i]) index.core_positions[w++] = static_cast<uint32_t>(i);
        }
      },
      1);
  return index;
}

// --- Connectors -----------------------------------------------------------

// Vectorized, early-terminating BCP on core points, with the Gan–Tao
// pre-filter that drops points farther than epsilon from the other cell.
// The smaller filtered side is gathered into SoA scratch lanes once; each
// point of the larger side then probes it through the dispatched distance
// kernel with cap 1 ("is any point within eps?"). The answer — does some
// pair lie within eps — is a deterministic function of the cell pair, same
// as the blocked scalar scan this replaces.
template <int D>
class BcpConnector {
 public:
  BcpConnector(const CellStructure<D>& cells, const CoreIndex& core,
               PipelineStats* stats = nullptr)
      : cells_(cells), core_(core), stats_(stats) {}

  bool Connected(size_t g, size_t h) const {
    const Metric metric = cells_.metric;
    const double threshold = MetricThreshold(cells_.epsilon, metric);
    // Filter each side against the other cell's box.
    std::vector<uint32_t> a = FilterByBox(g, h, threshold);
    if (a.empty()) return false;
    std::vector<uint32_t> b = FilterByBox(h, g, threshold);
    if (b.empty()) return false;
    const std::vector<uint32_t>& target = a.size() <= b.size() ? a : b;
    const std::vector<uint32_t>& probes = a.size() <= b.size() ? b : a;
    // Gather the target side's coordinates into lane-major scratch.
    const size_t m = target.size();
    std::vector<double> scratch(m * static_cast<size_t>(D));
    std::array<const double*, D> lanes;
    for (int d = 0; d < D; ++d) {
      double* lane = scratch.data() + static_cast<size_t>(d) * m;
      for (size_t i = 0; i < m; ++i) lane[i] = cells_.points[target[i]][d];
      lanes[static_cast<size_t>(d)] = lane;
    }
    kernels::Counters kc;
    const kernels::CountWithinFn count_within =
        CountWithinForMetric(kernels::Ops(), metric);
    bool connected = false;
    for (const uint32_t pos : probes) {
      if (count_within(lanes.data(), 1, D, m, cells_.points[pos].x.data(),
                       threshold, 1, &kc) > 0) {
        connected = true;
        break;
      }
    }
    if (stats_ != nullptr) FlushKernelCounters(*stats_, kc);
    return connected;
  }

 private:
  // Core positions of cell `from` within eps of cell `against`'s box.
  std::vector<uint32_t> FilterByBox(size_t from, size_t against,
                                    double threshold) const {
    std::vector<uint32_t> kept;
    for (const uint32_t pos : core_.core_of(from)) {
      if (BoxMinMeasure<D>(cells_.cell_boxes[against], cells_.points[pos],
                           cells_.metric) <= threshold) {
        kept.push_back(pos);
      }
    }
    return kept;
  }

  const CellStructure<D>& cells_;
  const CoreIndex& core_;
  PipelineStats* stats_;
};

// BCP decided by quadtree range queries over the neighbor cell's core
// points; the query terminates as soon as a non-zero count is determined.
template <int D>
class QuadtreeBcpConnector {
 public:
  QuadtreeBcpConnector(const CellStructure<D>& cells, const CoreIndex& core)
      : cells_(cells), core_(core), trees_(cells.num_cells()) {
    parallel::parallel_for(
        0, cells.num_cells(),
        [&](size_t c) {
          if (!core.cell_is_core[c]) return;
          std::vector<uint32_t> idx(core.core_of(c).begin(),
                                    core.core_of(c).end());
          trees_[c] = std::make_unique<geometry::CellQuadtree<D>>(
              std::span<const geometry::Point<D>>(cells.points),
              std::move(idx), cells.cell_boxes[c]);
        },
        1);
  }

  bool Connected(size_t g, size_t h) const {
    // Query the smaller side's points against the bigger side's tree.
    size_t from = g, into = h;
    if (core_.core_count(h) < core_.core_count(g)) std::swap(from, into);
    const double eps = cells_.epsilon;
    const double eps2 = eps * eps;
    for (const uint32_t pos : core_.core_of(from)) {
      const geometry::Point<D>& p = cells_.points[pos];
      if (cells_.cell_boxes[into].MinSquaredDistance(p) > eps2) continue;
      if (trees_[into]->ContainsInBall(p, eps)) return true;
    }
    return false;
  }

 private:
  const CellStructure<D>& cells_;
  const CoreIndex& core_;
  std::vector<std::unique_ptr<geometry::CellQuadtree<D>>> trees_;
};

// Approximate connectivity via the rho-quadtree (Section 5.2): cells are
// connected when the approximate count is non-zero, which is guaranteed
// when the BCP is within eps and guaranteed-not when beyond eps * (1 + rho).
// The query direction is fixed by cell id so the answer is deterministic.
template <int D>
class ApproxConnector {
 public:
  ApproxConnector(const CellStructure<D>& cells, const CoreIndex& core,
                  double rho)
      : cells_(cells), core_(core), rho_(rho), trees_(cells.num_cells()) {
    parallel::parallel_for(
        0, cells.num_cells(),
        [&](size_t c) {
          if (!core.cell_is_core[c]) return;
          std::vector<uint32_t> idx(core.core_of(c).begin(),
                                    core.core_of(c).end());
          // Depth from the actual box diameter (equals eps for grid cells;
          // tight boxes from the 2D box method can be smaller).
          const double diameter = std::sqrt(
              cells.cell_boxes[c].min.SquaredDistance(cells.cell_boxes[c].max));
          const int max_level = geometry::CellQuadtree<D>::ApproxMaxLevelFor(
              diameter, cells.epsilon, rho);
          trees_[c] = std::make_unique<geometry::CellQuadtree<D>>(
              std::span<const geometry::Point<D>>(cells.points),
              std::move(idx), cells.cell_boxes[c], max_level);
        },
        1);
  }

  bool Connected(size_t g, size_t h) const {
    const size_t from = std::min(g, h);
    const size_t into = std::max(g, h);
    const double eps = cells_.epsilon;
    const double outer = eps * (1 + rho_);
    const double outer2 = outer * outer;
    for (const uint32_t pos : core_.core_of(from)) {
      const geometry::Point<D>& p = cells_.points[pos];
      if (cells_.cell_boxes[into].MinSquaredDistance(p) > outer2) continue;
      if (trees_[into]->ApproxContainsInBall(p, eps, rho_)) return true;
    }
    return false;
  }

 private:
  const CellStructure<D>& cells_;
  const CoreIndex& core_;
  double rho_;
  std::vector<std::unique_ptr<geometry::CellQuadtree<D>>> trees_;
};

// USEC with line separation (2D): each core cell precomputes the wavefront
// beyond its top and left borders; a query scans the other cell's core
// points against the wavefront across the separating line.
class UsecConnector {
 public:
  UsecConnector(const CellStructure<2>& cells, const CoreIndex& core)
      : cells_(cells), core_(core), top_(cells.num_cells()),
        left_(cells.num_cells()) {
    const double eps = cells.epsilon;
    parallel::parallel_for(
        0, cells.num_cells(),
        [&](size_t c) {
          if (!core.cell_is_core[c]) return;
          std::vector<geometry::Point<2>> pts;
          std::vector<geometry::Point<2>> rotated;
          pts.reserve(core.core_count(c));
          rotated.reserve(core.core_count(c));
          for (const uint32_t pos : core.core_of(c)) {
            pts.push_back(cells.points[pos]);
            rotated.push_back(geometry::LeftFrame(cells.points[pos]));
          }
          top_[c] = geometry::Envelope(std::move(pts), eps);
          left_[c] = geometry::Envelope(std::move(rotated), eps);
        },
        1);
  }

  bool Connected(size_t g, size_t h) const {
    const auto& bg = cells_.cell_boxes[g];
    const auto& bh = cells_.cell_boxes[h];
    // Pick a separating axis-parallel line; disjoint boxes always have one
    // (grid boxes of adjacent cells share bit-identical boundaries, and box
    // cells are strictly separated by the strip construction).
    if (bh.min[1] >= bg.max[1]) return Query(top_[g], h, /*rotate=*/false);
    if (bg.min[1] >= bh.max[1]) return Query(top_[h], g, /*rotate=*/false);
    if (bh.max[0] <= bg.min[0]) return Query(left_[g], h, /*rotate=*/true);
    if (bg.max[0] <= bh.min[0]) return Query(left_[h], g, /*rotate=*/true);
    // Defensive fallback (rounding produced overlapping boxes): exact
    // pairwise check, still a correct connectivity answer.
    const double eps2 = cells_.epsilon * cells_.epsilon;
    for (const uint32_t a : core_.core_of(g)) {
      for (const uint32_t b : core_.core_of(h)) {
        if (cells_.points[a].SquaredDistance(cells_.points[b]) <= eps2) {
          return true;
        }
      }
    }
    return false;
  }

 private:
  bool Query(const geometry::Envelope& env, size_t cell, bool rotate) const {
    if (env.empty()) return false;
    for (const uint32_t pos : core_.core_of(cell)) {
      const geometry::Point<2> q =
          rotate ? geometry::LeftFrame(cells_.points[pos]) : cells_.points[pos];
      if (env.Contains(q)) return true;
    }
    return false;
  }

  const CellStructure<2>& cells_;
  const CoreIndex& core_;
  std::vector<geometry::Envelope> top_;
  std::vector<geometry::Envelope> left_;
};

// --- Driver ----------------------------------------------------------------

// Runs Algorithm 3 with the given connectivity predicate: size-sorted cell
// order, optional bucketing batches, union-find pruning, and the
// "higher-priority cell initiates" rule so each pair is queried at most
// once. Query counters accumulate into `stats` (callers running concurrent
// queries pass their per-context sink; the default is the process-wide one).
template <int D, typename Connector>
void ClusterCoreWithConnector(const CellStructure<D>& cells,
                              const CoreIndex& core, const Options& options,
                              const Connector& connector,
                              containers::UnionFind& uf,
                              PipelineStats& stats = GlobalStats()) {
  const size_t num_cells = cells.num_cells();
  std::vector<uint32_t> core_cells;
  core_cells.reserve(num_cells);
  for (size_t c = 0; c < num_cells; ++c) {
    if (core.cell_is_core[c]) core_cells.push_back(static_cast<uint32_t>(c));
  }
  // SortBySize: non-increasing core-point count (ties by id).
  primitives::ParallelSort(core_cells, [&](uint32_t a, uint32_t b) {
    const size_t ca = core.core_count(a);
    const size_t cb = core.core_count(b);
    if (ca != cb) return ca > cb;
    return a < b;
  });
  std::vector<uint32_t> rank(num_cells, 0);
  for (size_t i = 0; i < core_cells.size(); ++i) rank[core_cells[i]] = i;

  const size_t m = core_cells.size();
  const size_t num_batches =
      options.bucketing ? std::min(options.num_buckets, std::max<size_t>(m, 1))
                        : 1;
  for (size_t batch = 0; batch < num_batches; ++batch) {
    const size_t lo = batch * m / num_batches;
    const size_t hi = (batch + 1) * m / num_batches;
    parallel::parallel_for(
        lo, hi,
        [&](size_t i) {
          const uint32_t g = core_cells[i];
          for (const uint32_t h : cells.neighbors(g)) {
            if (!core.cell_is_core[h]) continue;
            if (rank[h] <= i) continue;  // The higher-priority cell queries.
            if (uf.Find(g) == uf.Find(h)) {
              stats.pruned_queries.fetch_add(1, std::memory_order_relaxed);
              continue;
            }
            stats.connectivity_queries.fetch_add(1, std::memory_order_relaxed);
            if (connector.Connected(g, h)) {
              stats.successful_queries.fetch_add(1, std::memory_order_relaxed);
              uf.Link(g, h);
            }
          }
        },
        1);
  }
}

// Delaunay-based cell graph (2D): triangulate all core points once, then
// filter edges in parallel, keeping cross-cell edges of length <= eps.
inline void ClusterCoreDelaunay(const CellStructure<2>& cells,
                                const CoreIndex& core, const Options& options,
                                containers::UnionFind& uf) {
  const size_t total = core.core_positions.size();
  if (total == 0) return;
  std::vector<geometry::Point<2>> pts(total);
  parallel::parallel_for(0, total, [&](size_t i) {
    pts[i] = cells.points[core.core_positions[i]];
  });
  // Cell of each core point (core_positions is cell-contiguous).
  std::vector<uint32_t> cell_of(total);
  parallel::parallel_for(
      0, cells.num_cells(),
      [&](size_t c) {
        for (size_t i = core.core_offsets[c]; i < core.core_offsets[c + 1];
             ++i) {
          cell_of[i] = static_cast<uint32_t>(c);
        }
      },
      1);

  geometry::Delaunay dt(std::span<const geometry::Point<2>>(pts),
                        options.delaunay_jitter_seed);
  const auto edges = dt.Edges();
  const double eps2 = cells.epsilon * cells.epsilon;
  parallel::parallel_for(0, edges.size(), [&](size_t e) {
    const auto [u, v] = edges[e];
    if (cell_of[u] == cell_of[v]) return;
    if (pts[u].SquaredDistance(pts[v]) <= eps2) uf.Link(cell_of[u], cell_of[v]);
  });
}

// Dispatches to the configured connectivity strategy. `uf` must be sized to
// cells.num_cells().
template <int D>
void ClusterCore(const CellStructure<D>& cells, const CoreIndex& core,
                 const Options& options, containers::UnionFind& uf,
                 PipelineStats& stats = GlobalStats()) {
  switch (options.connect_method) {
    case ConnectMethod::kBcp: {
      BcpConnector<D> connector(cells, core, &stats);
      ClusterCoreWithConnector(cells, core, options, connector, uf, stats);
      return;
    }
    case ConnectMethod::kQuadtreeBcp: {
      QuadtreeBcpConnector<D> connector(cells, core);
      ClusterCoreWithConnector(cells, core, options, connector, uf, stats);
      return;
    }
    case ConnectMethod::kApproxQuadtree: {
      ApproxConnector<D> connector(cells, core, options.rho);
      ClusterCoreWithConnector(cells, core, options, connector, uf, stats);
      return;
    }
    case ConnectMethod::kUsec:
    case ConnectMethod::kDelaunay:
      if constexpr (D == 2) {
        if (options.connect_method == ConnectMethod::kUsec) {
          UsecConnector connector(cells, core);
          ClusterCoreWithConnector(cells, core, options, connector, uf, stats);
        } else {
          ClusterCoreDelaunay(cells, core, options, uf);
        }
        return;
      } else {
        throw std::invalid_argument(
            "USEC and Delaunay cell graphs are implemented for 2D only");
      }
  }
}

}  // namespace pdbscan::dbscan

#endif  // PDBSCAN_DBSCAN_CLUSTER_CORE_H_
