// Reference implementations and clustering validators used by the tests.
//
// BruteForceDbscan computes the standard DBSCAN definition in O(n^2) with no
// spatial structures at all — the ground truth every exact variant must
// match exactly (as a partition; labels are compared modulo renaming).
// IsValidApproxClustering checks Gan & Tao's approximate-DBSCAN definition:
// core points are unchanged, any two core points within eps share a cluster,
// clusters never span beyond an eps(1+rho)-connected component, and border
// membership follows the exact eps rule given the core partition.
#ifndef PDBSCAN_DBSCAN_VERIFY_H_
#define PDBSCAN_DBSCAN_VERIFY_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "containers/union_find.h"
#include "dbscan/metric.h"
#include "dbscan/types.h"
#include "geometry/point.h"

namespace pdbscan::dbscan {

// O(n^2) reference DBSCAN (exact, standard definition, multi-membership
// border points). Labels are normalized by first appearance in input order,
// the same rule the parallel pipeline uses. `metric` selects the distance
// the eps-neighborhood is measured in (defaults to L2, the paper's setting).
template <int D>
Clustering BruteForceDbscan(std::span<const geometry::Point<D>> pts,
                            double epsilon, size_t min_pts,
                            Metric metric = Metric::kL2) {
  const size_t n = pts.size();
  const double threshold = MetricThreshold(epsilon, metric);
  const auto within = [&](size_t i, size_t j) {
    return PointMeasure<D>(pts[i], pts[j], metric) <= threshold;
  };
  Clustering out;
  out.is_core.assign(n, 0);
  for (size_t i = 0; i < n; ++i) {
    size_t count = 0;
    for (size_t j = 0; j < n; ++j) {
      if (within(i, j)) ++count;
    }
    if (count >= min_pts) out.is_core[i] = 1;
  }

  containers::UnionFind uf(n);
  for (size_t i = 0; i < n; ++i) {
    if (!out.is_core[i]) continue;
    for (size_t j = i + 1; j < n; ++j) {
      if (out.is_core[j] && within(i, j)) {
        uf.Link(i, j);
      }
    }
  }

  // Memberships: core -> own component; border -> components of core points
  // within eps.
  std::vector<std::vector<size_t>> roots(n);
  for (size_t i = 0; i < n; ++i) {
    if (out.is_core[i]) {
      roots[i].push_back(uf.Find(i));
      continue;
    }
    for (size_t j = 0; j < n; ++j) {
      if (out.is_core[j] && within(i, j)) {
        roots[i].push_back(uf.Find(j));
      }
    }
    std::sort(roots[i].begin(), roots[i].end());
    roots[i].erase(std::unique(roots[i].begin(), roots[i].end()),
                   roots[i].end());
  }

  std::vector<int64_t> root_to_id(n, -1);
  int64_t next_id = 0;
  out.cluster.assign(n, Clustering::kNoise);
  out.membership_offsets.assign(n + 1, 0);
  for (size_t i = 0; i < n; ++i) {
    for (const size_t r : roots[i]) {
      if (root_to_id[r] < 0) root_to_id[r] = next_id++;
    }
    out.membership_offsets[i + 1] = out.membership_offsets[i] + roots[i].size();
  }
  out.num_clusters = static_cast<size_t>(next_id);
  out.membership_ids.reserve(out.membership_offsets[n]);
  for (size_t i = 0; i < n; ++i) {
    std::vector<int64_t> ids;
    ids.reserve(roots[i].size());
    for (const size_t r : roots[i]) ids.push_back(root_to_id[r]);
    std::sort(ids.begin(), ids.end());
    out.membership_ids.insert(out.membership_ids.end(), ids.begin(), ids.end());
    if (!ids.empty()) out.cluster[i] = ids.front();
  }
  return out;
}

// True iff the two clusterings are identical up to cluster renaming:
// same core flags, and a label bijection under which every point's
// membership set matches.
inline bool SameClustering(const Clustering& a, const Clustering& b) {
  const size_t n = a.size();
  if (b.size() != n) return false;
  if (a.num_clusters != b.num_clusters) return false;
  if (a.is_core != b.is_core) return false;
  // Every cluster contains at least one core point and core points carry
  // exactly one label in each clustering, so core points fully determine the
  // label bijection.
  std::vector<int64_t> a_to_b(a.num_clusters, -1);
  std::vector<int64_t> b_to_a(b.num_clusters, -1);
  for (size_t i = 0; i < n; ++i) {
    if (!a.is_core[i]) continue;
    const int64_t la = a.cluster[i];
    const int64_t lb = b.cluster[i];
    if (la < 0 || lb < 0) return false;
    if (a_to_b[static_cast<size_t>(la)] < 0 &&
        b_to_a[static_cast<size_t>(lb)] < 0) {
      a_to_b[static_cast<size_t>(la)] = lb;
      b_to_a[static_cast<size_t>(lb)] = la;
    } else if (a_to_b[static_cast<size_t>(la)] != lb ||
               b_to_a[static_cast<size_t>(lb)] != la) {
      return false;
    }
  }
  // All memberships (including multi-membership border points) must match
  // under the bijection.
  for (size_t i = 0; i < n; ++i) {
    const auto ma = a.memberships(i);
    const auto mb = b.memberships(i);
    if (ma.size() != mb.size()) return false;
    std::vector<int64_t> mapped;
    mapped.reserve(ma.size());
    for (const int64_t la : ma) {
      const int64_t lb = a_to_b[static_cast<size_t>(la)];
      if (lb < 0) return false;
      mapped.push_back(lb);
    }
    std::sort(mapped.begin(), mapped.end());
    if (!std::equal(mapped.begin(), mapped.end(), mb.begin())) return false;
  }
  return true;
}

// Validates `c` against Gan & Tao's approximate DBSCAN definition for
// (pts, epsilon, min_pts, rho). O(n^2); intended for tests.
template <int D>
bool IsValidApproxClustering(std::span<const geometry::Point<D>> pts,
                             double epsilon, size_t min_pts, double rho,
                             const Clustering& c) {
  const size_t n = pts.size();
  if (c.size() != n) return false;
  const double eps2 = epsilon * epsilon;
  const double outer = epsilon * (1 + rho);
  const double outer2 = outer * outer;

  // 1. Core flags follow the exact definition (unchanged by approximation).
  for (size_t i = 0; i < n; ++i) {
    size_t count = 0;
    for (size_t j = 0; j < n; ++j) {
      if (pts[i].SquaredDistance(pts[j]) <= eps2) ++count;
    }
    if ((count >= min_pts) != (c.is_core[i] != 0)) return false;
  }

  // 2. Core points form exactly one cluster each.
  for (size_t i = 0; i < n; ++i) {
    if (c.is_core[i] && c.memberships(i).size() != 1) return false;
    if (c.is_core[i] && c.cluster[i] < 0) return false;
  }

  // 3. Any two core points within eps are in the same cluster; any two core
  //    points in the same cluster are in the same eps(1+rho)-component.
  containers::UnionFind outer_cc(n);
  for (size_t i = 0; i < n; ++i) {
    if (!c.is_core[i]) continue;
    for (size_t j = i + 1; j < n; ++j) {
      if (!c.is_core[j]) continue;
      const double d2 = pts[i].SquaredDistance(pts[j]);
      if (d2 <= eps2 && c.cluster[i] != c.cluster[j]) return false;
      if (d2 <= outer2) outer_cc.Link(i, j);
    }
  }
  // Same cluster => same eps(1+rho)-component.
  std::vector<int64_t> cluster_component(c.num_clusters, -1);
  for (size_t i = 0; i < n; ++i) {
    if (!c.is_core[i]) continue;
    const auto id = static_cast<size_t>(c.cluster[i]);
    const auto comp = static_cast<int64_t>(outer_cc.Find(i));
    if (cluster_component[id] < 0) {
      cluster_component[id] = comp;
    } else if (cluster_component[id] != comp) {
      return false;
    }
  }

  // 4. Border membership follows the exact rule, given the core partition.
  for (size_t i = 0; i < n; ++i) {
    if (c.is_core[i]) continue;
    std::vector<int64_t> expected;
    for (size_t j = 0; j < n; ++j) {
      if (c.is_core[j] && pts[i].SquaredDistance(pts[j]) <= eps2) {
        expected.push_back(c.cluster[j]);
      }
    }
    std::sort(expected.begin(), expected.end());
    expected.erase(std::unique(expected.begin(), expected.end()),
                   expected.end());
    const auto got = c.memberships(i);
    if (got.size() != expected.size() ||
        !std::equal(got.begin(), got.end(), expected.begin())) {
      return false;
    }
  }
  return true;
}

}  // namespace pdbscan::dbscan

#endif  // PDBSCAN_DBSCAN_VERIFY_H_
