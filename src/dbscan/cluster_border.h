// ClusterBorder — Algorithm 4 of the paper (Section 4.5).
//
// Non-core points join the cluster of every core point within epsilon, so a
// border point can belong to several clusters. Border points only exist in
// cells with fewer than minPts points (denser cells are all-core). For each
// such point we check its own cell and every neighboring cell; since all
// core points of one cell share a cluster, a cell's cluster is recorded on
// the first hit and the rest of the cell is skipped.
#ifndef PDBSCAN_DBSCAN_CLUSTER_BORDER_H_
#define PDBSCAN_DBSCAN_CLUSTER_BORDER_H_

#include <algorithm>
#include <vector>

#include "containers/union_find.h"
#include "dbscan/cell_structure.h"
#include "dbscan/cluster_core.h"
#include "dbscan/metric.h"
#include "parallel/scheduler.h"

namespace pdbscan::dbscan {

// In-place variant of ClusterBorder: fills `memberships` (resized to the
// point count; existing inner vectors are cleared but keep their capacity,
// which is what makes the DbscanEngine's workspace reuse pay off).
template <int D>
void ClusterBorderInto(const CellStructure<D>& cells,
                       const std::vector<uint8_t>& core_flags,
                       const CoreIndex& core, size_t min_pts,
                       containers::UnionFind& uf,
                       std::vector<std::vector<uint32_t>>& memberships) {
  const Metric metric = cells.metric;
  const double threshold = MetricThreshold(cells.epsilon, metric);
  memberships.resize(cells.num_points());
  parallel::parallel_for(0, memberships.size(),
                         [&](size_t i) { memberships[i].clear(); });

  // Does `cell` contain a core point within eps of p?
  auto cell_reaches = [&](size_t cell, const geometry::Point<D>& p) {
    if (!core.cell_is_core[cell]) return false;
    if (BoxMinMeasure<D>(cells.cell_boxes[cell], p, metric) > threshold) {
      return false;
    }
    for (const uint32_t pos : core.core_of(cell)) {
      if (PointMeasure<D>(cells.points[pos], p, metric) <= threshold) {
        return true;
      }
    }
    return false;
  };

  parallel::parallel_for(
      0, cells.num_cells(),
      [&](size_t g) {
        if (cells.cell_size(g) >= min_pts) return;  // All-core cell.
        const auto neighbors = cells.neighbors(g);
        for (size_t i = cells.offsets[g]; i < cells.offsets[g + 1]; ++i) {
          if (core_flags[i]) continue;
          const geometry::Point<D>& p = cells.points[i];
          std::vector<uint32_t>& roots = memberships[i];
          if (cell_reaches(g, p)) {
            roots.push_back(static_cast<uint32_t>(uf.Find(g)));
          }
          for (const uint32_t h : neighbors) {
            if (cell_reaches(h, p)) {
              roots.push_back(static_cast<uint32_t>(uf.Find(h)));
            }
          }
          std::sort(roots.begin(), roots.end());
          roots.erase(std::unique(roots.begin(), roots.end()), roots.end());
        }
      },
      1);
}

// For each non-core point (by reordered position), the sorted list of root
// cells (union-find roots) of the clusters it belongs to. Core and noise
// points get empty lists.
template <int D>
std::vector<std::vector<uint32_t>> ClusterBorder(
    const CellStructure<D>& cells, const std::vector<uint8_t>& core_flags,
    const CoreIndex& core, size_t min_pts, containers::UnionFind& uf) {
  std::vector<std::vector<uint32_t>> memberships;
  ClusterBorderInto(cells, core_flags, core, min_pts, uf, memberships);
  return memberships;
}

}  // namespace pdbscan::dbscan

#endif  // PDBSCAN_DBSCAN_CLUSTER_BORDER_H_
