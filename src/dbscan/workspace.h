// Scratch buffers for one query stream, reused across runs.
//
// Every vector here is sized with assign/resize instead of being
// reconstructed, so its allocation (and, for the nested membership lists,
// every inner allocation) survives from one Run to the next. A parameter
// sweep through a warm owner therefore touches the allocator only when a
// buffer genuinely needs to grow.
//
// Ownership model: a Workspace is private, mutable, per-thread state. A
// DbscanEngine owns one for its whole lifetime; under concurrent serving
// each QueryContext (cell_index.h) owns one, which is exactly what makes N
// contexts safe against a single frozen CellIndex — all shared state is
// const, all mutation lands here. Never share a Workspace between threads.
#ifndef PDBSCAN_DBSCAN_WORKSPACE_H_
#define PDBSCAN_DBSCAN_WORKSPACE_H_

#include <cstdint>
#include <vector>

#include "containers/union_find.h"
#include "geometry/point.h"

namespace pdbscan::dbscan {

template <int D>
struct Workspace {
  // Owned copy of the input when the engine owns its points (SetPoints /
  // SetPointsStrided); unused in view mode.
  std::vector<geometry::Point<D>> points;

  // Saturated epsilon-neighbor counts per reordered point — the cached
  // MarkCore artifact that answers every min_pts <= the cap it was built
  // with (see MarkCoreCounts).
  std::vector<uint32_t> neighbor_counts;

  // Core flags derived from neighbor_counts for the current min_pts.
  std::vector<uint8_t> core_flags;

  // Per reordered point, the union-find roots of the clusters it belongs to
  // (inner vectors keep their capacity across runs).
  std::vector<std::vector<uint32_t>> point_roots;

  // Union-find over cells, Reset() once per run.
  containers::UnionFind uf;

  // Finalize scratch: per-original-index membership pointers and the
  // root-cell -> consecutive-cluster-id map.
  std::vector<const std::vector<uint32_t>*> by_orig;
  std::vector<int64_t> root_to_id;
};

}  // namespace pdbscan::dbscan

#endif  // PDBSCAN_DBSCAN_WORKSPACE_H_
