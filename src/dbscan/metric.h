// Metric-switch helpers: the one place the pipeline translates a Metric
// enum into concrete arithmetic. Every call site (MarkCore counting, BCP
// connectivity, border assignment, brute-force verification) funnels its
// point-vs-point and point-vs-box comparisons through these so the three
// metrics share a single comparison convention:
//
//   PointMeasure(a, b, m)   <=  MetricThreshold(eps, m)
//
// For L2 the measure is the SQUARED distance and the threshold eps^2 —
// exactly the arithmetic the pipeline used before the metric axis existed,
// so L2 behavior (and its bit-identity goldens) is byte-for-byte unchanged.
// For L1/Linf the measure is the distance itself and the threshold eps
// (both are exact comparisons; no squaring is needed or wanted).
//
// Grid geometry per metric (cells of side s, D dimensions):
//   diameter(m) <= eps  requires  s = eps/sqrt(D) (L2), eps/D (L1), eps (Linf)
// and the largest per-axis cell-coordinate delta two eps-close points can
// have (the halo / neighbor-offset radius) is
//   1 + floor(sqrt(D)) (L2),  D + 1 (L1),  2 (Linf).
// See dbscan/grid.h for the offset criterion per metric.
#ifndef PDBSCAN_DBSCAN_METRIC_H_
#define PDBSCAN_DBSCAN_METRIC_H_

#include <cmath>
#include <cstddef>

#include "dbscan/types.h"
#include "geometry/point.h"
#include "kernels/kernel_api.h"

namespace pdbscan::dbscan {

// The threshold the measure is compared against: eps^2 for L2 (computed as
// eps * eps, matching the pre-metric pipeline exactly), eps otherwise.
inline double MetricThreshold(double epsilon, Metric m) {
  return m == Metric::kL2 ? epsilon * epsilon : epsilon;
}

// Point-vs-point measure under the comparison convention above.
template <int D>
double PointMeasure(const geometry::Point<D>& a, const geometry::Point<D>& b,
                    Metric m) {
  switch (m) {
    case Metric::kL2: return a.SquaredDistance(b);
    case Metric::kL1: return a.L1Distance(b);
    case Metric::kLinf: return a.LinfDistance(b);
  }
  return a.SquaredDistance(b);
}

// Smallest point-vs-box measure (0 if inside) — the box-prune counterpart
// of PointMeasure: BoxMinMeasure(box, p, m) > MetricThreshold(eps, m)
// proves no point of the box is eps-close to p.
template <int D>
double BoxMinMeasure(const geometry::BBox<D>& box, const geometry::Point<D>& p,
                     Metric m) {
  switch (m) {
    case Metric::kL2: return box.MinSquaredDistance(p);
    case Metric::kL1: return box.MinL1Distance(p);
    case Metric::kLinf: return box.MinLinfDistance(p);
  }
  return box.MinSquaredDistance(p);
}

// Largest per-axis cell-coordinate delta between two cells that can hold
// eps-close points (the seam-halo width and the neighbor-offset radius).
template <int D>
size_t MetricHalo(Metric m) {
  switch (m) {
    case Metric::kL2:
      return 1 + static_cast<size_t>(std::floor(std::sqrt(
                     static_cast<double>(D))));
    case Metric::kL1: return static_cast<size_t>(D) + 1;
    case Metric::kLinf: return 2;
  }
  return 1 + static_cast<size_t>(std::floor(std::sqrt(static_cast<double>(D))));
}

// The count-within kernel for a metric (threshold parameter semantics match
// MetricThreshold).
inline kernels::CountWithinFn CountWithinForMetric(
    const kernels::DistanceKernelOps& ops, Metric m) {
  switch (m) {
    case Metric::kL2: return ops.count_within;
    case Metric::kL1: return ops.count_within_l1;
    case Metric::kLinf: return ops.count_within_linf;
  }
  return ops.count_within;
}

}  // namespace pdbscan::dbscan

#endif  // PDBSCAN_DBSCAN_METRIC_H_
