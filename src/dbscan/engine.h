// DbscanEngine — the stateful, reusable DBSCAN pipeline.
//
// The one-shot RunDbscan/pdbscan::Dbscan path rebuilds everything per call;
// the engine separates one-time preprocessing from per-query work so that
// parameter sweeps (the paper's Figures 6-10 evaluation pattern) pay the
// build cost once:
//
//   * the cell structure (and the kQuadtree range-count trees) depends only
//     on epsilon, so Run calls and Sweep lists at a fixed epsilon reuse it
//     outright (CellSource cache);
//   * the saturated MarkCore neighbor counts answer every min_pts up to the
//     cap they were computed with, so a min_pts sweep runs MarkCore once;
//   * epsilon changes reuse the epsilon-independent layout (dataset bounds
//     for the grid, the x-sorted order for 2D boxes) plus every workspace
//     allocation (Workspace buffers are assigned, never reconstructed).
//
// Results are bit-identical to one-shot pdbscan::Dbscan calls with the same
// parameters: both paths run exactly this code, every stage of which is a
// deterministic function of (points, epsilon, min_pts, options).
//
// Typical use:
//
//   pdbscan::dbscan::DbscanEngine<2> engine(options);
//   engine.SetPoints(pts);
//   auto sweep = engine.Sweep(/*epsilon=*/1.0, {5, 10, 50, 100});
//   auto one = engine.Run(/*epsilon=*/2.0, /*min_pts=*/10);  // Rebuilds cells.
//
// Per-stage timings and build/reuse counters accumulate in GlobalStats()
// (see stats.h). Engines are not thread-safe; use one per thread.
#ifndef PDBSCAN_DBSCAN_ENGINE_H_
#define PDBSCAN_DBSCAN_ENGINE_H_

#include <algorithm>
#include <initializer_list>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "dbscan/cell_source.h"
#include "dbscan/cell_structure.h"
#include "dbscan/cluster_border.h"
#include "dbscan/cluster_core.h"
#include "dbscan/mark_core.h"
#include "dbscan/stats.h"
#include "dbscan/types.h"
#include "dbscan/workspace.h"
#include "geometry/point.h"
#include "parallel/scheduler.h"
#include "util/timer.h"

namespace pdbscan::dbscan {

namespace internal {

// Relabels union-find roots to consecutive cluster ids, assigned by the
// first appearance in the caller's point order, and assembles the public
// Clustering. `point_roots` holds, for each reordered position, the sorted
// list of root cells the point belongs to (one entry for core points,
// possibly several for border points, none for noise). Scratch lives in
// `ws`; the returned Clustering owns fresh storage.
template <int D>
Clustering Finalize(const CellStructure<D>& cells,
                    const std::vector<uint8_t>& core_flags,
                    const std::vector<std::vector<uint32_t>>& point_roots,
                    Workspace<D>& ws) {
  const size_t n = cells.num_points();
  Clustering out;
  out.cluster.assign(n, Clustering::kNoise);
  out.is_core.assign(n, 0);
  out.membership_offsets.assign(n + 1, 0);

  // Gather per-original-index membership lists.
  ws.by_orig.assign(n, nullptr);
  parallel::parallel_for(0, n, [&](size_t i) {
    const uint32_t orig = cells.orig_index[i];
    ws.by_orig[orig] = &point_roots[i];
    out.is_core[orig] = core_flags[i];
  });

  // First-appearance relabeling (serial, O(n + memberships)).
  ws.root_to_id.assign(cells.num_cells(), -1);
  int64_t next_id = 0;
  size_t total_memberships = 0;
  for (size_t i = 0; i < n; ++i) {
    for (const uint32_t root : *ws.by_orig[i]) {
      if (ws.root_to_id[root] < 0) ws.root_to_id[root] = next_id++;
      ++total_memberships;
    }
  }
  out.num_clusters = static_cast<size_t>(next_id);

  for (size_t i = 0; i < n; ++i) {
    out.membership_offsets[i + 1] =
        out.membership_offsets[i] + ws.by_orig[i]->size();
  }
  out.membership_ids.resize(total_memberships);
  parallel::parallel_for(0, n, [&](size_t i) {
    size_t w = out.membership_offsets[i];
    for (const uint32_t root : *ws.by_orig[i]) {
      out.membership_ids[w++] = ws.root_to_id[root];
    }
    auto begin = out.membership_ids.begin() + out.membership_offsets[i];
    auto end = out.membership_ids.begin() + out.membership_offsets[i + 1];
    std::sort(begin, end);
    if (begin != end) out.cluster[i] = *begin;
  });
  return out;
}

}  // namespace internal

template <int D>
class DbscanEngine {
 public:
  explicit DbscanEngine(Options options = Options())
      : options_(std::move(options)) {}

  DbscanEngine(const DbscanEngine&) = delete;
  DbscanEngine& operator=(const DbscanEngine&) = delete;

  // Copies `points` into the engine's workspace and drops every cache.
  void SetPoints(std::span<const geometry::Point<D>> points) {
    ws_.points.resize(points.size());
    parallel::parallel_for(0, points.size(),
                           [&](size_t i) { ws_.points[i] = points[i]; });
    AdoptPoints(
        std::span<const geometry::Point<D>>(ws_.points.data(), ws_.points.size()));
  }

  void SetPoints(const std::vector<geometry::Point<D>>& points) {
    SetPoints(std::span<const geometry::Point<D>>(points));
  }

  // Fills the workspace from row-major runtime-dimension data (`stride`
  // doubles per point, the first D used) without an intermediate vector.
  void SetPointsStrided(const double* data, size_t n, size_t stride) {
    ws_.points.resize(n);
    parallel::parallel_for(0, n, [&](size_t i) {
      for (int k = 0; k < D; ++k) {
        ws_.points[i][k] = data[i * stride + static_cast<size_t>(k)];
      }
    });
    AdoptPoints(
        std::span<const geometry::Point<D>>(ws_.points.data(), ws_.points.size()));
  }

  // References caller-owned points without copying; they must stay alive
  // and unchanged until the next SetPoints*/destruction. This is what the
  // one-shot pdbscan::Dbscan wrapper uses on its transient engine.
  void SetPointsView(std::span<const geometry::Point<D>> points) {
    ws_.points.clear();
    AdoptPoints(points);
  }

  // Clusters the current point set. Reuses the cached cell structure when
  // epsilon is unchanged and the cached neighbor counts when min_pts is at
  // most the cap they were computed with.
  Clustering Run(double epsilon, size_t min_pts) {
    Validate(epsilon, min_pts);
    EnsureCounts(epsilon, min_pts);
    return RunFromCounts(min_pts);
  }

  // Batched min_pts sweep at a fixed epsilon: builds the cell structure at
  // most once and the neighbor counts exactly once (at cap = max of the
  // list), then answers every setting from them. Results match independent
  // one-shot runs bit for bit.
  std::vector<Clustering> Sweep(double epsilon,
                                std::span<const size_t> minpts_list) {
    Validate(epsilon, 1);
    std::vector<Clustering> out;
    out.reserve(minpts_list.size());
    if (minpts_list.empty()) return out;
    size_t cap = 0;
    for (const size_t m : minpts_list) {
      if (m == 0) throw std::invalid_argument("min_pts must be positive");
      cap = std::max(cap, m);
    }
    EnsureCounts(epsilon, cap);
    for (const size_t m : minpts_list) out.push_back(RunFromCounts(m));
    return out;
  }

  std::vector<Clustering> Sweep(double epsilon,
                                std::initializer_list<size_t> minpts_list) {
    return Sweep(epsilon,
                 std::span<const size_t>(minpts_list.begin(), minpts_list.size()));
  }

  std::vector<Clustering> Sweep(double epsilon,
                                const std::vector<size_t>& minpts_list) {
    return Sweep(epsilon, std::span<const size_t>(minpts_list));
  }

  const Options& options() const { return options_; }
  size_t num_points() const { return points_.size(); }

  // True iff the next Run(epsilon, *) would reuse the cached cell structure.
  bool has_cells_for(double epsilon) const {
    return source_.has_cells() && source_.built_epsilon() == epsilon;
  }

 private:
  void AdoptPoints(std::span<const geometry::Point<D>> points) {
    points_ = points;
    source_.Reset(points, options_.cell_method);
    counts_valid_ = false;
  }

  void Validate(double epsilon, size_t min_pts) const {
    if (epsilon <= 0) throw std::invalid_argument("epsilon must be positive");
    if (min_pts == 0) throw std::invalid_argument("min_pts must be positive");
    if (options_.cell_method == CellMethod::kBox && D != 2) {
      throw std::invalid_argument("the box cell method is 2D only");
    }
  }

  // Makes ws_.neighbor_counts valid for the given epsilon with a cap of at
  // least `cap` (Line 2 + Line 3 of Algorithm 1, both cached).
  void EnsureCounts(double epsilon, size_t cap) {
    auto& stats = GlobalStats();
    util::Timer timer;
    const CellStructure<D>& cells = source_.Acquire(epsilon);
    AddSeconds(stats.build_cells_seconds, timer.Seconds());

    if (counts_valid_ && counts_generation_ == source_.generation() &&
        counts_cap_ >= cap) {
      stats.counts_reused.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    timer.Reset();
    const std::vector<std::unique_ptr<geometry::CellQuadtree<D>>>* trees =
        nullptr;
    if (options_.range_count == RangeCountMethod::kQuadtree) {
      trees = &source_.AcquireQuadtrees();
    }
    MarkCoreCounts(cells, cap, options_.range_count, trees,
                   ws_.neighbor_counts);
    counts_cap_ = cap;
    counts_generation_ = source_.generation();
    counts_valid_ = true;
    stats.counts_built.fetch_add(1, std::memory_order_relaxed);
    AddSeconds(stats.mark_core_seconds, timer.Seconds());
  }

  // Lines 3-5 of Algorithm 1 from the cached counts, plus finalization.
  Clustering RunFromCounts(size_t min_pts) {
    auto& stats = GlobalStats();
    const CellStructure<D>& cells = source_.cells();

    util::Timer timer;
    CoreFlagsFromCounts(ws_.neighbor_counts, min_pts, ws_.core_flags);
    const CoreIndex core = BuildCoreIndex(cells, ws_.core_flags);
    AddSeconds(stats.mark_core_seconds, timer.Seconds());

    timer.Reset();
    ws_.uf.Reset(cells.num_cells());
    ClusterCore(cells, core, options_, ws_.uf);
    AddSeconds(stats.cluster_core_seconds, timer.Seconds());

    timer.Reset();
    if (options_.core_only) {
      // DBSCAN*: clusters consist of core points only.
      ws_.point_roots.resize(cells.num_points());
      parallel::parallel_for(0, ws_.point_roots.size(),
                             [&](size_t i) { ws_.point_roots[i].clear(); });
    } else {
      ClusterBorderInto(cells, ws_.core_flags, core, min_pts, ws_.uf,
                        ws_.point_roots);
    }
    // Core points belong to exactly their cell's component.
    parallel::parallel_for(
        0, cells.num_cells(),
        [&](size_t c) {
          if (!core.cell_is_core[c]) return;
          const uint32_t root = static_cast<uint32_t>(ws_.uf.Find(c));
          for (const uint32_t pos : core.core_of(c)) {
            ws_.point_roots[pos].assign(1, root);
          }
        },
        1);
    AddSeconds(stats.cluster_border_seconds, timer.Seconds());

    timer.Reset();
    Clustering out =
        internal::Finalize(cells, ws_.core_flags, ws_.point_roots, ws_);
    AddSeconds(stats.finalize_seconds, timer.Seconds());
    return out;
  }

  Options options_;
  std::span<const geometry::Point<D>> points_;
  CellSource<D> source_;
  Workspace<D> ws_;

  // Validity of ws_.neighbor_counts: the cell generation they were computed
  // against and the min_pts cap they saturate at.
  bool counts_valid_ = false;
  size_t counts_cap_ = 0;
  size_t counts_generation_ = 0;
};

}  // namespace pdbscan::dbscan

#endif  // PDBSCAN_DBSCAN_ENGINE_H_
