// DbscanEngine — the stateful, reusable DBSCAN pipeline.
//
// The one-shot RunDbscan/pdbscan::Dbscan path rebuilds everything per call;
// the engine separates one-time preprocessing from per-query work so that
// parameter sweeps (the paper's Figures 6-10 evaluation pattern) pay the
// build cost once:
//
//   * the cell structure (and the kQuadtree range-count trees) depends only
//     on epsilon, so Run calls and Sweep lists at a fixed epsilon reuse it
//     outright (CellSource cache);
//   * the saturated MarkCore neighbor counts answer every min_pts up to the
//     cap they were computed with, so a min_pts sweep runs MarkCore once;
//   * epsilon changes reuse the epsilon-independent layout (dataset bounds
//     for the grid, the x-sorted order for 2D boxes) plus every workspace
//     allocation (Workspace buffers are assigned, never reconstructed).
//
// Results are bit-identical to one-shot pdbscan::Dbscan calls with the same
// parameters: both paths run exactly this code, every stage of which is a
// deterministic function of (points, epsilon, min_pts, options).
//
// Typical use:
//
//   pdbscan::dbscan::DbscanEngine<2> engine(options);
//   engine.SetPoints(pts);
//   auto sweep = engine.Sweep(/*epsilon=*/1.0, {5, 10, 50, 100});
//   auto one = engine.Run(/*epsilon=*/2.0, /*min_pts=*/10);  // Rebuilds cells.
//
// Ownership and threading: one engine is one mutation site — its CellSource
// caches and Workspace are rewritten by every call, so a single engine must
// not be shared between threads without external serialization. For
// concurrent query serving, freeze the build products into a shared
// CellIndex (cell_index.h) and give each thread a QueryContext, or use
// parallel::EnginePool which manages both; results stay bit-identical
// because all three surfaces execute the same RunQueryFromCounts pipeline
// (query.h).
//
// Per-stage timings and build/reuse counters accumulate in the engine's
// stats sink — the process-wide GlobalStats() unless a per-engine
// PipelineStats was passed to the constructor (see stats.h).
#ifndef PDBSCAN_DBSCAN_ENGINE_H_
#define PDBSCAN_DBSCAN_ENGINE_H_

#include <algorithm>
#include <initializer_list>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "dbscan/cell_source.h"
#include "dbscan/cell_structure.h"
#include "dbscan/mark_core.h"
#include "dbscan/query.h"
#include "dbscan/stats.h"
#include "dbscan/types.h"
#include "dbscan/workspace.h"
#include "geometry/point.h"
#include "parallel/scheduler.h"
#include "telemetry/trace.h"
#include "util/timer.h"

namespace pdbscan::dbscan {

template <int D>
class DbscanEngine {
 public:
  // `stats` selects the sink for counters and timings; nullptr means the
  // process-wide GlobalStats().
  explicit DbscanEngine(Options options = Options(),
                        PipelineStats* stats = nullptr)
      : options_(std::move(options)),
        stats_(stats != nullptr ? stats : &GlobalStats()) {
    source_.set_stats(stats_);
  }

  DbscanEngine(const DbscanEngine&) = delete;
  DbscanEngine& operator=(const DbscanEngine&) = delete;

  // Copies `points` into the engine's workspace and drops every cache.
  void SetPoints(std::span<const geometry::Point<D>> points) {
    ws_.points.resize(points.size());
    parallel::parallel_for(0, points.size(),
                           [&](size_t i) { ws_.points[i] = points[i]; });
    AdoptPoints(
        std::span<const geometry::Point<D>>(ws_.points.data(), ws_.points.size()));
  }

  void SetPoints(const std::vector<geometry::Point<D>>& points) {
    SetPoints(std::span<const geometry::Point<D>>(points));
  }

  // Fills the workspace from row-major runtime-dimension data (`stride`
  // doubles per point, the first D used) without an intermediate vector.
  void SetPointsStrided(const double* data, size_t n, size_t stride) {
    ws_.points.resize(n);
    parallel::parallel_for(0, n, [&](size_t i) {
      for (int k = 0; k < D; ++k) {
        ws_.points[i][k] = data[i * stride + static_cast<size_t>(k)];
      }
    });
    AdoptPoints(
        std::span<const geometry::Point<D>>(ws_.points.data(), ws_.points.size()));
  }

  // References caller-owned points without copying; they must stay alive
  // and unchanged until the next SetPoints*/destruction. This is what the
  // one-shot pdbscan::Dbscan wrapper uses on its transient engine.
  void SetPointsView(std::span<const geometry::Point<D>> points) {
    ws_.points.clear();
    AdoptPoints(points);
  }

  // Clusters the current point set. Reuses the cached cell structure when
  // epsilon is unchanged and the cached neighbor counts when min_pts is at
  // most the cap they were computed with.
  Clustering Run(double epsilon, size_t min_pts) {
    Validate(epsilon, min_pts);
    EnsureCounts(epsilon, min_pts);
    return RunQueryFromCounts(source_.cells(), ws_.neighbor_counts, min_pts,
                              options_, ws_, *stats_);
  }

  // Batched min_pts sweep at a fixed epsilon: builds the cell structure at
  // most once and the neighbor counts exactly once (at cap = max of the
  // list), then answers every setting from them. Results match independent
  // one-shot runs bit for bit.
  std::vector<Clustering> Sweep(double epsilon,
                                std::span<const size_t> minpts_list) {
    Validate(epsilon, 1);
    return SweepFromCounts<D>(
        minpts_list, options_, ws_, *stats_,
        [&](size_t cap)
            -> std::pair<const CellStructure<D>&, std::span<const uint32_t>> {
          EnsureCounts(epsilon, cap);
          return {source_.cells(), ws_.neighbor_counts};
        });
  }

  std::vector<Clustering> Sweep(double epsilon,
                                std::initializer_list<size_t> minpts_list) {
    return Sweep(epsilon,
                 std::span<const size_t>(minpts_list.begin(), minpts_list.size()));
  }

  std::vector<Clustering> Sweep(double epsilon,
                                const std::vector<size_t>& minpts_list) {
    return Sweep(epsilon, std::span<const size_t>(minpts_list));
  }

  const Options& options() const { return options_; }
  size_t num_points() const { return points_.size(); }

  // True iff the next Run(epsilon, *) would reuse the cached cell structure.
  bool has_cells_for(double epsilon) const {
    return source_.has_cells() && source_.built_epsilon() == epsilon;
  }

 private:
  void AdoptPoints(std::span<const geometry::Point<D>> points) {
    points_ = points;
    source_.Reset(points, options_.cell_method, options_.metric);
    counts_valid_ = false;
  }

  void Validate(double epsilon, size_t min_pts) const {
    if (epsilon <= 0) throw std::invalid_argument("epsilon must be positive");
    if (min_pts == 0) throw std::invalid_argument("min_pts must be positive");
    if (options_.cell_method == CellMethod::kBox && D != 2) {
      throw std::invalid_argument("the box cell method is 2D only");
    }
    ValidateMetricOptions(options_);
  }

  // Makes ws_.neighbor_counts valid for the given epsilon with a cap of at
  // least `cap` (Line 2 + Line 3 of Algorithm 1, both cached).
  void EnsureCounts(double epsilon, size_t cap) {
    util::Timer timer;
    const CellStructure<D>& cells = [&]() -> const CellStructure<D>& {
      telemetry::TraceSpan span("acquire_cells");
      return source_.Acquire(epsilon);
    }();
    AddSeconds(stats_->build_cells_seconds, timer.Seconds());

    if (counts_valid_ && counts_generation_ == source_.generation() &&
        counts_cap_ >= cap) {
      stats_->counts_reused.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    timer.Reset();
    telemetry::TraceSpan count_span("mark_core_counts");
    const std::vector<std::unique_ptr<geometry::CellQuadtree<D>>>* trees =
        nullptr;
    if (options_.range_count == RangeCountMethod::kQuadtree) {
      trees = &source_.AcquireQuadtrees();
    }
    MarkCoreCounts(cells, cap, options_.range_count, trees,
                   ws_.neighbor_counts, stats_);
    counts_cap_ = cap;
    counts_generation_ = source_.generation();
    counts_valid_ = true;
    stats_->counts_built.fetch_add(1, std::memory_order_relaxed);
    AddSeconds(stats_->mark_core_seconds, timer.Seconds());
  }

  Options options_;
  PipelineStats* stats_;
  std::span<const geometry::Point<D>> points_;
  CellSource<D> source_;
  Workspace<D> ws_;

  // Validity of ws_.neighbor_counts: the cell generation they were computed
  // against and the min_pts cap they saturate at.
  bool counts_valid_ = false;
  size_t counts_cap_ = 0;
  size_t counts_generation_ = 0;
};

}  // namespace pdbscan::dbscan

#endif  // PDBSCAN_DBSCAN_ENGINE_H_
