// CellIndex — the frozen, shareable half of the DBSCAN pipeline, plus the
// per-thread QueryContext that answers queries against it.
//
// The paper's pipeline is build-once/query-many: the cell structure, the
// kQuadtree range-count trees, and the saturated MarkCore neighbor counts
// depend only on (points, epsilon, options, counts cap), while everything
// downstream (core flags at a min_pts, cell-graph connectivity, border
// assignment, relabeling) is cheap per-query state. A DbscanEngine keeps
// both halves in one mutable object and therefore serves one thread;
// CellIndex freezes the first half so any number of threads can query it:
//
//   auto index = pdbscan::dbscan::CellIndex<2>::Build(pts, /*epsilon=*/1.0,
//                                                     /*counts_cap=*/100);
//   // ... on each serving thread:
//   pdbscan::dbscan::QueryContext<2> ctx;     // owns a private Workspace
//   pdbscan::Clustering a = ctx.Run(*index, /*min_pts=*/10);
//
// After Build returns, a CellIndex is strictly immutable — every accessor
// is const and no call mutates it — so sharing needs no synchronization.
// Queries with min_pts <= counts_cap() are answered entirely from the
// shared counts; larger min_pts values stay correct by recounting into the
// context's private workspace (counts_built ticks in the context's stats).
// Either way the clustering is bit-identical to a one-shot pdbscan::Dbscan
// call: all query surfaces execute RunQueryFromCounts (query.h), and
// saturated counts threshold identically for every min_pts <= their cap.
//
// parallel::EnginePool (parallel/engine_pool.h) packages a CellIndex with a
// reusable set of QueryContexts behind a thread-safe Run/Sweep facade.
//
// There are three ways a CellIndex comes to exist: built from scratch over
// a point span (the constructor below, one full build), adopted from the
// streaming layer (streaming/dynamic_cell_index.h), which recomposes the
// structure incrementally after insert/erase batches and publishes each
// result as a fresh immutable CellIndex snapshot, or rehydrated from a
// persisted snapshot file (persist/snapshot.h), which goes through the same
// adoption constructor — with the arrays either copied out of the file
// (owned load) or left viewing the file mapping (zero-copy mmap load; the
// `payload` parameter pins the mapping for the index's lifetime). Queries
// cannot tell the difference — all paths freeze the same artifact types.
#ifndef PDBSCAN_DBSCAN_CELL_INDEX_H_
#define PDBSCAN_DBSCAN_CELL_INDEX_H_

#include <algorithm>
#include <initializer_list>
#include <memory>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "dbscan/cell_source.h"
#include "dbscan/cell_structure.h"
#include "dbscan/mark_core.h"
#include "dbscan/query.h"
#include "dbscan/stats.h"
#include "dbscan/types.h"
#include "dbscan/workspace.h"
#include "geometry/point.h"
#include "geometry/quadtree.h"
#include "util/timer.h"

namespace pdbscan::dbscan {

template <int D>
class CellIndex {
 public:
  // Builds the frozen index: cell structure, per-cell quadtrees when
  // options use the kQuadtree range-count path, and MarkCore neighbor
  // counts saturated at `counts_cap`. The build runs through the SAME
  // CellSource the DbscanEngine uses — one builder path, so engine and
  // index layouts cannot diverge. Build counters/timings go to `stats`
  // (nullptr: the process-wide GlobalStats()). `points` is only read
  // during construction and need not outlive it — the index keeps its own
  // reordered copy inside the CellStructure.
  CellIndex(std::span<const geometry::Point<D>> points, double epsilon,
            size_t counts_cap, Options options = Options(),
            PipelineStats* stats = nullptr)
      : epsilon_(epsilon),
        counts_cap_(counts_cap),
        options_(std::move(options)) {
    if (epsilon <= 0) throw std::invalid_argument("epsilon must be positive");
    if (counts_cap == 0) {
      throw std::invalid_argument("counts_cap must be positive");
    }
    ValidateMetricOptions(options_);
    PipelineStats& sink = stats != nullptr ? *stats : GlobalStats();
    source_.set_stats(stats);
    source_.Reset(points, options_.cell_method, options_.metric);
    // From here on, the exact EnsureCounts sequence of DbscanEngine; after
    // the constructor returns, source_ is never touched again (its caches
    // become the frozen payload; the `points` span it saw is not re-read).
    util::Timer timer;
    const CellStructure<D>& cells = source_.Acquire(epsilon);
    AddSeconds(sink.build_cells_seconds, timer.Seconds());
    timer.Reset();
    const std::vector<std::unique_ptr<geometry::CellQuadtree<D>>>* trees =
        nullptr;
    if (options_.range_count == RangeCountMethod::kQuadtree) {
      trees = &source_.AcquireQuadtrees();
    }
    std::vector<uint32_t> counts;
    MarkCoreCounts(cells, counts_cap_, options_.range_count, trees, counts,
                   &sink);
    neighbor_counts_ = std::move(counts);
    sink.counts_built.fetch_add(1, std::memory_order_relaxed);
    AddSeconds(sink.mark_core_seconds, timer.Seconds());
  }

  // Freezes an externally built structure plus matching saturated MarkCore
  // counts. Two producers use this:
  //
  //   * streaming::DynamicCellIndex, which recomposes `cells` incrementally
  //     (dirty cells re-grouped, clean cells retained) and recounts only
  //     the dirty eps-neighborhood, copying every other cell's counts from
  //     the previous snapshot — and the sharded merge, which concatenates
  //     per-shard builds. Both pass owning arrays and kScan options.
  //   * persist::SnapshotReader, which rehydrates a saved index — either
  //     copying the arrays out of the file (owned load) or pointing them at
  //     the file mapping (zero-copy mmap load). `payload` then pins the
  //     mapping for the index's lifetime; every other caller leaves it
  //     null.
  //
  // `neighbor_counts` must be MarkCore counts over `cells` saturated at
  // `counts_cap`. For the kQuadtree range-count method the per-cell
  // quadtrees are rebuilt eagerly here (deterministic from the adopted
  // layout, so a rehydrated index answers over-cap queries identically to
  // the index that was saved) — an O(n) cost, which is why the incremental
  // streaming producer restricts itself to kScan in its own constructor.
  CellIndex(CellStructure<D> cells,
            containers::FlatArray<uint32_t> neighbor_counts, size_t counts_cap,
            Options options = Options(), PipelineStats* stats = nullptr,
            std::shared_ptr<const void> payload = nullptr)
      : epsilon_(cells.epsilon),
        counts_cap_(counts_cap),
        options_(std::move(options)),
        payload_(std::move(payload)) {
    if (epsilon_ <= 0) throw std::invalid_argument("epsilon must be positive");
    if (counts_cap == 0) {
      throw std::invalid_argument("counts_cap must be positive");
    }
    ValidateMetricOptions(options_);
    if (cells.metric != options_.metric) {
      throw std::invalid_argument(
          "adopted cells were built for a different metric than options");
    }
    if (neighbor_counts.size() != cells.num_points()) {
      throw std::invalid_argument(
          "neighbor_counts must cover every reordered point");
    }
    // No build counters tick here: the producer (DynamicCellIndex) accounts
    // for what it rebuilt vs. retained in its own sink.
    source_.set_stats(stats);
    // Safety net for producers predating the SoA lanes: an adopted
    // structure without lanes gets owned ones built here, so queries always
    // run vectorized. (Mapped snapshots arrive with strided lane views and
    // pass through untouched.)
    if (!cells.has_soa() && cells.num_points() > 0) cells.BuildSoALanes();
    source_.AdoptPrebuilt(std::move(cells));
    if (options_.range_count == RangeCountMethod::kQuadtree) {
      source_.AcquireQuadtrees();
    }
    neighbor_counts_ = std::move(neighbor_counts);
  }

  // Convenience factory for the common shared-ownership pattern.
  static std::shared_ptr<const CellIndex<D>> Build(
      std::span<const geometry::Point<D>> points, double epsilon,
      size_t counts_cap, Options options = Options(),
      PipelineStats* stats = nullptr) {
    return std::make_shared<const CellIndex<D>>(points, epsilon, counts_cap,
                                                std::move(options), stats);
  }

  static std::shared_ptr<const CellIndex<D>> Build(
      const std::vector<geometry::Point<D>>& points, double epsilon,
      size_t counts_cap, Options options = Options(),
      PipelineStats* stats = nullptr) {
    return Build(std::span<const geometry::Point<D>>(points), epsilon,
                 counts_cap, std::move(options), stats);
  }

  CellIndex(const CellIndex&) = delete;
  CellIndex& operator=(const CellIndex&) = delete;

  double epsilon() const { return epsilon_; }
  size_t counts_cap() const { return counts_cap_; }
  const Options& options() const { return options_; }
  size_t num_points() const { return cells().num_points(); }
  size_t num_cells() const { return cells().num_cells(); }

  const CellStructure<D>& cells() const { return source_.cells(); }

  // Saturated epsilon-neighbor counts per reordered point (cap =
  // counts_cap()); answers every min_pts <= the cap. May view mapped
  // snapshot memory — read through the reference, never assume vector
  // storage.
  const containers::FlatArray<uint32_t>& neighbor_counts() const {
    return neighbor_counts_;
  }

  // Per-cell quadtrees; non-empty only when options().range_count ==
  // kQuadtree. Tree queries (CountInBall etc.) are const and thread-safe.
  const std::vector<std::unique_ptr<geometry::CellQuadtree<D>>>& quadtrees()
      const {
    return source_.quadtrees();
  }

 private:
  double epsilon_;
  size_t counts_cap_;
  Options options_;
  // Quiescent after construction: holds the built cells + quadtrees.
  CellSource<D> source_;
  containers::FlatArray<uint32_t> neighbor_counts_;
  // Pins backing storage (the snapshot file mapping) when the structure or
  // counts are views; null for owned indexes.
  std::shared_ptr<const void> payload_;
};

// Per-thread query state against shared CellIndexes: a private Workspace
// (scratch allocations reused across queries) and a stats sink. Contexts
// are cheap — construct one per serving thread, or let parallel::EnginePool
// manage a reusable set. A context may be pointed at different indexes from
// query to query; it must simply not be used by two threads at once.
template <int D>
class QueryContext {
 public:
  // `stats` is the sink for this context's counters; nullptr means the
  // process-wide GlobalStats() (fine single-threaded, but concurrent
  // serving should give each context its own sink so Reset()/read-out on
  // one client never tears another's counters).
  explicit QueryContext(PipelineStats* stats = nullptr)
      : stats_(stats != nullptr ? stats : &GlobalStats()) {}

  QueryContext(const QueryContext&) = delete;
  QueryContext& operator=(const QueryContext&) = delete;

  // Clusters the index's point set at `min_pts`. Bit-identical to a
  // one-shot pdbscan::Dbscan call with (index points, index epsilon,
  // min_pts, index options). The shared_ptr overload additionally caches
  // an over-cap recount across calls (see EnsureCounts).
  Clustering Run(const CellIndex<D>& index, size_t min_pts) {
    return RunImpl(index, min_pts, nullptr);
  }

  Clustering Run(const std::shared_ptr<const CellIndex<D>>& index,
                 size_t min_pts) {
    if (!index) throw std::invalid_argument("QueryContext needs an index");
    return RunImpl(*index, min_pts, &index);
  }

  // Answers every setting of a min_pts sweep. Settings within the index's
  // cap share the index counts; if any setting exceeds the cap, one private
  // recount at cap = max(list) serves the whole sweep.
  std::vector<Clustering> Sweep(const CellIndex<D>& index,
                                std::span<const size_t> minpts_list) {
    return SweepImpl(index, minpts_list, nullptr);
  }

  std::vector<Clustering> Sweep(const std::shared_ptr<const CellIndex<D>>& index,
                                std::span<const size_t> minpts_list) {
    if (!index) throw std::invalid_argument("QueryContext needs an index");
    return SweepImpl(*index, minpts_list, &index);
  }

  std::vector<Clustering> Sweep(const CellIndex<D>& index,
                                std::initializer_list<size_t> minpts_list) {
    return Sweep(index, std::span<const size_t>(minpts_list.begin(),
                                                minpts_list.size()));
  }

  PipelineStats& stats() { return *stats_; }

  // Drops the over-cap recount cache unless it belongs to `index`. Owners
  // that swap indexes under contexts call this for every free context on
  // the swap itself (EnginePool::ReplaceIndex) and for the leased context
  // on each lease, so retired snapshots are pinned only by in-flight
  // queries, never indefinitely by idle caches; harmless no-op when the
  // cache is empty or current.
  void EvictStaleCountsCache(
      const std::shared_ptr<const CellIndex<D>>& index) {
    if (cached_index_ != nullptr && cached_index_ != index) {
      cached_index_.reset();
      cached_cap_ = 0;
    }
  }

 private:
  Clustering RunImpl(const CellIndex<D>& index, size_t min_pts,
                     const std::shared_ptr<const CellIndex<D>>* owner) {
    if (min_pts == 0) throw std::invalid_argument("min_pts must be positive");
    const std::span<const uint32_t> counts =
        EnsureCounts(index, min_pts, owner);
    return RunQueryFromCounts(index.cells(), counts, min_pts, index.options(),
                              ws_, *stats_);
  }

  std::vector<Clustering> SweepImpl(
      const CellIndex<D>& index, std::span<const size_t> minpts_list,
      const std::shared_ptr<const CellIndex<D>>* owner) {
    return SweepFromCounts<D>(
        minpts_list, index.options(), ws_, *stats_,
        [&](size_t cap)
            -> std::pair<const CellStructure<D>&, std::span<const uint32_t>> {
          return {index.cells(), EnsureCounts(index, cap, owner)};
        });
  }

  // Counts valid for caps up to `cap`: the index's shared counts when they
  // suffice, else the context's cached private recount, else a fresh
  // MarkCore pass (counts_built ticks; the other two tick counts_reused).
  // The private cache is keyed on index identity, which is only sound
  // because cached_index_ *pins* the cached index alive — its address can
  // neither dangle nor be recycled while the cache entry exists. Callers
  // going through the plain-reference overloads can therefore still *hit*
  // the cache, but only shared_ptr callers (`owner` != nullptr, e.g.
  // EnginePool) can populate it, so steady over-cap traffic through a pool
  // recounts once per context rather than once per query.
  std::span<const uint32_t> EnsureCounts(
      const CellIndex<D>& index, size_t cap,
      const std::shared_ptr<const CellIndex<D>>* owner) {
    if (cap <= index.counts_cap()) {
      stats_->counts_reused.fetch_add(1, std::memory_order_relaxed);
      return index.neighbor_counts();
    }
    if (cached_index_.get() == &index && cached_cap_ >= cap) {
      stats_->counts_reused.fetch_add(1, std::memory_order_relaxed);
      return ws_.neighbor_counts;
    }
    util::Timer timer;
    MarkCoreCounts(index.cells(), cap, index.options().range_count,
                   &index.quadtrees(), ws_.neighbor_counts, stats_);
    if (owner != nullptr) {
      cached_index_ = *owner;
      cached_cap_ = cap;
    } else {
      // The workspace counts no longer match the cached index's.
      cached_index_.reset();
      cached_cap_ = 0;
    }
    stats_->counts_built.fetch_add(1, std::memory_order_relaxed);
    AddSeconds(stats_->mark_core_seconds, timer.Seconds());
    return ws_.neighbor_counts;
  }

  Workspace<D> ws_;
  PipelineStats* stats_;

  // Over-cap recount cache: the index (kept alive) whose counts currently
  // occupy ws_.neighbor_counts, and the cap they were computed with.
  std::shared_ptr<const CellIndex<D>> cached_index_;
  size_t cached_cap_ = 0;
};

}  // namespace pdbscan::dbscan

#endif  // PDBSCAN_DBSCAN_CELL_INDEX_H_
