#include "dbscan/box_cells.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "parallel/scheduler.h"
#include "primitives/pointer_jump.h"
#include "primitives/scan.h"
#include "primitives/sort.h"

namespace pdbscan::dbscan {

namespace {

using geometry::BBox;
using geometry::Point;

// Marks group starts along `keys[lo..hi)` (sorted ascending): position i
// starts a group iff keys[i] > group_start_key + width. Implements the
// paper's strip rule with the pointer-jumping primitive: node i's parent is
// the first position whose key exceeds keys[i] + width; flags seeded at the
// first position propagate to exactly the group starts.
void MarkGroupStarts(const std::vector<double>& keys, size_t lo, size_t hi,
                     double width, std::vector<uint8_t>& flags) {
  const size_t n = hi - lo;
  if (n == 0) return;
  std::vector<size_t> next(n);
  std::vector<uint8_t> local(n, 0);
  parallel::parallel_for(0, n, [&](size_t i) {
    // First index with key > keys[lo + i] + width.
    const double bound = keys[lo + i] + width;
    const auto it = std::upper_bound(keys.begin() + static_cast<long>(lo),
                                     keys.begin() + static_cast<long>(hi),
                                     bound);
    const size_t j = static_cast<size_t>(it - (keys.begin() + static_cast<long>(lo)));
    next[i] = j < n ? j : i;  // Tail points to itself.
  });
  local[0] = 1;
  primitives::PointerJumpPropagate(next, local);
  parallel::parallel_for(0, n, [&](size_t i) { flags[lo + i] = local[i]; });
}

}  // namespace

std::vector<uint32_t> BoxSortByX(std::span<const Point<2>> input) {
  // Sort point ids by x (ties by y for determinism).
  std::vector<uint32_t> order(input.size());
  std::iota(order.begin(), order.end(), 0u);
  primitives::ParallelSort(order, [&](uint32_t a, uint32_t b) {
    if (input[a][0] != input[b][0]) return input[a][0] < input[b][0];
    if (input[a][1] != input[b][1]) return input[a][1] < input[b][1];
    return a < b;
  });
  return order;
}

CellStructure<2> BuildBoxCells(std::span<const Point<2>> input,
                               double epsilon) {
  const std::vector<uint32_t> order = BoxSortByX(input);
  return BuildBoxCells(input, epsilon,
                       std::span<const uint32_t>(order.data(), order.size()));
}

CellStructure<2> BuildBoxCells(std::span<const Point<2>> input, double epsilon,
                               std::span<const uint32_t> x_order) {
  CellStructure<2> cells;
  cells.epsilon = epsilon;
  const size_t n = input.size();
  if (n == 0) {
    cells.offsets.push_back(0);
    cells.nbr_offsets.push_back(0);
    return cells;
  }
  const double width = epsilon / std::sqrt(2.0);

  // The within-strip y-sort below mutates the order, so work on a copy of
  // the caller's (possibly cached) x-sorted order.
  std::vector<uint32_t> order(x_order.begin(), x_order.end());

  // Strip starts via pointer jumping on x.
  std::vector<double> xs(n);
  parallel::parallel_for(0, n, [&](size_t i) { xs[i] = input[order[i]][0]; });
  std::vector<uint8_t> strip_start(n, 0);
  MarkGroupStarts(xs, 0, n, width, strip_start);

  // Strip of each point = (number of starts at or before it) - 1.
  std::vector<size_t> strip_idx(n);
  parallel::parallel_for(0, n, [&](size_t i) { strip_idx[i] = strip_start[i]; });
  const size_t num_strips = primitives::ScanInclusive(strip_idx);
  std::vector<size_t> strip_offsets(num_strips + 1, 0);
  parallel::parallel_for(0, n, [&](size_t i) {
    if (strip_start[i] == 1) strip_offsets[strip_idx[i] - 1] = i;
  });
  strip_offsets[num_strips] = n;

  // Within each strip: sort by y and mark cell starts with the same
  // pointer-jumping procedure on y.
  std::vector<uint8_t> cell_start(n, 0);
  std::vector<double> ys(n);
  parallel::parallel_for(0, num_strips, [&](size_t s) {
    const size_t lo = strip_offsets[s];
    const size_t hi = strip_offsets[s + 1];
    std::sort(order.begin() + static_cast<long>(lo),
              order.begin() + static_cast<long>(hi),
              [&](uint32_t a, uint32_t b) {
                if (input[a][1] != input[b][1]) return input[a][1] < input[b][1];
                return a < b;
              });
    for (size_t i = lo; i < hi; ++i) ys[i] = input[order[i]][1];
    MarkGroupStarts(ys, lo, hi, width, cell_start);
  });

  // Cells: contiguous ranges in the (strip-major, y-sorted) order.
  std::vector<size_t> cell_idx(n);
  parallel::parallel_for(0, n, [&](size_t i) { cell_idx[i] = cell_start[i]; });
  const size_t num_cells = primitives::ScanInclusive(cell_idx);
  cells.offsets.assign(num_cells + 1, 0);
  parallel::parallel_for(0, n, [&](size_t i) {
    if (cell_start[i] == 1) cells.offsets[cell_idx[i] - 1] = i;
  });
  cells.offsets[num_cells] = n;

  cells.points.resize(n);
  cells.orig_index.resize(n);
  parallel::parallel_for(0, n, [&](size_t i) {
    cells.orig_index[i] = order[i];
    cells.points[i] = input[order[i]];
  });

  // Tight content boxes per cell.
  cells.cell_boxes.resize(num_cells);
  parallel::parallel_for(0, num_cells, [&](size_t c) {
    BBox<2> box = BBox<2>::Empty();
    for (size_t i = cells.offsets[c]; i < cells.offsets[c + 1]; ++i) {
      box.Extend(cells.points[i]);
    }
    cells.cell_boxes[c] = box;
  });

  // Strip of each cell, and per-strip cell ranges (cells are strip-major).
  std::vector<size_t> cell_strip(num_cells);
  parallel::parallel_for(0, num_cells, [&](size_t c) {
    cell_strip[c] = strip_idx[cells.offsets[c]] - 1;
  });
  std::vector<size_t> strip_cell_begin(num_strips + 1, 0);
  for (size_t c = 0; c < num_cells; ++c) {
    // First cell of each strip (serial; num_cells is modest).
    if (c == 0 || cell_strip[c] != cell_strip[c - 1]) {
      strip_cell_begin[cell_strip[c]] = c;
    }
  }
  strip_cell_begin[num_strips] = num_cells;

  // Neighbors: cells from strips s-2..s+2 whose boxes are within epsilon.
  // Cells within a strip are sorted by y, so a binary search bounds the
  // candidate range.
  const double eps2 = epsilon * epsilon;
  std::vector<std::vector<uint32_t>> neighbor_lists(num_cells);
  parallel::parallel_for(0, num_cells, [&](size_t c) {
    const size_t s = cell_strip[c];
    const BBox<2>& box = cells.cell_boxes[c];
    auto& list = neighbor_lists[c];
    const size_t s_lo = s >= 2 ? s - 2 : 0;
    const size_t s_hi = std::min(num_strips - 1, s + 2);
    for (size_t t = s_lo; t <= s_hi; ++t) {
      const size_t begin = strip_cell_begin[t];
      const size_t end = strip_cell_begin[t + 1];
      for (size_t c2 = begin; c2 < end; ++c2) {
        if (c2 == c) continue;
        // Early bail: cells in a strip are y-ordered; stop once past range.
        if (cells.cell_boxes[c2].min[1] > box.max[1] + epsilon) break;
        if (cells.cell_boxes[c2].max[1] < box.min[1] - epsilon) continue;
        if (cells.cell_boxes[c2].MinSquaredDistance(box) <= eps2) {
          list.push_back(static_cast<uint32_t>(c2));
        }
      }
    }
  });
  FlattenNeighbors(neighbor_lists, cells);
  cells.BuildSoALanes();
  return cells;
}

}  // namespace pdbscan::dbscan
