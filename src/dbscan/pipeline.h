// The full DBSCAN pipeline (Algorithm 1 of the paper): cell construction ->
// MarkCore -> ClusterCore -> ClusterBorder -> label normalization.
//
// The pipeline lives in DbscanEngine (engine.h); this header keeps the
// historical one-shot entry point, implemented as a transient engine so the
// one-shot and reusable paths are literally the same code.
#ifndef PDBSCAN_DBSCAN_PIPELINE_H_
#define PDBSCAN_DBSCAN_PIPELINE_H_

#include <span>

#include "dbscan/engine.h"
#include "dbscan/types.h"
#include "geometry/point.h"

namespace pdbscan::dbscan {

// Runs DBSCAN over `input` with the given parameters and configuration.
template <int D>
Clustering RunDbscan(std::span<const geometry::Point<D>> input, double epsilon,
                     size_t min_pts, const Options& options = Options()) {
  DbscanEngine<D> engine(options);
  engine.SetPointsView(input);
  return engine.Run(epsilon, min_pts);
}

}  // namespace pdbscan::dbscan

#endif  // PDBSCAN_DBSCAN_PIPELINE_H_
