// The full DBSCAN pipeline (Algorithm 1 of the paper): cell construction ->
// MarkCore -> ClusterCore -> ClusterBorder -> label normalization.
#ifndef PDBSCAN_DBSCAN_PIPELINE_H_
#define PDBSCAN_DBSCAN_PIPELINE_H_

#include <algorithm>
#include <span>
#include <stdexcept>
#include <vector>

#include "containers/union_find.h"
#include "dbscan/box_cells.h"
#include "dbscan/cell_structure.h"
#include "dbscan/cluster_border.h"
#include "dbscan/cluster_core.h"
#include "dbscan/grid.h"
#include "dbscan/mark_core.h"
#include "dbscan/types.h"
#include "geometry/point.h"
#include "parallel/scheduler.h"

namespace pdbscan::dbscan {

namespace internal {

// Relabels union-find roots to consecutive cluster ids, assigned by the
// first appearance in the caller's point order, and assembles the public
// Clustering. `point_roots` holds, for each reordered position, the sorted
// list of root cells the point belongs to (one entry for core points,
// possibly several for border points, none for noise).
template <int D>
Clustering Finalize(const CellStructure<D>& cells,
                    const std::vector<uint8_t>& core_flags,
                    const std::vector<std::vector<uint32_t>>& point_roots) {
  const size_t n = cells.num_points();
  Clustering out;
  out.cluster.assign(n, Clustering::kNoise);
  out.is_core.assign(n, 0);
  out.membership_offsets.assign(n + 1, 0);

  // Gather per-original-index membership lists.
  std::vector<const std::vector<uint32_t>*> by_orig(n, nullptr);
  parallel::parallel_for(0, n, [&](size_t i) {
    const uint32_t orig = cells.orig_index[i];
    by_orig[orig] = &point_roots[i];
    out.is_core[orig] = core_flags[i];
  });

  // First-appearance relabeling (serial, O(n + memberships)).
  std::vector<int64_t> root_to_id(cells.num_cells(), -1);
  int64_t next_id = 0;
  size_t total_memberships = 0;
  for (size_t i = 0; i < n; ++i) {
    for (const uint32_t root : *by_orig[i]) {
      if (root_to_id[root] < 0) root_to_id[root] = next_id++;
      ++total_memberships;
    }
  }
  out.num_clusters = static_cast<size_t>(next_id);

  for (size_t i = 0; i < n; ++i) {
    out.membership_offsets[i + 1] =
        out.membership_offsets[i] + by_orig[i]->size();
  }
  out.membership_ids.resize(total_memberships);
  parallel::parallel_for(0, n, [&](size_t i) {
    size_t w = out.membership_offsets[i];
    for (const uint32_t root : *by_orig[i]) {
      out.membership_ids[w++] = root_to_id[root];
    }
    auto begin = out.membership_ids.begin() + out.membership_offsets[i];
    auto end = out.membership_ids.begin() + out.membership_offsets[i + 1];
    std::sort(begin, end);
    if (begin != end) out.cluster[i] = *begin;
  });
  return out;
}

}  // namespace internal

// Runs DBSCAN over `input` with the given parameters and configuration.
template <int D>
Clustering RunDbscan(std::span<const geometry::Point<D>> input, double epsilon,
                     size_t min_pts, const Options& options = Options()) {
  if (epsilon <= 0) throw std::invalid_argument("epsilon must be positive");
  if (min_pts == 0) throw std::invalid_argument("min_pts must be positive");
  if (options.cell_method == CellMethod::kBox && D != 2) {
    throw std::invalid_argument("the box cell method is 2D only");
  }

  // Line 2 of Algorithm 1: cells.
  CellStructure<D> cells;
  if constexpr (D == 2) {
    cells = options.cell_method == CellMethod::kBox
                ? BuildBoxCells(input, epsilon)
                : BuildGrid<2>(input, epsilon);
  } else {
    cells = BuildGrid<D>(input, epsilon);
  }

  // Line 3: mark core points.
  const std::vector<uint8_t> core_flags =
      MarkCore(cells, min_pts, options.range_count);
  const CoreIndex core = BuildCoreIndex(cells, core_flags);

  // Line 4: cluster core points (cell graph + connected components).
  containers::UnionFind uf(cells.num_cells());
  ClusterCore(cells, core, options, uf);

  // Line 5: cluster border points (skipped for DBSCAN*, where clusters
  // consist of core points only).
  std::vector<std::vector<uint32_t>> point_roots =
      options.core_only
          ? std::vector<std::vector<uint32_t>>(cells.num_points())
          : ClusterBorder(cells, core_flags, core, min_pts, uf);
  // Core points belong to exactly their cell's component.
  parallel::parallel_for(
      0, cells.num_cells(),
      [&](size_t c) {
        if (!core.cell_is_core[c]) return;
        const uint32_t root = static_cast<uint32_t>(uf.Find(c));
        for (const uint32_t pos : core.core_of(c)) {
          point_roots[pos].assign(1, root);
        }
      },
      1);

  return internal::Finalize(cells, core_flags, point_roots);
}

}  // namespace pdbscan::dbscan

#endif  // PDBSCAN_DBSCAN_PIPELINE_H_
