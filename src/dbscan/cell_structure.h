// The cell decomposition shared by every DBSCAN variant (Section 3).
//
// Points are partitioned into disjoint cells of diameter at most epsilon
// (side epsilon/sqrt(d) for the grid method; width/height at most
// epsilon/sqrt(2) for the 2D box method), so that all points of a cell
// belong to the same cluster whenever any of them is a core point. The rest
// of the pipeline (MarkCore, ClusterCore, ClusterBorder) consumes this
// structure generically: reordered points with per-cell contiguous ranges,
// per-cell bounding boxes, and a CSR adjacency of "neighboring cells" (cells
// that could contain points within epsilon of the cell).
//
// Storage: every array is a containers::FlatArray, which a builder uses
// exactly like a std::vector but which can also VIEW caller-pinned memory.
// The persistence layer (persist/snapshot.h) exploits that to serve a
// structure straight out of an mmap'ed snapshot file with zero copies —
// the query pipeline only reads data()/size() and cannot tell an owned
// structure from a mapped one. A structure holding views does not keep the
// backing buffer alive; its owner does (CellIndex pins the mapping).
#ifndef PDBSCAN_DBSCAN_CELL_STRUCTURE_H_
#define PDBSCAN_DBSCAN_CELL_STRUCTURE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "containers/flat_array.h"
#include "geometry/point.h"

namespace pdbscan::dbscan {

template <int D>
struct CellStructure {
  template <typename T>
  using Array = containers::FlatArray<T>;

  double epsilon = 0;

  // Points reordered so each cell's points are contiguous; orig_index maps a
  // reordered position back to the caller's point index.
  Array<geometry::Point<D>> points;
  Array<uint32_t> orig_index;

  // Cell c holds points [offsets[c], offsets[c+1]).
  Array<size_t> offsets;

  // Integer grid coordinates per cell (grid method only; empty for the box
  // method).
  Array<geometry::CellCoords<D>> coords;

  // Geometric bounds per cell: the grid cell box for the grid method, the
  // tight content box for the box method. Distinct cells' boxes are
  // separated along at least one axis, which the USEC dispatch relies on.
  Array<geometry::BBox<D>> cell_boxes;

  // CSR adjacency: neighbors of cell c are nbrs[nbr_offsets[c] ..
  // nbr_offsets[c+1]). A neighbor is any other cell whose box is within
  // epsilon of c's box.
  Array<size_t> nbr_offsets;
  Array<uint32_t> nbrs;

  size_t num_points() const { return points.size(); }
  size_t num_cells() const {
    return offsets.empty() ? 0 : offsets.size() - 1;
  }
  size_t cell_size(size_t c) const { return offsets[c + 1] - offsets[c]; }

  std::span<const geometry::Point<D>> cell_points(size_t c) const {
    return std::span<const geometry::Point<D>>(points.data() + offsets[c],
                                               cell_size(c));
  }

  std::span<const uint32_t> neighbors(size_t c) const {
    return std::span<const uint32_t>(nbrs.data() + nbr_offsets[c],
                                     nbr_offsets[c + 1] - nbr_offsets[c]);
  }

  // Sizes every per-point and per-cell array for `num_cells` cells holding
  // `num_points` reordered points, leaving contents unspecified: offsets
  // must then be filled as a prefix sum, followed by points / orig_index /
  // coords / cell_boxes and a neighbor-adjacency pass (BuildGridAdjacency).
  // This is the incremental-build entry point — the streaming
  // DynamicCellIndex recomposes a structure cell by cell through it instead
  // of re-running BuildGrid's semisort over all points.
  void ResizeForCells(size_t num_cells, size_t num_points) {
    points.resize(num_points);
    orig_index.resize(num_points);
    offsets.assign(num_cells + 1, 0);
    coords.resize(num_cells);
    cell_boxes.resize(num_cells);
  }
};

// Flattens per-cell neighbor lists into the CSR arrays of `cells`.
template <int D>
void FlattenNeighbors(const std::vector<std::vector<uint32_t>>& lists,
                      CellStructure<D>& cells) {
  const size_t num_cells = lists.size();
  cells.nbr_offsets.assign(num_cells + 1, 0);
  for (size_t c = 0; c < num_cells; ++c) {
    cells.nbr_offsets[c + 1] = cells.nbr_offsets[c] + lists[c].size();
  }
  cells.nbrs.resize(cells.nbr_offsets[num_cells]);
  for (size_t c = 0; c < num_cells; ++c) {
    std::copy(lists[c].begin(), lists[c].end(),
              cells.nbrs.begin() + cells.nbr_offsets[c]);
  }
}

}  // namespace pdbscan::dbscan

#endif  // PDBSCAN_DBSCAN_CELL_STRUCTURE_H_
