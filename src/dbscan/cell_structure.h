// The cell decomposition shared by every DBSCAN variant (Section 3).
//
// Points are partitioned into disjoint cells of diameter at most epsilon
// (side epsilon/sqrt(d) for the grid method; width/height at most
// epsilon/sqrt(2) for the 2D box method), so that all points of a cell
// belong to the same cluster whenever any of them is a core point. The rest
// of the pipeline (MarkCore, ClusterCore, ClusterBorder) consumes this
// structure generically: reordered points with per-cell contiguous ranges,
// per-cell bounding boxes, and a CSR adjacency of "neighboring cells" (cells
// that could contain points within epsilon of the cell).
//
// Storage: every array is a containers::FlatArray, which a builder uses
// exactly like a std::vector but which can also VIEW caller-pinned memory.
// The persistence layer (persist/snapshot.h) exploits that to serve a
// structure straight out of an mmap'ed snapshot file with zero copies —
// the query pipeline only reads data()/size() and cannot tell an owned
// structure from a mapped one. A structure holding views does not keep the
// backing buffer alive; its owner does (CellIndex pins the mapping).
#ifndef PDBSCAN_DBSCAN_CELL_STRUCTURE_H_
#define PDBSCAN_DBSCAN_CELL_STRUCTURE_H_

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "containers/flat_array.h"
#include "dbscan/types.h"
#include "geometry/point.h"
#include "parallel/scheduler.h"

namespace pdbscan::dbscan {

template <int D>
struct CellStructure {
  template <typename T>
  using Array = containers::FlatArray<T>;

  double epsilon = 0;

  // Distance metric the structure was built for: the cell side, the CSR
  // neighbor adjacency, and every downstream distance comparison (MarkCore,
  // BCP, border assignment) depend on it. Builders that hand-assemble a
  // structure (streaming recompose, sharded merge, snapshot load) must set
  // it to match the producing Options.
  Metric metric = Metric::kL2;

  // Points reordered so each cell's points are contiguous; orig_index maps a
  // reordered position back to the caller's point index.
  Array<geometry::Point<D>> points;
  Array<uint32_t> orig_index;

  // Cell c holds points [offsets[c], offsets[c+1]).
  Array<size_t> offsets;

  // Integer grid coordinates per cell (grid method only; empty for the box
  // method).
  Array<geometry::CellCoords<D>> coords;

  // Geometric bounds per cell: the grid cell box for the grid method, the
  // tight content box for the box method. Distinct cells' boxes are
  // separated along at least one axis, which the USEC dispatch relies on.
  Array<geometry::BBox<D>> cell_boxes;

  // CSR adjacency: neighbors of cell c are nbrs[nbr_offsets[c] ..
  // nbr_offsets[c+1]). A neighbor is any other cell whose box is within
  // epsilon of c's box.
  Array<size_t> nbr_offsets;
  Array<uint32_t> nbrs;

  // Structure-of-arrays coordinate lanes over the reordered points:
  // soa[d][i] == points[i][d]. Derived data (never serialized) consumed by
  // the SIMD distance kernels (src/kernels/): per-cell point ranges become
  // contiguous per-dimension double runs, loadable 8 at a time. Builders
  // populate the lanes with BuildSoALanes() (owned, 64-byte aligned); a
  // mapped snapshot serves them as strided views straight into its AoS
  // point array (ViewSoALanesFromPoints — zero copies, scalar-read only).
  // When absent (has_soa() == false) every kernel call site falls back to
  // the AoS scalar loop, which is bit-identical by contract.
  std::array<Array<double>, D> soa;

  size_t num_points() const { return points.size(); }
  size_t num_cells() const {
    return offsets.empty() ? 0 : offsets.size() - 1;
  }
  size_t cell_size(size_t c) const { return offsets[c + 1] - offsets[c]; }

  std::span<const geometry::Point<D>> cell_points(size_t c) const {
    return std::span<const geometry::Point<D>>(points.data() + offsets[c],
                                               cell_size(c));
  }

  std::span<const uint32_t> neighbors(size_t c) const {
    return std::span<const uint32_t>(nbrs.data() + nbr_offsets[c],
                                     nbr_offsets[c + 1] - nbr_offsets[c]);
  }

  // True iff the SoA lanes are populated and consistent with points.
  bool has_soa() const {
    if (points.empty()) return false;
    for (int d = 0; d < D; ++d) {
      if (soa[static_cast<size_t>(d)].size() != points.size()) return false;
    }
    return true;
  }

  // Element stride of the SoA lanes (1 for built lanes, D for lanes viewed
  // out of a mapped AoS point array).
  size_t soa_stride() const { return soa[0].stride(); }

  // Materializes owned, 64-byte-aligned SoA lanes from `points`
  // (transpose; every builder calls this once, after the reordered points
  // are final).
  void BuildSoALanes() {
    const size_t n = points.size();
    if (n == 0) {
      for (auto& lane : soa) lane.clear();
      return;
    }
    std::array<double*, D> dst;
    for (int d = 0; d < D; ++d) {
      dst[static_cast<size_t>(d)] =
          soa[static_cast<size_t>(d)].AllocateAligned(n);
    }
    const geometry::Point<D>* src = points.data();
    parallel::parallel_for(0, n, [&](size_t i) {
      for (int d = 0; d < D; ++d) {
        dst[static_cast<size_t>(d)][i] = src[i][d];
      }
    });
  }

  // Points the SoA lanes at the existing AoS point buffer with stride D —
  // zero-copy, for structures whose points VIEW pinned memory (a mapped
  // snapshot). Kernels read strided lanes through the scalar path. Never
  // call this on a structure that owns its points: the lanes would dangle
  // as soon as the structure is copied or its points reallocate.
  void ViewSoALanesFromPoints() {
    static_assert(sizeof(geometry::Point<D>) == D * sizeof(double),
                  "SoA lane views require densely packed points");
    const size_t n = points.size();
    const double* base = reinterpret_cast<const double*>(points.data());
    for (int d = 0; d < D; ++d) {
      soa[static_cast<size_t>(d)] = Array<double>::StridedView(
          n == 0 ? nullptr : base + d, n, static_cast<size_t>(D));
    }
  }

  // Sizes every per-point and per-cell array for `num_cells` cells holding
  // `num_points` reordered points, leaving contents unspecified: offsets
  // must then be filled as a prefix sum, followed by points / orig_index /
  // coords / cell_boxes and a neighbor-adjacency pass (BuildGridAdjacency).
  // This is the incremental-build entry point — the streaming
  // DynamicCellIndex recomposes a structure cell by cell through it instead
  // of re-running BuildGrid's semisort over all points.
  void ResizeForCells(size_t num_cells, size_t num_points) {
    points.resize(num_points);
    orig_index.resize(num_points);
    offsets.assign(num_cells + 1, 0);
    coords.resize(num_cells);
    cell_boxes.resize(num_cells);
    // Any existing lanes are stale the moment points are recomposed; drop
    // them so has_soa() cannot report a false positive at the old size.
    for (auto& lane : soa) lane.clear();
  }
};

// Flattens per-cell neighbor lists into the CSR arrays of `cells`.
template <int D>
void FlattenNeighbors(const std::vector<std::vector<uint32_t>>& lists,
                      CellStructure<D>& cells) {
  const size_t num_cells = lists.size();
  cells.nbr_offsets.assign(num_cells + 1, 0);
  for (size_t c = 0; c < num_cells; ++c) {
    cells.nbr_offsets[c + 1] = cells.nbr_offsets[c] + lists[c].size();
  }
  cells.nbrs.resize(cells.nbr_offsets[num_cells]);
  for (size_t c = 0; c < num_cells; ++c) {
    std::copy(lists[c].begin(), lists[c].end(),
              cells.nbrs.begin() + cells.nbr_offsets[c]);
  }
}

}  // namespace pdbscan::dbscan

#endif  // PDBSCAN_DBSCAN_CELL_STRUCTURE_H_
