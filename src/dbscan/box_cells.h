// Box cell construction for 2D DBSCAN — Section 4.2 of the paper.
//
// Points are sorted by x and grouped into vertical strips of width at most
// epsilon/sqrt(2): a new strip starts at the first point more than
// epsilon/sqrt(2) to the right of the current strip's start. The same
// procedure applied to y within each strip produces the box cells. Strip
// starts are found with the paper's parallel pointer-jumping construction
// (Figure 2): each point links to the first point more than epsilon/sqrt(2)
// to its right, the leftmost point is seeded with a 1-flag, and flag
// propagation marks exactly the strip starts.
//
// Neighbor cells are collected from strips s-2..s+2 (the only strips that
// can hold points within epsilon, because consecutive strip starts are more
// than epsilon/sqrt(2) apart), comparing tight cell bounding boxes.
#ifndef PDBSCAN_DBSCAN_BOX_CELLS_H_
#define PDBSCAN_DBSCAN_BOX_CELLS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "dbscan/cell_structure.h"
#include "geometry/point.h"

namespace pdbscan::dbscan {

// Point ids sorted by (x, y, id) — the epsilon-independent part of the box
// construction (the strip grouping itself depends on epsilon). The
// DbscanEngine caches this order across epsilon changes.
std::vector<uint32_t> BoxSortByX(std::span<const geometry::Point<2>> input);

// Builds the box cell structure for 2D points with parameter `epsilon`.
CellStructure<2> BuildBoxCells(std::span<const geometry::Point<2>> input,
                               double epsilon);

// Same, reusing a precomputed BoxSortByX(input) order instead of sorting.
CellStructure<2> BuildBoxCells(std::span<const geometry::Point<2>> input,
                               double epsilon,
                               std::span<const uint32_t> x_order);

}  // namespace pdbscan::dbscan

#endif  // PDBSCAN_DBSCAN_BOX_CELLS_H_
