// MarkCore — Algorithm 2 of the paper (Section 4.3).
//
// A cell with at least minPts points consists entirely of core points (the
// cell has diameter at most epsilon). Every other point counts its
// epsilon-neighbors in the cell itself plus each neighboring cell, either by
// scanning the neighbor's points or via a per-cell quadtree RangeCount
// (Section 5.2); counting stops early once minPts is reached.
#ifndef PDBSCAN_DBSCAN_MARK_CORE_H_
#define PDBSCAN_DBSCAN_MARK_CORE_H_

#include <memory>
#include <numeric>
#include <vector>

#include "dbscan/cell_structure.h"
#include "dbscan/types.h"
#include "geometry/quadtree.h"
#include "parallel/scheduler.h"

namespace pdbscan::dbscan {

// Builds a quadtree over every cell's points (used when range_count ==
// kQuadtree). Trees index into cells.points.
template <int D>
std::vector<std::unique_ptr<geometry::CellQuadtree<D>>> BuildCellQuadtrees(
    const CellStructure<D>& cells) {
  const size_t num_cells = cells.num_cells();
  std::vector<std::unique_ptr<geometry::CellQuadtree<D>>> trees(num_cells);
  parallel::parallel_for(
      0, num_cells,
      [&](size_t c) {
        std::vector<uint32_t> idx(cells.cell_size(c));
        std::iota(idx.begin(), idx.end(),
                  static_cast<uint32_t>(cells.offsets[c]));
        trees[c] = std::make_unique<geometry::CellQuadtree<D>>(
            std::span<const geometry::Point<D>>(cells.points), std::move(idx),
            cells.cell_boxes[c]);
      },
      1);
  return trees;
}

// Returns a flag per *reordered* point position: 1 iff the point is core.
template <int D>
std::vector<uint8_t> MarkCore(const CellStructure<D>& cells, size_t min_pts,
                              RangeCountMethod method) {
  const size_t num_cells = cells.num_cells();
  const double eps = cells.epsilon;
  const double eps2 = eps * eps;
  std::vector<uint8_t> core_flags(cells.num_points(), 0);

  std::vector<std::unique_ptr<geometry::CellQuadtree<D>>> trees;
  if (method == RangeCountMethod::kQuadtree) {
    trees = BuildCellQuadtrees(cells);
  }

  parallel::parallel_for(
      0, num_cells,
      [&](size_t c) {
        const size_t begin = cells.offsets[c];
        const size_t end = cells.offsets[c + 1];
        if (end - begin >= min_pts) {
          // Dense cell: everything is core (Lines 4-6 of Algorithm 2).
          parallel::parallel_for(begin, end,
                                 [&](size_t i) { core_flags[i] = 1; });
          return;
        }
        const auto neighbors = cells.neighbors(c);
        for (size_t i = begin; i < end; ++i) {
          const geometry::Point<D>& p = cells.points[i];
          size_t count = end - begin;  // All same-cell points are within eps.
          for (const uint32_t h : neighbors) {
            if (count >= min_pts) break;
            if (method == RangeCountMethod::kQuadtree) {
              count += trees[h]->CountInBall(p, eps, min_pts - count);
            } else {
              // Scan the neighboring cell (prune by its box first).
              if (cells.cell_boxes[h].MinSquaredDistance(p) > eps2) continue;
              const size_t h_begin = cells.offsets[h];
              const size_t h_end = cells.offsets[h + 1];
              for (size_t j = h_begin; j < h_end && count < min_pts; ++j) {
                if (cells.points[j].SquaredDistance(p) <= eps2) ++count;
              }
            }
          }
          if (count >= min_pts) core_flags[i] = 1;
        }
      },
      1);
  return core_flags;
}

}  // namespace pdbscan::dbscan

#endif  // PDBSCAN_DBSCAN_MARK_CORE_H_
