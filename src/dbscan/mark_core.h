// MarkCore — Algorithm 2 of the paper (Section 4.3).
//
// A cell with at least minPts points consists entirely of core points (the
// cell has diameter at most epsilon). Every other point counts its
// epsilon-neighbors in the cell itself plus each neighboring cell, either by
// scanning the neighbor's points or via a per-cell quadtree RangeCount
// (Section 5.2); counting stops early once minPts is reached.
#ifndef PDBSCAN_DBSCAN_MARK_CORE_H_
#define PDBSCAN_DBSCAN_MARK_CORE_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <numeric>
#include <span>
#include <vector>

#include "dbscan/cell_structure.h"
#include "dbscan/metric.h"
#include "dbscan/stats.h"
#include "dbscan/types.h"
#include "geometry/quadtree.h"
#include "kernels/kernel_api.h"
#include "parallel/scheduler.h"
#include "telemetry/trace.h"

namespace pdbscan::dbscan {

// Builds a quadtree over every cell's points (used when range_count ==
// kQuadtree). Trees index into cells.points.
template <int D>
std::vector<std::unique_ptr<geometry::CellQuadtree<D>>> BuildCellQuadtrees(
    const CellStructure<D>& cells) {
  const size_t num_cells = cells.num_cells();
  std::vector<std::unique_ptr<geometry::CellQuadtree<D>>> trees(num_cells);
  parallel::parallel_for(
      0, num_cells,
      [&](size_t c) {
        std::vector<uint32_t> idx(cells.cell_size(c));
        std::iota(idx.begin(), idx.end(),
                  static_cast<uint32_t>(cells.offsets[c]));
        trees[c] = std::make_unique<geometry::CellQuadtree<D>>(
            std::span<const geometry::Point<D>>(cells.points), std::move(idx),
            cells.cell_boxes[c]);
      },
      1);
  return trees;
}

namespace internal {

// Saturated neighbor counts for the points of one cell (the loop body of
// Algorithm 2). Writes exactly counts[offsets[c] .. offsets[c+1]), so any
// set of distinct cells may be counted concurrently. Kernel-layer counters
// flush into `stats` once per cell.
template <int D>
void CountCellPoints(
    const CellStructure<D>& cells, size_t cap, RangeCountMethod method,
    const std::vector<std::unique_ptr<geometry::CellQuadtree<D>>>* trees,
    size_t c, std::vector<uint32_t>& counts, PipelineStats& stats) {
  const double eps = cells.epsilon;
  const Metric metric = cells.metric;
  // L2 compares squared distance vs eps^2 (the pre-metric arithmetic,
  // byte-for-byte); L1/Linf compare the distance itself vs eps.
  const double threshold = MetricThreshold(eps, metric);
  const size_t begin = cells.offsets[c];
  const size_t end = cells.offsets[c + 1];
  if (end - begin >= cap) {
    // Dense cell: everything is core (Lines 4-6 of Algorithm 2). Valid for
    // every metric — the cell side is chosen so the cell diameter under the
    // structure's metric is at most epsilon.
    parallel::parallel_for(
        begin, end,
        [&](size_t i) { counts[i] = static_cast<uint32_t>(cap); });
    return;
  }
  const auto neighbors = cells.neighbors(c);
  kernels::Counters kc;
  const kernels::CountWithinFn count_within =
      CountWithinForMetric(kernels::Ops(), metric);
  const bool use_soa = method == RangeCountMethod::kScan && cells.has_soa();
  std::array<const double*, D> lane_base;
  size_t lane_stride = 1;
  if (use_soa) {
    for (int d = 0; d < D; ++d) {
      lane_base[static_cast<size_t>(d)] =
          cells.soa[static_cast<size_t>(d)].data();
    }
    lane_stride = cells.soa_stride();
  }
  for (size_t i = begin; i < end; ++i) {
    const geometry::Point<D>& p = cells.points[i];
    size_t count = end - begin;  // All same-cell points are within eps.
    for (const uint32_t h : neighbors) {
      if (count >= cap) break;
      // Prune the neighboring cell by its box, for BOTH range-count
      // methods. For kQuadtree this is not just the root-node test moved
      // up: the tree's root box can only be smaller than the cell box
      // (single-child collapse), so a skip here means the count was 0.
      if (BoxMinMeasure<D>(cells.cell_boxes[h], p, metric) > threshold) {
        kc.points_pruned_box += cells.cell_size(h);
        continue;
      }
      if (method == RangeCountMethod::kQuadtree) {
        count += (*trees)[h]->CountInBall(p, eps, cap - count, &kc);
      } else {
        const size_t h_begin = cells.offsets[h];
        const size_t h_end = cells.offsets[h + 1];
        if (use_soa) {
          std::array<const double*, D> lanes;
          for (int d = 0; d < D; ++d) {
            lanes[static_cast<size_t>(d)] =
                lane_base[static_cast<size_t>(d)] + h_begin * lane_stride;
          }
          count += count_within(lanes.data(), lane_stride, D,
                                h_end - h_begin, p.x.data(), threshold,
                                cap - count, &kc);
        } else {
          for (size_t j = h_begin; j < h_end && count < cap; ++j) {
            if (PointMeasure<D>(cells.points[j], p, metric) <= threshold) {
              ++count;
            }
          }
        }
      }
    }
    counts[i] = static_cast<uint32_t>(std::min(count, cap));
  }
  FlushKernelCounters(stats, kc);
}

}  // namespace internal

// Per-point epsilon-neighbor counts, saturated at `cap`: counts[i] ==
// min(cap, number of points within epsilon of reordered point i, counting
// itself). Thresholding at any min_pts <= cap reproduces MarkCore exactly
// (core iff count >= min_pts), which is what lets the DbscanEngine compute
// counts once at cap = max(minPts list) and answer a whole min_pts sweep.
// `trees` must be the cells' quadtrees when method == kQuadtree (pass the
// engine's cached trees, or BuildCellQuadtrees(cells)); ignored otherwise.
// Kernel-layer counters accumulate into `stats` (nullptr = GlobalStats()).
template <int D>
void MarkCoreCounts(
    const CellStructure<D>& cells, size_t cap, RangeCountMethod method,
    const std::vector<std::unique_ptr<geometry::CellQuadtree<D>>>* trees,
    std::vector<uint32_t>& counts, PipelineStats* stats = nullptr) {
  PipelineStats& sink = stats != nullptr ? *stats : GlobalStats();
  // Span name distinguishes the range-count strategy so a trace shows
  // which one a query actually paid for.
  telemetry::TraceSpan span(method == RangeCountMethod::kQuadtree
                                ? "range_count_quadtree"
                                : "range_count_scan");
  counts.assign(cells.num_points(), 0);
  parallel::parallel_for(
      0, cells.num_cells(),
      [&](size_t c) {
        internal::CountCellPoints(cells, cap, method, trees, c, counts, sink);
      },
      1);
}

// The incremental variant: recounts only the cells listed in `cell_ids`,
// leaving every other point's entry untouched. `counts` must already be
// sized to cells.num_points() (the streaming path copies retained cells'
// counts from the previous snapshot first). Counting a cell reads its
// neighbors' points but writes only the cell's own count range, so the
// listed cells may be any subset, in any order.
template <int D>
void MarkCoreCountsForCells(
    const CellStructure<D>& cells, size_t cap, RangeCountMethod method,
    const std::vector<std::unique_ptr<geometry::CellQuadtree<D>>>* trees,
    std::span<const uint32_t> cell_ids, std::vector<uint32_t>& counts,
    PipelineStats* stats = nullptr) {
  PipelineStats& sink = stats != nullptr ? *stats : GlobalStats();
  parallel::parallel_for(
      0, cell_ids.size(),
      [&](size_t k) {
        internal::CountCellPoints(cells, cap, method, trees, cell_ids[k],
                                  counts, sink);
      },
      1);
}

// Thresholds saturated counts into core flags; valid for min_pts up to the
// cap the counts were computed with.
inline void CoreFlagsFromCounts(std::span<const uint32_t> counts,
                                size_t min_pts, std::vector<uint8_t>& flags) {
  flags.resize(counts.size());  // Every element is written below.
  parallel::parallel_for(0, counts.size(),
                         [&](size_t i) { flags[i] = counts[i] >= min_pts; });
}

// Returns a flag per *reordered* point position: 1 iff the point is core.
template <int D>
std::vector<uint8_t> MarkCore(const CellStructure<D>& cells, size_t min_pts,
                              RangeCountMethod method) {
  std::vector<std::unique_ptr<geometry::CellQuadtree<D>>> trees;
  if (method == RangeCountMethod::kQuadtree) {
    trees = BuildCellQuadtrees(cells);
  }
  std::vector<uint32_t> counts;
  MarkCoreCounts(cells, min_pts, method, &trees, counts);
  std::vector<uint8_t> core_flags;
  CoreFlagsFromCounts(counts, min_pts, core_flags);
  return core_flags;
}

}  // namespace pdbscan::dbscan

#endif  // PDBSCAN_DBSCAN_MARK_CORE_H_
