// Grid cell construction — Section 4.1 of the paper.
//
// Points are assigned to cells of side epsilon/sqrt(d) anchored at the
// dataset's bounding-box corner. Grouping points by cell uses *semisort*
// (not a comparison sort), which is the paper's key to O(n) expected work:
// only same-cell grouping matters, not cell ordering. Non-empty cells go
// into a phase-concurrent hash table keyed by integer cell coordinates.
//
// Neighboring cells (cells whose boxes are within epsilon) are found by
// offset enumeration for d <= 3 and, as in Section 5.1, via a parallel k-d
// tree over cell centers for higher dimensions, where enumerating the
// (2 * (floor(sqrt(d)) + 1) + 1)^d candidate offsets is impractical. Both
// paths apply the exact integer criterion
//     sum_i max(0, |delta_i| - 1)^2 <= d
// (equivalent to box distance <= epsilon, since side = epsilon/sqrt(d)).
#ifndef PDBSCAN_DBSCAN_GRID_H_
#define PDBSCAN_DBSCAN_GRID_H_

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "containers/hash_table.h"
#include "dbscan/cell_structure.h"
#include "dbscan/metric.h"
#include "geometry/kd_tree.h"
#include "geometry/point.h"
#include "parallel/scheduler.h"
#include "primitives/reduce.h"
#include "primitives/semisort.h"
#include "telemetry/trace.h"

namespace pdbscan::dbscan {

namespace internal {

// True iff cells at integer offset `delta` can contain points within
// epsilon of each other under `metric`. Exact integer criteria, derived
// from the minimum box-to-box distance between cells at offset delta
// (gap_i = max(0, |delta_i| - 1) cells of side s along axis i):
//   L2   (s = eps/sqrt(D)):  sum_i gap_i^2 * s^2 <= eps^2  <=>  sum <= D
//   L1   (s = eps/D):        sum_i gap_i  * s    <= eps    <=>  sum <= D
//   Linf (s = eps):          max_i gap_i  * s    <= eps    <=>  all |delta_i| <= 2
template <int D>
bool OffsetWithinEpsilon(const geometry::CellCoords<D>& delta,
                         Metric metric = Metric::kL2) {
  switch (metric) {
    case Metric::kL2: {
      int64_t sum = 0;
      for (int i = 0; i < D; ++i) {
        const int64_t gap = std::abs(static_cast<int64_t>(delta[i])) - 1;
        if (gap > 0) sum += gap * gap;
      }
      return sum <= D;
    }
    case Metric::kL1: {
      int64_t sum = 0;
      for (int i = 0; i < D; ++i) {
        const int64_t gap = std::abs(static_cast<int64_t>(delta[i])) - 1;
        if (gap > 0) sum += gap;
      }
      return sum <= D;
    }
    case Metric::kLinf: {
      for (int i = 0; i < D; ++i) {
        if (std::abs(static_cast<int64_t>(delta[i])) > 2) return false;
      }
      return true;
    }
  }
  return false;
}

// All non-zero offsets satisfying OffsetWithinEpsilon (used for d <= 3).
// The enumeration order is deterministic (odometer over [-k, k]^D) and is
// part of the adjacency contract: every probe strategy (hash table, packed
// keys) walks the SAME order so the CSR neighbor lists are identical.
template <int D>
std::vector<geometry::CellCoords<D>> NeighborOffsets(
    Metric metric = Metric::kL2) {
  const int k = static_cast<int>(MetricHalo<D>(metric));
  std::vector<geometry::CellCoords<D>> offsets;
  geometry::CellCoords<D> delta{};
  // Odometer enumeration of [-k, k]^D.
  for (int i = 0; i < D; ++i) delta[i] = -k;
  while (true) {
    bool zero = true;
    for (int i = 0; i < D; ++i) zero = zero && delta[i] == 0;
    if (!zero && OffsetWithinEpsilon<D>(delta, metric)) {
      offsets.push_back(delta);
    }
    int dim = D - 1;
    while (dim >= 0 && delta[dim] == k) {
      delta[dim] = -k;
      --dim;
    }
    if (dim < 0) break;
    ++delta[dim];
  }
  return offsets;
}

// The per-metric offset tables, computed once per (D, metric) and never
// destroyed (function-local static pointers).
template <int D>
const std::vector<geometry::CellCoords<D>>& CachedNeighborOffsets(
    Metric metric) {
  static const auto* const kL2 =
      new std::vector<geometry::CellCoords<D>>(NeighborOffsets<D>(Metric::kL2));
  static const auto* const kL1 =
      new std::vector<geometry::CellCoords<D>>(NeighborOffsets<D>(Metric::kL1));
  static const auto* const kLinf = new std::vector<geometry::CellCoords<D>>(
      NeighborOffsets<D>(Metric::kLinf));
  switch (metric) {
    case Metric::kL2: return *kL2;
    case Metric::kL1: return *kL1;
    case Metric::kLinf: return *kLinf;
  }
  return *kL2;
}

template <int D>
struct CellCoordsHash {
  uint64_t operator()(const geometry::CellCoords<D>& c) const {
    return geometry::HashCellCoords<D>(c);
  }
};

template <int D>
struct CellCoordsEq {
  bool operator()(const geometry::CellCoords<D>& a,
                  const geometry::CellCoords<D>& b) const {
    return a == b;
  }
};

}  // namespace internal

// Bounding box of `input` (parallel reduce). The grid anchors its cells at
// bounds.min; the result is epsilon-independent, so the DbscanEngine caches
// it across epsilon changes and passes it back via the BuildGrid overload.
template <int D>
geometry::BBox<D> ComputeBounds(std::span<const geometry::Point<D>> input) {
  using geometry::BBox;
  return primitives::ReduceIndex(
      size_t{0}, input.size(), BBox<D>::Empty(),
      [&](size_t i) {
        BBox<D> b = BBox<D>::Empty();
        b.Extend(input[i]);
        return b;
      },
      [](BBox<D> a, const BBox<D>& b) {
        a.Extend(b);
        return a;
      });
}

// The epsilon-grid cell side for dimension D: the largest side for which a
// cell's diameter under the metric is at most epsilon (so any core point's
// whole cell joins its cluster). L2: eps/sqrt(D); L1: eps/D; Linf: eps.
template <int D>
double GridSide(double epsilon, Metric metric = Metric::kL2) {
  switch (metric) {
    case Metric::kL2: return epsilon / std::sqrt(double(D));
    case Metric::kL1: return epsilon / double(D);
    case Metric::kLinf: return epsilon;
  }
  return epsilon / std::sqrt(double(D));
}

// Test knob: forces ForEachNeighborAmong to take the generic hash-probe
// path even where the packed-cell-key fast path applies, so the property
// sweep can assert the two produce bit-identical adjacency.
inline std::atomic<bool>& ForceGenericAdjacencyFlag() {
  static std::atomic<bool> flag{false};
  return flag;
}

// Invokes emit(i, j) for every ordered pair of positions i != j into `ids`
// such that cells ids[i] and ids[j] can contain points within epsilon of
// each other (the exact integer criterion of OffsetWithinEpsilon over
// cells.coords). Offset enumeration probing a hash table for d <= 3, a k-d
// tree over the cells' centers for higher d (Section 5.1). The loop over i
// is a parallel_for: emit must tolerate concurrent calls with distinct i
// (all calls for one i are serial, in deterministic order).
// `origin`/`side` are the grid anchoring that produced the coords. This is
// the ONE place the neighbor criterion and its dimension dispatch live —
// shared by BuildGridAdjacency (ids = every cell) and the sharded
// boundary merge (ids = seam cells only), so the two cannot diverge.
template <int D, typename Emit>
void ForEachNeighborAmong(const CellStructure<D>& cells,
                          std::span<const uint32_t> ids,
                          const geometry::Point<D>& origin, double side,
                          Emit&& emit) {
  using geometry::BBox;
  using geometry::CellCoords;
  using geometry::Point;
  if (ids.empty()) return;
  const Metric metric = cells.metric;
  if constexpr (D == 2) {
    // Packed-cell-key fast path for the 2-D L1 grid (the bolu-atx
    // grid2d-L1 idiom): both coordinates biased into uint32 and packed
    // into one uint64 key, probed by binary search over a sorted key
    // vector instead of hash probes. Bit-identical to the generic path by
    // construction — per source cell it walks the SAME deterministic
    // offset enumeration and emits in the same order; only the membership
    // probe differs. Falls back to the generic path when the coordinate
    // range (plus the probe halo) doesn't fit 32 bits, or when the test
    // knob forces it.
    if (metric == Metric::kL1 &&
        !ForceGenericAdjacencyFlag().load(std::memory_order_relaxed)) {
      const auto& offsets = internal::CachedNeighborOffsets<2>(metric);
      int64_t lo[2] = {INT64_MAX, INT64_MAX};
      int64_t hi[2] = {INT64_MIN, INT64_MIN};
      for (size_t i = 0; i < ids.size(); ++i) {
        const CellCoords<2>& c = cells.coords[ids[i]];
        for (int a = 0; a < 2; ++a) {
          lo[a] = std::min(lo[a], c[static_cast<size_t>(a)]);
          hi[a] = std::max(hi[a], c[static_cast<size_t>(a)]);
        }
      }
      const int64_t halo = static_cast<int64_t>(MetricHalo<2>(metric));
      const bool fits = hi[0] - lo[0] <= int64_t{UINT32_MAX} - 2 * halo - 2 &&
                        hi[1] - lo[1] <= int64_t{UINT32_MAX} - 2 * halo - 2;
      if (fits) {
        // bias so every probe (coord +- halo) packs to a positive uint32.
        const int64_t bias_x = lo[0] - halo - 1;
        const int64_t bias_y = lo[1] - halo - 1;
        const auto pack = [&](int64_t cx, int64_t cy) {
          return (static_cast<uint64_t>(cx - bias_x) << 32) |
                 static_cast<uint64_t>(cy - bias_y);
        };
        // Sorted (key, position-in-ids) pairs; keys are unique because
        // candidate cells are distinct.
        std::vector<std::pair<uint64_t, uint32_t>> keyed(ids.size());
        parallel::parallel_for(0, ids.size(), [&](size_t i) {
          const CellCoords<2>& c = cells.coords[ids[i]];
          keyed[i] = {pack(c[0], c[1]), static_cast<uint32_t>(i)};
        });
        std::sort(keyed.begin(), keyed.end());
        parallel::parallel_for(0, ids.size(), [&](size_t i) {
          const CellCoords<2>& c = cells.coords[ids[i]];
          for (const CellCoords<2>& delta : offsets) {
            const uint64_t key = pack(c[0] + delta[0], c[1] + delta[1]);
            const auto it = std::lower_bound(
                keyed.begin(), keyed.end(), key,
                [](const std::pair<uint64_t, uint32_t>& kv, uint64_t k) {
                  return kv.first < k;
                });
            if (it != keyed.end() && it->first == key) {
              emit(i, static_cast<size_t>(it->second));
            }
          }
        });
        return;
      }
    }
  }
  if constexpr (D <= 3) {
    // Hash table over the candidate cells: coords -> position in `ids`.
    containers::ConcurrentMap<CellCoords<D>, uint32_t,
                              internal::CellCoordsHash<D>,
                              internal::CellCoordsEq<D>>
        table(ids.size());
    parallel::parallel_for(0, ids.size(), [&](size_t i) {
      table.Insert(cells.coords[ids[i]], static_cast<uint32_t>(i));
    });
    const auto& offsets = internal::CachedNeighborOffsets<D>(metric);
    parallel::parallel_for(0, ids.size(), [&](size_t i) {
      for (const CellCoords<D>& delta : offsets) {
        CellCoords<D> probe = cells.coords[ids[i]];
        for (int a = 0; a < D; ++a) probe[a] += delta[a];
        const uint32_t* j = table.Find(probe);
        if (j != nullptr) emit(i, static_cast<size_t>(*j));
      }
    });
  } else {
    // k-d tree over the candidate cells' centers (Section 5.1).
    const int k = static_cast<int>(MetricHalo<D>(metric));
    std::vector<Point<D>> centers(ids.size());
    parallel::parallel_for(0, ids.size(), [&](size_t i) {
      for (int a = 0; a < D; ++a) {
        centers[i][a] = origin[a] + side * (cells.coords[ids[i]][a] + 0.5);
      }
    });
    geometry::KdTree<D> tree{std::span<const Point<D>>(centers)};
    parallel::parallel_for(0, ids.size(), [&](size_t i) {
      BBox<D> query;
      for (int a = 0; a < D; ++a) {
        query.min[a] = centers[i][a] - (k + 0.5) * side;
        query.max[a] = centers[i][a] + (k + 0.5) * side;
      }
      tree.ForEachInBox(query, [&](uint32_t other) {
        if (other == i) return true;
        CellCoords<D> delta;
        for (int a = 0; a < D; ++a) {
          delta[a] =
              cells.coords[ids[other]][a] - cells.coords[ids[i]][a];
        }
        if (internal::OffsetWithinEpsilon<D>(delta, metric)) {
          emit(i, static_cast<size_t>(other));
        }
        return true;
      });
    });
  }
}

// Fills the CSR neighbor adjacency of `cells` from cells.coords: for every
// cell, all other cells whose boxes are within epsilon (the exact integer
// criterion of OffsetWithinEpsilon), via ForEachNeighborAmong over the full
// cell set. `origin`/`side` are the grid anchoring that produced the
// coords. Factored out of BuildGrid so the streaming DynamicCellIndex can
// re-derive adjacency for an incrementally recomposed structure through
// the same code path.
template <int D>
void BuildGridAdjacency(CellStructure<D>& cells,
                        const geometry::Point<D>& origin, double side) {
  const size_t num_cells = cells.num_cells();
  if (num_cells == 0) {  // Empty (streaming) structure: trivial CSR.
    cells.nbr_offsets.assign(1, 0);
    cells.nbrs.clear();
    return;
  }
  std::vector<uint32_t> all(num_cells);
  parallel::parallel_for(0, num_cells,
                         [&](size_t c) { all[c] = static_cast<uint32_t>(c); });
  std::vector<std::vector<uint32_t>> neighbor_lists(num_cells);
  // Positions into `all` are cell ids, so (i, j) is a cell pair directly.
  ForEachNeighborAmong<D>(cells, std::span<const uint32_t>(all), origin, side,
                          [&](size_t i, size_t j) {
                            neighbor_lists[i].push_back(
                                static_cast<uint32_t>(j));
                          });
  FlattenNeighbors(neighbor_lists, cells);
}

// Builds the grid cell structure for `input` with parameter `epsilon`.
// `bounds_hint`, when non-null, skips the reduction pass; its `min` corner
// becomes the grid anchor origin and is the ONLY field read, so any box
// containing `input` is valid. The engine cache passes ComputeBounds of
// the full point set; the sharded build deliberately passes the GLOBAL
// dataset bounds with a shard-subset input so every shard lands on the
// single-index lattice. Do not start reading other fields of the hint
// without revisiting those callers.
template <int D>
CellStructure<D> BuildGrid(std::span<const geometry::Point<D>> input,
                           double epsilon,
                           const geometry::BBox<D>* bounds_hint = nullptr,
                           Metric metric = Metric::kL2) {
  using geometry::BBox;
  using geometry::CellCoords;
  using geometry::Point;

  telemetry::TraceSpan span("build_grid");
  CellStructure<D> cells;
  cells.epsilon = epsilon;
  cells.metric = metric;
  const size_t n = input.size();
  if (n == 0) {
    cells.offsets.push_back(0);
    cells.nbr_offsets.push_back(0);
    return cells;
  }
  const double side = GridSide<D>(epsilon, metric);

  const BBox<D> bounds =
      bounds_hint != nullptr ? *bounds_hint : ComputeBounds<D>(input);
  const Point<D> origin = bounds.min;

  // Semisort (cell coords, point index) pairs: same-cell points end up
  // contiguous in expected O(n) work.
  std::vector<std::pair<CellCoords<D>, uint32_t>> pairs(n);
  parallel::parallel_for(0, n, [&](size_t i) {
    pairs[i] = {geometry::CellOf<D>(input[i], origin, side),
                static_cast<uint32_t>(i)};
  });
  auto grouped = primitives::Semisort<CellCoords<D>, uint32_t>(
      std::span<const std::pair<CellCoords<D>, uint32_t>>(pairs),
      [](const CellCoords<D>& c) { return geometry::HashCellCoords<D>(c); },
      [](const CellCoords<D>& a, const CellCoords<D>& b) { return a == b; });
  pairs.clear();
  pairs.shrink_to_fit();

  const size_t num_cells = grouped.num_groups();
  cells.offsets = std::move(grouped.group_offsets);
  cells.points.resize(n);
  cells.orig_index.resize(n);
  parallel::parallel_for(0, n, [&](size_t i) {
    cells.orig_index[i] = grouped.items[i].second;
    cells.points[i] = input[grouped.items[i].second];
  });
  cells.coords.resize(num_cells);
  cells.cell_boxes.resize(num_cells);
  parallel::parallel_for(0, num_cells, [&](size_t c) {
    cells.coords[c] = grouped.items[cells.offsets[c]].first;
    cells.cell_boxes[c] = geometry::CellBBox<D>(cells.coords[c], origin, side);
  });

  BuildGridAdjacency(cells, origin, side);
  cells.BuildSoALanes();
  return cells;
}

}  // namespace pdbscan::dbscan

#endif  // PDBSCAN_DBSCAN_GRID_H_
