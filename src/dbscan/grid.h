// Grid cell construction — Section 4.1 of the paper.
//
// Points are assigned to cells of side epsilon/sqrt(d) anchored at the
// dataset's bounding-box corner. Grouping points by cell uses *semisort*
// (not a comparison sort), which is the paper's key to O(n) expected work:
// only same-cell grouping matters, not cell ordering. Non-empty cells go
// into a phase-concurrent hash table keyed by integer cell coordinates.
//
// Neighboring cells (cells whose boxes are within epsilon) are found by
// offset enumeration for d <= 3 and, as in Section 5.1, via a parallel k-d
// tree over cell centers for higher dimensions, where enumerating the
// (2 * (floor(sqrt(d)) + 1) + 1)^d candidate offsets is impractical. Both
// paths apply the exact integer criterion
//     sum_i max(0, |delta_i| - 1)^2 <= d
// (equivalent to box distance <= epsilon, since side = epsilon/sqrt(d)).
#ifndef PDBSCAN_DBSCAN_GRID_H_
#define PDBSCAN_DBSCAN_GRID_H_

#include <cmath>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "containers/hash_table.h"
#include "dbscan/cell_structure.h"
#include "geometry/kd_tree.h"
#include "geometry/point.h"
#include "parallel/scheduler.h"
#include "primitives/reduce.h"
#include "primitives/semisort.h"

namespace pdbscan::dbscan {

namespace internal {

// True iff cells at integer offset `delta` can contain points within
// epsilon of each other (side = epsilon / sqrt(D)).
template <int D>
bool OffsetWithinEpsilon(const geometry::CellCoords<D>& delta) {
  int64_t sum = 0;
  for (int i = 0; i < D; ++i) {
    const int64_t gap = std::abs(static_cast<int64_t>(delta[i])) - 1;
    if (gap > 0) sum += gap * gap;
  }
  return sum <= D;
}

// All non-zero offsets satisfying OffsetWithinEpsilon (used for d <= 3).
template <int D>
std::vector<geometry::CellCoords<D>> NeighborOffsets() {
  const int k = 1 + static_cast<int>(std::floor(std::sqrt(double(D))));
  std::vector<geometry::CellCoords<D>> offsets;
  geometry::CellCoords<D> delta{};
  // Odometer enumeration of [-k, k]^D.
  for (int i = 0; i < D; ++i) delta[i] = -k;
  while (true) {
    bool zero = true;
    for (int i = 0; i < D; ++i) zero = zero && delta[i] == 0;
    if (!zero && OffsetWithinEpsilon<D>(delta)) offsets.push_back(delta);
    int dim = D - 1;
    while (dim >= 0 && delta[dim] == k) {
      delta[dim] = -k;
      --dim;
    }
    if (dim < 0) break;
    ++delta[dim];
  }
  return offsets;
}

template <int D>
struct CellCoordsHash {
  uint64_t operator()(const geometry::CellCoords<D>& c) const {
    return geometry::HashCellCoords<D>(c);
  }
};

template <int D>
struct CellCoordsEq {
  bool operator()(const geometry::CellCoords<D>& a,
                  const geometry::CellCoords<D>& b) const {
    return a == b;
  }
};

}  // namespace internal

// Bounding box of `input` (parallel reduce). The grid anchors its cells at
// bounds.min; the result is epsilon-independent, so the DbscanEngine caches
// it across epsilon changes and passes it back via the BuildGrid overload.
template <int D>
geometry::BBox<D> ComputeBounds(std::span<const geometry::Point<D>> input) {
  using geometry::BBox;
  return primitives::ReduceIndex(
      size_t{0}, input.size(), BBox<D>::Empty(),
      [&](size_t i) {
        BBox<D> b = BBox<D>::Empty();
        b.Extend(input[i]);
        return b;
      },
      [](BBox<D> a, const BBox<D>& b) {
        a.Extend(b);
        return a;
      });
}

// The epsilon-grid cell side for dimension D (cells of diameter <= epsilon).
template <int D>
double GridSide(double epsilon) {
  return epsilon / std::sqrt(double(D));
}

// Invokes emit(i, j) for every ordered pair of positions i != j into `ids`
// such that cells ids[i] and ids[j] can contain points within epsilon of
// each other (the exact integer criterion of OffsetWithinEpsilon over
// cells.coords). Offset enumeration probing a hash table for d <= 3, a k-d
// tree over the cells' centers for higher d (Section 5.1). The loop over i
// is a parallel_for: emit must tolerate concurrent calls with distinct i
// (all calls for one i are serial, in deterministic order).
// `origin`/`side` are the grid anchoring that produced the coords. This is
// the ONE place the neighbor criterion and its dimension dispatch live —
// shared by BuildGridAdjacency (ids = every cell) and the sharded
// boundary merge (ids = seam cells only), so the two cannot diverge.
template <int D, typename Emit>
void ForEachNeighborAmong(const CellStructure<D>& cells,
                          std::span<const uint32_t> ids,
                          const geometry::Point<D>& origin, double side,
                          Emit&& emit) {
  using geometry::BBox;
  using geometry::CellCoords;
  using geometry::Point;
  if (ids.empty()) return;
  if constexpr (D <= 3) {
    // Hash table over the candidate cells: coords -> position in `ids`.
    containers::ConcurrentMap<CellCoords<D>, uint32_t,
                              internal::CellCoordsHash<D>,
                              internal::CellCoordsEq<D>>
        table(ids.size());
    parallel::parallel_for(0, ids.size(), [&](size_t i) {
      table.Insert(cells.coords[ids[i]], static_cast<uint32_t>(i));
    });
    // Function-local static pointer: computed once, never destroyed.
    static const auto* const kOffsets =
        new std::vector<CellCoords<D>>(internal::NeighborOffsets<D>());
    parallel::parallel_for(0, ids.size(), [&](size_t i) {
      for (const CellCoords<D>& delta : *kOffsets) {
        CellCoords<D> probe = cells.coords[ids[i]];
        for (int a = 0; a < D; ++a) probe[a] += delta[a];
        const uint32_t* j = table.Find(probe);
        if (j != nullptr) emit(i, static_cast<size_t>(*j));
      }
    });
  } else {
    // k-d tree over the candidate cells' centers (Section 5.1).
    const int k = 1 + static_cast<int>(std::floor(std::sqrt(double(D))));
    std::vector<Point<D>> centers(ids.size());
    parallel::parallel_for(0, ids.size(), [&](size_t i) {
      for (int a = 0; a < D; ++a) {
        centers[i][a] = origin[a] + side * (cells.coords[ids[i]][a] + 0.5);
      }
    });
    geometry::KdTree<D> tree{std::span<const Point<D>>(centers)};
    parallel::parallel_for(0, ids.size(), [&](size_t i) {
      BBox<D> query;
      for (int a = 0; a < D; ++a) {
        query.min[a] = centers[i][a] - (k + 0.5) * side;
        query.max[a] = centers[i][a] + (k + 0.5) * side;
      }
      tree.ForEachInBox(query, [&](uint32_t other) {
        if (other == i) return true;
        CellCoords<D> delta;
        for (int a = 0; a < D; ++a) {
          delta[a] =
              cells.coords[ids[other]][a] - cells.coords[ids[i]][a];
        }
        if (internal::OffsetWithinEpsilon<D>(delta)) {
          emit(i, static_cast<size_t>(other));
        }
        return true;
      });
    });
  }
}

// Fills the CSR neighbor adjacency of `cells` from cells.coords: for every
// cell, all other cells whose boxes are within epsilon (the exact integer
// criterion of OffsetWithinEpsilon), via ForEachNeighborAmong over the full
// cell set. `origin`/`side` are the grid anchoring that produced the
// coords. Factored out of BuildGrid so the streaming DynamicCellIndex can
// re-derive adjacency for an incrementally recomposed structure through
// the same code path.
template <int D>
void BuildGridAdjacency(CellStructure<D>& cells,
                        const geometry::Point<D>& origin, double side) {
  const size_t num_cells = cells.num_cells();
  if (num_cells == 0) {  // Empty (streaming) structure: trivial CSR.
    cells.nbr_offsets.assign(1, 0);
    cells.nbrs.clear();
    return;
  }
  std::vector<uint32_t> all(num_cells);
  parallel::parallel_for(0, num_cells,
                         [&](size_t c) { all[c] = static_cast<uint32_t>(c); });
  std::vector<std::vector<uint32_t>> neighbor_lists(num_cells);
  // Positions into `all` are cell ids, so (i, j) is a cell pair directly.
  ForEachNeighborAmong<D>(cells, std::span<const uint32_t>(all), origin, side,
                          [&](size_t i, size_t j) {
                            neighbor_lists[i].push_back(
                                static_cast<uint32_t>(j));
                          });
  FlattenNeighbors(neighbor_lists, cells);
}

// Builds the grid cell structure for `input` with parameter `epsilon`.
// `bounds_hint`, when non-null, skips the reduction pass; its `min` corner
// becomes the grid anchor origin and is the ONLY field read, so any box
// containing `input` is valid. The engine cache passes ComputeBounds of
// the full point set; the sharded build deliberately passes the GLOBAL
// dataset bounds with a shard-subset input so every shard lands on the
// single-index lattice. Do not start reading other fields of the hint
// without revisiting those callers.
template <int D>
CellStructure<D> BuildGrid(std::span<const geometry::Point<D>> input,
                           double epsilon,
                           const geometry::BBox<D>* bounds_hint = nullptr) {
  using geometry::BBox;
  using geometry::CellCoords;
  using geometry::Point;

  CellStructure<D> cells;
  cells.epsilon = epsilon;
  const size_t n = input.size();
  if (n == 0) {
    cells.offsets.push_back(0);
    cells.nbr_offsets.push_back(0);
    return cells;
  }
  const double side = GridSide<D>(epsilon);

  const BBox<D> bounds =
      bounds_hint != nullptr ? *bounds_hint : ComputeBounds<D>(input);
  const Point<D> origin = bounds.min;

  // Semisort (cell coords, point index) pairs: same-cell points end up
  // contiguous in expected O(n) work.
  std::vector<std::pair<CellCoords<D>, uint32_t>> pairs(n);
  parallel::parallel_for(0, n, [&](size_t i) {
    pairs[i] = {geometry::CellOf<D>(input[i], origin, side),
                static_cast<uint32_t>(i)};
  });
  auto grouped = primitives::Semisort<CellCoords<D>, uint32_t>(
      std::span<const std::pair<CellCoords<D>, uint32_t>>(pairs),
      [](const CellCoords<D>& c) { return geometry::HashCellCoords<D>(c); },
      [](const CellCoords<D>& a, const CellCoords<D>& b) { return a == b; });
  pairs.clear();
  pairs.shrink_to_fit();

  const size_t num_cells = grouped.num_groups();
  cells.offsets = std::move(grouped.group_offsets);
  cells.points.resize(n);
  cells.orig_index.resize(n);
  parallel::parallel_for(0, n, [&](size_t i) {
    cells.orig_index[i] = grouped.items[i].second;
    cells.points[i] = input[grouped.items[i].second];
  });
  cells.coords.resize(num_cells);
  cells.cell_boxes.resize(num_cells);
  parallel::parallel_for(0, num_cells, [&](size_t c) {
    cells.coords[c] = grouped.items[cells.offsets[c]].first;
    cells.cell_boxes[c] = geometry::CellBBox<D>(cells.coords[c], origin, side);
  });

  BuildGridAdjacency(cells, origin, side);
  cells.BuildSoALanes();
  return cells;
}

}  // namespace pdbscan::dbscan

#endif  // PDBSCAN_DBSCAN_GRID_H_
