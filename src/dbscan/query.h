// The per-query half of Algorithm 1: from saturated neighbor counts to a
// finished Clustering (core flags -> cell-graph connectivity -> border
// assignment -> deterministic relabeling).
//
// This is the code both query surfaces execute, which is what makes their
// results bit-identical:
//
//   * DbscanEngine (engine.h) — single-threaded, owns a mutable CellSource
//     and re-runs this pipeline against its own cached counts;
//   * QueryContext (cell_index.h) — one per serving thread, runs this
//     pipeline against a frozen shared CellIndex. The CellIndex may itself
//     be a full build or a streaming snapshot published by
//     streaming::DynamicCellIndex — the pipeline only sees (cells, counts),
//     so it runs off any snapshot unchanged.
//
// Everything here reads `cells` and `counts` as const and writes only into
// the caller's Workspace and stats sink, so any number of calls may run
// concurrently against the same cell structure as long as each call has its
// own Workspace and (if per-client attribution matters) its own
// PipelineStats.
#ifndef PDBSCAN_DBSCAN_QUERY_H_
#define PDBSCAN_DBSCAN_QUERY_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "dbscan/cell_structure.h"
#include "dbscan/cluster_border.h"
#include "dbscan/cluster_core.h"
#include "dbscan/mark_core.h"
#include "dbscan/stats.h"
#include "dbscan/types.h"
#include "dbscan/workspace.h"
#include "parallel/scheduler.h"
#include "telemetry/trace.h"
#include "util/timer.h"

namespace pdbscan::dbscan {

namespace internal {

// Relabels union-find roots to consecutive cluster ids, assigned by the
// first appearance in the caller's point order, and assembles the public
// Clustering. `point_roots` holds, for each reordered position, the sorted
// list of root cells the point belongs to (one entry for core points,
// possibly several for border points, none for noise). Scratch lives in
// `ws`; the returned Clustering owns fresh storage.
template <int D>
Clustering Finalize(const CellStructure<D>& cells,
                    const std::vector<uint8_t>& core_flags,
                    const std::vector<std::vector<uint32_t>>& point_roots,
                    Workspace<D>& ws) {
  const size_t n = cells.num_points();
  Clustering out;
  out.cluster.assign(n, Clustering::kNoise);
  out.is_core.assign(n, 0);
  out.membership_offsets.assign(n + 1, 0);

  // Gather per-original-index membership lists.
  ws.by_orig.assign(n, nullptr);
  parallel::parallel_for(0, n, [&](size_t i) {
    const uint32_t orig = cells.orig_index[i];
    ws.by_orig[orig] = &point_roots[i];
    out.is_core[orig] = core_flags[i];
  });

  // First-appearance relabeling (serial, O(n + memberships)).
  ws.root_to_id.assign(cells.num_cells(), -1);
  int64_t next_id = 0;
  size_t total_memberships = 0;
  for (size_t i = 0; i < n; ++i) {
    for (const uint32_t root : *ws.by_orig[i]) {
      if (ws.root_to_id[root] < 0) ws.root_to_id[root] = next_id++;
      ++total_memberships;
    }
  }
  out.num_clusters = static_cast<size_t>(next_id);

  for (size_t i = 0; i < n; ++i) {
    out.membership_offsets[i + 1] =
        out.membership_offsets[i] + ws.by_orig[i]->size();
  }
  out.membership_ids.resize(total_memberships);
  parallel::parallel_for(0, n, [&](size_t i) {
    size_t w = out.membership_offsets[i];
    for (const uint32_t root : *ws.by_orig[i]) {
      out.membership_ids[w++] = ws.root_to_id[root];
    }
    auto begin = out.membership_ids.begin() + out.membership_offsets[i];
    auto end = out.membership_ids.begin() + out.membership_offsets[i + 1];
    std::sort(begin, end);
    if (begin != end) out.cluster[i] = *begin;
  });
  return out;
}

}  // namespace internal

// Lines 3-5 of Algorithm 1 from precomputed saturated neighbor counts, plus
// finalization. `neighbor_counts` must have been computed over `cells` with
// a cap >= min_pts (MarkCoreCounts); it may live in `ws` (the engine's
// cached counts) or in a shared CellIndex — it is only read. The result is
// a deterministic function of (cells, counts, min_pts, options), so every
// caller with equal inputs produces bit-identical clusterings.
template <int D>
Clustering RunQueryFromCounts(const CellStructure<D>& cells,
                              std::span<const uint32_t> neighbor_counts,
                              size_t min_pts, const Options& options,
                              Workspace<D>& ws, PipelineStats& stats) {
  util::Timer timer;
  {
    telemetry::TraceSpan span("mark_core");
    CoreFlagsFromCounts(neighbor_counts, min_pts, ws.core_flags);
  }
  const CoreIndex core = BuildCoreIndex(cells, ws.core_flags);
  AddSeconds(stats.mark_core_seconds, timer.Seconds());

  timer.Reset();
  {
    telemetry::TraceSpan span("cluster_core");
    ws.uf.Reset(cells.num_cells());
    ClusterCore(cells, core, options, ws.uf, stats);
  }
  AddSeconds(stats.cluster_core_seconds, timer.Seconds());

  timer.Reset();
  {
    telemetry::TraceSpan span("cluster_border");
    if (options.core_only) {
      // DBSCAN*: clusters consist of core points only.
      ws.point_roots.resize(cells.num_points());
      parallel::parallel_for(0, ws.point_roots.size(),
                             [&](size_t i) { ws.point_roots[i].clear(); });
    } else {
      ClusterBorderInto(cells, ws.core_flags, core, min_pts, ws.uf,
                        ws.point_roots);
    }
    // Core points belong to exactly their cell's component.
    parallel::parallel_for(
        0, cells.num_cells(),
        [&](size_t c) {
          if (!core.cell_is_core[c]) return;
          const uint32_t root = static_cast<uint32_t>(ws.uf.Find(c));
          for (const uint32_t pos : core.core_of(c)) {
            ws.point_roots[pos].assign(1, root);
          }
        },
        1);
  }
  AddSeconds(stats.cluster_border_seconds, timer.Seconds());

  timer.Reset();
  Clustering out = [&]() {
    telemetry::TraceSpan span("finalize");
    return internal::Finalize(cells, ws.core_flags, ws.point_roots, ws);
  }();
  AddSeconds(stats.finalize_seconds, timer.Seconds());
  return out;
}

// Shared min_pts-sweep driver: rejects zero settings, computes cap =
// max(list), obtains (cells, counts valid up to cap) once from
// `provide(cap)`, then answers every setting via RunQueryFromCounts. Both
// sweep surfaces — DbscanEngine::Sweep (engine-cached counts) and
// QueryContext::Sweep (shared-index or private counts) — are thin wrappers
// over this, so sweep validation and cap policy cannot diverge.
template <int D, typename Provider>
std::vector<Clustering> SweepFromCounts(std::span<const size_t> minpts_list,
                                        const Options& options,
                                        Workspace<D>& ws,
                                        PipelineStats& stats,
                                        Provider&& provide) {
  std::vector<Clustering> out;
  out.reserve(minpts_list.size());
  if (minpts_list.empty()) return out;
  size_t cap = 0;
  for (const size_t m : minpts_list) {
    if (m == 0) throw std::invalid_argument("min_pts must be positive");
    cap = std::max(cap, m);
  }
  const std::pair<const CellStructure<D>&, std::span<const uint32_t>> cc =
      provide(cap);
  for (const size_t m : minpts_list) {
    out.push_back(RunQueryFromCounts(cc.first, cc.second, m, options, ws,
                                     stats));
  }
  return out;
}

}  // namespace pdbscan::dbscan

#endif  // PDBSCAN_DBSCAN_QUERY_H_
