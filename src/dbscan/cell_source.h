// Unified cell-source layer: one code path producing the CellStructure for
// every cell construction (grid for any d, box for 2D), with two levels of
// caching for the DbscanEngine:
//
//   * epsilon-independent layout — the dataset bounding box (grid anchor)
//     and the (x, y, id)-sorted point order (box strips) are computed once
//     per point set and reused across epsilon changes;
//   * the built CellStructure itself, plus the per-cell quadtrees consumed
//     by the kQuadtree range-count path, keyed on epsilon — reused outright
//     when epsilon is unchanged (min_pts sweeps).
//
// Ownership model: a CellSource is the *mutable* half of cell construction
// and belongs to exactly one DbscanEngine (one thread). The *frozen* half is
// CellIndex (cell_index.h), which runs the same builders once and then only
// serves const reads — that is what concurrent QueryContexts share. Build /
// reuse events are recorded in the owner's stats sink (cells_built /
// cells_reused, default GlobalStats()), which is how tests assert that a
// sweep builds cells once.
#ifndef PDBSCAN_DBSCAN_CELL_SOURCE_H_
#define PDBSCAN_DBSCAN_CELL_SOURCE_H_

#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "dbscan/box_cells.h"
#include "dbscan/cell_structure.h"
#include "dbscan/grid.h"
#include "dbscan/mark_core.h"
#include "dbscan/stats.h"
#include "dbscan/types.h"
#include "geometry/point.h"
#include "geometry/quadtree.h"
#include "telemetry/trace.h"

namespace pdbscan::dbscan {

template <int D>
class CellSource {
 public:
  // Selects the sink for build/reuse counters; nullptr restores the
  // process-wide GlobalStats().
  void set_stats(PipelineStats* stats) {
    stats_ = stats != nullptr ? stats : &GlobalStats();
  }

  // Points the source at a (caller-owned) point set; drops every cache.
  // `metric` selects the distance the cells are built for (grid method
  // only; the 2D box method is Euclidean).
  void Reset(std::span<const geometry::Point<D>> points, CellMethod method,
             Metric metric = Metric::kL2) {
    points_ = points;
    method_ = method;
    metric_ = metric;
    bounds_valid_ = false;
    x_order_valid_ = false;
    cells_valid_ = false;
    trees_valid_ = false;
  }

  // Returns the cell structure for `epsilon`, rebuilding only when epsilon
  // changed (or the point set was reset). Layout caches survive rebuilds.
  const CellStructure<D>& Acquire(double epsilon) {
    auto& stats = *stats_;
    if (cells_valid_ && built_epsilon_ == epsilon) {
      stats.cells_reused.fetch_add(1, std::memory_order_relaxed);
      return cells_;
    }
    if (method_ == CellMethod::kBox) {
      if constexpr (D == 2) {
        if (!x_order_valid_) {
          x_order_ = BoxSortByX(points_);
          x_order_valid_ = true;
        }
        cells_ = BuildBoxCells(
            points_, epsilon,
            std::span<const uint32_t>(x_order_.data(), x_order_.size()));
      } else {
        throw std::invalid_argument("the box cell method is 2D only");
      }
    } else {
      if (!bounds_valid_) {
        bounds_ = ComputeBounds<D>(points_);
        bounds_valid_ = true;
      }
      cells_ = BuildGrid<D>(points_, epsilon, &bounds_, metric_);
    }
    built_epsilon_ = epsilon;
    cells_valid_ = true;
    trees_valid_ = false;
    ++generation_;
    stats.cells_built.fetch_add(1, std::memory_order_relaxed);
    return cells_;
  }

  // Adopts an externally built structure (the streaming incremental path:
  // DynamicCellIndex recomposes cells itself and hands them over here so a
  // CellIndex can freeze them). Drops the layout caches and any quadtrees —
  // the incremental path serves the kScan range-count method, whose counts
  // travel alongside the structure rather than being derived from trees.
  void AdoptPrebuilt(CellStructure<D>&& cells) {
    points_ = std::span<const geometry::Point<D>>();
    cells_ = std::move(cells);
    built_epsilon_ = cells_.epsilon;
    cells_valid_ = true;
    trees_valid_ = false;
    trees_.clear();
    bounds_valid_ = false;
    x_order_valid_ = false;
    ++generation_;
  }

  // Per-cell quadtrees over the current cell structure (kQuadtree range
  // counting), built lazily and cached until the cells are rebuilt. Only
  // valid after Acquire.
  const std::vector<std::unique_ptr<geometry::CellQuadtree<D>>>&
  AcquireQuadtrees() {
    if (!trees_valid_) {
      telemetry::TraceSpan span("build_quadtrees");
      trees_ = BuildCellQuadtrees(cells_);
      trees_valid_ = true;
    }
    return trees_;
  }

  // The current cell structure without touching the reuse counters; only
  // valid after Acquire.
  const CellStructure<D>& cells() const { return cells_; }

  // The current quadtrees without (re)building: non-empty only after
  // AcquireQuadtrees for the current cell structure.
  const std::vector<std::unique_ptr<geometry::CellQuadtree<D>>>& quadtrees()
      const {
    return trees_valid_ ? trees_ : kNoTrees();
  }

  bool has_cells() const { return cells_valid_; }
  double built_epsilon() const { return built_epsilon_; }

  // Incremented on every rebuild; consumers (the engine's neighbor-count
  // cache) key their own validity on it.
  size_t generation() const { return generation_; }

 private:
  static const std::vector<std::unique_ptr<geometry::CellQuadtree<D>>>&
  kNoTrees() {
    static const std::vector<std::unique_ptr<geometry::CellQuadtree<D>>>
        empty;
    return empty;
  }

  std::span<const geometry::Point<D>> points_;
  CellMethod method_ = CellMethod::kGrid;
  Metric metric_ = Metric::kL2;
  PipelineStats* stats_ = &GlobalStats();

  // Epsilon-independent layout caches.
  bool bounds_valid_ = false;
  geometry::BBox<D> bounds_;
  bool x_order_valid_ = false;
  std::vector<uint32_t> x_order_;

  // Built structure cache, keyed on epsilon.
  bool cells_valid_ = false;
  double built_epsilon_ = 0;
  CellStructure<D> cells_;
  bool trees_valid_ = false;
  std::vector<std::unique_ptr<geometry::CellQuadtree<D>>> trees_;
  size_t generation_ = 0;
};

}  // namespace pdbscan::dbscan

#endif  // PDBSCAN_DBSCAN_CELL_SOURCE_H_
