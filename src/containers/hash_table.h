// Phase-concurrent linear-probing hash table — Table 1: n inserts or queries
// in O(n) work and O(log n) depth w.h.p. [42], modeled on the
// phase-concurrent table of Shun & Blelloch [81]: an atomic update claims an
// empty slot in the probe sequence, and probing continues if the update
// fails.
//
// "Phase-concurrent" means inserts and finds happen in separate phases
// (build the table of non-empty cells, then query it), which is exactly the
// DBSCAN usage. Finds racing with inserts are still safe here: a reader
// observing a slot mid-claim spins until the writer publishes.
//
// The table has fixed capacity (the number of non-empty cells is known
// before construction) and does not support deletion.
#ifndef PDBSCAN_CONTAINERS_HASH_TABLE_H_
#define PDBSCAN_CONTAINERS_HASH_TABLE_H_

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace pdbscan::containers {

template <typename K, typename V, typename HashF, typename EqF>
class ConcurrentMap {
 public:
  // Creates a table able to hold up to `max_elements` distinct keys.
  explicit ConcurrentMap(size_t max_elements, HashF hash = HashF(),
                         EqF eq = EqF())
      : hash_(hash), eq_(eq) {
    capacity_ = 16;
    while (capacity_ < 2 * max_elements) capacity_ *= 2;
    mask_ = capacity_ - 1;
    slots_ = std::make_unique<Slot[]>(capacity_);
    for (size_t i = 0; i < capacity_; ++i) {
      slots_[i].state.store(kEmpty, std::memory_order_relaxed);
    }
  }

  // Inserts (key, value). Returns true if inserted, false if the key was
  // already present (the existing value is kept). Thread-safe against other
  // Inserts.
  bool Insert(const K& key, const V& value) {
    size_t i = hash_(key) & mask_;
    while (true) {
      Slot& slot = slots_[i];
      uint8_t state = slot.state.load(std::memory_order_acquire);
      if (state == kEmpty) {
        uint8_t expected = kEmpty;
        if (slot.state.compare_exchange_strong(expected, kClaimed,
                                               std::memory_order_acq_rel,
                                               std::memory_order_acquire)) {
          slot.key = key;
          slot.value = value;
          slot.state.store(kFull, std::memory_order_release);
          size_.fetch_add(1, std::memory_order_relaxed);
          return true;
        }
        state = expected;  // Lost the race; fall through to re-examine.
      }
      while (state == kClaimed) {
        state = slot.state.load(std::memory_order_acquire);
      }
      // state == kFull here.
      if (eq_(slot.key, key)) return false;
      i = (i + 1) & mask_;
    }
  }

  // Returns a pointer to the value for `key`, or nullptr if absent. Safe to
  // call concurrently with Inserts (spins past slots being claimed).
  const V* Find(const K& key) const {
    size_t i = hash_(key) & mask_;
    while (true) {
      const Slot& slot = slots_[i];
      uint8_t state = slot.state.load(std::memory_order_acquire);
      if (state == kEmpty) return nullptr;
      while (state == kClaimed) {
        state = slot.state.load(std::memory_order_acquire);
      }
      if (eq_(slot.key, key)) return &slot.value;
      i = (i + 1) & mask_;
    }
  }

  V* Find(const K& key) {
    return const_cast<V*>(static_cast<const ConcurrentMap*>(this)->Find(key));
  }

  // Number of keys currently stored.
  size_t size() const { return size_.load(std::memory_order_acquire); }

  size_t capacity() const { return capacity_; }

  // Calls f(key, value) for every occupied slot. Only meaningful once all
  // inserts have completed. Iteration order is unspecified.
  template <typename F>
  void ForEach(F&& f) const {
    for (size_t i = 0; i < capacity_; ++i) {
      if (slots_[i].state.load(std::memory_order_acquire) == kFull) {
        f(slots_[i].key, slots_[i].value);
      }
    }
  }

 private:
  static constexpr uint8_t kEmpty = 0;
  static constexpr uint8_t kClaimed = 1;
  static constexpr uint8_t kFull = 2;

  struct Slot {
    std::atomic<uint8_t> state;
    K key;
    V value;
  };

  std::unique_ptr<Slot[]> slots_;
  size_t capacity_ = 0;
  size_t mask_ = 0;
  std::atomic<size_t> size_{0};
  HashF hash_;
  EqF eq_;
};

}  // namespace pdbscan::containers

#endif  // PDBSCAN_CONTAINERS_HASH_TABLE_H_
