// FlatArray — a contiguous array that either OWNS its elements (vector
// semantics, used by every builder) or VIEWS a caller-kept-alive buffer
// (used by the persistence layer to serve a CellStructure directly out of
// an mmap'ed snapshot with zero copies).
//
// The two states exist because the DBSCAN pipeline has exactly two phases
// with different needs: builders (BuildGrid, BuildBoxCells, the streaming
// recomposition, the sharded merge) mutate arrays freely, while the frozen
// serving structures (CellIndex) only ever read them. An owning FlatArray
// behaves like std::vector for the subset of the API the builders use; a
// viewing FlatArray is the same bytes without the copy — the reader of a
// mapped snapshot points each array at the file mapping and the query
// pipeline cannot tell the difference (it only reads data()/size()).
//
// Mutating a view is defined but deliberately expensive: the first mutation
// materializes a private owned copy (copy-on-write). Builders never operate
// on views, so in practice this path only guards against misuse; it keeps
// every vector-style call site valid without sprinkling "is this a view?"
// checks through the builders.
//
// Lifetime: a view does NOT keep its buffer alive. The owner of the
// structure holding views must pin the backing storage (CellIndex holds the
// snapshot mapping via a payload shared_ptr; see dbscan/cell_index.h).
#ifndef PDBSCAN_CONTAINERS_FLAT_ARRAY_H_
#define PDBSCAN_CONTAINERS_FLAT_ARRAY_H_

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

namespace pdbscan::containers {

template <typename T>
class FlatArray {
 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  FlatArray() = default;
  FlatArray(const FlatArray& o) { *this = o; }
  FlatArray(FlatArray&& o) noexcept { *this = std::move(o); }

  // Owning construction/assignment from a vector (the builders' path).
  FlatArray(std::vector<T>&& v) : owned_(std::move(v)), view_(nullptr) {}
  FlatArray& operator=(std::vector<T>&& v) {
    owned_ = std::move(v);
    view_ = nullptr;
    view_size_ = 0;
    return *this;
  }

  // Non-owning view of `size` elements at `data`; the caller keeps the
  // buffer alive and unchanged for the view's lifetime.
  static FlatArray View(const T* data, size_t size) {
    FlatArray a;
    a.view_ = data;
    a.view_size_ = size;
    return a;
  }

  FlatArray& operator=(const FlatArray& o) {
    if (this == &o) return *this;
    // Copying a view yields an equivalent view (same lifetime contract);
    // copying an owner deep-copies.
    owned_ = o.owned_;
    view_ = o.view_;
    view_size_ = o.view_size_;
    return *this;
  }

  FlatArray& operator=(FlatArray&& o) noexcept {
    owned_ = std::move(o.owned_);
    view_ = o.view_;
    view_size_ = o.view_size_;
    o.view_ = nullptr;
    o.view_size_ = 0;
    return *this;
  }

  bool is_view() const { return view_ != nullptr; }

  const T* data() const { return view_ != nullptr ? view_ : owned_.data(); }
  size_t size() const { return view_ != nullptr ? view_size_ : owned_.size(); }
  bool empty() const { return size() == 0; }

  const T& operator[](size_t i) const { return data()[i]; }
  const T& front() const { return data()[0]; }
  const T& back() const { return data()[size() - 1]; }
  const_iterator begin() const { return data(); }
  const_iterator end() const { return data() + size(); }

  // FlatArray models std::ranges::contiguous_range (pointer iterators +
  // size()), so it converts to std::span<const T> through span's range
  // constructor wherever a span parameter is expected; span() is the
  // explicit spelling.
  std::span<const T> span() const { return std::span<const T>(data(), size()); }

  // --- Mutating API (vector subset). Materializes a view first. ----------
  T* data() {
    EnsureOwned();
    return owned_.data();
  }
  T& operator[](size_t i) {
    // Hot path of every builder: owned already, no copy, just the branch.
    EnsureOwned();
    return owned_[i];
  }
  iterator begin() {
    EnsureOwned();
    return owned_.data();
  }
  iterator end() {
    EnsureOwned();
    return owned_.data() + owned_.size();
  }
  void resize(size_t n) {
    EnsureOwned();
    owned_.resize(n);
  }
  void assign(size_t n, const T& v) {
    owned_.assign(n, v);
    view_ = nullptr;
    view_size_ = 0;
  }
  void clear() {
    owned_.clear();
    view_ = nullptr;
    view_size_ = 0;
  }
  void reserve(size_t n) {
    EnsureOwned();
    owned_.reserve(n);
  }
  void push_back(const T& v) {
    EnsureOwned();
    owned_.push_back(v);
  }

  friend bool operator==(const FlatArray& a, const FlatArray& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }

 private:
  void EnsureOwned() {
    if (view_ == nullptr) return;
    owned_.assign(view_, view_ + view_size_);
    view_ = nullptr;
    view_size_ = 0;
  }

  std::vector<T> owned_;
  const T* view_ = nullptr;
  size_t view_size_ = 0;
};

}  // namespace pdbscan::containers

#endif  // PDBSCAN_CONTAINERS_FLAT_ARRAY_H_
