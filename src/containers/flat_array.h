// FlatArray — a contiguous array that either OWNS its elements (vector
// semantics, used by every builder) or VIEWS a caller-kept-alive buffer
// (used by the persistence layer to serve a CellStructure directly out of
// an mmap'ed snapshot with zero copies).
//
// The two states exist because the DBSCAN pipeline has exactly two phases
// with different needs: builders (BuildGrid, BuildBoxCells, the streaming
// recomposition, the sharded merge) mutate arrays freely, while the frozen
// serving structures (CellIndex) only ever read them. An owning FlatArray
// behaves like std::vector for the subset of the API the builders use; a
// viewing FlatArray is the same bytes without the copy — the reader of a
// mapped snapshot points each array at the file mapping and the query
// pipeline cannot tell the difference (it only reads data()/size()).
//
// Two extensions serve the SIMD kernel layer (src/kernels/):
//   * AllocateAligned(n) puts owned storage on a 64-byte boundary, so SoA
//     coordinate lanes start cache-line- (and AVX-512-vector-) aligned.
//   * StridedView(data, size, stride) views every stride-th element of a
//     caller-pinned buffer. This is how a mapped snapshot serves SoA lanes
//     without materializing them: lane d of D-dimensional points is a view
//     of the mapped AoS point array at offset d with stride D. Strided
//     arrays support data()/size()/stride()/operator[] and comparison;
//     begin()/end()/span() require stride() == 1.
//
// Mutating a view is defined but deliberately expensive: the first mutation
// materializes a private owned copy (copy-on-write, gathering strided
// elements). Builders never operate on views, so in practice this path only
// guards against misuse; it keeps every vector-style call site valid
// without sprinkling "is this a view?" checks through the builders. The
// same applies to vector-style mutation of aligned storage (it degrades to
// an ordinary vector); aligned buffers are written through the pointer
// AllocateAligned returns.
//
// Lifetime: a view does NOT keep its buffer alive. The owner of the
// structure holding views must pin the backing storage (CellIndex holds the
// snapshot mapping via a payload shared_ptr; see dbscan/cell_index.h).
#ifndef PDBSCAN_CONTAINERS_FLAT_ARRAY_H_
#define PDBSCAN_CONTAINERS_FLAT_ARRAY_H_

#include <cstddef>
#include <cstdlib>
#include <memory>
#include <new>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

namespace pdbscan::containers {

template <typename T>
class FlatArray {
 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  // Alignment of AllocateAligned storage: one cache line, which is also
  // the widest vector the kernels load (64 bytes = 8 doubles = __m512d).
  static constexpr size_t kAlignment = 64;

  FlatArray() = default;
  FlatArray(const FlatArray& o) { *this = o; }
  FlatArray(FlatArray&& o) noexcept { *this = std::move(o); }

  // Owning construction/assignment from a vector (the builders' path).
  FlatArray(std::vector<T>&& v) : owned_(std::move(v)) {}
  FlatArray& operator=(std::vector<T>&& v) {
    owned_ = std::move(v);
    aligned_.reset();
    aligned_size_ = 0;
    view_ = nullptr;
    view_size_ = 0;
    view_stride_ = 1;
    return *this;
  }

  // Non-owning view of `size` elements at `data`; the caller keeps the
  // buffer alive and unchanged for the view's lifetime.
  static FlatArray View(const T* data, size_t size) {
    return StridedView(data, size, 1);
  }

  // Non-owning view of `size` elements spaced `stride` apart: element i is
  // data[i * stride]. Same lifetime contract as View().
  static FlatArray StridedView(const T* data, size_t size, size_t stride) {
    FlatArray a;
    a.view_ = data;
    a.view_size_ = size;
    a.view_stride_ = stride == 0 ? 1 : stride;
    return a;
  }

  // Replaces the contents with an owned, uninitialized, kAlignment-aligned
  // buffer of `n` elements and returns its mutable base pointer (nullptr
  // when n == 0). The caller fills all n elements.
  T* AllocateAligned(size_t n) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "aligned storage is for trivially copyable elements");
    owned_.clear();
    view_ = nullptr;
    view_size_ = 0;
    view_stride_ = 1;
    aligned_.reset();
    aligned_size_ = 0;
    if (n == 0) return nullptr;
    // aligned_alloc requires the byte size to be a multiple of alignment.
    const size_t bytes = (n * sizeof(T) + kAlignment - 1) / kAlignment *
                         kAlignment;
    aligned_.reset(static_cast<T*>(std::aligned_alloc(kAlignment, bytes)));
    if (aligned_ == nullptr) throw std::bad_alloc();
    aligned_size_ = n;
    return aligned_.get();
  }

  FlatArray& operator=(const FlatArray& o) {
    if (this == &o) return *this;
    // Copying a view yields an equivalent view (same lifetime contract);
    // copying an owner deep-copies (preserving alignment).
    if (o.aligned_ != nullptr) {
      T* dst = AllocateAligned(o.aligned_size_);
      for (size_t i = 0; i < o.aligned_size_; ++i) dst[i] = o.aligned_.get()[i];
      return *this;
    }
    owned_ = o.owned_;
    aligned_.reset();
    aligned_size_ = 0;
    view_ = o.view_;
    view_size_ = o.view_size_;
    view_stride_ = o.view_stride_;
    return *this;
  }

  FlatArray& operator=(FlatArray&& o) noexcept {
    owned_ = std::move(o.owned_);
    aligned_ = std::move(o.aligned_);
    aligned_size_ = o.aligned_size_;
    view_ = o.view_;
    view_size_ = o.view_size_;
    view_stride_ = o.view_stride_;
    o.aligned_size_ = 0;
    o.view_ = nullptr;
    o.view_size_ = 0;
    o.view_stride_ = 1;
    return *this;
  }

  bool is_view() const { return view_ != nullptr; }
  bool is_aligned() const { return aligned_ != nullptr; }

  // Element stride of data(): 1 except for StridedView arrays.
  size_t stride() const { return view_ != nullptr ? view_stride_ : 1; }
  bool contiguous() const { return stride() == 1; }

  const T* data() const {
    if (view_ != nullptr) return view_;
    if (aligned_ != nullptr) return aligned_.get();
    return owned_.data();
  }
  size_t size() const {
    if (view_ != nullptr) return view_size_;
    if (aligned_ != nullptr) return aligned_size_;
    return owned_.size();
  }
  bool empty() const { return size() == 0; }

  const T& operator[](size_t i) const { return data()[i * stride()]; }
  const T& front() const { return (*this)[0]; }
  const T& back() const { return (*this)[size() - 1]; }

  // Pointer iteration and span conversion require contiguous elements
  // (every array in the pipeline except SoA lanes viewed out of a mapped
  // snapshot's AoS points).
  const_iterator begin() const { return data(); }
  const_iterator end() const { return data() + size(); }

  // FlatArray models std::ranges::contiguous_range (pointer iterators +
  // size()), so it converts to std::span<const T> through span's range
  // constructor wherever a span parameter is expected; span() is the
  // explicit spelling.
  std::span<const T> span() const { return std::span<const T>(data(), size()); }

  // --- Mutating API (vector subset). Materializes a view first. ----------
  T* data() {
    EnsureOwned();
    return owned_.data();
  }
  T& operator[](size_t i) {
    // Hot path of every builder: owned already, no copy, just the branch.
    EnsureOwned();
    return owned_[i];
  }
  iterator begin() {
    EnsureOwned();
    return owned_.data();
  }
  iterator end() {
    EnsureOwned();
    return owned_.data() + owned_.size();
  }
  void resize(size_t n) {
    EnsureOwned();
    owned_.resize(n);
  }
  void assign(size_t n, const T& v) {
    owned_.assign(n, v);
    DropNonVectorStorage();
  }
  void clear() {
    owned_.clear();
    DropNonVectorStorage();
  }
  void reserve(size_t n) {
    EnsureOwned();
    owned_.reserve(n);
  }
  void push_back(const T& v) {
    EnsureOwned();
    owned_.push_back(v);
  }

  friend bool operator==(const FlatArray& a, const FlatArray& b) {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!(a[i] == b[i])) return false;
    }
    return true;
  }

 private:
  struct FreeDeleter {
    void operator()(T* p) const { std::free(p); }
  };

  void DropNonVectorStorage() {
    aligned_.reset();
    aligned_size_ = 0;
    view_ = nullptr;
    view_size_ = 0;
    view_stride_ = 1;
  }

  void EnsureOwned() {
    if (view_ != nullptr) {
      owned_.resize(view_size_);
      for (size_t i = 0; i < view_size_; ++i) {
        owned_[i] = view_[i * view_stride_];
      }
    } else if (aligned_ != nullptr) {
      owned_.assign(aligned_.get(), aligned_.get() + aligned_size_);
    } else {
      return;
    }
    DropNonVectorStorage();
  }

  std::vector<T> owned_;
  // Owned aligned storage (AllocateAligned), disjoint from owned_.
  std::unique_ptr<T, FreeDeleter> aligned_;
  size_t aligned_size_ = 0;
  // Non-owning (possibly strided) view, disjoint from both owned states.
  const T* view_ = nullptr;
  size_t view_size_ = 0;
  size_t view_stride_ = 1;
};

}  // namespace pdbscan::containers

#endif  // PDBSCAN_CONTAINERS_FLAT_ARRAY_H_
