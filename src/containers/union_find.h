// Lock-free concurrent union-find (disjoint sets).
//
// Used in ClusterCore (Algorithm 3 of the paper) to maintain connected
// components of the cell graph on the fly, pruning connectivity queries
// between cells already known to be connected. The paper highlights that its
// structure is lock-free, in contrast to the lock-based union-find of
// PDSDBSCAN [73]; this implementation is the standard CAS-based union with
// path halving (Anderson & Woll style).
//
// Linearizability notes: Find is wait-free; Link loops on CAS and is
// lock-free. Unions performed concurrently from many threads yield the same
// final partition regardless of interleaving.
#ifndef PDBSCAN_CONTAINERS_UNION_FIND_H_
#define PDBSCAN_CONTAINERS_UNION_FIND_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

namespace pdbscan::containers {

class UnionFind {
 public:
  UnionFind() : UnionFind(0) {}

  explicit UnionFind(size_t n)
      : parent_(std::make_unique<Node[]>(n)), size_(n), capacity_(n) {
    for (size_t i = 0; i < n; ++i) {
      parent_[i].store(i, std::memory_order_relaxed);
    }
  }

  // Re-initializes to n singleton sets, reusing the existing allocation
  // whenever it is large enough (the DbscanEngine workspace calls this once
  // per run). Must not race with Find/Link.
  void Reset(size_t n) {
    if (n > capacity_) {
      parent_ = std::make_unique<Node[]>(n);
      capacity_ = n;
    }
    size_ = n;
    for (size_t i = 0; i < n; ++i) {
      parent_[i].store(i, std::memory_order_relaxed);
    }
  }

  size_t size() const { return size_; }

  // Returns the current root of x's set, compressing the path as it goes.
  size_t Find(size_t x) {
    while (true) {
      size_t p = parent_[x].load(std::memory_order_acquire);
      if (p == x) return x;
      const size_t gp = parent_[p].load(std::memory_order_acquire);
      if (gp == p) return p;
      // Path halving; failure is benign (someone else compressed).
      parent_[x].compare_exchange_weak(p, gp, std::memory_order_acq_rel,
                                       std::memory_order_acquire);
      x = gp;
    }
  }

  // Unites the sets containing x and y. Returns true iff they were separate.
  bool Link(size_t x, size_t y) {
    while (true) {
      size_t rx = Find(x);
      size_t ry = Find(y);
      if (rx == ry) return false;
      // Deterministic orientation: larger root points at smaller root. With
      // path halving the structure stays shallow in practice.
      if (rx < ry) std::swap(rx, ry);
      size_t expected = rx;
      if (parent_[rx].compare_exchange_strong(expected, ry,
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
        return true;
      }
      // rx was no longer a root; retry from the new roots.
      x = rx;
      y = ry;
    }
  }

  // True iff x and y are currently in the same set. Only stable once all
  // concurrent Links that could affect x and y have completed.
  bool SameSet(size_t x, size_t y) { return Find(x) == Find(y); }

 private:
  using Node = std::atomic<size_t>;
  std::unique_ptr<Node[]> parent_;
  size_t size_;
  size_t capacity_;
};

}  // namespace pdbscan::containers

#endif  // PDBSCAN_CONTAINERS_UNION_FIND_H_
