// UpdateJournal — the write-ahead log of the streaming path.
//
// Durability for a live dataset splits naturally along the same line the
// serving architecture does: the snapshot (persist/snapshot.h) is the big
// immutable base, and the journal is the small replayable delta — each
// record is one ApplyUpdates batch (erased ids + inserted points + the
// first id the batch assigned). Recovery = load the last snapshot, replay
// every journal record after it, and the restored DynamicCellIndex is
// bit-identical to the uninterrupted live run: record replay re-executes
// the exact ApplyUpdates sequence, and the first-id check below proves the
// id assignment lines up. Recovery cost is proportional to the delta since
// the last checkpoint, never the dataset.
//
// Record framing (persist/format.h): a fixed header (magic, version, dim,
// endianness, epsilon, counts_cap, options — so a journal can never be
// replayed against a mismatched configuration), then self-delimiting
// records each carrying its own checksum. Replay distinguishes the two
// failure shapes a WAL meets in practice:
//
//   * a torn TAIL (crash mid-append): the final record is shorter than it
//     declares or fails its checksum — replay stops cleanly before it and
//     reports truncated_tail (the writer then truncates it away on the
//     next Append);
//   * corruption anywhere ELSE (a complete record with a bad checksum
//     followed by more bytes): PersistError — the log cannot be trusted.
//
// Appends go through a single fd with optional per-batch fdatasync
// (FsyncPolicy): kEveryBatch survives power loss at one syscall per batch,
// kNone leaves durability to the OS page cache (fast; a crash may lose the
// most recent batches but never corrupts the replayable prefix).
//
// Threading contract: one writer, like the DynamicCellIndex it logs for.
//
// Segment rotation: a single growing file is the right shape for the
// checkpoint-reset lifecycle of PersistentClusterer, but a REPLICATION log
// must stay tailable — a replica that is `k` batches behind should read the
// records after `k`, not the whole history. SegmentedJournal below keeps a
// directory of UpdateJournal files named journal-<start_seq>.pdbjnl, where
// start_seq is the number of batches applied before the segment's first
// record (the segment's UpdateJournal generation field carries the same
// number, so every existing framing/torn-tail/config check applies per
// segment). Once the active segment exceeds rotate_bytes it is closed and a
// new one opens at the current sequence; ListSegmentsSince(dir, seq)
// returns exactly the segments a reader at sequence `seq` still needs.
#ifndef PDBSCAN_PERSIST_JOURNAL_H_
#define PDBSCAN_PERSIST_JOURNAL_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "dbscan/stats.h"
#include "dbscan/types.h"
#include "geometry/point.h"
#include "persist/format.h"
#include "persist/io.h"

namespace pdbscan::persist {

// When the journal fdatasync's.
enum class FsyncPolicy {
  kNone,       // OS-buffered appends; fastest, loses recent batches on crash.
  kEveryBatch  // One fdatasync per ApplyUpdates; survives power loss.
};

// One decoded journal record during replay.
template <int D>
struct JournalRecord {
  uint64_t first_id = 0;
  std::vector<geometry::Point<D>> inserts;
  std::vector<uint64_t> erases;
};

// The outcome of scanning a journal file.
template <int D>
struct JournalScan {
  std::vector<JournalRecord<D>> records;
  // True when the file ended in a torn (incomplete or checksum-failing)
  // final record — the normal shape after a crash mid-append. The records
  // before it are intact and were returned.
  bool truncated_tail = false;
  // Byte size of the intact prefix (header + complete records); the writer
  // truncates the file here before appending again.
  uint64_t intact_bytes = 0;
  double epsilon = 0;
  size_t counts_cap = 0;
  // Journal epoch (see SnapshotHeader::journal_generation): recovery
  // replays only when this matches the snapshot's generation.
  uint64_t generation = 0;
  Options options;
};

template <int D>
class UpdateJournal {
 public:
  // Opens (or creates) the journal at `path` for appending. A fresh file
  // gets the configuration header; an existing file must carry a matching
  // one — replaying inserts into a different (epsilon, counts_cap, options)
  // index would silently produce a different clustering, so the mismatch
  // throws instead. If the existing file has a torn tail (see Scan), the
  // tail is truncated away before the first append. A caller that has
  // already Scan'ed the file (PersistentClusterer, which replays the
  // records first) passes the result as `prescan` so a large journal is
  // not read and decoded a second time during recovery.
  UpdateJournal(const std::string& path, double epsilon, size_t counts_cap,
                const Options& options, uint64_t generation = 0,
                FsyncPolicy fsync = FsyncPolicy::kNone,
                dbscan::PipelineStats* stats = nullptr,
                const JournalScan<D>* prescan = nullptr)
      : epsilon_(epsilon),
        counts_cap_(counts_cap),
        options_(options),
        generation_(generation),
        fsync_(fsync),
        stats_(stats != nullptr ? stats : &dbscan::GlobalStats()) {
    // A file shorter than one header can hold no records: it is a torn
    // creation or a torn ResetToGeneration (crash between truncate and a
    // durable header). Either way the correct state is a fresh header at
    // the caller's generation, not an error — treat it as absent.
    const bool existed =
        FileExists(path) && FileBytes(path) >= sizeof(JournalHeader);
    if (existed) {
      uint64_t scanned_generation, intact_bytes;
      bool truncated_tail;
      if (prescan != nullptr) {
        scanned_generation = prescan->generation;
        intact_bytes = prescan->intact_bytes;
        truncated_tail = prescan->truncated_tail;
        RequireMatch(path, *prescan, epsilon, counts_cap, options);
      } else {
        const JournalScan<D> scan = Scan(path);
        RequireMatch(path, scan, epsilon, counts_cap, options);
        scanned_generation = scan.generation;
        intact_bytes = scan.intact_bytes;
        truncated_tail = scan.truncated_tail;
      }
      if (scanned_generation != generation) {
        throw PersistError(path + ": journal generation " +
                           std::to_string(scanned_generation) +
                           " does not match expected " +
                           std::to_string(generation));
      }
      file_ = std::make_unique<AppendFile>(path);
      if (truncated_tail || file_->size() != intact_bytes) {
        file_->TruncateTo(intact_bytes);
      }
    } else {
      file_ = std::make_unique<AppendFile>(path);
      if (file_->size() > 0) file_->TruncateTo(0);  // Drop a torn header.
      WriteHeader();
    }
  }

  UpdateJournal(const UpdateJournal&) = delete;
  UpdateJournal& operator=(const UpdateJournal&) = delete;

  // Appends one applied batch. `first_id` is the id ApplyUpdates assigned
  // to inserts[0] (recorded so replay can assert the id sequence lines
  // up). Called by DynamicCellIndex after batch validation.
  void Append(std::span<const geometry::Point<D>> inserts,
              std::span<const uint64_t> erases, uint64_t first_id) {
    JournalRecordHeader rh;
    rh.record_bytes = JournalRecordBytes(D, inserts.size(), erases.size());
    rh.first_id = first_id;
    rh.num_inserts = inserts.size();
    rh.num_erases = erases.size();
    buffer_.resize(rh.record_bytes);
    uint8_t* w = buffer_.data();
    std::memcpy(w, &rh, sizeof(rh));
    w += sizeof(rh);
    if (!erases.empty()) {
      std::memcpy(w, erases.data(), erases.size() * sizeof(uint64_t));
      w += erases.size() * sizeof(uint64_t);
    }
    if (!inserts.empty()) {
      std::memcpy(w, inserts.data(),
                  inserts.size() * sizeof(geometry::Point<D>));
      w += inserts.size() * sizeof(geometry::Point<D>);
    }
    const uint64_t sum =
        Checksum64(buffer_.data(), rh.record_bytes - sizeof(uint64_t));
    std::memcpy(w, &sum, sizeof(sum));
    file_->Append(buffer_.data(), buffer_.size());
    if (fsync_ == FsyncPolicy::kEveryBatch) file_->Sync();
    stats_->snapshot_bytes_written.fetch_add(buffer_.size(),
                                             std::memory_order_relaxed);
  }

  // Checkpoint reset: drops every record and starts the given epoch with a
  // fresh header. Called after a snapshot tagged `generation` has been
  // durably written (it already captures every dropped record's effects).
  void ResetToGeneration(uint64_t generation) {
    generation_ = generation;
    file_->TruncateTo(0);
    WriteHeader();
  }

  uint64_t generation() const { return generation_; }

  uint64_t size_bytes() const { return file_->size(); }
  const std::string& path() const { return file_->path(); }

  // Decodes the journal at `path`. Throws PersistError for a missing /
  // foreign / version-skewed / mid-file-corrupted journal; a torn tail is
  // reported, not thrown (see JournalScan).
  static JournalScan<D> Scan(const std::string& path,
                             dbscan::PipelineStats* stats = nullptr) {
    const std::vector<uint8_t> bytes = ReadAllBytes(path);
    if (bytes.size() < sizeof(JournalHeader)) {
      throw PersistError(path + ": truncated journal (no complete header)");
    }
    JournalHeader h;
    std::memcpy(&h, bytes.data(), sizeof(h));
    if (std::memcmp(h.magic, kJournalMagic, sizeof(kJournalMagic)) != 0) {
      throw PersistError(path + ": not a pdbscan journal (bad magic)");
    }
    if (h.endian != kEndianProbe) {
      throw PersistError(path +
                         ": journal written with incompatible endianness");
    }
    if (h.version != kJournalVersion) {
      throw PersistError(path + ": unsupported journal version " +
                         std::to_string(h.version));
    }
    JournalHeader probe = h;
    probe.header_checksum = 0;
    if (Checksum64(&probe, sizeof(probe)) != h.header_checksum) {
      throw PersistError(path + ": journal header checksum mismatch");
    }
    if (h.dim != D) {
      throw PersistError(path + ": journal dimension " +
                         std::to_string(h.dim) + " does not match " +
                         std::to_string(D));
    }

    JournalScan<D> scan;
    scan.epsilon = h.epsilon;
    scan.counts_cap = static_cast<size_t>(h.counts_cap);
    scan.generation = h.generation;
    scan.options = DecodeOptions(h.options, path);
    // Each record is appended with ONE write(), so a crash leaves at most a
    // prefix of a valid record (or, after power loss reorders writeback, a
    // full-length final record with a bad checksum). That shapes the
    // classification below: any break that reaches end-of-file is a torn
    // tail; anything inconsistent with MORE bytes after it is corruption.
    size_t at = sizeof(JournalHeader);
    while (at < bytes.size()) {
      const size_t remaining = bytes.size() - at;
      if (remaining < sizeof(JournalRecordHeader)) {
        scan.truncated_tail = true;  // Partial record header at EOF.
        break;
      }
      JournalRecordHeader rh;
      std::memcpy(&rh, bytes.data() + at, sizeof(rh));
      if (rh.num_inserts > (1ull << 40) || rh.num_erases > (1ull << 40) ||
          rh.record_bytes !=
              JournalRecordBytes(D, rh.num_inserts, rh.num_erases)) {
        // A fully present header can only be inconsistent through real
        // corruption (a torn write is a prefix, and prefixes that include
        // the header include it verbatim).
        throw PersistError(path + ": corrupted journal record at byte " +
                           std::to_string(at));
      }
      if (rh.record_bytes > remaining) {
        scan.truncated_tail = true;  // Partial record payload at EOF.
        break;
      }
      uint64_t stored;
      std::memcpy(&stored,
                  bytes.data() + at + rh.record_bytes - sizeof(uint64_t),
                  sizeof(uint64_t));
      if (Checksum64(bytes.data() + at,
                     rh.record_bytes - sizeof(uint64_t)) != stored) {
        if (at + rh.record_bytes == bytes.size()) {
          scan.truncated_tail = true;  // Reordered-writeback torn tail.
          break;
        }
        throw PersistError(path + ": corrupted journal record at byte " +
                           std::to_string(at));
      }
      JournalRecord<D> rec;
      rec.first_id = rh.first_id;
      const uint8_t* r = bytes.data() + at + sizeof(rh);
      rec.erases.resize(rh.num_erases);
      if (rh.num_erases > 0) {
        std::memcpy(rec.erases.data(), r, rh.num_erases * sizeof(uint64_t));
        r += rh.num_erases * sizeof(uint64_t);
      }
      rec.inserts.resize(rh.num_inserts);
      if (rh.num_inserts > 0) {
        std::memcpy(rec.inserts.data(), r,
                    rh.num_inserts * sizeof(geometry::Point<D>));
      }
      scan.records.push_back(std::move(rec));
      at += rh.record_bytes;
    }
    scan.intact_bytes = static_cast<uint64_t>(at);
    if (stats != nullptr) {
      stats->snapshot_bytes_read.fetch_add(scan.intact_bytes,
                                           std::memory_order_relaxed);
    }
    return scan;
  }

  static void RequireMatch(const std::string& path,
                           const JournalScan<D>& scan, double epsilon,
                           size_t counts_cap, const Options& options) {
    const bool same_options =
        scan.options.cell_method == options.cell_method &&
        scan.options.connect_method == options.connect_method &&
        scan.options.range_count == options.range_count &&
        scan.options.bucketing == options.bucketing &&
        scan.options.core_only == options.core_only &&
        scan.options.num_buckets == options.num_buckets &&
        scan.options.rho == options.rho &&
        scan.options.delaunay_jitter_seed == options.delaunay_jitter_seed;
    if (scan.epsilon != epsilon || scan.counts_cap != counts_cap ||
        !same_options) {
      throw PersistError(
          path + ": journal configuration does not match this index "
                 "(epsilon / counts_cap / options)");
    }
  }

 private:
  void WriteHeader() {
    JournalHeader h;
    std::memcpy(h.magic, kJournalMagic, sizeof(kJournalMagic));
    h.version = kJournalVersion;
    h.endian = kEndianProbe;
    h.dim = D;
    h.epsilon = epsilon_;
    h.counts_cap = counts_cap_;
    h.generation = generation_;
    h.options = EncodeOptions(options_);
    h.header_checksum = 0;
    h.header_checksum = Checksum64(&h, sizeof(h));
    file_->Append(&h, sizeof(h));
    file_->Sync();
  }

  double epsilon_;
  size_t counts_cap_;
  Options options_;
  uint64_t generation_;
  FsyncPolicy fsync_;
  dbscan::PipelineStats* stats_;
  std::unique_ptr<AppendFile> file_;
  std::vector<uint8_t> buffer_;  // Reused record encoding scratch.
};

// --- Journal segments (the tailable, rotating flavor) -----------------------

// One segment file of a segmented journal. Record i of the segment is the
// update batch that advances the dataset from sequence start_seq + i to
// start_seq + i + 1.
struct JournalSegment {
  std::string path;
  uint64_t start_seq = 0;
};

inline std::string JournalSegmentName(uint64_t start_seq) {
  return "journal-" + std::to_string(start_seq) + ".pdbjnl";
}

// All journal segments in `dir`, sorted by start sequence. Non-segment
// files (checkpoints, temp files) are ignored; a missing directory yields
// an empty list.
inline std::vector<JournalSegment> ListJournalSegments(
    const std::string& dir) {
  std::vector<JournalSegment> segments;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() <= 15 || name.compare(0, 8, "journal-") != 0 ||
        name.compare(name.size() - 7, 7, ".pdbjnl") != 0) {
      continue;
    }
    const std::string digits = name.substr(8, name.size() - 15);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    segments.push_back(
        JournalSegment{entry.path().string(), std::stoull(digits)});
  }
  std::sort(segments.begin(), segments.end(),
            [](const JournalSegment& a, const JournalSegment& b) {
              return a.start_seq < b.start_seq;
            });
  return segments;
}

// The segments a reader that has applied `seq` batches still needs: the
// last segment starting at or before `seq` (it may hold records past the
// reader's position) plus every later one. An empty result means no
// segments exist; a result whose FIRST start_seq is greater than `seq`
// means the records in (seq, first) were pruned away — the reader must
// re-cold-start from a newer checkpoint (see net/replication.h).
inline std::vector<JournalSegment> ListSegmentsSince(const std::string& dir,
                                                     uint64_t seq) {
  std::vector<JournalSegment> segments = ListJournalSegments(dir);
  size_t first = 0;
  for (size_t i = 0; i < segments.size(); ++i) {
    if (segments[i].start_seq <= seq) first = i;
  }
  segments.erase(segments.begin(), segments.begin() + first);
  return segments;
}

// Unlinks every segment whose records are ALL at sequences <= `seq` (i.e.
// whose successor segment starts at or before `seq`) — they are fully
// covered by a checkpoint at `seq`. The newest segment is never pruned
// (it is the active tail). Returns the number of files removed.
inline size_t PruneSegmentsBefore(const std::string& dir, uint64_t seq) {
  const std::vector<JournalSegment> segments = ListJournalSegments(dir);
  size_t removed = 0;
  for (size_t i = 0; i + 1 < segments.size(); ++i) {
    if (segments[i + 1].start_seq <= seq) {
      std::error_code ec;
      if (std::filesystem::remove(segments[i].path, ec)) ++removed;
    }
  }
  return removed;
}

// A rotating directory of UpdateJournal segments — the replication log of
// net/replication.h. The writer attaches current() to its DynamicCellIndex
// (WAL-before-mutate discipline unchanged) and calls OnBatchApplied() after
// every applied batch; the segmented journal counts sequences and rotates
// the active segment once it crosses rotate_bytes. Reopening an existing
// directory resumes at the given sequence: the active segment is the last
// one on disk (its torn tail, if any, is truncated by the UpdateJournal
// constructor), so appends continue exactly where the previous process
// stopped.
//
// Threading contract: one writer, like the UpdateJournal segments it owns.
template <int D>
class SegmentedJournal {
 public:
  // `seq` is the number of batches already applied (and already covered by
  // the segments on disk / the checkpoint the caller recovered from).
  // `active_start` names the segment appends go to: the start sequence of
  // the last on-disk segment when resuming, or `seq` for a fresh one.
  SegmentedJournal(const std::string& dir, double epsilon, size_t counts_cap,
                   const Options& options, uint64_t seq,
                   uint64_t active_start, uint64_t rotate_bytes,
                   FsyncPolicy fsync = FsyncPolicy::kNone,
                   dbscan::PipelineStats* stats = nullptr)
      : dir_(dir),
        epsilon_(epsilon),
        counts_cap_(counts_cap),
        options_(options),
        seq_(seq),
        rotate_bytes_(rotate_bytes),
        fsync_(fsync),
        stats_(stats) {
    if (active_start > seq) {
      throw PersistError(dir + ": active segment start " +
                         std::to_string(active_start) +
                         " is ahead of sequence " + std::to_string(seq));
    }
    current_ = std::make_unique<UpdateJournal<D>>(
        dir_ + "/" + JournalSegmentName(active_start), epsilon_, counts_cap_,
        options_, active_start, fsync_, stats_);
  }

  SegmentedJournal(const SegmentedJournal&) = delete;
  SegmentedJournal& operator=(const SegmentedJournal&) = delete;

  // The active segment — attach to DynamicCellIndex::set_journal. Invalid
  // after the next OnBatchApplied() that rotates; re-attach then (see
  // rotated_since() or simply re-read current() every batch).
  UpdateJournal<D>* current() { return current_.get(); }

  // Sequence accounting + rotation, called once after every applied batch.
  // Returns true when the active segment changed (the caller re-attaches).
  bool OnBatchApplied() {
    ++seq_;
    if (current_->size_bytes() < rotate_bytes_) return false;
    current_ = std::make_unique<UpdateJournal<D>>(
        dir_ + "/" + JournalSegmentName(seq_), epsilon_, counts_cap_,
        options_, seq_, fsync_, stats_);
    return true;
  }

  uint64_t seq() const { return seq_; }
  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
  double epsilon_;
  size_t counts_cap_;
  Options options_;
  uint64_t seq_;
  uint64_t rotate_bytes_;
  FsyncPolicy fsync_;
  dbscan::PipelineStats* stats_;
  std::unique_ptr<UpdateJournal<D>> current_;
};

}  // namespace pdbscan::persist

#endif  // PDBSCAN_PERSIST_JOURNAL_H_
