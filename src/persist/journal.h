// UpdateJournal — the write-ahead log of the streaming path.
//
// Durability for a live dataset splits naturally along the same line the
// serving architecture does: the snapshot (persist/snapshot.h) is the big
// immutable base, and the journal is the small replayable delta — each
// record is one ApplyUpdates batch (erased ids + inserted points + the
// first id the batch assigned). Recovery = load the last snapshot, replay
// every journal record after it, and the restored DynamicCellIndex is
// bit-identical to the uninterrupted live run: record replay re-executes
// the exact ApplyUpdates sequence, and the first-id check below proves the
// id assignment lines up. Recovery cost is proportional to the delta since
// the last checkpoint, never the dataset.
//
// Record framing (persist/format.h): a fixed header (magic, version, dim,
// endianness, epsilon, counts_cap, options — so a journal can never be
// replayed against a mismatched configuration), then self-delimiting
// records each carrying its own checksum. Replay distinguishes the two
// failure shapes a WAL meets in practice:
//
//   * a torn TAIL (crash mid-append): the final record is shorter than it
//     declares or fails its checksum — replay stops cleanly before it and
//     reports truncated_tail (the writer then truncates it away on the
//     next Append);
//   * corruption anywhere ELSE (a complete record with a bad checksum
//     followed by more bytes): PersistError — the log cannot be trusted.
//
// Appends go through a single fd with optional per-batch fdatasync
// (FsyncPolicy): kEveryBatch survives power loss at one syscall per batch,
// kNone leaves durability to the OS page cache (fast; a crash may lose the
// most recent batches but never corrupts the replayable prefix).
//
// Threading contract: one writer, like the DynamicCellIndex it logs for.
#ifndef PDBSCAN_PERSIST_JOURNAL_H_
#define PDBSCAN_PERSIST_JOURNAL_H_

#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "dbscan/stats.h"
#include "dbscan/types.h"
#include "geometry/point.h"
#include "persist/format.h"
#include "persist/io.h"

namespace pdbscan::persist {

// When the journal fdatasync's.
enum class FsyncPolicy {
  kNone,       // OS-buffered appends; fastest, loses recent batches on crash.
  kEveryBatch  // One fdatasync per ApplyUpdates; survives power loss.
};

// One decoded journal record during replay.
template <int D>
struct JournalRecord {
  uint64_t first_id = 0;
  std::vector<geometry::Point<D>> inserts;
  std::vector<uint64_t> erases;
};

// The outcome of scanning a journal file.
template <int D>
struct JournalScan {
  std::vector<JournalRecord<D>> records;
  // True when the file ended in a torn (incomplete or checksum-failing)
  // final record — the normal shape after a crash mid-append. The records
  // before it are intact and were returned.
  bool truncated_tail = false;
  // Byte size of the intact prefix (header + complete records); the writer
  // truncates the file here before appending again.
  uint64_t intact_bytes = 0;
  double epsilon = 0;
  size_t counts_cap = 0;
  // Journal epoch (see SnapshotHeader::journal_generation): recovery
  // replays only when this matches the snapshot's generation.
  uint64_t generation = 0;
  Options options;
};

template <int D>
class UpdateJournal {
 public:
  // Opens (or creates) the journal at `path` for appending. A fresh file
  // gets the configuration header; an existing file must carry a matching
  // one — replaying inserts into a different (epsilon, counts_cap, options)
  // index would silently produce a different clustering, so the mismatch
  // throws instead. If the existing file has a torn tail (see Scan), the
  // tail is truncated away before the first append. A caller that has
  // already Scan'ed the file (PersistentClusterer, which replays the
  // records first) passes the result as `prescan` so a large journal is
  // not read and decoded a second time during recovery.
  UpdateJournal(const std::string& path, double epsilon, size_t counts_cap,
                const Options& options, uint64_t generation = 0,
                FsyncPolicy fsync = FsyncPolicy::kNone,
                dbscan::PipelineStats* stats = nullptr,
                const JournalScan<D>* prescan = nullptr)
      : epsilon_(epsilon),
        counts_cap_(counts_cap),
        options_(options),
        generation_(generation),
        fsync_(fsync),
        stats_(stats != nullptr ? stats : &dbscan::GlobalStats()) {
    // A file shorter than one header can hold no records: it is a torn
    // creation or a torn ResetToGeneration (crash between truncate and a
    // durable header). Either way the correct state is a fresh header at
    // the caller's generation, not an error — treat it as absent.
    const bool existed =
        FileExists(path) && FileBytes(path) >= sizeof(JournalHeader);
    if (existed) {
      uint64_t scanned_generation, intact_bytes;
      bool truncated_tail;
      if (prescan != nullptr) {
        scanned_generation = prescan->generation;
        intact_bytes = prescan->intact_bytes;
        truncated_tail = prescan->truncated_tail;
        RequireMatch(path, *prescan, epsilon, counts_cap, options);
      } else {
        const JournalScan<D> scan = Scan(path);
        RequireMatch(path, scan, epsilon, counts_cap, options);
        scanned_generation = scan.generation;
        intact_bytes = scan.intact_bytes;
        truncated_tail = scan.truncated_tail;
      }
      if (scanned_generation != generation) {
        throw PersistError(path + ": journal generation " +
                           std::to_string(scanned_generation) +
                           " does not match expected " +
                           std::to_string(generation));
      }
      file_ = std::make_unique<AppendFile>(path);
      if (truncated_tail || file_->size() != intact_bytes) {
        file_->TruncateTo(intact_bytes);
      }
    } else {
      file_ = std::make_unique<AppendFile>(path);
      if (file_->size() > 0) file_->TruncateTo(0);  // Drop a torn header.
      WriteHeader();
    }
  }

  UpdateJournal(const UpdateJournal&) = delete;
  UpdateJournal& operator=(const UpdateJournal&) = delete;

  // Appends one applied batch. `first_id` is the id ApplyUpdates assigned
  // to inserts[0] (recorded so replay can assert the id sequence lines
  // up). Called by DynamicCellIndex after batch validation.
  void Append(std::span<const geometry::Point<D>> inserts,
              std::span<const uint64_t> erases, uint64_t first_id) {
    JournalRecordHeader rh;
    rh.record_bytes = JournalRecordBytes(D, inserts.size(), erases.size());
    rh.first_id = first_id;
    rh.num_inserts = inserts.size();
    rh.num_erases = erases.size();
    buffer_.resize(rh.record_bytes);
    uint8_t* w = buffer_.data();
    std::memcpy(w, &rh, sizeof(rh));
    w += sizeof(rh);
    if (!erases.empty()) {
      std::memcpy(w, erases.data(), erases.size() * sizeof(uint64_t));
      w += erases.size() * sizeof(uint64_t);
    }
    if (!inserts.empty()) {
      std::memcpy(w, inserts.data(),
                  inserts.size() * sizeof(geometry::Point<D>));
      w += inserts.size() * sizeof(geometry::Point<D>);
    }
    const uint64_t sum =
        Checksum64(buffer_.data(), rh.record_bytes - sizeof(uint64_t));
    std::memcpy(w, &sum, sizeof(sum));
    file_->Append(buffer_.data(), buffer_.size());
    if (fsync_ == FsyncPolicy::kEveryBatch) file_->Sync();
    stats_->snapshot_bytes_written.fetch_add(buffer_.size(),
                                             std::memory_order_relaxed);
  }

  // Checkpoint reset: drops every record and starts the given epoch with a
  // fresh header. Called after a snapshot tagged `generation` has been
  // durably written (it already captures every dropped record's effects).
  void ResetToGeneration(uint64_t generation) {
    generation_ = generation;
    file_->TruncateTo(0);
    WriteHeader();
  }

  uint64_t generation() const { return generation_; }

  uint64_t size_bytes() const { return file_->size(); }
  const std::string& path() const { return file_->path(); }

  // Decodes the journal at `path`. Throws PersistError for a missing /
  // foreign / version-skewed / mid-file-corrupted journal; a torn tail is
  // reported, not thrown (see JournalScan).
  static JournalScan<D> Scan(const std::string& path,
                             dbscan::PipelineStats* stats = nullptr) {
    const std::vector<uint8_t> bytes = ReadAllBytes(path);
    if (bytes.size() < sizeof(JournalHeader)) {
      throw PersistError(path + ": truncated journal (no complete header)");
    }
    JournalHeader h;
    std::memcpy(&h, bytes.data(), sizeof(h));
    if (std::memcmp(h.magic, kJournalMagic, sizeof(kJournalMagic)) != 0) {
      throw PersistError(path + ": not a pdbscan journal (bad magic)");
    }
    if (h.endian != kEndianProbe) {
      throw PersistError(path +
                         ": journal written with incompatible endianness");
    }
    if (h.version != kJournalVersion) {
      throw PersistError(path + ": unsupported journal version " +
                         std::to_string(h.version));
    }
    JournalHeader probe = h;
    probe.header_checksum = 0;
    if (Checksum64(&probe, sizeof(probe)) != h.header_checksum) {
      throw PersistError(path + ": journal header checksum mismatch");
    }
    if (h.dim != D) {
      throw PersistError(path + ": journal dimension " +
                         std::to_string(h.dim) + " does not match " +
                         std::to_string(D));
    }

    JournalScan<D> scan;
    scan.epsilon = h.epsilon;
    scan.counts_cap = static_cast<size_t>(h.counts_cap);
    scan.generation = h.generation;
    scan.options = DecodeOptions(h.options, path);
    // Each record is appended with ONE write(), so a crash leaves at most a
    // prefix of a valid record (or, after power loss reorders writeback, a
    // full-length final record with a bad checksum). That shapes the
    // classification below: any break that reaches end-of-file is a torn
    // tail; anything inconsistent with MORE bytes after it is corruption.
    size_t at = sizeof(JournalHeader);
    while (at < bytes.size()) {
      const size_t remaining = bytes.size() - at;
      if (remaining < sizeof(JournalRecordHeader)) {
        scan.truncated_tail = true;  // Partial record header at EOF.
        break;
      }
      JournalRecordHeader rh;
      std::memcpy(&rh, bytes.data() + at, sizeof(rh));
      if (rh.num_inserts > (1ull << 40) || rh.num_erases > (1ull << 40) ||
          rh.record_bytes !=
              JournalRecordBytes(D, rh.num_inserts, rh.num_erases)) {
        // A fully present header can only be inconsistent through real
        // corruption (a torn write is a prefix, and prefixes that include
        // the header include it verbatim).
        throw PersistError(path + ": corrupted journal record at byte " +
                           std::to_string(at));
      }
      if (rh.record_bytes > remaining) {
        scan.truncated_tail = true;  // Partial record payload at EOF.
        break;
      }
      uint64_t stored;
      std::memcpy(&stored,
                  bytes.data() + at + rh.record_bytes - sizeof(uint64_t),
                  sizeof(uint64_t));
      if (Checksum64(bytes.data() + at,
                     rh.record_bytes - sizeof(uint64_t)) != stored) {
        if (at + rh.record_bytes == bytes.size()) {
          scan.truncated_tail = true;  // Reordered-writeback torn tail.
          break;
        }
        throw PersistError(path + ": corrupted journal record at byte " +
                           std::to_string(at));
      }
      JournalRecord<D> rec;
      rec.first_id = rh.first_id;
      const uint8_t* r = bytes.data() + at + sizeof(rh);
      rec.erases.resize(rh.num_erases);
      if (rh.num_erases > 0) {
        std::memcpy(rec.erases.data(), r, rh.num_erases * sizeof(uint64_t));
        r += rh.num_erases * sizeof(uint64_t);
      }
      rec.inserts.resize(rh.num_inserts);
      if (rh.num_inserts > 0) {
        std::memcpy(rec.inserts.data(), r,
                    rh.num_inserts * sizeof(geometry::Point<D>));
      }
      scan.records.push_back(std::move(rec));
      at += rh.record_bytes;
    }
    scan.intact_bytes = static_cast<uint64_t>(at);
    if (stats != nullptr) {
      stats->snapshot_bytes_read.fetch_add(scan.intact_bytes,
                                           std::memory_order_relaxed);
    }
    return scan;
  }

  static void RequireMatch(const std::string& path,
                           const JournalScan<D>& scan, double epsilon,
                           size_t counts_cap, const Options& options) {
    const bool same_options =
        scan.options.cell_method == options.cell_method &&
        scan.options.connect_method == options.connect_method &&
        scan.options.range_count == options.range_count &&
        scan.options.bucketing == options.bucketing &&
        scan.options.core_only == options.core_only &&
        scan.options.num_buckets == options.num_buckets &&
        scan.options.rho == options.rho &&
        scan.options.delaunay_jitter_seed == options.delaunay_jitter_seed;
    if (scan.epsilon != epsilon || scan.counts_cap != counts_cap ||
        !same_options) {
      throw PersistError(
          path + ": journal configuration does not match this index "
                 "(epsilon / counts_cap / options)");
    }
  }

 private:
  void WriteHeader() {
    JournalHeader h;
    std::memcpy(h.magic, kJournalMagic, sizeof(kJournalMagic));
    h.version = kJournalVersion;
    h.endian = kEndianProbe;
    h.dim = D;
    h.epsilon = epsilon_;
    h.counts_cap = counts_cap_;
    h.generation = generation_;
    h.options = EncodeOptions(options_);
    h.header_checksum = 0;
    h.header_checksum = Checksum64(&h, sizeof(h));
    file_->Append(&h, sizeof(h));
    file_->Sync();
  }

  double epsilon_;
  size_t counts_cap_;
  Options options_;
  uint64_t generation_;
  FsyncPolicy fsync_;
  dbscan::PipelineStats* stats_;
  std::unique_ptr<AppendFile> file_;
  std::vector<uint8_t> buffer_;  // Reused record encoding scratch.
};

}  // namespace pdbscan::persist

#endif  // PDBSCAN_PERSIST_JOURNAL_H_
