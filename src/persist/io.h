// Low-level file plumbing for the persistence layer: an mmap wrapper that
// pins a read-only file mapping, whole-file reads, crash-safe (write-temp-
// then-rename) snapshot output, and an append-only handle with explicit
// fsync for the update journal. POSIX-only, like the rest of the build.
//
// Everything throws PersistError on failure; nothing here knows about the
// snapshot or journal formats (see persist/format.h for those).
#ifndef PDBSCAN_PERSIST_IO_H_
#define PDBSCAN_PERSIST_IO_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "persist/format.h"

namespace pdbscan::persist {

// A read-only mmap of an entire file. Shared ownership: a mapped CellIndex
// holds one of these as its payload, keeping the mapping alive for exactly
// as long as any index serves from it.
class MappedFile {
 public:
  // Maps `path` read-only (MAP_PRIVATE). Throws PersistError on open/map
  // failure or on an empty file.
  static std::shared_ptr<const MappedFile> Open(const std::string& path);

  ~MappedFile();
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  const std::string& path() const { return path_; }

 private:
  MappedFile(std::string path, const uint8_t* data, size_t size)
      : path_(std::move(path)), data_(data), size_(size) {}

  std::string path_;
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

// Reads the whole file into memory. Throws PersistError on open/read
// failure.
std::vector<uint8_t> ReadAllBytes(const std::string& path);

// Reads at most the first `max_bytes` of the file (header peeks). May
// return fewer bytes when the file is shorter.
std::vector<uint8_t> ReadPrefixBytes(const std::string& path,
                                     size_t max_bytes);

// Size of `path` in bytes; throws PersistError if it cannot be stat'ed.
uint64_t FileBytes(const std::string& path);

bool FileExists(const std::string& path);

// Writes a file in one crash-safe step: the content goes to `path`.tmp,
// is fsync'ed, and is renamed over `path` (atomic on POSIX), so a crash
// mid-write never leaves a half-written file under the final name.
// `write` is called with an opaque sink; see BufferedWriter.
class AtomicFileWriter {
 public:
  explicit AtomicFileWriter(const std::string& path);
  ~AtomicFileWriter();  // Aborts (unlinks the temp file) if not committed.
  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  // Appends raw bytes at the current position.
  void Write(const void* data, size_t bytes);
  // Zero padding up to absolute offset `offset` (which must not be behind
  // the current position) — section alignment.
  void PadTo(uint64_t offset);
  uint64_t position() const { return position_; }

  // Rewrites `bytes` at absolute `offset` (used to back-patch the header
  // once the payload checksum is known), without moving position().
  void Overwrite(uint64_t offset, const void* data, size_t bytes);

  // fsync + rename over the final path. No further writes afterwards.
  void Commit();

 private:
  std::string path_;
  std::string tmp_path_;
  int fd_ = -1;
  uint64_t position_ = 0;
  bool committed_ = false;
};

// Append-only file handle for the journal: opens existing or creates,
// appends at the end, syncs on request, and can truncate back to a prefix
// (checkpoint reset).
class AppendFile {
 public:
  // Opens `path` for appending, creating it if missing. `created` reports
  // whether the file was empty/new (the caller then writes the header).
  explicit AppendFile(const std::string& path);
  ~AppendFile();
  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;

  void Append(const void* data, size_t bytes);
  // fdatasync; throws PersistError on failure.
  void Sync();
  // Truncates the file to `bytes` and syncs (checkpoint reset).
  void TruncateTo(uint64_t bytes);
  uint64_t size() const { return size_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  int fd_ = -1;
  uint64_t size_ = 0;
};

}  // namespace pdbscan::persist

#endif  // PDBSCAN_PERSIST_IO_H_
