#include "persist/io.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace pdbscan::persist {

namespace {

std::string Errno(const std::string& what, const std::string& path) {
  return path + ": " + what + ": " + std::strerror(errno);
}

}  // namespace

std::shared_ptr<const MappedFile> MappedFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) throw PersistError(Errno("cannot open", path));
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const PersistError err(Errno("cannot stat", path));
    ::close(fd);
    throw err;
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    throw PersistError(path + ": empty file");
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // The mapping keeps the file alive.
  if (map == MAP_FAILED) throw PersistError(Errno("mmap failed", path));
  return std::shared_ptr<const MappedFile>(
      new MappedFile(path, static_cast<const uint8_t*>(map), size));
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
}

std::vector<uint8_t> ReadAllBytes(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) throw PersistError(Errno("cannot open", path));
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const PersistError err(Errno("cannot stat", path));
    ::close(fd);
    throw err;
  }
  std::vector<uint8_t> bytes(static_cast<size_t>(st.st_size));
  size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t got =
        ::read(fd, bytes.data() + done, bytes.size() - done);
    if (got < 0) {
      if (errno == EINTR) continue;
      const PersistError err(Errno("read failed", path));
      ::close(fd);
      throw err;
    }
    if (got == 0) break;  // Shrank underneath us; size check catches it.
    done += static_cast<size_t>(got);
  }
  ::close(fd);
  bytes.resize(done);
  return bytes;
}

std::vector<uint8_t> ReadPrefixBytes(const std::string& path,
                                     size_t max_bytes) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) throw PersistError(Errno("cannot open", path));
  std::vector<uint8_t> bytes(max_bytes);
  size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t got = ::read(fd, bytes.data() + done, bytes.size() - done);
    if (got < 0) {
      if (errno == EINTR) continue;
      const PersistError err(Errno("read failed", path));
      ::close(fd);
      throw err;
    }
    if (got == 0) break;
    done += static_cast<size_t>(got);
  }
  ::close(fd);
  bytes.resize(done);
  return bytes;
}

uint64_t FileBytes(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    throw PersistError(Errno("cannot stat", path));
  }
  return static_cast<uint64_t>(st.st_size);
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

AtomicFileWriter::AtomicFileWriter(const std::string& path)
    : path_(path), tmp_path_(path + ".tmp") {
  fd_ = ::open(tmp_path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
               0644);
  if (fd_ < 0) throw PersistError(Errno("cannot create", tmp_path_));
}

AtomicFileWriter::~AtomicFileWriter() {
  if (fd_ >= 0) ::close(fd_);
  if (!committed_) ::unlink(tmp_path_.c_str());
}

void AtomicFileWriter::Write(const void* data, size_t bytes) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  size_t done = 0;
  while (done < bytes) {
    const ssize_t put = ::write(fd_, p + done, bytes - done);
    if (put < 0) {
      if (errno == EINTR) continue;
      throw PersistError(Errno("write failed", tmp_path_));
    }
    done += static_cast<size_t>(put);
  }
  position_ += bytes;
}

void AtomicFileWriter::PadTo(uint64_t offset) {
  if (offset < position_) {
    throw PersistError(tmp_path_ + ": PadTo would move backwards");
  }
  static constexpr char kZeros[64] = {};
  while (position_ < offset) {
    const size_t chunk =
        std::min<uint64_t>(sizeof(kZeros), offset - position_);
    Write(kZeros, chunk);
  }
}

void AtomicFileWriter::Overwrite(uint64_t offset, const void* data,
                                 size_t bytes) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  size_t done = 0;
  while (done < bytes) {
    const ssize_t put =
        ::pwrite(fd_, p + done, bytes - done,
                 static_cast<off_t>(offset + done));
    if (put < 0) {
      if (errno == EINTR) continue;
      throw PersistError(Errno("pwrite failed", tmp_path_));
    }
    done += static_cast<size_t>(put);
  }
}

void AtomicFileWriter::Commit() {
  if (::fsync(fd_) != 0) throw PersistError(Errno("fsync failed", tmp_path_));
  if (::close(fd_) != 0) {
    fd_ = -1;
    throw PersistError(Errno("close failed", tmp_path_));
  }
  fd_ = -1;
  if (::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    throw PersistError(Errno("rename failed", path_));
  }
  committed_ = true;
  // The rename is atomic but not durable until the PARENT DIRECTORY is
  // fsync'ed; without this, a power loss could durably apply a later
  // journal reset while losing the snapshot rename it was paired with —
  // exactly the ordering the checkpoint generation protocol depends on.
  const size_t slash = path_.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path_.substr(0, slash == 0 ? 1 : slash);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dir_fd < 0) throw PersistError(Errno("cannot open directory", dir));
  const int rc = ::fsync(dir_fd);
  ::close(dir_fd);
  if (rc != 0) throw PersistError(Errno("directory fsync failed", dir));
}

AppendFile::AppendFile(const std::string& path) : path_(path) {
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd_ < 0) throw PersistError(Errno("cannot open", path));
  struct stat st;
  if (::fstat(fd_, &st) != 0) {
    const PersistError err(Errno("cannot stat", path));
    ::close(fd_);
    fd_ = -1;
    throw err;
  }
  size_ = static_cast<uint64_t>(st.st_size);
}

AppendFile::~AppendFile() {
  if (fd_ >= 0) ::close(fd_);
}

void AppendFile::Append(const void* data, size_t bytes) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  size_t done = 0;
  while (done < bytes) {
    const ssize_t put = ::write(fd_, p + done, bytes - done);
    if (put < 0) {
      if (errno == EINTR) continue;
      throw PersistError(Errno("append failed", path_));
    }
    done += static_cast<size_t>(put);
  }
  size_ += bytes;
}

void AppendFile::Sync() {
  if (::fdatasync(fd_) != 0) {
    throw PersistError(Errno("fdatasync failed", path_));
  }
}

void AppendFile::TruncateTo(uint64_t bytes) {
  if (::ftruncate(fd_, static_cast<off_t>(bytes)) != 0) {
    throw PersistError(Errno("ftruncate failed", path_));
  }
  size_ = bytes;
  Sync();
}

}  // namespace pdbscan::persist
