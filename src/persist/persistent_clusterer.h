// PersistentClusterer — the durable serve-while-updating facade: a
// StreamingClusterer-shaped surface (one writer, many lock-free readers)
// whose state survives process restarts.
//
//   pdbscan::PersistentClusterer<2> live("/var/lib/myindex",
//                                        /*epsilon=*/1.0,
//                                        /*counts_cap=*/100);
//   live.Insert(points);                 // journaled, then applied
//   pdbscan::Clustering c = live.Run(10);  // any thread, concurrently
//   live.Checkpoint();                   // snapshot + journal reset
//   // ... process dies, restarts:
//   pdbscan::PersistentClusterer<2> again("/var/lib/myindex", 1.0, 100);
//   // `again` now serves a state bit-identical to `live`'s last applied
//   // batch: last checkpoint + journal replay.
//
// Recovery contract (enforced by tests/test_persist.cpp and
// bench/throughput_persist.cpp): the recovered instance's published
// snapshot, and every snapshot it publishes for subsequent batches, is
// bit-identical to the uninterrupted run's. Recovery cost is the snapshot
// load (O(validation) in mapped mode) plus replay of the batches since the
// last checkpoint — proportional to the delta, not the dataset.
//
// Files inside `dir` (which must already exist):
//   index.pdbsnap   — the last checkpoint (streaming state included)
//   updates.pdbjnl  — the WAL of batches applied since that checkpoint
//
// Crash safety: snapshots are written temp-then-rename; the
// snapshot/journal pair is reconciled through the journal generation (see
// persist/format.h), so a crash at ANY point — mid-batch, mid-snapshot,
// between checkpoint steps — recovers to a published batch boundary,
// never a partial state. A configuration mismatch (different epsilon /
// counts_cap / options than the stored files) throws PersistError rather
// than serving a silently different clustering.
//
// Threading contract: ApplyUpdates / Insert / Erase / Checkpoint from ONE
// writer thread (or externally serialized); Run / Sweep / snapshot() from
// any thread, any time.
#ifndef PDBSCAN_PERSIST_PERSISTENT_CLUSTERER_H_
#define PDBSCAN_PERSIST_PERSISTENT_CLUSTERER_H_

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "dbscan/cell_index.h"
#include "dbscan/stats.h"
#include "dbscan/types.h"
#include "geometry/point.h"
#include "parallel/engine_pool.h"
#include "persist/format.h"
#include "persist/journal.h"
#include "persist/snapshot.h"
#include "streaming/dynamic_cell_index.h"

namespace pdbscan::persist {

// Durability / recovery knobs.
struct PersistOptions {
  // How recovery materializes the checkpoint snapshot. kMapped serves the
  // restored index straight from the file mapping (cold start in
  // milliseconds; the snapshot file must stay in place while serving).
  LoadMode load_mode = LoadMode::kOwned;
  // Journal durability; kEveryBatch fdatasyncs each ApplyUpdates.
  FsyncPolicy journal_fsync = FsyncPolicy::kNone;
};

template <int D>
class PersistentClusterer {
 public:
  PersistentClusterer(const std::string& dir, double epsilon,
                      size_t counts_cap, Options options = Options(),
                      PersistOptions persist_options = PersistOptions())
      : snapshot_path_(dir + "/index.pdbsnap"),
        journal_path_(dir + "/updates.pdbjnl"),
        persist_options_(persist_options) {
    // 1. Base state: the last checkpoint, or empty when none exists.
    uint64_t generation = 0;
    if (FileExists(snapshot_path_)) {
      LoadedSnapshot<D> loaded = SnapshotReader<D>::Load(
          snapshot_path_, persist_options_.load_mode, &update_stats_);
      if (!loaded.has_stream_state) {
        throw PersistError(snapshot_path_ +
                           ": not a streaming checkpoint (no live-id state)");
      }
      RequireConfig(loaded.index->epsilon(), loaded.index->counts_cap(),
                    loaded.index->options(), epsilon, counts_cap, options);
      generation = loaded.journal_generation;
      index_ = std::make_unique<streaming::DynamicCellIndex<D>>(
          std::move(loaded.index),
          std::span<const uint64_t>(loaded.live_ids), loaded.next_id,
          &update_stats_);
      recovered_from_snapshot_ = true;
    } else {
      index_ = std::make_unique<streaming::DynamicCellIndex<D>>(
          epsilon, counts_cap, options, &update_stats_);
    }

    // 2. Replay the journal — with it detached, so replaying does not
    // re-append the records it is reading. Files shorter than one header
    // hold no records (a torn creation or a torn checkpoint reset); the
    // journal constructor below reinitializes them at the snapshot's
    // epoch.
    JournalScan<D> scan;
    bool scanned = false;
    if (FileExists(journal_path_) &&
        FileBytes(journal_path_) >= sizeof(JournalHeader)) {
      scan = UpdateJournal<D>::Scan(journal_path_, &update_stats_);
      scanned = true;
      UpdateJournal<D>::RequireMatch(journal_path_, scan, epsilon, counts_cap,
                                     options);
      if (scan.generation == generation) {
        for (const JournalRecord<D>& rec : scan.records) {
          const uint64_t first_id = index_->ApplyUpdates(
              std::span<const geometry::Point<D>>(rec.inserts),
              std::span<const uint64_t>(rec.erases));
          if (first_id != rec.first_id) {
            throw PersistError(journal_path_ +
                               ": journal ids do not align with the "
                               "snapshot (corrupted checkpoint pairing)");
          }
          ++records_replayed_;
        }
        update_stats_.journal_records_replayed.fetch_add(
            records_replayed_, std::memory_order_relaxed);
      } else if (generation == scan.generation + 1) {
        // Crash window between the two checkpoint steps: the snapshot
        // already contains everything this journal holds. Drop it by
        // starting the snapshot's epoch fresh (step 3 handles it).
        stale_journal_ = true;
      } else {
        throw PersistError(journal_path_ + ": journal generation " +
                           std::to_string(scan.generation) +
                           " cannot pair with snapshot generation " +
                           std::to_string(generation));
      }
    }

    // 3. Open the journal for appending at the snapshot's epoch and attach
    // it, so every future batch is logged before it is applied. The scan
    // from step 2 is handed over so the file is not decoded twice.
    if (stale_journal_) {
      journal_ = std::make_unique<UpdateJournal<D>>(
          journal_path_, epsilon, counts_cap, options,
          /*generation=*/generation - 1, persist_options_.journal_fsync,
          &update_stats_, &scan);
      journal_->ResetToGeneration(generation);
    } else {
      journal_ = std::make_unique<UpdateJournal<D>>(
          journal_path_, epsilon, counts_cap, options, generation,
          persist_options_.journal_fsync, &update_stats_,
          scanned ? &scan : nullptr);
    }
    generation_ = generation;
    index_->set_journal(journal_.get());

    pool_ = std::make_unique<parallel::EnginePool<D>>(index_->snapshot());
  }

  PersistentClusterer(const PersistentClusterer&) = delete;
  PersistentClusterer& operator=(const PersistentClusterer&) = delete;

  // Writer-thread only: journals, applies, and publishes one batch (erases
  // first, then inserts; ids as in StreamingClusterer). The batch is in
  // the WAL before any state changes, so a crash at any later point
  // replays it.
  uint64_t ApplyUpdates(std::span<const geometry::Point<D>> inserts,
                        std::span<const uint64_t> erases) {
    const uint64_t first_id = index_->ApplyUpdates(inserts, erases);
    pool_->ReplaceIndex(index_->snapshot());
    return first_id;
  }

  uint64_t Insert(std::span<const geometry::Point<D>> points) {
    return ApplyUpdates(points, std::span<const uint64_t>());
  }
  uint64_t Insert(const std::vector<geometry::Point<D>>& points) {
    return Insert(std::span<const geometry::Point<D>>(points));
  }
  void Erase(std::span<const uint64_t> ids) {
    ApplyUpdates(std::span<const geometry::Point<D>>(), ids);
  }
  void Erase(const std::vector<uint64_t>& ids) {
    Erase(std::span<const uint64_t>(ids));
  }

  // Writer-thread only: makes the current state the new recovery base —
  // writes a snapshot (temp + rename, fsync'ed) tagged with the next
  // journal generation, then resets the journal to that generation.
  // Recovery after a crash between the two steps replays nothing and
  // reconciles the epochs (see the class comment).
  void Checkpoint() {
    const uint64_t next_generation = generation_ + 1;
    const auto snap = index_->snapshot();
    SnapshotWriter<D>::Write(snapshot_path_, *snap, index_->LiveIds(),
                             index_->next_id(), next_generation,
                             &update_stats_);
    journal_->ResetToGeneration(next_generation);
    generation_ = next_generation;
  }

  // Thread-safe query surface (see parallel/engine_pool.h).
  Clustering Run(size_t min_pts) { return pool_->Run(min_pts); }
  std::vector<Clustering> Sweep(std::span<const size_t> minpts_list) {
    return pool_->Sweep(minpts_list);
  }
  std::vector<Clustering> Sweep(std::initializer_list<size_t> minpts_list) {
    return pool_->Sweep(minpts_list);
  }
  std::shared_ptr<const dbscan::CellIndex<D>> snapshot() const {
    return index_->snapshot();
  }

  // Writer-thread accessors (see streaming/dynamic_cell_index.h).
  size_t num_points() const { return index_->num_points(); }
  size_t num_cells() const { return index_->num_cells(); }
  std::vector<geometry::Point<D>> LivePoints() const {
    return index_->LivePoints();
  }
  const std::vector<uint64_t>& LiveIds() const { return index_->LiveIds(); }
  uint64_t next_id() const { return index_->next_id(); }

  // Recovery introspection: whether construction found a checkpoint, and
  // how many journal records it replayed on top.
  bool recovered_from_snapshot() const { return recovered_from_snapshot_; }
  size_t records_replayed() const { return records_replayed_; }
  uint64_t generation() const { return generation_; }

  // Cumulative writer-side + persistence counters (snapshot_bytes_*,
  // journal_records_replayed, cells_rebuilt/retained, ...).
  const dbscan::PipelineStats& update_stats() const { return update_stats_; }
  void AggregateStats(dbscan::PipelineStats& out) const {
    out.MergeFrom(update_stats_);
    pool_->AggregateStats(out);
  }

  parallel::EnginePool<D>& pool() { return *pool_; }

 private:
  static void RequireConfig(double got_eps, size_t got_cap,
                            const Options& got, double eps, size_t cap,
                            const Options& want) {
    const bool same =
        got_eps == eps && got_cap == cap &&
        got.cell_method == want.cell_method &&
        got.connect_method == want.connect_method &&
        got.range_count == want.range_count &&
        got.bucketing == want.bucketing && got.core_only == want.core_only &&
        got.num_buckets == want.num_buckets && got.rho == want.rho &&
        got.delaunay_jitter_seed == want.delaunay_jitter_seed;
    if (!same) {
      throw PersistError(
          "persisted index configuration does not match this constructor's "
          "(epsilon / counts_cap / options)");
    }
  }

  std::string snapshot_path_;
  std::string journal_path_;
  PersistOptions persist_options_;
  dbscan::PipelineStats update_stats_;
  std::unique_ptr<streaming::DynamicCellIndex<D>> index_;
  std::unique_ptr<UpdateJournal<D>> journal_;
  std::unique_ptr<parallel::EnginePool<D>> pool_;
  uint64_t generation_ = 0;
  bool recovered_from_snapshot_ = false;
  bool stale_journal_ = false;
  size_t records_replayed_ = 0;
};

}  // namespace pdbscan::persist

#endif  // PDBSCAN_PERSIST_PERSISTENT_CLUSTERER_H_
