// SnapshotWriter / SnapshotReader — durable CellIndex snapshots.
//
// A snapshot is everything a frozen CellIndex is made of: the reordered
// points, the CellStructure layout (offsets / coords / boxes / CSR
// adjacency), the saturated MarkCore neighbor counts, and the build
// parameters (epsilon, counts_cap, Options) — plus, optionally, the
// streaming writer state (stable live ids + the next id) so a
// DynamicCellIndex can resume updating exactly where it left off.
//
// Two load paths, one adoption constructor:
//
//   * LoadMode::kOwned — the arrays are bulk-copied out of the file into
//     owning FlatArrays. The index is self-contained; the file may be
//     deleted afterwards.
//   * LoadMode::kMapped — the file is mmap'ed and the FlatArrays VIEW the
//     mapping; nothing is copied (the per-cell quadtrees of kQuadtree
//     configurations are the one exception: they are derived structures,
//     rebuilt deterministically over the mapped points). Load cost is
//     validation only, so a multi-GB index is servable in milliseconds.
//     The index pins the mapping alive; the file must stay readable and
//     unmodified while any loaded index serves.
//
// Either way the rehydrated index goes through the SAME
// CellSource::AdoptPrebuilt adoption path the streaming and sharded
// producers use, so queries against it are bit-identical to the index that
// was saved (tests/test_persist.cpp and bench/throughput_persist.cpp
// enforce this by assertion and exit code).
//
// Corruption safety: magic + version + endianness probe + independent
// header/payload checksums + exact size accounting (see persist/format.h).
// A truncated, corrupted, version-skewed or foreign file throws
// PersistError with the offending path — never a crash or a silently wrong
// index. Writes are crash-safe: the file appears under its final name only
// after a complete fsync'ed temp file is renamed over it.
#ifndef PDBSCAN_PERSIST_SNAPSHOT_H_
#define PDBSCAN_PERSIST_SNAPSHOT_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "containers/flat_array.h"
#include "dbscan/cell_index.h"
#include "dbscan/cell_structure.h"
#include "dbscan/stats.h"
#include "dbscan/types.h"
#include "geometry/point.h"
#include "persist/format.h"
#include "persist/io.h"
#include "telemetry/trace.h"
#include "util/timer.h"

namespace pdbscan::persist {

// The wire layout IS the in-memory layout; these are the assumptions that
// make the zero-copy view valid.
static_assert(sizeof(size_t) == sizeof(uint64_t),
              "snapshots store CSR offsets as raw size_t words (64-bit)");

template <int D>
inline constexpr bool kLayoutIsPortable =
    std::is_trivially_copyable_v<geometry::Point<D>> &&
    sizeof(geometry::Point<D>) == D * sizeof(double) &&
    std::is_trivially_copyable_v<geometry::BBox<D>> &&
    sizeof(geometry::BBox<D>) == 2 * D * sizeof(double) &&
    sizeof(geometry::CellCoords<D>) == D * sizeof(int64_t);

// Header summary of a snapshot file, without loading the payload — the
// runtime-dimension dispatch point (examples/pdbscan_cli.cpp peeks the dim
// and then instantiates the right SnapshotReader<D>).
struct SnapshotInfo {
  int dim = 0;
  uint32_t version = 0;
  double epsilon = 0;
  size_t counts_cap = 0;
  uint64_t num_points = 0;
  uint64_t num_cells = 0;
  bool has_stream_state = false;
  uint64_t next_id = 0;
  uint64_t journal_generation = 0;
  Options options;
  uint64_t file_bytes = 0;
};

namespace internal {

// Validates everything that does not require the payload: magic, version,
// endianness, header checksum, and field sanity. Throws PersistError.
inline SnapshotHeader ValidateHeader(const std::string& path,
                                     const uint8_t* data, size_t size) {
  if (size < sizeof(SnapshotHeader)) {
    throw PersistError(path + ": truncated snapshot (no complete header)");
  }
  SnapshotHeader h;
  std::memcpy(&h, data, sizeof(h));
  if (std::memcmp(h.magic, kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    throw PersistError(path + ": not a pdbscan snapshot (bad magic)");
  }
  if (h.endian != kEndianProbe) {
    throw PersistError(path +
                       ": snapshot written with incompatible endianness");
  }
  if (h.version != kSnapshotVersion) {
    throw PersistError(path + ": unsupported snapshot version " +
                       std::to_string(h.version) + " (expected " +
                       std::to_string(kSnapshotVersion) + ")");
  }
  if (h.header_bytes != sizeof(SnapshotHeader)) {
    throw PersistError(path + ": snapshot header size mismatch");
  }
  SnapshotHeader probe = h;
  probe.header_checksum = 0;
  if (Checksum64(&probe, sizeof(probe)) != h.header_checksum) {
    throw PersistError(path + ": snapshot header checksum mismatch");
  }
  if (h.dim < 1 || h.dim > 64) {
    throw PersistError(path + ": implausible snapshot dimension");
  }
  if (!(h.epsilon > 0) || h.counts_cap == 0) {
    throw PersistError(path + ": invalid snapshot parameters");
  }
  // Bound the counts BEFORE ComputeSnapshotLayout multiplies them: with
  // counts <= 2^40 and dim <= 64 every section size stays far below
  // 2^64, so the layout arithmetic cannot wrap — which is what makes the
  // file_bytes equality check below a real out-of-bounds guard even
  // against a (non-cryptographic) checksum collision.
  constexpr uint64_t kMaxCount = 1ull << 40;
  if (h.num_points > kMaxCount || h.num_cells > kMaxCount ||
      h.num_neighbor_links > kMaxCount ||
      h.num_cells > h.num_points + 1 ||
      h.file_bytes < h.header_bytes) {
    throw PersistError(path + ": implausible snapshot sizes");
  }
  return h;
}

// Full validation against the complete file bytes: size accounting,
// payload checksum, and the structural invariants the query pipeline
// relies on (so even a checksum collision cannot produce out-of-bounds
// serving). Returns the computed layout.
inline SnapshotLayout ValidatePayload(const std::string& path,
                                      const SnapshotHeader& h,
                                      const uint8_t* data, size_t size) {
  if (h.file_bytes != size) {
    throw PersistError(path + ": truncated snapshot (" +
                       std::to_string(size) + " bytes, header declares " +
                       std::to_string(h.file_bytes) + ")");
  }
  const SnapshotLayout layout = ComputeSnapshotLayout(h);
  if (layout.file_bytes != h.file_bytes) {
    throw PersistError(path + ": snapshot section layout mismatch");
  }
  const SnapshotLayout::Section sections[] = {
      layout.points,      layout.orig_index, layout.offsets,
      layout.coords,      layout.cell_boxes, layout.nbr_offsets,
      layout.nbrs,        layout.neighbor_counts, layout.live_ids};
  uint64_t sums[9];
  for (int i = 0; i < 9; ++i) {
    sums[i] = Checksum64(data + sections[i].offset, sections[i].bytes);
  }
  if (Checksum64(sums, sizeof(sums)) != h.payload_checksum) {
    throw PersistError(path + ": snapshot payload checksum mismatch");
  }

  // Structural invariants (cheap relative to the payload: O(cells + CSR)).
  const uint64_t n = h.num_points;
  const uint64_t m = h.num_cells;
  const uint64_t* offsets =
      reinterpret_cast<const uint64_t*>(data + layout.offsets.offset);
  if (offsets[0] != 0 || offsets[m] != n) {
    throw PersistError(path + ": corrupted cell offsets");
  }
  for (uint64_t c = 0; c < m; ++c) {
    if (offsets[c] > offsets[c + 1]) {
      throw PersistError(path + ": corrupted cell offsets");
    }
  }
  const uint64_t* nbr_offsets =
      reinterpret_cast<const uint64_t*>(data + layout.nbr_offsets.offset);
  if (nbr_offsets[0] != 0 || nbr_offsets[m] != h.num_neighbor_links) {
    throw PersistError(path + ": corrupted adjacency offsets");
  }
  for (uint64_t c = 0; c < m; ++c) {
    if (nbr_offsets[c] > nbr_offsets[c + 1]) {
      throw PersistError(path + ": corrupted adjacency offsets");
    }
  }
  const uint32_t* nbrs =
      reinterpret_cast<const uint32_t*>(data + layout.nbrs.offset);
  for (uint64_t e = 0; e < h.num_neighbor_links; ++e) {
    if (nbrs[e] >= m) {
      throw PersistError(path + ": adjacency entry out of range");
    }
  }
  const uint32_t* orig =
      reinterpret_cast<const uint32_t*>(data + layout.orig_index.offset);
  for (uint64_t i = 0; i < n; ++i) {
    if (orig[i] >= n) {
      throw PersistError(path + ": point index out of range");
    }
  }
  const Options options = DecodeOptions(h.options, path);
  if (options.cell_method == CellMethod::kGrid && m > 0 &&
      (h.flags & kFlagHasCoords) == 0) {
    throw PersistError(path + ": grid snapshot is missing cell coords");
  }
  return layout;
}

}  // namespace internal

// Reads and validates only the header. Throws PersistError on anything
// that is not a well-formed snapshot header.
inline SnapshotInfo PeekSnapshot(const std::string& path) {
  const std::vector<uint8_t> head =
      ReadPrefixBytes(path, sizeof(SnapshotHeader));
  const SnapshotHeader h =
      internal::ValidateHeader(path, head.data(), head.size());
  SnapshotInfo info;
  info.dim = static_cast<int>(h.dim);
  info.version = h.version;
  info.epsilon = h.epsilon;
  info.counts_cap = static_cast<size_t>(h.counts_cap);
  info.num_points = h.num_points;
  info.num_cells = h.num_cells;
  info.has_stream_state = (h.flags & kFlagStreamState) != 0;
  info.next_id = h.next_id;
  info.journal_generation = h.journal_generation;
  info.options = DecodeOptions(h.options, path);
  info.file_bytes = h.file_bytes;
  return info;
}

// Writes a snapshot from raw parts — the low-level entry point shared by
// SnapshotWriter::Write (a whole CellIndex) and the sharded build's
// per-shard spill (a bare structure + counts). `live_ids`, when non-empty,
// must have exactly cells.num_points() entries and records the streaming
// writer state alongside (`next_id` is then required to be past every live
// id).
template <int D>
void WriteSnapshotRaw(const std::string& path,
                      const dbscan::CellStructure<D>& cells,
                      std::span<const uint32_t> neighbor_counts,
                      size_t counts_cap, const Options& options,
                      std::span<const uint64_t> live_ids = {},
                      uint64_t next_id = 0, uint64_t journal_generation = 0,
                      dbscan::PipelineStats* stats = nullptr) {
  static_assert(kLayoutIsPortable<D>,
                "Point/BBox/CellCoords must be flat arrays of 64-bit words");
  if (neighbor_counts.size() != cells.num_points()) {
    throw PersistError(path + ": counts do not cover the point set");
  }
  if (!live_ids.empty() && live_ids.size() != cells.num_points()) {
    throw PersistError(path + ": live ids do not cover the point set");
  }

  SnapshotHeader h;
  std::memcpy(h.magic, kSnapshotMagic, sizeof(kSnapshotMagic));
  h.version = kSnapshotVersion;
  h.endian = kEndianProbe;
  h.header_bytes = sizeof(SnapshotHeader);
  h.dim = D;
  h.flags = (cells.coords.empty() ? 0 : kFlagHasCoords) |
            (live_ids.empty() ? 0 : kFlagStreamState);
  h.epsilon = cells.epsilon;
  h.counts_cap = counts_cap;
  h.num_points = cells.num_points();
  h.num_cells = cells.num_cells();
  h.num_neighbor_links = cells.nbrs.size();
  h.next_id = live_ids.empty() ? 0 : next_id;
  h.journal_generation = journal_generation;
  h.options = EncodeOptions(options);
  const SnapshotLayout layout = ComputeSnapshotLayout(h);
  h.file_bytes = layout.file_bytes;

  struct Src {
    const void* data;
    SnapshotLayout::Section section;
  };
  const Src sources[] = {
      {cells.points.data(), layout.points},
      {cells.orig_index.data(), layout.orig_index},
      {cells.offsets.data(), layout.offsets},
      {cells.coords.data(), layout.coords},
      {cells.cell_boxes.data(), layout.cell_boxes},
      {cells.nbr_offsets.data(), layout.nbr_offsets},
      {cells.nbrs.data(), layout.nbrs},
      {neighbor_counts.data(), layout.neighbor_counts},
      {live_ids.data(), layout.live_ids},
  };
  uint64_t sums[9];
  for (int i = 0; i < 9; ++i) {
    sums[i] = Checksum64(sources[i].data, sources[i].section.bytes);
  }
  h.payload_checksum = Checksum64(sums, sizeof(sums));
  h.header_checksum = 0;
  h.header_checksum = Checksum64(&h, sizeof(h));

  AtomicFileWriter out(path);
  out.Write(&h, sizeof(h));
  for (const Src& src : sources) {
    out.PadTo(src.section.offset);
    out.Write(src.data, src.section.bytes);
  }
  out.PadTo(layout.file_bytes);
  out.Commit();

  dbscan::PipelineStats& sink =
      stats != nullptr ? *stats : dbscan::GlobalStats();
  sink.snapshot_bytes_written.fetch_add(layout.file_bytes,
                                        std::memory_order_relaxed);
}

template <int D>
class SnapshotWriter {
 public:
  // Serializes the frozen index to `path` (crash-safe: temp + rename).
  // Works for every configuration the library builds — kQuadtree
  // range-count configurations store no trees (they are derived data,
  // rebuilt at load).
  static void Write(const std::string& path, const dbscan::CellIndex<D>& index,
                    dbscan::PipelineStats* stats = nullptr) {
    WriteSnapshotRaw<D>(path, index.cells(), index.neighbor_counts().span(),
                        index.counts_cap(), index.options(), {}, 0, 0, stats);
  }

  // Streaming checkpoint variant: additionally records the stable live ids
  // (dataset order, ids ascending), the writer's next id, and the journal
  // generation this checkpoint pairs with, so a DynamicCellIndex can be
  // restored and continue applying updates.
  static void Write(const std::string& path, const dbscan::CellIndex<D>& index,
                    std::span<const uint64_t> live_ids, uint64_t next_id,
                    uint64_t journal_generation = 0,
                    dbscan::PipelineStats* stats = nullptr) {
    WriteSnapshotRaw<D>(path, index.cells(), index.neighbor_counts().span(),
                        index.counts_cap(), index.options(), live_ids,
                        next_id, journal_generation, stats);
  }
};

// The result of a load: the rehydrated index plus any streaming writer
// state the snapshot carried.
template <int D>
struct LoadedSnapshot {
  std::shared_ptr<const dbscan::CellIndex<D>> index;
  bool has_stream_state = false;
  std::vector<uint64_t> live_ids;  // Dataset order (ids ascending).
  uint64_t next_id = 0;
  uint64_t journal_generation = 0;
};

template <int D>
class SnapshotReader {
 public:
  // Loads and fully validates `path`. Throws PersistError on corruption,
  // truncation, version or endianness mismatch, and std::invalid_argument
  // style errors surface as PersistError too (wrapped by message). The
  // snapshot's dimension must equal D — use PeekSnapshot to dispatch.
  static LoadedSnapshot<D> Load(const std::string& path,
                                LoadMode mode = LoadMode::kOwned,
                                dbscan::PipelineStats* stats = nullptr) {
    static_assert(kLayoutIsPortable<D>,
                  "Point/BBox/CellCoords must be flat arrays of words");
    util::Timer timer;
    telemetry::TraceSpan span("snapshot_load");
    LoadedSnapshot<D> out;
    std::shared_ptr<const MappedFile> map;
    std::shared_ptr<std::vector<uint8_t>> owned_bytes;
    const uint8_t* data = nullptr;
    size_t size = 0;
    if (mode == LoadMode::kMapped) {
      map = MappedFile::Open(path);
      data = map->data();
      size = map->size();
    } else {
      owned_bytes =
          std::make_shared<std::vector<uint8_t>>(ReadAllBytes(path));
      data = owned_bytes->data();
      size = owned_bytes->size();
    }
    const SnapshotHeader h = internal::ValidateHeader(path, data, size);
    if (h.dim != D) {
      throw PersistError(path + ": snapshot dimension " +
                         std::to_string(h.dim) + " does not match " +
                         std::to_string(D));
    }
    const SnapshotLayout layout = internal::ValidatePayload(path, h, data,
                                                            size);
    const Options options = DecodeOptions(h.options, path);

    dbscan::CellStructure<D> cells;
    cells.epsilon = h.epsilon;
    cells.metric = options.metric;
    const size_t n = static_cast<size_t>(h.num_points);
    const size_t m = static_cast<size_t>(h.num_cells);
    AdoptArray<geometry::Point<D>>(cells.points, data, layout.points, n,
                                   mode);
    AdoptArray<uint32_t>(cells.orig_index, data, layout.orig_index, n, mode);
    AdoptArray<size_t>(cells.offsets, data, layout.offsets, m + 1, mode);
    AdoptArray<geometry::CellCoords<D>>(
        cells.coords, data, layout.coords,
        (h.flags & kFlagHasCoords) ? m : 0, mode);
    AdoptArray<geometry::BBox<D>>(cells.cell_boxes, data, layout.cell_boxes,
                                  m, mode);
    AdoptArray<size_t>(cells.nbr_offsets, data, layout.nbr_offsets, m + 1,
                       mode);
    AdoptArray<uint32_t>(cells.nbrs, data, layout.nbrs,
                         static_cast<size_t>(h.num_neighbor_links), mode);
    containers::FlatArray<uint32_t> counts;
    AdoptArray<uint32_t>(counts, data, layout.neighbor_counts, n, mode);

    // SoA coordinate lanes for the distance kernels are derived data, never
    // part of the wire format. A mapped load keeps its zero-copy guarantee
    // by viewing lane d as every D-th double of the mapped AoS point array
    // (the kernels read strided lanes through their scalar path); an owned
    // load materializes packed aligned lanes like any other builder.
    if (mode == LoadMode::kMapped) {
      cells.ViewSoALanesFromPoints();
    } else {
      cells.BuildSoALanes();
    }

    // In mapped mode the index pins the mapping; owned mode pins nothing
    // (the FlatArrays own their copies and `owned_bytes` dies here).
    std::shared_ptr<const void> payload =
        mode == LoadMode::kMapped ? std::shared_ptr<const void>(map)
                                  : nullptr;
    out.index = std::make_shared<const dbscan::CellIndex<D>>(
        std::move(cells), std::move(counts),
        static_cast<size_t>(h.counts_cap), options, stats,
        std::move(payload));

    out.has_stream_state = (h.flags & kFlagStreamState) != 0;
    out.journal_generation = h.journal_generation;
    if (out.has_stream_state) {
      const uint64_t* ids =
          reinterpret_cast<const uint64_t*>(data + layout.live_ids.offset);
      out.live_ids.assign(ids, ids + n);
      out.next_id = h.next_id;
      for (const uint64_t id : out.live_ids) {
        if (id >= out.next_id) {
          throw PersistError(path + ": live id beyond the next-id horizon");
        }
      }
    }

    dbscan::PipelineStats& sink =
        stats != nullptr ? *stats : dbscan::GlobalStats();
    sink.snapshot_bytes_read.fetch_add(h.file_bytes,
                                       std::memory_order_relaxed);
    dbscan::AddSeconds(sink.snapshot_load_seconds, timer.Seconds());
    return out;
  }

 private:
  template <typename T>
  static void AdoptArray(containers::FlatArray<T>& dst, const uint8_t* base,
                         const SnapshotLayout::Section& section, size_t count,
                         LoadMode mode) {
    const T* src = reinterpret_cast<const T*>(base + section.offset);
    if (mode == LoadMode::kMapped) {
      dst = containers::FlatArray<T>::View(src, count);
    } else {
      std::vector<T> copy(count);
      std::memcpy(copy.data(), src, count * sizeof(T));
      dst = std::move(copy);
    }
  }
};

}  // namespace pdbscan::persist

#endif  // PDBSCAN_PERSIST_SNAPSHOT_H_
