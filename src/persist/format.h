// On-disk format of the persistence layer: versioned, checksummed binary
// snapshots of a frozen CellIndex, and the streaming update journal (WAL).
//
// Design goals, in order:
//
//   1. Zero-copy serving. Every array section is stored exactly as its
//      in-memory representation (reordered Point<D>s, CSR offsets, packed
//      uint32 counts, ...), 64-byte aligned, so the mmap load path
//      (persist/snapshot.h, LoadMode::kMapped) points the CellStructure's
//      FlatArrays straight at the mapping — load cost is O(validation),
//      not O(index).
//   2. No silent misreads. A magic tag, a format version, an endianness
//      probe, independent header and payload checksums, and exact size
//      accounting (declared file size == actual file size == computed
//      section layout) mean a corrupted, truncated, or foreign file is
//      rejected with a PersistError — never parsed into garbage.
//   3. One layout computation. The section table is a pure function of the
//      header (ComputeSnapshotLayout below), shared by writer and reader,
//      so the two cannot disagree about where an array lives.
//
// The journal is a sequence of self-delimiting records appended after a
// fixed header; each record carries its own checksum so replay can
// distinguish a torn tail (a crash mid-append — ignored, normal WAL
// behavior) from mid-file corruption (rejected).
#ifndef PDBSCAN_PERSIST_FORMAT_H_
#define PDBSCAN_PERSIST_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <type_traits>

#include "dbscan/types.h"

namespace pdbscan::persist {

// Every failure of the persistence layer — open/IO errors, bad magic,
// version or dimension mismatch, checksum failure, truncation.
class PersistError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// How SnapshotReader materializes the index.
//   kOwned:  arrays are copied out of the file; the index is self-contained
//            (one bulk memcpy per section — still no parsing).
//   kMapped: arrays view the mmap'ed file; load is O(validation) and the
//            index pins the mapping for its lifetime. The file must stay
//            readable and unmodified while the index lives.
enum class LoadMode { kOwned, kMapped };

inline constexpr char kSnapshotMagic[8] = {'P', 'D', 'B', 'S',
                                           'N', 'A', 'P', '1'};
inline constexpr uint32_t kSnapshotVersion = 1;
inline constexpr char kJournalMagic[8] = {'P', 'D', 'B', 'S',
                                          'J', 'N', 'L', '1'};
inline constexpr uint32_t kJournalVersion = 1;
// Written as an integer, read back as an integer: differs byte-for-byte
// between little- and big-endian writers, so a cross-endian file is caught
// before any multi-byte field is trusted.
inline constexpr uint32_t kEndianProbe = 0x01020304u;
// Section alignment inside snapshot files. 64 covers every element type
// (max alignment 8) with cache-line slack for the mapped read path.
inline constexpr uint64_t kSectionAlign = 64;

// SnapshotHeader.flags bits.
inline constexpr uint32_t kFlagHasCoords = 1u << 0;   // Grid-method cells.
inline constexpr uint32_t kFlagStreamState = 1u << 1;  // live_ids + next_id.

inline constexpr uint64_t AlignUp(uint64_t v) {
  return (v + kSectionAlign - 1) & ~(kSectionAlign - 1);
}

// Fast 64-bit mixing checksum (FNV-style over 8-byte words). Not
// cryptographic — it guards against corruption and truncation, not
// adversaries.
inline uint64_t Checksum64(const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t h = 0x9e3779b97f4a7c15ull ^
               (static_cast<uint64_t>(n) * 0x100000001b3ull);
  while (n >= 8) {
    uint64_t w;
    std::memcpy(&w, p, 8);
    h = (h ^ w) * 0x100000001b3ull;
    h ^= h >> 29;
    p += 8;
    n -= 8;
  }
  if (n > 0) {
    uint64_t tail = 0;
    std::memcpy(&tail, p, n);
    h = (h ^ tail) * 0x100000001b3ull;
  }
  h ^= h >> 32;
  return h;
}

// Options, fixed-width. Enums are stored as bytes and validated on decode
// so a corrupted value cannot materialize an out-of-range enum.
struct OptionsRecord {
  uint8_t cell_method = 0;
  uint8_t connect_method = 0;
  uint8_t range_count = 0;
  uint8_t bucketing = 0;
  uint8_t core_only = 0;
  // Distance metric (dbscan::Metric). Occupies what used to be a padding
  // byte, so pre-metric files decode as 0 == kL2 — their actual metric.
  uint8_t metric = 0;
  uint8_t pad[2] = {0, 0};
  uint64_t num_buckets = 0;
  double rho = 0;
  uint64_t delaunay_jitter_seed = 0;
};
static_assert(std::is_trivially_copyable_v<OptionsRecord>);
static_assert(sizeof(OptionsRecord) == 32);

inline OptionsRecord EncodeOptions(const Options& o) {
  OptionsRecord r;
  r.cell_method = static_cast<uint8_t>(o.cell_method);
  r.connect_method = static_cast<uint8_t>(o.connect_method);
  r.range_count = static_cast<uint8_t>(o.range_count);
  r.bucketing = o.bucketing ? 1 : 0;
  r.core_only = o.core_only ? 1 : 0;
  r.metric = static_cast<uint8_t>(o.metric);
  r.num_buckets = o.num_buckets;
  r.rho = o.rho;
  r.delaunay_jitter_seed = o.delaunay_jitter_seed;
  return r;
}

inline Options DecodeOptions(const OptionsRecord& r, const std::string& path) {
  if (r.cell_method > static_cast<uint8_t>(CellMethod::kBox) ||
      r.connect_method >
          static_cast<uint8_t>(ConnectMethod::kApproxQuadtree) ||
      r.range_count > static_cast<uint8_t>(RangeCountMethod::kQuadtree) ||
      r.bucketing > 1 || r.core_only > 1 ||
      r.metric > static_cast<uint8_t>(Metric::kLinf)) {
    throw PersistError(path + ": corrupted options record");
  }
  Options o;
  o.cell_method = static_cast<CellMethod>(r.cell_method);
  o.connect_method = static_cast<ConnectMethod>(r.connect_method);
  o.range_count = static_cast<RangeCountMethod>(r.range_count);
  o.bucketing = r.bucketing != 0;
  o.core_only = r.core_only != 0;
  o.metric = static_cast<Metric>(r.metric);
  o.num_buckets = r.num_buckets;
  o.rho = r.rho;
  o.delaunay_jitter_seed = r.delaunay_jitter_seed;
  return o;
}

// Fixed-size snapshot header. Trivially copyable: written and read as raw
// bytes, validated field by field.
struct SnapshotHeader {
  char magic[8] = {};
  uint32_t version = 0;
  uint32_t endian = 0;
  uint64_t header_bytes = 0;  // sizeof(SnapshotHeader); layout base.
  uint64_t file_bytes = 0;    // Total file size, for truncation checks.
  // Checksum64 over the nine per-section Checksum64 values in layout order
  // (absent sections contribute their checksum of zero bytes). Covers every
  // payload byte; inter-section padding is structural zeros and excluded.
  uint64_t payload_checksum = 0;
  // Checksum64 of this struct with header_checksum itself zeroed; catches
  // header corruption before any size field is trusted.
  uint64_t header_checksum = 0;
  uint32_t dim = 0;
  uint32_t flags = 0;
  double epsilon = 0;
  uint64_t counts_cap = 0;
  uint64_t num_points = 0;
  uint64_t num_cells = 0;
  uint64_t num_neighbor_links = 0;  // Total CSR adjacency entries.
  uint64_t next_id = 0;             // Stream state; 0 without the flag.
  // The journal epoch this snapshot pairs with: a checkpoint writes the
  // snapshot tagged generation G+1 and then resets the journal to a fresh
  // header tagged G+1. Recovery replays the journal only when the two
  // generations MATCH — a crash between the two checkpoint steps leaves
  // the journal one generation behind, which recovery recognizes as
  // "already folded into the snapshot" instead of double-applying it.
  uint64_t journal_generation = 0;
  OptionsRecord options;
  uint8_t reserved[16] = {};
};
static_assert(std::is_trivially_copyable_v<SnapshotHeader>);
static_assert(sizeof(SnapshotHeader) % 8 == 0);

// Where each array section lives in the file. Offsets are absolute;
// a section of zero bytes is simply absent (e.g. coords for the 2D box
// method, live_ids without stream state).
struct SnapshotLayout {
  struct Section {
    uint64_t offset = 0;
    uint64_t bytes = 0;
  };
  Section points;          // num_points * dim * sizeof(double)
  Section orig_index;      // num_points * sizeof(uint32_t)
  Section offsets;         // (num_cells + 1) * sizeof(uint64_t)
  Section coords;          // num_cells * dim * sizeof(int64_t) (grid only)
  Section cell_boxes;      // num_cells * 2 * dim * sizeof(double)
  Section nbr_offsets;     // (num_cells + 1) * sizeof(uint64_t)
  Section nbrs;            // num_neighbor_links * sizeof(uint32_t)
  Section neighbor_counts; // num_points * sizeof(uint32_t)
  Section live_ids;        // num_points * sizeof(uint64_t) (stream state)
  uint64_t file_bytes = 0;
};

// The single source of truth for section placement, shared by writer and
// reader. Pure function of the header.
inline SnapshotLayout ComputeSnapshotLayout(const SnapshotHeader& h) {
  SnapshotLayout layout;
  const uint64_t dim = h.dim;
  const uint64_t n = h.num_points;
  const uint64_t m = h.num_cells;
  uint64_t at = AlignUp(h.header_bytes);
  auto place = [&at](SnapshotLayout::Section& s, uint64_t bytes) {
    s.offset = at;
    s.bytes = bytes;
    at = AlignUp(at + bytes);
  };
  place(layout.points, n * dim * sizeof(double));
  place(layout.orig_index, n * sizeof(uint32_t));
  place(layout.offsets, (m + 1) * sizeof(uint64_t));
  place(layout.coords,
        (h.flags & kFlagHasCoords) ? m * dim * sizeof(int64_t) : 0);
  place(layout.cell_boxes, m * 2 * dim * sizeof(double));
  place(layout.nbr_offsets, (m + 1) * sizeof(uint64_t));
  place(layout.nbrs, h.num_neighbor_links * sizeof(uint32_t));
  place(layout.neighbor_counts, n * sizeof(uint32_t));
  place(layout.live_ids,
        (h.flags & kFlagStreamState) ? n * sizeof(uint64_t) : 0);
  layout.file_bytes = at;
  return layout;
}

// Journal file header (fixed size, once at the start of the file).
struct JournalHeader {
  char magic[8] = {};
  uint32_t version = 0;
  uint32_t endian = 0;
  uint32_t dim = 0;
  uint32_t flags = 0;
  double epsilon = 0;
  uint64_t counts_cap = 0;
  // Journal epoch; see SnapshotHeader::journal_generation.
  uint64_t generation = 0;
  OptionsRecord options;
  // Checksum64 of this struct with header_checksum zeroed.
  uint64_t header_checksum = 0;
};
static_assert(std::is_trivially_copyable_v<JournalHeader>);

// One appended update batch: this header, then num_erases uint64 ids, then
// num_inserts * dim doubles, then a uint64 Checksum64 over everything from
// the start of the record header through the last payload byte.
struct JournalRecordHeader {
  uint64_t record_bytes = 0;  // Header + payload + trailing checksum.
  uint64_t first_id = 0;      // Id assigned to inserts[0] by the apply.
  uint64_t num_inserts = 0;
  uint64_t num_erases = 0;
};
static_assert(std::is_trivially_copyable_v<JournalRecordHeader>);

inline uint64_t JournalRecordBytes(uint64_t dim, uint64_t num_inserts,
                                   uint64_t num_erases) {
  return sizeof(JournalRecordHeader) + num_erases * sizeof(uint64_t) +
         num_inserts * dim * sizeof(double) + sizeof(uint64_t);
}

}  // namespace pdbscan::persist

#endif  // PDBSCAN_PERSIST_FORMAT_H_
