// ShardedCellIndex — spatially partitioned index construction: per-shard
// cell structures and MarkCore counts built concurrently, reconciled by a
// boundary-merge stage that touches only cells within one epsilon of a
// shard seam, and frozen into a single immutable CellIndex that the
// ordinary query surfaces (QueryContext, EnginePool, sweeps) serve
// unchanged.
//
// Why this is exact: the paper's grid decomposition localizes every
// pipeline input. A cell's saturated MarkCore counts depend only on points
// in cells within epsilon of it; connectivity and border reach likewise
// consult only eps-adjacent cells. Partitioning the lattice into
// grid-aligned slabs (shard_planner.h) therefore splits the build into
// independent per-shard problems *except* for cells within `halo` lattice
// columns of a seam. The build runs in three phases:
//
//   1. per-shard build (concurrent, one scheduler task per shard): each
//      shard runs the standard BuildGrid over its own points — anchored at
//      the GLOBAL bounding-box origin, so shard cells are verbatim subsets
//      of the single-index decomposition — and counts its *interior* cells
//      with the standard Algorithm 2 body. Interior cells have their whole
//      eps-neighborhood inside the shard, so these counts are already
//      globally exact.
//   2. recomposition: the per-shard structures concatenate into one flat
//      CellStructure (offsets/points/coords/boxes re-based; within-shard
//      adjacency re-indexed). A memcpy-scale pass, like the streaming
//      recomposition.
//   3. boundary merge: cross-seam adjacency is discovered among boundary
//      cells only (ForEachNeighborAmong in grid.h — literally the same
//      dispatch BuildGridAdjacency runs, restricted to the seam cells),
//      and boundary cells are recounted against the now-complete merged
//      adjacency. Merge work is proportional to the number of boundary
//      cells, never the dataset: shard_boundary_cells / shard_seam_links /
//      shard_merge_seconds in the stats sink make that measurable, and
//      bench/throughput_sharded.cpp enforces it by exit code.
//
// The merged (structure, counts) pair then freezes through the same
// adoption constructor the streaming path uses, producing a CellIndex that
// queries cannot distinguish from a from-scratch build. For exact
// configurations the resulting labels are bit-identical to a single-index
// run — clustering is a function of point geometry and dataset order, not
// of cell numbering (the same argument, and the same tests, as the
// streaming layer; see tests/test_sharding.cpp and the sharded cases in
// tests/test_property_sweep.cpp). Approximate connectivity (OurApprox*) is
// decomposition-order-dependent and stays valid per Gan-Tao but is not
// guaranteed label-identical to an unsharded run.
//
// Scope: the grid cell method at any dimension with the kScan range-count
// method — the same restrictions as streaming, for the same reasons (the
// 2D box decomposition is a global function of the x-sorted order; frozen
// per-cell quadtrees would pin each shard's layout). The constructor
// rejects other configurations up front.
//
// A ShardedCellIndex is immutable after construction; share its index()
// freely. parallel::EnginePool can be constructed directly from one, and
// ShardedClusterer (sharded_clusterer.h) packages the pair.
#ifndef PDBSCAN_SHARDING_SHARDED_CELL_INDEX_H_
#define PDBSCAN_SHARDING_SHARDED_CELL_INDEX_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "dbscan/cell_index.h"
#include "dbscan/cell_structure.h"
#include "dbscan/grid.h"
#include "dbscan/mark_core.h"
#include "dbscan/stats.h"
#include "dbscan/types.h"
#include "geometry/point.h"
#include "parallel/engine_pool.h"
#include "parallel/scheduler.h"
#include "telemetry/trace.h"
#include "persist/snapshot.h"
#include "sharding/shard_planner.h"
#include "util/timer.h"

namespace pdbscan::sharding {

// Accounting of one sharded build: per-shard sizes plus the merge-stage
// footprint. The boundary/interior split is the sharded analogue of
// streaming's rebuilt/retained: merge work must track boundary_cells.
struct ShardBuildInfo {
  std::vector<size_t> shard_points;  // Points owned by each shard.
  std::vector<size_t> shard_cells;   // Non-empty cells in each shard.
  size_t interior_cells = 0;   // Counted inside their shard (phase 1).
  size_t boundary_cells = 0;   // Recounted in the merge stage (phase 3).
  size_t seam_links = 0;       // Cross-shard adjacency edges added.
  double shard_build_seconds = 0;  // Phase 1: concurrent per-shard builds.
  double shard_count_seconds = 0;  // Phase 1: interior MarkCore counts.
  double merge_seconds = 0;        // Phase 3: seam adjacency + recount.
  // Per-shard spill (when a spill directory was given): one snapshot file
  // per shard, written concurrently between phases 1 and 2.
  std::vector<std::string> spill_paths;
  double spill_seconds = 0;
};

template <int D>
class ShardedCellIndex {
 public:
  // Plans `num_shards` grid-aligned slabs over `points` and builds the
  // merged index as described above. `counts_cap` bounds the min_pts range
  // answered from the shared counts, exactly as in CellIndex::Build.
  // Requires the grid cell method and kScan range counting; throws
  // std::invalid_argument otherwise (and for non-positive epsilon /
  // counts_cap / num_shards). `stats` is the sink for build counters and
  // timings (nullptr: the process-wide GlobalStats()). `points` is only
  // read during construction.
  ShardedCellIndex(std::span<const geometry::Point<D>> points, double epsilon,
                   size_t counts_cap, size_t num_shards,
                   Options options = Options(),
                   dbscan::PipelineStats* stats = nullptr)
      : ShardedCellIndex(points, epsilon, counts_cap, num_shards,
                         /*spill_dir=*/std::string(), std::move(options),
                         stats) {}

  ShardedCellIndex(const std::vector<geometry::Point<D>>& points,
                   double epsilon, size_t counts_cap, size_t num_shards,
                   Options options = Options(),
                   dbscan::PipelineStats* stats = nullptr)
      : ShardedCellIndex(std::span<const geometry::Point<D>>(points), epsilon,
                         counts_cap, num_shards, std::move(options), stats) {}

  // Build with per-shard spill: between the concurrent per-shard builds
  // and the merge, every shard's structure + interior counts are written
  // to `spill_dir`/shard-<s>.pdbsnap — concurrently, one snapshot file per
  // shard builder. Spill files are build checkpoints in the standard
  // snapshot format (loadable for inspection or a partial-restart
  // pipeline); note their boundary cells' counts are pre-merge (interior
  // counts are already globally exact, boundary cells recount at merge).
  // The merged frozen index itself saves ONCE via Save() below.
  ShardedCellIndex(std::span<const geometry::Point<D>> points, double epsilon,
                   size_t counts_cap, size_t num_shards,
                   const std::string& spill_dir, Options options = Options(),
                   dbscan::PipelineStats* stats = nullptr)
      : options_(std::move(options)), spill_dir_(spill_dir) {
    ValidateConfig(epsilon, counts_cap);
    dbscan::PipelineStats& sink =
        stats != nullptr ? *stats : dbscan::GlobalStats();
    plan_ = ShardPlanner::Plan<D>(points, epsilon, num_shards,
                                  options_.metric);
    BuildMerged(points, epsilon, counts_cap, stats, sink);
  }

  // Saves the merged frozen index as one ordinary snapshot —
  // persist::SnapshotReader (or pdbscan::LoadIndex) rehydrates it for
  // serving without redoing the sharded build.
  void Save(const std::string& path,
            dbscan::PipelineStats* stats = nullptr) const {
    persist::SnapshotWriter<D>::Write(path, *index_, stats);
  }

  ShardedCellIndex(const ShardedCellIndex&) = delete;
  ShardedCellIndex& operator=(const ShardedCellIndex&) = delete;

  // The merged frozen index — a perfectly ordinary CellIndex: hand it to an
  // EnginePool, QueryContexts, or any other consumer of shared indexes.
  const std::shared_ptr<const dbscan::CellIndex<D>>& index() const {
    return index_;
  }

  // The executed partition (axis, lattice cuts, halo width).
  const ShardPlan<D>& plan() const { return plan_; }

  // Shards actually planned (<= the requested count when the lattice has
  // fewer columns than shards were asked for).
  size_t num_shards() const { return plan_.num_shards(); }

  size_t num_points() const { return index_->num_points(); }
  size_t num_cells() const { return index_->num_cells(); }

  // Per-shard sizes and the merge-stage footprint of this build.
  const ShardBuildInfo& build_info() const { return info_; }

 private:
  void ValidateConfig(double epsilon, size_t counts_cap) const {
    if (epsilon <= 0) throw std::invalid_argument("epsilon must be positive");
    if (counts_cap == 0) {
      throw std::invalid_argument("counts_cap must be positive");
    }
    if (options_.cell_method != CellMethod::kGrid) {
      throw std::invalid_argument(
          "sharded builds support the grid cell method only (the box strip "
          "decomposition is a global function of all points)");
    }
    if (options_.range_count != RangeCountMethod::kScan) {
      throw std::invalid_argument(
          "sharded builds support the kScan range-count method only "
          "(per-cell quadtrees pin each shard's exact point layout)");
    }
    ValidateMetricOptions(options_);
  }

  void BuildMerged(std::span<const geometry::Point<D>> points, double epsilon,
                   size_t counts_cap, dbscan::PipelineStats* stats,
                   dbscan::PipelineStats& sink) {
    using dbscan::CellStructure;
    using geometry::CellCoords;
    using geometry::Point;
    const size_t num_shards = plan_.num_shards();
    const size_t n = points.size();

    // --- Partition points into shards (stable within a shard, so the
    // original order is recoverable through gids). -------------------------
    util::Timer timer;
    std::vector<uint32_t> shard_of_point(n);
    parallel::parallel_for(0, n, [&](size_t i) {
      shard_of_point[i] =
          static_cast<uint32_t>(plan_.ShardOf(plan_.ColumnOf(points[i])));
    });
    std::vector<std::vector<Point<D>>> shard_pts(num_shards);
    std::vector<std::vector<uint32_t>> shard_gids(num_shards);
    {
      std::vector<size_t> counts(num_shards, 0);
      for (size_t i = 0; i < n; ++i) ++counts[shard_of_point[i]];
      for (size_t s = 0; s < num_shards; ++s) {
        shard_pts[s].reserve(counts[s]);
        shard_gids[s].reserve(counts[s]);
      }
      for (size_t i = 0; i < n; ++i) {
        const uint32_t s = shard_of_point[i];
        shard_pts[s].push_back(points[i]);
        shard_gids[s].push_back(static_cast<uint32_t>(i));
      }
    }

    // --- Phase 1a: per-shard cell structures, one scheduler task each.
    // The global bounds anchor every shard on the single-index lattice. ----
    // Recorded manually rather than via TraceSpan RAII: the phase boundary
    // is mid-function, not a scope.
    const uint64_t build_span_start =
        telemetry::TraceEnabled() ? telemetry::NowNanos() : 0;
    std::vector<CellStructure<D>> shards(num_shards);
    parallel::parallel_for(
        0, num_shards,
        [&](size_t s) {
          shards[s] = dbscan::BuildGrid<D>(
              std::span<const Point<D>>(shard_pts[s]), epsilon, &plan_.bounds,
              options_.metric);
        },
        1);
    if (build_span_start != 0) {
      telemetry::RecordSpan("shard_build", telemetry::CurrentTraceId(),
                            telemetry::CurrentSpanId(), build_span_start,
                            telemetry::NowNanos());
    }
    info_.shard_build_seconds = timer.Seconds();
    dbscan::AddSeconds(sink.build_cells_seconds, info_.shard_build_seconds);
    sink.shards_built.fetch_add(num_shards, std::memory_order_relaxed);
    sink.cells_built.fetch_add(1, std::memory_order_relaxed);

    // --- Phase 1b: interior-cell counts, exact without any seam data. -----
    timer.Reset();
    std::vector<std::vector<uint32_t>> shard_counts(num_shards);
    std::vector<std::vector<uint32_t>> shard_interior(num_shards);
    parallel::parallel_for(
        0, num_shards,
        [&](size_t s) {
          const CellStructure<D>& cells = shards[s];
          shard_counts[s].assign(cells.num_points(), 0);
          auto& interior = shard_interior[s];
          for (size_t c = 0; c < cells.num_cells(); ++c) {
            if (!plan_.IsBoundary(cells.coords[c][plan_.axis])) {
              interior.push_back(static_cast<uint32_t>(c));
            }
          }
          dbscan::MarkCoreCountsForCells<D>(
              cells, counts_cap, RangeCountMethod::kScan, nullptr,
              std::span<const uint32_t>(interior), shard_counts[s], &sink);
        },
        1);
    info_.shard_count_seconds = timer.Seconds();
    dbscan::AddSeconds(sink.mark_core_seconds, info_.shard_count_seconds);
    sink.counts_built.fetch_add(1, std::memory_order_relaxed);

    // --- Optional per-shard spill: each shard builder persists its own
    // structure + interior counts concurrently (one snapshot file per
    // shard, standard format). The merged index is NOT reassembled from
    // these — they are durable build checkpoints; Save() persists the
    // merged result once after the merge. ------------------------------
    if (!spill_dir_.empty()) {
      timer.Reset();
      info_.spill_paths.resize(num_shards);
      for (size_t s = 0; s < num_shards; ++s) {
        info_.spill_paths[s] =
            spill_dir_ + "/shard-" + std::to_string(s) + ".pdbsnap";
      }
      parallel::parallel_for(
          0, num_shards,
          [&](size_t s) {
            persist::WriteSnapshotRaw<D>(
                info_.spill_paths[s], shards[s],
                std::span<const uint32_t>(shard_counts[s]), counts_cap,
                options_, {}, 0, 0, stats);
          },
          1);
      info_.spill_seconds = timer.Seconds();
    }

    // --- Phase 2: recompose the flat merged structure. --------------------
    timer.Reset();
    std::vector<size_t> cell_base(num_shards + 1, 0);
    std::vector<size_t> point_base(num_shards + 1, 0);
    info_.shard_points.resize(num_shards);
    info_.shard_cells.resize(num_shards);
    for (size_t s = 0; s < num_shards; ++s) {
      info_.shard_points[s] = shards[s].num_points();
      info_.shard_cells[s] = shards[s].num_cells();
      cell_base[s + 1] = cell_base[s] + shards[s].num_cells();
      point_base[s + 1] = point_base[s] + shards[s].num_points();
    }
    const size_t m = cell_base[num_shards];
    CellStructure<D> merged;
    merged.epsilon = epsilon;
    merged.metric = options_.metric;
    merged.ResizeForCells(m, n);
    std::vector<uint32_t> merged_counts(n, 0);
    std::vector<uint32_t> shard_of_cell(m);
    parallel::parallel_for(
        0, num_shards,
        [&](size_t s) {
          const CellStructure<D>& cells = shards[s];
          const size_t cb = cell_base[s];
          const size_t pb = point_base[s];
          for (size_t c = 0; c < cells.num_cells(); ++c) {
            merged.offsets[cb + c + 1] = pb + cells.offsets[c + 1];
            merged.coords[cb + c] = cells.coords[c];
            merged.cell_boxes[cb + c] = cells.cell_boxes[c];
            shard_of_cell[cb + c] = static_cast<uint32_t>(s);
          }
          for (size_t i = 0; i < cells.num_points(); ++i) {
            merged.points[pb + i] = cells.points[i];
            merged.orig_index[pb + i] = shard_gids[s][cells.orig_index[i]];
            merged_counts[pb + i] = shard_counts[s][i];
          }
        },
        1);
    dbscan::AddSeconds(sink.build_cells_seconds, timer.Seconds());

    // Boundary classification: an O(m) coords scan. Like the copy above
    // this is recomposition bookkeeping, not merge work — only the two
    // seam-proportional steps below (phases 3a/3b) count as the merge.
    timer.Reset();
    std::vector<uint32_t> boundary;  // Merged ids, ascending.
    for (size_t g = 0; g < m; ++g) {
      if (plan_.IsBoundary(merged.coords[g][plan_.axis])) {
        boundary.push_back(static_cast<uint32_t>(g));
      }
    }
    info_.boundary_cells = boundary.size();
    info_.interior_cells = m - boundary.size();
    double recompose_seconds = timer.Seconds();

    // --- Phase 3a: cross-seam adjacency discovery — seam-proportional.
    // Any eps-neighbor of a boundary cell that lives in another shard is
    // itself a boundary cell, so probing among boundary cells finds every
    // cross-shard pair. cross[i] holds the cross-shard eps-neighbors of
    // boundary[i] as merged ids, sorted so the final layout is independent
    // of discovery order. One code path with the full builder:
    // ForEachNeighborAmong is the same dispatch BuildGridAdjacency uses. --
    timer.Reset();
    const uint64_t merge_span_start =
        telemetry::TraceEnabled() ? telemetry::NowNanos() : 0;
    std::vector<std::vector<uint32_t>> cross(boundary.size());
    if (!boundary.empty() && num_shards > 1) {
      dbscan::ForEachNeighborAmong<D>(
          merged, std::span<const uint32_t>(boundary), plan_.origin,
          plan_.side, [&](size_t i, size_t j) {
            if (shard_of_cell[boundary[i]] != shard_of_cell[boundary[j]]) {
              cross[i].push_back(boundary[j]);
            }
          });
    }
    size_t seam_links = 0;
    for (auto& list : cross) {
      std::sort(list.begin(), list.end());
      seam_links += list.size();
    }
    info_.seam_links = seam_links;
    const double discovery_seconds = timer.Seconds();

    // --- Phase 2 (continued): the merged CSR — within-shard adjacency
    // re-based, cross-seam lists appended. Walks every cell and edge, so
    // it is recomposition work (an unsharded build does the equivalent
    // inside BuildGridAdjacency), deliberately NOT counted as merge. ------
    timer.Reset();
    merged.nbr_offsets.assign(m + 1, 0);
    size_t bi = 0;  // Walks `boundary` in step with g (both ascending).
    for (size_t g = 0; g < m; ++g) {
      const size_t s = shard_of_cell[g];
      const size_t c = g - cell_base[s];
      size_t deg = shards[s].nbr_offsets[c + 1] - shards[s].nbr_offsets[c];
      if (bi < boundary.size() && boundary[bi] == g) deg += cross[bi++].size();
      merged.nbr_offsets[g + 1] = merged.nbr_offsets[g] + deg;
    }
    merged.nbrs.resize(merged.nbr_offsets[m]);
    parallel::parallel_for(0, m, [&](size_t g) {
      const size_t s = shard_of_cell[g];
      const size_t c = g - cell_base[s];
      size_t w = merged.nbr_offsets[g];
      for (const uint32_t h : shards[s].neighbors(c)) {
        merged.nbrs[w++] = static_cast<uint32_t>(cell_base[s] + h);
      }
      const auto it =
          std::lower_bound(boundary.begin(), boundary.end(), g);
      if (it != boundary.end() && *it == g) {
        for (const uint32_t h : cross[static_cast<size_t>(
                 it - boundary.begin())]) {
          merged.nbrs[w++] = h;
        }
      }
    });
    // Lanes over the merged points: the seam recount below and every query
    // on the adopted index run through the SIMD distance kernels.
    merged.BuildSoALanes();
    recompose_seconds += timer.Seconds();

    // --- Phase 3b: boundary recount against the completed adjacency —
    // seam-proportional, and the only MarkCore work that crosses a seam
    // (the exact analogue of streaming's dirty-cell recount). -------------
    timer.Reset();
    dbscan::MarkCoreCountsForCells<D>(
        merged, counts_cap, RangeCountMethod::kScan, nullptr,
        std::span<const uint32_t>(boundary), merged_counts, &sink);
    const double recount_seconds = timer.Seconds();
    if (merge_span_start != 0) {
      telemetry::RecordSpan("shard_merge", telemetry::CurrentTraceId(),
                            telemetry::CurrentSpanId(), merge_span_start,
                            telemetry::NowNanos());
    }

    // Stage attribution mirrors an unsharded build: classification, CSR
    // and adjacency discovery are cell construction; the recount is
    // MarkCore. shard_merge_seconds overlays the two seam-proportional
    // spans so "merge cost" is directly readable (see stats.h).
    dbscan::AddSeconds(sink.build_cells_seconds,
                       recompose_seconds + discovery_seconds);
    dbscan::AddSeconds(sink.mark_core_seconds, recount_seconds);
    info_.merge_seconds = discovery_seconds + recount_seconds;
    dbscan::AddSeconds(sink.shard_merge_seconds, info_.merge_seconds);
    sink.shard_interior_cells.fetch_add(info_.interior_cells,
                                        std::memory_order_relaxed);
    sink.shard_boundary_cells.fetch_add(info_.boundary_cells,
                                        std::memory_order_relaxed);
    sink.shard_seam_links.fetch_add(info_.seam_links,
                                    std::memory_order_relaxed);

    index_ = std::make_shared<const dbscan::CellIndex<D>>(
        std::move(merged), std::move(merged_counts), counts_cap, options_,
        stats);
  }

  Options options_;
  ShardPlan<D> plan_;
  ShardBuildInfo info_;
  std::shared_ptr<const dbscan::CellIndex<D>> index_;
  std::string spill_dir_;  // Empty: no per-shard spill.
};

}  // namespace pdbscan::sharding

// Out-of-line definition of the EnginePool convenience constructor declared
// in parallel/engine_pool.h: leasing against a sharded build serves its
// merged frozen index like any other CellIndex.
namespace pdbscan::parallel {

template <int D>
EnginePool<D>::EnginePool(const sharding::ShardedCellIndex<D>& sharded)
    : EnginePool(sharded.index()) {}

}  // namespace pdbscan::parallel

#endif  // PDBSCAN_SHARDING_SHARDED_CELL_INDEX_H_
