// ShardPlanner — grid-aligned spatial partitioning of a dataset into shards.
//
// The paper's cell decomposition makes DBSCAN spatially decomposable:
// everything a query computes from a cell (saturated MarkCore counts, cell
// adjacency, connectivity, border reach) depends only on the cell's own
// points and the points of cells within epsilon of it. A partition of the
// *cells* therefore induces a partition of the work, and only cells near a
// partition seam ever need cross-partition information. This file plans
// such a partition; sharded_cell_index.h executes it.
//
// The plan slices the domain into contiguous slabs along one axis, with
// slab boundaries snapped to the eps/sqrt(d) lattice that BuildGrid uses
// (same origin — the dataset bounding-box corner — and the same cell side),
// so that every grid cell lies entirely inside exactly one shard and the
// per-shard cell decompositions are verbatim subsets of the single-index
// decomposition. The split axis is the one with the largest bounding-box
// extent (most lattice columns, hence thinnest seams relative to shard
// volume); slabs get equal numbers of lattice columns. A requested shard
// count larger than the number of columns is clamped — the planner never
// produces an empty slab *range*, though a slab may well contain no points
// (an "empty shard", which the sharded build handles as a zero-cell
// structure).
//
// The seam halo is `halo` lattice columns wide: two cells can contain
// points within epsilon of each other only when their integer coordinates
// differ by at most 1 + floor(sqrt(d)) along every axis (grid.h's
// OffsetWithinEpsilon criterion), so a cell whose axis coordinate is at
// least `halo` columns away from every interior cut has its entire
// eps-neighborhood inside its own shard. Those are the *interior* cells;
// the rest are *boundary* cells, and they are the only cells the merge
// stage of ShardedCellIndex ever touches.
#ifndef PDBSCAN_SHARDING_SHARD_PLANNER_H_
#define PDBSCAN_SHARDING_SHARD_PLANNER_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "dbscan/grid.h"
#include "geometry/point.h"

namespace pdbscan::sharding {

// The executable output of ShardPlanner::Plan: which lattice columns along
// `axis` each shard owns, plus the grid anchoring shared with BuildGrid.
template <int D>
struct ShardPlan {
  // Split axis (the largest bounding-box extent) and the lattice geometry:
  // `origin` is the dataset bounding-box corner and `side` the cell side
  // epsilon / sqrt(D) — identical to what a single-index BuildGrid over the
  // same points uses, so shard-local cell coordinates match global ones.
  int axis = 0;
  double side = 0;
  geometry::Point<D> origin{};
  geometry::BBox<D> bounds = geometry::BBox<D>::Empty();

  // Slab boundaries in lattice coordinates along `axis`: shard s owns every
  // cell whose coords[axis] lies in [cuts[s], cuts[s+1]). Monotone, with
  // cuts.front() == 0 and cuts.back() == the total column count.
  std::vector<int64_t> cuts;

  // Seam half-width in lattice columns: cells within `halo` columns of an
  // interior cut can have eps-neighbors across it (the maximum per-axis
  // coordinate delta of eps-reachable cells under the planned metric —
  // dbscan::MetricHalo: 1 + floor(sqrt(D)) for L2, D + 1 for L1, 2 for
  // Linf).
  int64_t halo = 0;

  size_t num_shards() const { return cuts.empty() ? 0 : cuts.size() - 1; }

  // The shard owning lattice column `axis_coord` (clamped to the planned
  // range, so out-of-bounds coordinates — which cannot arise for points
  // inside `bounds` — fall into the first/last shard).
  size_t ShardOf(int64_t axis_coord) const {
    const auto it = std::upper_bound(cuts.begin() + 1, cuts.end() - 1,
                                     axis_coord);
    return static_cast<size_t>(it - cuts.begin()) - 1;
  }

  // True iff a cell in lattice column `axis_coord` is a *boundary* cell:
  // within `halo` columns of an interior cut, i.e. its eps-neighborhood may
  // cross a shard seam. The merge stage of the sharded build recounts
  // exactly these cells; everything else keeps its shard-local counts.
  bool IsBoundary(int64_t axis_coord) const {
    // Interior cuts are cuts[1] .. cuts[num_shards()-1]; cuts.front() and
    // cuts.back() are domain edges with nothing beyond them.
    for (size_t s = 1; s + 1 < cuts.size(); ++s) {
      const int64_t cut = cuts[s];
      if (axis_coord >= cut - halo && axis_coord < cut + halo) return true;
    }
    return false;
  }

  // Lattice column of a point along the split axis (the same floor
  // arithmetic as geometry::CellOf, restricted to `axis`).
  int64_t ColumnOf(const geometry::Point<D>& p) const {
    return static_cast<int64_t>(std::floor((p[axis] - origin[axis]) / side));
  }
};

// Plans grid-aligned slabs for `points` at the given epsilon. Pure
// function of (points, epsilon, requested_shards): deterministic across
// thread counts and repeat calls.
class ShardPlanner {
 public:
  template <int D>
  static ShardPlan<D> Plan(std::span<const geometry::Point<D>> points,
                           double epsilon, size_t requested_shards,
                           Metric metric = Metric::kL2) {
    if (epsilon <= 0) throw std::invalid_argument("epsilon must be positive");
    if (requested_shards == 0) {
      throw std::invalid_argument("shard count must be positive");
    }
    ShardPlan<D> plan;
    plan.side = dbscan::GridSide<D>(epsilon, metric);
    plan.halo = static_cast<int64_t>(dbscan::MetricHalo<D>(metric));
    if (points.empty()) {
      // Degenerate plan: one shard owning a single (pointless) column.
      for (int i = 0; i < D; ++i) plan.origin[i] = 0;
      plan.cuts = {0, 1};
      return plan;
    }
    plan.bounds = dbscan::ComputeBounds<D>(points);
    plan.origin = plan.bounds.min;

    // Split along the axis with the most lattice columns; ties go to the
    // lowest axis index (deterministic).
    int64_t best_columns = 0;
    for (int a = 0; a < D; ++a) {
      const int64_t columns =
          1 + static_cast<int64_t>(std::floor(
                  (plan.bounds.max[a] - plan.origin[a]) / plan.side));
      if (columns > best_columns) {
        best_columns = columns;
        plan.axis = a;
      }
    }

    // Equal column counts per shard; clamp so every slab has >= 1 column.
    const size_t shards = std::max<size_t>(
        1, std::min<size_t>(requested_shards,
                            static_cast<size_t>(best_columns)));
    plan.cuts.resize(shards + 1);
    for (size_t s = 0; s <= shards; ++s) {
      plan.cuts[s] = static_cast<int64_t>(
          (static_cast<size_t>(best_columns) * s) / shards);
    }
    return plan;
  }
};

}  // namespace pdbscan::sharding

#endif  // PDBSCAN_SHARDING_SHARD_PLANNER_H_
