// ShardedClusterer — the sharded-build-plus-serving facade: a
// ShardedCellIndex (concurrent per-shard construction, boundary merge)
// wired to an EnginePool (any number of concurrent readers), mirroring the
// StreamingClusterer pairing one layer down.
//
//   pdbscan::ShardedClusterer<2> sharded(pts, /*epsilon=*/1.0,
//                                        /*counts_cap=*/100,
//                                        /*num_shards=*/8);
//   // From any number of threads, concurrently:
//   pdbscan::Clustering c = sharded.Run(/*min_pts=*/10);
//   auto sweep = sharded.Sweep({5, 10, 50});
//
// The sharding is a *build-time* decomposition: once the boundary merge
// freezes the merged CellIndex, queries run the standard pipeline against
// it and results are bit-identical to unsharded runs (exact
// configurations; see sharded_cell_index.h for the argument and scope).
// Shard count therefore tunes build latency and the merge footprint, never
// query results — see docs/TUNING.md.
#ifndef PDBSCAN_SHARDING_SHARDED_CLUSTERER_H_
#define PDBSCAN_SHARDING_SHARDED_CLUSTERER_H_

#include <initializer_list>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "dbscan/cell_index.h"
#include "dbscan/stats.h"
#include "dbscan/types.h"
#include "geometry/point.h"
#include "parallel/engine_pool.h"
#include "sharding/sharded_cell_index.h"

namespace pdbscan::sharding {

template <int D>
class ShardedClusterer {
 public:
  // Builds the sharded index (parameters as in ShardedCellIndex: grid cell
  // method + kScan range counting required, any dimension) and stands up a
  // serving pool over the merged result. Build counters land in
  // build_stats(); per-query counters in the pool's per-context sinks.
  ShardedClusterer(std::span<const geometry::Point<D>> points, double epsilon,
                   size_t counts_cap, size_t num_shards,
                   Options options = Options())
      : sharded_(points, epsilon, counts_cap, num_shards, std::move(options),
                 &build_stats_),
        pool_(sharded_.index()) {}

  ShardedClusterer(const std::vector<geometry::Point<D>>& points,
                   double epsilon, size_t counts_cap, size_t num_shards,
                   Options options = Options())
      : ShardedClusterer(std::span<const geometry::Point<D>>(points), epsilon,
                         counts_cap, num_shards, std::move(options)) {}

  ShardedClusterer(const ShardedClusterer&) = delete;
  ShardedClusterer& operator=(const ShardedClusterer&) = delete;

  // Thread-safe: clusters the merged index's point set at `min_pts`.
  // Bit-identical to a one-shot pdbscan::Dbscan call on the same points for
  // exact configurations.
  Clustering Run(size_t min_pts) { return pool_.Run(min_pts); }

  // Thread-safe: a whole min_pts sweep through one leased context (one
  // shared-counts pass answers every setting within counts_cap).
  std::vector<Clustering> Sweep(std::span<const size_t> minpts_list) {
    return pool_.Sweep(minpts_list);
  }
  std::vector<Clustering> Sweep(std::initializer_list<size_t> minpts_list) {
    return pool_.Sweep(minpts_list);
  }

  // The merged frozen index (shareable with other pools/contexts).
  const std::shared_ptr<const dbscan::CellIndex<D>>& index() const {
    return sharded_.index();
  }

  // The executed partition and build accounting (see sharded_cell_index.h).
  const ShardPlan<D>& plan() const { return sharded_.plan(); }
  size_t num_shards() const { return sharded_.num_shards(); }
  const ShardBuildInfo& build_info() const { return sharded_.build_info(); }

  size_t num_points() const { return sharded_.num_points(); }
  size_t num_cells() const { return sharded_.num_cells(); }

  // Build-side counters/timings (shards_built, shard_boundary_cells,
  // shard_merge_seconds, ...).
  const dbscan::PipelineStats& build_stats() const { return build_stats_; }

  // Sums build-side counters plus every reader context's counters into
  // `out` (exact when callers are quiescent).
  void AggregateStats(dbscan::PipelineStats& out) const {
    out.MergeFrom(build_stats_);
    pool_.AggregateStats(out);
  }

  parallel::EnginePool<D>& pool() { return pool_; }

 private:
  dbscan::PipelineStats build_stats_;
  ShardedCellIndex<D> sharded_;
  parallel::EnginePool<D> pool_;
};

}  // namespace pdbscan::sharding

#endif  // PDBSCAN_SHARDING_SHARDED_CLUSTERER_H_
