// StreamingClusterer — the serve-while-updating facade: a DynamicCellIndex
// (single writer, incremental snapshots) wired to an EnginePool (many
// concurrent readers).
//
//   pdbscan::StreamingClusterer<2> stream(/*epsilon=*/1.0,
//                                         /*counts_cap=*/100);
//   uint64_t first = stream.Insert(initial_points);   // ids first, first+1, …
//   // From any number of threads, concurrently with further updates:
//   pdbscan::Clustering c = stream.Run(/*min_pts=*/10);
//   // Writer thread, later:
//   stream.ApplyUpdates(new_points, /*erases=*/expired_ids);
//
// Every ApplyUpdates recounts only the dirty eps-neighborhood of the batch
// (plus a memcpy-scale recomposition pass; see dynamic_cell_index.h),
// freezes the result into an immutable CellIndex, and hands it to the
// pool. Queries pin the snapshot current
// when they start: they never block on the writer and always see a fully
// consistent dataset state — one of the published batch boundaries, never
// a partial batch.
//
// Threading contract: ApplyUpdates/Insert/Erase from ONE writer thread (or
// externally serialized); Run/Sweep/snapshot() from any thread, any time.
// Clustering entry i refers to LivePoints()[i] (dataset order: ids
// ascending); LiveIds()[i] gives that point's stable id.
#ifndef PDBSCAN_STREAMING_STREAMING_CLUSTERER_H_
#define PDBSCAN_STREAMING_STREAMING_CLUSTERER_H_

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>
#include <vector>

#include "dbscan/cell_index.h"
#include "dbscan/stats.h"
#include "dbscan/types.h"
#include "geometry/point.h"
#include "parallel/engine_pool.h"
#include "streaming/dynamic_cell_index.h"

namespace pdbscan::streaming {

template <int D>
class StreamingClusterer {
 public:
  // Starts empty (queries on the empty snapshot return an empty
  // clustering). Parameters as in DynamicCellIndex: grid cell method +
  // kScan range counting required, any dimension.
  StreamingClusterer(double epsilon, size_t counts_cap,
                     Options options = Options())
      : index_(epsilon, counts_cap, std::move(options), &update_stats_),
        pool_(index_.snapshot()) {}

  StreamingClusterer(const StreamingClusterer&) = delete;
  StreamingClusterer& operator=(const StreamingClusterer&) = delete;

  // Writer-thread only: applies erases then inserts, publishes the new
  // snapshot to the pool. Returns the id of inserts[0] (consecutive ids
  // follow). Readers switch to the new snapshot on their next query.
  uint64_t ApplyUpdates(std::span<const geometry::Point<D>> inserts,
                        std::span<const uint64_t> erases) {
    const uint64_t first_id = index_.ApplyUpdates(inserts, erases);
    pool_.ReplaceIndex(index_.snapshot());
    return first_id;
  }

  uint64_t Insert(std::span<const geometry::Point<D>> points) {
    return ApplyUpdates(points, std::span<const uint64_t>());
  }
  uint64_t Insert(const std::vector<geometry::Point<D>>& points) {
    return Insert(std::span<const geometry::Point<D>>(points));
  }

  void Erase(std::span<const uint64_t> ids) {
    ApplyUpdates(std::span<const geometry::Point<D>>(), ids);
  }
  void Erase(const std::vector<uint64_t>& ids) {
    Erase(std::span<const uint64_t>(ids));
  }

  // Thread-safe: clusters the latest published snapshot at `min_pts`.
  Clustering Run(size_t min_pts) { return pool_.Run(min_pts); }

  // Thread-safe: a whole min_pts sweep against one pinned snapshot.
  std::vector<Clustering> Sweep(std::span<const size_t> minpts_list) {
    return pool_.Sweep(minpts_list);
  }
  std::vector<Clustering> Sweep(std::initializer_list<size_t> minpts_list) {
    return pool_.Sweep(minpts_list);
  }

  // Thread-safe: the latest published snapshot (immutable).
  std::shared_ptr<const dbscan::CellIndex<D>> snapshot() const {
    return index_.snapshot();
  }

  // Thread-safe: the pool generation of the latest published snapshot.
  // Starts at 1 for the empty dataset and increments on every
  // ApplyUpdates/Insert/Erase — the value a ServingScheduler layered on
  // pool() keys its result cache on, and the value ServeResult::generation
  // reports back, so clients can tell exactly which dataset state answered
  // them.
  uint64_t generation() const { return pool_.generation(); }

  // Writer-thread accessors (see dynamic_cell_index.h).
  size_t num_points() const { return index_.num_points(); }
  size_t num_cells() const { return index_.num_cells(); }
  const UpdateStats& last_update() const { return index_.last_update(); }
  std::vector<geometry::Point<D>> LivePoints() const {
    return index_.LivePoints();
  }
  const std::vector<uint64_t>& LiveIds() const { return index_.LiveIds(); }

  // Cumulative writer-side counters (cells_rebuilt / cells_retained /
  // snapshots_published, build timings).
  const dbscan::PipelineStats& update_stats() const { return update_stats_; }

  // Sums the writer-side counters plus every reader context's counters into
  // `out` (exact when callers are quiescent).
  void AggregateStats(dbscan::PipelineStats& out) const {
    out.MergeFrom(update_stats_);
    pool_.AggregateStats(out);
  }

  parallel::EnginePool<D>& pool() { return pool_; }

 private:
  dbscan::PipelineStats update_stats_;
  DynamicCellIndex<D> index_;
  parallel::EnginePool<D> pool_;
};

}  // namespace pdbscan::streaming

#endif  // PDBSCAN_STREAMING_STREAMING_CLUSTERER_H_
