// DynamicCellIndex — incremental maintenance of the paper's grid structure
// under streaming point insertions and erasures, publishing each state as
// an immutable CellIndex snapshot.
//
// The eps-grid gives updates exactly the locality that makes incremental
// maintenance tractable (the same observation Berkholz et al. exploit for
// FO+MOD queries under updates: a change can only reach a bounded
// neighborhood). A batch of Insert/Erase operations touches a set of
// *dirty* cells; everything a query computes from a cell depends only on
// the cell's own points and the points of cells whose boxes lie within
// epsilon — its grid neighbors. So one update batch:
//
//   1. re-groups points for the dirty cells only (live points are kept
//      bucketed per cell, so this is O(batch));
//   2. recomposes the flat CellStructure (contiguous per-cell ranges) —
//      a copy pass whose cost is a memcpy, not a semisort, and re-derives
//      the CSR adjacency through the same BuildGridAdjacency code path the
//      from-scratch builder uses;
//   3. recounts saturated MarkCore counts ONLY for cells that are dirty or
//      adjacent to a dirty cell (including cells that were adjacent to a
//      cell the batch emptied); every other cell's counts are copied
//      verbatim from the previous snapshot — their eps-neighborhood is
//      untouched, so the counts are exact (the dirty-cell invariant);
//   4. freezes the result into a brand-new immutable CellIndex and
//      publishes it via shared_ptr swap. Readers (QueryContext /
//      EnginePool) keep serving the old snapshot until they next lease —
//      they never block on the writer, and in-flight queries pin the
//      snapshot they started with.
//
// cells_rebuilt / cells_retained in the stats sink (and per-batch in
// last_update()) make the invariant measurable: rebuilt is proportional to
// the batch's dirty-cell footprint, not the total cell count.
//
// Scope: the grid cell method at any dimension, with the kScan range-count
// method. The 2D box method is inherently global (its strip decomposition
// depends on the x-sorted order of ALL points), and per-cell quadtrees pin
// the exact reordered layout they were built over, so both would force the
// O(n) rebuild this class exists to avoid; the constructor rejects them.
// The grid here is anchored at the world origin rather than the dataset
// bounding box (a streaming dataset has no fixed bounding box), which
// yields a different — equally valid — cell decomposition than a
// from-scratch build. For EXACT configurations this is invisible in the
// output: the clustering is a function of point geometry and dataset order
// alone (core flags, eps-connectivity and border memberships are computed
// on real distances; first-appearance relabeling follows dataset order),
// so snapshot labels are bit-identical to one-shot runs on the live points
// — the contract tests/test_concurrent.cpp and the streaming bench gate
// on. Approximate connectivity (OurApprox) IS decomposition-dependent: its
// snapshots remain valid per Gan-Tao but may differ from a from-scratch
// run's labels. Determinism always holds: the same update sequence
// publishes bit-identical snapshots regardless of thread count.
//
// Threading contract: ONE writer. ApplyUpdates must be externally
// serialized; snapshot() may be called from any thread at any time. The
// StreamingClusterer facade (streaming_clusterer.h) pairs this class with
// an EnginePool for a ready-made serve-while-updating setup.
#ifndef PDBSCAN_STREAMING_DYNAMIC_CELL_INDEX_H_
#define PDBSCAN_STREAMING_DYNAMIC_CELL_INDEX_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "containers/flat_array.h"
#include "dbscan/cell_index.h"
#include "dbscan/cell_structure.h"
#include "dbscan/grid.h"
#include "dbscan/mark_core.h"
#include "dbscan/stats.h"
#include "dbscan/types.h"
#include "geometry/point.h"
#include "parallel/scheduler.h"
#include "persist/journal.h"
#include "telemetry/trace.h"
#include "util/timer.h"

namespace pdbscan::streaming {

// Per-batch accounting of one ApplyUpdates call.
struct UpdateStats {
  size_t points_inserted = 0;
  size_t points_erased = 0;
  size_t num_points = 0;  // Live points after the batch.
  size_t num_cells = 0;   // Non-empty cells after the batch.
  // The dirty-cell invariant, measured: counts recomputed vs. copied.
  size_t cells_rebuilt = 0;
  size_t cells_retained = 0;
  size_t cells_created = 0;
  size_t cells_vanished = 0;
  double recompose_seconds = 0;  // Bucket + flat-structure + adjacency work.
  double recount_seconds = 0;    // MarkCore over the rebuilt cells.
};

template <int D>
class DynamicCellIndex {
 public:
  // An empty index; the first ApplyUpdates publishes the first non-trivial
  // snapshot. `counts_cap` bounds the min_pts range answered from shared
  // counts, exactly as in CellIndex::Build. `stats` is the sink for
  // cumulative streaming counters (nullptr: the process-wide GlobalStats()).
  DynamicCellIndex(double epsilon, size_t counts_cap,
                   Options options = Options(), dbscan::PipelineStats* stats = nullptr)
      : epsilon_(epsilon),
        side_(dbscan::GridSide<D>(epsilon, options.metric)),
        counts_cap_(counts_cap),
        options_(std::move(options)),
        stats_(stats != nullptr ? stats : &dbscan::GlobalStats()) {
    if (epsilon <= 0) throw std::invalid_argument("epsilon must be positive");
    if (counts_cap == 0) {
      throw std::invalid_argument("counts_cap must be positive");
    }
    if (options_.cell_method != CellMethod::kGrid) {
      throw std::invalid_argument(
          "streaming updates support the grid cell method only (the box "
          "strip decomposition is a global function of all points)");
    }
    if (options_.range_count != RangeCountMethod::kScan) {
      throw std::invalid_argument(
          "streaming updates support the kScan range-count method only "
          "(per-cell quadtrees pin a snapshot's exact point layout)");
    }
    ValidateMetricOptions(options_);
    for (int i = 0; i < D; ++i) origin_[i] = 0.0;
    Publish(Recompose(/*dirty=*/{}, /*vanished=*/{}));
  }

  // Restores the writer from a persisted streaming checkpoint: the loaded
  // snapshot plus the stable live ids (dataset order) and next id it was
  // saved with (persist::SnapshotReader returns all three). The snapshot
  // is published as-is — queries against the restored index are trivially
  // bit-identical to the saved one — and the writer-side state (per-cell
  // buckets, id bookkeeping, cell order) is reconstructed from the
  // snapshot's own layout, so subsequent ApplyUpdates batches behave
  // exactly as they would have on the uninterrupted instance (that is what
  // makes snapshot + journal replay == the live run; see persist/journal.h
  // and tests/test_persist.cpp). Throws std::invalid_argument for
  // non-streaming configurations and PersistError-shaped invariant
  // violations (ids not ascending, coords off the origin-anchored lattice:
  // e.g. a snapshot produced by CellIndex::Build rather than a streaming
  // checkpoint).
  DynamicCellIndex(std::shared_ptr<const dbscan::CellIndex<D>> snapshot,
                   std::span<const uint64_t> live_ids, uint64_t next_id,
                   dbscan::PipelineStats* stats = nullptr)
      : epsilon_(snapshot != nullptr ? snapshot->epsilon() : 0),
        side_(snapshot != nullptr
                  ? dbscan::GridSide<D>(epsilon_, snapshot->options().metric)
                  : 0),
        counts_cap_(snapshot != nullptr ? snapshot->counts_cap() : 0),
        options_(snapshot != nullptr ? snapshot->options() : Options()),
        stats_(stats != nullptr ? stats : &dbscan::GlobalStats()) {
    if (snapshot == nullptr) {
      throw std::invalid_argument("restore needs a snapshot");
    }
    if (options_.cell_method != CellMethod::kGrid ||
        options_.range_count != RangeCountMethod::kScan) {
      throw std::invalid_argument(
          "streaming restore supports grid cells with kScan range counting "
          "only (the configurations DynamicCellIndex itself produces)");
    }
    ValidateMetricOptions(options_);
    for (int i = 0; i < D; ++i) origin_[i] = 0.0;

    const dbscan::CellStructure<D>& cells = snapshot->cells();
    const size_t n = cells.num_points();
    const size_t m = cells.num_cells();
    if (live_ids.size() != n) {
      throw std::invalid_argument(
          "restore: live ids must cover every point");
    }
    live_ids_.assign(live_ids.begin(), live_ids.end());
    for (size_t k = 0; k < n; ++k) {
      if (live_ids_[k] >= next_id ||
          (k > 0 && live_ids_[k] <= live_ids_[k - 1])) {
        throw std::invalid_argument(
            "restore: live ids must be ascending and below next_id");
      }
    }
    next_id_ = next_id;

    // Writer state from the snapshot's own layout. Bucket order within a
    // cell is exactly the snapshot's per-cell point order (Recompose wrote
    // it from the buckets), so reconstruction is the inverse copy.
    cell_order_.resize(m);
    buckets_.reserve(m);
    cell_of_id_.reserve(n);
    for (size_t c = 0; c < m; ++c) {
      const geometry::CellCoords<D> coords = cells.coords[c];
      // Reject snapshots from a differently anchored grid: every cell must
      // sit on the origin-anchored lattice this writer will extend.
      const size_t begin = cells.offsets[c];
      if (cells.cell_size(c) == 0 ||
          geometry::CellOf<D>(cells.points[begin], origin_, side_) != coords) {
        throw std::invalid_argument(
            "restore: snapshot is not an origin-anchored streaming "
            "checkpoint");
      }
      cell_order_[c] = coords;
      cell_id_.emplace(coords, static_cast<uint32_t>(c));
      Bucket& bucket = buckets_[coords];
      const size_t size = cells.cell_size(c);
      bucket.ids.reserve(size);
      bucket.pts.reserve(size);
      for (size_t i = begin; i < begin + size; ++i) {
        const uint64_t id = live_ids_[cells.orig_index[i]];
        bucket.ids.push_back(id);
        bucket.pts.push_back(cells.points[i]);
        cell_of_id_.emplace(id, coords);
      }
    }

    UpdateStats update;
    update.num_points = n;
    update.num_cells = m;
    update.cells_retained = m;
    pending_ = std::move(snapshot);
    Publish(update);
  }

  DynamicCellIndex(const DynamicCellIndex&) = delete;
  DynamicCellIndex& operator=(const DynamicCellIndex&) = delete;

  // Attaches a write-ahead journal: every subsequently applied batch is
  // appended (after validation, before mutation — WAL discipline) as one
  // record, so `restore(last checkpoint) + replay` reproduces this
  // writer's exact update sequence. Pass nullptr to detach. The journal
  // must outlive the attachment; writer-thread only, like ApplyUpdates.
  void set_journal(persist::UpdateJournal<D>* journal) { journal_ = journal; }

  double epsilon() const { return epsilon_; }
  size_t counts_cap() const { return counts_cap_; }
  const Options& options() const { return options_; }

  // Applies one batch — erases first, then inserts — and publishes a fresh
  // snapshot. Returns the id assigned to inserts[0] (ids are consecutive:
  // inserts[k] gets return + k); ids are stable for the life of the point
  // and are what Erase takes. Throws std::invalid_argument on an unknown
  // or duplicated erase id, in which case no state changes at all.
  // Writer-thread only.
  uint64_t ApplyUpdates(std::span<const geometry::Point<D>> inserts,
                        std::span<const uint64_t> erases) {
    // Validate the whole erase batch before mutating anything.
    std::unordered_set<uint64_t> erase_set;
    erase_set.reserve(erases.size());
    for (const uint64_t id : erases) {
      if (!erase_set.insert(id).second) {
        throw std::invalid_argument("duplicate erase id in batch");
      }
      if (cell_of_id_.find(id) == cell_of_id_.end()) {
        throw std::invalid_argument("erase of unknown point id");
      }
    }

    // WAL: the batch is durable (to the attached journal's fsync policy)
    // before any in-memory state changes, so a crash mid-apply replays it.
    if (journal_ != nullptr) journal_->Append(inserts, erases, next_id_);

    util::Timer timer;
    CoordsSet dirty;
    dirty.reserve(erases.size() + inserts.size());

    // Erases: remove each point from its bucket (order within untouched
    // buckets is preserved — that is what lets retained cells' counts be
    // copied positionally).
    for (const uint64_t id : erases) {
      const auto loc = cell_of_id_.find(id);
      const geometry::CellCoords<D> coords = loc->second;
      cell_of_id_.erase(loc);
      Bucket& bucket = buckets_.at(coords);
      const auto pos = std::find(bucket.ids.begin(), bucket.ids.end(), id);
      const size_t k = static_cast<size_t>(pos - bucket.ids.begin());
      bucket.ids[k] = bucket.ids.back();
      bucket.ids.pop_back();
      bucket.pts[k] = bucket.pts.back();
      bucket.pts.pop_back();
      dirty.insert(coords);
    }

    // Inserts: append to (possibly fresh) buckets.
    const uint64_t first_id = next_id_;
    for (const geometry::Point<D>& p : inserts) {
      const uint64_t id = next_id_++;
      const geometry::CellCoords<D> coords =
          geometry::CellOf<D>(p, origin_, side_);
      Bucket& bucket = buckets_[coords];
      bucket.ids.push_back(id);
      bucket.pts.push_back(p);
      cell_of_id_.emplace(id, coords);
      dirty.insert(coords);
    }

    // Dataset order = ids ascending: drop erased ids, append the new ones
    // (monotonically increasing, so the vector stays sorted).
    if (!erase_set.empty()) {
      live_ids_.erase(std::remove_if(live_ids_.begin(), live_ids_.end(),
                                     [&](uint64_t id) {
                                       return erase_set.count(id) != 0;
                                     }),
                      live_ids_.end());
    }
    for (uint64_t id = first_id; id < next_id_; ++id) live_ids_.push_back(id);

    // Classify dirty cells; drop emptied buckets.
    CoordsSet vanished;
    for (const auto& coords : dirty) {
      const auto it = buckets_.find(coords);
      if (it != buckets_.end() && it->second.ids.empty()) {
        buckets_.erase(it);
        vanished.insert(coords);
      }
    }

    UpdateStats update = Recompose(dirty, vanished);
    update.points_inserted = inserts.size();
    update.points_erased = erases.size();
    update.recompose_seconds = timer.Seconds() - update.recount_seconds;
    Publish(update);
    return first_id;
  }

  // The latest published snapshot. Thread-safe; the pointee is immutable.
  std::shared_ptr<const dbscan::CellIndex<D>> snapshot() const {
    std::lock_guard<std::mutex> lock(publish_mu_);
    return published_;
  }

  size_t num_points() const { return live_ids_.size(); }
  size_t num_cells() const { return buckets_.size(); }
  uint64_t next_id() const { return next_id_; }

  // Accounting of the most recent ApplyUpdates. Writer-thread only.
  const UpdateStats& last_update() const { return last_update_; }

  // The live dataset in dataset order (ids ascending) — the order snapshot
  // clusterings index, so LivePoints()[i] is the point Clustering entry i
  // refers to. Writer-thread only (or with the writer quiescent).
  std::vector<geometry::Point<D>> LivePoints() const {
    const auto snap = snapshot();
    const dbscan::CellStructure<D>& cells = snap->cells();
    std::vector<geometry::Point<D>> out(cells.num_points());
    parallel::parallel_for(0, cells.num_points(), [&](size_t i) {
      out[cells.orig_index[i]] = cells.points[i];
    });
    return out;
  }

  // Stable point ids in dataset order: LiveIds()[i] is the id of the point
  // behind Clustering entry i. Writer-thread only.
  const std::vector<uint64_t>& LiveIds() const { return live_ids_; }

 private:
  struct Bucket {
    std::vector<uint64_t> ids;
    std::vector<geometry::Point<D>> pts;
  };
  struct CoordsHasher {
    size_t operator()(const geometry::CellCoords<D>& c) const {
      return static_cast<size_t>(geometry::HashCellCoords<D>(c));
    }
  };
  using CoordsSet = std::unordered_set<geometry::CellCoords<D>, CoordsHasher>;
  template <typename V>
  using CoordsMap = std::unordered_map<geometry::CellCoords<D>, V, CoordsHasher>;

  // Rebuilds the flat CellStructure from the buckets, recounts the dirty
  // eps-neighborhood, and freezes the result into pending_. Fills the
  // structural fields of the returned UpdateStats.
  UpdateStats Recompose(const CoordsSet& dirty, const CoordsSet& vanished) {
    UpdateStats update;
    const dbscan::CellIndex<D>* prev = published_.get();

    // Deterministic cell order: retained cells keep their relative order,
    // vanished cells drop out, created cells append sorted by coords.
    std::vector<geometry::CellCoords<D>> created;
    for (const auto& coords : dirty) {
      if (vanished.count(coords) == 0 && cell_id_.count(coords) == 0) {
        created.push_back(coords);
      }
    }
    std::sort(created.begin(), created.end());
    if (!vanished.empty()) {
      cell_order_.erase(
          std::remove_if(cell_order_.begin(), cell_order_.end(),
                         [&](const geometry::CellCoords<D>& c) {
                           return vanished.count(c) != 0;
                         }),
          cell_order_.end());
    }
    cell_order_.insert(cell_order_.end(), created.begin(), created.end());
    update.cells_created = created.size();
    update.cells_vanished = vanished.size();

    const size_t m = cell_order_.size();
    const size_t n = live_ids_.size();

    // Flat recomposition: offsets from bucket sizes, then a parallel copy.
    // This pass touches every cell, but as a memcpy-scale copy — the
    // semisort, adjacency hashing and (below) MarkCore work that dominate a
    // from-scratch build are either O(cells) or confined to the dirty set.
    util::Timer timer;
    dbscan::CellStructure<D> cells;
    cells.epsilon = epsilon_;
    cells.metric = options_.metric;
    cells.ResizeForCells(m, n);
    std::vector<const Bucket*> bucket_of(m);
    for (size_t c = 0; c < m; ++c) {
      bucket_of[c] = &buckets_.at(cell_order_[c]);
      cells.offsets[c + 1] = cells.offsets[c] + bucket_of[c]->ids.size();
    }
    if (cells.offsets[m] != n) {
      throw std::logic_error("streaming bucket sizes out of sync");
    }
    // Dataset position = rank among the sorted live ids. One O(n) pass
    // builds the transient id -> rank map (bounded by LIVE points, unlike
    // a table over all historical ids; cleared rather than reallocated
    // across batches), read concurrently by the copy below.
    rank_of_id_.clear();
    rank_of_id_.reserve(n);
    for (size_t k = 0; k < n; ++k) {
      rank_of_id_.emplace(live_ids_[k], static_cast<uint32_t>(k));
    }
    parallel::parallel_for(
        0, m,
        [&](size_t c) {
          const Bucket& bucket = *bucket_of[c];
          const size_t begin = cells.offsets[c];
          for (size_t k = 0; k < bucket.ids.size(); ++k) {
            cells.points[begin + k] = bucket.pts[k];
            cells.orig_index[begin + k] = rank_of_id_.find(bucket.ids[k])->second;
          }
          cells.coords[c] = cell_order_[c];
          cells.cell_boxes[c] =
              geometry::CellBBox<D>(cell_order_[c], origin_, side_);
        },
        1);
    dbscan::BuildGridAdjacency(cells, origin_, side_);
    // Lanes for the recomposed points: the recount below and every query on
    // the published snapshot run through the SIMD distance kernels.
    cells.BuildSoALanes();

    // New coords -> cell id map; keep the previous one for retained-count
    // lookups and vanished-cell neighborhoods.
    CoordsMap<uint32_t> old_cell_id = std::move(cell_id_);
    cell_id_ = CoordsMap<uint32_t>();
    cell_id_.reserve(m);
    for (size_t c = 0; c < m; ++c) {
      cell_id_.emplace(cell_order_[c], static_cast<uint32_t>(c));
    }

    // The recount set: dirty cells, their current neighbors, and the
    // previous neighbors of cells the batch emptied. Every other cell's
    // eps-neighborhood is untouched, so its counts are still exact.
    std::vector<uint8_t> recount(m, 0);
    for (const auto& coords : dirty) {
      if (vanished.count(coords) != 0) continue;
      const uint32_t c = cell_id_.at(coords);
      recount[c] = 1;
      for (const uint32_t h : cells.neighbors(c)) recount[h] = 1;
    }
    if (prev != nullptr && !vanished.empty()) {
      const dbscan::CellStructure<D>& prev_cells = prev->cells();
      for (const auto& coords : vanished) {
        const uint32_t old_c = old_cell_id.at(coords);
        for (const uint32_t h : prev_cells.neighbors(old_c)) {
          const auto it = cell_id_.find(prev_cells.coords[h]);
          if (it != cell_id_.end()) recount[it->second] = 1;
        }
      }
    }
    dbscan::AddSeconds(stats_->build_cells_seconds, timer.Seconds());

    // Counts: copy retained cells from the previous snapshot, recount the
    // rest through the same Algorithm 2 body the full build uses.
    timer.Reset();
    std::vector<uint32_t> counts(n);
    std::vector<uint32_t> rebuilt_list;
    {
      telemetry::TraceSpan span("streaming_recount");
      for (size_t c = 0; c < m; ++c) {
        if (recount[c]) rebuilt_list.push_back(static_cast<uint32_t>(c));
      }
      const containers::FlatArray<uint32_t>* prev_counts =
          prev != nullptr ? &prev->neighbor_counts() : nullptr;
      parallel::parallel_for(
          0, m,
          [&](size_t c) {
            if (recount[c]) return;
            // Retained: the cell existed before with identical contents.
            const uint32_t old_c = old_cell_id.at(cells.coords[c]);
            const dbscan::CellStructure<D>& prev_cells = prev->cells();
            std::copy(
                prev_counts->begin() +
                    static_cast<ptrdiff_t>(prev_cells.offsets[old_c]),
                prev_counts->begin() +
                    static_cast<ptrdiff_t>(prev_cells.offsets[old_c + 1]),
                counts.begin() + static_cast<ptrdiff_t>(cells.offsets[c]));
          },
          1);
      dbscan::MarkCoreCountsForCells<D>(
          cells, counts_cap_, RangeCountMethod::kScan, nullptr,
          std::span<const uint32_t>(rebuilt_list), counts, stats_);
    }
    update.recount_seconds = timer.Seconds();
    dbscan::AddSeconds(stats_->mark_core_seconds, update.recount_seconds);

    update.cells_rebuilt = rebuilt_list.size();
    update.cells_retained = m - rebuilt_list.size();
    update.num_points = n;
    update.num_cells = m;
    pending_ = std::make_shared<const dbscan::CellIndex<D>>(
        std::move(cells), std::move(counts), counts_cap_, options_, stats_);
    return update;
  }

  void Publish(const UpdateStats& update) {
    {
      std::lock_guard<std::mutex> lock(publish_mu_);
      published_ = std::move(pending_);
    }
    last_update_ = update;
    stats_->cells_rebuilt.fetch_add(update.cells_rebuilt,
                                    std::memory_order_relaxed);
    stats_->cells_retained.fetch_add(update.cells_retained,
                                     std::memory_order_relaxed);
    stats_->snapshots_published.fetch_add(1, std::memory_order_relaxed);
  }

  double epsilon_;
  double side_;
  size_t counts_cap_;
  Options options_;
  dbscan::PipelineStats* stats_;
  persist::UpdateJournal<D>* journal_ = nullptr;
  geometry::Point<D> origin_;

  // Live points bucketed by cell, plus the id bookkeeping that makes
  // erases O(cell) and dataset order reconstructible.
  CoordsMap<Bucket> buckets_;
  std::unordered_map<uint64_t, geometry::CellCoords<D>> cell_of_id_;
  std::vector<uint64_t> live_ids_;  // Sorted ascending.
  // Per-batch scratch: live id -> dataset rank (see Recompose).
  std::unordered_map<uint64_t, uint32_t> rank_of_id_;
  uint64_t next_id_ = 0;

  // The published snapshot's cell layout: order and coords -> id.
  std::vector<geometry::CellCoords<D>> cell_order_;
  CoordsMap<uint32_t> cell_id_;

  std::shared_ptr<const dbscan::CellIndex<D>> pending_;
  mutable std::mutex publish_mu_;
  std::shared_ptr<const dbscan::CellIndex<D>> published_;
  UpdateStats last_update_;
};

}  // namespace pdbscan::streaming

#endif  // PDBSCAN_STREAMING_DYNAMIC_CELL_INDEX_H_
