// OPTICS (Ankerst et al. [5]) — the hierarchical companion of DBSCAN the
// paper lists as future work ("designing theoretically-efficient and
// practical parallel algorithms for ... hierarchical versions of DBSCAN").
//
// OPTICS produces an ordering of the points together with, for each point,
// its *reachability distance*: a plot of reachability over the order shows
// valleys (clusters) at every density level simultaneously, so one OPTICS
// run subsumes DBSCAN runs for all epsilon' <= epsilon at a given minPts.
//
// This implementation is sequential in the ordering (the ordering is
// inherently a priority-first traversal, as in POPTICS [74] the parallelism
// lives elsewhere) but parallelizes the core-distance computation, which is
// the range-query-heavy phase. ExtractDbscanClustering recovers, from the
// OPTICS output, the DBSCAN* partition for any epsilon' <= epsilon — and is
// cross-validated against the main pipeline in the tests.
#ifndef PDBSCAN_EXTENSIONS_OPTICS_H_
#define PDBSCAN_EXTENSIONS_OPTICS_H_

#include <cstdint>
#include <limits>
#include <queue>
#include <span>
#include <vector>

#include "geometry/kd_tree.h"
#include "geometry/point.h"
#include "parallel/scheduler.h"

namespace pdbscan::extensions {

struct OpticsResult {
  // Visit order: a permutation of [0, n).
  std::vector<uint32_t> order;
  // reachability[i] = reachability distance of point i (kUndefined for the
  // first point of each connected region).
  std::vector<double> reachability;
  // core_distance[i] = distance to the minPts-th neighbor within epsilon,
  // or kUndefined if point i is not a core point.
  std::vector<double> core_distance;

  static constexpr double kUndefined = std::numeric_limits<double>::infinity();
};

template <int D>
OpticsResult Optics(std::span<const geometry::Point<D>> pts, double epsilon,
                    size_t min_pts) {
  const size_t n = pts.size();
  OpticsResult result;
  result.order.reserve(n);
  result.reachability.assign(n, OpticsResult::kUndefined);
  result.core_distance.assign(n, OpticsResult::kUndefined);
  if (n == 0) return result;

  geometry::KdTree<D> tree(pts);

  // Core distances in parallel: the minPts-th smallest distance within the
  // epsilon-ball (a small max-heap per point).
  parallel::parallel_for(0, n, [&](size_t i) {
    std::priority_queue<double> heap;  // Max-heap of the smallest minPts.
    tree.ForEachInBall(pts[i], epsilon, [&](uint32_t j) {
      const double d = pts[i].Distance(pts[j]);
      if (heap.size() < min_pts) {
        heap.push(d);
      } else if (d < heap.top()) {
        heap.pop();
        heap.push(d);
      }
      return true;
    });
    if (heap.size() >= min_pts) result.core_distance[i] = heap.top();
  });

  // Priority-first expansion (sequential, as in the original algorithm).
  std::vector<uint8_t> processed(n, 0);
  using Entry = std::pair<double, uint32_t>;  // (reachability, point).
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> seeds;

  auto update_neighbors = [&](size_t p) {
    if (result.core_distance[p] == OpticsResult::kUndefined) return;
    tree.ForEachInBall(pts[p], epsilon, [&](uint32_t q) {
      if (processed[q]) return true;
      const double reach =
          std::max(result.core_distance[p], pts[p].Distance(pts[q]));
      if (reach < result.reachability[q]) {
        result.reachability[q] = reach;
        seeds.push({reach, q});  // Lazy decrease-key: stale entries skipped.
      }
      return true;
    });
  };

  for (size_t start = 0; start < n; ++start) {
    if (processed[start]) continue;
    processed[start] = 1;
    result.order.push_back(static_cast<uint32_t>(start));
    update_neighbors(start);
    while (!seeds.empty()) {
      const auto [reach, q] = seeds.top();
      seeds.pop();
      if (processed[q]) continue;  // Stale queue entry.
      processed[q] = 1;
      result.order.push_back(q);
      update_neighbors(q);
    }
  }
  return result;
}

// Extracts the DBSCAN* clustering (core points only, Campello et al. [20])
// at epsilon_prime <= the epsilon OPTICS ran with: scanning the ordering,
// a point with reachability > eps' starts a new cluster if its own core
// distance is <= eps', and is noise otherwise. Returns one label per point
// (-1 = noise).
inline std::vector<int64_t> ExtractDbscanClustering(const OpticsResult& optics,
                                                    double epsilon_prime) {
  const size_t n = optics.order.size();
  std::vector<int64_t> labels(n, -1);
  int64_t current = -1;
  for (const uint32_t p : optics.order) {
    if (optics.reachability[p] > epsilon_prime) {
      if (optics.core_distance[p] <= epsilon_prime) {
        labels[p] = ++current;
      }
      // else: noise (label stays -1).
    } else {
      labels[p] = current;
    }
  }
  return labels;
}

}  // namespace pdbscan::extensions

#endif  // PDBSCAN_EXTENSIONS_OPTICS_H_
