// k-distance computation for epsilon selection — the parameter-selection
// methodology from the original DBSCAN paper (Ester et al. [38], the
// "sorted k-dist graph"): plot each point's distance to its k-th nearest
// neighbor in descending order; the elbow suggests epsilon for
// minPts = k.
#ifndef PDBSCAN_EXTENSIONS_KDIST_H_
#define PDBSCAN_EXTENSIONS_KDIST_H_

#include <algorithm>
#include <cmath>
#include <queue>
#include <span>
#include <vector>

#include "geometry/kd_tree.h"
#include "geometry/point.h"
#include "parallel/scheduler.h"
#include "primitives/sort.h"

namespace pdbscan::extensions {

// Distance from each point to its k-th nearest neighbor (k >= 1; the point
// itself is its own 1st neighbor, matching the DBSCAN convention where a
// point counts itself). Parallel over points.
template <int D>
std::vector<double> KDistances(std::span<const geometry::Point<D>> pts,
                               size_t k) {
  const size_t n = pts.size();
  std::vector<double> kdist(n, 0.0);
  if (n == 0 || k == 0) return kdist;
  geometry::KdTree<D> tree(pts);
  parallel::parallel_for(0, n, [&](size_t i) {
    // Grow the search radius until k neighbors are inside, then take the
    // k-th smallest distance.
    double radius = 1e-6;
    // Initial guess: expand exponentially until enough neighbors.
    while (tree.CountInBall(pts[i], radius, k) < k) {
      radius *= 4;
      if (radius > 1e30) break;  // Fewer than k points in total.
    }
    std::priority_queue<double> heap;  // Max-heap of the k smallest.
    tree.ForEachInBall(pts[i], radius, [&](uint32_t j) {
      const double d = pts[i].Distance(pts[j]);
      if (heap.size() < k) {
        heap.push(d);
      } else if (d < heap.top()) {
        heap.pop();
        heap.push(d);
      }
      return true;
    });
    kdist[i] = heap.empty() ? 0.0 : heap.top();
  });
  return kdist;
}

// The sorted (descending) k-distance curve; index = rank.
template <int D>
std::vector<double> SortedKDistanceCurve(std::span<const geometry::Point<D>> pts,
                                         size_t k) {
  std::vector<double> curve = KDistances(pts, k);
  primitives::ParallelSort(curve, std::greater<double>());
  return curve;
}

// Candidate epsilons for a parameter exploration: `count` values read off
// the sorted k-distance curve at geometrically spaced ranks around the
// elbow region, deduplicated and ascending. Feed these to a DbscanEngine —
// one engine evaluates the whole list while reusing its point layout and
// workspace across the epsilon changes.
inline std::vector<double> CandidateEpsilons(const std::vector<double>& curve,
                                             size_t count = 5) {
  std::vector<double> out;
  const size_t n = curve.size();
  if (n == 0 || count == 0) return out;
  // Ranks from the 2nd to the 75th percentile of the descending curve:
  // epsilons from "only the densest points are core" to "most are".
  const double lo = 0.02, hi = 0.75;
  for (size_t i = 0; i < count; ++i) {
    const double t = count == 1 ? 0.5 : double(i) / double(count - 1);
    const double q = lo * std::pow(hi / lo, t);
    const size_t idx = static_cast<size_t>(q * (double(n) - 1));
    out.push_back(curve[idx]);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  out.erase(std::remove_if(out.begin(), out.end(),
                           [](double e) { return !(e > 0); }),
            out.end());
  return out;
}

// Heuristic epsilon suggestion: the point of maximum curvature (largest
// second difference on a log scale) of the sorted k-distance curve, skipping
// the extreme tails.
template <int D>
double SuggestEpsilon(std::span<const geometry::Point<D>> pts, size_t k) {
  const auto curve = SortedKDistanceCurve(pts, k);
  const size_t n = curve.size();
  if (n < 8) return n == 0 ? 0.0 : curve[n / 2];
  const size_t lo = n / 50 + 1;       // Skip outlier head.
  const size_t hi = n - n / 10 - 2;   // Skip the dense tail.
  double best_drop = -1;
  size_t best = n / 2;
  for (size_t i = lo; i + 1 < hi; ++i) {
    const double prev = std::max(curve[i - 1], 1e-300);
    const double cur = std::max(curve[i], 1e-300);
    const double next = std::max(curve[i + 1], 1e-300);
    const double curvature = std::log(prev) + std::log(next) - 2 * std::log(cur);
    if (curvature > best_drop) {
      best_drop = curvature;
      best = i;
    }
  }
  return curve[best];
}

}  // namespace pdbscan::extensions

#endif  // PDBSCAN_EXTENSIONS_KDIST_H_
