#include "data/seed_spreader.h"

#include <algorithm>
#include <cmath>
#include <random>

namespace pdbscan::data {

namespace {

template <int D>
geometry::Point<D> RandomInDomain(std::mt19937_64& rng, double domain) {
  std::uniform_real_distribution<double> coord(0.0, domain);
  geometry::Point<D> p;
  for (int i = 0; i < D; ++i) p[i] = coord(rng);
  return p;
}

template <int D>
void Clamp(geometry::Point<D>& p, double domain) {
  for (int i = 0; i < D; ++i) p[i] = std::clamp(p[i], 0.0, domain);
}

}  // namespace

template <int D>
std::vector<geometry::Point<D>> SeedSpreader(const SeedSpreaderParams& params,
                                             SeedSpreaderResult* result) {
  std::mt19937_64 rng(params.seed);
  std::uniform_real_distribution<double> unit(-1.0, 1.0);
  std::uniform_real_distribution<double> prob(0.0, 1.0);

  const size_t num_noise =
      static_cast<size_t>(std::llround(params.noise_fraction * double(params.n)));
  const size_t num_walk = params.n > num_noise ? params.n - num_noise : 0;
  const double restart_prob =
      num_walk > 0 ? params.restart_expected / double(num_walk) : 0;

  std::vector<geometry::Point<D>> points;
  points.reserve(params.n);

  geometry::Point<D> pos = RandomInDomain<D>(rng, params.domain);
  double vicinity = params.vicinity;
  double shift = params.shift;
  size_t restarts = 1;
  auto restart = [&]() {
    pos = RandomInDomain<D>(rng, params.domain);
    if (params.variable_density) {
      // Density classes spanning ~16x in radius (256x+ in density).
      std::uniform_int_distribution<int> cls(0, 4);
      const double scale = std::pow(2.0, cls(rng));
      vicinity = params.vicinity * scale;
      shift = params.shift * scale;
    }
    ++restarts;
  };

  for (size_t i = 0; i < num_walk; ++i) {
    if (i > 0 && prob(rng) < restart_prob) restart();
    if (i > 0 && i % params.reset_every == 0) {
      // Drift: move the spreader by `shift` in a random direction.
      geometry::Point<D> dir;
      double norm2 = 0;
      for (int k = 0; k < D; ++k) {
        dir[k] = unit(rng);
        norm2 += dir[k] * dir[k];
      }
      const double norm = std::sqrt(norm2);
      if (norm > 0) {
        for (int k = 0; k < D; ++k) pos[k] += dir[k] / norm * shift;
      }
      Clamp(pos, params.domain);
    }
    geometry::Point<D> p = pos;
    for (int k = 0; k < D; ++k) p[k] += unit(rng) * vicinity;
    Clamp(p, params.domain);
    points.push_back(p);
  }
  for (size_t i = 0; i < num_noise; ++i) {
    points.push_back(RandomInDomain<D>(rng, params.domain));
  }
  if (result != nullptr) result->num_restarts = restarts;
  return points;
}

template std::vector<geometry::Point<2>> SeedSpreader<2>(
    const SeedSpreaderParams&, SeedSpreaderResult*);
template std::vector<geometry::Point<3>> SeedSpreader<3>(
    const SeedSpreaderParams&, SeedSpreaderResult*);
template std::vector<geometry::Point<4>> SeedSpreader<4>(
    const SeedSpreaderParams&, SeedSpreaderResult*);
template std::vector<geometry::Point<5>> SeedSpreader<5>(
    const SeedSpreaderParams&, SeedSpreaderResult*);
template std::vector<geometry::Point<7>> SeedSpreader<7>(
    const SeedSpreaderParams&, SeedSpreaderResult*);

}  // namespace pdbscan::data
