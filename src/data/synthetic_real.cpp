#include "data/synthetic_real.h"

#include <algorithm>
#include <cmath>
#include <random>

namespace pdbscan::data {

namespace {

using geometry::Point;

// Power-law sized Gaussian hotspots plus uniform background: the skew
// profile of human-location data.
template <int D>
std::vector<Point<D>> SkewedHotspots(size_t n, uint64_t seed, double domain,
                                     size_t num_hotspots, double hotspot_sigma,
                                     double background_fraction) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coord(0.0, domain);
  std::normal_distribution<double> gauss(0.0, 1.0);

  // Hotspot centers and Zipf-ish weights.
  std::vector<Point<D>> centers(num_hotspots);
  std::vector<double> weights(num_hotspots);
  double total = 0;
  for (size_t h = 0; h < num_hotspots; ++h) {
    for (int k = 0; k < D; ++k) centers[h][k] = coord(rng);
    weights[h] = 1.0 / double(h + 1);  // Zipf exponent 1.
    total += weights[h];
  }
  std::discrete_distribution<size_t> pick(weights.begin(), weights.end());
  std::uniform_real_distribution<double> u01(0.0, 1.0);

  std::vector<Point<D>> pts(n);
  for (size_t i = 0; i < n; ++i) {
    if (u01(rng) < background_fraction) {
      for (int k = 0; k < D; ++k) pts[i][k] = coord(rng);
      continue;
    }
    const size_t h = pick(rng);
    // Heavier skew: the hotspot's own spread shrinks with its rank.
    const double sigma = hotspot_sigma / std::sqrt(double(h + 1));
    for (int k = 0; k < D; ++k) {
      pts[i][k] = std::clamp(centers[h][k] + gauss(rng) * sigma, 0.0, domain);
    }
  }
  return pts;
}

}  // namespace

std::vector<Point<3>> GeoLifeLike(size_t n, uint64_t seed) {
  // GPS data: most points concentrated around a handful of city hotspots
  // with trajectory-like streaks; altitude nearly flat. Extreme cell skew.
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> gauss(0.0, 1.0);
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  const double domain = 1e4;
  auto pts = SkewedHotspots<3>(n, seed * 3 + 1, domain, /*num_hotspots=*/12,
                               /*hotspot_sigma=*/12.0,
                               /*background_fraction=*/0.02);
  // Overlay trajectories: line segments between random hotspots.
  const size_t num_trajectory = n / 5;
  std::uniform_int_distribution<size_t> idx(0, n - 1);
  for (size_t t = 0; t < num_trajectory; ++t) {
    const Point<3>& a = pts[idx(rng)];
    const Point<3>& b = pts[idx(rng)];
    const double s = u01(rng);
    Point<3> p;
    for (int k = 0; k < 3; ++k) {
      p[k] = a[k] + s * (b[k] - a[k]) + gauss(rng) * 0.5;
    }
    pts[idx(rng)] = p;
  }
  // Flatten altitude to a narrow band (GPS altitude noise).
  for (auto& p : pts) p[2] = std::abs(gauss(rng)) * 5.0;
  return pts;
}

std::vector<Point<3>> Cosmo50Like(size_t n, uint64_t seed) {
  // Cosmological structure: halos (dense blobs) at filament endpoints and
  // points spread along the filaments.
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coord(0.0, 3000.0);
  std::normal_distribution<double> gauss(0.0, 1.0);
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  const size_t num_filaments = 64;
  std::vector<std::pair<Point<3>, Point<3>>> filaments(num_filaments);
  for (auto& f : filaments) {
    for (int k = 0; k < 3; ++k) {
      f.first[k] = coord(rng);
      f.second[k] = coord(rng);
    }
  }
  std::uniform_int_distribution<size_t> pick(0, num_filaments - 1);
  std::vector<Point<3>> pts(n);
  for (size_t i = 0; i < n; ++i) {
    const auto& [a, b] = filaments[pick(rng)];
    const double r = u01(rng);
    if (r < 0.55) {
      // Halo at an endpoint.
      const Point<3>& c = u01(rng) < 0.5 ? a : b;
      for (int k = 0; k < 3; ++k) pts[i][k] = c[k] + gauss(rng) * 8.0;
    } else if (r < 0.95) {
      // Along the filament.
      const double s = u01(rng);
      for (int k = 0; k < 3; ++k) {
        pts[i][k] = a[k] + s * (b[k] - a[k]) + gauss(rng) * 4.0;
      }
    } else {
      for (int k = 0; k < 3; ++k) pts[i][k] = coord(rng);
    }
  }
  return pts;
}

std::vector<Point<2>> OpenStreetMapLike(size_t n, uint64_t seed) {
  // Street grid: points along horizontal/vertical lines (roads) plus city
  // hotspots.
  std::mt19937_64 rng(seed);
  const double domain = 2e4;
  std::uniform_real_distribution<double> coord(0.0, domain);
  std::normal_distribution<double> gauss(0.0, 1.0);
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  const size_t num_roads = 200;
  std::vector<double> road_pos(num_roads);
  for (auto& r : road_pos) r = coord(rng);
  std::uniform_int_distribution<size_t> pick(0, num_roads - 1);
  auto city = SkewedHotspots<2>(n / 3 + 1, seed * 5 + 2, domain, 20, 30.0, 0.0);
  std::vector<Point<2>> pts(n);
  size_t ci = 0;
  for (size_t i = 0; i < n; ++i) {
    const double r = u01(rng);
    if (r < 0.34 && ci < city.size()) {
      pts[i] = city[ci++];
    } else if (r < 0.67) {
      pts[i] = Point<2>{{coord(rng), road_pos[pick(rng)] + gauss(rng) * 2.0}};
    } else {
      pts[i] = Point<2>{{road_pos[pick(rng)] + gauss(rng) * 2.0, coord(rng)}};
    }
  }
  return pts;
}

std::vector<Point<7>> HouseholdLike(size_t n, uint64_t seed) {
  // Electric-load measurements: a mixture of operating modes with
  // correlated dimensions and different scales per dimension.
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> gauss(0.0, 1.0);
  const size_t num_modes = 24;
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  std::vector<Point<7>> modes(num_modes);
  std::vector<double> scales = {4000, 400, 250, 4000, 80, 80, 30};
  for (auto& m : modes) {
    for (int k = 0; k < 7; ++k) m[k] = u01(rng) * scales[static_cast<size_t>(k)];
  }
  std::uniform_int_distribution<size_t> pick(0, num_modes - 1);
  std::vector<Point<7>> pts(n);
  for (size_t i = 0; i < n; ++i) {
    const Point<7>& m = modes[pick(rng)];
    const double load = gauss(rng);  // Shared factor: correlated dims.
    for (int k = 0; k < 7; ++k) {
      pts[i][k] = m[k] + (load * 0.6 + gauss(rng) * 0.4) * 0.02 *
                             scales[static_cast<size_t>(k)];
    }
  }
  return pts;
}

std::vector<Point<13>> TeraClickLogLike(size_t n, uint64_t seed) {
  // Click-log features: heavy concentration near the origin (counts are
  // mostly small), so with large epsilon nearly all points share one cell.
  std::mt19937_64 rng(seed);
  std::exponential_distribution<double> expo(1.0);
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  std::vector<Point<13>> pts(n);
  for (size_t i = 0; i < n; ++i) {
    const bool outlier = u01(rng) < 0.001;
    for (int k = 0; k < 13; ++k) {
      pts[i][k] = expo(rng) * (outlier ? 5000.0 : 20.0);
    }
  }
  return pts;
}

}  // namespace pdbscan::data
