// Seed-spreader synthetic dataset generator — the SS-simden / SS-varden
// datasets of the paper's evaluation (Section 7), after Gan & Tao [40].
//
// A "spreader" performs a random walk: it emits points uniformly in a local
// vicinity of its position, drifts by a fixed shift every `reset_every`
// points, and with probability `restart_prob` jumps to a fresh random
// location (starting a new cluster). The variable-density variant draws a
// new vicinity radius after each restart, producing clusters whose densities
// differ by up to ~16x. A small fraction of uniform noise is mixed in.
//
// Generation is deliberately sequential (it is a random walk) but fast; all
// randomness is from a seeded generator, so datasets are reproducible.
#ifndef PDBSCAN_DATA_SEED_SPREADER_H_
#define PDBSCAN_DATA_SEED_SPREADER_H_

#include <cstdint>
#include <vector>

#include "geometry/point.h"

namespace pdbscan::data {

struct SeedSpreaderParams {
  size_t n = 10000;
  double domain = 1e5;         // Points live in [0, domain]^D.
  double restart_expected = 10;  // Expected number of restarts (clusters).
  double vicinity = 100;       // Local emission radius (simden).
  size_t reset_every = 100;    // Points between drift steps.
  double shift = 50;           // Drift distance per step.
  bool variable_density = false;  // SS-varden when true.
  double noise_fraction = 1e-4;
  uint64_t seed = 42;
};

struct SeedSpreaderResult {
  template <int D>
  using Points = std::vector<geometry::Point<D>>;
  size_t num_restarts = 0;  // Number of clusters the walk attempted.
};

// Generates the dataset; `result` (optional) receives generation metadata.
template <int D>
std::vector<geometry::Point<D>> SeedSpreader(const SeedSpreaderParams& params,
                                             SeedSpreaderResult* result = nullptr);

// Convenience wrappers matching the paper's dataset names.
template <int D>
std::vector<geometry::Point<D>> SsSimden(size_t n, uint64_t seed = 42) {
  SeedSpreaderParams p;
  p.n = n;
  p.seed = seed;
  return SeedSpreader<D>(p);
}

template <int D>
std::vector<geometry::Point<D>> SsVarden(size_t n, uint64_t seed = 42) {
  SeedSpreaderParams p;
  p.n = n;
  p.seed = seed;
  p.variable_density = true;
  return SeedSpreader<D>(p);
}

}  // namespace pdbscan::data

#endif  // PDBSCAN_DATA_SEED_SPREADER_H_
