// Distribution-matched surrogates for the paper's real-world datasets.
//
// The original datasets (GeoLife, Cosmo50, OpenStreetMap, TeraClickLog,
// Household) are multi-gigabyte downloads that are unavailable offline, so —
// per the substitution policy in DESIGN.md — these generators produce
// synthetic data that reproduces the *property each dataset exercises in the
// paper*:
//   * GeoLifeLike: 3D GPS trajectories with extremely skewed density
//     (a few huge hotspot cells), the property behind the Figure 6(j)
//     cell-graph spike and the paper's bucketing discussion.
//   * Cosmo50Like: 3D filament/halo structure of an N-body simulation.
//   * OpenStreetMapLike: 2D street-grid-plus-city distribution.
//   * HouseholdLike: 7D appliance-load mixture with correlated dimensions.
//   * TeraClickLogLike: 13D ad-click features; with the paper's Table 2
//     parameters virtually all points share one grid cell, making the run
//     trivially one cluster (the behavior Section 7.2 describes).
#ifndef PDBSCAN_DATA_SYNTHETIC_REAL_H_
#define PDBSCAN_DATA_SYNTHETIC_REAL_H_

#include <cstdint>
#include <vector>

#include "geometry/point.h"

namespace pdbscan::data {

std::vector<geometry::Point<3>> GeoLifeLike(size_t n, uint64_t seed = 11);
std::vector<geometry::Point<3>> Cosmo50Like(size_t n, uint64_t seed = 12);
std::vector<geometry::Point<2>> OpenStreetMapLike(size_t n, uint64_t seed = 13);
std::vector<geometry::Point<7>> HouseholdLike(size_t n, uint64_t seed = 14);
std::vector<geometry::Point<13>> TeraClickLogLike(size_t n, uint64_t seed = 15);

}  // namespace pdbscan::data

#endif  // PDBSCAN_DATA_SYNTHETIC_REAL_H_
