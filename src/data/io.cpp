#include "data/io.h"

#include <charconv>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace pdbscan::data {

void WriteCsv(const std::string& path, const FlatDataset& dataset) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  out.precision(17);
  const size_t n = dataset.size();
  const size_t dim = static_cast<size_t>(dataset.dim);
  for (size_t i = 0; i < n; ++i) {
    for (size_t k = 0; k < dim; ++k) {
      if (k > 0) out << ',';
      out << dataset.coords[i * dim + k];
    }
    out << '\n';
  }
  if (!out) throw std::runtime_error("write to " + path + " failed");
}

FlatDataset ReadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  FlatDataset dataset;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::stringstream ss(line);
    std::string field;
    int dim = 0;
    while (std::getline(ss, field, ',')) {
      try {
        dataset.coords.push_back(std::stod(field));
      } catch (const std::exception&) {
        throw std::runtime_error(path + ": bad number at line " +
                                 std::to_string(line_no));
      }
      ++dim;
    }
    if (dataset.dim == 0) {
      dataset.dim = dim;
    } else if (dim != dataset.dim) {
      throw std::runtime_error(path + ": inconsistent dimension at line " +
                               std::to_string(line_no));
    }
  }
  return dataset;
}

namespace {

// Binary dataset header: magic + version + endianness probe, mirroring the
// snapshot format's guards (persist/format.h) so no binary file in the
// project "parses" by accident of size.
constexpr char kDataMagic[8] = {'P', 'D', 'B', 'S', 'D', 'A', 'T', '1'};
constexpr uint32_t kDataVersion = 1;
constexpr uint32_t kDataEndianProbe = 0x01020304u;

}  // namespace

void WriteBinary(const std::string& path, const FlatDataset& dataset) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  const uint64_t n = dataset.size();
  const uint64_t dim = static_cast<uint64_t>(dataset.dim);
  out.write(kDataMagic, sizeof(kDataMagic));
  out.write(reinterpret_cast<const char*>(&kDataVersion),
            sizeof(kDataVersion));
  out.write(reinterpret_cast<const char*>(&kDataEndianProbe),
            sizeof(kDataEndianProbe));
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
  out.write(reinterpret_cast<const char*>(dataset.coords.data()),
            static_cast<std::streamsize>(dataset.coords.size() * sizeof(double)));
  if (!out) throw std::runtime_error("write to " + path + " failed");
}

FlatDataset ReadBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  in.seekg(0, std::ios::end);
  const uint64_t file_bytes = static_cast<uint64_t>(in.tellg());
  in.seekg(0, std::ios::beg);
  char magic[8] = {};
  uint32_t version = 0, endian = 0;
  uint64_t n = 0, dim = 0;
  in.read(magic, sizeof(magic));
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  in.read(reinterpret_cast<char*>(&endian), sizeof(endian));
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  in.read(reinterpret_cast<char*>(&dim), sizeof(dim));
  if (!in) throw std::runtime_error(path + ": truncated header");
  if (std::memcmp(magic, kDataMagic, sizeof(kDataMagic)) != 0) {
    throw std::runtime_error(path + ": not a pdbscan binary dataset "
                             "(bad magic)");
  }
  if (endian != kDataEndianProbe) {
    throw std::runtime_error(path +
                             ": dataset written with incompatible endianness");
  }
  if (version != kDataVersion) {
    throw std::runtime_error(path + ": unsupported dataset version " +
                             std::to_string(version));
  }
  if (dim == 0 || dim > 4096 || (n != 0 && dim > UINT64_MAX / n)) {
    throw std::runtime_error(path + ": implausible dataset dimensions");
  }
  constexpr uint64_t kHeaderBytes =
      sizeof(kDataMagic) + sizeof(version) + sizeof(endian) + 2 * sizeof(n);
  if (file_bytes != kHeaderBytes + n * dim * sizeof(double)) {
    throw std::runtime_error(path + ": truncated or oversized dataset (" +
                             std::to_string(file_bytes) + " bytes for " +
                             std::to_string(n) + " x " + std::to_string(dim) +
                             " points)");
  }
  FlatDataset dataset;
  dataset.dim = static_cast<int>(dim);
  dataset.coords.resize(n * dim);
  in.read(reinterpret_cast<char*>(dataset.coords.data()),
          static_cast<std::streamsize>(dataset.coords.size() * sizeof(double)));
  if (!in) throw std::runtime_error(path + ": truncated data");
  return dataset;
}

}  // namespace pdbscan::data
