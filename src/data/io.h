// Dataset IO: CSV (one point per line, comma-separated coordinates) and a
// binary format with a guarded header — magic tag, format version and an
// endianness probe (consistent with the persistence layer's snapshot
// format, persist/format.h), then n and dim as uint64 and row-major
// doubles. ReadBinary validates the header and the exact payload size, so
// a foreign, truncated, cross-endian or version-skewed file is rejected
// with std::runtime_error instead of parsing into garbage points.
#ifndef PDBSCAN_DATA_IO_H_
#define PDBSCAN_DATA_IO_H_

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "geometry/point.h"

namespace pdbscan::data {

// Row-major flat dataset with runtime dimension.
struct FlatDataset {
  std::vector<double> coords;
  int dim = 0;

  size_t size() const {
    return dim == 0 ? 0 : coords.size() / static_cast<size_t>(dim);
  }
};

// CSV round trip. Throws std::runtime_error on malformed files.
void WriteCsv(const std::string& path, const FlatDataset& dataset);
FlatDataset ReadCsv(const std::string& path);

// Binary round trip.
void WriteBinary(const std::string& path, const FlatDataset& dataset);
FlatDataset ReadBinary(const std::string& path);

// Conversions between flat datasets and typed points.
template <int D>
FlatDataset ToFlat(std::span<const geometry::Point<D>> pts) {
  FlatDataset out;
  out.dim = D;
  out.coords.resize(pts.size() * D);
  for (size_t i = 0; i < pts.size(); ++i) {
    for (int k = 0; k < D; ++k) out.coords[i * D + static_cast<size_t>(k)] = pts[i][k];
  }
  return out;
}

template <int D>
std::vector<geometry::Point<D>> FromFlat(const FlatDataset& dataset) {
  if (dataset.dim != D) throw std::runtime_error("dimension mismatch");
  std::vector<geometry::Point<D>> pts(dataset.size());
  for (size_t i = 0; i < pts.size(); ++i) {
    for (int k = 0; k < D; ++k) {
      pts[i][k] = dataset.coords[i * D + static_cast<size_t>(k)];
    }
  }
  return pts;
}

}  // namespace pdbscan::data

#endif  // PDBSCAN_DATA_IO_H_
