// UniformFill synthetic dataset — Section 7 of the paper: n points uniform
// in a hypercube of side sqrt(n).
#ifndef PDBSCAN_DATA_UNIFORM_H_
#define PDBSCAN_DATA_UNIFORM_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "geometry/point.h"
#include "parallel/scheduler.h"
#include "primitives/random.h"

namespace pdbscan::data {

// n points uniformly distributed in [0, sqrt(n)]^D (deterministic in seed).
template <int D>
std::vector<geometry::Point<D>> UniformFill(size_t n, uint64_t seed = 7) {
  const double side = std::sqrt(double(n));
  primitives::Random rng(seed);
  std::vector<geometry::Point<D>> pts(n);
  parallel::parallel_for(0, n, [&](size_t i) {
    for (int k = 0; k < D; ++k) {
      pts[i][k] = rng.IthDouble(i * D + static_cast<size_t>(k)) * side;
    }
  });
  return pts;
}

}  // namespace pdbscan::data

#endif  // PDBSCAN_DATA_UNIFORM_H_
