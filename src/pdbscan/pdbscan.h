// Public API of the pdbscan library — parallel exact and approximate
// Euclidean DBSCAN (Wang, Gu & Shun, SIGMOD 2020).
//
// Quickstart:
//
//   #include "pdbscan/pdbscan.h"
//
//   std::vector<pdbscan::Point2> pts = ...;
//   pdbscan::Clustering result =
//       pdbscan::Dbscan<2>(pts, /*epsilon=*/1.0, /*min_pts=*/10);
//   // result.cluster[i]        : primary cluster of point i (-1 = noise)
//   // result.is_core[i]        : core-point flag
//   // result.memberships(i)    : all clusters of point i (border points
//   //                            can belong to several)
//
// Configuration (pdbscan::Options) selects the paper's variants:
//   OurExact(), OurExactQt(), OurApprox(rho), OurApproxQt(rho),
//   Our2dGridBcp(), Our2dGridUsec(), Our2dGridDelaunay(),
//   Our2dBoxBcp(), Our2dBoxUsec(), Our2dBoxDelaunay(), WithBucketing(...).
//
// Exact variants return the clustering of the standard DBSCAN definition;
// approximate variants satisfy Gan & Tao's rho-approximate definition.
// Outputs are deterministic: equal inputs give identical labels regardless
// of thread count or schedule.
//
// Threading: the library uses a process-wide work-stealing pool sized from
// PDBSCAN_NUM_THREADS (default: hardware concurrency); see
// parallel/scheduler.h and pdbscan::parallel::set_num_workers().
#ifndef PDBSCAN_PDBSCAN_H_
#define PDBSCAN_PDBSCAN_H_

#include <span>
#include <stdexcept>
#include <vector>

#include "dbscan/pipeline.h"
#include "dbscan/types.h"
#include "geometry/point.h"
#include "parallel/scheduler.h"

namespace pdbscan {

template <int D>
using Point = geometry::Point<D>;
using Point2 = geometry::Point<2>;
using Point3 = geometry::Point<3>;

// Dimensions instantiated for the runtime-dispatch overload (the paper's
// evaluation uses 2, 3, 5, 7 and 13).
inline constexpr int kSupportedDims[] = {2, 3, 4, 5, 7, 13};

// Clusters `points` with the given parameters. See dbscan/types.h for the
// result contract.
template <int D>
Clustering Dbscan(std::span<const Point<D>> points, double epsilon,
                  size_t min_pts, const Options& options = Options()) {
  return dbscan::RunDbscan<D>(points, epsilon, min_pts, options);
}

template <int D>
Clustering Dbscan(const std::vector<Point<D>>& points, double epsilon,
                  size_t min_pts, const Options& options = Options()) {
  return Dbscan<D>(std::span<const Point<D>>(points), epsilon, min_pts,
                   options);
}

// Runtime-dimension overload over row-major coordinates (n x dim doubles).
// Throws std::invalid_argument for dimensions not in kSupportedDims.
inline Clustering Dbscan(const double* data, size_t n, int dim, double epsilon,
                         size_t min_pts, const Options& options = Options()) {
  auto run = [&]<int D>() {
    std::vector<Point<D>> pts(n);
    parallel::parallel_for(0, n, [&](size_t i) {
      for (int k = 0; k < D; ++k) pts[i][k] = data[i * static_cast<size_t>(dim) + k];
    });
    return Dbscan<D>(pts, epsilon, min_pts, options);
  };
  switch (dim) {
    case 2:
      return run.template operator()<2>();
    case 3:
      return run.template operator()<3>();
    case 4:
      return run.template operator()<4>();
    case 5:
      return run.template operator()<5>();
    case 7:
      return run.template operator()<7>();
    case 13:
      return run.template operator()<13>();
    default:
      throw std::invalid_argument(
          "unsupported dimension (supported: 2, 3, 4, 5, 7, 13)");
  }
}

}  // namespace pdbscan

#endif  // PDBSCAN_PDBSCAN_H_
