// Public API of the pdbscan library — parallel exact and approximate
// Euclidean DBSCAN (Wang, Gu & Shun, SIGMOD 2020).
//
// Quickstart (one-shot):
//
//   #include "pdbscan/pdbscan.h"
//
//   std::vector<pdbscan::Point2> pts = ...;
//   pdbscan::Clustering result =
//       pdbscan::Dbscan<2>(pts, /*epsilon=*/1.0, /*min_pts=*/10);
//   // result.cluster[i]        : primary cluster of point i (-1 = noise)
//   // result.is_core[i]        : core-point flag
//   // result.memberships(i)    : all clusters of point i (border points
//   //                            can belong to several)
//
// Quickstart (repeated queries / parameter sweeps):
//
//   pdbscan::DbscanEngine<2> engine;          // or DbscanEngine<2>(options)
//   engine.SetPoints(pts);                    // one-time preprocessing
//   auto sweep = engine.Sweep(1.0, {5, 10, 50});   // cells built once,
//                                                  // MarkCore counted once
//   auto other = engine.Run(2.0, 10);         // new epsilon: cells rebuilt,
//                                             // point layout + buffers reused
//
// The engine caches whatever the parameters allow: at a fixed epsilon the
// cell structure (and quadtrees) is reused for every min_pts; across epsilon
// changes the epsilon-independent layout (dataset bounds, x-sorted order)
// and all scratch allocations are reused. Labels are bit-identical to
// one-shot Dbscan calls — both paths run the same engine code.
//
// Quickstart (serving concurrent queries):
//
//   // Freeze the build products once; counts_cap bounds the min_pts range
//   // answered from the shared counts (larger values recount per query).
//   auto index = pdbscan::CellIndex<2>::Build(pts, /*epsilon=*/1.0,
//                                             /*counts_cap=*/100);
//   pdbscan::EnginePool<2> pool(index);
//   // From any number of threads, concurrently:
//   pdbscan::Clustering c = pool.Run(/*min_pts=*/10);
//   auto sweep = pool.Sweep({5, 10, 50});
//
// A CellIndex is immutable after construction, so sharing needs no locks;
// each concurrent query runs in a leased per-thread QueryContext and the
// results are bit-identical to serial Dbscan calls. Per-client counters
// aggregate via EnginePool::AggregateStats(). See dbscan/cell_index.h and
// parallel/engine_pool.h.
//
// Quickstart (production serving — bounded queues, deadlines, coalescing):
//
//   // Put a ServingScheduler in front of the pool when clients are
//   // untrusted or bursty: admission is bounded, every request carries a
//   // deadline, concurrent requests against the same snapshot share one
//   // batched execution, and repeated (generation, eps, min_pts) queries
//   // are answered from an LRU cache that snapshot replacement
//   // invalidates.
//   pdbscan::ServingScheduler<2> server(pool);        // defaults: 1
//                                                     // executor, 5s
//                                                     // deadline, 256 queue
//   std::future<pdbscan::ServeResult> f = server.SubmitAsync(10);
//   pdbscan::ServeResult r = f.get();
//   if (r.ok()) use(r.clustering);                    // else r.status says
//                                                     // kRejected/kTimedOut
//   // Blocking flavor with per-request timeout, callback flavor:
//   auto r2 = server.Submit(10, pdbscan::parallel::MillisToNanos(50));
//   server.SubmitCallback(10, [](pdbscan::ServeResult r) { ... });
//
// Every kOk response is bit-identical to a solo EnginePool::Run at the
// generation it reports (coalesced and cached responses included — the
// bench enforces this by exit code). Tests drive the scheduler
// deterministically with pdbscan::FakeClock + manual Pump() — see
// parallel/serving_scheduler.h and parallel/serving_clock.h.
//
// Quickstart (streaming updates — serve a LIVE dataset):
//
//   // Grid cells + kScan counting, any dimension; starts empty.
//   pdbscan::StreamingClusterer<2> stream(/*epsilon=*/1.0,
//                                         /*counts_cap=*/100);
//   uint64_t first = stream.Insert(points);       // ids first, first+1, ...
//   // Any number of reader threads, concurrently with updates:
//   pdbscan::Clustering c = stream.Run(/*min_pts=*/10);
//   // Writer thread: batched inserts + erasures of stable ids.
//   stream.ApplyUpdates(new_points, /*erases=*/{first, first + 1});
//
// Each update batch recounts only the cells it dirties (plus their
// eps-neighborhood) and publishes an immutable CellIndex snapshot that the
// pool serves lock-free — the MarkCore counting work scales with the
// batch's dirty-cell footprint (the remaining per-batch work is a
// memcpy-scale recomposition pass), and readers never block on the writer.
// See streaming/dynamic_cell_index.h and streaming/streaming_clusterer.h.
//
// Quickstart (sharded builds — spatially partitioned construction):
//
//   // Grid cells + kScan counting, any dimension. The domain splits into
//   // 8 grid-aligned slabs, each shard builds and counts concurrently,
//   // and a boundary-merge stage reconciles only cells within one eps of
//   // a shard seam before freezing one merged immutable index.
//   pdbscan::ShardedClusterer<2> sharded(pts, /*epsilon=*/1.0,
//                                        /*counts_cap=*/100,
//                                        /*num_shards=*/8);
//   pdbscan::Clustering c = sharded.Run(/*min_pts=*/10);   // Any thread.
//
// Sharding is a build-time decomposition: the merged index is an ordinary
// CellIndex (EnginePool can be constructed from a ShardedCellIndex
// directly), queries run the standard pipeline against it, and exact
// configurations produce labels bit-identical to an unsharded run at any
// worker count. Merge work is proportional to the boundary-cell count, not
// the dataset (shard_boundary_cells / shard_seam_links in the stats sink;
// bench/throughput_sharded.cpp enforces the proportionality by exit code).
// See sharding/shard_planner.h and sharding/sharded_cell_index.h.
//
// Quickstart (persistence — survive restarts, cold-start in milliseconds):
//
//   // Save any frozen index (built, streaming snapshot, or sharded merge):
//   auto index = pdbscan::CellIndex<2>::Build(pts, 1.0, 100);
//   pdbscan::SaveIndex<2>("index.pdbsnap", *index);
//   // ... new process — rehydrate instead of rebuilding. kMapped serves
//   // the index zero-copy straight out of the file mapping:
//   auto loaded = pdbscan::LoadIndex<2>("index.pdbsnap",
//                                       pdbscan::LoadMode::kMapped);
//   pdbscan::EnginePool<2> pool(loaded);       // serve it like any index
//   pdbscan::Clustering c = pool.Run(10);      // bit-identical labels
//
// Snapshots are versioned and checksummed: corrupted, truncated or
// version-skewed files throw pdbscan::PersistError instead of serving a
// silently wrong index. For a LIVE dataset, PersistentClusterer pairs
// checkpoints with a write-ahead journal — recovery replays only the
// batches since the last checkpoint and is bit-identical to the
// uninterrupted run:
//
//   pdbscan::PersistentClusterer<2> live("/var/lib/idx", 1.0, 100);
//   live.Insert(points);        // journaled, then applied + published
//   live.Checkpoint();          // snapshot + journal reset
//   // after a crash, the same constructor recovers: last checkpoint +
//   // journal replay, then serving resumes.
//
// See persist/snapshot.h, persist/journal.h, persist/persistent_clusterer.h.
//
// Configuration (pdbscan::Options) selects the paper's variants:
//   OurExact(), OurExactQt(), OurApprox(rho), OurApproxQt(rho),
//   Our2dGridBcp(), Our2dGridUsec(), Our2dGridDelaunay(),
//   Our2dBoxBcp(), Our2dBoxUsec(), Our2dBoxDelaunay(), WithBucketing(...).
//
// Exact variants return the clustering of the standard DBSCAN definition;
// approximate variants satisfy Gan & Tao's rho-approximate definition.
// Outputs are deterministic: equal inputs give identical labels regardless
// of thread count or schedule.
//
// Threading: the library uses a process-wide work-stealing pool sized from
// PDBSCAN_NUM_THREADS (default: hardware concurrency); see
// parallel/scheduler.h and pdbscan::parallel::set_num_workers(). A
// DbscanEngine is single-threaded (one mutation site); concurrent serving
// goes through CellIndex + EnginePool, whose inner stages run on the same
// scheduler (submissions from any client thread compose safely).
#ifndef PDBSCAN_PDBSCAN_H_
#define PDBSCAN_PDBSCAN_H_

#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "dbscan/cell_index.h"
#include "dbscan/engine.h"
#include "dbscan/pipeline.h"
#include "dbscan/types.h"
#include "geometry/point.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/replication.h"
#include "net/server.h"
#include "parallel/engine_pool.h"
#include "parallel/scheduler.h"
#include "parallel/serving_clock.h"
#include "parallel/serving_scheduler.h"
#include "persist/journal.h"
#include "persist/persistent_clusterer.h"
#include "persist/snapshot.h"
#include "quality/metrics.h"
#include "sharding/shard_planner.h"
#include "sharding/sharded_cell_index.h"
#include "sharding/sharded_clusterer.h"
#include "streaming/streaming_clusterer.h"
#include "telemetry/metrics.h"
#include "telemetry/stats_export.h"
#include "telemetry/trace.h"

namespace pdbscan {

// Fixed-dimension Euclidean point: the input type of every clustering
// surface. Point2/Point3 are the common shorthands.
template <int D>
using Point = geometry::Point<D>;
using Point2 = geometry::Point<2>;
using Point3 = geometry::Point<3>;

// The stateful, reusable clusterer for one thread: caches the cell
// structure across min_pts changes and the layout across epsilon changes
// (see dbscan/engine.h for the caching contract).
template <int D>
using DbscanEngine = dbscan::DbscanEngine<D>;

// The frozen, shareable half of the pipeline: cells + quadtrees +
// saturated counts, strictly immutable after Build, shared across threads
// without locks (see dbscan/cell_index.h).
template <int D>
using CellIndex = dbscan::CellIndex<D>;

// Per-thread query state against shared CellIndexes: a private workspace
// plus a stats sink; one per serving thread (see dbscan/cell_index.h).
template <int D>
using QueryContext = dbscan::QueryContext<D>;

// Thread-safe serving facade: a shared CellIndex plus a leased-context
// free list behind Run/Sweep, callable from any number of threads (see
// parallel/engine_pool.h).
template <int D>
using EnginePool = parallel::EnginePool<D>;

// --- Serving surface (see parallel/serving_scheduler.h). -------------------

// The admission/batching/caching layer over an EnginePool: bounded queue
// with per-request deadlines and an overload policy, cross-client query
// coalescing into single batched sweeps, a generation-keyed LRU result
// cache, and an async submission API.
template <int D>
using ServingScheduler = parallel::ServingScheduler<D>;

// Scheduler knobs: queue_limit, default_timeout_nanos, overload_policy,
// cache_capacity, coalescing, num_executors (0 = manual Pump mode), clock.
using ServingOptions = parallel::ServingOptions;

// One resolved request: status, the waiter's own Clustering, the snapshot
// generation it was served from, and cache/coalescing provenance flags.
using ServeResult = parallel::ServeResult;
using ServeStatus = parallel::ServeStatus;

// Full-queue behavior: refuse the newcomer or evict the oldest waiter.
using OverloadPolicy = parallel::OverloadPolicy;

// The serving stack's injectable time source; FakeClock makes deadline /
// overflow / coalescing races deterministic in tests (no real sleeps).
using Clock = parallel::Clock;
using FakeClock = parallel::FakeClock;

// Thrown by EnginePool::Run/Sweep (and ServingScheduler::Run) when no
// query context frees up before the deadline.
using LeaseTimeout = parallel::LeaseTimeout;

// Streaming writer: applies batched inserts/erases of stable point ids
// incrementally, publishing each state as an immutable CellIndex snapshot
// (see streaming/dynamic_cell_index.h).
template <int D>
using DynamicCellIndex = streaming::DynamicCellIndex<D>;

// Streaming facade: a DynamicCellIndex wired to an EnginePool — one
// writer, any number of readers, readers never block (see
// streaming/streaming_clusterer.h).
template <int D>
using StreamingClusterer = streaming::StreamingClusterer<D>;

// The executed sharding partition: split axis, lattice-aligned slab cuts,
// and the seam halo width (see sharding/shard_planner.h).
template <int D>
using ShardPlan = sharding::ShardPlan<D>;

// Plans grid-aligned spatial slabs for a point set at a given epsilon
// (deterministic; clamps the shard count to the lattice).
using ShardPlanner = sharding::ShardPlanner;

// Spatially partitioned index construction: concurrent per-shard builds, a
// boundary merge proportional to the seam size, one merged immutable
// CellIndex as the result (see sharding/sharded_cell_index.h).
template <int D>
using ShardedCellIndex = sharding::ShardedCellIndex<D>;

// Sharded-build-plus-serving facade: a ShardedCellIndex wired to an
// EnginePool; Run/Sweep from any thread, bit-identical to unsharded runs
// for exact configurations (see sharding/sharded_clusterer.h).
template <int D>
using ShardedClusterer = sharding::ShardedClusterer<D>;

// --- Quality surface (see quality/metrics.h). -------------------------------
//
// Grades a clustering against reference labels with the community-standard
// agreement metrics (noise is one ordinary label, matching sklearn usage):
//
//   auto truth = pdbscan::ReadLabelsFile("dataset.labels");
//   pdbscan::QualityReport q = pdbscan::EvaluateQuality(result, truth);
//   // q.ari, q.nmi, q.predicted_noise_ratio, q.cluster_size_histogram,
//   // q.label_checksum (FNV-1a over the labels — what golden tests pin).
//
// pdbscan_cli --quality <labels-file> prints the same report, and
// tools/bench_runner.py embeds it in every benchmark trajectory record.
using QualityReport = quality::QualityReport;
using quality::AdjustedRandIndex;
using quality::ClusterSizeHistogram;
using quality::EvaluateQuality;
using quality::LabelChecksum;
using quality::NoiseRatio;
using quality::NormalizedMutualInfo;
using quality::ReadLabelsFile;

// --- Persistence surface (see persist/). -----------------------------------

// Every persistence failure: IO errors, bad magic, version / endianness /
// dimension mismatch, checksum failure, truncation.
using PersistError = persist::PersistError;

// How LoadIndex materializes a snapshot: kOwned copies the arrays out of
// the file; kMapped serves them zero-copy from the mmap (the file must
// stay in place while the index lives).
using LoadMode = persist::LoadMode;

// Journal durability: fdatasync per batch (kEveryBatch) or OS-buffered
// (kNone).
using FsyncPolicy = persist::FsyncPolicy;

// Header-only summary of a snapshot file (dimension, sizes, parameters) —
// the runtime-dimension dispatch point for loading.
using persist::PeekSnapshot;
using SnapshotInfo = persist::SnapshotInfo;

// Snapshot writer/reader pair behind SaveIndex/LoadIndex; use directly for
// streaming checkpoints (live ids travel with the index).
template <int D>
using SnapshotWriter = persist::SnapshotWriter<D>;
template <int D>
using SnapshotReader = persist::SnapshotReader<D>;

// The streaming write-ahead log (attach via DynamicCellIndex::set_journal;
// PersistentClusterer manages one automatically).
template <int D>
using UpdateJournal = persist::UpdateJournal<D>;

// Durable serve-while-updating facade: StreamingClusterer semantics whose
// state survives restarts (checkpoint + journal replay, bit-identical to
// the uninterrupted run). See persist/persistent_clusterer.h.
template <int D>
using PersistentClusterer = persist::PersistentClusterer<D>;
using PersistOptions = persist::PersistOptions;

// --- Distributed serving surface (see net/). --------------------------------
//
// Quickstart (one writer, N snapshot-shipping replicas over TCP):
//
//   // Writer process: owns the dataset, journals every batch to rotating
//   // segments under /shared/ds, checkpoints snapshots there on a cadence.
//   pdbscan::WriterNode<2> writer("/shared/ds", /*epsilon=*/1.0,
//                                 /*counts_cap=*/100);
//   pdbscan::ServingScheduler<2> sched(writer.pool());
//   pdbscan::NetServer<2> server(sched, writer.pool(), 1.0, 100);
//   server.Start();                       // TCP front-end on 127.0.0.1
//
//   // Replica processes: cold-start from the newest shipped checkpoint
//   // (mmap) and tail the journal segments — each applied batch is
//   // republished at the writer's generation numbering.
//   pdbscan::ReplicaNode<2> replica("/shared/ds", 1.0, 100);
//   replica.StartTailing();
//
//   // Any client, against ANY node:
//   pdbscan::NetClient client(server.port());
//   auto resp = client.Query(/*min_pts=*/10);   // resp.generation,
//                                               // resp.cluster, resp.is_core
//
// The cross-replica identity contract: labels for the same (generation,
// eps, min_pts) are bit-identical no matter which node answered —
// generation numbers name dataset states (batches applied + 1), shared by
// every node through the checkpoint/journal pairing. tools/
// pdbscan_server.cpp is the ready-made node binary; bench/
// throughput_remote.cpp enforces the contract by exit code across real
// processes. See net/replication.h, net/server.h, net/protocol.h.

template <int D>
using WriterNode = net::WriterNode<D>;
template <int D>
using ReplicaNode = net::ReplicaNode<D>;
using WriterOptions = net::WriterOptions;
using ReplicaOptions = net::ReplicaOptions;

template <int D>
using NetServer = net::NetServer<D>;
using NetServerOptions = net::ServerOptions;
using NetClient = net::Client;

// Transport failure (connect/send/recv) vs. server-reported protocol
// error (carries the wire ErrorCode).
using NetError = net::NetError;
using RemoteError = net::RemoteError;

// --- Telemetry surface (see telemetry/). ------------------------------------
//
// Quickstart (metrics + tracing):
//
//   // Pull-based export: counters/gauges/histograms plus sources that
//   // publish existing stat structs, rendered as Prometheus text or JSON.
//   pdbscan::MetricsRegistry registry;
//   registry.AddSource([&](std::vector<pdbscan::MetricValue>& out) {
//     pdbscan::telemetry::AppendPipelineStats(stats, out);
//   });
//   std::string prom = pdbscan::RenderPrometheus(registry.Collect());
//
//   // Tracing: RAII spans at every stage boundary, ~free when disabled.
//   pdbscan::telemetry::SetTraceEnabled(true);   // or PDBSCAN_TRACE=1
//   uint64_t trace_id = pdbscan::telemetry::NewTraceId();
//   { pdbscan::telemetry::ScopedTraceContext ctx(trace_id);
//     pool.Run(10); }
//   auto spans = pdbscan::telemetry::GlobalTraceRing().CollectTrace(trace_id);
//   std::fputs(pdbscan::telemetry::FormatSpanTree(spans).c_str(), stderr);
//
// Served queries propagate the trace id over the wire (QueryRequest
// .trace_id) and return their server-side span breakdown in the response;
// NetServer answers kStatsRequest with the registry's rendered metrics
// (pdbscan_client stats). See telemetry/metrics.h and telemetry/trace.h.
using MetricsRegistry = telemetry::MetricsRegistry;
using MetricValue = telemetry::MetricValue;
using LatencyHistogram = telemetry::LatencyHistogram;
using HistogramSnapshot = telemetry::HistogramSnapshot;
using TraceSpan = telemetry::TraceSpan;
using telemetry::RenderJson;
using telemetry::RenderPrometheus;

// Serializes a frozen index (crash-safe temp-then-rename write).
template <int D>
void SaveIndex(const std::string& path, const dbscan::CellIndex<D>& index,
               dbscan::PipelineStats* stats = nullptr) {
  persist::SnapshotWriter<D>::Write(path, index, stats);
}

// Rehydrates a saved index for serving (EnginePool, QueryContext, sweeps).
// Labels from a loaded index are bit-identical to the index that was
// saved. Throws PersistError on corruption/truncation/version mismatch and
// when the snapshot's dimension is not D (PeekSnapshot reports the dim).
template <int D>
std::shared_ptr<const dbscan::CellIndex<D>> LoadIndex(
    const std::string& path, LoadMode mode = LoadMode::kOwned,
    dbscan::PipelineStats* stats = nullptr) {
  return persist::SnapshotReader<D>::Load(path, mode, stats).index;
}

// Dimensions instantiated for the runtime-dispatch overload (the paper's
// evaluation uses 2, 3, 5, 7 and 13).
inline constexpr int kSupportedDims[] = {2, 3, 4, 5, 7, 13};

// Invokes f.template operator()<D>() with D = dim; throws
// std::invalid_argument for dimensions not in kSupportedDims. The single
// runtime-dimension dispatch point for the library and its harnesses.
template <typename F>
auto DispatchDim(int dim, F&& f) {
  switch (dim) {
    case 2:
      return f.template operator()<2>();
    case 3:
      return f.template operator()<3>();
    case 4:
      return f.template operator()<4>();
    case 5:
      return f.template operator()<5>();
    case 7:
      return f.template operator()<7>();
    case 13:
      return f.template operator()<13>();
    default:
      throw std::invalid_argument(
          "unsupported dimension (supported: 2, 3, 4, 5, 7, 13)");
  }
}

// Clusters `points` with the given parameters. See dbscan/types.h for the
// result contract.
template <int D>
Clustering Dbscan(std::span<const Point<D>> points, double epsilon,
                  size_t min_pts, const Options& options = Options()) {
  return dbscan::RunDbscan<D>(points, epsilon, min_pts, options);
}

// Vector convenience for the overload above.
template <int D>
Clustering Dbscan(const std::vector<Point<D>>& points, double epsilon,
                  size_t min_pts, const Options& options = Options()) {
  return Dbscan<D>(std::span<const Point<D>>(points), epsilon, min_pts,
                   options);
}

// Runtime-dimension overload over row-major coordinates (n x dim doubles).
// Throws std::invalid_argument for dimensions not in kSupportedDims — before
// touching the data, so an unsupported dim never pays the O(n * dim) copy.
// The coordinates are materialized directly into the engine's workspace
// (a single copy, no intermediate vector).
inline Clustering Dbscan(const double* data, size_t n, int dim, double epsilon,
                         size_t min_pts, const Options& options = Options()) {
  return DispatchDim(dim, [&]<int D>() {
    dbscan::DbscanEngine<D> engine(options);
    engine.SetPointsStrided(data, n, static_cast<size_t>(dim));
    return engine.Run(epsilon, min_pts);
  });
}

}  // namespace pdbscan

#endif  // PDBSCAN_PDBSCAN_H_
