// AVX2 distance kernel: 8 squared distances per iteration (two 4-lane
// __m256d accumulators), compared against eps2 as a lane mask + popcount.
// Compiled with -mavx2 for this file only; never executed unless cpuid
// reports AVX2 (kernels/dispatch.cpp).
//
// Bit identity with the scalar reference (see kernel_api.h): lanes are
// vectorized ACROSS points, each point still accumulates
// fl(sum + fl(diff * diff)) in dimension order, and mul/add stay separate
// instructions (no FMA — it rounds once where mul+add rounds twice).
#include "kernels/kernel_api.h"
#include "kernels/kernel_registry.h"
#include "kernels/kernel_scalar_inline.h"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace pdbscan::kernels {
namespace {

#if defined(__AVX2__)

size_t CountWithinAvx2(const double* const* lanes, size_t stride, int dim,
                       size_t n, const double* q, double eps2, size_t cap,
                       Counters* counters) {
  if (stride != 1 || dim < 1 || dim > kMaxLanes) {
    // Strided lanes (mapped-snapshot views into AoS points) can't be
    // vector-loaded; the scalar path handles them at every level.
    return internal::CountWithinScalarImpl(lanes, stride, dim, n, q, eps2,
                                           cap, counters);
  }
  const __m256d veps2 = _mm256_set1_pd(eps2);
  uint64_t batches = 0;
  uint64_t pruned = 0;
  size_t count = 0;
  size_t i = 0;
  for (; i + 8 <= n && count < cap; i += 8) {
    ++batches;
    const __m256d q0 = _mm256_set1_pd(q[0]);
    const __m256d d0a = _mm256_sub_pd(_mm256_loadu_pd(lanes[0] + i), q0);
    const __m256d d0b = _mm256_sub_pd(_mm256_loadu_pd(lanes[0] + i + 4), q0);
    __m256d acc_a = _mm256_mul_pd(d0a, d0a);
    __m256d acc_b = _mm256_mul_pd(d0b, d0b);
    if (dim > 1) {
      // Partial-norm prune: if every lane's first-coordinate term already
      // exceeds eps2, the remaining non-negative terms cannot bring any sum
      // back down (exact in FP: round-to-nearest addition of t >= 0 never
      // goes below the prefix), so the batch contributes zero matches.
      const int alive =
          _mm256_movemask_pd(_mm256_cmp_pd(acc_a, veps2, _CMP_LE_OQ)) |
          _mm256_movemask_pd(_mm256_cmp_pd(acc_b, veps2, _CMP_LE_OQ));
      if (alive == 0) {
        pruned += 8;
        continue;
      }
      for (int d = 1; d < dim; ++d) {
        const __m256d qd = _mm256_set1_pd(q[d]);
        const __m256d da = _mm256_sub_pd(_mm256_loadu_pd(lanes[d] + i), qd);
        const __m256d db =
            _mm256_sub_pd(_mm256_loadu_pd(lanes[d] + i + 4), qd);
        acc_a = _mm256_add_pd(acc_a, _mm256_mul_pd(da, da));
        acc_b = _mm256_add_pd(acc_b, _mm256_mul_pd(db, db));
      }
    }
    const int mask_a =
        _mm256_movemask_pd(_mm256_cmp_pd(acc_a, veps2, _CMP_LE_OQ));
    const int mask_b =
        _mm256_movemask_pd(_mm256_cmp_pd(acc_b, veps2, _CMP_LE_OQ));
    count += static_cast<size_t>(__builtin_popcount(mask_a)) +
             static_cast<size_t>(__builtin_popcount(mask_b));
  }
  if (count < cap && i < n) {
    // Scalar tail over the remaining < 8 points (or the rest of the range
    // after a saturating early-exit, where the clamp below absorbs it).
    const double* tail[kMaxLanes];
    for (int d = 0; d < dim; ++d) tail[d] = lanes[d] + i;
    count += internal::CountWithinScalarImpl(tail, 1, dim, n - i, q, eps2,
                                             cap - count, nullptr);
  }
  if (counters != nullptr) {
    counters->batches += batches;
    counters->points_pruned_norm += pruned;
  }
  return count < cap ? count : cap;
}

// L1 variant: same loop shape with |diff| (bit-clear of the sign via
// andnot with -0.0 — exact) accumulated by adds, compared against eps. The
// first-coordinate prune stays exact: every later |diff| term is
// non-negative, so no partial sum can drop below its prefix.
size_t CountWithinL1Avx2(const double* const* lanes, size_t stride, int dim,
                         size_t n, const double* q, double eps, size_t cap,
                         Counters* counters) {
  if (stride != 1 || dim < 1 || dim > kMaxLanes) {
    return internal::CountWithinL1ScalarImpl(lanes, stride, dim, n, q, eps,
                                             cap, counters);
  }
  const __m256d veps = _mm256_set1_pd(eps);
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  uint64_t batches = 0;
  uint64_t pruned = 0;
  size_t count = 0;
  size_t i = 0;
  for (; i + 8 <= n && count < cap; i += 8) {
    ++batches;
    const __m256d q0 = _mm256_set1_pd(q[0]);
    __m256d acc_a = _mm256_andnot_pd(
        sign_mask, _mm256_sub_pd(_mm256_loadu_pd(lanes[0] + i), q0));
    __m256d acc_b = _mm256_andnot_pd(
        sign_mask, _mm256_sub_pd(_mm256_loadu_pd(lanes[0] + i + 4), q0));
    if (dim > 1) {
      const int alive =
          _mm256_movemask_pd(_mm256_cmp_pd(acc_a, veps, _CMP_LE_OQ)) |
          _mm256_movemask_pd(_mm256_cmp_pd(acc_b, veps, _CMP_LE_OQ));
      if (alive == 0) {
        pruned += 8;
        continue;
      }
      for (int d = 1; d < dim; ++d) {
        const __m256d qd = _mm256_set1_pd(q[d]);
        const __m256d da = _mm256_andnot_pd(
            sign_mask, _mm256_sub_pd(_mm256_loadu_pd(lanes[d] + i), qd));
        const __m256d db = _mm256_andnot_pd(
            sign_mask, _mm256_sub_pd(_mm256_loadu_pd(lanes[d] + i + 4), qd));
        acc_a = _mm256_add_pd(acc_a, da);
        acc_b = _mm256_add_pd(acc_b, db);
      }
    }
    const int mask_a =
        _mm256_movemask_pd(_mm256_cmp_pd(acc_a, veps, _CMP_LE_OQ));
    const int mask_b =
        _mm256_movemask_pd(_mm256_cmp_pd(acc_b, veps, _CMP_LE_OQ));
    count += static_cast<size_t>(__builtin_popcount(mask_a)) +
             static_cast<size_t>(__builtin_popcount(mask_b));
  }
  if (count < cap && i < n) {
    const double* tail[kMaxLanes];
    for (int d = 0; d < dim; ++d) tail[d] = lanes[d] + i;
    count += internal::CountWithinL1ScalarImpl(tail, 1, dim, n - i, q, eps,
                                               cap - count, nullptr);
  }
  if (counters != nullptr) {
    counters->batches += batches;
    counters->points_pruned_norm += pruned;
  }
  return count < cap ? count : cap;
}

// Linf variant: running max of |diff| per lane. Max is exact and monotone
// in the number of dimensions folded in, so the prune argument holds
// unchanged.
size_t CountWithinLinfAvx2(const double* const* lanes, size_t stride,
                           int dim, size_t n, const double* q, double eps,
                           size_t cap, Counters* counters) {
  if (stride != 1 || dim < 1 || dim > kMaxLanes) {
    return internal::CountWithinLinfScalarImpl(lanes, stride, dim, n, q, eps,
                                               cap, counters);
  }
  const __m256d veps = _mm256_set1_pd(eps);
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  uint64_t batches = 0;
  uint64_t pruned = 0;
  size_t count = 0;
  size_t i = 0;
  for (; i + 8 <= n && count < cap; i += 8) {
    ++batches;
    const __m256d q0 = _mm256_set1_pd(q[0]);
    __m256d acc_a = _mm256_andnot_pd(
        sign_mask, _mm256_sub_pd(_mm256_loadu_pd(lanes[0] + i), q0));
    __m256d acc_b = _mm256_andnot_pd(
        sign_mask, _mm256_sub_pd(_mm256_loadu_pd(lanes[0] + i + 4), q0));
    if (dim > 1) {
      const int alive =
          _mm256_movemask_pd(_mm256_cmp_pd(acc_a, veps, _CMP_LE_OQ)) |
          _mm256_movemask_pd(_mm256_cmp_pd(acc_b, veps, _CMP_LE_OQ));
      if (alive == 0) {
        pruned += 8;
        continue;
      }
      for (int d = 1; d < dim; ++d) {
        const __m256d qd = _mm256_set1_pd(q[d]);
        const __m256d da = _mm256_andnot_pd(
            sign_mask, _mm256_sub_pd(_mm256_loadu_pd(lanes[d] + i), qd));
        const __m256d db = _mm256_andnot_pd(
            sign_mask, _mm256_sub_pd(_mm256_loadu_pd(lanes[d] + i + 4), qd));
        acc_a = _mm256_max_pd(acc_a, da);
        acc_b = _mm256_max_pd(acc_b, db);
      }
    }
    const int mask_a =
        _mm256_movemask_pd(_mm256_cmp_pd(acc_a, veps, _CMP_LE_OQ));
    const int mask_b =
        _mm256_movemask_pd(_mm256_cmp_pd(acc_b, veps, _CMP_LE_OQ));
    count += static_cast<size_t>(__builtin_popcount(mask_a)) +
             static_cast<size_t>(__builtin_popcount(mask_b));
  }
  if (count < cap && i < n) {
    const double* tail[kMaxLanes];
    for (int d = 0; d < dim; ++d) tail[d] = lanes[d] + i;
    count += internal::CountWithinLinfScalarImpl(tail, 1, dim, n - i, q, eps,
                                                 cap - count, nullptr);
  }
  if (counters != nullptr) {
    counters->batches += batches;
    counters->points_pruned_norm += pruned;
  }
  return count < cap ? count : cap;
}

#else
#error "kernel_avx2.cpp must be compiled with -mavx2 (see CMake PDBSCAN_SIMD)"
#endif  // __AVX2__

}  // namespace

extern const DistanceKernelOps kAvx2Ops = {CountWithinAvx2, CountWithinL1Avx2,
                                           CountWithinLinfAvx2};

}  // namespace pdbscan::kernels
