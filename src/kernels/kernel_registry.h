// Internal: the per-level kernel tables, one per translation unit.
// kAvx2Ops / kAvx512Ops exist only when CMake compiled their TU (macros
// PDBSCAN_KERNEL_AVX2 / PDBSCAN_KERNEL_AVX512); dispatch.cpp references
// them under the same guards.
#ifndef PDBSCAN_KERNELS_KERNEL_REGISTRY_H_
#define PDBSCAN_KERNELS_KERNEL_REGISTRY_H_

#include "kernels/kernel_api.h"

namespace pdbscan::kernels {

extern const DistanceKernelOps kScalarOps;
extern const DistanceKernelOps kAvx2Ops;
extern const DistanceKernelOps kAvx512Ops;

}  // namespace pdbscan::kernels

#endif  // PDBSCAN_KERNELS_KERNEL_REGISTRY_H_
