// The scalar reference implementation of CountWithinFn, as an inline
// function so the SIMD translation units reuse it verbatim for loop tails
// and for strided (mapped-snapshot) lanes. This loop IS the bit-identity
// contract: per point, accumulate fl(diff * diff) in dimension order — the
// same arithmetic as Point<D>::SquaredDistance — and saturate at cap.
#ifndef PDBSCAN_KERNELS_KERNEL_SCALAR_INLINE_H_
#define PDBSCAN_KERNELS_KERNEL_SCALAR_INLINE_H_

#include <cmath>
#include <cstddef>

#include "kernels/kernel_api.h"

namespace pdbscan::kernels::internal {

inline size_t CountWithinScalarImpl(const double* const* lanes, size_t stride,
                                    int dim, size_t n, const double* q,
                                    double eps2, size_t cap,
                                    Counters* /*counters*/) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    if (count >= cap) return cap;
    double d2 = 0;
    for (int d = 0; d < dim; ++d) {
      const double diff = lanes[d][i * stride] - q[d];
      d2 += diff * diff;
    }
    if (d2 <= eps2) ++count;
  }
  return count < cap ? count : cap;
}

// L1 variant: the threshold parameter is eps (not squared). Accumulates
// fl(sum + |diff|) in dimension order — the arithmetic of
// Point<D>::L1Distance — so SIMD variants have an exact reference.
inline size_t CountWithinL1ScalarImpl(const double* const* lanes,
                                      size_t stride, int dim, size_t n,
                                      const double* q, double eps, size_t cap,
                                      Counters* /*counters*/) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    if (count >= cap) return cap;
    double s = 0;
    for (int d = 0; d < dim; ++d) {
      s += std::abs(lanes[d][i * stride] - q[d]);
    }
    if (s <= eps) ++count;
  }
  return count < cap ? count : cap;
}

// Linf variant: the threshold parameter is eps. Running max of |diff| in
// dimension order — the arithmetic of Point<D>::LinfDistance (max is exact,
// so accumulation order cannot matter, but keeping it fixed mirrors the
// other metrics' contract).
inline size_t CountWithinLinfScalarImpl(const double* const* lanes,
                                        size_t stride, int dim, size_t n,
                                        const double* q, double eps,
                                        size_t cap, Counters* /*counters*/) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    if (count >= cap) return cap;
    double m = 0;
    for (int d = 0; d < dim; ++d) {
      const double diff = std::abs(lanes[d][i * stride] - q[d]);
      if (diff > m) m = diff;
    }
    if (m <= eps) ++count;
  }
  return count < cap ? count : cap;
}

}  // namespace pdbscan::kernels::internal

#endif  // PDBSCAN_KERNELS_KERNEL_SCALAR_INLINE_H_
