// Vectorized distance kernels — the SIMD layer under MarkCore, the quadtree
// leaf scans, and the BCP connectivity scan.
//
// The hot loops of the pipeline all reduce to one primitive: "how many of
// these n points lie within eps of query q, stopping once the answer
// reaches cap?". This header defines that primitive as a function-pointer
// table (DistanceKernelOps) with three implementations — scalar, AVX2 and
// AVX-512 — selected once at startup by cpuid (runtime dispatch: one binary
// runs correctly on any host; see kernels/dispatch.cpp).
//
// Data layout: kernels read structure-of-arrays coordinate lanes —
// `lanes[d][i * stride]` is coordinate d of point i — so a batch of 8
// consecutive points loads as contiguous doubles per dimension instead of 8
// strided AoS gathers. CellStructure carries these lanes next to its AoS
// points (see CellStructure::BuildSoALanes); stride != 1 occurs only for
// lanes viewed directly out of a mapped snapshot's AoS point array, and
// delegates to the scalar path.
//
// Bit-identity contract (enforced by the property sweep): every
// implementation returns EXACTLY what the scalar reference returns —
// min(|{i : d2(p_i, q) <= eps2}|, cap) with d2 accumulated per point in
// dimension order 0..dim-1 as fl(sum + fl(diff * diff)). Vectorizing
// *across points* keeps each point's accumulation order unchanged, so lane
// results equal Point::SquaredDistance bit for bit. No FMA: fused
// multiply-add rounds differently from mul-then-add and would break the
// contract — the SIMD TUs are built with -ffp-contract=off because once an
// FMA-capable ISA is enabled the compiler otherwise contracts mul+add
// pairs on its own, even through intrinsics. The partial-norm prune (skip a batch when every lane's
// first-coordinate term already exceeds eps2) is exact, not approximate:
// with round-to-nearest, adding the remaining non-negative terms can never
// bring a partial sum back below any of its prefixes.
#ifndef PDBSCAN_KERNELS_KERNEL_API_H_
#define PDBSCAN_KERNELS_KERNEL_API_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace pdbscan::kernels {

// Dispatch levels, ordered: a level's instructions are a superset of every
// lower level's, so "best supported" is a simple max.
enum class Level : int {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};

// Highest dimensionality the kernels accept (the pipeline instantiates
// D in {2,3,4,5,7,13}; tail handling uses a fixed-size lane-pointer array).
inline constexpr int kMaxLanes = 16;

// Per-call observability counters, accumulated by the kernels into a plain
// stack-local struct (no atomics in the inner loop) and flushed by the call
// site into its PipelineStats sink (see dbscan/stats.h FlushKernelCounters).
struct Counters {
  // SIMD batches executed (8-point iterations; 0 on the scalar path).
  uint64_t batches = 0;
  // Points skipped by the partial-norm prune (whole batches whose first
  // coordinate already put every lane beyond eps2).
  uint64_t points_pruned_norm = 0;
  // Points skipped by cell-box pruning. The kernels never set this — the
  // call sites that prune whole cells by bounding box account for it here
  // so all distance-avoidance counters travel together.
  uint64_t points_pruned_box = 0;

  void MergeFrom(const Counters& o) {
    batches += o.batches;
    points_pruned_norm += o.points_pruned_norm;
    points_pruned_box += o.points_pruned_box;
  }
};

// Counts points within sqrt(eps2) of q, saturated at cap.
//   lanes   — dim pointers; coordinate d of point i is lanes[d][i * stride].
//   stride  — element stride within each lane (1 for packed SoA lanes).
//   dim     — number of coordinates (1 <= dim <= kMaxLanes).
//   n       — number of points.
//   q       — query coordinates, q[0..dim-1].
//   cap     — saturation bound; the kernel may stop scanning once reached.
//             cap == 0 returns 0 without reading anything.
//   counters— optional observability sink (may be nullptr).
// Returns min(exact count, cap); bit-identical across implementations.
using CountWithinFn = size_t (*)(const double* const* lanes, size_t stride,
                                 int dim, size_t n, const double* q,
                                 double eps2, size_t cap, Counters* counters);

// The dispatched kernel table — one CountWithinFn per distance metric. The
// L1/Linf entries reuse the CountWithinFn signature with the threshold
// parameter holding eps itself (not eps^2): L1 accumulates fl(sum + |diff|)
// in dimension order, Linf takes the running max of |diff| — both compared
// <= eps. The same bit-identity argument applies: per-point accumulation
// order is fixed, |x| and max are exact in floating point, and the
// partial-norm prune stays valid because each metric's partial measure is
// non-decreasing in the number of dimensions accumulated. The table (rather
// than a bare function pointer) keeps room for batched multi-query variants
// without touching the dispatch machinery.
struct DistanceKernelOps {
  CountWithinFn count_within;       // L2: threshold parameter is eps^2.
  CountWithinFn count_within_l1;    // L1: threshold parameter is eps.
  CountWithinFn count_within_linf;  // Linf: threshold parameter is eps.
};

// --- Runtime dispatch (kernels/dispatch.cpp) -------------------------------

// Highest level both compiled into this binary (CMake option PDBSCAN_SIMD)
// and supported by the running CPU (cpuid).
Level BestSupportedLevel();

// True iff `level` can execute on this binary + CPU.
bool LevelSupported(Level level);

// All supported levels, ascending (always starts with kScalar).
std::vector<Level> SupportedLevels();

// The level queries currently run at. Defaults to BestSupportedLevel();
// the PDBSCAN_FORCE_KERNEL environment variable (scalar|avx2|avx512, read
// once at first use) or ForceLevel() lower it. Requests for an unsupported
// level clamp to the best supported one.
Level ActiveLevel();

// Programmatic override of ActiveLevel() (the test knob behind the
// PDBSCAN_FORCE_KERNEL sweep). Clamps to BestSupportedLevel(). Not intended
// to be raced against in-flight queries: results are always correct (every
// level is bit-identical), but counters may mix levels.
void ForceLevel(Level level);

// Parses "scalar" / "avx2" / "avx512" (case-sensitive). Returns false and
// leaves *out untouched on unknown input.
bool ParseLevel(std::string_view name, Level* out);

const char* LevelName(Level level);

// Kernel table for an explicit level (clamped to supported).
const DistanceKernelOps& OpsFor(Level level);

// Kernel table for ActiveLevel() — what the pipeline call sites use.
inline const DistanceKernelOps& Ops() { return OpsFor(ActiveLevel()); }

}  // namespace pdbscan::kernels

#endif  // PDBSCAN_KERNELS_KERNEL_API_H_
