// Runtime kernel dispatch: picks the best distance-kernel variant that is
// both compiled into this binary (CMake option PDBSCAN_SIMD, macros
// PDBSCAN_KERNEL_AVX2 / PDBSCAN_KERNEL_AVX512) and supported by the
// running CPU (cpuid via __builtin_cpu_supports). One binary therefore
// runs correctly on any host; SIMD translation units are compiled with
// per-file arch flags and never executed on CPUs that lack them.
//
// Override order: ForceLevel() (the test knob) beats the
// PDBSCAN_FORCE_KERNEL environment variable (read once at first use),
// which beats cpuid. Both overrides clamp to the best supported level, so
// forcing avx512 on an AVX2-only host runs AVX2, never an illegal
// instruction.
#include <atomic>
#include <cstdio>
#include <string>

#include "kernels/kernel_api.h"
#include "kernels/kernel_registry.h"
#include "util/env.h"

namespace pdbscan::kernels {
namespace {

int DetectBest() {
#if defined(__x86_64__) || defined(__i386__)
#if defined(PDBSCAN_KERNEL_AVX512)
  if (__builtin_cpu_supports("avx512f")) {
    return static_cast<int>(Level::kAvx512);
  }
#endif
#if defined(PDBSCAN_KERNEL_AVX2)
  if (__builtin_cpu_supports("avx2")) {
    return static_cast<int>(Level::kAvx2);
  }
#endif
#endif
  return static_cast<int>(Level::kScalar);
}

int ClampToSupported(int level) {
  const int best = static_cast<int>(BestSupportedLevel());
  if (level < 0) return static_cast<int>(Level::kScalar);
  return level > best ? best : level;
}

// Programmatic override (ForceLevel); -1 = none.
std::atomic<int> g_forced{-1};

// Environment override, resolved once. Unknown values are reported and
// ignored (run at the best supported level) rather than failing: the knob
// is an operational override, not configuration the pipeline depends on.
int EnvOrDetectedLevel() {
  const std::string forced = util::GetEnvString("PDBSCAN_FORCE_KERNEL", "");
  if (!forced.empty()) {
    Level parsed;
    if (ParseLevel(forced, &parsed)) {
      return ClampToSupported(static_cast<int>(parsed));
    }
    std::fprintf(stderr,
                 "pdbscan: ignoring unknown PDBSCAN_FORCE_KERNEL=\"%s\" "
                 "(expected scalar|avx2|avx512)\n",
                 forced.c_str());
  }
  return static_cast<int>(BestSupportedLevel());
}

}  // namespace

Level BestSupportedLevel() {
  static const int best = DetectBest();
  return static_cast<Level>(best);
}

bool LevelSupported(Level level) {
  // Each level's instruction set is a superset of the previous one's, so
  // support is simply "at most the detected best".
  const int l = static_cast<int>(level);
  return l >= 0 && l <= static_cast<int>(BestSupportedLevel());
}

std::vector<Level> SupportedLevels() {
  std::vector<Level> levels;
  for (int l = 0; l <= static_cast<int>(BestSupportedLevel()); ++l) {
    levels.push_back(static_cast<Level>(l));
  }
  return levels;
}

Level ActiveLevel() {
  static const int env_level = EnvOrDetectedLevel();
  const int forced = g_forced.load(std::memory_order_relaxed);
  return static_cast<Level>(forced >= 0 ? forced : env_level);
}

void ForceLevel(Level level) {
  g_forced.store(ClampToSupported(static_cast<int>(level)),
                 std::memory_order_relaxed);
}

bool ParseLevel(std::string_view name, Level* out) {
  if (name == "scalar") {
    *out = Level::kScalar;
    return true;
  }
  if (name == "avx2") {
    *out = Level::kAvx2;
    return true;
  }
  if (name == "avx512") {
    *out = Level::kAvx512;
    return true;
  }
  return false;
}

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kAvx2:
      return "avx2";
    case Level::kAvx512:
      return "avx512";
  }
  return "unknown";
}

const DistanceKernelOps& OpsFor(Level level) {
  switch (static_cast<Level>(ClampToSupported(static_cast<int>(level)))) {
#if defined(PDBSCAN_KERNEL_AVX512)
    case Level::kAvx512:
      return kAvx512Ops;
#endif
#if defined(PDBSCAN_KERNEL_AVX2)
    case Level::kAvx2:
      return kAvx2Ops;
#endif
    default:
      return kScalarOps;
  }
}

}  // namespace pdbscan::kernels
