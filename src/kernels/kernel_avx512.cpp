// AVX-512 distance kernel: 8 squared distances per iteration in one
// __m512d accumulator, compared against eps2 with _mm512_cmp_pd_mask and
// counted by popcount on the 8-bit lane mask. Compiled with -mavx512f for
// this file only; never executed unless cpuid reports AVX-512F
// (kernels/dispatch.cpp).
//
// Same bit-identity contract as the AVX2 and scalar variants: vectorized
// across points, per-point accumulation in dimension order, no FMA.
#include "kernels/kernel_api.h"
#include "kernels/kernel_registry.h"
#include "kernels/kernel_scalar_inline.h"

#if defined(__AVX512F__)
#include <immintrin.h>
#endif

namespace pdbscan::kernels {
namespace {

#if defined(__AVX512F__)

size_t CountWithinAvx512(const double* const* lanes, size_t stride, int dim,
                         size_t n, const double* q, double eps2, size_t cap,
                         Counters* counters) {
  if (stride != 1 || dim < 1 || dim > kMaxLanes) {
    return internal::CountWithinScalarImpl(lanes, stride, dim, n, q, eps2,
                                           cap, counters);
  }
  const __m512d veps2 = _mm512_set1_pd(eps2);
  uint64_t batches = 0;
  uint64_t pruned = 0;
  size_t count = 0;
  size_t i = 0;
  for (; i + 8 <= n && count < cap; i += 8) {
    ++batches;
    const __m512d q0 = _mm512_set1_pd(q[0]);
    const __m512d d0 = _mm512_sub_pd(_mm512_loadu_pd(lanes[0] + i), q0);
    __m512d acc = _mm512_mul_pd(d0, d0);
    if (dim > 1) {
      // Partial-norm prune; exact, see kernel_api.h.
      const __mmask8 alive = _mm512_cmp_pd_mask(acc, veps2, _CMP_LE_OQ);
      if (alive == 0) {
        pruned += 8;
        continue;
      }
      for (int d = 1; d < dim; ++d) {
        const __m512d qd = _mm512_set1_pd(q[d]);
        const __m512d dd = _mm512_sub_pd(_mm512_loadu_pd(lanes[d] + i), qd);
        acc = _mm512_add_pd(acc, _mm512_mul_pd(dd, dd));
      }
    }
    const __mmask8 within = _mm512_cmp_pd_mask(acc, veps2, _CMP_LE_OQ);
    count += static_cast<size_t>(
        __builtin_popcount(static_cast<unsigned>(within)));
  }
  if (count < cap && i < n) {
    const double* tail[kMaxLanes];
    for (int d = 0; d < dim; ++d) tail[d] = lanes[d] + i;
    count += internal::CountWithinScalarImpl(tail, 1, dim, n - i, q, eps2,
                                             cap - count, nullptr);
  }
  if (counters != nullptr) {
    counters->batches += batches;
    counters->points_pruned_norm += pruned;
  }
  return count < cap ? count : cap;
}

// The L1/Linf entries delegate to the scalar reference: only the L2 count
// dominates the profile enough to justify a 512-bit variant, and the
// contract makes delegation safe — every level is bit-identical anyway.
size_t CountWithinL1Avx512(const double* const* lanes, size_t stride,
                           int dim, size_t n, const double* q, double eps,
                           size_t cap, Counters* counters) {
  return internal::CountWithinL1ScalarImpl(lanes, stride, dim, n, q, eps,
                                           cap, counters);
}

size_t CountWithinLinfAvx512(const double* const* lanes, size_t stride,
                             int dim, size_t n, const double* q, double eps,
                             size_t cap, Counters* counters) {
  return internal::CountWithinLinfScalarImpl(lanes, stride, dim, n, q, eps,
                                             cap, counters);
}

#else
#error \
    "kernel_avx512.cpp must be compiled with -mavx512f (see CMake PDBSCAN_SIMD)"
#endif  // __AVX512F__

}  // namespace

extern const DistanceKernelOps kAvx512Ops = {
    CountWithinAvx512, CountWithinL1Avx512, CountWithinLinfAvx512};

}  // namespace pdbscan::kernels
