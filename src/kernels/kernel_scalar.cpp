// Scalar distance kernel — the portable baseline and the bit-identity
// reference every SIMD variant is tested against.
#include "kernels/kernel_api.h"
#include "kernels/kernel_scalar_inline.h"

namespace pdbscan::kernels {
namespace {

size_t CountWithinScalar(const double* const* lanes, size_t stride, int dim,
                         size_t n, const double* q, double eps2, size_t cap,
                         Counters* counters) {
  return internal::CountWithinScalarImpl(lanes, stride, dim, n, q, eps2, cap,
                                         counters);
}

size_t CountWithinL1Scalar(const double* const* lanes, size_t stride, int dim,
                           size_t n, const double* q, double eps, size_t cap,
                           Counters* counters) {
  return internal::CountWithinL1ScalarImpl(lanes, stride, dim, n, q, eps, cap,
                                           counters);
}

size_t CountWithinLinfScalar(const double* const* lanes, size_t stride,
                             int dim, size_t n, const double* q, double eps,
                             size_t cap, Counters* counters) {
  return internal::CountWithinLinfScalarImpl(lanes, stride, dim, n, q, eps,
                                             cap, counters);
}

}  // namespace

extern const DistanceKernelOps kScalarOps = {
    CountWithinScalar, CountWithinL1Scalar, CountWithinLinfScalar};

}  // namespace pdbscan::kernels
