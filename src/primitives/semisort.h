// Parallel semisort — Table 1: expected O(n) work, O(log n) depth w.h.p.
// [44]. Groups key-value pairs with equal keys contiguously, with no
// guarantee on the order of groups, and reports the number of groups.
//
// Following Gu, Shun, Sun and Blelloch [44], keys are first hashed; the
// hash's top bits scatter pairs into buckets (one counting pass + prefix sum
// + scatter, all parallel), and each bucket is then grouped independently in
// parallel. Within a bucket we order by full hash and resolve hash
// collisions by key equality, so groups are exact even under collisions.
//
// This is the work-efficient replacement for comparison sorting in the grid
// construction of Section 4.1 of the paper.
#ifndef PDBSCAN_PRIMITIVES_SEMISORT_H_
#define PDBSCAN_PRIMITIVES_SEMISORT_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "parallel/scheduler.h"
#include "primitives/random.h"
#include "primitives/scan.h"

namespace pdbscan::primitives {

// Result of a semisort: `items` holds the input pairs reordered so that
// pairs with equal keys are contiguous; group g occupies
// items[group_offsets[g] .. group_offsets[g+1]).
template <typename K, typename V>
struct SemisortResult {
  std::vector<std::pair<K, V>> items;
  std::vector<size_t> group_offsets;  // Size num_groups + 1.

  size_t num_groups() const {
    return group_offsets.empty() ? 0 : group_offsets.size() - 1;
  }
};

// Semisorts `pairs` using `hash` (to uint64_t) and `eq` on keys.
template <typename K, typename V, typename HashF, typename EqF>
SemisortResult<K, V> Semisort(std::span<const std::pair<K, V>> pairs,
                              HashF&& hash, EqF&& eq) {
  const size_t n = pairs.size();
  SemisortResult<K, V> result;
  if (n == 0) {
    result.group_offsets.push_back(0);
    return result;
  }

  std::vector<uint64_t> hashes(n);
  parallel::parallel_for(0, n,
                         [&](size_t i) { hashes[i] = hash(pairs[i].first); });

  // Bucket count: roughly n / 256, power of two, capped.
  size_t num_buckets = 1;
  while (num_buckets < (1u << 14) && num_buckets * 256 < n) num_buckets *= 2;
  // num_buckets is a power of two; route on the top log2(num_buckets) bits.
  const int log_buckets = __builtin_ctzll(num_buckets);
  auto bucket_of = [&](uint64_t h) -> size_t {
    return log_buckets == 0 ? 0 : (h >> (64 - log_buckets));
  };

  // Counting scatter of indices into buckets.
  constexpr size_t kBlock = 1 << 14;
  const size_t num_blocks = (n + kBlock - 1) / kBlock;
  std::vector<size_t> counts(num_blocks * num_buckets, 0);
  parallel::parallel_for(
      0, num_blocks,
      [&](size_t b) {
        const size_t lo = b * kBlock;
        const size_t hi = lo + kBlock < n ? lo + kBlock : n;
        size_t* my_counts = counts.data() + b * num_buckets;
        for (size_t i = lo; i < hi; ++i) ++my_counts[bucket_of(hashes[i])];
      },
      1);
  std::vector<size_t> bucket_starts(num_buckets + 1, 0);
  {
    size_t offset = 0;
    for (size_t k = 0; k < num_buckets; ++k) {
      bucket_starts[k] = offset;
      for (size_t b = 0; b < num_blocks; ++b) {
        const size_t c = counts[b * num_buckets + k];
        counts[b * num_buckets + k] = offset;
        offset += c;
      }
    }
    bucket_starts[num_buckets] = offset;
  }
  std::vector<uint32_t> order(n);  // Input indices scattered by bucket.
  parallel::parallel_for(
      0, num_blocks,
      [&](size_t b) {
        const size_t lo = b * kBlock;
        const size_t hi = lo + kBlock < n ? lo + kBlock : n;
        size_t* my_offsets = counts.data() + b * num_buckets;
        for (size_t i = lo; i < hi; ++i) {
          order[my_offsets[bucket_of(hashes[i])]++] = static_cast<uint32_t>(i);
        }
      },
      1);

  // Group within each bucket: sort by hash, then split equal-hash runs by
  // key equality. Records a flag per position: 1 iff a new group starts.
  std::vector<size_t> group_start(n);
  parallel::parallel_for(
      0, num_buckets,
      [&](size_t k) {
        const size_t lo = bucket_starts[k];
        const size_t hi = bucket_starts[k + 1];
        if (lo == hi) return;
        std::sort(order.begin() + lo, order.begin() + hi,
                  [&](uint32_t x, uint32_t y) { return hashes[x] < hashes[y]; });
        size_t i = lo;
        while (i < hi) {
          // Equal-hash run [i, j).
          size_t j = i + 1;
          while (j < hi && hashes[order[j]] == hashes[order[i]]) ++j;
          // Within the run, group by key equality (runs are almost always
          // singletons; quadratic fallback handles hash collisions).
          for (size_t s = i; s < j; ++s) group_start[s] = 0;
          size_t remaining_lo = i;
          while (remaining_lo < j) {
            group_start[remaining_lo] = 1;
            const K& rep = pairs[order[remaining_lo]].first;
            size_t write = remaining_lo + 1;
            for (size_t s = remaining_lo + 1; s < j; ++s) {
              if (eq(pairs[order[s]].first, rep)) {
                std::swap(order[write], order[s]);
                ++write;
              }
            }
            remaining_lo = write;
          }
          i = j;
        }
      },
      1);

  // Group offsets from the start flags.
  std::vector<size_t> flags = group_start;
  const size_t num_groups = ScanExclusive(std::span<size_t>(flags));
  result.group_offsets.assign(num_groups + 1, 0);
  parallel::parallel_for(0, n, [&](size_t i) {
    if (group_start[i] == 1) result.group_offsets[flags[i]] = i;
  });
  result.group_offsets[num_groups] = n;

  result.items.resize(n);
  parallel::parallel_for(0, n,
                         [&](size_t i) { result.items[i] = pairs[order[i]]; });
  return result;
}

// Convenience overload for uint64_t keys with the default hash.
template <typename V>
SemisortResult<uint64_t, V> Semisort(
    std::span<const std::pair<uint64_t, V>> pairs) {
  return Semisort<uint64_t, V>(
      pairs, [](uint64_t k) { return Hash64(k); },
      [](uint64_t x, uint64_t y) { return x == y; });
}

}  // namespace pdbscan::primitives

#endif  // PDBSCAN_PRIMITIVES_SEMISORT_H_
